//! Token-by-token generation on analog hardware: the decode loop a NORA
//! deployment would actually serve.
//!
//! Trains a small LM, plants an induction episode as the prompt, and lets
//! the digital model, a naive analog deployment, and a NORA deployment each
//! complete it. The induction answer (the final token) shows directly
//! whether the analog noise broke the model's circuits.
//!
//! Run with: `cargo run --release --example analog_generation`

use nora::cim::TileConfig;
use nora::core::{calibrate, RescalePlan, SmoothingConfig};
use nora::nn::generate::{generate_analog, generate_digital, Sampling};
use nora::nn::zoo::{tiny_spec, ModelFamily};
use nora::tensor::rng::Rng;

fn show(label: &str, tokens: &[usize], prompt_len: usize) {
    let rendered: Vec<String> = tokens
        .iter()
        .enumerate()
        .map(|(i, &t)| {
            let s = match t {
                nora::nn::corpus::KEY_MARK => "KEY".to_string(),
                nora::nn::corpus::QUERY_MARK => "QUERY".to_string(),
                other => format!("t{other}"),
            };
            if i >= prompt_len {
                format!("[{s}]")
            } else {
                s
            }
        })
        .collect();
    println!("{label:<16}: {}", rendered.join(" "));
}

fn main() {
    println!("training opt-like model…");
    let mut zoo = tiny_spec(ModelFamily::OptLike, 123).build();
    let calib_seqs: Vec<Vec<usize>> = (0..6).map(|_| zoo.corpus.episode().tokens).collect();
    let calibration = calibrate(&zoo.model, &calib_seqs);
    let plan = RescalePlan::nora(&zoo.model, &calibration, SmoothingConfig::default());

    // The prompt is an episode minus its final answer: the generated first
    // token should be the planted key.
    let episode = zoo.corpus.episode();
    let prompt = &episode.tokens[..episode.tokens.len() - 1];
    println!("expected answer after QUERY: t{}\n", episode.key);

    let mut rng = Rng::seed_from(9);
    let digital = generate_digital(&zoo.model, prompt, 4, Sampling::Greedy, &mut rng);
    show("digital", &digital, prompt.len());

    let mut naive =
        RescalePlan::naive().deploy(&zoo.model, TileConfig::paper_default(), 11);
    let naive_out = generate_analog(&mut naive, prompt, 4, Sampling::Greedy, &mut rng);
    show("naive analog", &naive_out, prompt.len());

    let mut nora = plan.deploy(&zoo.model, TileConfig::paper_default(), 11);
    let nora_out = generate_analog(&mut nora, prompt, 4, Sampling::Greedy, &mut rng);
    show("NORA analog", &nora_out, prompt.len());

    println!(
        "\ndigital answers {}, naive analog answers {}, NORA answers {}",
        verdict(&digital, prompt.len(), episode.key),
        verdict(&naive_out, prompt.len(), episode.key),
        verdict(&nora_out, prompt.len(), episode.key),
    );
}

fn verdict(tokens: &[usize], prompt_len: usize, key: usize) -> &'static str {
    if tokens.get(prompt_len) == Some(&key) {
        "correctly"
    } else {
        "WRONG"
    }
}
