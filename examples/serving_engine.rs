//! Batched multi-sequence serving: many concurrent generation requests
//! through one model, with continuous batching and sliding-window KV caches.
//!
//! Trains a small LM, submits a mixed queue of requests (different prompts,
//! lengths, sampling settings), and serves them through the
//! [`nora::serve::GenerationEngine`] — first on the FP32 digital model, then
//! on a NORA analog deployment. Every request is then re-decoded alone to
//! show that batching never changes a sequence's tokens, and the engine
//! report gives aggregate throughput and per-request latency.
//!
//! Run with: `cargo run --release --example serving_engine`

use nora::cim::TileConfig;
use nora::core::{calibrate, RescalePlan, SmoothingConfig};
use nora::nn::generate::{generate_digital_cached, Sampling};
use nora::nn::zoo::{tiny_spec, ModelFamily};
use nora::serve::{AnalogBackend, DigitalBackend, EngineConfig, GenRequest, GenerationEngine};
use nora::tensor::rng::Rng;

fn main() {
    println!("training opt-like model…");
    let mut zoo = tiny_spec(ModelFamily::OptLike, 321).build();

    // A mixed queue: 10 requests, varying prompts and decode lengths. All
    // run past the model's context window, so every cache slides.
    let max_seq = zoo.model.config().max_seq;
    let requests: Vec<GenRequest> = (0..10)
        .map(|i| {
            let prompt = zoo.corpus.episode().tokens[..3 + i % 3].to_vec();
            let new_tokens = max_seq + 2 + 2 * (i % 4); // always slides
            let sampling = if i % 2 == 0 {
                Sampling::Greedy
            } else {
                Sampling::Temperature(1.2)
            };
            GenRequest::new(prompt, new_tokens)
                .with_sampling(sampling)
                .with_seed(40 + i as u64)
        })
        .collect();

    println!(
        "serving {} requests (decode lengths past max_seq={max_seq}) at batch width 4\n",
        requests.len()
    );

    // --- digital serve -----------------------------------------------------
    let mut engine = GenerationEngine::new(
        DigitalBackend::new(&zoo.model),
        EngineConfig::with_max_batch(4),
    );
    for request in &requests {
        engine.submit(request.clone());
    }
    let results = engine.run_to_completion();
    let report = engine.report();

    let mut mismatches = 0;
    for (result, request) in results.iter().zip(&requests) {
        let solo = generate_digital_cached(
            &zoo.model,
            &request.prompt,
            request.max_new_tokens,
            request.sampling,
            &mut Rng::seed_from(request.seed),
        );
        let ok = result.tokens == solo;
        mismatches += usize::from(!ok);
        println!(
            "req {:>2}: prompt {:>2} tokens, generated {:>2}, service {:>7.1?}, wait {:>7.1?}  {}",
            result.id,
            result.prompt_len,
            result.generated().len(),
            result.latency.service,
            result.latency.queue_wait,
            if ok { "== solo run" } else { "DIFFERS from solo run" },
        );
    }
    println!(
        "\ndigital: {} tokens in {} decode rounds, {:.0} tok/s, {mismatches} mismatches vs solo decoding",
        report.generated_tokens,
        report.rounds,
        report.tokens_per_sec()
    );

    // --- analog serve ------------------------------------------------------
    let calib_seqs: Vec<Vec<usize>> = (0..6).map(|_| zoo.corpus.episode().tokens).collect();
    let calibration = calibrate(&zoo.model, &calib_seqs);
    let plan = RescalePlan::nora(&zoo.model, &calibration, SmoothingConfig::default());
    let mut analog = plan.deploy(&zoo.model, TileConfig::paper_default(), 77);

    let mut engine = GenerationEngine::new(
        AnalogBackend::new(&mut analog),
        EngineConfig::with_max_batch(4),
    );
    for request in &requests {
        engine.submit(request.clone());
    }
    let _ = engine.run_to_completion();
    let report = engine.report();
    println!(
        "analog:  {} tokens in {} decode rounds, {:.0} tok/s on NORA-rescaled noisy tiles",
        report.generated_tokens,
        report.rounds,
        report.tokens_per_sec()
    );
}
