//! Miniature Fig. 3: sweep each analog non-ideality at MSE-matched
//! severities on one trained model and print the accuracy-drop curves.
//!
//! The expected shape is the paper's key observation: IO non-idealities
//! (quantization, additive noise) hurt; tile non-idealities (read noise,
//! programming noise, IR-drop) barely register.
//!
//! Run with: `cargo run --release --example sensitivity_study`

use nora::cim::NonIdeality;
use nora::core::RescalePlan;
use nora::eval::noise_level::{paper_mse_grid, severity_for_mse, RefWorkload};
use nora::eval::tasks::{analog_accuracy, digital_accuracy};
use nora::nn::zoo::{tiny_spec, ModelFamily};

fn main() {
    println!("training opt-like model…");
    let mut zoo = tiny_spec(ModelFamily::OptLike, 77).build();
    let episodes = zoo.corpus.episodes(120);
    let digital = digital_accuracy(&zoo.model, &episodes);
    println!("digital accuracy: {:.1}%\n", 100.0 * digital);

    let workload = RefWorkload::default_reference(5);
    let grid = paper_mse_grid(4);
    println!(
        "{:<11} {}",
        "noise",
        grid.iter()
            .map(|m| format!("mse={m:.1e}"))
            .collect::<Vec<_>>()
            .join("  ")
    );
    for noise in NonIdeality::ALL {
        let mut cells = Vec::new();
        for &mse in &grid {
            let severity = severity_for_mse(noise, mse, &workload);
            let tile = noise.configure(severity);
            let mut analog = RescalePlan::naive().deploy(&zoo.model, tile, 9);
            let acc = analog_accuracy(&mut analog, &episodes);
            cells.push(format!("{:+8.1}pp", 100.0 * (acc - digital)));
        }
        println!("{:<11} {}", noise.name(), cells.join("  "));
    }
    println!(
        "\nIO noises (quantization, additive) should dominate the drops; \
         tile noises (read, programming, ir_drop) should stay near zero."
    );
}
