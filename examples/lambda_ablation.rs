//! Migration-strength (λ) ablation at example scale: sweep the global λ of
//! the smoothing vector `s_k = max|x_k|^λ / max|w_k|^{1-λ}` and watch the
//! accuracy trade-off, then run the per-layer λ search.
//!
//! λ = 0 rescales by weights only; λ = 1 moves the entire activation range
//! onto the weights; the paper (following SmoothQuant) uses λ = 0.5.
//!
//! Run with: `cargo run --release --example lambda_ablation`

use nora::cim::TileConfig;
use nora::core::{calibrate, lambda_search, RescalePlan, SmoothingConfig};
use nora::eval::tasks::{analog_accuracy, digital_accuracy};
use nora::nn::zoo::{tiny_spec, ModelFamily};

fn main() {
    println!("training opt-like model…");
    let mut zoo = tiny_spec(ModelFamily::OptLike, 4242).build();
    let calib_seqs: Vec<Vec<usize>> = (0..6).map(|_| zoo.corpus.episode().tokens).collect();
    let episodes = zoo.corpus.episodes(120);
    let digital = digital_accuracy(&zoo.model, &episodes);
    let calibration = calibrate(&zoo.model, &calib_seqs);
    let tile = TileConfig::paper_default();
    println!("digital accuracy: {:.1}%\n", 100.0 * digital);

    println!("global λ sweep:");
    for lambda in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let plan = RescalePlan::nora(
            &zoo.model,
            &calibration,
            SmoothingConfig::with_lambda(lambda),
        );
        let mut analog = plan.deploy(&zoo.model, tile.clone(), 11);
        let acc = analog_accuracy(&mut analog, &episodes);
        println!(
            "  λ = {lambda:.2} : {:.1}%  ({:+.1} pp vs digital)",
            100.0 * acc,
            100.0 * (acc - digital)
        );
    }

    println!("\nper-layer λ search (paper future work):");
    let result = lambda_search::per_layer_search(
        &zoo.model,
        &calibration,
        &calib_seqs,
        &tile,
        &[0.0, 0.25, 0.5, 0.75, 1.0],
        11,
    );
    let mut analog = result.plan.deploy(&zoo.model, tile, 11);
    let acc = analog_accuracy(&mut analog, &episodes);
    println!(
        "  searched plan : {:.1}%  ({:+.1} pp vs digital)",
        100.0 * acc,
        100.0 * (acc - digital)
    );
    let mut choices: Vec<(String, f32)> = result
        .per_layer
        .iter()
        .map(|(id, &l)| (format!("b{}.{}", id.block, id.kind.name()), l))
        .collect();
    choices.sort_by(|a, b| a.0.cmp(&b.0));
    for (layer, lambda) in choices {
        println!("    {layer:<8} λ = {lambda:.2}");
    }
}
