//! End-to-end LLM deployment pipeline: train a transformer LM, inject
//! LLM-style activation outliers, calibrate, build the NORA rescale plan,
//! deploy onto simulated analog CIM tiles, and compare accuracies.
//!
//! This is the full Fig. 5a story on one model, at example scale.
//!
//! Run with: `cargo run --release --example llm_deployment`

use nora::cim::TileConfig;
use nora::core::{calibrate, RescalePlan, SmoothingConfig};
use nora::eval::tasks::{analog_accuracy, digital_accuracy};
use nora::nn::zoo::{tiny_spec, ModelFamily};

fn main() {
    // 1. Train an OPT-like model (severe activation outliers) in-process.
    println!("training opt-like model…");
    let mut zoo = tiny_spec(ModelFamily::OptLike, 2024).build();
    println!(
        "  loss {:.2} → {:.2}",
        zoo.report.first_loss, zoo.report.final_loss
    );

    // 2. Held-out data: a calibration stream and evaluation episodes.
    let calib_seqs: Vec<Vec<usize>> = (0..8).map(|_| zoo.corpus.episode().tokens).collect();
    let episodes = zoo.corpus.episodes(150);
    let digital = digital_accuracy(&zoo.model, &episodes);
    println!("digital FP32 accuracy : {:.1}%", 100.0 * digital);

    // 3. Naive analog deployment under the paper's Table II settings.
    let tile = TileConfig::paper_default();
    let mut naive = RescalePlan::naive().deploy(&zoo.model, tile.clone(), 7);
    let naive_acc = analog_accuracy(&mut naive, &episodes);
    println!(
        "naive analog accuracy : {:.1}%  ({:+.1} pp vs digital)",
        100.0 * naive_acc,
        100.0 * (naive_acc - digital)
    );

    // 4. NORA: calibrate → smoothing vectors → rescaled deployment.
    let calibration = calibrate(&zoo.model, &calib_seqs);
    let plan = RescalePlan::nora(&zoo.model, &calibration, SmoothingConfig::default());
    let mut nora = plan.deploy(&zoo.model, tile, 7);
    let nora_acc = analog_accuracy(&mut nora, &episodes);
    println!(
        "NORA analog accuracy  : {:.1}%  ({:+.1} pp vs digital)",
        100.0 * nora_acc,
        100.0 * (nora_acc - digital)
    );

    // 5. The mechanism: smaller rescale factors ⇒ more bitline current.
    let naive_rescale = naive.stats().mean_rescale();
    let nora_rescale = nora.stats().mean_rescale();
    println!(
        "mean rescale α·γ      : {naive_rescale:.3} naive → {nora_rescale:.3} NORA \
         (smaller ⇒ higher output current & SNR)"
    );
}
