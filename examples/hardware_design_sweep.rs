//! Using the library the way a hardware architect would: sweep converter
//! resolution and output-noise level for a NORA-deployed model, and read
//! off the accuracy/energy/area frontier.
//!
//! The question this answers: *given NORA, how cheap can the converters
//! get?* (Lower ADC resolution is the single biggest lever on CIM macro
//! energy and area.)
//!
//! Run with: `cargo run --release --example hardware_design_sweep`

use nora::cim::{AreaModel, EnergyModel, Resolution, TileConfig};
use nora::core::{calibrate, RescalePlan, SmoothingConfig};
use nora::eval::tasks::{analog_accuracy, digital_accuracy};
use nora::nn::zoo::{tiny_spec, ModelFamily};

fn main() {
    println!("training opt-like model…");
    let mut zoo = tiny_spec(ModelFamily::OptLike, 606).build();
    let calib_seqs: Vec<Vec<usize>> = (0..6).map(|_| zoo.corpus.episode().tokens).collect();
    let episodes = zoo.corpus.episodes(150);
    let digital = digital_accuracy(&zoo.model, &episodes);
    let calibration = calibrate(&zoo.model, &calib_seqs);
    let plan = RescalePlan::nora(&zoo.model, &calibration, SmoothingConfig::default());
    println!("digital baseline: {:.1}%\n", 100.0 * digital);

    let energy_model = EnergyModel::default();
    let area_model = AreaModel::default();
    let tokens: usize = episodes.iter().map(|e| e.tokens.len() - 1).sum();

    println!(
        "{:<6} {:<9} {:>7} {:>10} {:>12}",
        "bits", "σ_out", "acc%", "pJ/token", "ADC µm²/col"
    );
    for bits in [9u32, 7, 5, 4] {
        for out_noise in [0.02f32, 0.04, 0.08] {
            let mut cfg = TileConfig::paper_default();
            cfg.dac = Resolution::bits(bits);
            cfg.adc = Resolution::bits(bits);
            cfg.out_noise = out_noise;
            let mut analog = plan.deploy(&zoo.model, cfg, 0xd51);
            let acc = analog_accuracy(&mut analog, &episodes);
            // ADC energy scales with 2^bits: rebuild the model per point.
            let e = EnergyModel {
                adc_steps: 1 << bits,
                ..energy_model
            };
            let report = analog.energy(&e);
            // ADC area shrinks roughly 2x per dropped bit (SAR scaling).
            let adc_um2 = area_model.adc_um2 / (1u64 << (9 - bits)) as f64
                / area_model.adc_share as f64;
            println!(
                "{:<6} {:<9.2} {:>7.1} {:>10.0} {:>12.1}",
                bits,
                out_noise,
                100.0 * acc,
                report.total_pj() / tokens as f64,
                adc_um2,
            );
        }
    }
    println!(
        "\nreading the frontier: with NORA the accuracy knee sits at the \
         paper's 7-bit converters; below that, resolution — not noise — \
         becomes the binding constraint again."
    );
}
