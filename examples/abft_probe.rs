//! Empirical ABFT false-positive probe: healthy tiles under the full
//! Table II noise inventory must essentially never flag.
use nora::cim::{AnalogTile, FaultTolerance, TileConfig};
use nora::tensor::rng::Rng;
use nora::tensor::Matrix;

fn main() {
    let mut worst = 0.0f32;
    let mut flags = 0u32;
    let mut batches = 0u32;
    for seed in 0..100u64 {
        let mut rng = Rng::seed_from(seed);
        let w = Matrix::random_normal(64, 32, 0.0, 0.3, &mut rng);
        let x = Matrix::random_normal(8, 64, 0.0, 1.0, &mut rng);
        let mut cfg = TileConfig::paper_default().with_tile_size(64, 33);
        cfg.fault_tolerance = FaultTolerance::protected();
        let mut tile = AnalogTile::new(w, None, cfg, Rng::seed_from(seed ^ 999));
        for _ in 0..20 {
            let (_, r) = tile.forward_checked(&x);
            worst = worst.max(r.worst_ratio);
            flags += u32::from(r.suspicious);
            batches += 1;
        }
    }
    println!("healthy: {flags}/{batches} batches flagged, worst ratio {worst}");
}
