//! Quickstart: map a weight matrix onto simulated analog CIM tiles and see
//! what the non-idealities do — then fix it with a NORA-style smoothing
//! vector.
//!
//! Run with: `cargo run --release --example quickstart`

use nora::cim::{AnalogLinear, TileConfig};
use nora::tensor::{rng::Rng, stats, Matrix};

fn main() {
    let mut rng = Rng::seed_from(42);

    // A GEMV workload with activation outliers: two channels are 50x the
    // rest — the LLM phenomenon NORA targets.
    let d_in = 128;
    let d_out = 64;
    let w = Matrix::random_normal(d_in, d_out, 0.0, 0.1, &mut rng);
    let mut x = Matrix::random_normal(8, d_in, 0.0, 1.0, &mut rng);
    for i in 0..x.rows() {
        x.row_mut(i)[7] *= 50.0;
        x.row_mut(i)[99] *= 50.0;
    }
    let reference = x.matmul(&w);

    // 1. Ideal tiles: the analog layer is exact.
    let mut ideal = AnalogLinear::new(w.clone(), None, TileConfig::ideal(), 1);
    let y = ideal.forward(&x);
    println!("ideal tile      : mse {:.3e}", y.mse(&reference));

    // 2. Paper-default non-idealities (Table II): the outliers force a huge
    //    input range, so the 7-bit DAC starves the bulk channels.
    let mut naive = AnalogLinear::new(w.clone(), None, TileConfig::paper_default(), 1);
    let y = naive.forward(&x);
    let naive_mse = y.mse(&reference);
    println!("naive analog    : mse {naive_mse:.3e}");

    // 3. NORA-style smoothing: shrink the outlier channels at the input,
    //    grow them in the weights. s_k = max|x_k|^0.5 / max|w_k|^0.5.
    let act_max = x.col_abs_max();
    let w_row_max = w.row_abs_max();
    let s: Vec<f32> = act_max
        .iter()
        .zip(&w_row_max)
        .map(|(&a, &wm)| (a.max(1e-5).sqrt() / wm.max(1e-5).sqrt()).max(1e-5))
        .collect();
    let mut smoothed =
        AnalogLinear::with_smoothing(w.clone(), None, Some(&s), TileConfig::paper_default(), 1);
    let y = smoothed.forward(&x);
    let nora_mse = y.mse(&reference);
    println!("NORA rescaled   : mse {nora_mse:.3e}");
    println!(
        "improvement     : {:.1}x lower MSE ({:+.1} dB SNR gain)",
        naive_mse / nora_mse,
        10.0 * (naive_mse / nora_mse).log10()
    );

    // Where did the win come from? The input distribution tightened.
    let before: Vec<f32> = x.as_slice().to_vec();
    let mut x_s = x.clone();
    x_s.scale_cols(&s.iter().map(|v| 1.0 / v).collect::<Vec<_>>());
    println!(
        "input kurtosis  : {:.1} -> {:.1} (outlier burden moved to weights)",
        stats::kurtosis(&before),
        stats::kurtosis(x_s.as_slice())
    );
}
