//! # NORA: Noise-Optimized Rescaling of LLMs on Analog CIM Accelerators
//!
//! Facade crate re-exporting the full NORA workspace. See `DESIGN.md` for
//! the system inventory and `EXPERIMENTS.md` for the paper-vs-measured index.
//!
//! ```
//! use nora::cim::TileConfig;
//! let cfg = TileConfig::paper_default();
//! assert_eq!(cfg.tile_rows, 512);
//! ```

pub use nora_cim as cim;
pub use nora_core as core;
pub use nora_device as device;
pub use nora_eval as eval;
pub use nora_nn as nn;
pub use nora_obs as obs;
pub use nora_parallel as parallel;
pub use nora_serve as serve;
pub use nora_tensor as tensor;
