//! Counter-keyed analog serving: per-request noise is a pure function of
//! the request's own identity `(deployment, tile, request seed, position)`,
//! so its bits must be invariant to admission order, batch composition,
//! thread count, and observation — while the compat mode keeps the legacy
//! sequential streams bit-for-bit.

use nora::cim::TileConfig;
use nora::core::RescalePlan;
use nora::nn::deploy::AnalogTransformerLm;
use nora::nn::generate::{generate_analog_cached, Sampling};
use nora::nn::{ModelConfig, TransformerLm};
use nora::parallel::with_threads;
use nora::serve::{
    AnalogBackend, AnalogKeying, DigitalBackend, EngineConfig, GenRequest, GenerationEngine,
    RequestOutcome,
};
use nora::tensor::rng::Rng;

fn model() -> TransformerLm {
    TransformerLm::new(ModelConfig::tiny_for_tests(), &mut Rng::seed_from(60))
}

fn deploy(m: &TransformerLm) -> AnalogTransformerLm {
    RescalePlan::naive().deploy(m, TileConfig::paper_default(), 61)
}

/// Mixed-sampling requests long enough to slide past `max_seq` 16 —
/// exercising refill (rebase) positions, not just fresh decode positions.
fn requests() -> Vec<GenRequest> {
    (0..6)
        .map(|i| {
            GenRequest::new(vec![1 + i % 7, (2 * i + 3) % 16], 17 + i % 5)
                .with_sampling(if i % 2 == 0 {
                    Sampling::Greedy
                } else {
                    Sampling::Temperature(1.3)
                })
                .with_seed(300 + i as u64)
        })
        .collect()
}

fn serve_keyed(m: &TransformerLm, requests: Vec<GenRequest>, max_batch: usize) -> Vec<(u64, Vec<usize>)> {
    let mut analog = deploy(m);
    let mut engine = GenerationEngine::new(
        AnalogBackend::with_keying(&mut analog, AnalogKeying::Keyed),
        EngineConfig::with_max_batch(max_batch),
    );
    for request in requests {
        engine.submit(request);
    }
    engine
        .run_to_completion()
        .into_iter()
        .map(|r| (r.id, r.tokens))
        .collect()
}

/// Co-batched keyed serving produces, request for request, the very same
/// bits as serving each request alone on a fresh identical deployment.
#[test]
fn keyed_outputs_identical_solo_vs_cobatched() {
    let m = model();
    let batched = serve_keyed(&m, requests(), 6);
    assert_eq!(batched.len(), 6);
    for (i, request) in requests().into_iter().enumerate() {
        let solo = serve_keyed(&m, vec![request], 1);
        assert_eq!(batched[i].1, solo[0].1, "request {i} solo vs co-batched");
    }
}

/// Submission (queue-position) order must not leak into any request's
/// noise: serving the same request set in reverse order — through a narrow
/// batch that forces queueing — yields the same bits per request.
#[test]
fn keyed_outputs_invariant_to_queue_position() {
    let m = model();
    let forward = serve_keyed(&m, requests(), 2);
    let mut reversed_requests = requests();
    reversed_requests.reverse();
    let reversed = serve_keyed(&m, reversed_requests, 2);
    // Match by sampler seed (the request identity); engine ids differ.
    for (i, request) in requests().iter().enumerate() {
        let rev_pos = reversed.len() - 1 - i;
        assert_eq!(
            forward[i].1, reversed[rev_pos].1,
            "request seed {} differs across queue positions",
            request.seed
        );
    }
}

/// Thread-count invariance of the parallel keyed round: token streams AND
/// absorbed tile statistics are bit-identical at NORA_THREADS = 1/2/4/8.
#[test]
fn keyed_round_bit_identical_across_thread_counts() {
    let m = model();
    let run = |threads: usize| {
        with_threads(threads, || {
            let mut analog = deploy(&m);
            let mut engine = GenerationEngine::new(
                AnalogBackend::with_keying(&mut analog, AnalogKeying::Keyed),
                EngineConfig::with_max_batch(4),
            );
            for request in requests() {
                engine.submit(request);
            }
            let tokens: Vec<Vec<usize>> = engine
                .run_to_completion()
                .into_iter()
                .map(|r| r.tokens)
                .collect();
            drop(engine);
            (tokens, analog.stats())
        })
    };
    let serial = run(1);
    for threads in [2, 4, 8] {
        let par = run(threads);
        assert_eq!(serial.0, par.0, "token streams, threads={threads}");
        assert_eq!(serial.1, par.1, "tile stats, threads={threads}");
    }
}

/// Compat keying pin: a batch-of-one engine in [`AnalogKeying::Compat`]
/// replays the legacy sequential tile streams, reproducing
/// `generate_analog_cached` — the pre-keying single-request eval path —
/// token for token on an identical fresh deployment.
#[test]
fn compat_engine_reproduces_generate_analog_cached() {
    let m = model();
    for (sampling, seed) in [(Sampling::Greedy, 0u64), (Sampling::Temperature(1.2), 83)] {
        let mut reference_analog = deploy(&m);
        let reference = generate_analog_cached(
            &mut reference_analog,
            &[5, 3, 11],
            30, // slides past max_seq 16
            sampling,
            &mut Rng::seed_from(seed),
        );
        let mut analog = deploy(&m);
        let mut engine = GenerationEngine::new(
            AnalogBackend::with_keying(&mut analog, AnalogKeying::Compat),
            EngineConfig::with_max_batch(1),
        );
        engine.submit(
            GenRequest::new(vec![5, 3, 11], 30)
                .with_sampling(sampling)
                .with_seed(seed),
        );
        let results = engine.run_to_completion();
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].tokens, reference, "{sampling:?}");
    }
}

/// The `NORA_ANALOG_KEYING` env knob resolves `compat` (any casing,
/// surrounding whitespace ignored) to the compat mode and everything else
/// — including unset — to the keyed default. Safe to mutate the env here:
/// no other test in this binary resolves the keying mode from it.
#[test]
fn keying_mode_resolves_from_env_spelling() {
    assert_eq!(AnalogKeying::default(), AnalogKeying::Keyed);
    std::env::remove_var("NORA_ANALOG_KEYING");
    assert_eq!(AnalogKeying::from_env(), AnalogKeying::Keyed);
    for spelling in ["compat", "Compat", " COMPAT "] {
        std::env::set_var("NORA_ANALOG_KEYING", spelling);
        assert_eq!(AnalogKeying::from_env(), AnalogKeying::Compat, "{spelling:?}");
    }
    std::env::set_var("NORA_ANALOG_KEYING", "keyed");
    assert_eq!(AnalogKeying::from_env(), AnalogKeying::Keyed);
    std::env::remove_var("NORA_ANALOG_KEYING");
}

/// Backpressure and cancellation: a depth-bounded queue sheds newcomers
/// (no model work, `serve.shed` counts), and a queued request can be
/// cancelled before admission (`serve.cancelled` counts). Completed
/// requests are unaffected.
#[test]
fn shed_and_cancel_retire_without_model_work() {
    let m = model();
    let mut engine = GenerationEngine::new(
        DigitalBackend::new(&m),
        EngineConfig::with_max_batch(1).with_queue_depth(2),
    );
    let a = engine.submit(GenRequest::new(vec![1, 2], 4));
    let b = engine.submit(GenRequest::new(vec![3], 4));
    let c = engine.submit(GenRequest::new(vec![4], 4)); // queue full: shed
    assert!(engine.cancel(b), "queued request should cancel");
    assert!(!engine.cancel(b), "double-cancel returns false");
    let results = engine.run_to_completion();
    assert_eq!(results.len(), 3);
    let by_id = |id: u64| results.iter().find(|r| r.id == id).unwrap();
    assert_eq!(by_id(a).outcome, RequestOutcome::Completed);
    assert_eq!(by_id(b).outcome, RequestOutcome::Cancelled);
    assert_eq!(by_id(c).outcome, RequestOutcome::Shed);
    assert_eq!(by_id(b).decode_steps, 0);
    assert_eq!(by_id(c).decode_steps, 0);
    assert!(by_id(b).generated().is_empty());
    assert!(by_id(c).generated().is_empty());
    assert_eq!(engine.metrics().counter("serve.shed"), 1);
    assert_eq!(engine.metrics().counter("serve.cancelled"), 1);
    assert_eq!(engine.metrics().counter("serve.requests"), 1);
}

/// Priority classes are strict: with one decode slot, a backlogged queue
/// admits (and therefore completes) higher-priority requests first.
#[test]
fn priority_overrides_submission_order() {
    let m = model();
    let mut engine =
        GenerationEngine::new(DigitalBackend::new(&m), EngineConfig::with_max_batch(1));
    let lo = engine.submit(GenRequest::new(vec![1], 3).with_priority(0));
    let hi = engine.submit(GenRequest::new(vec![2], 3).with_priority(2));
    let mid = engine.submit(GenRequest::new(vec![3], 3).with_priority(1));
    let mut completion_order = Vec::new();
    loop {
        let more = engine.step();
        completion_order.extend(engine.take_results().into_iter().map(|r| r.id));
        if !more {
            break;
        }
    }
    assert_eq!(completion_order, vec![hi, mid, lo]);
}

/// Per-tenant queue-wait histograms appear in the engine metrics under
/// `serve.tenant.{id}.queue_wait_secs`, one observation per admission.
#[test]
fn tenant_queue_wait_histograms_are_recorded() {
    let m = model();
    let mut engine = GenerationEngine::new(
        DigitalBackend::new(&m),
        EngineConfig::with_max_batch(2).with_tenant_weight(1, 2.0),
    );
    for i in 0..6u32 {
        engine.submit(GenRequest::new(vec![1 + i as usize % 4], 3).with_tenant(i % 2));
    }
    engine.run_to_completion();
    let metrics = engine.metrics();
    for tenant in 0..2 {
        let hist = metrics
            .histogram(&format!("serve.tenant.{tenant}.queue_wait_secs"))
            .unwrap_or_else(|| panic!("missing tenant {tenant} histogram"));
        assert_eq!(hist.count(), 3, "tenant {tenant} admissions");
    }
}

/// Observation transparency on the *parallel* keyed round: attaching a
/// recorder and exporting metrics changes not a single output bit, and the
/// deterministic counters match the unobserved run.
#[test]
fn recorder_on_keyed_round_changes_no_bit() {
    let m = model();
    let run = |observe: bool| {
        with_threads(4, || {
            let mut analog = deploy(&m);
            let mut engine = GenerationEngine::new(
                AnalogBackend::with_keying(&mut analog, AnalogKeying::Keyed),
                EngineConfig::with_max_batch(4),
            );
            if observe {
                engine.set_recorder(Box::new(nora::obs::MemoryRecorder::default()));
            }
            for request in requests() {
                engine.submit(request);
            }
            let tokens: Vec<Vec<usize>> = engine
                .run_to_completion()
                .into_iter()
                .map(|r| r.tokens)
                .collect();
            let counters: Vec<(String, u64)> = engine
                .metrics()
                .counters()
                .map(|(n, v)| (n.to_string(), v))
                .collect();
            (tokens, counters)
        })
    };
    let (tokens_plain, counters_plain) = run(false);
    let (tokens_observed, counters_observed) = run(true);
    assert_eq!(tokens_plain, tokens_observed, "recorder changed the tokens");
    assert_eq!(counters_plain, counters_observed, "recorder changed counters");
}

/// End-to-end mixed-tenant keyed consistency through the eval layer: a
/// workload mixing tenants, priorities, deadlines, and lengths serves with
/// zero mismatches against each request's solo run.
#[test]
fn mixed_tenant_workload_is_batch_consistent() {
    use nora::eval::serving::{analog_serving_consistency, ServingWorkload};
    use nora::nn::corpus::{Corpus, CorpusConfig};
    let m = model();
    let mut corpus = Corpus::new(CorpusConfig::new(16, 16, 9));
    let workload = ServingWorkload::mixed_from_corpus(
        &mut corpus,
        8,
        3,
        &[6, 14, 19],
        3,
        Sampling::Temperature(1.1),
    );
    let mut analog = deploy(&m);
    let summary = analog_serving_consistency(&mut analog, &workload, 4);
    assert_eq!(summary.requests, 8);
    assert_eq!(summary.mismatches, 0);
}
