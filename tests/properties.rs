//! Property-based tests (proptest) on the core invariants.

use nora::cim::{AnalogLinear, AnalogTile, TileConfig};
use nora::core::{smoothing_vector, SmoothingConfig};
use nora::device::{PcmModel, NvmModel};
use nora::tensor::quant::Quantizer;
use nora::tensor::{rng::Rng, Matrix};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn quantizer_output_is_in_range_idempotent_and_close(
        bits in 2u32..10,
        bound in 0.1f32..10.0,
        x in -100.0f32..100.0,
    ) {
        let q = Quantizer::with_bits(bits, bound);
        let y = q.quantize(x);
        prop_assert!(y.abs() <= bound + 1e-5);
        prop_assert_eq!(q.quantize(y), y);
        if x.abs() <= bound {
            prop_assert!((y - x).abs() <= q.step() / 2.0 + 1e-5);
        }
    }

    #[test]
    fn quantizer_is_monotone(
        bits in 2u32..8,
        a in -5.0f32..5.0,
        b in -5.0f32..5.0,
    ) {
        let q = Quantizer::with_bits(bits, 1.0);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(q.quantize(lo) <= q.quantize(hi));
    }

    #[test]
    fn smoothing_factors_positive_finite_and_monotone_in_activation(
        lambda in 0.0f32..=1.0,
        act in proptest::collection::vec(0.0f32..1000.0, 1..32),
        w_max in 0.001f32..10.0,
    ) {
        let weights = vec![w_max; act.len()];
        let cfg = SmoothingConfig { lambda, eps: 1e-5 };
        let s = smoothing_vector(&act, &weights, cfg);
        prop_assert!(s.iter().all(|&v| v.is_finite() && v > 0.0));
        // For fixed weights and λ>0, a larger activation max never gets a
        // smaller factor (dead channels excepted — they map to 1).
        if lambda > 0.0 {
            for (i, &a) in act.iter().enumerate() {
                for (j, &b) in act.iter().enumerate() {
                    if a > 0.0 && b > 0.0 && a <= b {
                        prop_assert!(
                            s[i] <= s[j] * (1.0 + 1e-4),
                            "act {a} vs {b}: s {} vs {}", s[i], s[j]
                        );
                    }
                    let _ = (i, j);
                }
            }
        }
    }

    #[test]
    fn lambda_endpoints_match_closed_forms(
        act in proptest::collection::vec(0.01f32..100.0, 1..16),
        weights in proptest::collection::vec(0.01f32..100.0, 16..17),
    ) {
        let n = act.len();
        let w = &weights[..1]; // one weight value reused
        let ws = vec![w[0]; n];
        let s0 = smoothing_vector(&act, &ws, SmoothingConfig::with_lambda(0.0));
        let s1 = smoothing_vector(&act, &ws, SmoothingConfig::with_lambda(1.0));
        for k in 0..n {
            prop_assert!((s0[k] - 1.0 / ws[k]).abs() / (1.0 / ws[k]) < 1e-3);
            prop_assert!((s1[k] - act[k]).abs() / act[k] < 1e-3);
        }
    }

    #[test]
    fn ideal_tile_is_exact_for_any_smoothing(
        rows in 2usize..24,
        cols in 2usize..16,
        seed in 0u64..1000,
    ) {
        let mut rng = Rng::seed_from(seed);
        let w = Matrix::random_normal(rows, cols, 0.0, 1.0, &mut rng);
        let x = Matrix::random_normal(3, rows, 0.0, 1.0, &mut rng);
        let s: Vec<f32> = (0..rows).map(|_| rng.uniform(0.05, 20.0)).collect();
        let mut tile = AnalogTile::new(
            w.clone(),
            Some(&s),
            TileConfig::ideal(),
            Rng::seed_from(seed ^ 1),
        );
        let y = tile.forward(&x);
        let reference = x.matmul(&w);
        let scale = reference
            .as_slice()
            .iter()
            .fold(1e-6f32, |m, &v| m.max(v.abs())) as f64;
        prop_assert!(y.mse(&reference).sqrt() / scale < 1e-4);
    }

    #[test]
    fn tile_partitioning_reassembles_exactly(
        d_in in 2usize..60,
        d_out in 2usize..40,
        tile_rows in 2usize..20,
        tile_cols in 2usize..20,
        seed in 0u64..500,
    ) {
        let mut rng = Rng::seed_from(seed);
        let w = Matrix::random_normal(d_in, d_out, 0.0, 0.5, &mut rng);
        let x = Matrix::random_normal(2, d_in, 0.0, 1.0, &mut rng);
        let cfg = TileConfig::ideal().with_tile_size(tile_rows, tile_cols);
        let mut layer = AnalogLinear::new(w.clone(), None, cfg, seed);
        let y = layer.forward(&x);
        let reference = x.matmul(&w);
        let scale = reference
            .as_slice()
            .iter()
            .fold(1e-6f32, |m, &v| m.max(v.abs())) as f64;
        prop_assert!(y.mse(&reference).sqrt() / scale < 1e-4);
    }

    #[test]
    fn pcm_drift_is_monotone_decreasing_in_time(
        g in 1.0f32..25.0,
        seed in 0u64..1000,
    ) {
        let pcm = PcmModel::default();
        let mut rng = Rng::seed_from(seed);
        let cell = pcm.program(g, &mut rng);
        let mut prev = f32::INFINITY;
        for &t in &[20.0, 100.0, 1000.0, 3600.0, 86_400.0] {
            let now = cell.drifted(&pcm, t);
            prop_assert!(now <= prev + 1e-6);
            prop_assert!(now >= 0.0);
            prev = now;
        }
    }

    #[test]
    fn matrix_transpose_is_involutive_and_matmul_matches_matvec(
        rows in 1usize..12,
        cols in 1usize..12,
        seed in 0u64..1000,
    ) {
        let mut rng = Rng::seed_from(seed);
        let m = Matrix::random_normal(rows, cols, 0.0, 1.0, &mut rng);
        prop_assert_eq!(m.transpose().transpose(), m.clone());
        let x: Vec<f32> = (0..cols).map(|_| rng.uniform(-1.0, 1.0)).collect();
        let via_matvec = m.matvec(&x);
        let xm = Matrix::from_vec(cols, 1, x);
        let via_matmul = m.matmul(&xm);
        for r in 0..rows {
            prop_assert!((via_matvec[r] - via_matmul[(r, 0)]).abs() < 1e-4);
        }
    }

    #[test]
    fn rng_streams_are_reproducible(seed in 0u64..u64::MAX) {
        let mut a = Rng::seed_from(seed);
        let mut b = Rng::seed_from(seed);
        for _ in 0..16 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn serializer_round_trips_random_architectures(
        vocab in 2usize..24,
        d_pow in 1u32..4, // d_model ∈ {4, 8, 16} (heads = 2 divides all)
        layers in 1usize..3,
        seed in 0u64..1000,
    ) {
        use nora::nn::serialize::{load, save, SavedMeta};
        use nora::nn::{ModelConfig, TransformerLm};
        let d_model = 2usize << d_pow;
        let cfg = ModelConfig {
            vocab,
            max_seq: 8,
            d_model,
            heads: 2,
            d_ff: d_model * 2,
            layers,
        };
        let model = TransformerLm::new(cfg, &mut Rng::seed_from(seed));
        let mut buf = Vec::new();
        save(&model, SavedMeta { first_loss: 1.0, final_loss: 0.5 }, &mut buf).unwrap();
        let (loaded, _) = load(buf.as_slice()).unwrap();
        let tokens: Vec<usize> = (0..6).map(|i| i % vocab).collect();
        prop_assert_eq!(model.forward(&tokens), loaded.forward(&tokens));
    }

    #[test]
    fn corpus_episodes_always_well_formed(
        vocab in 8usize..64,
        seq_pow in 3u32..7, // seq_len ∈ {8..64}
        seed in 0u64..1000,
    ) {
        use nora::nn::corpus::{Corpus, CorpusConfig, KEY_MARK, QUERY_MARK, FIRST_CONTENT};
        let seq_len = 1usize << seq_pow;
        let mut corpus = Corpus::new(CorpusConfig::new(vocab, seq_len, seed));
        for _ in 0..5 {
            let ep = corpus.episode();
            prop_assert_eq!(ep.tokens.len(), seq_len);
            prop_assert_eq!(ep.tokens[seq_len - 2], QUERY_MARK);
            prop_assert_eq!(ep.tokens[seq_len - 1], ep.key);
            prop_assert!(ep.key >= FIRST_CONTENT && ep.key < vocab);
            let key_pos = ep.tokens.iter().position(|&t| t == KEY_MARK);
            prop_assert!(key_pos.is_some());
            prop_assert_eq!(ep.tokens[key_pos.unwrap() + 1], ep.key);
            prop_assert!(ep.tokens.iter().all(|&t| t < vocab));
        }
    }

    #[test]
    fn sliced_programming_never_hurts(
        slices in 1u32..4,
        seed in 0u64..300,
    ) {
        use nora::device::{program_matrix_sliced, read_sliced_mean, PcmModel};
        let mut rng = Rng::seed_from(seed);
        let w = Matrix::random_uniform(8, 8, -1.0, 1.0, &mut rng);
        let pcm = PcmModel::default();
        let mut prog_rng = Rng::seed_from(seed ^ 0xab);
        let sliced = program_matrix_sliced(&w, &pcm, slices, 8.0, &mut prog_rng);
        let back = read_sliced_mean(&sliced, &pcm, 0.0);
        let rmse = nora::tensor::stats::rmse(w.as_slice(), back.as_slice());
        // Single-slice PCM error is ~0.04 normalised; more slices only
        // improve on it. Allow generous slack for small-sample noise.
        let ceiling = 0.12 / (8.0f64).powi(slices as i32 - 1).min(64.0);
        prop_assert!(rmse < ceiling.max(0.01), "slices {slices}: rmse {rmse}");
    }

    #[test]
    fn bit_serial_error_bounded_by_lsb(
        bits in 3u32..9,
        seed in 0u64..300,
    ) {
        use nora::cim::InputEncoding;
        let mut rng = Rng::seed_from(seed);
        let w = Matrix::random_normal(12, 6, 0.0, 0.5, &mut rng);
        let x = Matrix::random_normal(2, 12, 0.0, 1.0, &mut rng);
        let mut cfg = TileConfig::ideal();
        cfg.input_encoding = InputEncoding::BitSerial { bits };
        let mut tile = AnalogTile::new(w.clone(), None, cfg, Rng::seed_from(seed ^ 1));
        let y = tile.forward(&x);
        let reference = x.matmul(&w);
        // Quantization error per input ≤ α·LSB/2; through the GEMV the
        // worst case is Σ|ŵ| times that. Use a loose bound: rows · LSB.
        let alpha_max = x.row_abs_max().iter().fold(0.0f32, |m, &v| m.max(v));
        let lsb = 1.0 / ((1u32 << (bits - 1)) - 1) as f32;
        let bound = 12.0 * lsb * alpha_max;
        for (a, b) in y.as_slice().iter().zip(reference.as_slice()) {
            prop_assert!((a - b).abs() <= bound, "err {} bound {bound}", (a - b).abs());
        }
    }
}
