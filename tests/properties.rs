//! Property-style tests on the core invariants.
//!
//! Formerly written with `proptest`; rewritten against a small in-tree
//! case-generation loop so the workspace builds with no network access.
//! Each property runs over `CASES` deterministic seeds; inputs are drawn
//! from the same ranges the proptest strategies used.

use nora::cim::{AnalogLinear, AnalogTile, TileConfig};
use nora::core::{smoothing_vector, SmoothingConfig};
use nora::device::{NvmModel, PcmModel};
use nora::tensor::quant::Quantizer;
use nora::tensor::{rng::Rng, Matrix};

/// Number of generated cases per property (matches the old proptest config).
const CASES: u64 = 64;

/// Runs `body` once per case with a deterministically seeded generator.
fn for_cases(tag: u64, body: impl Fn(&mut Rng)) {
    for case in 0..CASES {
        let mut rng = Rng::seed_from(tag ^ (case.wrapping_mul(0x9E37_79B9_7F4A_7C15)));
        body(&mut rng);
    }
}

fn gen_range_u(rng: &mut Rng, lo: usize, hi: usize) -> usize {
    lo + rng.below(hi - lo)
}

#[test]
fn quantizer_output_is_in_range_idempotent_and_close() {
    for_cases(0x11, |rng| {
        let bits = gen_range_u(rng, 2, 10) as u32;
        let bound = rng.uniform(0.1, 10.0);
        let x = rng.uniform(-100.0, 100.0);
        let q = Quantizer::with_bits(bits, bound);
        let y = q.quantize(x);
        assert!(y.abs() <= bound + 1e-5);
        assert_eq!(q.quantize(y), y);
        if x.abs() <= bound {
            assert!((y - x).abs() <= q.step() / 2.0 + 1e-5);
        }
    });
}

#[test]
fn quantizer_is_monotone() {
    for_cases(0x12, |rng| {
        let bits = gen_range_u(rng, 2, 8) as u32;
        let a = rng.uniform(-5.0, 5.0);
        let b = rng.uniform(-5.0, 5.0);
        let q = Quantizer::with_bits(bits, 1.0);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        assert!(q.quantize(lo) <= q.quantize(hi));
    });
}

#[test]
fn smoothing_factors_positive_finite_and_monotone_in_activation() {
    for_cases(0x13, |rng| {
        let lambda = rng.uniform(0.0, 1.0);
        let n = gen_range_u(rng, 1, 32);
        let act: Vec<f32> = (0..n).map(|_| rng.uniform(0.0, 1000.0)).collect();
        let w_max = rng.uniform(0.001, 10.0);
        let weights = vec![w_max; act.len()];
        let cfg = SmoothingConfig { lambda, eps: 1e-5 };
        let s = smoothing_vector(&act, &weights, cfg);
        assert!(s.iter().all(|&v| v.is_finite() && v > 0.0));
        // For fixed weights and λ>0, a larger activation max never gets a
        // smaller factor (dead channels excepted — they map to 1).
        if lambda > 0.0 {
            for (i, &a) in act.iter().enumerate() {
                for (j, &b) in act.iter().enumerate() {
                    if a > 0.0 && b > 0.0 && a <= b {
                        assert!(
                            s[i] <= s[j] * (1.0 + 1e-4),
                            "act {a} vs {b}: s {} vs {}",
                            s[i],
                            s[j]
                        );
                    }
                }
            }
        }
    });
}

#[test]
fn lambda_endpoints_match_closed_forms() {
    for_cases(0x14, |rng| {
        let n = gen_range_u(rng, 1, 16);
        let act: Vec<f32> = (0..n).map(|_| rng.uniform(0.01, 100.0)).collect();
        let w = rng.uniform(0.01, 100.0);
        let ws = vec![w; n];
        let s0 = smoothing_vector(&act, &ws, SmoothingConfig::with_lambda(0.0));
        let s1 = smoothing_vector(&act, &ws, SmoothingConfig::with_lambda(1.0));
        for k in 0..n {
            assert!((s0[k] - 1.0 / ws[k]).abs() / (1.0 / ws[k]) < 1e-3);
            assert!((s1[k] - act[k]).abs() / act[k] < 1e-3);
        }
    });
}

#[test]
fn ideal_tile_is_exact_for_any_smoothing() {
    for_cases(0x15, |rng| {
        let rows = gen_range_u(rng, 2, 24);
        let cols = gen_range_u(rng, 2, 16);
        let seed = rng.next_u64() % 1000;
        let mut grng = Rng::seed_from(seed);
        let w = Matrix::random_normal(rows, cols, 0.0, 1.0, &mut grng);
        let x = Matrix::random_normal(3, rows, 0.0, 1.0, &mut grng);
        let s: Vec<f32> = (0..rows).map(|_| grng.uniform(0.05, 20.0)).collect();
        let mut tile = AnalogTile::new(
            w.clone(),
            Some(&s),
            TileConfig::ideal(),
            Rng::seed_from(seed ^ 1),
        );
        let y = tile.forward(&x);
        let reference = x.matmul(&w);
        let scale = reference
            .as_slice()
            .iter()
            .fold(1e-6f32, |m, &v| m.max(v.abs())) as f64;
        assert!(y.mse(&reference).sqrt() / scale < 1e-4);
    });
}

#[test]
fn tile_partitioning_reassembles_exactly() {
    for_cases(0x16, |rng| {
        let d_in = gen_range_u(rng, 2, 60);
        let d_out = gen_range_u(rng, 2, 40);
        let tile_rows = gen_range_u(rng, 2, 20);
        let tile_cols = gen_range_u(rng, 2, 20);
        let seed = rng.next_u64() % 500;
        let mut grng = Rng::seed_from(seed);
        let w = Matrix::random_normal(d_in, d_out, 0.0, 0.5, &mut grng);
        let x = Matrix::random_normal(2, d_in, 0.0, 1.0, &mut grng);
        let cfg = TileConfig::ideal().with_tile_size(tile_rows, tile_cols);
        let mut layer = AnalogLinear::new(w.clone(), None, cfg, seed);
        let y = layer.forward(&x);
        let reference = x.matmul(&w);
        let scale = reference
            .as_slice()
            .iter()
            .fold(1e-6f32, |m, &v| m.max(v.abs())) as f64;
        assert!(y.mse(&reference).sqrt() / scale < 1e-4);
    });
}

#[test]
fn pcm_drift_is_monotone_decreasing_in_time() {
    for_cases(0x17, |rng| {
        let g = rng.uniform(1.0, 25.0);
        let pcm = PcmModel::default();
        let cell = pcm.program(g, rng);
        let mut prev = f32::INFINITY;
        for &t in &[20.0, 100.0, 1000.0, 3600.0, 86_400.0] {
            let now = cell.drifted(&pcm, t);
            assert!(now <= prev + 1e-6);
            assert!(now >= 0.0);
            prev = now;
        }
    });
}

#[test]
fn matrix_transpose_is_involutive_and_matmul_matches_matvec() {
    for_cases(0x18, |rng| {
        let rows = gen_range_u(rng, 1, 12);
        let cols = gen_range_u(rng, 1, 12);
        let m = Matrix::random_normal(rows, cols, 0.0, 1.0, rng);
        assert_eq!(m.transpose().transpose(), m.clone());
        let x: Vec<f32> = (0..cols).map(|_| rng.uniform(-1.0, 1.0)).collect();
        let via_matvec = m.matvec(&x);
        let xm = Matrix::from_vec(cols, 1, x);
        let via_matmul = m.matmul(&xm);
        for r in 0..rows {
            assert!((via_matvec[r] - via_matmul[(r, 0)]).abs() < 1e-4);
        }
    });
}

#[test]
fn rng_streams_are_reproducible() {
    for_cases(0x19, |rng| {
        let seed = rng.next_u64();
        let mut a = Rng::seed_from(seed);
        let mut b = Rng::seed_from(seed);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    });
}

#[test]
fn serializer_round_trips_random_architectures() {
    use nora::nn::serialize::{load, save, SavedMeta};
    use nora::nn::{ModelConfig, TransformerLm};
    // Exhaustive over the architecture grid the proptest strategy covered,
    // capped to keep runtime in check.
    for_cases(0x1a, |rng| {
        let vocab = gen_range_u(rng, 2, 24);
        let d_model = 2usize << (1 + rng.below(3) as u32); // {4, 8, 16}
        let layers = gen_range_u(rng, 1, 3);
        let seed = rng.next_u64() % 1000;
        let cfg = ModelConfig {
            vocab,
            max_seq: 8,
            d_model,
            heads: 2,
            d_ff: d_model * 2,
            layers,
        };
        let model = TransformerLm::new(cfg, &mut Rng::seed_from(seed));
        let mut buf = Vec::new();
        save(
            &model,
            SavedMeta {
                first_loss: 1.0,
                final_loss: 0.5,
            },
            &mut buf,
        )
        .unwrap();
        let (loaded, _) = load(buf.as_slice()).unwrap();
        let tokens: Vec<usize> = (0..6).map(|i| i % vocab).collect();
        assert_eq!(model.forward(&tokens), loaded.forward(&tokens));
    });
}

#[test]
fn corpus_episodes_always_well_formed() {
    use nora::nn::corpus::{Corpus, CorpusConfig, FIRST_CONTENT, KEY_MARK, QUERY_MARK};
    for_cases(0x1b, |rng| {
        let vocab = gen_range_u(rng, 8, 64);
        let seq_len = 1usize << (3 + rng.below(4) as u32); // {8..64}
        let seed = rng.next_u64() % 1000;
        let mut corpus = Corpus::new(CorpusConfig::new(vocab, seq_len, seed));
        for _ in 0..5 {
            let ep = corpus.episode();
            assert_eq!(ep.tokens.len(), seq_len);
            assert_eq!(ep.tokens[seq_len - 2], QUERY_MARK);
            assert_eq!(ep.tokens[seq_len - 1], ep.key);
            assert!(ep.key >= FIRST_CONTENT && ep.key < vocab);
            let key_pos = ep.tokens.iter().position(|&t| t == KEY_MARK);
            assert!(key_pos.is_some());
            assert_eq!(ep.tokens[key_pos.unwrap() + 1], ep.key);
            assert!(ep.tokens.iter().all(|&t| t < vocab));
        }
    });
}

#[test]
fn sliced_programming_never_hurts() {
    use nora::device::{program_matrix_sliced, read_sliced_mean, PcmModel};
    for_cases(0x1c, |rng| {
        let slices = 1 + rng.below(3) as u32;
        let seed = rng.next_u64() % 300;
        let mut grng = Rng::seed_from(seed);
        let w = Matrix::random_uniform(8, 8, -1.0, 1.0, &mut grng);
        let pcm = PcmModel::default();
        let mut prog_rng = Rng::seed_from(seed ^ 0xab);
        let sliced = program_matrix_sliced(&w, &pcm, slices, 8.0, &mut prog_rng);
        let back = read_sliced_mean(&sliced, &pcm, 0.0);
        let rmse = nora::tensor::stats::rmse(w.as_slice(), back.as_slice());
        // Single-slice PCM error is ~0.04 normalised; more slices only
        // improve on it. Allow generous slack for small-sample noise.
        let ceiling = 0.12 / (8.0f64).powi(slices as i32 - 1).min(64.0);
        assert!(rmse < ceiling.max(0.01), "slices {slices}: rmse {rmse}");
    });
}

#[test]
fn bit_serial_error_bounded_by_lsb() {
    use nora::cim::InputEncoding;
    for_cases(0x1d, |rng| {
        let bits = gen_range_u(rng, 3, 9) as u32;
        let seed = rng.next_u64() % 300;
        let mut grng = Rng::seed_from(seed);
        let w = Matrix::random_normal(12, 6, 0.0, 0.5, &mut grng);
        let x = Matrix::random_normal(2, 12, 0.0, 1.0, &mut grng);
        let mut cfg = TileConfig::ideal();
        cfg.input_encoding = InputEncoding::BitSerial { bits };
        let mut tile = AnalogTile::new(w.clone(), None, cfg, Rng::seed_from(seed ^ 1));
        let y = tile.forward(&x);
        let reference = x.matmul(&w);
        // Quantization error per input ≤ α·LSB/2; through the GEMV the
        // worst case is Σ|ŵ| times that. Use a loose bound: rows · LSB.
        let alpha_max = x.row_abs_max().iter().fold(0.0f32, |m, &v| m.max(v));
        let lsb = 1.0 / ((1u32 << (bits - 1)) - 1) as f32;
        let bound = 12.0 * lsb * alpha_max;
        for (a, b) in y.as_slice().iter().zip(reference.as_slice()) {
            assert!((a - b).abs() <= bound, "err {} bound {bound}", (a - b).abs());
        }
    });
}
