//! Cross-crate integration tests of the analog tile semantics against the
//! paper's equations, using the facade crate's public API only.

use nora::cim::{AnalogLinear, AnalogTile, NonIdeality, Resolution, TileConfig};
use nora::device::{PcmModel, NvmModel};
use nora::tensor::{rng::Rng, stats, Matrix};

#[test]
fn equation_3_scaling_factors_cancel_exactly() {
    // y = α γ f_adc(Σ w̃ x̃) with all f ideal must equal x · W for any s.
    let mut rng = Rng::seed_from(1);
    let w = Matrix::random_normal(48, 24, 0.0, 0.4, &mut rng);
    let x = Matrix::random_normal(6, 48, 0.0, 2.0, &mut rng);
    for s_seed in 0..3u64 {
        let mut s_rng = Rng::seed_from(s_seed);
        let s: Vec<f32> = (0..48).map(|_| s_rng.uniform(0.1, 10.0)).collect();
        let mut tile = AnalogTile::new(
            w.clone(),
            Some(&s),
            TileConfig::ideal(),
            Rng::seed_from(2),
        );
        let err = tile.forward(&x).mse(&x.matmul(&w));
        assert!(err < 1e-8, "seed {s_seed}: mse {err}");
    }
}

#[test]
fn smoothing_reduces_quantization_error_on_outlier_inputs() {
    // The core NORA mechanism at tile level: with a 7-bit DAC and outlier
    // inputs, the right smoothing vector cuts the error dramatically.
    let mut rng = Rng::seed_from(3);
    let w = Matrix::random_normal(128, 64, 0.0, 0.1, &mut rng);
    let mut x = Matrix::random_normal(8, 128, 0.0, 1.0, &mut rng);
    for i in 0..x.rows() {
        x.row_mut(i)[5] *= 60.0;
    }
    let reference = x.matmul(&w);

    let mut cfg = TileConfig::ideal();
    cfg.dac = Resolution::bits(7);
    let mut naive = AnalogTile::new(w.clone(), None, cfg.clone(), Rng::seed_from(4));
    let naive_mse = naive.forward(&x).mse(&reference);

    let act_max = x.col_abs_max();
    let w_max = w.row_abs_max();
    let s: Vec<f32> = act_max
        .iter()
        .zip(&w_max)
        .map(|(&a, &wm)| (a.max(1e-5) / wm.max(1e-5)).sqrt())
        .collect();
    let mut smoothed = AnalogTile::new(w.clone(), Some(&s), cfg, Rng::seed_from(4));
    let nora_mse = smoothed.forward(&x).mse(&reference);
    assert!(
        nora_mse < naive_mse / 10.0,
        "naive {naive_mse} nora {nora_mse}"
    );
}

#[test]
fn tiled_layer_equals_single_tile_when_ideal() {
    let mut rng = Rng::seed_from(5);
    let w = Matrix::random_normal(96, 80, 0.0, 0.3, &mut rng);
    let x = Matrix::random_normal(4, 96, 0.0, 1.0, &mut rng);
    let mut single = AnalogLinear::new(w.clone(), None, TileConfig::ideal(), 6);
    let mut tiled = AnalogLinear::new(
        w.clone(),
        None,
        TileConfig::ideal().with_tile_size(32, 16),
        6,
    );
    let a = single.forward(&x);
    let b = tiled.forward(&x);
    assert!(a.mse(&b) < 1e-9);
    assert_eq!(tiled.tile_count(), 3 * 5);
}

#[test]
fn all_eight_non_idealities_degrade_a_real_gemv_monotonically() {
    let mut rng = Rng::seed_from(7);
    let w = Matrix::random_normal(64, 64, 0.0, 0.2, &mut rng);
    let x = Matrix::random_normal(8, 64, 0.0, 1.0, &mut rng);
    let reference = x.matmul(&w);
    for noise in NonIdeality::ALL {
        let mse_at = |level: f32| {
            let mut cfg = noise.configure(level);
            cfg.tile_rows = 64;
            cfg.tile_cols = 64;
            let mut tile = AnalogTile::new(w.clone(), None, cfg, Rng::seed_from(8));
            tile.forward(&x).mse(&reference)
        };
        let low = mse_at(0.02);
        let high = mse_at(0.5);
        assert!(
            high > low,
            "{noise}: degradation should grow with severity ({low} vs {high})"
        );
    }
}

#[test]
fn pcm_statistics_flow_through_to_tile_weights() {
    // The tile's effective weights must show the PCM programming-noise
    // magnitude predicted by the device model.
    let pcm = PcmModel::default();
    let sigma_rel = pcm.prog_sigma(12.5) / pcm.g_max; // at mid conductance
    let mut rng = Rng::seed_from(9);
    let w = Matrix::random_uniform(64, 64, -1.0, 1.0, &mut rng);

    let mut cfg = TileConfig::ideal();
    cfg.weight_source = nora::cim::WeightSource::Pcm(1.0);
    let tile = AnalogTile::new(w.clone(), None, cfg, Rng::seed_from(10));
    // γ_j ≈ 1 for uniform(-1,1) columns, so effective ≈ w + noise.
    let rmse = stats::rmse(tile.effective_weights().as_slice(), w.as_slice());
    assert!(
        rmse > sigma_rel as f64 * 0.3 && rmse < sigma_rel as f64 * 3.0,
        "rmse {rmse} vs device-model σ {sigma_rel}"
    );
}

#[test]
fn device_trait_objects_are_interchangeable() {
    let models: Vec<Box<dyn NvmModel>> = vec![
        Box::new(PcmModel::default()),
        Box::new(nora::device::ReramModel::default()),
    ];
    let mut rng = Rng::seed_from(11);
    for m in &models {
        let cell = m.program(0.5 * m.g_max(), &mut rng);
        let g = m.read_cell(&cell, 100.0, &mut rng);
        assert!(g >= 0.0 && g <= m.g_max() * 1.5);
    }
}
