//! Finite-difference gradient checks for every layer of the manual-backprop
//! stack, plus the straight-through (STE) hardware-aware training path.
//!
//! Each check drives a layer with the quadratic probe loss `L = Σ y² / 2`
//! (so `dy = y`), compares the analytic gradients against central
//! differences at `ε = 1e-3`, and repeats over three seeds. Tolerances are
//! relative (`tol · (1 + |analytic|)`): 1e-2 for plain linears and the
//! loss head, 2e-2 for LayerNorm (two nonlinear reductions per row), 3e-2
//! for full attention.
//!
//! The STE path needs care: a fake-quantized forward is piecewise constant
//! in `x`, so finite differences through a *coarse* grid measure zero.
//! Interior/rail behaviour on a coarse grid is therefore asserted
//! analytically (bitwise against the clean gradient, exact zeros at the
//! rails), while the finite-difference comparison runs on a 20-bit grid
//! whose step (≈2e-6) is far below `ε`.

use nora::nn::ste::SteQuant;
use nora::nn::trainer::TrainConfig;
use nora::nn::{
    cross_entropy, DigitalLinear, Embedding, LayerNorm, ModelConfig, MultiHeadAttention,
    TransformerLm,
};
use nora::tensor::rng::Rng;
use nora::tensor::Matrix;

const EPS: f32 = 1e-3;

/// Quadratic probe loss `Σ y² / 2` of a forward output.
fn sq_loss(y: &Matrix) -> f64 {
    y.as_slice()
        .iter()
        .map(|&v| (v as f64) * (v as f64) / 2.0)
        .sum()
}

fn assert_close(num: f64, ana: f64, tol: f64, what: &str) {
    assert!(
        (num - ana).abs() < tol * (1.0 + ana.abs()),
        "{what}: numeric {num} vs analytic {ana}"
    );
}

/// A few probe coordinates spread over an `r × c` matrix.
fn probes(r: usize, c: usize) -> Vec<(usize, usize)> {
    vec![(0, 0), (r / 2, c / 2), (r - 1, c - 1), (0, c - 1)]
}

#[test]
fn linear_gradients_match_finite_differences() {
    for seed in [1, 2, 3] {
        let mut rng = Rng::seed_from(seed);
        let mut lin = DigitalLinear::new(6, 5, &mut rng);
        let x = Matrix::random_normal(3, 6, 0.0, 1.0, &mut rng);
        let y = lin.forward(&x);
        let dx = lin.backward(&x, &y);

        for (r, c) in probes(6, 5) {
            let mut plus = lin.clone();
            plus.weight.value[(r, c)] += EPS;
            let mut minus = lin.clone();
            minus.weight.value[(r, c)] -= EPS;
            let num =
                (sq_loss(&plus.forward(&x)) - sq_loss(&minus.forward(&x))) / (2.0 * EPS as f64);
            assert_close(num, lin.weight.grad[(r, c)] as f64, 1e-2, "linear dW");
        }
        for (r, c) in probes(3, 6) {
            let mut xp = x.clone();
            xp[(r, c)] += EPS;
            let mut xm = x.clone();
            xm[(r, c)] -= EPS;
            let num =
                (sq_loss(&lin.forward(&xp)) - sq_loss(&lin.forward(&xm))) / (2.0 * EPS as f64);
            assert_close(num, dx[(r, c)] as f64, 1e-2, "linear dx");
        }
        for c in [0usize, 4] {
            let mut plus = lin.clone();
            plus.bias.value[(0, c)] += EPS;
            let mut minus = lin.clone();
            minus.bias.value[(0, c)] -= EPS;
            let num =
                (sq_loss(&plus.forward(&x)) - sq_loss(&minus.forward(&x))) / (2.0 * EPS as f64);
            assert_close(num, lin.bias.grad[(0, c)] as f64, 1e-2, "linear db");
        }
    }
}

#[test]
fn layernorm_gradients_match_finite_differences() {
    for seed in [1, 2, 3] {
        let mut rng = Rng::seed_from(seed);
        let d = 8;
        let mut ln = LayerNorm::new(d);
        // Non-trivial gain/bias so their gradients are exercised.
        ln.gain.value = Matrix::random_normal(1, d, 1.0, 0.2, &mut rng);
        ln.bias.value = Matrix::random_normal(1, d, 0.0, 0.2, &mut rng);
        let x = Matrix::random_normal(4, d, 0.0, 1.0, &mut rng);
        let y = ln.forward(&x);
        let dx = ln.backward(&y);

        let loss_at = |ln: &LayerNorm, x: &Matrix| -> f64 {
            sq_loss(&ln.clone().forward(x))
        };
        for (r, c) in probes(4, d) {
            let mut xp = x.clone();
            xp[(r, c)] += EPS;
            let mut xm = x.clone();
            xm[(r, c)] -= EPS;
            let num = (loss_at(&ln, &xp) - loss_at(&ln, &xm)) / (2.0 * EPS as f64);
            assert_close(num, dx[(r, c)] as f64, 2e-2, "layernorm dx");
        }
        for c in [0usize, d / 2, d - 1] {
            let mut plus = ln.clone();
            plus.gain.value[(0, c)] += EPS;
            let mut minus = ln.clone();
            minus.gain.value[(0, c)] -= EPS;
            let num = (loss_at(&plus, &x) - loss_at(&minus, &x)) / (2.0 * EPS as f64);
            assert_close(num, ln.gain.grad[(0, c)] as f64, 2e-2, "layernorm dgain");

            let mut plus = ln.clone();
            plus.bias.value[(0, c)] += EPS;
            let mut minus = ln.clone();
            minus.bias.value[(0, c)] -= EPS;
            let num = (loss_at(&plus, &x) - loss_at(&minus, &x)) / (2.0 * EPS as f64);
            assert_close(num, ln.bias.grad[(0, c)] as f64, 2e-2, "layernorm dbias");
        }
    }
}

#[test]
fn attention_gradients_match_finite_differences() {
    for seed in [1, 2, 3] {
        let mut rng = Rng::seed_from(seed);
        let d = 8;
        let mut attn = MultiHeadAttention::new(d, 2, &mut rng);
        let x = Matrix::random_normal(4, d, 0.0, 1.0, &mut rng);
        let y = attn.forward(&x);
        let dx = attn.backward(&y);

        let loss_at = |attn: &MultiHeadAttention, x: &Matrix| -> f64 {
            sq_loss(&attn.clone().forward(x))
        };
        for (r, c) in probes(4, d) {
            let mut xp = x.clone();
            xp[(r, c)] += EPS;
            let mut xm = x.clone();
            xm[(r, c)] -= EPS;
            let num = (loss_at(&attn, &xp) - loss_at(&attn, &xm)) / (2.0 * EPS as f64);
            assert_close(num, dx[(r, c)] as f64, 3e-2, "attention dx");
        }
        // One probe in each of the four projections.
        for (name, grad_at) in [
            ("wq", 0usize),
            ("wk", 1),
            ("wv", 2),
            ("wo", 3),
        ] {
            let (r, c) = (d / 2, d / 2);
            let pick = |a: &MultiHeadAttention| match grad_at {
                0 => a.wq.weight.clone(),
                1 => a.wk.weight.clone(),
                2 => a.wv.weight.clone(),
                _ => a.wo.weight.clone(),
            };
            let poke = |a: &mut MultiHeadAttention, delta: f32| match grad_at {
                0 => a.wq.weight.value[(r, c)] += delta,
                1 => a.wk.weight.value[(r, c)] += delta,
                2 => a.wv.weight.value[(r, c)] += delta,
                _ => a.wo.weight.value[(r, c)] += delta,
            };
            let mut plus = attn.clone();
            poke(&mut plus, EPS);
            let mut minus = attn.clone();
            poke(&mut minus, -EPS);
            let num = (loss_at(&plus, &x) - loss_at(&minus, &x)) / (2.0 * EPS as f64);
            let ana = pick(&attn).grad[(r, c)] as f64;
            assert_close(num, ana, 3e-2, &format!("attention d{name}"));
        }
    }
}

#[test]
fn embedding_gradients_match_finite_differences() {
    for seed in [1, 2, 3] {
        let mut rng = Rng::seed_from(seed);
        let (vocab, max_seq, d) = (10, 8, 6);
        let mut emb = Embedding::new(vocab, max_seq, d, &mut rng);
        let tokens = [3usize, 1, 3, 7];
        let y = emb.forward(&tokens);
        emb.backward(&y);

        let loss_at = |emb: &Embedding| -> f64 { sq_loss(&emb.forward_inference(&tokens)) };
        // Token 3 appears twice — its gradient must be the scatter-add.
        for (tok, k) in [(3usize, 0usize), (1, d - 1), (7, d / 2)] {
            let mut plus = emb.clone();
            plus.tokens.value[(tok, k)] += EPS;
            let mut minus = emb.clone();
            minus.tokens.value[(tok, k)] -= EPS;
            let num = (loss_at(&plus) - loss_at(&minus)) / (2.0 * EPS as f64);
            assert_close(num, emb.tokens.grad[(tok, k)] as f64, 1e-2, "embedding dtok");
        }
        for (pos, k) in [(0usize, 0usize), (3, d - 1)] {
            let mut plus = emb.clone();
            plus.positions.value[(pos, k)] += EPS;
            let mut minus = emb.clone();
            minus.positions.value[(pos, k)] -= EPS;
            let num = (loss_at(&plus) - loss_at(&minus)) / (2.0 * EPS as f64);
            assert_close(num, emb.positions.grad[(pos, k)] as f64, 1e-2, "embedding dpos");
        }
    }
}

#[test]
fn softmax_cross_entropy_gradient_matches_finite_differences() {
    for seed in [1, 2, 3] {
        let mut rng = Rng::seed_from(seed);
        let (n, vocab) = (4, 9);
        let logits = Matrix::random_normal(n, vocab, 0.0, 2.0, &mut rng);
        let targets: Vec<usize> = (0..n).map(|i| (seed as usize + 2 * i) % vocab).collect();
        let (_, grad) = cross_entropy(&logits, &targets);

        for (r, c) in probes(n, vocab) {
            let mut lp = logits.clone();
            lp[(r, c)] += EPS;
            let mut lm = logits.clone();
            lm[(r, c)] -= EPS;
            let (loss_p, _) = cross_entropy(&lp, &targets);
            let (loss_m, _) = cross_entropy(&lm, &targets);
            let num = (loss_p - loss_m) / (2.0 * EPS as f64);
            assert_close(num, grad[(r, c)] as f64, 1e-2, "softmax+CE dlogits");
        }
    }
}

#[test]
fn full_model_loss_gradient_matches_finite_differences() {
    for seed in [1, 2, 3] {
        let mut rng = Rng::seed_from(seed);
        let mut model = TransformerLm::new(ModelConfig::tiny_for_tests(), &mut rng);
        let tokens = [1usize, 5, 2, 9, 4, 1, 5];
        model.zero_grad();
        model.loss_and_backward(&tokens);

        // Probe one entry in every parameter tensor of the model.
        let shapes: Vec<(usize, usize)> =
            model.params().iter().map(|p| p.value.shape()).collect();
        for (pi, &(r, c)) in shapes.iter().enumerate() {
            let probe = (r / 2, c / 2);
            let ana = model.params()[pi].grad[probe] as f64;
            let mut plus = model.clone();
            plus.params_mut()[pi].value[probe] += EPS;
            let mut minus = model.clone();
            minus.params_mut()[pi].value[probe] -= EPS;
            let num = (plus.loss_and_backward(&tokens) - minus.loss_and_backward(&tokens))
                / (2.0 * EPS as f64);
            assert_close(num, ana, 2e-2, &format!("model param {pi}"));
        }
    }
}

/// Builds a tile config with a fixed `α = 1` input mapping and the given
/// DAC resolution, everything else at the paper defaults.
fn ste_tile(dac_bits: u32) -> nora::cim::TileConfig {
    let mut cfg = nora::cim::TileConfig::paper_default();
    cfg.dac = nora::cim::Resolution::bits(dac_bits);
    cfg.noise_management = nora::cim::NoiseManagement::None;
    cfg
}

/// Coarse grid: the STE gradient is *defined*, not approximated — interior
/// points pass the clean gradient through bitwise, rail points are exactly
/// zero, and `dW` is taken at the fake-quantized input.
#[test]
fn ste_interior_gradients_exact_and_rail_points_masked() {
    for seed in [1, 2, 3] {
        let mut rng = Rng::seed_from(seed);
        let mut lin = DigitalLinear::new(4, 3, &mut rng);
        // Row 0 strictly interior (|x| < 1), row 1 with two rail values.
        let x = Matrix::from_rows(&[&[0.31, -0.62, 0.05, 0.9], &[1.5, -0.4, -2.0, 0.7]]);
        let dy = Matrix::random_normal(2, 3, 0.0, 1.0, &mut rng);

        let mut clean = lin.clone();
        let clean_dx = clean.backward(&x, &dy);

        let ste = SteQuant::from_tile(&ste_tile(4));
        lin.ste = Some(ste.clone());
        let dx = lin.backward(&x, &dy);

        // Interior entries: bitwise equal to the clean straight-through
        // gradient. Rail entries: exactly zero.
        for c in 0..4 {
            assert_eq!(dx[(0, c)], clean_dx[(0, c)], "interior (0,{c})");
        }
        assert_eq!(dx[(1, 0)], 0.0, "rail +1.5 must be masked");
        assert_eq!(dx[(1, 2)], 0.0, "rail -2.0 must be masked");
        assert_eq!(dx[(1, 1)], clean_dx[(1, 1)], "interior (1,1)");
        assert_eq!(dx[(1, 3)], clean_dx[(1, 3)], "interior (1,3)");

        // dW is taken at the fake-quantized input the forward used.
        let expected_dw = ste.fake_quantize(&x).transpose().matmul(&dy);
        assert_eq!(
            lin.weight.grad.as_slice(),
            expected_dw.as_slice(),
            "dW must be x̃ᵀ·dy"
        );
    }
}

/// Fine grid (20-bit DAC, step ≈ 2e-6 « ε): the quantizer is smooth at the
/// finite-difference scale, so the straight-through gradients must agree
/// with central differences like any other layer.
#[test]
fn ste_fine_grid_gradients_match_finite_differences() {
    for seed in [1, 2, 3] {
        let mut rng = Rng::seed_from(seed);
        let mut lin = DigitalLinear::new(5, 4, &mut rng);
        lin.ste = Some(SteQuant::from_tile(&ste_tile(20)));
        // Interior inputs only: FD at a rail would straddle the clip.
        let x = Matrix::random_normal(3, 5, 0.0, 0.3, &mut rng);
        assert!(x.as_slice().iter().all(|v| v.abs() < 1.0));
        let y = lin.forward(&x);
        let dx = lin.backward(&x, &y);

        for (r, c) in probes(5, 4) {
            let mut plus = lin.clone();
            plus.weight.value[(r, c)] += EPS;
            let mut minus = lin.clone();
            minus.weight.value[(r, c)] -= EPS;
            let num =
                (sq_loss(&plus.forward(&x)) - sq_loss(&minus.forward(&x))) / (2.0 * EPS as f64);
            assert_close(num, lin.weight.grad[(r, c)] as f64, 1e-2, "ste dW");
        }
        for (r, c) in probes(3, 5) {
            let mut xp = x.clone();
            xp[(r, c)] += EPS;
            let mut xm = x.clone();
            xm[(r, c)] -= EPS;
            let num =
                (sq_loss(&lin.forward(&xp)) - sq_loss(&lin.forward(&xm))) / (2.0 * EPS as f64);
            assert_close(num, dx[(r, c)] as f64, 1e-2, "ste dx");
        }
    }
}

/// The STE training loop's gradients drive real learning: a few steps of
/// `train_ste` on the induction corpus lower the loss, with gradient checks
/// guaranteeing those gradients are the true (straight-through) ones.
#[test]
fn ste_training_step_uses_consistent_gradients() {
    let mut corpus = nora::nn::corpus::Corpus::new(nora::nn::corpus::CorpusConfig::new(16, 16, 2));
    let mut model = TransformerLm::new(ModelConfig::tiny_for_tests(), &mut Rng::seed_from(7));
    let cfg = nora::nn::ste::SteConfig {
        base: TrainConfig {
            steps: 60,
            ..TrainConfig::default()
        },
        tile: nora::cim::TileConfig::paper_default(),
        prog_noise: false,
        read_noise: false,
        noise_scale: 0.0,
    };
    let report = nora::nn::ste::train_ste(&mut model, &mut corpus, &cfg, 3);
    assert!(
        report.final_loss < report.first_loss,
        "loss {} → {}",
        report.first_loss,
        report.final_loss
    );
}
