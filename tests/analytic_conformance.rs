//! Per-layer conformance of the analytic error-moment model against the
//! Monte-Carlo tile simulator.
//!
//! `nora::eval::analytic::layer_error_moments` claims the first two moments
//! of one `AnalogLinear`'s output error in closed form. These tests check
//! that claim directly, per non-ideality, at the MSE-matched severities of
//! the paper's Fig. 3 grid plus the full Table II paper-default stack:
//!
//! * deterministic stages (DAC/ADC quantization, S-shape, IR-drop) must
//!   reproduce the simulated output exactly — same `f32` kernels, zero
//!   predicted variance;
//! * stochastic stages must match the Monte-Carlo sample moments within
//!   tolerances derived from the sample count, never tuned per seed: the
//!   pooled mean within `4σ/√n` and the pooled error power within
//!   `4·√(2/n)` relative, with `n` the number of independent noise rows
//!   (reps × batch rows — errors within a row share converter draws, so
//!   per-element counts would overstate the resolution).
//!
//! All checks run over three seeds and are moment-level, not draw-level, so
//! they stay green under any `NORA_THREADS` partitioning (CI runs them in
//! the 1/4-thread matrix).

use nora::cim::{AnalogLinear, NonIdeality, TileConfig};
use nora::eval::analytic::layer_error_moments;
use nora::eval::noise_level::{paper_mse_grid, severity_for_mse, RefWorkload};
use nora::tensor::rng::Rng;
use nora::tensor::Matrix;

const SEEDS: [u64; 3] = [11, 22, 33];

/// A calibration-style workload: unit-variance Gaussian activations against
/// variance-normalised weights, the same statistics `severity_for_mse`
/// calibrates on.
fn workload(seed: u64, rows: usize, d: usize) -> (Matrix, Matrix) {
    let mut rng = Rng::seed_from(seed);
    let x = Matrix::random_normal(rows, d, 0.0, 1.0, &mut rng);
    let w = Matrix::random_normal(d, d, 0.0, 1.0 / (d as f32).sqrt(), &mut rng);
    (x, w)
}

/// A NORA-style per-input-channel smoothing vector (strictly positive,
/// spanning a decade) to exercise the rescale path of both the simulator
/// and the analytic block model.
fn smoothing_vector(seed: u64, d: usize) -> Vec<f32> {
    let mut rng = Rng::seed_from(seed ^ 0x5100);
    (0..d).map(|_| rng.uniform(0.4, 4.0)).collect()
}

struct McMoments {
    /// Pooled signed mean error `mean(y − y_ideal)` over reps × elements.
    mean_err: f64,
    /// Pooled error power `mean((y − y_ideal)²)` over reps × elements.
    power: f64,
    /// Independent sample count: reps × batch rows.
    n: f64,
}

/// Runs `reps` Monte-Carlo forwards and pools the error moments against the
/// ideal product. `rebuild` re-programs the tile each rep (fresh
/// programming-noise draw); otherwise the deployment is programmed once and
/// only the cycle noises re-draw.
fn mc_moments(
    w: &Matrix,
    smoothing: Option<&[f32]>,
    x: &Matrix,
    cfg: &TileConfig,
    seed: u64,
    reps: usize,
    rebuild: bool,
) -> McMoments {
    let ideal = x.matmul(w);
    let mut linear = AnalogLinear::try_with_smoothing(w.clone(), None, smoothing, cfg.clone(), seed)
        .expect("deploy analog linear");
    let mut sum = 0.0f64;
    let mut sq = 0.0f64;
    let elems = (x.rows() * w.cols()) as f64;
    for rep in 0..reps {
        if rebuild && rep > 0 {
            linear = AnalogLinear::try_with_smoothing(
                w.clone(),
                None,
                smoothing,
                cfg.clone(),
                seed.wrapping_add(rep as u64),
            )
            .expect("deploy analog linear");
        }
        let y = linear.forward(x);
        for i in 0..x.rows() {
            for (a, b) in y.row(i).iter().zip(ideal.row(i)) {
                let d = f64::from(a - b);
                sum += d;
                sq += d * d;
            }
        }
    }
    McMoments {
        mean_err: sum / (reps as f64 * elems),
        power: sq / (reps as f64 * elems),
        n: (reps * x.rows()) as f64,
    }
}

/// Checks one (config, smoothing) pair: analytic moments vs Monte-Carlo,
/// with sample-count tolerances.
#[allow(clippy::too_many_arguments)]
fn assert_moments_match(
    w: &Matrix,
    smoothing: Option<&[f32]>,
    x: &Matrix,
    cfg: &TileConfig,
    seed: u64,
    reps: usize,
    rebuild: bool,
    label: &str,
) {
    let pred = layer_error_moments(w, smoothing, x, cfg, None);
    let mc = mc_moments(w, smoothing, x, cfg, seed, reps, rebuild);
    let pred_power = pred.bias_power + pred.var_power;
    let ideal = x.matmul(w);
    let mut pred_mean = 0.0f64;
    for i in 0..x.rows() {
        for (a, b) in pred.mean.row(i).iter().zip(ideal.row(i)) {
            pred_mean += f64::from(a - b);
        }
    }
    pred_mean /= (x.rows() * w.cols()) as f64;

    // Pooled-mean estimator: std ≤ √(var/n) with n independent rows.
    let mean_tol = 4.0 * (pred.var_power / mc.n).sqrt() + 1e-6;
    assert!(
        (mc.mean_err - pred_mean).abs() < mean_tol,
        "{label}: pooled mean error {:.4e} vs predicted {:.4e} beyond ±{:.4e}",
        mc.mean_err,
        pred_mean,
        mean_tol
    );
    // Pooled-power estimator: relative 4·√(2/n) (Gaussian variance-of-
    // variance bound; quantization errors are uniform, μ₄ < 3σ⁴, so the
    // bound is conservative for them).
    let power_tol = 4.0 * (2.0 / mc.n).sqrt() * pred_power + 1e-9;
    assert!(
        (mc.power - pred_power).abs() < power_tol,
        "{label}: error power {:.4e} vs predicted {:.4e} beyond ±{:.4e}",
        mc.power,
        pred_power,
        power_tol
    );
}

/// Fig. 3 severities: each non-ideality matched to reference-workload MSE
/// points spanning the paper's grid.
fn fig3_severities(noise: NonIdeality, points: usize) -> Vec<f32> {
    let workload = RefWorkload::new(16, 64, 64, 9);
    paper_mse_grid(points)
        .iter()
        .map(|&mse| severity_for_mse(noise, mse, &workload))
        .collect()
}

#[test]
fn deterministic_stages_reproduce_the_simulator_exactly() {
    // Pure quantization / deterministic-transfer configurations: the
    // analytic mean replicates the forward chain with the simulator's own
    // f32 kernels, so a single Monte-Carlo forward must land on the
    // predicted mean to rounding, with zero predicted variance.
    let (x, w) = workload(5, 12, 64);
    for noise in [
        NonIdeality::DacQuantization,
        NonIdeality::AdcQuantization,
        NonIdeality::SShapeNonlinearity,
        NonIdeality::IrDrop,
    ] {
        for &severity in &fig3_severities(noise, 2) {
            let cfg = noise.configure(severity);
            for seed in SEEDS {
                for smoothing in [None, Some(smoothing_vector(seed, 64))] {
                    let s = smoothing.as_deref();
                    let pred = layer_error_moments(&w, s, &x, &cfg, None);
                    assert!(
                        pred.var_power < 1e-12,
                        "{noise}: deterministic stage predicts variance {:.3e}",
                        pred.var_power
                    );
                    let mut linear = AnalogLinear::try_with_smoothing(
                        w.clone(),
                        None,
                        s,
                        cfg.clone(),
                        seed,
                    )
                    .expect("deploy analog linear");
                    let y = linear.forward(&x);
                    for i in 0..x.rows() {
                        for (j, (&a, &b)) in y.row(i).iter().zip(pred.mean.row(i)).enumerate() {
                            assert!(
                                (a - b).abs() <= 1e-5 * b.abs().max(1.0),
                                "{noise} seed {seed} ({i},{j}): simulated {a} vs predicted {b}"
                            );
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn gaussian_noise_stage_moments_match_monte_carlo() {
    let (x, w) = workload(7, 16, 64);
    for noise in [
        NonIdeality::AdditiveInputNoise,
        NonIdeality::AdditiveOutputNoise,
        NonIdeality::ShortTermReadNoise,
    ] {
        for &severity in &fig3_severities(noise, 3) {
            let cfg = noise.configure(severity);
            for seed in SEEDS {
                assert_moments_match(
                    &w,
                    None,
                    &x,
                    &cfg,
                    seed,
                    48,
                    false,
                    &format!("{noise} severity {severity:.4} seed {seed}"),
                );
            }
        }
    }
}

#[test]
fn programming_noise_moments_match_monte_carlo_across_redeployments() {
    // Programming error is frozen at deployment, so each Monte-Carlo rep
    // must re-program the tile for the sample moments to estimate the
    // device-law ensemble the analytic model integrates over.
    let (x, w) = workload(13, 16, 64);
    for &severity in &fig3_severities(NonIdeality::ProgrammingNoise, 3) {
        let cfg = NonIdeality::ProgrammingNoise.configure(severity);
        for seed in SEEDS {
            assert_moments_match(
                &w,
                None,
                &x,
                &cfg,
                seed,
                48,
                true,
                &format!("prog_noise severity {severity:.4} seed {seed}"),
            );
        }
    }
}

#[test]
fn paper_default_stack_moments_match_monte_carlo_under_both_plans() {
    // The Table II configuration stacks converters, output noise, read
    // noise, IR-drop and PCM programming; reps re-program (the programming
    // draw is part of the ensemble) and both the naïve and a NORA-style
    // smoothed deployment are checked.
    let (x, w) = workload(21, 16, 64);
    let cfg = TileConfig::paper_default();
    for seed in SEEDS {
        for smoothing in [None, Some(smoothing_vector(seed, 64))] {
            let plan = if smoothing.is_some() { "nora" } else { "naive" };
            assert_moments_match(
                &w,
                smoothing.as_deref(),
                &x,
                &cfg,
                seed,
                48,
                true,
                &format!("paper_default {plan} seed {seed}"),
            );
        }
    }
}
