//! Integration tests for drift-aware long-horizon serving: bit-identity of
//! the maintained engine at any thread count (observed or not), determinism
//! of the virtual maintenance clock, and the mitigation ladder's
//! end-to-end accuracy contract over a 10⁶-virtual-second horizon.

use nora::cim::{FaultPlan, FaultTolerance, TileConfig};
use nora::core::RescalePlan;
use nora::nn::generate::Sampling;
use nora::nn::zoo::{tiny_spec, ModelFamily};
use nora::obs::MemoryRecorder;
use nora::parallel::with_threads;
use nora::serve::{
    AnalogBackend, EngineConfig, GenRequest, GenerationEngine, MaintenanceConfig,
};

/// A protected faulty deployment plus a full-ladder maintenance schedule:
/// drift re-reads, α̂ recalibration, and background rotation all fire
/// within the workload below.
fn maintained_config() -> (TileConfig, MaintenanceConfig) {
    let tile = TileConfig::paper_default()
        .with_fault_plan(FaultPlan::uniform(0.005, 0.0005, 0xbead))
        .with_fault_tolerance(FaultTolerance::protected());
    let maintenance = MaintenanceConfig::new(800.0, 20_000.0)
        .with_recalibration(60_000.0)
        .with_rotation(4_000.0);
    (tile, maintenance)
}

fn requests() -> Vec<GenRequest> {
    (0..10u64)
        .map(|i| {
            GenRequest::new(vec![1 + (i as usize) % 5, (2 * i as usize + 1) % 11], 20)
                .with_sampling(if i % 2 == 0 {
                    Sampling::Greedy
                } else {
                    Sampling::Temperature(1.4)
                })
                .with_seed(300 + i)
        })
        .collect()
}

/// The maintained analog engine — drift stepping, deferred ABFT flags,
/// recalibration passes, and background rotations all active — serves
/// bit-identical token streams at `NORA_THREADS` ∈ {1, 2, 4, 8}, with and
/// without a streaming recorder attached. The maintenance schedule is a
/// pure function of decode-step counts, so the deterministic counters must
/// agree too.
#[test]
fn maintained_engine_bit_identical_across_threads_and_recorders() {
    let zoo = tiny_spec(ModelFamily::OptLike, 610).build();
    let (tile, maintenance) = maintained_config();
    let run = |threads: usize, observe: bool| {
        with_threads(threads, || {
            let mut analog = RescalePlan::naive().deploy(&zoo.model, tile.clone(), 611);
            let mut engine = GenerationEngine::new(
                AnalogBackend::new(&mut analog),
                EngineConfig::with_max_batch(4).with_maintenance(maintenance),
            );
            if observe {
                engine.set_recorder(Box::new(MemoryRecorder::default()));
            }
            for request in requests() {
                engine.submit(request);
            }
            let tokens: Vec<Vec<usize>> = engine
                .run_to_completion()
                .into_iter()
                .map(|r| r.tokens)
                .collect();
            (
                tokens,
                engine.virtual_now().to_bits(),
                engine.metrics().counter_snapshot(),
            )
        })
    };
    let reference = run(1, false);
    assert!(reference.1 > 0.0f64.to_bits(), "clock never advanced");
    assert!(
        reference
            .2
            .iter()
            .any(|(name, v)| name == "serve.maint.drift_steps" && *v > 0),
        "no drift re-reads fired: {:?}",
        reference.2
    );
    for threads in [1usize, 2, 4, 8] {
        for observe in [false, true] {
            if threads == 1 && !observe {
                continue;
            }
            let other = run(threads, observe);
            assert_eq!(
                reference, other,
                "threads={threads} observe={observe} diverged"
            );
        }
    }
}

/// The virtual clock is a deterministic function of the served tokens:
/// re-running the identical workload reproduces the virtual timeline
/// exactly (bitwise), and the clock equals decode steps × the configured
/// step duration.
#[test]
fn maintenance_clock_is_deterministic_on_analog_backend() {
    let zoo = tiny_spec(ModelFamily::OptLike, 620).build();
    let (tile, maintenance) = maintained_config();
    let run = || {
        let mut analog = RescalePlan::naive().deploy(&zoo.model, tile.clone(), 621);
        let mut engine = GenerationEngine::new(
            AnalogBackend::new(&mut analog),
            EngineConfig::with_max_batch(3).with_maintenance(maintenance),
        );
        for request in requests() {
            engine.submit(request);
        }
        let results = engine.run_to_completion();
        let decode_steps: u64 = results.iter().map(|r| r.decode_steps).sum();
        (engine.virtual_now().to_bits(), decode_steps)
    };
    let (now_bits, decode_steps) = run();
    let expected = decode_steps as f64 * maintained_config().1.secs_per_decode_step;
    assert_eq!(
        f64::from_bits(now_bits),
        expected,
        "clock is not decode steps × step seconds"
    );
    assert_eq!(run(), (now_bits, decode_steps), "virtual timeline diverged");
}

/// End-to-end mitigation contract at the paper's Table II tile config:
/// served across a 10⁶-virtual-second horizon, the mitigated engine
/// (online α̂ recalibration + spare-tile rotation) holds ≥ 95% of its
/// t = 0 accuracy while the unmitigated engine ends measurably below it.
#[test]
fn recalibration_and_rotation_hold_t0_accuracy_over_horizon() {
    use nora::eval::runner::{drift_serving_study, prepare, DriftServingConfig};
    let prepared = vec![prepare(&tiny_spec(ModelFamily::OptLike, 630), 120, 4)];
    let cfg = DriftServingConfig {
        cell_rates: vec![0.01],
        horizon: 1e6,
        secs_per_decode_step: 2_000.0,
        drift_interval: 25_000.0,
        recalibration_interval: 100_000.0,
        rotation_latency: 5_000.0,
        seed: 0x5e47,
        ..DriftServingConfig::default()
    };
    let rows = drift_serving_study(&prepared, &cfg);
    let arm = |mitigated: bool| {
        let points: Vec<_> = rows.iter().filter(|r| r.mitigated == mitigated).collect();
        assert!(points.len() >= 2, "arm too short: {points:?}");
        let t0 = points[0];
        let end = points[points.len() - 1];
        assert_eq!(t0.t_virtual, 0.0);
        assert!(end.t_virtual >= cfg.horizon);
        (t0.accuracy, end.accuracy)
    };
    let (t0_mit, end_mit) = arm(true);
    let (t0_unmit, end_unmit) = arm(false);
    // Both arms restore the same programmed checkpoint.
    assert_eq!(t0_mit, t0_unmit, "arms started from different hardware");
    assert!(
        end_mit >= 0.95 * t0_mit,
        "mitigated engine held {:.1}% of t=0 accuracy ({:.3} vs {:.3})",
        100.0 * end_mit / t0_mit,
        end_mit,
        t0_mit
    );
    assert!(
        end_unmit < end_mit,
        "unmitigated ({end_unmit:.3}) did not degrade below mitigated ({end_mit:.3})"
    );
    // The mitigated arm actually exercised the ladder it is credited for.
    let final_mit = rows.iter().rfind(|r| r.mitigated).expect("mitigated rows");
    assert!(final_mit.recalibrations > 0, "no recalibration passes ran");
    assert!(final_mit.rotations > 0, "no tile rotations completed");
}
