//! Acceptance scenario for the fault-injection + graceful-degradation
//! subsystem, plus edge-case coverage for IR-drop and the S-shape
//! nonlinearity under degenerate inputs and tile shapes.

use nora::cim::{AnalogLinear, AnalogTile, FaultTolerance, TileConfig, TileEventKind};
use nora::device::FaultPlan;
use nora::tensor::{rng::Rng, Matrix};

/// ≥1% stuck cells plus dead lines, as the acceptance scenario requires.
fn acceptance_plan() -> FaultPlan {
    FaultPlan {
        seed: 14,
        stuck_low: 0.008,
        stuck_high: 0.008,
        dead_col: 0.03,
        ..FaultPlan::none()
    }
}

fn setup(seed: u64) -> (Matrix, Matrix) {
    let mut rng = Rng::seed_from(seed);
    let w = Matrix::random_normal(64, 64, 0.0, 0.3, &mut rng);
    let x = Matrix::random_normal(32, 64, 0.0, 1.0, &mut rng);
    (w, x)
}

#[test]
fn acceptance_plan_draws_stuck_cells_and_a_dead_column() {
    // The plan must actually materialise ≥1% stuck cells and at least one
    // dead column on the physical tiles the layer below will use.
    let map = acceptance_plan().instantiate(0, 32, 33);
    let cells = 32 * 33;
    assert!(
        map.stuck_cell_count() as f64 >= 0.01 * cells as f64,
        "{} stuck cells of {cells}",
        map.stuck_cell_count()
    );
    assert!(!map.dead_cols().is_empty(), "no dead column drawn");
}

#[test]
fn unprotected_faulty_layer_stays_finite() {
    let (w, x) = setup(1);
    let cfg = TileConfig::paper_default()
        .with_tile_size(32, 32)
        .with_fault_plan(acceptance_plan());
    let mut layer = AnalogLinear::new(w, None, cfg, 2);
    let y = layer.forward(&x);
    assert!(y.as_slice().iter().all(|v| v.is_finite()));
    // No detection without the policy: nothing recorded, nothing recovered.
    assert!(layer.events().is_empty());
    assert_eq!(layer.digital_fallback_count(), 0);
}

#[test]
fn protected_faulty_layer_flags_and_recovers_within_2x_of_fault_free() {
    let (w, x) = setup(3);
    let y_ref = x.matmul(&w);

    // Fault-free noisy baseline under the same tile geometry (33 columns so
    // the data width matches the protected deployment's 32 + checksum).
    let clean_cfg = TileConfig::paper_default().with_tile_size(32, 33);
    let mse_clean = AnalogLinear::new(w.clone(), None, clean_cfg.clone(), 4)
        .forward(&x)
        .mse(&y_ref);

    let cfg = clean_cfg
        .with_fault_plan(acceptance_plan())
        .with_fault_tolerance(FaultTolerance::protected());
    let mut layer = AnalogLinear::new(w, None, cfg, 4);
    let y = layer.forward(&x);
    assert!(y.as_slice().iter().all(|v| v.is_finite()));

    // ABFT (or the construction self-test) must have flagged faulty tiles…
    assert!(
        layer
            .events()
            .iter()
            .any(|e| matches!(e.kind, TileEventKind::Flagged { .. })),
        "no tile was flagged: {:?}",
        layer.events()
    );
    // …and recovery (remap and/or digital fallback) must have engaged.
    assert!(
        layer.spares_used() > 0 || layer.digital_fallback_count() > 0,
        "no recovery action recorded"
    );
    let mse = y.mse(&y_ref);
    assert!(
        mse <= 2.0 * mse_clean,
        "post-recovery mse {mse} vs fault-free baseline {mse_clean}"
    );
}

// ---- IR-drop / nonlinearity edge cases -------------------------------

/// Paper-default config with IR-drop and the S-shape nonlinearity turned
/// well above their defaults, so the edge inputs exercise both models.
fn harsh_cfg(rows: usize, cols: usize) -> TileConfig {
    let mut cfg = TileConfig::paper_default().with_tile_size(rows, cols);
    cfg.ir_drop *= 4.0;
    cfg.s_shape *= 4.0;
    cfg
}

#[test]
fn zero_input_vector_yields_zero_output() {
    let mut rng = Rng::seed_from(11);
    let w = Matrix::random_normal(16, 8, 0.0, 0.3, &mut rng);
    let mut tile = AnalogTile::new(w, None, harsh_cfg(16, 8), Rng::seed_from(12));
    let x = Matrix::zeros(3, 16);
    let y = tile.forward(&x);
    assert!(y.as_slice().iter().all(|&v| v == 0.0), "{:?}", y.as_slice());
}

#[test]
fn full_saturation_input_stays_finite_and_bounded() {
    let mut rng = Rng::seed_from(13);
    let w = Matrix::random_normal(16, 8, 0.0, 0.3, &mut rng);
    let cfg = harsh_cfg(16, 8);
    let mut tile = AnalogTile::new(w.clone(), None, cfg, Rng::seed_from(14));
    // Every input at ±1e4: the DAC clips, the array saturates, IR-drop and
    // the S-shape compress — the output must stay finite and cannot exceed
    // what a saturated, noiseless array could produce.
    let x = Matrix::from_vec(
        2,
        16,
        (0..32)
            .map(|i| if i % 2 == 0 { 1e4 } else { -1e4 })
            .collect(),
    );
    let y = tile.forward(&x);
    assert!(y.as_slice().iter().all(|v| v.is_finite()));
    let exact_scale = x.matmul(&w).as_slice().iter().fold(0.0f32, |m, v| m.max(v.abs()));
    assert!(
        y.as_slice().iter().all(|v| v.abs() <= 2.0 * exact_scale),
        "saturated output exceeds physical bound"
    );
}

#[test]
fn one_by_n_and_n_by_one_tiles_roundtrip() {
    let mut rng = Rng::seed_from(15);
    // 1×N: a single input line drives all columns (worst case for the
    // IR-drop model's per-segment accumulation).
    let w_row = Matrix::random_normal(1, 8, 0.0, 0.5, &mut rng);
    let mut tile = AnalogTile::new(w_row.clone(), None, harsh_cfg(1, 8), Rng::seed_from(16));
    let x = Matrix::from_vec(4, 1, vec![1.0, -2.0, 0.5, 0.0]);
    let y = tile.forward(&x);
    let y_ref = x.matmul(&w_row);
    assert!(y.as_slice().iter().all(|v| v.is_finite()));
    assert!(y.mse(&y_ref) < 0.1, "1xN mse {}", y.mse(&y_ref));

    // N×1: a single column (with ABFT this becomes 2 physical columns).
    let w_col = Matrix::random_normal(8, 1, 0.0, 0.5, &mut rng);
    let cfg = harsh_cfg(8, 2).with_fault_tolerance(FaultTolerance::protected());
    let mut layer = AnalogLinear::new(w_col.clone(), None, cfg, 17);
    let x = Matrix::random_normal(4, 8, 0.0, 1.0, &mut rng);
    let y = layer.forward(&x);
    let y_ref = x.matmul(&w_col);
    assert!(y.as_slice().iter().all(|v| v.is_finite()));
    assert!(y.mse(&y_ref) < 0.1, "Nx1 mse {}", y.mse(&y_ref));
    assert!(layer.events().is_empty(), "healthy N×1 must not flag");
}
