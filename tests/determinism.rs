//! Simulator-grade determinism: every stochastic component is seeded, so
//! identical inputs must produce bit-identical experiment results across
//! runs — the property that makes the `results/` files reproducible.

use nora::cim::{NonIdeality, TileConfig};
use nora::core::{calibrate, RescalePlan, SmoothingConfig};
use nora::eval::noise_level::{severity_for_mse, RefWorkload};
use nora::eval::tasks::analog_accuracy;
use nora::nn::zoo::{tiny_spec, ModelFamily};

#[test]
fn zoo_builds_are_bit_reproducible() {
    let a = tiny_spec(ModelFamily::OptLike, 404).build();
    let b = tiny_spec(ModelFamily::OptLike, 404).build();
    let tokens = [2usize, 5, 3, 7];
    assert_eq!(a.model.forward(&tokens), b.model.forward(&tokens));
    assert_eq!(a.report.losses, b.report.losses);
}

#[test]
fn full_experiment_row_is_reproducible() {
    let run = || {
        let mut zoo = tiny_spec(ModelFamily::MistralLike, 405).build();
        let calib_seqs: Vec<Vec<usize>> =
            (0..4).map(|_| zoo.corpus.episode().tokens).collect();
        let episodes = zoo.corpus.episodes(40);
        let calibration = calibrate(&zoo.model, &calib_seqs);
        let plan = RescalePlan::nora(&zoo.model, &calibration, SmoothingConfig::default());
        let mut analog = plan.deploy(&zoo.model, TileConfig::paper_default(), 42);
        analog_accuracy(&mut analog, &episodes)
    };
    assert_eq!(run(), run());
}

#[test]
fn severity_calibration_is_reproducible() {
    let w1 = RefWorkload::new(16, 64, 64, 7);
    let w2 = RefWorkload::new(16, 64, 64, 7);
    for noise in [
        NonIdeality::AdditiveOutputNoise,
        NonIdeality::AdcQuantization,
    ] {
        assert_eq!(
            severity_for_mse(noise, 1e-3, &w1),
            severity_for_mse(noise, 1e-3, &w2),
            "{noise} severity differs between identical workloads"
        );
    }
}

#[test]
fn different_deployment_seeds_give_different_noise() {
    let mut zoo = tiny_spec(ModelFamily::OptLike, 406).build();
    let episodes = zoo.corpus.episodes(40);
    let acc = |seed: u64| {
        let mut analog =
            RescalePlan::naive().deploy(&zoo.model, TileConfig::paper_default(), seed);
        // Collect raw logits of one episode, which are noise-dependent.
        analog.forward(&episodes[0].tokens)
    };
    assert_ne!(acc(1), acc(2), "deployment seeds must decorrelate noise");
}
