//! Simulator-grade determinism: every stochastic component is seeded, so
//! identical inputs must produce bit-identical experiment results across
//! runs — the property that makes the `results/` files reproducible.

use nora::cim::{AnalogLinear, AnalogTile, FaultPlan, FaultTolerance, NonIdeality, TileConfig};
use nora::core::{calibrate, RescalePlan, SmoothingConfig};
use nora::eval::noise_level::{severity_for_mse, RefWorkload};
use nora::eval::tasks::analog_accuracy;
use nora::nn::zoo::{tiny_spec, ModelFamily};
use nora::parallel::with_threads;
use nora::tensor::rng::Rng;
use nora::tensor::Matrix;

#[test]
fn zoo_builds_are_bit_reproducible() {
    let a = tiny_spec(ModelFamily::OptLike, 404).build();
    let b = tiny_spec(ModelFamily::OptLike, 404).build();
    let tokens = [2usize, 5, 3, 7];
    assert_eq!(a.model.forward(&tokens), b.model.forward(&tokens));
    assert_eq!(a.report.losses, b.report.losses);
}

#[test]
fn full_experiment_row_is_reproducible() {
    let run = || {
        let mut zoo = tiny_spec(ModelFamily::MistralLike, 405).build();
        let calib_seqs: Vec<Vec<usize>> =
            (0..4).map(|_| zoo.corpus.episode().tokens).collect();
        let episodes = zoo.corpus.episodes(40);
        let calibration = calibrate(&zoo.model, &calib_seqs);
        let plan = RescalePlan::nora(&zoo.model, &calibration, SmoothingConfig::default());
        let mut analog = plan.deploy(&zoo.model, TileConfig::paper_default(), 42);
        analog_accuracy(&mut analog, &episodes)
    };
    assert_eq!(run(), run());
}

#[test]
fn severity_calibration_is_reproducible() {
    let w1 = RefWorkload::new(16, 64, 64, 7);
    let w2 = RefWorkload::new(16, 64, 64, 7);
    for noise in [
        NonIdeality::AdditiveOutputNoise,
        NonIdeality::AdcQuantization,
    ] {
        assert_eq!(
            severity_for_mse(noise, 1e-3, &w1),
            severity_for_mse(noise, 1e-3, &w2),
            "{noise} severity differs between identical workloads"
        );
    }
}

#[test]
fn different_deployment_seeds_give_different_noise() {
    let mut zoo = tiny_spec(ModelFamily::OptLike, 406).build();
    let episodes = zoo.corpus.episodes(40);
    let acc = |seed: u64| {
        let mut analog =
            RescalePlan::naive().deploy(&zoo.model, TileConfig::paper_default(), seed);
        // Collect raw logits of one episode, which are noise-dependent.
        analog.forward(&episodes[0].tokens)
    };
    assert_ne!(acc(1), acc(2), "deployment seeds must decorrelate noise");
}

// ---- parallel execution: bit-identity at any thread count ---------------

/// The layer fans tile forwards across worker threads; each tile owns its
/// RNG stream, so a noisy multi-tile forward must be bit-identical at any
/// thread count.
#[test]
fn multi_tile_forward_bit_identical_across_thread_counts() {
    let mut rng = Rng::seed_from(500);
    let w = Matrix::random_normal(96, 96, 0.0, 0.3, &mut rng);
    let x = Matrix::random_normal(8, 96, 0.0, 1.0, &mut rng);
    let cfg = TileConfig::paper_default().with_tile_size(32, 32); // 3×3 grid
    let run = |threads: usize| {
        with_threads(threads, || {
            let mut layer = AnalogLinear::new(w.clone(), None, cfg.clone(), 501);
            layer.forward(&x)
        })
    };
    let serial = run(1);
    for threads in [2, 4, 8] {
        assert_eq!(serial, run(threads), "threads={threads}");
    }
}

/// Same property under an active fault plan: recovery (re-program → remap →
/// digital fallback) is serialized in grid order after the parallel fan-out,
/// so outputs, the event log, tile health, and spare usage must all match
/// the single-threaded run exactly.
#[test]
fn faulty_protected_run_identical_across_thread_counts() {
    let mut rng = Rng::seed_from(502);
    let w = Matrix::random_normal(64, 64, 0.0, 0.3, &mut rng);
    let x = Matrix::random_normal(32, 64, 0.0, 1.0, &mut rng);
    let mut cfg = TileConfig::paper_default().with_tile_size(32, 33);
    cfg.fault_plan = Some(FaultPlan {
        seed: 2,
        stuck_low: 0.02,
        stuck_high: 0.02,
        ..FaultPlan::none()
    });
    cfg.fault_tolerance = FaultTolerance::protected();
    let run = |threads: usize| {
        with_threads(threads, || {
            let mut layer = AnalogLinear::new(w.clone(), None, cfg.clone(), 503);
            let y = layer.forward(&x);
            (
                y,
                layer.events().to_vec(),
                layer.tile_health(),
                layer.spares_used(),
            )
        })
    };
    let serial = run(1);
    assert!(
        !serial.1.is_empty(),
        "4% stuck cells must trigger recovery events"
    );
    for threads in [2, 4, 8] {
        let par = run(threads);
        assert_eq!(serial.0, par.0, "outputs, threads={threads}");
        assert_eq!(serial.1, par.1, "event log, threads={threads}");
        assert_eq!(serial.2, par.2, "tile health, threads={threads}");
        assert_eq!(serial.3, par.3, "spares used, threads={threads}");
    }
}

/// Model-level check: full transformer logits through a NORA deployment are
/// unchanged by the thread count.
#[test]
fn model_logits_bit_identical_across_thread_counts() {
    let zoo = tiny_spec(ModelFamily::OptLike, 504).build();
    let tokens = [1usize, 4, 2, 9, 3];
    let run = |threads: usize| {
        with_threads(threads, || {
            let mut analog =
                RescalePlan::naive().deploy(&zoo.model, TileConfig::paper_default(), 505);
            analog.forward(&tokens)
        })
    };
    let serial = run(1);
    for threads in [2, 4, 8] {
        assert_eq!(serial, run(threads), "threads={threads}");
    }
}

/// Per-tile RNG streams are forked from the layer seed, not drawn from a
/// shared sequence — so the order in which tiles execute cannot leak into
/// the noise. Run two noisy tiles in both orders and compare.
#[test]
fn tile_rng_streams_independent_of_execution_order() {
    let mut rng = Rng::seed_from(506);
    let w1 = Matrix::random_normal(32, 32, 0.0, 0.3, &mut rng);
    let w2 = Matrix::random_normal(32, 32, 0.0, 0.3, &mut rng);
    let x = Matrix::random_normal(4, 32, 0.0, 1.0, &mut rng);
    let mut root = Rng::seed_from(507);
    let mut a1 = AnalogTile::new(w1, None, TileConfig::paper_default(), root.fork(1));
    let mut b1 = AnalogTile::new(w2, None, TileConfig::paper_default(), root.fork(2));
    let (mut a2, mut b2) = (a1.clone(), b1.clone());
    // Order A then B…
    let (ya1, yb1) = (a1.forward(&x), b1.forward(&x));
    // …vs B then A.
    let (yb2, ya2) = (b2.forward(&x), a2.forward(&x));
    assert_eq!(ya1, ya2, "tile A output depends on execution order");
    assert_eq!(yb1, yb2, "tile B output depends on execution order");
}

/// Serving-engine check: a batched analog decode — continuous batching over
/// a NORA deployment with noisy tiles, sliding windows engaged — yields the
/// same token streams and tile statistics at any thread count. In keyed
/// mode (the default) the slots themselves fan out in parallel: every noise
/// draw is derived from `(deployment, tile, request seed, position)` and
/// the deferred tile statistics are absorbed in slot order afterwards.
#[test]
fn batched_analog_decode_bit_identical_across_thread_counts() {
    use nora::nn::generate::Sampling;
    use nora::serve::{AnalogBackend, EngineConfig, GenRequest, GenerationEngine};
    let zoo = tiny_spec(ModelFamily::OptLike, 510).build();
    let run = |threads: usize| {
        with_threads(threads, || {
            let mut analog =
                RescalePlan::naive().deploy(&zoo.model, TileConfig::paper_default(), 511);
            let mut engine = GenerationEngine::new(
                AnalogBackend::new(&mut analog),
                EngineConfig::with_max_batch(8),
            );
            for i in 0..10u64 {
                engine.submit(
                    GenRequest::new(vec![1 + (i as usize) % 6], 20)
                        .with_sampling(Sampling::Temperature(1.3))
                        .with_seed(600 + i),
                );
            }
            let tokens: Vec<Vec<usize>> = engine
                .run_to_completion()
                .into_iter()
                .map(|r| r.tokens)
                .collect();
            drop(engine);
            (tokens, analog.stats())
        })
    };
    let serial = run(1);
    assert_eq!(serial.0.len(), 10);
    for threads in [2, 4, 8] {
        let par = run(threads);
        assert_eq!(serial.0, par.0, "token streams, threads={threads}");
        assert_eq!(serial.1, par.1, "tile stats, threads={threads}");
    }
}

// ---- observability: recording must never perturb the computation --------

/// Attaching observation to the analog pipeline — exporting per-tile
/// conversion stats into a metrics registry and emitting them through a
/// recording [`nora::obs::Recorder`] — must leave the forward outputs
/// bit-identical, and the registry itself (counters *and* the deterministic
/// rate histograms) must compare equal at every thread count.
#[test]
fn observed_analog_forward_identical_across_thread_counts() {
    use nora::obs::{MemoryRecorder, Metrics};
    let mut rng = Rng::seed_from(520);
    let w = Matrix::random_normal(96, 96, 0.0, 0.3, &mut rng);
    let x = Matrix::random_normal(8, 96, 0.0, 1.0, &mut rng);
    let cfg = TileConfig::paper_default().with_tile_size(32, 32); // 3×3 grid
    let run = |threads: usize, observe: bool| {
        with_threads(threads, || {
            let mut layer = AnalogLinear::new(w.clone(), None, cfg.clone(), 521);
            let y = layer.forward(&x);
            let metrics = observe.then(|| {
                let mut m = Metrics::new();
                layer.export_metrics(&mut m);
                let mut rec = MemoryRecorder::default();
                m.emit(&mut rec);
                assert_eq!(
                    rec.counters.get("cim.dac.total_inputs"),
                    Some(&m.counter("cim.dac.total_inputs"))
                );
                m
            });
            (y, metrics)
        })
    };
    let (y_plain, _) = run(1, false);
    let (y_serial, metrics_serial) = run(1, true);
    assert_eq!(y_plain, y_serial, "observation changed the outputs");
    let metrics_serial = metrics_serial.unwrap();
    assert!(metrics_serial.counter("cim.forward.samples") > 0);
    for threads in [2, 4, 8] {
        let (y, metrics) = run(threads, true);
        assert_eq!(y_plain, y, "outputs, threads={threads}");
        assert_eq!(
            metrics_serial,
            metrics.unwrap(),
            "metrics registry, threads={threads}"
        );
    }
}

/// Serving-engine contract: attaching a recording [`nora::obs::Recorder`]
/// must leave every generated token stream bit-identical, and the engine's
/// aggregated counters (requests, tokens, rounds — not the wall-clock
/// histograms, which are telemetry) must agree at every thread count,
/// observed or not.
#[test]
fn observed_serving_identical_across_thread_counts() {
    use nora::nn::generate::Sampling;
    use nora::obs::MemoryRecorder;
    use nora::serve::{AnalogBackend, EngineConfig, GenRequest, GenerationEngine};
    let zoo = tiny_spec(ModelFamily::OptLike, 522).build();
    let run = |threads: usize, observe: bool| {
        with_threads(threads, || {
            let mut analog =
                RescalePlan::naive().deploy(&zoo.model, TileConfig::paper_default(), 523);
            let mut engine = GenerationEngine::new(
                AnalogBackend::new(&mut analog),
                EngineConfig::with_max_batch(4),
            );
            if observe {
                engine.set_recorder(Box::new(MemoryRecorder::default()));
            }
            for i in 0..8u64 {
                engine.submit(
                    GenRequest::new(vec![1 + (i as usize) % 5], 16)
                        .with_sampling(Sampling::Temperature(1.3))
                        .with_seed(700 + i),
                );
            }
            let tokens: Vec<Vec<usize>> = engine
                .run_to_completion()
                .into_iter()
                .map(|r| r.tokens)
                .collect();
            (tokens, engine.metrics().counter_snapshot())
        })
    };
    let (tokens_plain, counters_plain) = run(1, false);
    let (tokens_serial, counters_serial) = run(1, true);
    assert_eq!(tokens_plain, tokens_serial, "recorder changed the tokens");
    assert_eq!(
        counters_plain, counters_serial,
        "recorder changed the aggregated counters"
    );
    assert!(counters_serial
        .iter()
        .any(|(name, value)| name == "serve.requests" && *value == 8));
    for threads in [2, 4, 8] {
        let (tokens, counters) = run(threads, true);
        assert_eq!(tokens_plain, tokens, "token streams, threads={threads}");
        assert_eq!(counters_serial, counters, "counters, threads={threads}");
    }
}

/// Sparse digital serving: a 2:4-pruned model decoding through the packed
/// N:M kernels must emit bit-identical token streams at any thread count —
/// and exactly the streams of the dense reference kernel on the same
/// masked weights (the sparse path skips only exact-zero terms).
#[test]
fn sparse_digital_serving_bit_identical_across_thread_counts() {
    use nora::core::SparsityPlan;
    use nora::nn::generate::Sampling;
    use nora::serve::{DigitalBackend, EngineConfig, GenRequest, GenerationEngine};
    use nora::tensor::NmPattern;
    let zoo = tiny_spec(ModelFamily::OptLike, 530).build();
    let mut sparse = zoo.model.clone();
    SparsityPlan::uniform(&sparse, NmPattern::N2M4).apply(&mut sparse, None);
    let mut dense_ref = sparse.clone();
    for id in dense_ref.linear_ids() {
        dense_ref.linear_mut(id).sparse = None;
    }
    let run = |model: &nora::nn::TransformerLm, threads: usize| {
        with_threads(threads, || {
            let mut engine = GenerationEngine::new(
                DigitalBackend::new(model),
                EngineConfig::with_max_batch(4),
            );
            for i in 0..8u64 {
                engine.submit(
                    GenRequest::new(vec![1 + (i as usize) % 5], 16)
                        .with_sampling(Sampling::Temperature(1.3))
                        .with_seed(800 + i),
                );
            }
            engine
                .run_to_completion()
                .into_iter()
                .map(|r| r.tokens)
                .collect::<Vec<_>>()
        })
    };
    let serial = run(&sparse, 1);
    assert_eq!(serial.len(), 8);
    for threads in [2, 4, 8] {
        assert_eq!(serial, run(&sparse, threads), "threads={threads}");
    }
    assert_eq!(
        serial,
        run(&dense_ref, 1),
        "sparse decode diverged from the dense reference"
    );
}

// ---- STE hardware-aware training: deploy conformance + determinism ------

/// The STE training forward's input fake-quantization must be bit-identical
/// to the deploy path's DAC conversion on the same inputs: same `α` law,
/// same mid-rise grid, via the *shared* [`TileConfig::input_dac`]
/// constructor — no duplicated constants.
#[test]
fn ste_fake_quantize_bit_identical_to_deploy_dac() {
    use nora::nn::ste::SteQuant;
    let cfg = TileConfig::paper_default();
    let sq = SteQuant::from_tile(&cfg);
    let mut rng = Rng::seed_from(540);
    let x = Matrix::random_normal(6, 32, 0.0, 2.0, &mut rng);
    let fq = sq.fake_quantize(&x);
    let dac = cfg.input_dac();
    for i in 0..x.rows() {
        let alpha = cfg.noise_management.alpha(x.row(i));
        let mut row: Vec<f32> = x.row(i).iter().map(|v| v / alpha).collect();
        dac.convert_slice(&mut row);
        for (c, &converted) in row.iter().enumerate() {
            assert_eq!(
                fq[(i, c)].to_bits(),
                (converted * alpha).to_bits(),
                "row {i} col {c}: training grid diverged from deploy DAC"
            );
        }
    }
}

/// The STE training forward's weight view must be bit-identical to what the
/// tile actually programs: per-column `γ` normalisation and the shared
/// [`TileConfig::weight_quantizer`] grid. With an ideal (zero-error) weight
/// source the programmed conductances *are* the quantized weights, so the
/// comparison is exact.
#[test]
fn ste_weight_grid_bit_identical_to_programmed_tile() {
    use nora::cim::{Resolution, WeightSource};
    let mut cfg = TileConfig::paper_default().with_tile_size(64, 64);
    cfg.weight_source = WeightSource::Ideal;
    cfg.weight_quant = Resolution::bits(6);
    let mut rng = Rng::seed_from(541);
    let w = Matrix::random_normal(32, 24, 0.0, 0.3, &mut rng);
    let tile = AnalogTile::new(w.clone(), None, cfg.clone(), Rng::seed_from(542));

    // The training-side transform (noise off): γ-normalise columns, snap to
    // the shared programming grid.
    let gamma = w.col_abs_max();
    let mut train_view = w.clone();
    for (j, &g) in gamma.iter().enumerate() {
        if g > 0.0 {
            train_view.scale_col(j, 1.0 / g);
        }
    }
    cfg.weight_quantizer()
        .expect("finite weight grid")
        .quantize_slice(train_view.as_mut_slice());

    assert_eq!(tile.gamma(), gamma.as_slice(), "γ law diverged");
    assert_eq!(
        tile.effective_weights().as_slice(),
        train_view.as_slice(),
        "training weight grid diverged from the programmed tile"
    );
}

/// Hardware-aware STE training is bit-identical at any `NORA_THREADS`
/// setting (the per-step noise comes from counter-keyed streams, a pure
/// function of `(seed, step, layer)`), and attaching observation around the
/// run does not perturb it: final parameters and the full loss trace
/// compare bitwise.
#[test]
fn ste_training_bit_identical_across_thread_counts() {
    use nora::nn::corpus::{Corpus, CorpusConfig};
    use nora::nn::ste::{train_ste, SteConfig};
    use nora::nn::trainer::TrainConfig;
    use nora::nn::{ModelConfig, TransformerLm};
    use nora::obs::{MemoryRecorder, Metrics};

    let run = |threads: usize, observe: bool| {
        with_threads(threads, || {
            let mut corpus = Corpus::new(CorpusConfig::new(16, 16, 9));
            let mut model =
                TransformerLm::new(ModelConfig::tiny_for_tests(), &mut Rng::seed_from(42));
            let cfg = SteConfig {
                base: TrainConfig {
                    steps: 12,
                    ..TrainConfig::default()
                },
                ..SteConfig::default()
            };
            let report = train_ste(&mut model, &mut corpus, &cfg, 17);
            if observe {
                // Recording around the run must be inert.
                let mut m = Metrics::new();
                m.add("test.ste.steps", report.losses.len() as u64);
                let mut rec = MemoryRecorder::default();
                m.emit(&mut rec);
                assert_eq!(rec.counters.get("test.ste.steps"), Some(&12));
            }
            let params: Vec<Vec<u32>> = model
                .params()
                .iter()
                .map(|p| p.value.as_slice().iter().map(|v| v.to_bits()).collect())
                .collect();
            (params, report.losses)
        })
    };
    let serial = run(1, false);
    assert_eq!(serial, run(1, true), "recorder perturbed STE training");
    for threads in [2, 4, 8] {
        assert_eq!(serial, run(threads, true), "threads={threads}");
    }
}

/// Eval sweeps run points in parallel but merge rows in task order: a small
/// drift study must produce identical rows at 1 and 4 threads.
#[test]
fn eval_sweep_rows_identical_across_thread_counts() {
    use nora::eval::runner::{drift_study, prepare, DriftConfig};
    let prepared = vec![prepare(&tiny_spec(ModelFamily::OptLike, 508), 30, 3)];
    let cfg = DriftConfig {
        times: vec![20.0, 3600.0],
        tile: TileConfig::paper_default().with_tile_size(64, 64),
        seed: 509,
    };
    let serial = with_threads(1, || drift_study(&prepared, &cfg));
    let par = with_threads(4, || drift_study(&prepared, &cfg));
    assert_eq!(serial, par);
}
