//! Integration tests for the batched serving engine: consistency with the
//! single-sequence decode loops, sliding-window semantics past `max_seq`,
//! and bit-identity at any thread count for both backends.

use nora::cim::TileConfig;
use nora::core::RescalePlan;
use nora::nn::deploy::{AnalogTransformerLm, SmoothingMap};
use nora::nn::generate::{
    generate_digital, generate_digital_cached, Sampling,
};
use nora::nn::{ModelConfig, TransformerLm};
use nora::parallel::with_threads;
use nora::serve::{AnalogBackend, DigitalBackend, EngineConfig, GenRequest, GenerationEngine};
use nora::tensor::rng::Rng;

fn model() -> TransformerLm {
    TransformerLm::new(ModelConfig::tiny_for_tests(), &mut Rng::seed_from(40))
}

/// Sliding-window cached generation no longer panics past `max_seq` and
/// reproduces `generate_digital`'s truncation semantics greedily.
#[test]
fn cached_generation_exceeding_max_seq_matches_uncached() {
    let m = model(); // max_seq 16
    let prompt = [2usize, 9, 4, 7];
    let mut rng = Rng::seed_from(41);
    let uncached = generate_digital(&m, &prompt, 48, Sampling::Greedy, &mut rng.clone());
    let cached = generate_digital_cached(&m, &prompt, 48, Sampling::Greedy, &mut rng);
    assert_eq!(uncached.len(), prompt.len() + 48);
    assert_eq!(uncached, cached);
}

/// A batch of one goes through the engine token-for-token like the
/// single-sequence cached loop, including past the window.
#[test]
fn engine_batch_of_one_matches_generate_digital_cached() {
    let m = model();
    for (sampling, seed) in [
        (Sampling::Greedy, 0u64),
        (Sampling::Temperature(1.2), 77),
    ] {
        let solo = generate_digital_cached(
            &m,
            &[5, 3, 11],
            30,
            sampling,
            &mut Rng::seed_from(seed),
        );
        let mut engine =
            GenerationEngine::new(DigitalBackend::new(&m), EngineConfig::with_max_batch(1));
        engine.submit(
            GenRequest::new(vec![5, 3, 11], 30)
                .with_sampling(sampling)
                .with_seed(seed),
        );
        let results = engine.run_to_completion();
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].tokens, solo, "{sampling:?}");
    }
}

fn workload() -> Vec<GenRequest> {
    (0..12)
        .map(|i| {
            GenRequest::new(vec![1 + i % 7, (3 * i + 2) % 16], 18 + i % 4)
                .with_sampling(if i % 2 == 0 {
                    Sampling::Greedy
                } else {
                    Sampling::Temperature(1.5)
                })
                .with_seed(200 + i as u64)
        })
        .collect()
}

/// ≥ 8 concurrent digital sequences produce bit-identical token streams at
/// any thread count: the decode rounds fan out across `nora-parallel`
/// workers but every sequence owns its cache and sampler.
#[test]
fn digital_engine_bit_identical_across_thread_counts() {
    let m = model();
    let run = |threads: usize| {
        with_threads(threads, || {
            let mut engine = GenerationEngine::new(
                DigitalBackend::new(&m),
                EngineConfig::with_max_batch(8),
            );
            for request in workload() {
                engine.submit(request);
            }
            engine
                .run_to_completion()
                .into_iter()
                .map(|r| (r.id, r.tokens))
                .collect::<Vec<_>>()
        })
    };
    let serial = run(1);
    assert_eq!(serial.len(), 12);
    for threads in [2, 4, 8] {
        assert_eq!(serial, run(threads), "threads={threads}");
    }
}

/// Same property on an analog deployment with the paper's noisy tiles: in
/// the default keyed mode every decode step's noise streams are derived
/// from `(deployment, tile, request seed, position)`, so the parallel slot
/// fan-out is bit-identical at any thread count — the full batched serve
/// is too.
#[test]
fn analog_engine_bit_identical_across_thread_counts() {
    let m = model();
    let run = |threads: usize| {
        with_threads(threads, || {
            let mut analog =
                RescalePlan::naive().deploy(&m, TileConfig::paper_default(), 900);
            let mut engine = GenerationEngine::new(
                AnalogBackend::new(&mut analog),
                EngineConfig::with_max_batch(8),
            );
            for request in workload() {
                engine.submit(request);
            }
            engine
                .run_to_completion()
                .into_iter()
                .map(|r| (r.id, r.tokens))
                .collect::<Vec<_>>()
        })
    };
    let serial = run(1);
    assert_eq!(serial.len(), 12);
    for threads in [2, 4, 8] {
        assert_eq!(serial, run(threads), "threads={threads}");
    }
}

/// On ideal (noise-free) tiles, serving through the analog engine agrees
/// with the digital engine request-for-request under greedy decoding.
#[test]
fn analog_engine_on_ideal_tiles_matches_digital_engine() {
    let m = model();
    let requests: Vec<GenRequest> = (0..9)
        .map(|i| GenRequest::new(vec![2 + i % 5], 20))
        .collect();
    let mut digital_engine =
        GenerationEngine::new(DigitalBackend::new(&m), EngineConfig::with_max_batch(3));
    let mut analog = AnalogTransformerLm::new(&m, TileConfig::ideal(), &SmoothingMap::new(), 7);
    let mut analog_engine =
        GenerationEngine::new(AnalogBackend::new(&mut analog), EngineConfig::with_max_batch(3));
    for request in requests {
        digital_engine.submit(request.clone());
        analog_engine.submit(request);
    }
    let digital_tokens: Vec<Vec<usize>> = digital_engine
        .run_to_completion()
        .into_iter()
        .map(|r| r.tokens)
        .collect();
    let analog_tokens: Vec<Vec<usize>> = analog_engine
        .run_to_completion()
        .into_iter()
        .map(|r| r.tokens)
        .collect();
    assert_eq!(digital_tokens, analog_tokens);
}

/// The eval-layer consistency check: a corpus-derived workload served at
/// batch width 5 matches every request's solo cached run.
#[test]
fn eval_serving_consistency_is_clean() {
    use nora::eval::serving::{digital_serving_consistency, ServingWorkload};
    use nora::nn::corpus::{Corpus, CorpusConfig};
    let m = model();
    let mut corpus = Corpus::new(CorpusConfig::new(16, 16, 8));
    let workload =
        ServingWorkload::from_corpus(&mut corpus, 10, 3, 22, Sampling::Temperature(1.1));
    let summary = digital_serving_consistency(&m, &workload, 5);
    assert_eq!(summary.requests, 10);
    assert_eq!(summary.mismatches, 0);
    assert_eq!(summary.generated_tokens, 10 * 22);
}
