//! Statistical conformance of every stochastic stage in the analog stack.
//!
//! Each analog non-ideality claims a precise distribution: the noise stages
//! are zero-mean Gaussians with documented σ, programming error follows the
//! device model's `prog_sigma` polynomial, and the converters are symmetric
//! mid-rise quantizers with uniform in-range error. These tests check each
//! claim against its analytic form — sample moments within `4σ` estimator
//! bounds and a Kolmogorov–Smirnov distance bound against the Gaussian CDF
//! — over several seeds, so a regression in any sampler or noise-injection
//! path (not just a changed draw order) fails loudly.
//!
//! All tolerances are derived from the sample count, never tuned per seed:
//! mean within `4/√n` (in σ units), variance within `4·√(2/n)` relative,
//! KS distance below `2/√n` (the asymptotic 1e-7 quantile of the
//! Kolmogorov distribution).

use nora::cim::converter::{Adc, Dac};
use nora::cim::{AnalogTile, Resolution, TileConfig};
use nora::device::PcmModel;
use nora::tensor::quant::Quantizer;
use nora::tensor::{rng::Rng, Matrix};

const SEEDS: [u64; 3] = [11, 22, 33];

/// Abramowitz–Stegun 7.1.26 rational approximation of `erf` (|ε| < 1.5e-7,
/// far below the KS resolution of ~1e-2 at our sample sizes).
fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    sign * (1.0 - poly * (-x * x).exp())
}

fn normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Asserts that `samples` (already normalised to zero mean, unit variance
/// under the null) conform to the standard normal: moments and KS distance.
fn assert_standard_normal(mut samples: Vec<f64>, label: &str) {
    let n = samples.len();
    assert!(n >= 1000, "{label}: need a real sample size, got {n}");
    let nf = n as f64;
    let mean = samples.iter().sum::<f64>() / nf;
    let var = samples.iter().map(|&s| (s - mean) * (s - mean)).sum::<f64>() / (nf - 1.0);

    let mean_tol = 4.0 / nf.sqrt();
    assert!(
        mean.abs() < mean_tol,
        "{label}: mean {mean:.4} beyond ±{mean_tol:.4}"
    );
    let var_tol = 4.0 * (2.0 / nf).sqrt();
    assert!(
        (var - 1.0).abs() < var_tol,
        "{label}: variance {var:.4} beyond 1 ± {var_tol:.4}"
    );

    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mut ks = 0.0f64;
    for (i, &s) in samples.iter().enumerate() {
        let cdf = normal_cdf(s);
        let lo = i as f64 / nf;
        let hi = (i + 1) as f64 / nf;
        ks = ks.max((cdf - lo).abs()).max((hi - cdf).abs());
    }
    let ks_tol = 2.0 / nf.sqrt();
    assert!(
        ks < ks_tol,
        "{label}: KS distance {ks:.4} beyond {ks_tol:.4}"
    );
}

#[test]
fn fill_normal_conforms_to_gaussian() {
    for seed in SEEDS {
        let mut rng = Rng::seed_from(seed);
        let mut buf = vec![0.0f32; 16384];
        rng.fill_normal(&mut buf, 0.25, 2.0);
        let samples = buf.iter().map(|&v| (f64::from(v) - 0.25) / 2.0).collect();
        assert_standard_normal(samples, &format!("fill_normal seed {seed}"));
    }
}

/// The inverse-CDF sampler behind counter-keyed serving draws from the
/// same N(μ, σ²) family as the legacy Box–Muller path: one uniform per
/// sample through the Acklam inverse normal CDF. Conformance is checked
/// with the identical moment + KS machinery.
#[test]
fn fill_normal_icdf_conforms_to_gaussian() {
    for seed in SEEDS {
        let mut rng = Rng::seed_from(seed);
        let mut buf = vec![0.0f32; 16384];
        rng.fill_normal_icdf(&mut buf, 0.25, 2.0);
        let samples = buf.iter().map(|&v| (f64::from(v) - 0.25) / 2.0).collect();
        assert_standard_normal(samples, &format!("fill_normal_icdf seed {seed}"));
    }
}

/// Counter-keyed streams: an `Rng::from_key` stream is itself a conforming
/// Gaussian source, and streams whose keys differ in a single component
/// (e.g. adjacent decode positions) are decorrelated — the property that
/// makes per-request noise independent of batch composition.
#[test]
fn keyed_streams_conform_and_decorrelate() {
    let n = 16384usize;
    for seed in SEEDS {
        let mut rng = Rng::from_key(&[seed, 7, 42, 3]);
        let mut buf = vec![0.0f32; n];
        rng.fill_normal_icdf(&mut buf, 0.0, 1.0);
        let samples: Vec<f64> = buf.iter().map(|&v| f64::from(v)).collect();
        assert_standard_normal(samples.clone(), &format!("from_key seed {seed}"));

        // Same key except the position component: adjacent positions must
        // not correlate.
        let mut rng2 = Rng::from_key(&[seed, 7, 42, 4]);
        let mut buf2 = vec![0.0f32; n];
        rng2.fill_normal_icdf(&mut buf2, 0.0, 1.0);
        let corr = samples
            .iter()
            .zip(&buf2)
            .map(|(&a, &b)| a * f64::from(b))
            .sum::<f64>()
            / n as f64;
        let tol = 4.0 / (n as f64).sqrt();
        assert!(
            corr.abs() < tol,
            "seed {seed}: adjacent-position streams correlate ({corr:.4} beyond ±{tol:.4})"
        );
    }
}

/// A deterministic input row spanning `[-1, 1]` with `max |v| = 1`, so the
/// AbsMax noise-management α is exactly 1 and output units equal input
/// units on an identity-weight tile.
fn probe_row(n: usize) -> Vec<f32> {
    (0..n)
        .map(|j| 2.0 * j as f32 / (n - 1) as f32 - 1.0)
        .collect()
}

fn identity_tile(cfg: TileConfig, seed: u64, n: usize) -> AnalogTile {
    let mut w = Matrix::zeros(n, n);
    for k in 0..n {
        w[(k, k)] = 1.0;
    }
    AnalogTile::new(w, None, cfg, Rng::seed_from(seed))
}

/// Runs `batch` copies of `row` through `tile` and returns the per-output
/// deviations from `expect`, normalised by `sigma`.
fn stage_samples(tile: &mut AnalogTile, row: &[f32], expect: &[f32], sigma: f32, batch: usize) -> Vec<f64> {
    let n = row.len();
    let mut x = Matrix::zeros(batch, n);
    for i in 0..batch {
        x.row_mut(i).copy_from_slice(row);
    }
    let y = tile.forward(&x);
    let mut samples = Vec::with_capacity(batch * n);
    for i in 0..batch {
        for (j, &e) in expect.iter().enumerate() {
            samples.push(f64::from(y[(i, j)] - e) / f64::from(sigma));
        }
    }
    samples
}

#[test]
fn additive_input_noise_stage_is_gaussian_with_configured_sigma() {
    // With ideal converters, identity weights and α = 1, the in-noise stage
    // is the only stochastic term: y_j = x_j + σ_in·ξ_j.
    let n = 64;
    let sigma = 0.05f32;
    let row = probe_row(n);
    for seed in SEEDS {
        let mut cfg = TileConfig::ideal();
        cfg.in_noise = sigma;
        let mut tile = identity_tile(cfg, seed, n);
        let samples = stage_samples(&mut tile, &row, &row, sigma, 200);
        assert_standard_normal(samples, &format!("in_noise seed {seed}"));
    }
}

#[test]
fn short_term_read_noise_aggregates_to_sigma_w_times_drive_norm() {
    // The fused read-noise stage samples the aggregate Σ_k ξ_kj·x̂_k
    // directly as N(0, σ_w·‖x̂‖₂). For x = 1⃗ (α = 1, x̂ = 1⃗, ‖x̂‖₂ = √n)
    // on identity weights: y_j = 1 + σ_w·√n·ξ_j.
    let n = 64;
    let sigma_w = 0.02f32;
    let row = vec![1.0f32; n];
    let sigma_agg = sigma_w * (n as f32).sqrt();
    for seed in SEEDS {
        let mut cfg = TileConfig::ideal();
        cfg.w_noise = sigma_w;
        let mut tile = identity_tile(cfg, seed, n);
        let samples = stage_samples(&mut tile, &row, &row, sigma_agg, 200);
        assert_standard_normal(samples, &format!("read_noise seed {seed}"));
    }
}

#[test]
fn additive_output_noise_stage_is_gaussian_with_configured_sigma() {
    // y_j = x_j + α·σ_out·ξ_j with α = 1 on the probe row.
    let n = 64;
    let sigma = 0.04f32;
    let row = probe_row(n);
    for seed in SEEDS {
        let mut cfg = TileConfig::ideal();
        cfg.out_noise = sigma;
        let mut tile = identity_tile(cfg, seed, n);
        let samples = stage_samples(&mut tile, &row, &row, sigma, 200);
        assert_standard_normal(samples, &format!("out_noise seed {seed}"));
    }
}

#[test]
fn programming_noise_matches_device_model_sigma() {
    // Single-shot programming at mid conductance: g ~ N(g_target, σ_prog)
    // with σ_prog from the device polynomial. 12.5 µS sits ~13σ from both
    // rails, so the [0, g_max] clamp never bites.
    let pcm = PcmModel::default();
    let g_target = 0.5 * pcm.g_max;
    let sigma = pcm.prog_sigma(g_target);
    assert!(sigma > 0.0);
    for seed in SEEDS {
        let mut rng = Rng::seed_from(seed);
        let samples: Vec<f64> = (0..8000)
            .map(|_| {
                let cell = pcm.program_single_shot(g_target, &mut rng);
                f64::from(cell.g_prog - g_target) / f64::from(sigma)
            })
            .collect();
        assert_standard_normal(samples, &format!("programming_noise seed {seed}"));
    }
}

#[test]
fn mid_rise_quantizer_grid_and_error_bounds() {
    let q = Quantizer::new(128, 1.0);
    let step = q.step();
    assert!((step - 2.0 / 128.0).abs() < 1e-7);

    // Exact zero passes through unchanged — sparsity must stay exact.
    assert_eq!(q.quantize(0.0), 0.0);

    // The representable levels are ±(k + ½)·Δ and are fixed points.
    for k in 0..64u32 {
        let level = (k as f32 + 0.5) * step;
        assert!((q.quantize(level) - level).abs() < 1e-6, "level +{k}");
        assert!((q.quantize(-level) + level).abs() < 1e-6, "level -{k}");
    }
    // The rails themselves are not representable: they snap just inside.
    assert_eq!(q.quantize(1.0), 1.0 - step / 2.0);
    assert_eq!(q.quantize(-1.0), -(1.0 - step / 2.0));

    // Any in-range input lands within Δ/2 of its source.
    for seed in SEEDS {
        let mut rng = Rng::seed_from(seed);
        for _ in 0..10_000 {
            let x = rng.uniform(-1.0, 1.0);
            let err = q.quantize(x) - x;
            assert!(
                err.abs() <= step / 2.0 + 1e-6,
                "error {err} beyond half-step at {x}"
            );
        }
    }
}

#[test]
fn quantizer_error_is_uniform_over_the_step() {
    // For inputs uniform over the interior of the range, quantization error
    // is uniform on [-Δ/2, Δ/2]: mean 0, variance Δ²/12.
    let q = Quantizer::new(128, 1.0);
    let step = f64::from(q.step());
    for seed in SEEDS {
        let mut rng = Rng::seed_from(seed);
        let n = 40_000;
        let errs: Vec<f64> = (0..n)
            .map(|_| {
                let x = rng.uniform(-0.9, 0.9);
                f64::from(q.quantize(x) - x)
            })
            .collect();
        let nf = n as f64;
        let mean = errs.iter().sum::<f64>() / nf;
        let var = errs.iter().map(|&e| (e - mean) * (e - mean)).sum::<f64>() / (nf - 1.0);
        let ideal_var = step * step / 12.0;
        // Uniform errors have std Δ/√12; the mean estimator's std is that
        // over √n. Variance of the sample variance for uniform error is
        // (μ₄ − σ⁴)/n with μ₄ = Δ⁴/80, i.e. ≈ 0.8·σ⁴·(2/n).
        let mean_tol = 4.0 * (ideal_var / nf).sqrt();
        assert!(
            mean.abs() < mean_tol,
            "seed {seed}: mean error {mean} beyond ±{mean_tol}"
        );
        let var_tol = 4.0 * (2.0 / nf).sqrt() * ideal_var;
        assert!(
            (var - ideal_var).abs() < var_tol,
            "seed {seed}: error variance {var} vs uniform {ideal_var}"
        );
    }
}

#[test]
fn converters_clip_and_saturate_at_their_bounds() {
    let dac = Dac::new(Resolution::bits(7), 1.0);
    let q = Quantizer::new(128, 1.0);
    // Out-of-range values clip to the extreme representable level; NaN
    // converts to 0 but is still reported as clipped.
    assert_eq!(dac.convert(7.0), 1.0 - q.step() / 2.0);
    assert_eq!(dac.convert(f32::NAN), 0.0);
    let mut xs = [0.3, 7.0, f32::NAN, -0.2];
    assert_eq!(dac.convert_slice(&mut xs), 2);

    let adc = Adc::new(Resolution::bits(7), 12.0);
    let lsb = 24.0 / 128.0;
    let (code, sat) = adc.convert(100.0);
    assert!(sat, "beyond full scale must saturate");
    assert!((code - (12.0 - lsb / 2.0)).abs() < 1e-5);
    let (code, sat) = adc.convert(0.5);
    assert!(!sat);
    assert!((code - 0.5).abs() <= lsb / 2.0 + 1e-6);
}
