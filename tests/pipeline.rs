//! Cross-crate integration tests: the full train → inject → calibrate →
//! rescale → deploy pipeline.

use nora::cim::TileConfig;
use nora::core::{calibrate, RescalePlan, SmoothingConfig};
use nora::eval::tasks::{analog_accuracy, digital_accuracy};
use nora::nn::zoo::{tiny_spec, ModelFamily};
use nora::nn::zoo::ZooModel;

fn build(family: ModelFamily, seed: u64) -> ZooModel {
    tiny_spec(family, seed).build()
}

#[test]
fn end_to_end_nora_recovers_naive_collapse() {
    // The paper's headline (Fig. 5a) at integration-test scale: an
    // OPT-like model collapses under naive analog mapping and recovers to
    // within a few points of digital under NORA.
    let mut zoo = build(ModelFamily::OptLike, 9001);
    let calib_seqs: Vec<Vec<usize>> = (0..6).map(|_| zoo.corpus.episode().tokens).collect();
    let episodes = zoo.corpus.episodes(120);

    let digital = digital_accuracy(&zoo.model, &episodes);
    assert!(digital > 0.6, "digital baseline too weak: {digital}");

    let tile = TileConfig::paper_default();
    let mut naive = RescalePlan::naive().deploy(&zoo.model, tile.clone(), 1);
    let naive_acc = analog_accuracy(&mut naive, &episodes);

    let calibration = calibrate(&zoo.model, &calib_seqs);
    let plan = RescalePlan::nora(&zoo.model, &calibration, SmoothingConfig::default());
    let mut nora = plan.deploy(&zoo.model, tile, 1);
    let nora_acc = analog_accuracy(&mut nora, &episodes);

    // Naive must lose badly; NORA must recover most of it.
    assert!(
        digital - naive_acc > 0.2,
        "naive should collapse: digital {digital} naive {naive_acc}"
    );
    assert!(
        nora_acc > naive_acc + 0.1,
        "nora {nora_acc} should clearly beat naive {naive_acc}"
    );
    assert!(
        digital - nora_acc < 0.15,
        "nora {nora_acc} should approach digital {digital}"
    );
}

#[test]
fn robust_families_survive_naive_quantization_better() {
    // Paper Fig. 3a/b: OPT-like models are much more quantization-
    // sensitive than LLaMA/Mistral-like ones.
    use nora::cim::NonIdeality;
    let severity = 1.0 / 128.0; // a 7-bit converter

    let drop_for = |family: ModelFamily, seed: u64| {
        let mut zoo = build(family, seed);
        let episodes = zoo.corpus.episodes(100);
        let digital = digital_accuracy(&zoo.model, &episodes);
        let tile = NonIdeality::AdcQuantization.configure(severity);
        let mut analog = RescalePlan::naive().deploy(&zoo.model, tile, 2);
        digital - analog_accuracy(&mut analog, &episodes)
    };

    let opt_drop = drop_for(ModelFamily::OptLike, 42);
    let llama_drop = drop_for(ModelFamily::LlamaLike, 43);
    assert!(
        opt_drop > llama_drop + 0.05,
        "opt-like drop {opt_drop} should exceed llama-like drop {llama_drop}"
    );
}

#[test]
fn exactness_chain_digital_equals_ideal_analog_with_and_without_nora() {
    // The cancellation identity of Eq. 6–8 holds through a real model:
    // with every non-ideality off, naive and NORA deployments both
    // reproduce the digital logits.
    let mut zoo = build(ModelFamily::MistralLike, 7);
    let calib_seqs: Vec<Vec<usize>> = (0..3).map(|_| zoo.corpus.episode().tokens).collect();
    let calibration = calibrate(&zoo.model, &calib_seqs);
    let plan = RescalePlan::nora(&zoo.model, &calibration, SmoothingConfig::default());

    let tokens = &calib_seqs[0];
    let digital = zoo.model.forward(tokens);
    let var = nora::tensor::stats::variance(digital.as_slice()).max(1e-12);

    let mut ideal_naive = RescalePlan::naive().deploy(&zoo.model, TileConfig::ideal(), 3);
    assert!(ideal_naive.forward(tokens).mse(&digital) / var < 1e-7);

    let mut ideal_nora = plan.deploy(&zoo.model, TileConfig::ideal(), 3);
    assert!(ideal_nora.forward(tokens).mse(&digital) / var < 1e-7);
}

#[test]
fn serialization_survives_the_full_pipeline() {
    // A cached model must produce the same analog accuracy as the
    // original, given the same seeds and episodes.
    let zoo = build(ModelFamily::OptLike, 55);
    let mut buf = Vec::new();
    nora::nn::serialize::save(
        &zoo.model,
        nora::nn::serialize::SavedMeta {
            first_loss: zoo.report.first_loss,
            final_loss: zoo.report.final_loss,
        },
        &mut buf,
    )
    .unwrap();
    let (loaded, _) = nora::nn::serialize::load(buf.as_slice()).unwrap();

    let mut corpus = zoo.corpus.clone();
    let episodes = corpus.episodes(40);
    let tile = TileConfig::paper_default();
    let mut a = RescalePlan::naive().deploy(&zoo.model, tile.clone(), 4);
    let mut b = RescalePlan::naive().deploy(&loaded, tile, 4);
    assert_eq!(
        analog_accuracy(&mut a, &episodes),
        analog_accuracy(&mut b, &episodes)
    );
}
