//! Differential conductance encoding of signed weights.

/// A differential conductance pair `(g⁺, g⁻)` representing a signed weight.
///
/// Conductances are physically non-negative, so analog arrays represent a
/// signed weight `w` as the difference of two cells on paired bitlines:
/// `w ∝ g⁺ − g⁻`. The standard mapping programs only one of the pair
/// (`g⁺ = w·g_max, g⁻ = 0` for positive `w` and vice versa), which maximises
/// the usable conductance range.
///
/// # Example
///
/// ```
/// use nora_device::ConductancePair;
/// let pair = ConductancePair::encode(-0.5, 25.0);
/// assert_eq!(pair.g_plus, 0.0);
/// assert_eq!(pair.g_minus, 12.5);
/// assert_eq!(pair.decode(25.0), -0.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ConductancePair {
    /// Positive-bitline conductance, µS.
    pub g_plus: f32,
    /// Negative-bitline conductance, µS.
    pub g_minus: f32,
}

impl ConductancePair {
    /// Encodes a normalised weight `w ∈ [-1, 1]` with full-scale `g_max`.
    ///
    /// Weights outside `[-1, 1]` are clamped; this is the weight-clipping
    /// that the per-column `γ_j` scaling of the tile exists to avoid.
    pub fn encode(w: f32, g_max: f32) -> Self {
        let w = if w.is_nan() { 0.0 } else { w.clamp(-1.0, 1.0) };
        if w >= 0.0 {
            Self {
                g_plus: w * g_max,
                g_minus: 0.0,
            }
        } else {
            Self {
                g_plus: 0.0,
                g_minus: -w * g_max,
            }
        }
    }

    /// Decodes back to a normalised weight.
    pub fn decode(&self, g_max: f32) -> f32 {
        (self.g_plus - self.g_minus) / g_max
    }

    /// Effective signed conductance `g⁺ − g⁻` in µS.
    pub fn net(&self) -> f32 {
        self.g_plus - self.g_minus
    }

    /// Total programmed conductance `g⁺ + g⁻` (drives IR-drop and power).
    pub fn total(&self) -> f32 {
        self.g_plus + self.g_minus
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trip() {
        for i in -10..=10 {
            let w = i as f32 / 10.0;
            let p = ConductancePair::encode(w, 25.0);
            assert!((p.decode(25.0) - w).abs() < 1e-6);
        }
    }

    #[test]
    fn one_side_is_always_zero() {
        let p = ConductancePair::encode(0.7, 25.0);
        assert_eq!(p.g_minus, 0.0);
        let n = ConductancePair::encode(-0.7, 25.0);
        assert_eq!(n.g_plus, 0.0);
    }

    #[test]
    fn out_of_range_clamps() {
        let p = ConductancePair::encode(3.0, 25.0);
        assert_eq!(p.g_plus, 25.0);
        let n = ConductancePair::encode(-3.0, 25.0);
        assert_eq!(n.g_minus, 25.0);
    }

    #[test]
    fn nan_encodes_to_zero() {
        let p = ConductancePair::encode(f32::NAN, 25.0);
        assert_eq!(p.net(), 0.0);
    }

    #[test]
    fn net_and_total() {
        let p = ConductancePair {
            g_plus: 10.0,
            g_minus: 4.0,
        };
        assert_eq!(p.net(), 6.0);
        assert_eq!(p.total(), 14.0);
    }
}
