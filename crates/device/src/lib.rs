//! Non-volatile-memory device models for analog compute-in-memory.
//!
//! Analog CIM stores each weight as the conductance of one or two NVM cells.
//! The paper's experiments use the phase-change-memory (PCM) statistical
//! model popularised by the IBM analog-AI stack; this crate implements that
//! model from scratch:
//!
//! * [`PcmModel`] — programming noise, power-law conductance **drift**, and
//!   long-term **1/f read noise**, with the published coefficient set
//!   (Nandakumar et al., IEDM 2020; Joshi et al., Nat. Comm. 2020) as
//!   [`PcmModel::default`].
//! * [`ReramModel`] — a simpler log-normal programming-noise model, standing
//!   in for resistive RAM (the paper's §VII notes NORA extends to ReRAM).
//! * [`ConductancePair`] — differential `(g⁺, g⁻)` encoding of signed
//!   weights.
//! * [`program_matrix`] / [`read_matrix`] — array-level helpers that program
//!   a whole weight block and read it back after an arbitrary drift time,
//!   used by `nora-cim` tiles and by the drift study
//!   (`cargo run -p nora-bench --bin drift_study`).
//!
//! Conductances are expressed in microsiemens (µS) throughout.
//!
//! # Example
//!
//! ```
//! use nora_device::{PcmModel, NvmModel};
//! use nora_tensor::rng::Rng;
//!
//! let pcm = PcmModel::default();
//! let mut rng = Rng::seed_from(1);
//! let cell = pcm.program(20.0, &mut rng);
//! let g_now = cell.read(&pcm, 1.0, &mut rng);      // 1 s after programming
//! let g_hour = cell.read(&pcm, 3600.0, &mut rng);  // 1 h later: drifted lower
//! assert!(g_now.is_finite() && g_hour.is_finite());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod crossbar;
pub mod fault;
mod pair;
mod pcm;
mod reram;
mod sliced;

pub use crossbar::{
    program_matrix, program_matrix_pruned, program_matrix_verified, read_matrix,
    read_matrix_mean, ProgrammedMatrix,
};
pub use fault::{CellFault, FaultPlan, TileFaultMap};
pub use pair::ConductancePair;
pub use pcm::{DriftModel, PcmModel, ProgrammedCell, ReadNoiseModel, WriteVerifyOutcome};
pub use reram::ReramModel;
pub use sliced::{program_matrix_sliced, read_sliced, read_sliced_mean, SlicedMatrix};

use nora_tensor::rng::Rng;

/// Common interface of NVM conductance models.
///
/// A model turns a target conductance into a programmed cell
/// ([`NvmModel::program`]) and evaluates what a read returns `t` seconds
/// later ([`NvmModel::read_cell`]), including every time-dependent
/// non-ideality the device exhibits.
pub trait NvmModel {
    /// Maximum programmable conductance in µS.
    fn g_max(&self) -> f32;

    /// Programs a cell towards `g_target` (µS), returning the achieved state.
    ///
    /// `g_target` is clamped into `[0, g_max]` before programming.
    fn program(&self, g_target: f32, rng: &mut Rng) -> ProgrammedCell;

    /// Programs a cell with up to `iters` write–verify iterations (the
    /// closed-loop tuning of the paper's §II "write-verify memory
    /// programming process"). Devices without an iterative write model
    /// fall back to single-shot programming.
    fn program_verified(&self, g_target: f32, iters: u32, rng: &mut Rng) -> ProgrammedCell {
        let _ = iters;
        self.program(g_target, rng)
    }

    /// Reads a programmed cell `t_seconds` after programming.
    fn read_cell(&self, cell: &ProgrammedCell, t_seconds: f64, rng: &mut Rng) -> f32;

    /// The *expected* (noise-free) read value at `t_seconds` — deterministic
    /// drift for PCM, the programmed value for drift-free devices. Used to
    /// establish a tile's reference weights; stochastic read effects are
    /// injected separately per cycle.
    fn read_mean(&self, cell: &ProgrammedCell, t_seconds: f64) -> f32 {
        let _ = t_seconds;
        cell.g_prog
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trait_is_object_safe() {
        let models: Vec<Box<dyn NvmModel>> =
            vec![Box::new(PcmModel::default()), Box::new(ReramModel::default())];
        let mut rng = Rng::seed_from(0);
        for m in &models {
            let cell = m.program(10.0, &mut rng);
            let g = m.read_cell(&cell, 1.0, &mut rng);
            assert!(g.is_finite());
        }
    }
}
