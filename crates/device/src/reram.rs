//! Resistive-RAM (ReRAM) device model.
//!
//! ReRAM cells switch a conductive filament rather than a phase, so their
//! dominant inference-time non-ideality is programming variability (commonly
//! characterised as log-normal), while drift is negligible on inference time
//! scales. The paper's §VII notes NORA "can also be extended to other NVM
//! devices such as ReRAM" — this model backs that extension and the
//! cross-device tests.

use crate::pcm::ProgrammedCell;
use crate::NvmModel;
use nora_tensor::rng::Rng;

/// Log-normal programming-noise ReRAM model with optional white read noise.
///
/// Programming multiplies the target by `exp(N(0, σ_ln²))`; reads add white
/// Gaussian noise of `read_sigma_rel · g_max`.
///
/// # Example
///
/// ```
/// use nora_device::{ReramModel, NvmModel};
/// use nora_tensor::rng::Rng;
///
/// let reram = ReramModel::default();
/// let mut rng = Rng::seed_from(3);
/// let cell = reram.program(30.0, &mut rng);
/// assert!(cell.g_prog >= 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReramModel {
    /// Maximum conductance in µS.
    pub g_max: f32,
    /// Standard deviation of the log-conductance programming error.
    pub sigma_ln: f32,
    /// White read-noise std relative to `g_max`.
    pub read_sigma_rel: f32,
}

impl Default for ReramModel {
    fn default() -> Self {
        Self {
            g_max: 100.0,
            sigma_ln: 0.05,
            read_sigma_rel: 0.002,
        }
    }
}

impl NvmModel for ReramModel {
    fn g_max(&self) -> f32 {
        self.g_max
    }

    fn program(&self, g_target: f32, rng: &mut Rng) -> ProgrammedCell {
        let g_target = g_target.clamp(0.0, self.g_max);
        let g_prog = if g_target == 0.0 {
            0.0
        } else {
            (g_target * rng.normal(0.0, self.sigma_ln).exp()).clamp(0.0, self.g_max)
        };
        ProgrammedCell {
            g_prog,
            g_target,
            nu: 0.0, // filamentary ReRAM: no inference-scale drift
        }
    }

    fn read_cell(&self, cell: &ProgrammedCell, _t_seconds: f64, rng: &mut Rng) -> f32 {
        (cell.g_prog + rng.normal(0.0, self.read_sigma_rel * self.g_max)).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn programming_is_multiplicative() {
        let reram = ReramModel::default();
        let mut rng = Rng::seed_from(1);
        let n = 50_000;
        let target = 40.0f32;
        let mut log_sum = 0.0f64;
        let mut log_sum2 = 0.0f64;
        for _ in 0..n {
            let cell = reram.program(target, &mut rng);
            let l = (cell.g_prog as f64 / target as f64).ln();
            log_sum += l;
            log_sum2 += l * l;
        }
        let mean = log_sum / n as f64;
        let std = (log_sum2 / n as f64 - mean * mean).sqrt();
        assert!(mean.abs() < 0.01, "log mean {mean}");
        assert!((std - 0.05).abs() < 0.005, "log std {std}");
    }

    #[test]
    fn zero_target_stays_zero() {
        let reram = ReramModel::default();
        let mut rng = Rng::seed_from(2);
        let cell = reram.program(0.0, &mut rng);
        assert_eq!(cell.g_prog, 0.0);
    }

    #[test]
    fn no_drift_in_reads() {
        let reram = ReramModel {
            read_sigma_rel: 0.0,
            ..ReramModel::default()
        };
        let mut rng = Rng::seed_from(3);
        let cell = reram.program(50.0, &mut rng);
        let g_now = reram.read_cell(&cell, 0.0, &mut rng);
        let g_year = reram.read_cell(&cell, 3.15e7, &mut rng);
        assert_eq!(g_now, g_year);
    }

    #[test]
    fn reads_clamped_non_negative() {
        let reram = ReramModel {
            read_sigma_rel: 1.0, // absurdly noisy reads
            ..ReramModel::default()
        };
        let mut rng = Rng::seed_from(4);
        let cell = reram.program(1.0, &mut rng);
        for _ in 0..1000 {
            assert!(reram.read_cell(&cell, 0.0, &mut rng) >= 0.0);
        }
    }
}
