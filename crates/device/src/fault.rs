//! Hard-fault models for analog CIM crossbars.
//!
//! The Gaussian noise inventory of the NORA paper describes a *healthy*
//! array. Real crossbars additionally exhibit hard defects — the classes
//! catalogued by Xiao et al. ("On the Accuracy of Analog Neural Network
//! Inference Accelerators") and targeted by remapping schemes such as ROMER:
//!
//! * **Stuck cells** — a conductance frozen at `G_min` (formed-open /
//!   reset-stuck) or `G_max` (shorted / set-stuck), immune to programming.
//! * **Dead rows** — a broken wordline driver: the row's cells never
//!   contribute current.
//! * **Dead columns** — an open bitline: the column's accumulated current
//!   never reaches the sense amplifier.
//! * **ADC stuck codes** — a converter channel latched at a fixed output
//!   code regardless of its input.
//! * **Tile dropout** — a whole tile electrically dead (power gating fault,
//!   broken select logic).
//! * **Programming failures** — a write sequence that aborts and leaves the
//!   tile unusable until retried.
//!
//! A [`FaultPlan`] holds per-class rates plus a seed; instantiating it for a
//! *physical tile id* yields a deterministic [`TileFaultMap`]. The same
//! physical tile always draws the same defects (stuck cells survive
//! re-programming), while a different physical tile — e.g. a spare used for
//! remapping — draws an independent defect set. This is what makes
//! retry/remap policies in `nora-cim` meaningful and reproducible.

use nora_tensor::rng::Rng;
use nora_tensor::Matrix;

/// How a stuck cell presents at the array level.
///
/// Weights are stored differentially (`g⁺ − g⁻`); the map folds the two
/// cell-level failure modes into their effect on the *normalised* weight.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CellFault {
    /// Both pair cells stuck at `G_min`: the weight reads as 0.
    StuckLow,
    /// One pair cell stuck at `G_max`: the weight saturates to ±1
    /// (the sign picks which side shorted).
    StuckHigh {
        /// Saturated normalised weight value (−1.0 or +1.0).
        sign: f32,
    },
}

/// Per-class hard-fault rates plus the seed that makes them reproducible.
///
/// All rates are probabilities in `[0, 1]`: per *cell* for stuck faults, per
/// *row*/*column* for line faults, per *tile* for dropout, and per
/// *programming attempt* for programming failures.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed from which every tile's defect map is derived.
    pub seed: u64,
    /// Per-cell probability of a stuck-at-`G_min` weight.
    pub stuck_low: f64,
    /// Per-cell probability of a stuck-at-`G_max` weight.
    pub stuck_high: f64,
    /// Per-row probability of a dead wordline.
    pub dead_row: f64,
    /// Per-column probability of an open bitline.
    pub dead_col: f64,
    /// Per-column probability of an ADC channel stuck at a fixed code.
    pub adc_stuck: f64,
    /// Per-tile probability that the whole tile is electrically dead.
    pub tile_dropout: f64,
    /// Per-attempt probability that programming the tile fails outright.
    pub programming_failure: f64,
}

impl FaultPlan {
    /// A plan with every rate zero (no faults ever fire).
    pub fn none() -> Self {
        Self {
            seed: 0,
            stuck_low: 0.0,
            stuck_high: 0.0,
            dead_row: 0.0,
            dead_col: 0.0,
            adc_stuck: 0.0,
            tile_dropout: 0.0,
            programming_failure: 0.0,
        }
    }

    /// A uniform plan: stuck cells at `cell_rate` (split evenly between low
    /// and high), line faults at `line_rate`, no dropout or programming
    /// failures. The shape used by the `fault_study` sweep.
    pub fn uniform(cell_rate: f64, line_rate: f64, seed: u64) -> Self {
        Self {
            seed,
            stuck_low: cell_rate / 2.0,
            stuck_high: cell_rate / 2.0,
            dead_row: line_rate,
            dead_col: line_rate,
            adc_stuck: line_rate,
            tile_dropout: 0.0,
            programming_failure: 0.0,
        }
    }

    /// Whether every rate is zero.
    pub fn is_trivial(&self) -> bool {
        self.stuck_low == 0.0
            && self.stuck_high == 0.0
            && self.dead_row == 0.0
            && self.dead_col == 0.0
            && self.adc_stuck == 0.0
            && self.tile_dropout == 0.0
            && self.programming_failure == 0.0
    }

    /// Validates that every rate is a probability.
    ///
    /// # Errors
    ///
    /// Returns a description of the first out-of-range rate.
    pub fn validate(&self) -> Result<(), String> {
        for (name, v) in [
            ("stuck_low", self.stuck_low),
            ("stuck_high", self.stuck_high),
            ("dead_row", self.dead_row),
            ("dead_col", self.dead_col),
            ("adc_stuck", self.adc_stuck),
            ("tile_dropout", self.tile_dropout),
            ("programming_failure", self.programming_failure),
        ] {
            if !(0.0..=1.0).contains(&v) || v.is_nan() {
                return Err(format!("fault rate {name} must be in [0, 1], got {v}"));
            }
        }
        Ok(())
    }

    /// Draws the deterministic defect map of physical tile `physical_id`
    /// with `rows × cols` cells.
    ///
    /// The same `(plan, physical_id, rows, cols)` always yields the same
    /// map; different physical ids yield independent maps.
    pub fn instantiate(&self, physical_id: u64, rows: usize, cols: usize) -> TileFaultMap {
        let mut rng = Rng::seed_from(
            self.seed
                ^ physical_id.wrapping_mul(0xA076_1D64_78BD_642F)
                ^ 0x4649_4D5F_4641_554C, // "FIM_FAUL"
        );
        let dropped = rng.next_f64() < self.tile_dropout;
        let mut cell_faults = Vec::new();
        if self.stuck_low > 0.0 || self.stuck_high > 0.0 {
            for r in 0..rows {
                for c in 0..cols {
                    let u = rng.next_f64();
                    if u < self.stuck_low {
                        cell_faults.push((r, c, CellFault::StuckLow));
                    } else if u < self.stuck_low + self.stuck_high {
                        let sign = if rng.next_f64() < 0.5 { -1.0 } else { 1.0 };
                        cell_faults.push((r, c, CellFault::StuckHigh { sign }));
                    }
                }
            }
        }
        let dead_rows: Vec<usize> =
            (0..rows).filter(|_| rng.next_f64() < self.dead_row).collect();
        let dead_cols: Vec<usize> =
            (0..cols).filter(|_| rng.next_f64() < self.dead_col).collect();
        let adc_stuck: Vec<(usize, f32)> = (0..cols)
            .filter_map(|c| {
                if rng.next_f64() < self.adc_stuck {
                    // Stuck code anywhere in the converter's signed range,
                    // expressed as a fraction of full scale.
                    Some((c, rng.uniform(-1.0, 1.0)))
                } else {
                    None
                }
            })
            .collect();
        TileFaultMap {
            rows,
            cols,
            dropped,
            cell_faults,
            dead_rows,
            dead_cols,
            adc_stuck,
            prog_fail_rate: self.programming_failure,
            prog_fail_seed: rng.next_u64(),
        }
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

/// The deterministic defect set of one physical tile.
///
/// Produced by [`FaultPlan::instantiate`]; consumed by `nora-cim` when
/// programming and executing tiles.
#[derive(Debug, Clone, PartialEq)]
pub struct TileFaultMap {
    rows: usize,
    cols: usize,
    dropped: bool,
    /// Sparse `(row, col, fault)` list over the physical cell grid.
    cell_faults: Vec<(usize, usize, CellFault)>,
    dead_rows: Vec<usize>,
    dead_cols: Vec<usize>,
    /// `(col, stuck fraction of ADC full scale)`.
    adc_stuck: Vec<(usize, f32)>,
    prog_fail_rate: f64,
    prog_fail_seed: u64,
}

impl TileFaultMap {
    /// A map with no defects (used when no plan is configured).
    pub fn clean(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            dropped: false,
            cell_faults: Vec::new(),
            dead_rows: Vec::new(),
            dead_cols: Vec::new(),
            adc_stuck: Vec::new(),
            prog_fail_rate: 0.0,
            prog_fail_seed: 0,
        }
    }

    /// Physical rows covered by the map.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Physical columns covered by the map.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Whether the whole tile is electrically dead.
    pub fn is_dropped(&self) -> bool {
        self.dropped
    }

    /// Whether the map contains no defects at all.
    pub fn is_clean(&self) -> bool {
        !self.dropped
            && self.cell_faults.is_empty()
            && self.dead_rows.is_empty()
            && self.dead_cols.is_empty()
            && self.adc_stuck.is_empty()
    }

    /// Number of stuck cells.
    pub fn stuck_cell_count(&self) -> usize {
        self.cell_faults.len()
    }

    /// Dead (open-wordline) row indices.
    pub fn dead_rows(&self) -> &[usize] {
        &self.dead_rows
    }

    /// Dead (open-bitline) column indices.
    pub fn dead_cols(&self) -> &[usize] {
        &self.dead_cols
    }

    /// Stuck ADC channels as `(column, stuck fraction of full scale)`.
    pub fn adc_stuck(&self) -> &[(usize, f32)] {
        &self.adc_stuck
    }

    /// Whether programming attempt number `attempt` (0-based) fails.
    ///
    /// Deterministic per `(tile, attempt)`: retrying the exact same attempt
    /// reproduces the outcome, while the next attempt gets a fresh draw —
    /// so bounded-retry policies behave identically across runs.
    pub fn programming_attempt_fails(&self, attempt: u32) -> bool {
        if self.prog_fail_rate <= 0.0 {
            return false;
        }
        let mut rng = Rng::seed_from(self.prog_fail_seed ^ ((attempt as u64) << 17));
        rng.next_f64() < self.prog_fail_rate
    }

    /// Imprints the weight-side defects onto a *normalised* effective
    /// weight block (`|w| ≤ 1`, the tile's post-programming view).
    ///
    /// The block may be smaller than the physical tile (edge tiles of a
    /// partitioned layer); defects outside the block's extent are ignored.
    /// Dead columns also zero the weights (no current ever reaches the
    /// sense amp), but their definitive runtime effect — a zero partial sum
    /// regardless of later re-programming — is re-applied by the tile at
    /// forward time.
    pub fn apply_to_weights(&self, w: &mut Matrix) {
        if self.dropped {
            for v in w.as_mut_slice() {
                *v = 0.0;
            }
            return;
        }
        let (rows, cols) = w.shape();
        for &(r, c, fault) in &self.cell_faults {
            if r < rows && c < cols {
                w[(r, c)] = match fault {
                    CellFault::StuckLow => 0.0,
                    CellFault::StuckHigh { sign } => sign,
                };
            }
        }
        for &r in &self.dead_rows {
            if r < rows {
                for c in 0..cols {
                    w[(r, c)] = 0.0;
                }
            }
        }
        for &c in &self.dead_cols {
            if c < cols {
                for r in 0..rows {
                    w[(r, c)] = 0.0;
                }
            }
        }
    }

    /// Overwrites ADC outputs of stuck channels in one output row.
    ///
    /// `z` is the normalised post-ADC output slice; `full_scale` is the
    /// converter bound the stuck fraction is relative to (pass the ADC
    /// bound, or 1.0 for unbounded converters).
    pub fn apply_adc_stuck(&self, z: &mut [f32], full_scale: f32) {
        let fs = if full_scale.is_finite() { full_scale } else { 1.0 };
        for &(c, frac) in &self.adc_stuck {
            if c < z.len() {
                z[c] = frac * fs;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn busy_plan(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            stuck_low: 0.01,
            stuck_high: 0.01,
            dead_row: 0.05,
            dead_col: 0.05,
            adc_stuck: 0.05,
            tile_dropout: 0.1,
            programming_failure: 0.3,
        }
    }

    #[test]
    fn instantiation_is_deterministic_per_physical_id() {
        let plan = busy_plan(42);
        let a = plan.instantiate(7, 64, 64);
        let b = plan.instantiate(7, 64, 64);
        assert_eq!(a, b);
        let other = plan.instantiate(8, 64, 64);
        assert_ne!(a, other, "different physical tiles draw different maps");
    }

    #[test]
    fn rates_are_respected_in_aggregate() {
        let plan = FaultPlan {
            seed: 1,
            stuck_low: 0.02,
            stuck_high: 0.01,
            ..FaultPlan::none()
        };
        let mut stuck = 0usize;
        let n_tiles = 20;
        for id in 0..n_tiles {
            stuck += plan.instantiate(id, 64, 64).stuck_cell_count();
        }
        let cells = (n_tiles as usize) * 64 * 64;
        let rate = stuck as f64 / cells as f64;
        assert!(
            (0.02..0.04).contains(&rate),
            "measured stuck rate {rate}, expected ≈0.03"
        );
    }

    #[test]
    fn zero_plan_is_always_clean() {
        let plan = FaultPlan::none();
        assert!(plan.is_trivial());
        for id in 0..10 {
            assert!(plan.instantiate(id, 128, 128).is_clean());
        }
    }

    #[test]
    fn validate_rejects_out_of_range_rates() {
        let mut p = FaultPlan::none();
        p.dead_col = 1.5;
        assert!(p.validate().is_err());
        p.dead_col = 0.5;
        assert!(p.validate().is_ok());
        p.stuck_low = -0.1;
        assert!(p.validate().is_err());
    }

    #[test]
    fn apply_to_weights_imprints_all_classes() {
        let mut map = TileFaultMap::clean(4, 4);
        map.cell_faults.push((0, 0, CellFault::StuckLow));
        map.cell_faults
            .push((1, 1, CellFault::StuckHigh { sign: -1.0 }));
        map.dead_rows.push(2);
        map.dead_cols.push(3);
        let mut w = Matrix::full(4, 4, 0.5);
        map.apply_to_weights(&mut w);
        assert_eq!(w[(0, 0)], 0.0);
        assert_eq!(w[(1, 1)], -1.0);
        assert!(w.row(2).iter().all(|&v| v == 0.0));
        for r in 0..4 {
            assert_eq!(w[(r, 3)], 0.0);
        }
        assert_eq!(w[(0, 1)], 0.5, "healthy cells untouched");
    }

    #[test]
    fn faults_outside_block_extent_are_ignored() {
        let mut map = TileFaultMap::clean(8, 8);
        map.cell_faults.push((6, 6, CellFault::StuckLow));
        map.dead_rows.push(7);
        map.dead_cols.push(5);
        let mut w = Matrix::full(3, 3, 0.25); // small edge block
        map.apply_to_weights(&mut w);
        assert!(w.as_slice().iter().all(|&v| v == 0.25));
    }

    #[test]
    fn dropped_tile_zeroes_everything() {
        let plan = FaultPlan {
            seed: 3,
            tile_dropout: 1.0,
            ..FaultPlan::none()
        };
        let map = plan.instantiate(0, 4, 4);
        assert!(map.is_dropped());
        let mut w = Matrix::full(4, 4, 0.7);
        map.apply_to_weights(&mut w);
        assert!(w.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn adc_stuck_overrides_outputs() {
        let mut map = TileFaultMap::clean(4, 4);
        map.adc_stuck.push((1, 0.5));
        let mut z = [0.1f32, 0.2, 0.3, 0.4];
        map.apply_adc_stuck(&mut z, 12.0);
        assert_eq!(z, [0.1, 6.0, 0.3, 0.4]);
        // Unbounded converters fall back to unit full scale.
        let mut z2 = [0.0f32; 4];
        map.apply_adc_stuck(&mut z2, f32::INFINITY);
        assert_eq!(z2[1], 0.5);
    }

    #[test]
    fn programming_failures_are_deterministic_and_eventually_pass() {
        let plan = FaultPlan {
            seed: 9,
            programming_failure: 0.5,
            ..FaultPlan::none()
        };
        let map = plan.instantiate(3, 16, 16);
        let outcomes: Vec<bool> =
            (0..16).map(|a| map.programming_attempt_fails(a)).collect();
        let again: Vec<bool> =
            (0..16).map(|a| map.programming_attempt_fails(a)).collect();
        assert_eq!(outcomes, again);
        assert!(outcomes.iter().any(|&f| f), "some attempts fail at 50%");
        assert!(outcomes.iter().any(|&f| !f), "some attempts succeed at 50%");
    }

    #[test]
    fn dead_line_rates_hit_expected_counts() {
        let plan = FaultPlan {
            seed: 11,
            dead_row: 0.5,
            dead_col: 0.5,
            ..FaultPlan::none()
        };
        let map = plan.instantiate(0, 200, 200);
        assert!((60..140).contains(&map.dead_rows().len()));
        assert!((60..140).contains(&map.dead_cols().len()));
    }
}
