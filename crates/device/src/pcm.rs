//! Phase-change-memory statistical model.
//!
//! A PCM cell stores a conductance between the fully amorphous (high
//! resistance) and fully crystalline (low resistance) states. Three
//! non-idealities matter for inference workloads:
//!
//! 1. **Programming noise** — the iterative write achieves the target only up
//!    to a conductance-dependent error `σ_prog(g)`.
//! 2. **Drift** — amorphous-phase structural relaxation shrinks conductance
//!    over time with a power law `g(t) = g_prog · (t/t_c)^(-ν)`.
//! 3. **1/f read noise** — low-frequency noise whose accumulated variance
//!    grows logarithmically with time since programming.
//!
//! The default coefficients follow the published IBM PCM characterisation
//! used by the paper's simulator (AIHWKIT's `PCMLikeNoiseModel`).

use crate::NvmModel;
use nora_tensor::rng::Rng;

/// Conductance drift parameters.
///
/// The drift exponent `ν` is itself stochastic and conductance dependent:
/// `ν ~ N(µ_ν(ĝ), σ_ν(ĝ))` clamped to `[nu_min, nu_max]`, where `ĝ = g/g_max`
/// and both statistics are affine in `ln ĝ`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftModel {
    /// Reference time between programming and the first read, in seconds.
    pub t_c: f64,
    /// Slope of `µ_ν` in `ln ĝ`.
    pub mu_slope: f32,
    /// Intercept of `µ_ν`.
    pub mu_intercept: f32,
    /// Lower clamp of `µ_ν`.
    pub mu_min: f32,
    /// Upper clamp of `µ_ν`.
    pub mu_max: f32,
    /// Slope of `σ_ν` in `ln ĝ`.
    pub sig_slope: f32,
    /// Intercept of `σ_ν`.
    pub sig_intercept: f32,
    /// Lower clamp of `σ_ν`.
    pub sig_min: f32,
    /// Upper clamp of `σ_ν`.
    pub sig_max: f32,
    /// Hard bounds on the sampled exponent.
    pub nu_min: f32,
    /// Upper hard bound on the sampled exponent.
    pub nu_max: f32,
}

impl Default for DriftModel {
    fn default() -> Self {
        Self {
            t_c: 20.0,
            mu_slope: -0.0155,
            mu_intercept: 0.0244,
            mu_min: 0.049,
            mu_max: 0.1,
            sig_slope: -0.0125,
            sig_intercept: -0.0059,
            sig_min: 0.008,
            sig_max: 0.045,
            nu_min: 0.0,
            nu_max: 0.3,
        }
    }
}

impl DriftModel {
    /// Samples a drift exponent for a cell programmed to relative
    /// conductance `g_rel = g/g_max`.
    pub fn sample_nu(&self, g_rel: f32, rng: &mut Rng) -> f32 {
        // Fully-reset cells (g ≈ 0) drift the most; clamp ln at a small floor.
        let ln_g = g_rel.max(1e-4).ln();
        let mu = (self.mu_slope * ln_g + self.mu_intercept).clamp(self.mu_min, self.mu_max);
        let sig = (self.sig_slope * ln_g + self.sig_intercept).clamp(self.sig_min, self.sig_max);
        rng.normal(mu, sig).clamp(self.nu_min, self.nu_max)
    }

    /// Deterministic drift factor `(t/t_c)^(-ν)` for a given exponent.
    ///
    /// Times earlier than `t_c` are clamped to `t_c` (the model is calibrated
    /// from the first read onwards).
    pub fn factor(&self, nu: f32, t_seconds: f64) -> f32 {
        let t = t_seconds.max(self.t_c);
        ((t / self.t_c).powf(-(nu as f64))) as f32
    }
}

/// Long-term (1/f) read-noise parameters.
///
/// The accumulated read-noise standard deviation at time `t` is
/// `σ_read(t) = g · q(ĝ) · sqrt(ln((t + t_read) / (2·t_read)))`,
/// with `q(ĝ) = min(q_scale · ĝ^q_exp, q_max)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReadNoiseModel {
    /// Read duration in seconds.
    pub t_read: f64,
    /// Scale of the `q` coefficient.
    pub q_scale: f32,
    /// Exponent of the `q` coefficient (negative: small g is noisier
    /// relative to its magnitude).
    pub q_exp: f32,
    /// Upper clamp on `q`.
    pub q_max: f32,
}

impl Default for ReadNoiseModel {
    fn default() -> Self {
        Self {
            t_read: 250e-9,
            q_scale: 0.0088,
            q_exp: -0.65,
            q_max: 0.2,
        }
    }
}

impl ReadNoiseModel {
    /// Standard deviation (µS) of the accumulated read noise at `t_seconds`
    /// for a cell whose current conductance is `g` µS (relative `g_rel`).
    pub fn sigma(&self, g: f32, g_rel: f32, t_seconds: f64) -> f32 {
        if g <= 0.0 {
            return 0.0;
        }
        let q = (self.q_scale * g_rel.max(1e-4).powf(self.q_exp)).min(self.q_max);
        let log_term = (((t_seconds + self.t_read) / (2.0 * self.t_read)).ln()).max(0.0);
        g * q * (log_term as f32).sqrt()
    }
}

/// IBM-style PCM statistical model.
///
/// # Example
///
/// ```
/// use nora_device::{PcmModel, NvmModel};
/// use nora_tensor::rng::Rng;
///
/// let pcm = PcmModel::default();
/// let mut rng = Rng::seed_from(7);
/// let outcome = pcm.program_with_verify(12.5, 5, &mut rng);
/// assert!(outcome.achieved_error.abs() < 1.0); // µS
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PcmModel {
    /// Maximum conductance in µS.
    pub g_max: f32,
    /// Programming-noise polynomial `σ_prog(ĝ) = c0 + c1·ĝ + c2·ĝ²` (µS),
    /// clamped at zero, with `ĝ = g_target/g_max`.
    pub prog_coeffs: [f32; 3],
    /// Global multiplier on the programming noise (1.0 = published model).
    pub prog_noise_scale: f32,
    /// Drift model.
    pub drift: DriftModel,
    /// 1/f read-noise model.
    pub read_noise: ReadNoiseModel,
}

impl Default for PcmModel {
    fn default() -> Self {
        Self {
            g_max: 25.0,
            prog_coeffs: [0.26348, 1.9650, -1.1731],
            prog_noise_scale: 1.0,
            drift: DriftModel::default(),
            read_noise: ReadNoiseModel::default(),
        }
    }
}

/// State of one programmed PCM cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProgrammedCell {
    /// Conductance achieved right after programming, in µS.
    pub g_prog: f32,
    /// Conductance the write loop aimed for, in µS.
    pub g_target: f32,
    /// Drift exponent sampled for this cell.
    pub nu: f32,
}

impl ProgrammedCell {
    /// A cell that was never programmed (pruned N:M weight): both target
    /// and achieved conductance are exactly 0 µS with no drift exponent.
    /// Unlike a cell *programmed to* 0 — which carries the half-normal
    /// single-shot floor `σ_prog(0)` — an unprogrammed cell draws no noise
    /// and reads back exactly 0 at every time (drift scales 0, and the 1/f
    /// read-noise law vanishes at zero conductance).
    pub const fn unprogrammed() -> Self {
        Self {
            g_prog: 0.0,
            g_target: 0.0,
            nu: 0.0,
        }
    }

    /// Reads the cell through `model` at `t_seconds` after programming.
    ///
    /// Equivalent to [`NvmModel::read_cell`] with the receiver flipped; kept
    /// as a method because reads are cell-centric in calling code.
    pub fn read(&self, model: &PcmModel, t_seconds: f64, rng: &mut Rng) -> f32 {
        model.read_cell(self, t_seconds, rng)
    }

    /// Noise-free drifted conductance at `t_seconds` (no read noise).
    pub fn drifted(&self, model: &PcmModel, t_seconds: f64) -> f32 {
        self.g_prog * model.drift.factor(self.nu, t_seconds)
    }
}

/// Result of an iterative write–verify programming sequence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WriteVerifyOutcome {
    /// Final programmed cell.
    pub cell: ProgrammedCell,
    /// Signed error `g_prog - g_target` after the final iteration, in µS.
    pub achieved_error: f32,
    /// Number of write pulses issued.
    pub iterations: u32,
}

impl PcmModel {
    /// Programming-noise standard deviation (µS) for a target conductance.
    pub fn prog_sigma(&self, g_target: f32) -> f32 {
        let g_rel = (g_target / self.g_max).clamp(0.0, 1.0);
        let [c0, c1, c2] = self.prog_coeffs;
        (c0 + c1 * g_rel + c2 * g_rel * g_rel).max(0.0) * self.prog_noise_scale
    }

    /// Single-shot programming (one pulse train, no verification).
    pub fn program_single_shot(&self, g_target: f32, rng: &mut Rng) -> ProgrammedCell {
        let g_target = g_target.clamp(0.0, self.g_max);
        let sigma = self.prog_sigma(g_target);
        let g_prog = (g_target + rng.normal(0.0, sigma)).clamp(0.0, self.g_max);
        let nu = self.drift.sample_nu(g_target / self.g_max, rng);
        ProgrammedCell {
            g_prog,
            g_target,
            nu,
        }
    }

    /// Iterative write–verify programming.
    ///
    /// Each iteration issues a corrective pulse whose effect lands within the
    /// single-shot noise of the *remaining error*, modelling the closed-loop
    /// tuning used on real arrays. More iterations tighten the final error
    /// until device stochasticity dominates. Stops early once the error is
    /// below a tenth of the single-shot sigma.
    ///
    /// # Panics
    ///
    /// Panics if `max_iters` is zero.
    pub fn program_with_verify(
        &self,
        g_target: f32,
        max_iters: u32,
        rng: &mut Rng,
    ) -> WriteVerifyOutcome {
        assert!(max_iters > 0, "write-verify needs at least one iteration");
        let g_target = g_target.clamp(0.0, self.g_max);
        let mut cell = self.program_single_shot(g_target, rng);
        let mut iters = 1;
        let tol = 0.1 * self.prog_sigma(g_target).max(1e-3);
        while iters < max_iters {
            let err = cell.g_prog - g_target;
            if err.abs() <= tol {
                break;
            }
            // Corrective pulse: removes the measured error, adds fresh noise
            // proportional to the (smaller) correction magnitude.
            let pulse_sigma = self.prog_sigma(err.abs().min(self.g_max)) * 0.5;
            let g_new = (cell.g_prog - err + rng.normal(0.0, pulse_sigma)).clamp(0.0, self.g_max);
            cell.g_prog = g_new;
            iters += 1;
        }
        WriteVerifyOutcome {
            achieved_error: cell.g_prog - g_target,
            cell,
            iterations: iters,
        }
    }
}

impl NvmModel for PcmModel {
    fn g_max(&self) -> f32 {
        self.g_max
    }

    fn program(&self, g_target: f32, rng: &mut Rng) -> ProgrammedCell {
        self.program_single_shot(g_target, rng)
    }

    fn program_verified(&self, g_target: f32, iters: u32, rng: &mut Rng) -> ProgrammedCell {
        self.program_with_verify(g_target, iters.max(1), rng).cell
    }

    fn read_cell(&self, cell: &ProgrammedCell, t_seconds: f64, rng: &mut Rng) -> f32 {
        let g_drifted = cell.drifted(self, t_seconds);
        let sigma = self
            .read_noise
            .sigma(g_drifted, g_drifted / self.g_max, t_seconds);
        (g_drifted + rng.normal(0.0, sigma)).max(0.0)
    }

    fn read_mean(&self, cell: &ProgrammedCell, t_seconds: f64) -> f32 {
        cell.drifted(self, t_seconds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prog_sigma_matches_polynomial() {
        let pcm = PcmModel::default();
        // ĝ = 0.5: 0.26348 + 1.9650*0.5 - 1.1731*0.25
        let expect = 0.26348 + 1.9650 * 0.5 - 1.1731 * 0.25;
        assert!((pcm.prog_sigma(12.5) - expect).abs() < 1e-5);
    }

    #[test]
    fn prog_sigma_never_negative() {
        let pcm = PcmModel {
            prog_coeffs: [-5.0, 0.0, 0.0],
            ..PcmModel::default()
        };
        assert_eq!(pcm.prog_sigma(10.0), 0.0);
    }

    #[test]
    fn programming_error_statistics_match_sigma() {
        let pcm = PcmModel::default();
        let mut rng = Rng::seed_from(2);
        let target = 15.0f32;
        let n = 20_000;
        let mut sum2 = 0.0f64;
        for _ in 0..n {
            let cell = pcm.program_single_shot(target, &mut rng);
            sum2 += ((cell.g_prog - target) as f64).powi(2);
        }
        let measured = (sum2 / n as f64).sqrt();
        let expect = pcm.prog_sigma(target) as f64;
        assert!(
            (measured / expect - 1.0).abs() < 0.05,
            "measured {measured} expect {expect}"
        );
    }

    #[test]
    fn programming_clamps_to_range() {
        let pcm = PcmModel::default();
        let mut rng = Rng::seed_from(3);
        for _ in 0..1000 {
            let c = pcm.program_single_shot(25.0, &mut rng);
            assert!((0.0..=25.0).contains(&c.g_prog));
            let c0 = pcm.program_single_shot(-4.0, &mut rng);
            assert_eq!(c0.g_target, 0.0);
            assert!(c0.g_prog >= 0.0);
        }
    }

    #[test]
    fn write_verify_reduces_error() {
        let pcm = PcmModel::default();
        let mut rng = Rng::seed_from(4);
        let target = 10.0f32;
        let n = 4_000;
        let rms = |iters: u32, rng: &mut Rng| -> f64 {
            let mut sum2 = 0.0f64;
            for _ in 0..n {
                let out = pcm.program_with_verify(target, iters, rng);
                sum2 += (out.achieved_error as f64).powi(2);
            }
            (sum2 / n as f64).sqrt()
        };
        let single = rms(1, &mut rng);
        let verified = rms(8, &mut rng);
        assert!(
            verified < single * 0.6,
            "single {single} verified {verified}"
        );
    }

    #[test]
    fn write_verify_stops_early_when_converged() {
        let pcm = PcmModel {
            prog_noise_scale: 0.0, // perfect writes
            ..PcmModel::default()
        };
        let mut rng = Rng::seed_from(5);
        let out = pcm.program_with_verify(10.0, 20, &mut rng);
        assert_eq!(out.iterations, 1);
        assert_eq!(out.achieved_error, 0.0);
    }

    #[test]
    fn drift_reduces_conductance_over_time() {
        let pcm = PcmModel::default();
        let mut rng = Rng::seed_from(6);
        let cell = pcm.program_single_shot(20.0, &mut rng);
        let g_t0 = cell.drifted(&pcm, 20.0);
        let g_hour = cell.drifted(&pcm, 3600.0);
        let g_day = cell.drifted(&pcm, 86_400.0);
        assert!(g_t0 >= g_hour);
        assert!(g_hour > g_day);
        assert!(g_day > 0.0);
    }

    #[test]
    fn drift_factor_is_one_at_tc_and_monotone() {
        let d = DriftModel::default();
        assert_eq!(d.factor(0.06, 20.0), 1.0);
        assert_eq!(d.factor(0.06, 1.0), 1.0); // clamped below t_c
        assert!(d.factor(0.06, 200.0) < 1.0);
        assert!(d.factor(0.0, 1e6) == 1.0); // ν = 0: no drift
    }

    #[test]
    fn drift_exponent_larger_for_low_conductance() {
        let d = DriftModel::default();
        let mut rng = Rng::seed_from(7);
        let avg_nu = |g_rel: f32, rng: &mut Rng| -> f64 {
            (0..5_000)
                .map(|_| d.sample_nu(g_rel, rng) as f64)
                .sum::<f64>()
                / 5_000.0
        };
        let low = avg_nu(0.05, &mut rng);
        let high = avg_nu(0.9, &mut rng);
        assert!(low > high, "low-g ν {low} should exceed high-g ν {high}");
    }

    #[test]
    fn read_noise_grows_with_time() {
        let rn = ReadNoiseModel::default();
        let s_short = rn.sigma(20.0, 0.8, 1e-3);
        let s_long = rn.sigma(20.0, 0.8, 3600.0);
        assert!(s_long > s_short);
        assert_eq!(rn.sigma(0.0, 0.0, 1.0), 0.0);
    }

    #[test]
    fn read_includes_drift_and_noise() {
        let pcm = PcmModel::default();
        let mut rng = Rng::seed_from(8);
        let cell = pcm.program_single_shot(20.0, &mut rng);
        let n = 10_000;
        let mean_read: f64 = (0..n)
            .map(|_| cell.read(&pcm, 3600.0, &mut rng) as f64)
            .sum::<f64>()
            / n as f64;
        let expect = cell.drifted(&pcm, 3600.0) as f64;
        assert!(
            (mean_read - expect).abs() < 0.1,
            "mean {mean_read} expect {expect}"
        );
    }

    #[test]
    fn reads_never_negative() {
        let pcm = PcmModel::default();
        let mut rng = Rng::seed_from(9);
        let cell = pcm.program_single_shot(0.5, &mut rng);
        for _ in 0..1000 {
            assert!(cell.read(&pcm, 10.0, &mut rng) >= 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "at least one iteration")]
    fn zero_iterations_panics() {
        let pcm = PcmModel::default();
        pcm.program_with_verify(5.0, 0, &mut Rng::seed_from(0));
    }
}
