//! Multi-cell (significance-sliced) weight storage.
//!
//! Single NVM cells cap the storable weight precision: programming noise on
//! PCM, or discrete levels on many ReRAM flavours. The standard remedy —
//! and the paper's §VII note that devices "can achieve over 8-bit weight
//! precision by using multiple memory cells" — is to spread one weight over
//! several cell pairs with decreasing significance and *closed-loop
//! correction*:
//!
//! 1. program slice 0 towards `w`, then read back what actually landed;
//! 2. program slice 1 towards `radix ×` the residual error, read back;
//! 3. … repeat; the effective weight is `Σ_i read_i / radix^i`.
//!
//! Because each slice corrects the measured error of its predecessors, the
//! effective programming error shrinks geometrically (`≈ σ / radix^(S-1)`)
//! until the last slice's own noise floor dominates.

use crate::crossbar::{program_matrix, read_matrix, read_matrix_mean, ProgrammedMatrix};
use crate::NvmModel;
use nora_tensor::rng::Rng;
use nora_tensor::Matrix;

/// A weight matrix stored across multiple significance slices.
#[derive(Debug, Clone)]
pub struct SlicedMatrix {
    slices: Vec<ProgrammedMatrix>,
    radix: f32,
}

impl SlicedMatrix {
    /// Number of slices.
    pub fn slice_count(&self) -> usize {
        self.slices.len()
    }

    /// Significance radix between consecutive slices.
    pub fn radix(&self) -> f32 {
        self.radix
    }
}

/// Programs `weights` (normalised to `[-1, 1]`) across `slices` cell pairs
/// with closed-loop residual correction.
///
/// # Panics
///
/// Panics if `slices == 0` or `radix <= 1`.
pub fn program_matrix_sliced(
    weights: &Matrix,
    model: &dyn NvmModel,
    slices: u32,
    radix: f32,
    rng: &mut Rng,
) -> SlicedMatrix {
    assert!(slices >= 1, "need at least one slice");
    assert!(radix > 1.0, "radix must exceed 1");
    let mut out = Vec::with_capacity(slices as usize);
    // Residual to be stored by the next slice, in that slice's own
    // (already radix-scaled) units.
    let mut target = weights.clone();
    for _ in 0..slices {
        let clamped = target.map(|v| v.clamp(-1.0, 1.0));
        let programmed = program_matrix(&clamped, model, rng);
        // Closed loop: read what actually landed (deterministic mean read at
        // the verification time) and push the error to the next slice.
        let achieved = read_matrix_mean(&programmed, model, 0.0);
        let mut residual = target;
        residual.add_assign(&achieved.scale(-1.0));
        residual.scale_assign(radix);
        target = residual;
        out.push(programmed);
    }
    SlicedMatrix {
        slices: out,
        radix,
    }
}

/// Reads a sliced array back at `t_seconds`, with stochastic read effects.
pub fn read_sliced(
    sliced: &SlicedMatrix,
    model: &dyn NvmModel,
    t_seconds: f64,
    rng: &mut Rng,
) -> Matrix {
    combine(sliced, |s| read_matrix(s, model, t_seconds, rng))
}

/// Deterministic (mean) read of a sliced array at `t_seconds`.
pub fn read_sliced_mean(
    sliced: &SlicedMatrix,
    model: &dyn NvmModel,
    t_seconds: f64,
) -> Matrix {
    combine(sliced, |s| read_matrix_mean(s, model, t_seconds))
}

fn combine(
    sliced: &SlicedMatrix,
    mut read_one: impl FnMut(&ProgrammedMatrix) -> Matrix,
) -> Matrix {
    let mut total: Option<Matrix> = None;
    let mut scale = 1.0f32;
    for slice in &sliced.slices {
        let part = read_one(slice).scale(scale);
        total = Some(match total {
            None => part,
            Some(mut acc) => {
                acc.add_assign(&part);
                acc
            }
        });
        scale /= sliced.radix;
    }
    total.expect("sliced matrix has at least one slice")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PcmModel;
    use nora_tensor::stats;

    fn weights(seed: u64) -> Matrix {
        let mut rng = Rng::seed_from(seed);
        Matrix::random_uniform(24, 24, -1.0, 1.0, &mut rng)
    }

    fn prog_rmse(slices: u32, seed: u64) -> f64 {
        let w = weights(seed);
        let pcm = PcmModel::default();
        let mut rng = Rng::seed_from(seed ^ 0x51);
        let sliced = program_matrix_sliced(&w, &pcm, slices, 8.0, &mut rng);
        let back = read_sliced_mean(&sliced, &pcm, 0.0);
        stats::rmse(w.as_slice(), back.as_slice())
    }

    #[test]
    fn more_slices_reduce_programming_error_geometrically() {
        let one = prog_rmse(1, 3);
        let two = prog_rmse(2, 3);
        let three = prog_rmse(3, 3);
        assert!(two < one / 3.0, "1 slice {one} vs 2 slices {two}");
        assert!(three < two, "2 slices {two} vs 3 slices {three}");
    }

    #[test]
    fn single_slice_matches_plain_programming_statistics() {
        // With one slice the machinery reduces to plain program/read.
        let rmse = prog_rmse(1, 7);
        // PCM σ ≈ 1 µS on 25 µS full scale → ~0.04 normalised.
        assert!((0.01..0.1).contains(&rmse), "rmse {rmse}");
    }

    #[test]
    fn stochastic_read_centres_on_mean_read() {
        let w = weights(11);
        let pcm = PcmModel::default();
        let mut rng = Rng::seed_from(12);
        let sliced = program_matrix_sliced(&w, &pcm, 2, 8.0, &mut rng);
        let mean = read_sliced_mean(&sliced, &pcm, 100.0);
        let mut acc = Matrix::zeros(24, 24);
        let n = 200;
        for _ in 0..n {
            acc.add_assign(&read_sliced(&sliced, &pcm, 100.0, &mut rng));
        }
        acc.scale_assign(1.0 / n as f32);
        assert!(acc.mse(&mean) < 1e-4, "mse {}", acc.mse(&mean));
    }

    #[test]
    fn drift_still_applies_to_sliced_weights() {
        let w = weights(13);
        let pcm = PcmModel::default();
        let mut rng = Rng::seed_from(14);
        let sliced = program_matrix_sliced(&w, &pcm, 2, 8.0, &mut rng);
        let fresh = read_sliced_mean(&sliced, &pcm, 20.0);
        let day = read_sliced_mean(&sliced, &pcm, 86_400.0);
        assert!(day.frobenius_norm() < fresh.frobenius_norm());
    }

    #[test]
    fn accessors() {
        let w = weights(15);
        let pcm = PcmModel::default();
        let mut rng = Rng::seed_from(16);
        let sliced = program_matrix_sliced(&w, &pcm, 3, 4.0, &mut rng);
        assert_eq!(sliced.slice_count(), 3);
        assert_eq!(sliced.radix(), 4.0);
    }

    #[test]
    #[should_panic(expected = "radix must exceed 1")]
    fn bad_radix_panics() {
        let pcm = PcmModel::default();
        program_matrix_sliced(&weights(0), &pcm, 2, 1.0, &mut Rng::seed_from(0));
    }
}
