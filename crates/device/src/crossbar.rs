//! Array-level programming and read-back.
//!
//! `nora-cim` tiles and the drift experiments need device effects applied to
//! whole weight blocks at once. [`program_matrix`] programs a matrix of
//! *normalised* weights (`|w| ≤ 1`, i.e. already divided by the per-column
//! `γ_j`) into differential pairs, and [`read_matrix`] reads the array back
//! at a given time after programming, returning the effective normalised
//! weight matrix including programming error, drift, and 1/f read noise.

use crate::pair::ConductancePair;
use crate::pcm::ProgrammedCell;
use crate::NvmModel;
use nora_tensor::rng::Rng;
use nora_tensor::Matrix;

/// A weight matrix programmed onto differential NVM cell pairs.
///
/// Holds one [`ProgrammedCell`] per pair side so that drift and read noise
/// can be re-evaluated at arbitrary times without re-programming.
#[derive(Debug, Clone)]
pub struct ProgrammedMatrix {
    rows: usize,
    cols: usize,
    plus: Vec<ProgrammedCell>,
    minus: Vec<ProgrammedCell>,
    g_max: f32,
}

impl ProgrammedMatrix {
    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Full-scale conductance used at programming time.
    pub fn g_max(&self) -> f32 {
        self.g_max
    }

    /// Total programmed conductance per column (µS) — the quantity that
    /// drives IR-drop.
    pub fn col_total_conductance(&self) -> Vec<f32> {
        let mut totals = vec![0.0f32; self.cols];
        for (i, (p, m)) in self.plus.iter().zip(&self.minus).enumerate() {
            totals[i % self.cols] += p.g_prog + m.g_prog;
        }
        totals
    }
}

/// Programs normalised weights into an NVM array through `model`.
///
/// Weights must already be normalised to `[-1, 1]`; values outside clamp
/// (see [`ConductancePair::encode`]).
pub fn program_matrix(
    weights: &Matrix,
    model: &dyn NvmModel,
    rng: &mut Rng,
) -> ProgrammedMatrix {
    program_matrix_verified(weights, model, 1, rng)
}

/// Like [`program_matrix`] with up to `verify_iters` write–verify
/// iterations per cell (1 = single-shot).
///
/// # Panics
///
/// Panics if `verify_iters == 0`.
pub fn program_matrix_verified(
    weights: &Matrix,
    model: &dyn NvmModel,
    verify_iters: u32,
    rng: &mut Rng,
) -> ProgrammedMatrix {
    assert!(verify_iters >= 1, "need at least one programming iteration");
    let g_max = model.g_max();
    let n = weights.rows() * weights.cols();
    let mut plus = Vec::with_capacity(n);
    let mut minus = Vec::with_capacity(n);
    for &w in weights.as_slice() {
        let pair = ConductancePair::encode(w, g_max);
        if verify_iters == 1 {
            plus.push(model.program(pair.g_plus, rng));
            minus.push(model.program(pair.g_minus, rng));
        } else {
            plus.push(model.program_verified(pair.g_plus, verify_iters, rng));
            minus.push(model.program_verified(pair.g_minus, verify_iters, rng));
        }
    }
    ProgrammedMatrix {
        rows: weights.rows(),
        cols: weights.cols(),
        plus,
        minus,
        g_max,
    }
}

/// Like [`program_matrix_verified`], but weights that are exactly `0.0`
/// are left genuinely *unprogrammed*: both pair sides become
/// [`ProgrammedCell::unprogrammed`] without consuming any RNG draws, so
/// pruned N:M cells carry no programming error, no drift, and no read
/// noise — the physical realisation of structured sparsity on an analog
/// array.
///
/// Note the RNG stream consequence: skipping draws shifts the noise
/// sequence of every *later* cell relative to [`program_matrix_verified`],
/// so the two functions only agree bitwise on matrices with no exact
/// zeros. Callers opt in via `TileConfig::prune_zero_cells`.
///
/// # Panics
///
/// Panics if `verify_iters == 0`.
pub fn program_matrix_pruned(
    weights: &Matrix,
    model: &dyn NvmModel,
    verify_iters: u32,
    rng: &mut Rng,
) -> ProgrammedMatrix {
    assert!(verify_iters >= 1, "need at least one programming iteration");
    let g_max = model.g_max();
    let n = weights.rows() * weights.cols();
    let mut plus = Vec::with_capacity(n);
    let mut minus = Vec::with_capacity(n);
    for &w in weights.as_slice() {
        if w == 0.0 {
            plus.push(ProgrammedCell::unprogrammed());
            minus.push(ProgrammedCell::unprogrammed());
            continue;
        }
        let pair = ConductancePair::encode(w, g_max);
        if verify_iters == 1 {
            plus.push(model.program(pair.g_plus, rng));
            minus.push(model.program(pair.g_minus, rng));
        } else {
            plus.push(model.program_verified(pair.g_plus, verify_iters, rng));
            minus.push(model.program_verified(pair.g_minus, verify_iters, rng));
        }
    }
    ProgrammedMatrix {
        rows: weights.rows(),
        cols: weights.cols(),
        plus,
        minus,
        g_max,
    }
}

/// Reads a programmed array back `t_seconds` after programming.
///
/// Returns the effective normalised weight matrix
/// `(g⁺(t) − g⁻(t)) / g_max`, including programming error, drift, and
/// accumulated 1/f read noise.
pub fn read_matrix(
    programmed: &ProgrammedMatrix,
    model: &dyn NvmModel,
    t_seconds: f64,
    rng: &mut Rng,
) -> Matrix {
    let mut out = Matrix::zeros(programmed.rows, programmed.cols);
    for (i, v) in out.as_mut_slice().iter_mut().enumerate() {
        let gp = model.read_cell(&programmed.plus[i], t_seconds, rng);
        let gm = model.read_cell(&programmed.minus[i], t_seconds, rng);
        *v = (gp - gm) / programmed.g_max;
    }
    out
}

/// Deterministic counterpart of [`read_matrix`]: the *expected* normalised
/// weights at `t_seconds` (drift applied, stochastic read noise excluded).
///
/// Tiles use this to establish their reference weights; cycle-by-cycle read
/// noise is injected separately per MVM.
pub fn read_matrix_mean(
    programmed: &ProgrammedMatrix,
    model: &dyn NvmModel,
    t_seconds: f64,
) -> Matrix {
    let mut out = Matrix::zeros(programmed.rows, programmed.cols);
    for (i, v) in out.as_mut_slice().iter_mut().enumerate() {
        let gp = model.read_mean(&programmed.plus[i], t_seconds);
        let gm = model.read_mean(&programmed.minus[i], t_seconds);
        *v = (gp - gm) / programmed.g_max;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PcmModel, ReramModel};
    use nora_tensor::stats;

    fn weight_block(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut rng = Rng::seed_from(seed);
        Matrix::random_uniform(rows, cols, -1.0, 1.0, &mut rng)
    }

    #[test]
    fn program_read_round_trip_is_close() {
        let w = weight_block(16, 16, 1);
        let pcm = PcmModel::default();
        let mut rng = Rng::seed_from(2);
        let prog = program_matrix(&w, &pcm, &mut rng);
        let back = read_matrix(&prog, &pcm, 20.0, &mut rng);
        let rmse = stats::rmse(w.as_slice(), back.as_slice());
        // Programming noise σ ≈ 1 µS on g_max = 25 µS → ~0.04 normalised.
        assert!(rmse < 0.08, "rmse {rmse}");
        assert!(rmse > 0.005, "suspiciously perfect rmse {rmse}");
    }

    #[test]
    fn drift_shrinks_weights_over_time() {
        let w = weight_block(24, 24, 3);
        let pcm = PcmModel::default();
        let mut rng = Rng::seed_from(4);
        let prog = program_matrix(&w, &pcm, &mut rng);
        let fresh = read_matrix(&prog, &pcm, 20.0, &mut rng);
        let day = read_matrix(&prog, &pcm, 86_400.0, &mut rng);
        let norm_fresh = fresh.frobenius_norm();
        let norm_day = day.frobenius_norm();
        assert!(
            norm_day < norm_fresh,
            "day {norm_day} should be below fresh {norm_fresh}"
        );
    }

    #[test]
    fn reram_read_is_time_invariant_in_expectation() {
        let w = weight_block(8, 8, 5);
        let reram = ReramModel {
            read_sigma_rel: 0.0,
            ..ReramModel::default()
        };
        let mut rng = Rng::seed_from(6);
        let prog = program_matrix(&w, &reram, &mut rng);
        let a = read_matrix(&prog, &reram, 0.0, &mut rng);
        let b = read_matrix(&prog, &reram, 1e6, &mut rng);
        assert_eq!(a, b);
    }

    #[test]
    fn col_total_conductance_reflects_weight_mass() {
        let mut w = Matrix::zeros(4, 2);
        w[(0, 1)] = 1.0;
        w[(1, 1)] = -1.0;
        let pcm = PcmModel {
            prog_noise_scale: 0.0,
            ..PcmModel::default()
        };
        let mut rng = Rng::seed_from(7);
        let prog = program_matrix(&w, &pcm, &mut rng);
        let totals = prog.col_total_conductance();
        assert_eq!(totals[0], 0.0);
        assert!((totals[1] - 50.0).abs() < 1e-4); // two cells at g_max = 25
    }

    #[test]
    fn read_matrix_mean_is_deterministic_and_centers_reads() {
        let w = weight_block(12, 12, 10);
        let pcm = PcmModel::default();
        let mut rng = Rng::seed_from(11);
        let prog = program_matrix(&w, &pcm, &mut rng);
        let mean_a = read_matrix_mean(&prog, &pcm, 3600.0);
        let mean_b = read_matrix_mean(&prog, &pcm, 3600.0);
        assert_eq!(mean_a, mean_b);
        // Average many stochastic reads: should approach the mean read.
        let mut acc = Matrix::zeros(12, 12);
        let n = 400;
        for _ in 0..n {
            acc.add_assign(&read_matrix(&prog, &pcm, 3600.0, &mut rng));
        }
        acc.scale_assign(1.0 / n as f32);
        assert!(acc.mse(&mean_a) < 1e-4, "mse {}", acc.mse(&mean_a));
    }

    #[test]
    fn shapes_preserved() {
        let w = weight_block(5, 9, 8);
        let pcm = PcmModel::default();
        let mut rng = Rng::seed_from(9);
        let prog = program_matrix(&w, &pcm, &mut rng);
        assert_eq!((prog.rows(), prog.cols()), (5, 9));
        let back = read_matrix(&prog, &pcm, 20.0, &mut rng);
        assert_eq!(back.shape(), (5, 9));
    }

    /// Pruned programming: exact-zero weights become unprogrammed cells
    /// that read back exactly 0 at every time, consume no RNG draws, and
    /// contribute no column conductance; nonzero weights still program
    /// both pair sides through the full device law.
    #[test]
    fn pruned_zero_weights_stay_exactly_zero() {
        let mut w = weight_block(8, 8, 20);
        // 2:4-style mask: zero half of each group of four rows.
        for k in [0usize, 1, 4, 5] {
            w.row_mut(k).fill(0.0);
        }
        let pcm = PcmModel::default();
        let mut rng = Rng::seed_from(21);
        let prog = program_matrix_pruned(&w, &pcm, 1, &mut rng);
        for t in [20.0, 3600.0, 1e6] {
            let back = read_matrix(&prog, &pcm, t, &mut rng);
            for k in [0usize, 1, 4, 5] {
                assert!(
                    back.row(k).iter().all(|&v| v == 0.0),
                    "pruned row {k} drifted off zero at t={t}"
                );
            }
        }
        // Unpruned rows still carry programming noise.
        let back = read_matrix(&prog, &pcm, 20.0, &mut rng);
        assert!(back.row(2).iter().zip(w.row(2)).any(|(&b, &o)| b != o));
        // Pruned cells add nothing to the IR-drop-driving column totals.
        let mut dense_rows = w.clone();
        for k in [0usize, 1, 4, 5] {
            dense_rows.row_mut(k).fill(0.0);
        }
        let noiseless = PcmModel {
            prog_noise_scale: 0.0,
            ..PcmModel::default()
        };
        let p_pruned = program_matrix_pruned(&w, &noiseless, 1, &mut Rng::seed_from(1));
        let p_zeroed = program_matrix(&dense_rows, &noiseless, &mut Rng::seed_from(1));
        assert_eq!(
            p_pruned.col_total_conductance(),
            p_zeroed.col_total_conductance()
        );
    }

    /// With no exact zeros in the block, pruned and plain programming are
    /// bit-identical (same draws in the same order).
    #[test]
    fn pruned_programming_matches_plain_on_dense_blocks() {
        let w = weight_block(6, 6, 22).map(|v| if v == 0.0 { 0.5 } else { v });
        let pcm = PcmModel::default();
        let plain = program_matrix_verified(&w, &pcm, 2, &mut Rng::seed_from(23));
        let pruned = program_matrix_pruned(&w, &pcm, 2, &mut Rng::seed_from(23));
        let a = read_matrix_mean(&plain, &pcm, 20.0);
        let b = read_matrix_mean(&pruned, &pcm, 20.0);
        assert_eq!(a, b);
    }

    /// The drift checkpoint/restore contract: programmed cell state is a
    /// durable checkpoint that reads never mutate. A cloned
    /// `ProgrammedMatrix` re-read at any sequence of times (the online
    /// serving path) is bit-identical to reading the original (the offline
    /// study path) under the same RNG — and the checkpoint survives both.
    #[test]
    fn programmed_state_is_a_reusable_drift_checkpoint() {
        let w = weight_block(10, 10, 14);
        let pcm = PcmModel::default();
        let mut rng = Rng::seed_from(15);
        let original = program_matrix(&w, &pcm, &mut rng);
        let checkpoint = original.clone();
        for t in [20.0, 3600.0, 1e6] {
            let a = read_matrix(&original, &pcm, t, &mut Rng::seed_from(16));
            let b = read_matrix(&checkpoint, &pcm, t, &mut Rng::seed_from(16));
            assert_eq!(a, b, "checkpoint diverged at t={t}");
        }
        // Reads at a late time do not disturb the programmed state: an
        // early read afterwards still matches a fresh checkpoint's.
        let early = read_matrix(&original, &pcm, 20.0, &mut Rng::seed_from(17));
        let fresh = read_matrix(&checkpoint, &pcm, 20.0, &mut Rng::seed_from(17));
        assert_eq!(early, fresh, "read-back disturbed programmed state");
    }
}
