//! Autoregressive text generation on digital or analog deployments.
//!
//! NORA targets *inference*: the ultimate consumer of an analog-deployed LM
//! is a token-by-token decode loop. This module provides that loop for both
//! the FP32 digital model and [`crate::deploy::AnalogTransformerLm`], with
//! greedy and temperature sampling.

use crate::deploy::AnalogTransformerLm;
use crate::model::TransformerLm;
use nora_tensor::rng::Rng;
use nora_tensor::Matrix;

/// Token-sampling strategy for the decode loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Sampling {
    /// Always pick the argmax token.
    Greedy,
    /// Softmax sampling at the given temperature (must be positive).
    Temperature(f32),
}

fn sample_from_logits(last_logits: &[f32], sampling: Sampling, rng: &mut Rng) -> usize {
    match sampling {
        Sampling::Greedy => last_logits
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0),
        Sampling::Temperature(t) => {
            assert!(t > 0.0, "temperature must be positive");
            let scaled = Matrix::from_vec(
                1,
                last_logits.len(),
                last_logits.iter().map(|&v| v / t).collect(),
            );
            let probs = crate::softmax::softmax_rows(&scaled);
            rng.weighted_index(probs.row(0))
        }
    }
}

/// Generates `new_tokens` continuation tokens from `prompt` with the FP32
/// digital model.
///
/// The context is truncated to the model's `max_seq` as it grows.
///
/// # Panics
///
/// Panics if `prompt` is empty.
pub fn generate_digital(
    model: &TransformerLm,
    prompt: &[usize],
    new_tokens: usize,
    sampling: Sampling,
    rng: &mut Rng,
) -> Vec<usize> {
    assert!(!prompt.is_empty(), "empty prompt");
    let max_seq = model.config().max_seq;
    let mut tokens = prompt.to_vec();
    for _ in 0..new_tokens {
        let start = tokens.len().saturating_sub(max_seq);
        let logits = model.forward(&tokens[start..]);
        let next = sample_from_logits(logits.row(logits.rows() - 1), sampling, rng);
        tokens.push(next);
    }
    tokens
}

/// Generates `new_tokens` continuation tokens from `prompt` on an analog
/// deployment.
///
/// # Panics
///
/// Panics if `prompt` is empty.
pub fn generate_analog(
    analog: &mut AnalogTransformerLm,
    prompt: &[usize],
    new_tokens: usize,
    sampling: Sampling,
    rng: &mut Rng,
) -> Vec<usize> {
    assert!(!prompt.is_empty(), "empty prompt");
    let max_seq = analog.digital_model().config().max_seq;
    let mut tokens = prompt.to_vec();
    for _ in 0..new_tokens {
        let start = tokens.len().saturating_sub(max_seq);
        let logits = analog.forward(&tokens[start..]);
        let next = sample_from_logits(logits.row(logits.rows() - 1), sampling, rng);
        tokens.push(next);
    }
    tokens
}

/// KV-cached greedy/temperature generation with the FP32 digital model:
/// `O(L)` per token instead of `O(L²)`. The prompt plus generated text must
/// fit in the model's `max_seq`.
///
/// # Panics
///
/// Panics if `prompt` is empty or `prompt.len() + new_tokens` exceeds
/// `max_seq`.
pub fn generate_digital_cached(
    model: &TransformerLm,
    prompt: &[usize],
    new_tokens: usize,
    sampling: Sampling,
    rng: &mut Rng,
) -> Vec<usize> {
    assert!(!prompt.is_empty(), "empty prompt");
    assert!(
        prompt.len() + new_tokens <= model.config().max_seq,
        "cached generation cannot exceed max_seq"
    );
    let mut cache = crate::model::KvCache::new(model);
    let mut tokens = prompt.to_vec();
    let mut logits = Vec::new();
    for &t in prompt {
        logits = model.decode_step(t, &mut cache);
    }
    for _ in 0..new_tokens {
        let next = sample_from_logits(&logits, sampling, rng);
        tokens.push(next);
        if cache.has_capacity() {
            logits = model.decode_step(next, &mut cache);
        }
    }
    tokens
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deploy::SmoothingMap;
    use crate::model::ModelConfig;
    use nora_cim::TileConfig;

    fn model() -> TransformerLm {
        TransformerLm::new(ModelConfig::tiny_for_tests(), &mut Rng::seed_from(1))
    }

    #[test]
    fn greedy_generation_extends_prompt() {
        let m = model();
        let mut rng = Rng::seed_from(2);
        let out = generate_digital(&m, &[1, 2, 3], 5, Sampling::Greedy, &mut rng);
        assert_eq!(out.len(), 8);
        assert_eq!(&out[..3], &[1, 2, 3]);
        assert!(out.iter().all(|&t| t < 16));
    }

    #[test]
    fn greedy_is_deterministic_temperature_is_not_degenerate() {
        let m = model();
        let a = generate_digital(&m, &[5], 10, Sampling::Greedy, &mut Rng::seed_from(3));
        let b = generate_digital(&m, &[5], 10, Sampling::Greedy, &mut Rng::seed_from(99));
        assert_eq!(a, b, "greedy must not depend on the rng");
        // High temperature should (with overwhelming probability) diverge
        // between seeds.
        let c = generate_digital(&m, &[5], 24, Sampling::Temperature(3.0), &mut Rng::seed_from(4));
        let d = generate_digital(&m, &[5], 24, Sampling::Temperature(3.0), &mut Rng::seed_from(5));
        assert_ne!(c, d);
    }

    #[test]
    fn analog_generation_on_ideal_tiles_matches_digital_greedy() {
        let m = model();
        let mut analog =
            AnalogTransformerLm::new(&m, TileConfig::ideal(), &SmoothingMap::new(), 6);
        let mut rng = Rng::seed_from(7);
        let dig = generate_digital(&m, &[2, 4], 8, Sampling::Greedy, &mut rng.clone());
        let ana = generate_analog(&mut analog, &[2, 4], 8, Sampling::Greedy, &mut rng);
        assert_eq!(dig, ana);
    }

    #[test]
    fn cached_generation_matches_uncached_greedy() {
        let m = model();
        let mut rng = Rng::seed_from(11);
        let full = generate_digital(&m, &[2, 7, 1], 9, Sampling::Greedy, &mut rng.clone());
        let cached =
            generate_digital_cached(&m, &[2, 7, 1], 9, Sampling::Greedy, &mut rng);
        assert_eq!(full, cached);
    }

    #[test]
    fn analog_decode_step_matches_analog_forward_on_ideal_tiles() {
        let m = model();
        let mut analog =
            AnalogTransformerLm::new(&m, TileConfig::ideal(), &SmoothingMap::new(), 12);
        let tokens = [4usize, 2, 8, 6];
        let full = analog.forward(&tokens);
        let mut cache = crate::model::KvCache::new(&m);
        let mut last = Vec::new();
        for &t in &tokens {
            last = analog.decode_step(t, &mut cache);
        }
        for (a, b) in last.iter().zip(full.row(tokens.len() - 1)) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    #[should_panic(expected = "cannot exceed max_seq")]
    fn cached_generation_rejects_overflow() {
        let m = model(); // max_seq 16
        generate_digital_cached(&m, &[1; 10], 10, Sampling::Greedy, &mut Rng::seed_from(0));
    }

    #[test]
    fn context_truncates_at_max_seq() {
        let m = model(); // max_seq 16
        let mut rng = Rng::seed_from(8);
        let out = generate_digital(&m, &[1], 40, Sampling::Greedy, &mut rng);
        assert_eq!(out.len(), 41);
    }

    #[test]
    #[should_panic(expected = "temperature must be positive")]
    fn zero_temperature_panics() {
        let m = model();
        generate_digital(&m, &[1], 1, Sampling::Temperature(0.0), &mut Rng::seed_from(0));
    }
}
