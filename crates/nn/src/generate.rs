//! Autoregressive text generation on digital or analog deployments.
//!
//! NORA targets *inference*: the ultimate consumer of an analog-deployed LM
//! is a token-by-token decode loop. This module provides that loop for both
//! the FP32 digital model and [`crate::deploy::AnalogTransformerLm`], with
//! greedy and temperature sampling.

use crate::deploy::AnalogTransformerLm;
use crate::model::TransformerLm;
use nora_tensor::rng::Rng;
use nora_tensor::Matrix;

/// Token-sampling strategy for the decode loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Sampling {
    /// Always pick the argmax token.
    Greedy,
    /// Softmax sampling at the given temperature (must be positive).
    Temperature(f32),
}

/// Samples the next token id from a logit row under `sampling`.
///
/// Greedy ignores `rng` entirely (ties break toward the lower id);
/// temperature sampling draws one index from the softmax of
/// `logits / t`. Shared by the decode loops here and by the serving
/// engine's per-request samplers.
pub fn sample_logits(last_logits: &[f32], sampling: Sampling, rng: &mut Rng) -> usize {
    match sampling {
        Sampling::Greedy => last_logits
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0),
        Sampling::Temperature(t) => {
            assert!(t > 0.0, "temperature must be positive");
            let scaled = Matrix::from_vec(
                1,
                last_logits.len(),
                last_logits.iter().map(|&v| v / t).collect(),
            );
            let probs = crate::softmax::softmax_rows(&scaled);
            rng.weighted_index(probs.row(0))
        }
    }
}

/// Generates `new_tokens` continuation tokens from `prompt` with the FP32
/// digital model.
///
/// The context is truncated to the model's `max_seq` as it grows.
///
/// # Panics
///
/// Panics if `prompt` is empty.
pub fn generate_digital(
    model: &TransformerLm,
    prompt: &[usize],
    new_tokens: usize,
    sampling: Sampling,
    rng: &mut Rng,
) -> Vec<usize> {
    assert!(!prompt.is_empty(), "empty prompt");
    let max_seq = model.config().max_seq;
    let mut tokens = prompt.to_vec();
    for _ in 0..new_tokens {
        let start = tokens.len().saturating_sub(max_seq);
        let logits = model.forward(&tokens[start..]);
        let next = sample_logits(logits.row(logits.rows() - 1), sampling, rng);
        tokens.push(next);
    }
    tokens
}

/// Generates `new_tokens` continuation tokens from `prompt` on an analog
/// deployment.
///
/// # Panics
///
/// Panics if `prompt` is empty.
pub fn generate_analog(
    analog: &mut AnalogTransformerLm,
    prompt: &[usize],
    new_tokens: usize,
    sampling: Sampling,
    rng: &mut Rng,
) -> Vec<usize> {
    assert!(!prompt.is_empty(), "empty prompt");
    let max_seq = analog.digital_model().config().max_seq;
    let mut tokens = prompt.to_vec();
    for _ in 0..new_tokens {
        let start = tokens.len().saturating_sub(max_seq);
        let logits = analog.forward(&tokens[start..]);
        let next = sample_logits(logits.row(logits.rows() - 1), sampling, rng);
        tokens.push(next);
    }
    tokens
}

/// KV-cached greedy/temperature generation with the FP32 digital model:
/// `O(L)` per token instead of `O(L²)` while the context fits the window.
///
/// Matches [`generate_digital`] exactly, including *past* `max_seq`: once
/// the context outgrows the window, each step rebases the cache — reset and
/// re-decode the last `max_seq − 1` tokens before decoding the newest — so
/// every token sees exactly the truncated context `generate_digital` would
/// forward. Rebasing costs `O(max_seq)` decode steps per token, the same
/// asymptotics as the uncached loop; pure ring eviction (just calling
/// [`TransformerLm::decode_step`] on a full cache) would stay `O(1)` but
/// keeps evicted-era positional phases and diverges from truncation.
///
/// # Panics
///
/// Panics if `prompt` is empty.
pub fn generate_digital_cached(
    model: &TransformerLm,
    prompt: &[usize],
    new_tokens: usize,
    sampling: Sampling,
    rng: &mut Rng,
) -> Vec<usize> {
    assert!(!prompt.is_empty(), "empty prompt");
    let window = model.config().max_seq;
    let mut cache = crate::model::KvCache::new(model);
    let mut tokens = prompt.to_vec();
    let mut logits = Vec::new();
    // Prefill with the last `window` prompt tokens — all generate_digital's
    // first forward would see.
    for &t in &tokens[tokens.len().saturating_sub(window)..] {
        logits = model.decode_step(t, &mut cache);
    }
    for _ in 0..new_tokens {
        let next = sample_logits(&logits, sampling, rng);
        tokens.push(next);
        if !cache.has_capacity() {
            // Window full: rebase onto the truncated context so `next`
            // decodes against exactly tokens[len-window..len-1].
            cache.reset();
            let len = tokens.len();
            for &t in &tokens[len - window..len - 1] {
                model.decode_step(t, &mut cache);
            }
        }
        logits = model.decode_step(next, &mut cache);
    }
    tokens
}

/// KV-cached generation on an analog deployment, with the same
/// sliding-window rebase semantics as [`generate_digital_cached`].
///
/// The cached K/V rows are the *analog* projections. On noisy tiles the
/// token stream is not expected to equal [`generate_analog`]'s (each path
/// consumes tile noise in a different order); on ideal tiles the two agree
/// under greedy decoding up to the usual decode-vs-forward float tolerance.
///
/// # Panics
///
/// Panics if `prompt` is empty.
pub fn generate_analog_cached(
    analog: &mut AnalogTransformerLm,
    prompt: &[usize],
    new_tokens: usize,
    sampling: Sampling,
    rng: &mut Rng,
) -> Vec<usize> {
    assert!(!prompt.is_empty(), "empty prompt");
    let window = analog.digital_model().config().max_seq;
    let mut cache = crate::model::KvCache::new(analog.digital_model());
    let mut tokens = prompt.to_vec();
    let mut logits = Vec::new();
    for &t in &tokens[tokens.len().saturating_sub(window)..] {
        logits = analog.decode_step(t, &mut cache);
    }
    for _ in 0..new_tokens {
        let next = sample_logits(&logits, sampling, rng);
        tokens.push(next);
        if !cache.has_capacity() {
            cache.reset();
            let len = tokens.len();
            for &t in &tokens[len - window..len - 1] {
                analog.decode_step(t, &mut cache);
            }
        }
        logits = analog.decode_step(next, &mut cache);
    }
    tokens
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deploy::SmoothingMap;
    use crate::model::ModelConfig;
    use nora_cim::TileConfig;

    fn model() -> TransformerLm {
        TransformerLm::new(ModelConfig::tiny_for_tests(), &mut Rng::seed_from(1))
    }

    #[test]
    fn greedy_generation_extends_prompt() {
        let m = model();
        let mut rng = Rng::seed_from(2);
        let out = generate_digital(&m, &[1, 2, 3], 5, Sampling::Greedy, &mut rng);
        assert_eq!(out.len(), 8);
        assert_eq!(&out[..3], &[1, 2, 3]);
        assert!(out.iter().all(|&t| t < 16));
    }

    #[test]
    fn greedy_is_deterministic_temperature_is_not_degenerate() {
        let m = model();
        let a = generate_digital(&m, &[5], 10, Sampling::Greedy, &mut Rng::seed_from(3));
        let b = generate_digital(&m, &[5], 10, Sampling::Greedy, &mut Rng::seed_from(99));
        assert_eq!(a, b, "greedy must not depend on the rng");
        // High temperature should (with overwhelming probability) diverge
        // between seeds.
        let c = generate_digital(&m, &[5], 24, Sampling::Temperature(3.0), &mut Rng::seed_from(4));
        let d = generate_digital(&m, &[5], 24, Sampling::Temperature(3.0), &mut Rng::seed_from(5));
        assert_ne!(c, d);
    }

    #[test]
    fn analog_generation_on_ideal_tiles_matches_digital_greedy() {
        let m = model();
        let mut analog =
            AnalogTransformerLm::new(&m, TileConfig::ideal(), &SmoothingMap::new(), 6);
        let mut rng = Rng::seed_from(7);
        let dig = generate_digital(&m, &[2, 4], 8, Sampling::Greedy, &mut rng.clone());
        let ana = generate_analog(&mut analog, &[2, 4], 8, Sampling::Greedy, &mut rng);
        assert_eq!(dig, ana);
    }

    #[test]
    fn cached_generation_matches_uncached_greedy() {
        let m = model();
        let mut rng = Rng::seed_from(11);
        let full = generate_digital(&m, &[2, 7, 1], 9, Sampling::Greedy, &mut rng.clone());
        let cached =
            generate_digital_cached(&m, &[2, 7, 1], 9, Sampling::Greedy, &mut rng);
        assert_eq!(full, cached);
    }

    #[test]
    fn analog_decode_step_matches_analog_forward_on_ideal_tiles() {
        let m = model();
        let mut analog =
            AnalogTransformerLm::new(&m, TileConfig::ideal(), &SmoothingMap::new(), 12);
        let tokens = [4usize, 2, 8, 6];
        let full = analog.forward(&tokens);
        let mut cache = crate::model::KvCache::new(&m);
        let mut last = Vec::new();
        for &t in &tokens {
            last = analog.decode_step(t, &mut cache);
        }
        for (a, b) in last.iter().zip(full.row(tokens.len() - 1)) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn cached_generation_slides_past_max_seq_matching_truncation() {
        // max_seq 16: prompt 10 + 30 new tokens runs well past the window.
        // The cached loop must keep matching generate_digital's truncation
        // semantics instead of panicking.
        let m = model();
        let mut rng = Rng::seed_from(13);
        let full = generate_digital(&m, &[1; 10], 30, Sampling::Greedy, &mut rng.clone());
        let cached = generate_digital_cached(&m, &[1; 10], 30, Sampling::Greedy, &mut rng);
        assert_eq!(full.len(), 40);
        assert_eq!(full, cached);
    }

    #[test]
    fn cached_generation_slides_with_long_prompt_and_temperature() {
        // Prompt longer than max_seq: prefill must truncate to the window,
        // and the shared rng must stay in lockstep under sampling.
        let m = model(); // max_seq 16
        let prompt: Vec<usize> = (0..24).map(|i| i % 16).collect();
        let mut rng = Rng::seed_from(14);
        let full =
            generate_digital(&m, &prompt, 12, Sampling::Temperature(1.3), &mut rng.clone());
        let cached =
            generate_digital_cached(&m, &prompt, 12, Sampling::Temperature(1.3), &mut rng);
        assert_eq!(full, cached);
    }

    #[test]
    fn analog_cached_generation_slides_on_ideal_tiles() {
        // Ideal tiles are deterministic, so the cached analog loop must
        // match the cached digital loop greedy-for-greedy past the window.
        let m = model();
        let mut analog =
            AnalogTransformerLm::new(&m, TileConfig::ideal(), &SmoothingMap::new(), 15);
        let mut rng = Rng::seed_from(16);
        let dig =
            generate_digital_cached(&m, &[3, 1, 4], 25, Sampling::Greedy, &mut rng.clone());
        let ana =
            generate_analog_cached(&mut analog, &[3, 1, 4], 25, Sampling::Greedy, &mut rng);
        assert_eq!(dig, ana);
    }

    #[test]
    fn context_truncates_at_max_seq() {
        let m = model(); // max_seq 16
        let mut rng = Rng::seed_from(8);
        let out = generate_digital(&m, &[1], 40, Sampling::Greedy, &mut rng);
        assert_eq!(out.len(), 41);
    }

    #[test]
    #[should_panic(expected = "temperature must be positive")]
    fn zero_temperature_panics() {
        let m = model();
        generate_digital(&m, &[1], 1, Sampling::Temperature(0.0), &mut Rng::seed_from(0));
    }
}
