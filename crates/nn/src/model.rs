//! The decoder-only transformer language model.

use crate::block::TransformerBlock;
use crate::embedding::Embedding;
use crate::layernorm::LayerNorm;
use crate::linear::DigitalLinear;
use crate::param::Param;
use crate::softmax::cross_entropy;
use nora_tensor::rng::Rng;
use nora_tensor::Matrix;

/// Which of the six analog-mappable linears of a block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LinearKind {
    /// Attention query projection.
    Q,
    /// Attention key projection.
    K,
    /// Attention value projection.
    V,
    /// Attention output projection.
    Out,
    /// FFN up-projection.
    Fc1,
    /// FFN down-projection.
    Fc2,
}

impl LinearKind {
    /// All six kinds, in forward order.
    pub const ALL: [LinearKind; 6] = [
        LinearKind::Q,
        LinearKind::K,
        LinearKind::V,
        LinearKind::Out,
        LinearKind::Fc1,
        LinearKind::Fc2,
    ];

    /// Short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            LinearKind::Q => "q",
            LinearKind::K => "k",
            LinearKind::V => "v",
            LinearKind::Out => "out",
            LinearKind::Fc1 => "fc1",
            LinearKind::Fc2 => "fc2",
        }
    }
}

/// Identifies one analog-mappable linear in the model: block index + kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LinearId {
    /// Block (layer) index.
    pub block: usize,
    /// Which linear within the block.
    pub kind: LinearKind,
}

impl LinearId {
    /// Convenience constructor.
    pub fn new(block: usize, kind: LinearKind) -> Self {
        Self { block, kind }
    }
}

/// Hyper-parameters of a [`TransformerLm`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelConfig {
    /// Vocabulary size.
    pub vocab: usize,
    /// Maximum sequence length.
    pub max_seq: usize,
    /// Model (embedding) dimension.
    pub d_model: usize,
    /// Number of attention heads (must divide `d_model`).
    pub heads: usize,
    /// FFN hidden width.
    pub d_ff: usize,
    /// Number of decoder blocks.
    pub layers: usize,
}

impl ModelConfig {
    /// A minimal config for fast unit tests.
    pub fn tiny_for_tests() -> Self {
        Self {
            vocab: 16,
            max_seq: 16,
            d_model: 16,
            heads: 2,
            d_ff: 32,
            layers: 1,
        }
    }

    /// Total parameter count of a model with this config.
    pub fn param_count(&self) -> usize {
        let d = self.d_model;
        let per_block = 4 * (d * d + d) + 2 * (d * self.d_ff) + self.d_ff + d + 4 * d;
        self.vocab * d + self.max_seq * d + self.layers * per_block + 2 * d + d * self.vocab
            + self.vocab
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.vocab < 2 {
            return Err("vocab must be at least 2".into());
        }
        if self.heads == 0 || !self.d_model.is_multiple_of(self.heads) {
            return Err("heads must divide d_model".into());
        }
        if self.max_seq == 0 || self.d_model == 0 || self.d_ff == 0 || self.layers == 0 {
            return Err("all dimensions must be positive".into());
        }
        Ok(())
    }
}

/// Per-block key/value cache for incremental (token-by-token) decoding.
///
/// Avoids re-running attention over the whole context at every generated
/// token: each [`TransformerLm::decode_step`] appends one projected K/V row
/// per block and attends only from the newest query.
///
/// Storage is a **fixed-capacity ring buffer**: the `capacity × d_model`
/// K/V matrices are allocated once at construction, appends are `O(1)`
/// row writes (no reallocation per token), and appending to a *full*
/// cache evicts the oldest position instead of panicking. Eviction keeps
/// each surviving row's original projection (including the positional
/// phase it was computed at — new tokens past capacity are embedded at
/// the final position); callers that need the exact truncation semantics
/// of [`crate::generate::generate_digital`] rebase via [`KvCache::reset`]
/// instead, as [`crate::generate::generate_digital_cached`] does.
#[derive(Debug, Clone)]
pub struct KvCache {
    /// `(keys, values)` per block, each `capacity × d_model` preallocated.
    blocks: Vec<(Matrix, Matrix)>,
    /// Completed (advanced) positions currently cached, `≤ capacity`.
    len: usize,
    /// Physical row of logical position 0.
    start: usize,
    /// Ring capacity (the sliding-window length), `≤ max_seq`.
    capacity: usize,
    /// Whether the current decode step has appended but not yet advanced.
    pending: bool,
    /// Total positions evicted by ring wrap-around since construction.
    evicted: u64,
}

impl KvCache {
    /// An empty cache for `model`, windowed at the model's `max_seq`.
    pub fn new(model: &TransformerLm) -> Self {
        Self::with_capacity(model, model.config().max_seq)
    }

    /// An empty cache holding at most `capacity` positions (a sliding
    /// window shorter than the model's `max_seq`).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero or exceeds the model's `max_seq`
    /// (positions past `max_seq` have no positional embedding).
    pub fn with_capacity(model: &TransformerLm, capacity: usize) -> Self {
        assert!(
            capacity >= 1 && capacity <= model.config().max_seq,
            "kv capacity must be in 1..=max_seq ({}), got {capacity}",
            model.config().max_seq
        );
        let d = model.config().d_model;
        Self {
            blocks: (0..model.config().layers)
                .map(|_| (Matrix::zeros(capacity, d), Matrix::zeros(capacity, d)))
                .collect(),
            len: 0,
            start: 0,
            capacity,
            pending: false,
            evicted: 0,
        }
    }

    /// Number of tokens currently cached.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Maximum number of cached positions (the sliding-window length).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Whether another token fits without evicting the oldest position.
    pub fn has_capacity(&self) -> bool {
        self.len < self.capacity
    }

    /// Total positions evicted by ring wrap-around since the last reset.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Clears the cache in place (storage is retained). Used to rebase a
    /// sliding window onto a fresh context.
    pub fn reset(&mut self) {
        self.len = 0;
        self.start = 0;
        self.pending = false;
        self.evicted = 0;
    }

    /// Position index (row of the positional-embedding table) at which the
    /// *next* appended token executes. Saturates at `capacity − 1` once the
    /// window is full: evicted history cannot shift the surviving rows'
    /// phases, so new tokens keep decoding at the final position.
    pub fn next_position(&self) -> usize {
        self.len.min(self.capacity - 1)
    }

    /// Ring view of one block's `(keys, values)` in logical (oldest-first)
    /// order, including a pending un-advanced append to that block.
    pub(crate) fn view(&self, b: usize) -> (KvView<'_>, KvView<'_>) {
        let (len, start) = if self.pending {
            if self.len == self.capacity {
                // The pending append overwrote the oldest row at `start`.
                (self.capacity, (self.start + 1) % self.capacity)
            } else {
                (self.len + 1, self.start)
            }
        } else {
            (self.len, self.start)
        };
        let (k, v) = &self.blocks[b];
        (KvView::new(k, start, len), KvView::new(v, start, len))
    }

    /// Marks one more position as cached (every block must have been
    /// appended exactly once since the last advance). On a full cache this
    /// rotates the ring, evicting the oldest position.
    pub(crate) fn advance(&mut self) {
        self.pending = false;
        if self.len < self.capacity {
            self.len += 1;
        } else {
            self.start = (self.start + 1) % self.capacity;
            self.evicted += 1;
        }
    }

    pub(crate) fn append(&mut self, block: usize, k: &[f32], v: &[f32]) {
        self.pending = true;
        // On a full ring `(start + len) % capacity == start`: the newest row
        // overwrites the oldest in place.
        let phys = (self.start + self.len) % self.capacity;
        let (kc, vc) = &mut self.blocks[block];
        kc.row_mut(phys).copy_from_slice(k);
        vc.row_mut(phys).copy_from_slice(v);
    }
}

/// Oldest-first view of the rows a [`KvCache`] block currently holds,
/// resolving the ring indirection (logical row `i` lives at physical row
/// `(start + i) % capacity`). Consumed by
/// [`crate::MultiHeadAttention::attend_one`].
#[derive(Debug, Clone, Copy)]
pub struct KvView<'a> {
    mat: &'a Matrix,
    start: usize,
    len: usize,
}

impl<'a> KvView<'a> {
    /// A view of the first `len` logical rows of `mat` starting at physical
    /// row `start` (wrapping).
    pub fn new(mat: &'a Matrix, start: usize, len: usize) -> Self {
        assert!(len <= mat.rows(), "view of {len} rows in {}", mat.rows());
        assert!(start < mat.rows().max(1), "start {start} out of ring");
        Self { mat, start, len }
    }

    /// A non-wrapping view of an entire matrix (logical == physical order).
    pub fn full(mat: &'a Matrix) -> Self {
        Self {
            mat,
            start: 0,
            len: mat.rows(),
        }
    }

    /// Number of logical rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Row width.
    pub fn cols(&self) -> usize {
        self.mat.cols()
    }

    /// Logical row `i` (oldest first).
    pub fn row(&self, i: usize) -> &'a [f32] {
        debug_assert!(i < self.len, "row {i} of {}", self.len);
        self.mat.row((self.start + i) % self.mat.rows())
    }
}

/// A decoder-only transformer language model with manual backprop.
///
/// Operates on one token sequence at a time (training loops accumulate
/// gradients over a mini-batch of sequences before stepping).
#[derive(Debug, Clone)]
pub struct TransformerLm {
    config: ModelConfig,
    /// Token + positional embeddings.
    pub embedding: Embedding,
    /// Decoder blocks.
    pub blocks: Vec<TransformerBlock>,
    /// Final LayerNorm before the head.
    pub final_ln: LayerNorm,
    /// LM head (`d_model → vocab`), kept digital at deployment.
    pub head: DigitalLinear,
    last_embed: Option<Matrix>,
}

impl TransformerLm {
    /// Creates a randomly initialised model.
    ///
    /// # Panics
    ///
    /// Panics if the config is invalid.
    pub fn new(config: ModelConfig, rng: &mut Rng) -> Self {
        config
            .validate()
            .unwrap_or_else(|e| panic!("invalid model config: {e}"));
        let blocks = (0..config.layers)
            .map(|_| TransformerBlock::new(config.d_model, config.heads, config.d_ff, rng))
            .collect();
        Self {
            embedding: Embedding::new(config.vocab, config.max_seq, config.d_model, rng),
            blocks,
            final_ln: LayerNorm::new(config.d_model),
            head: DigitalLinear::new(config.d_model, config.vocab, rng),
            config,
            last_embed: None,
        }
    }

    /// Hyper-parameters.
    pub fn config(&self) -> &ModelConfig {
        &self.config
    }

    /// Inference forward: logits `(seq × vocab)` for a token sequence.
    pub fn forward(&self, tokens: &[usize]) -> Matrix {
        let mut x = self.embedding.forward_inference(tokens);
        for block in &self.blocks {
            x = block.forward_inference(&x);
        }
        let x = self.final_ln.forward_inference(&x);
        self.head.forward(&x)
    }

    /// Inference forward that also reports the input of every
    /// analog-mappable linear to `observer` — the calibration hook used by
    /// NORA to collect per-channel activation maxima.
    pub fn forward_observed<F>(&self, tokens: &[usize], observer: &mut F) -> Matrix
    where
        F: FnMut(LinearId, &Matrix),
    {
        use crate::attention::AttnProj;
        let mut x = self.embedding.forward_inference(tokens);
        for (b, block) in self.blocks.iter().enumerate() {
            let ln1_out = block.ln1.forward_inference(&x);
            let attn_out = block.attn.forward_inference_with(&ln1_out, |proj, input| {
                let (kind, lin) = match proj {
                    AttnProj::Q => (LinearKind::Q, &block.attn.wq),
                    AttnProj::K => (LinearKind::K, &block.attn.wk),
                    AttnProj::V => (LinearKind::V, &block.attn.wv),
                    AttnProj::Out => (LinearKind::Out, &block.attn.wo),
                };
                observer(LinearId::new(b, kind), input);
                lin.forward(input)
            });
            let x1 = x.add(&attn_out);
            let ln2_out = block.ln2.forward_inference(&x1);
            observer(LinearId::new(b, LinearKind::Fc1), &ln2_out);
            let h = block.fc1.forward(&ln2_out).map(|v| v.max(0.0));
            observer(LinearId::new(b, LinearKind::Fc2), &h);
            x = x1.add(&block.fc2.forward(&h));
        }
        let x = self.final_ln.forward_inference(&x);
        self.head.forward(&x)
    }

    /// Borrow of one analog-mappable linear.
    pub fn linear(&self, id: LinearId) -> &DigitalLinear {
        let block = &self.blocks[id.block];
        match id.kind {
            LinearKind::Q => &block.attn.wq,
            LinearKind::K => &block.attn.wk,
            LinearKind::V => &block.attn.wv,
            LinearKind::Out => &block.attn.wo,
            LinearKind::Fc1 => &block.fc1,
            LinearKind::Fc2 => &block.fc2,
        }
    }

    /// Mutable borrow of one analog-mappable linear.
    pub fn linear_mut(&mut self, id: LinearId) -> &mut DigitalLinear {
        let block = &mut self.blocks[id.block];
        match id.kind {
            LinearKind::Q => &mut block.attn.wq,
            LinearKind::K => &mut block.attn.wk,
            LinearKind::V => &mut block.attn.wv,
            LinearKind::Out => &mut block.attn.wo,
            LinearKind::Fc1 => &mut block.fc1,
            LinearKind::Fc2 => &mut block.fc2,
        }
    }

    /// All analog-mappable linear ids of this model, in forward order.
    pub fn linear_ids(&self) -> Vec<LinearId> {
        let mut ids = Vec::with_capacity(self.blocks.len() * 6);
        for b in 0..self.blocks.len() {
            for kind in LinearKind::ALL {
                ids.push(LinearId::new(b, kind));
            }
        }
        ids
    }

    /// Training forward with caches: logits for one sequence.
    pub fn forward_train(&mut self, tokens: &[usize]) -> Matrix {
        let mut x = self.embedding.forward(tokens);
        for block in &mut self.blocks {
            x = block.forward(&x);
        }
        let x = self.final_ln.forward(&x);
        self.last_embed = Some(x.clone());
        self.head.forward(&x)
    }

    /// Computes next-token cross-entropy on one sequence and accumulates
    /// gradients. Returns the mean loss over the `len-1` predicted
    /// positions.
    ///
    /// # Panics
    ///
    /// Panics if the sequence has fewer than 2 tokens.
    pub fn loss_and_backward(&mut self, tokens: &[usize]) -> f64 {
        assert!(tokens.len() >= 2, "need at least 2 tokens for LM loss");
        let logits = self.forward_train(tokens);
        // Position t predicts token t+1.
        let pred = logits.submatrix(0, tokens.len() - 1, 0, self.config.vocab);
        let targets = &tokens[1..];
        let (loss, dpred) = cross_entropy(&pred, targets);
        // The last position has no target: zero grad there.
        let mut dlogits = Matrix::zeros(tokens.len(), self.config.vocab);
        dlogits.set_submatrix(0, 0, &dpred);

        let x_final = self.last_embed.take().expect("forward_train cache");
        let dx = self.head.backward(&x_final, &dlogits);
        let mut dx = self.final_ln.backward(&dx);
        for block in self.blocks.iter_mut().rev() {
            dx = block.backward(&dx);
        }
        self.embedding.backward(&dx);
        loss
    }

    /// Immutable view of every parameter, in the same stable traversal
    /// order as [`TransformerLm::params_mut`] (used by serialization).
    pub fn params(&self) -> Vec<&Param> {
        let mut out: Vec<&Param> = Vec::new();
        out.push(&self.embedding.tokens);
        out.push(&self.embedding.positions);
        for block in &self.blocks {
            out.push(&block.ln1.gain);
            out.push(&block.ln1.bias);
            out.push(&block.attn.wq.weight);
            out.push(&block.attn.wq.bias);
            out.push(&block.attn.wk.weight);
            out.push(&block.attn.wk.bias);
            out.push(&block.attn.wv.weight);
            out.push(&block.attn.wv.bias);
            out.push(&block.attn.wo.weight);
            out.push(&block.attn.wo.bias);
            out.push(&block.ln2.gain);
            out.push(&block.ln2.bias);
            out.push(&block.fc1.weight);
            out.push(&block.fc1.bias);
            out.push(&block.fc2.weight);
            out.push(&block.fc2.bias);
        }
        out.push(&self.final_ln.gain);
        out.push(&self.final_ln.bias);
        out.push(&self.head.weight);
        out.push(&self.head.bias);
        out
    }

    /// Mutable access to every parameter (for the optimizer).
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut out: Vec<&mut Param> = Vec::new();
        out.extend(self.embedding.params_mut());
        for block in &mut self.blocks {
            out.extend(block.params_mut());
        }
        out.extend(self.final_ln.params_mut());
        out.extend(self.head.params_mut());
        out
    }

    /// Clears all gradients.
    pub fn zero_grad(&mut self) {
        for p in self.params_mut() {
            p.zero_grad();
        }
    }

    /// One incremental decode step: processes `token` at the cache's next
    /// position, appends its K/V rows, and returns the logits for the next
    /// token (length `vocab`).
    ///
    /// A full prompt processed token-by-token through `decode_step` yields
    /// exactly the same final-position logits as [`TransformerLm::forward`]
    /// on the whole sequence.
    ///
    /// On a *full* cache the step does not panic: the ring evicts the oldest
    /// position and the new token executes at the final positional slot.
    /// This is an approximation of window truncation (surviving K/V rows
    /// keep their original positional phases); use
    /// [`crate::generate::generate_digital_cached`] for generation that
    /// matches [`crate::generate::generate_digital`]'s truncation exactly.
    ///
    /// # Panics
    ///
    /// Panics if the cache was built for a different architecture or
    /// `token` is out of vocabulary.
    ///
    /// # Example
    ///
    /// ```
    /// use nora_nn::{KvCache, ModelConfig, TransformerLm};
    /// use nora_tensor::rng::Rng;
    ///
    /// let model = TransformerLm::new(ModelConfig::tiny_for_tests(), &mut Rng::seed_from(0));
    /// let mut cache = KvCache::new(&model);
    /// let logits_a = model.decode_step(3, &mut cache);
    /// let logits_b = model.decode_step(1, &mut cache);
    /// assert_eq!(cache.len(), 2);
    /// // Identical to the full forward at the same positions:
    /// let full = model.forward(&[3, 1]);
    /// assert!((logits_b[0] - full[(1, 0)]).abs() < 1e-4);
    /// # let _ = logits_a;
    /// ```
    pub fn decode_step(&self, token: usize, cache: &mut KvCache) -> Vec<f32> {
        assert_eq!(cache.blocks.len(), self.blocks.len(), "cache/model mismatch");
        let pos = cache.next_position();
        let d = self.config.d_model;
        // Embed the single token at its position.
        let mut x = Matrix::zeros(1, d);
        {
            assert!(token < self.config.vocab, "token out of vocab");
            let te = self.embedding.tokens.value.row(token);
            let pe = self.embedding.positions.value.row(pos);
            for (o, (&a, &b)) in x.row_mut(0).iter_mut().zip(te.iter().zip(pe)) {
                *o = a + b;
            }
        }
        for (b, block) in self.blocks.iter().enumerate() {
            let ln1_out = block.ln1.forward_inference(&x);
            let q = block.attn.wq.forward(&ln1_out);
            let k = block.attn.wk.forward(&ln1_out);
            let v = block.attn.wv.forward(&ln1_out);
            cache.append(b, k.row(0), v.row(0));
            let (kc, vc) = cache.view(b);
            let context = block.attn.attend_one(q.row(0), kc, vc);
            let attn_out = block
                .attn
                .wo
                .forward(&Matrix::from_vec(1, d, context));
            let x1 = x.add(&attn_out);
            let ln2_out = block.ln2.forward_inference(&x1);
            let h = block.fc1.forward(&ln2_out).map(|v| v.max(0.0));
            x = x1.add(&block.fc2.forward(&h));
        }
        cache.advance();
        let x = self.final_ln.forward_inference(&x);
        self.head.forward(&x).into_vec()
    }

    /// Greedy argmax prediction at the last position of `tokens`.
    ///
    /// # Panics
    ///
    /// Panics if `tokens` is empty.
    pub fn predict_next(&self, tokens: &[usize]) -> usize {
        assert!(!tokens.is_empty(), "empty context");
        let logits = self.forward(tokens);
        let last = logits.row(logits.rows() - 1);
        last.iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_shapes() {
        let mut rng = Rng::seed_from(1);
        let model = TransformerLm::new(ModelConfig::tiny_for_tests(), &mut rng);
        let logits = model.forward(&[0, 1, 2, 3]);
        assert_eq!(logits.shape(), (4, 16));
    }

    #[test]
    fn forward_observed_matches_plain_forward() {
        let mut rng = Rng::seed_from(2);
        let model = TransformerLm::new(ModelConfig::tiny_for_tests(), &mut rng);
        let tokens = [3usize, 1, 4, 1, 5];
        let mut seen = Vec::new();
        let a = model.forward_observed(&tokens, &mut |id, x| {
            seen.push((id, x.shape()));
        });
        let b = model.forward(&tokens);
        assert!(a.mse(&b) < 1e-12);
        // 1 layer × 6 linears observed
        assert_eq!(seen.len(), 6);
        assert_eq!(seen[0].0, LinearId::new(0, LinearKind::Q));
        assert_eq!(seen[4].1, (5, 16)); // fc1 input: seq × d_model
        assert_eq!(seen[5].1, (5, 32)); // fc2 input: seq × d_ff
    }

    #[test]
    fn loss_decreases_under_training_on_trivial_pattern() {
        let mut rng = Rng::seed_from(3);
        let mut model = TransformerLm::new(ModelConfig::tiny_for_tests(), &mut rng);
        // Constant repetition: 5 5 5 5 ... trivially learnable.
        let seq: Vec<usize> = vec![5; 8];
        let mut first = None;
        let mut last = 0.0;
        for t in 1..=60 {
            model.zero_grad();
            let loss = model.loss_and_backward(&seq);
            for p in model.params_mut() {
                p.adam_step(3e-3, 0.9, 0.999, 1e-8, t);
            }
            if first.is_none() {
                first = Some(loss);
            }
            last = loss;
        }
        assert!(
            last < first.unwrap() / 4.0,
            "loss should drop: {first:?} → {last}"
        );
        assert_eq!(model.predict_next(&[5, 5, 5]), 5);
    }

    #[test]
    fn decode_step_matches_full_forward() {
        let mut rng = Rng::seed_from(21);
        let cfg = ModelConfig {
            layers: 2,
            ..ModelConfig::tiny_for_tests()
        };
        let model = TransformerLm::new(cfg, &mut rng);
        let tokens = [3usize, 1, 4, 1, 5, 9, 2, 6];
        let full = model.forward(&tokens);
        let mut cache = KvCache::new(&model);
        let mut last = Vec::new();
        for (i, &t) in tokens.iter().enumerate() {
            last = model.decode_step(t, &mut cache);
            assert_eq!(cache.len(), i + 1);
            // Logits at every intermediate position must match too.
            for (a, b) in last.iter().zip(full.row(i)) {
                assert!((a - b).abs() < 1e-4, "pos {i}: {a} vs {b}");
            }
        }
        assert_eq!(last.len(), model.config().vocab);
    }

    #[test]
    fn decode_step_evicts_instead_of_panicking_past_max_seq() {
        let mut rng = Rng::seed_from(22);
        let model = TransformerLm::new(ModelConfig::tiny_for_tests(), &mut rng);
        let max_seq = model.config().max_seq;
        let mut cache = KvCache::new(&model);
        for step in 0..=max_seq + 2 {
            let logits = model.decode_step(1 + step % 3, &mut cache);
            assert_eq!(logits.len(), model.config().vocab);
        }
        assert_eq!(cache.len(), max_seq);
        assert!(!cache.has_capacity());
        assert_eq!(cache.evicted(), 3);
    }

    #[test]
    fn windowed_cache_ring_matches_serial_refill_on_survivors() {
        // After eviction, the surviving logical rows must be exactly the
        // rows that a fresh cache would hold after appending the same
        // trailing K/V data — the ring indirection is invisible.
        let mut rng = Rng::seed_from(23);
        let model = TransformerLm::new(ModelConfig::tiny_for_tests(), &mut rng);
        let window = 4;
        let mut ring = KvCache::with_capacity(&model, window);
        let tokens: Vec<usize> = (0..9).map(|i| (i * 5 + 1) % 16).collect();
        for &t in &tokens {
            model.decode_step(t, &mut ring);
        }
        assert_eq!(ring.len(), window);
        assert_eq!(ring.evicted(), (tokens.len() - window) as u64);
        // Views expose the last `window` appended rows, oldest first.
        let (kv, _) = ring.view(0);
        assert_eq!(kv.len(), window);
        // Re-decode only the final token into a clone whose ring head is
        // elsewhere: its newest row must equal the ring's newest row.
        let mut replay = ring.clone();
        replay.reset();
        for &t in &tokens[tokens.len() - window..] {
            model.decode_step(t, &mut replay);
        }
        let (rk, _) = replay.view(0);
        // Newest K row matches: the final token was embedded at position
        // window-1 in both caches (ring saturates next_position there).
        assert_eq!(kv.row(window - 1), rk.row(window - 1));
    }

    #[test]
    fn linear_ids_cover_all_blocks() {
        let mut rng = Rng::seed_from(4);
        let cfg = ModelConfig {
            layers: 3,
            ..ModelConfig::tiny_for_tests()
        };
        let model = TransformerLm::new(cfg, &mut rng);
        let ids = model.linear_ids();
        assert_eq!(ids.len(), 18);
        assert_eq!(ids[6].block, 1);
    }

    #[test]
    fn linear_accessors_agree() {
        let mut rng = Rng::seed_from(5);
        let mut model = TransformerLm::new(ModelConfig::tiny_for_tests(), &mut rng);
        let id = LinearId::new(0, LinearKind::Fc1);
        let shape = model.linear(id).weight.value.shape();
        assert_eq!(shape, (16, 32));
        model.linear_mut(id).weight.value[(0, 0)] = 99.0;
        assert_eq!(model.linear(id).weight.value[(0, 0)], 99.0);
    }

    #[test]
    fn param_count_formula_matches_actuals() {
        let mut rng = Rng::seed_from(6);
        let cfg = ModelConfig::tiny_for_tests();
        let mut model = TransformerLm::new(cfg, &mut rng);
        let actual: usize = model.params_mut().iter().map(|p| p.value.len()).sum();
        assert_eq!(actual, cfg.param_count());
    }

    #[test]
    #[should_panic(expected = "invalid model config")]
    fn invalid_config_panics() {
        let cfg = ModelConfig {
            heads: 3,
            ..ModelConfig::tiny_for_tests()
        };
        TransformerLm::new(cfg, &mut Rng::seed_from(0));
    }

    #[test]
    fn validate_catches_bad_configs() {
        let good = ModelConfig::tiny_for_tests();
        assert!(good.validate().is_ok());
        assert!(ModelConfig { vocab: 1, ..good }.validate().is_err());
        assert!(ModelConfig { layers: 0, ..good }.validate().is_err());
    }
}
