//! Pre-LayerNorm transformer decoder block.

use crate::attention::MultiHeadAttention;
use crate::layernorm::LayerNorm;
use crate::linear::DigitalLinear;
use crate::param::Param;
use nora_tensor::rng::Rng;
use nora_tensor::Matrix;

/// One decoder block: `x + Attn(LN1(x))` then `x + FFN(LN2(x))`.
///
/// The FFN uses **ReLU** (as in OPT): ReLU is positively homogeneous
/// (`ReLU(f·z) = f·ReLU(z)` for `f > 0`), which lets the model zoo plant
/// outliers on the FFN hidden channels with exact function preservation.
#[derive(Debug, Clone)]
pub struct TransformerBlock {
    /// Pre-attention LayerNorm.
    pub ln1: LayerNorm,
    /// Causal self-attention.
    pub attn: MultiHeadAttention,
    /// Pre-FFN LayerNorm.
    pub ln2: LayerNorm,
    /// FFN up-projection (`d → d_ff`).
    pub fc1: DigitalLinear,
    /// FFN down-projection (`d_ff → d`).
    pub fc2: DigitalLinear,
    cache: Option<Cache>,
}

#[derive(Debug, Clone)]
struct Cache {
    ln2_out: Matrix,
    /// Pre-activation of the FFN hidden layer.
    h_pre: Matrix,
    /// Post-ReLU hidden activations (input of `fc2`).
    h_act: Matrix,
}

impl TransformerBlock {
    /// Creates a block with model dim `d`, `heads` heads, and FFN width
    /// `d_ff`.
    pub fn new(d: usize, heads: usize, d_ff: usize, rng: &mut Rng) -> Self {
        Self {
            ln1: LayerNorm::new(d),
            attn: MultiHeadAttention::new(d, heads, rng),
            ln2: LayerNorm::new(d),
            fc1: DigitalLinear::new(d, d_ff, rng),
            fc2: DigitalLinear::new(d_ff, d, rng),
            cache: None,
        }
    }

    /// Model dimension.
    pub fn dim(&self) -> usize {
        self.fc1.d_in()
    }

    /// FFN hidden width.
    pub fn d_ff(&self) -> usize {
        self.fc1.d_out()
    }

    /// Forward pass with caching for backward.
    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        let ln1_out = self.ln1.forward(x);
        let attn_out = self.attn.forward(&ln1_out);
        let x1 = x.add(&attn_out);

        let ln2_out = self.ln2.forward(&x1);
        let h_pre = self.fc1.forward(&ln2_out);
        let h_act = h_pre.map(|v| v.max(0.0));
        let ffn_out = self.fc2.forward(&h_act);
        let y = x1.add(&ffn_out);

        self.cache = Some(Cache {
            ln2_out,
            h_pre,
            h_act,
        });
        y
    }

    /// Forward without caching using the digital linears.
    pub fn forward_inference(&self, x: &Matrix) -> Matrix {
        let ln1_out = self.ln1.forward_inference(x);
        let attn_out = self.attn.forward_inference(&ln1_out);
        let x1 = x.add(&attn_out);
        let ln2_out = self.ln2.forward_inference(&x1);
        let h = self.fc1.forward(&ln2_out).map(|v| v.max(0.0));
        x1.add(&self.fc2.forward(&h))
    }

    /// Backward pass; must follow a caching [`TransformerBlock::forward`].
    ///
    /// # Panics
    ///
    /// Panics if no forward cache is present.
    pub fn backward(&mut self, dy: &Matrix) -> Matrix {
        let cache = self
            .cache
            .take()
            .expect("TransformerBlock::backward without forward");

        // FFN branch.
        let dh_act = self.fc2.backward(&cache.h_act, dy);
        let mut dh_pre = dh_act;
        for (g, &pre) in dh_pre
            .as_mut_slice()
            .iter_mut()
            .zip(cache.h_pre.as_slice())
        {
            if pre <= 0.0 {
                *g = 0.0;
            }
        }
        let dln2 = self.fc1.backward(&cache.ln2_out, &dh_pre);
        let dx1_ffn = self.ln2.backward(&dln2);
        // Residual: dx1 = dy + d(ffn path).
        let dx1 = dy.add(&dx1_ffn);

        // Attention branch.
        let dattn = self.attn.backward(&dx1);
        let dx_attn = self.ln1.backward(&dattn);
        dx1.add(&dx_attn)
    }

    /// Mutable access to all block parameters (for the optimizer).
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut out = Vec::new();
        out.extend(self.ln1.params_mut());
        out.extend(self.attn.params_mut());
        out.extend(self.ln2.params_mut());
        out.extend(self.fc1.params_mut());
        out.extend(self.fc2.params_mut());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_shapes_and_agreement() {
        let mut rng = Rng::seed_from(1);
        let mut block = TransformerBlock::new(8, 2, 32, &mut rng);
        let x = Matrix::random_normal(5, 8, 0.0, 1.0, &mut rng);
        let y = block.forward(&x);
        assert_eq!(y.shape(), (5, 8));
        let y2 = block.forward_inference(&x);
        assert!(y.mse(&y2) < 1e-12);
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = Rng::seed_from(2);
        let mut block = TransformerBlock::new(6, 2, 12, &mut rng);
        let x = Matrix::random_normal(3, 6, 0.0, 1.0, &mut rng);
        let quad = |m: &Matrix| -> f64 {
            m.as_slice()
                .iter()
                .map(|&v| (v as f64) * (v as f64) / 2.0)
                .sum()
        };
        let y = block.forward(&x);
        let dx = block.backward(&y);
        let eps = 1e-3f32;
        for &(r, c) in &[(0usize, 0usize), (1, 3), (2, 5)] {
            let mut xp = x.clone();
            xp[(r, c)] += eps;
            let mut xm = x.clone();
            xm[(r, c)] -= eps;
            let num = (quad(&block.forward_inference(&xp))
                - quad(&block.forward_inference(&xm)))
                / (2.0 * eps as f64);
            let ana = dx[(r, c)] as f64;
            assert!(
                (num - ana).abs() < 5e-2 * (1.0 + ana.abs()),
                "dx[{r},{c}] num {num} ana {ana}"
            );
        }
        // One FFN weight gradient.
        let ana = block.fc1.weight.grad[(2, 4)] as f64;
        let mut bp = block.clone();
        bp.fc1.weight.value[(2, 4)] += eps;
        let mut bm = block.clone();
        bm.fc1.weight.value[(2, 4)] -= eps;
        let num = (quad(&bp.forward_inference(&x)) - quad(&bm.forward_inference(&x)))
            / (2.0 * eps as f64);
        assert!(
            (num - ana).abs() < 5e-2 * (1.0 + ana.abs()),
            "fc1 num {num} ana {ana}"
        );
    }

    #[test]
    fn residual_keeps_input_information() {
        // Zeroing all weights must reduce the block to (almost) identity.
        let mut rng = Rng::seed_from(3);
        let mut block = TransformerBlock::new(4, 1, 8, &mut rng);
        for p in block.params_mut() {
            if p.value.rows() == 1 {
                continue; // keep LN gains/biases
            }
            p.value.scale_assign(0.0);
        }
        let x = Matrix::random_normal(2, 4, 0.0, 1.0, &mut rng);
        let y = block.forward_inference(&x);
        assert!(y.mse(&x) < 1e-10);
    }

    #[test]
    fn params_count() {
        let mut block = TransformerBlock::new(8, 2, 16, &mut Rng::seed_from(0));
        // ln1(2) + attn(8) + ln2(2) + fc1(2) + fc2(2)
        assert_eq!(block.params_mut().len(), 16);
    }
}
