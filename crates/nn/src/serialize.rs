//! Binary model serialization.
//!
//! A minimal, dependency-free format so experiment binaries can cache
//! trained models instead of re-training on every run:
//!
//! ```text
//! magic "NORA"  | u32 version | 6 × u64 ModelConfig fields
//! f64 first_loss | f64 final_loss
//! per parameter (fixed traversal order): u32 rows | u32 cols | f32 data (LE)
//! ```
//!
//! The parameter traversal order is the one defined by
//! [`TransformerLm::params`], which is stable across versions of this crate
//! (embedding → blocks in order → final LN → head).

use crate::model::{ModelConfig, TransformerLm};
use nora_tensor::rng::Rng;
use nora_tensor::Matrix;
use std::io::{self, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"NORA";
const VERSION: u32 = 1;

/// Metadata stored alongside the parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SavedMeta {
    /// First-step training loss at save time.
    pub first_loss: f64,
    /// Final-step training loss at save time.
    pub final_loss: f64,
}

/// Writes `model` to `w`.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn save(model: &TransformerLm, meta: SavedMeta, mut w: impl Write) -> io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    let c = model.config();
    for v in [
        c.vocab, c.max_seq, c.d_model, c.heads, c.d_ff, c.layers,
    ] {
        w.write_all(&(v as u64).to_le_bytes())?;
    }
    w.write_all(&meta.first_loss.to_le_bytes())?;
    w.write_all(&meta.final_loss.to_le_bytes())?;
    for p in model.params() {
        let m = &p.value;
        w.write_all(&(m.rows() as u32).to_le_bytes())?;
        w.write_all(&(m.cols() as u32).to_le_bytes())?;
        for &v in m.as_slice() {
            w.write_all(&v.to_le_bytes())?;
        }
    }
    Ok(())
}

/// Reads a model back from `r`.
///
/// # Errors
///
/// Returns `InvalidData` if the magic, version, or any shape disagrees with
/// the expectations of this build, and propagates reader I/O errors.
pub fn load(mut r: impl Read) -> io::Result<(TransformerLm, SavedMeta)> {
    let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(bad("not a NORA model file"));
    }
    let mut b4 = [0u8; 4];
    r.read_exact(&mut b4)?;
    if u32::from_le_bytes(b4) != VERSION {
        return Err(bad("unsupported model file version"));
    }
    let read_u64 = |r: &mut dyn Read| -> io::Result<usize> {
        let mut b = [0u8; 8];
        r.read_exact(&mut b)?;
        Ok(u64::from_le_bytes(b) as usize)
    };
    let config = ModelConfig {
        vocab: read_u64(&mut r)?,
        max_seq: read_u64(&mut r)?,
        d_model: read_u64(&mut r)?,
        heads: read_u64(&mut r)?,
        d_ff: read_u64(&mut r)?,
        layers: read_u64(&mut r)?,
    };
    config.validate().map_err(|e| bad(&e))?;
    let read_f64 = |r: &mut dyn Read| -> io::Result<f64> {
        let mut b = [0u8; 8];
        r.read_exact(&mut b)?;
        Ok(f64::from_le_bytes(b))
    };
    let meta = SavedMeta {
        first_loss: read_f64(&mut r)?,
        final_loss: read_f64(&mut r)?,
    };

    let mut model = TransformerLm::new(config, &mut Rng::seed_from(0));
    for p in model.params_mut() {
        let mut b = [0u8; 4];
        r.read_exact(&mut b)?;
        let rows = u32::from_le_bytes(b) as usize;
        r.read_exact(&mut b)?;
        let cols = u32::from_le_bytes(b) as usize;
        if (rows, cols) != p.value.shape() {
            return Err(bad("parameter shape mismatch"));
        }
        let mut data = vec![0.0f32; rows * cols];
        for v in &mut data {
            r.read_exact(&mut b)?;
            *v = f32::from_le_bytes(b);
        }
        p.value = Matrix::from_vec(rows, cols, data);
    }
    Ok((model, meta))
}

/// Saves to a file path (creating parent directories).
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn save_to_path(
    model: &TransformerLm,
    meta: SavedMeta,
    path: impl AsRef<Path>,
) -> io::Result<()> {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let file = std::fs::File::create(path)?;
    save(model, meta, io::BufWriter::new(file))
}

/// Loads from a file path.
///
/// # Errors
///
/// Propagates filesystem errors and format errors from [`load`].
pub fn load_from_path(path: impl AsRef<Path>) -> io::Result<(TransformerLm, SavedMeta)> {
    let file = std::fs::File::open(path)?;
    load(io::BufReader::new(file))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_preserves_model_exactly() {
        let mut rng = Rng::seed_from(5);
        let model = TransformerLm::new(ModelConfig::tiny_for_tests(), &mut rng);
        let meta = SavedMeta {
            first_loss: 2.5,
            final_loss: 0.75,
        };
        let mut buf = Vec::new();
        save(&model, meta, &mut buf).unwrap();
        let (loaded, got_meta) = load(buf.as_slice()).unwrap();
        assert_eq!(got_meta, meta);
        let tokens = [1usize, 3, 5, 7];
        assert_eq!(model.forward(&tokens), loaded.forward(&tokens));
    }

    #[test]
    fn rejects_wrong_magic_and_truncation() {
        assert!(load(&b"XXXX0000"[..]).is_err());
        let mut rng = Rng::seed_from(6);
        let model = TransformerLm::new(ModelConfig::tiny_for_tests(), &mut rng);
        let mut buf = Vec::new();
        save(
            &model,
            SavedMeta {
                first_loss: 0.0,
                final_loss: 0.0,
            },
            &mut buf,
        )
        .unwrap();
        buf.truncate(buf.len() / 2);
        assert!(load(buf.as_slice()).is_err());
    }

    #[test]
    fn file_round_trip() {
        let mut rng = Rng::seed_from(7);
        let model = TransformerLm::new(ModelConfig::tiny_for_tests(), &mut rng);
        let dir = std::env::temp_dir().join("nora-serialize-test");
        let path = dir.join("model.nora");
        save_to_path(
            &model,
            SavedMeta {
                first_loss: 1.0,
                final_loss: 0.5,
            },
            &path,
        )
        .unwrap();
        let (loaded, _) = load_from_path(&path).unwrap();
        assert_eq!(
            model.forward(&[2, 4, 6]),
            loaded.forward(&[2, 4, 6])
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
