//! Trainable decoder-only transformer language models.
//!
//! This crate is the workspace's LLM substrate. The paper evaluates NORA on
//! OPT, LLaMA and Mistral checkpoints; running billion-parameter models is
//! out of scope for a self-contained Rust reproduction, so this crate builds
//! the *phenomenon* instead: small decoder-only transformers, trained from
//! scratch in-repo (manual backprop + Adam), whose activation statistics are
//! then shaped to match each model family via **function-preserving outlier
//! injection** (see [`zoo`]). The FP32 forward pass is bit-identical before
//! and after injection, so the digital baseline stays exact while the analog
//! deployment sees LLM-like heavy-tailed activations (paper Fig. 4:
//! activation kurtosis ≈ 113 vs weight kurtosis ≈ 1.25).
//!
//! Architecture (mirroring OPT's pre-LayerNorm decoder):
//!
//! * token + learned positional [`Embedding`]s,
//! * [`TransformerBlock`]s: `x + Attn(LN1(x))`, `x + FFN(LN2(x))` with
//!   causal multi-head attention and a ReLU FFN (ReLU, as in OPT, keeps
//!   outlier injection exactly function-preserving),
//! * a final LayerNorm and a linear LM head.
//!
//! The six linears of each block (`q`, `k`, `v`, `out`, `fc1`, `fc2`) are the
//! analog-mappable layers — exactly the set the paper programs onto PCM
//! tiles (Fig. 2); everything else (LayerNorm, attention softmax, residuals,
//! the LM head) stays digital. [`deploy::AnalogTransformerLm`] performs that
//! hybrid mapping on top of [`nora_cim::AnalogLinear`].
//!
//! # Example
//!
//! ```
//! use nora_nn::{ModelConfig, TransformerLm};
//! use nora_tensor::rng::Rng;
//!
//! let cfg = ModelConfig::tiny_for_tests();
//! let mut model = TransformerLm::new(cfg, &mut Rng::seed_from(0));
//! let logits = model.forward(&[1, 2, 3]);
//! assert_eq!(logits.shape(), (3, model.config().vocab));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod attention;
mod block;
mod embedding;
mod layernorm;
mod linear;
mod model;
mod param;
mod softmax;

pub mod corpus;
pub mod deploy;
pub mod generate;
pub mod serialize;
pub mod ste;
pub mod trainer;
pub mod zoo;

pub use attention::{AttnProj, MultiHeadAttention};
pub use block::TransformerBlock;
pub use embedding::Embedding;
pub use layernorm::LayerNorm;
pub use linear::DigitalLinear;
pub use model::{KvCache, KvView, LinearId, LinearKind, ModelConfig, TransformerLm};
pub use param::Param;
pub use softmax::{cross_entropy, softmax_rows};
