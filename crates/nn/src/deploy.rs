//! Hybrid analog/digital deployment of a transformer LM.
//!
//! Mirrors the paper's Fig. 2 mapping: the six linears of every block run on
//! analog CIM tiles ([`nora_cim::AnalogLinear`]), while LayerNorm, the
//! attention core (scores/softmax), residuals, embeddings and the LM head
//! stay digital at full precision ("Normalization, activation functions,
//! and self-attention are executed on digital units with full precision",
//! paper §V).
//!
//! A per-layer smoothing map (produced by `nora-core`) turns a naive
//! deployment into a NORA deployment.

use crate::attention::AttnProj;
use crate::model::{KvCache, LinearId, LinearKind, TransformerLm};
use nora_cim::{
    AnalogLinear, CimError, DriftCompensation, ForwardStats, KeyedCtx, TileConfig, TileEffect,
    TileEvent, TileHealth,
};
use nora_tensor::Matrix;
use std::collections::HashMap;

/// Per-layer NORA smoothing vectors keyed by linear id.
///
/// Layers absent from the map deploy naively (`s = 1`).
pub type SmoothingMap = HashMap<LinearId, Vec<f32>>;

/// Per-slot scratch arena for [`AnalogTransformerLm::decode_step_keyed`]:
/// the tile-level conversion scratch plus the per-layer effect sink. One
/// per concurrent serving slot, reused across layers and decode steps.
#[derive(Debug, Clone, Default)]
pub struct DecodeCtx {
    cim: KeyedCtx,
    fx: Vec<TileEffect>,
}

/// A transformer LM whose linears execute on simulated analog CIM tiles.
///
/// # Example
///
/// ```
/// use nora_nn::{ModelConfig, TransformerLm};
/// use nora_nn::deploy::AnalogTransformerLm;
/// use nora_cim::TileConfig;
/// use nora_tensor::rng::Rng;
///
/// let model = TransformerLm::new(ModelConfig::tiny_for_tests(), &mut Rng::seed_from(0));
/// let mut analog = AnalogTransformerLm::new(&model, TileConfig::ideal(), &Default::default(), 1);
/// let digital = model.forward(&[1, 2, 3]);
/// let noisy = analog.forward(&[1, 2, 3]);
/// assert!(noisy.mse(&digital) < 1e-9); // ideal tiles ⇒ exact
/// ```
#[derive(Debug, Clone)]
pub struct AnalogTransformerLm {
    model: TransformerLm,
    analog: HashMap<LinearId, AnalogLinear>,
    degraded: Vec<(LinearId, CimError)>,
}

impl AnalogTransformerLm {
    /// Deploys `model` onto analog tiles with the given tile configuration
    /// and smoothing map.
    ///
    /// The digital parts of the model are cloned; the analog linears are
    /// programmed once at construction (weights × smoothing → conductances).
    ///
    /// Deployment degrades rather than aborts: a linear whose tiles cannot
    /// be programmed (e.g. unrecoverable [`nora_cim::FaultPlan`]
    /// programming failures) is left on the exact digital path and recorded
    /// in [`AnalogTransformerLm::degraded_layers`]. Use
    /// [`AnalogTransformerLm::try_new`] for strict all-or-nothing semantics.
    pub fn new(
        model: &TransformerLm,
        config: TileConfig,
        smoothing: &SmoothingMap,
        seed: u64,
    ) -> Self {
        Self::with_layer_filter(model, config, smoothing, seed, |_| true)
    }

    /// Strict variant of [`AnalogTransformerLm::new`]: returns the first
    /// per-layer construction error instead of degrading that layer to
    /// digital execution.
    ///
    /// # Errors
    ///
    /// Returns the [`CimError`] of the first linear that failed to deploy.
    pub fn try_new(
        model: &TransformerLm,
        config: TileConfig,
        smoothing: &SmoothingMap,
        seed: u64,
    ) -> Result<Self, CimError> {
        Self::deploy(model, config, smoothing, seed, |_| true, true)
    }

    /// Like [`AnalogTransformerLm::new`], but maps only the linears for
    /// which `filter` returns `true` onto analog tiles; the rest execute
    /// digitally at full precision. Used by the per-layer sensitivity study
    /// (paper §VII: "per-layer evaluation").
    pub fn with_layer_filter(
        model: &TransformerLm,
        config: TileConfig,
        smoothing: &SmoothingMap,
        seed: u64,
        filter: impl Fn(LinearId) -> bool,
    ) -> Self {
        match Self::deploy(model, config, smoothing, seed, filter, false) {
            Ok(deployed) => deployed,
            Err(err) => panic!("{err}"),
        }
    }

    /// Shared deployment loop. In lenient mode (`strict = false`), a layer
    /// whose physical tiles cannot be programmed degrades to the digital
    /// path with the failure recorded; *configuration* errors (invalid tile
    /// config, mismatched smoothing, empty weights) still surface, because
    /// they indicate caller bugs rather than hardware faults.
    fn deploy(
        model: &TransformerLm,
        config: TileConfig,
        smoothing: &SmoothingMap,
        seed: u64,
        filter: impl Fn(LinearId) -> bool,
        strict: bool,
    ) -> Result<Self, CimError> {
        let mut analog = HashMap::new();
        let mut degraded = Vec::new();
        for id in model.linear_ids() {
            if !filter(id) {
                continue;
            }
            let lin = model.linear(id);
            let weights = lin.weight.value.clone();
            let bias = lin.bias.value.row(0).to_vec();
            let s = smoothing.get(&id).map(|v| v.as_slice());
            let layer_seed = seed ^ ((id.block as u64 + 1) << 20) ^ ((id.kind as u64 + 1) << 8);
            match AnalogLinear::try_with_smoothing(
                weights,
                Some(bias),
                s,
                config.clone(),
                layer_seed,
            ) {
                Ok(layer) => {
                    analog.insert(id, layer);
                }
                Err(err) if !strict && matches!(err, CimError::ProgrammingFailed { .. }) => {
                    // Graceful degradation: the layer stays on the exact
                    // digital path (forward already falls back for unmapped
                    // ids) and the failure is recorded instead of aborting.
                    degraded.push((id, err));
                }
                Err(err) => return Err(err),
            }
        }
        Ok(Self {
            model: model.clone(),
            analog,
            degraded,
        })
    }

    /// Number of linears actually mapped to analog tiles.
    pub fn analog_layer_count(&self) -> usize {
        self.analog.len()
    }

    /// Linears that could not be programmed at deployment and run digitally
    /// instead, with the error that condemned them (construction order).
    pub fn degraded_layers(&self) -> &[(LinearId, CimError)] {
        &self.degraded
    }

    /// All tile degradation events recorded so far across the analog
    /// layers (checksum flags, re-programmings, remaps, fallbacks), sorted
    /// by (block, kind) and within a layer in occurrence order.
    pub fn fault_events(&self) -> Vec<(LinearId, TileEvent)> {
        let mut ids = self.model.linear_ids();
        ids.retain(|id| self.analog.contains_key(id));
        ids.into_iter()
            .flat_map(|id| {
                self.analog[&id]
                    .events()
                    .iter()
                    .map(move |&event| (id, event))
            })
            .collect()
    }

    /// Tile health trackers of every analog layer, keyed by linear id and
    /// listed in the layer's grid order.
    pub fn tile_health(&self) -> Vec<(LinearId, Vec<TileHealth>)> {
        let mut ids = self.model.linear_ids();
        ids.retain(|id| self.analog.contains_key(id));
        ids.into_iter()
            .map(|id| (id, self.analog[&id].tile_health()))
            .collect()
    }

    /// Spare physical tiles consumed by remapping, summed over layers.
    pub fn spares_used(&self) -> u32 {
        self.analog.values().map(AnalogLinear::spares_used).sum()
    }

    /// Tile slots currently served by exact digital fallback, summed over
    /// layers (deployment-degraded layers from
    /// [`AnalogTransformerLm::degraded_layers`] are *not* counted — they
    /// have no tiles at all).
    pub fn digital_fallback_count(&self) -> usize {
        self.analog
            .values()
            .map(AnalogLinear::digital_fallback_count)
            .sum()
    }

    /// The underlying digital model (used for the digital sub-operations).
    pub fn digital_model(&self) -> &TransformerLm {
        &self.model
    }

    /// Forward pass: logits `(seq × vocab)` with analog linears.
    pub fn forward(&mut self, tokens: &[usize]) -> Matrix {
        let mut x = self.model.embedding.forward_inference(tokens);
        // Split borrows: blocks are read from `model`, analog layers mutate.
        let analog = &mut self.analog;
        for (b, block) in self.model.blocks.iter().enumerate() {
            // Run a linear on its analog tiles if mapped, else digitally.
            let ln1_out = block.ln1.forward_inference(&x);
            let attn_out = block.attn.forward_inference_with(&ln1_out, |proj, input| {
                let (kind, digital) = match proj {
                    AttnProj::Q => (LinearKind::Q, &block.attn.wq),
                    AttnProj::K => (LinearKind::K, &block.attn.wk),
                    AttnProj::V => (LinearKind::V, &block.attn.wv),
                    AttnProj::Out => (LinearKind::Out, &block.attn.wo),
                };
                match analog.get_mut(&LinearId::new(b, kind)) {
                    Some(layer) => layer.forward(input),
                    None => digital.forward(input),
                }
            });
            let x1 = x.add(&attn_out);
            let ln2_out = block.ln2.forward_inference(&x1);
            let h = match analog.get_mut(&LinearId::new(b, LinearKind::Fc1)) {
                Some(layer) => layer.forward(&ln2_out),
                None => block.fc1.forward(&ln2_out),
            }
            .map(|v| v.max(0.0));
            let ffn_out = match analog.get_mut(&LinearId::new(b, LinearKind::Fc2)) {
                Some(layer) => layer.forward(&h),
                None => block.fc2.forward(&h),
            };
            x = x1.add(&ffn_out);
        }
        let x = self.model.final_ln.forward_inference(&x);
        self.model.head.forward(&x)
    }

    /// One incremental decode step on the analog deployment (see
    /// [`TransformerLm::decode_step`] for the cache contract). The K/V rows
    /// appended to the cache are the *analog* projections — the cache holds
    /// what the hardware actually computed.
    ///
    /// # Panics
    ///
    /// On a full cache the ring evicts the oldest position instead of
    /// panicking, exactly as in the digital [`TransformerLm::decode_step`].
    ///
    /// # Panics
    ///
    /// Panics if the cache is mismatched or `token` is out of vocabulary.
    pub fn decode_step(&mut self, token: usize, cache: &mut KvCache) -> Vec<f32> {
        use nora_tensor::Matrix as M;
        let model = &self.model;
        let pos = cache.next_position();
        let d = model.config().d_model;
        let mut x = M::zeros(1, d);
        {
            assert!(token < model.config().vocab, "token out of vocab");
            let te = model.embedding.tokens.value.row(token);
            let pe = model.embedding.positions.value.row(pos);
            for (o, (&a, &b)) in x.row_mut(0).iter_mut().zip(te.iter().zip(pe)) {
                *o = a + b;
            }
        }
        let analog = &mut self.analog;
        let mut run =
            |b: usize, kind: LinearKind, digital: &crate::DigitalLinear, input: &M| match analog
                .get_mut(&LinearId::new(b, kind))
            {
                Some(layer) => layer.forward(input),
                None => digital.forward(input),
            };
        for (b, block) in model.blocks.iter().enumerate() {
            let ln1_out = block.ln1.forward_inference(&x);
            let q = run(b, LinearKind::Q, &block.attn.wq, &ln1_out);
            let k = run(b, LinearKind::K, &block.attn.wk, &ln1_out);
            let v = run(b, LinearKind::V, &block.attn.wv, &ln1_out);
            cache.append(b, k.row(0), v.row(0));
            let (kc, vc) = cache.view(b);

            let context = block.attn.attend_one(q.row(0), kc, vc);
            let context = M::from_vec(1, d, context);
            let attn_out = run(b, LinearKind::Out, &block.attn.wo, &context);
            // Residual adds and ReLU run in place (same operand order, so
            // bit-identical) — single-token decode is allocation-sensitive.
            let mut x1 = x;
            x1.add_assign(&attn_out);
            let ln2_out = block.ln2.forward_inference(&x1);
            let mut h = run(b, LinearKind::Fc1, &block.fc1, &ln2_out);
            h.map_assign(|v| v.max(0.0));
            let f = run(b, LinearKind::Fc2, &block.fc2, &h);
            x = x1;
            x.add_assign(&f);
        }
        cache.advance();
        let x = model.final_ln.forward_inference(&x);
        model.head.forward(&x).into_vec()
    }

    /// Stateless variant of [`AnalogTransformerLm::decode_step`] on
    /// **counter-keyed** noise streams: the deployment is shared immutably
    /// across concurrent serving slots, and every tile's noise sequence is
    /// a pure function of `(layer seed, tile grid coordinates, noise_seed,
    /// position)` — independent of admission order, batch composition and
    /// thread count.
    ///
    /// `noise_seed` identifies the request (its sampling seed), `position`
    /// is the request's cumulative decode-step counter (prefill and rebase
    /// refills included), so successive steps of one request draw distinct
    /// streams. Tile statistics and ABFT flags are *not* applied to the
    /// deployment here: they are appended to `effects` (tagged with the
    /// layer id, in traversal order) for the caller to replay serially via
    /// [`AnalogTransformerLm::absorb_effects`] after the parallel round.
    ///
    /// # Panics
    ///
    /// Panics if the cache is mismatched or `token` is out of vocabulary.
    pub fn decode_step_keyed(
        &self,
        token: usize,
        cache: &mut KvCache,
        noise_seed: u64,
        position: u64,
        ctx: &mut DecodeCtx,
        effects: &mut Vec<(LinearId, TileEffect)>,
    ) -> Vec<f32> {
        use nora_tensor::Matrix as M;
        let model = &self.model;
        let pos = cache.next_position();
        let d = model.config().d_model;
        let mut x = M::zeros(1, d);
        {
            assert!(token < model.config().vocab, "token out of vocab");
            let te = model.embedding.tokens.value.row(token);
            let pe = model.embedding.positions.value.row(pos);
            for (o, (&a, &b)) in x.row_mut(0).iter_mut().zip(te.iter().zip(pe)) {
                *o = a + b;
            }
        }
        let analog = &self.analog;
        let run = |b: usize,
                   kind: LinearKind,
                   digital: &crate::DigitalLinear,
                   input: &M,
                   ctx: &mut DecodeCtx,
                   effects: &mut Vec<(LinearId, TileEffect)>| {
            let id = LinearId::new(b, kind);
            match analog.get(&id) {
                Some(layer) => {
                    let mut out = M::zeros(1, layer.d_out());
                    ctx.fx.clear();
                    layer.forward_single_keyed(
                        input.row(0),
                        out.row_mut(0),
                        noise_seed,
                        position,
                        &mut ctx.cim,
                        &mut ctx.fx,
                    );
                    effects.extend(ctx.fx.drain(..).map(|e| (id, e)));
                    out
                }
                None => digital.forward(input),
            }
        };
        for (b, block) in model.blocks.iter().enumerate() {
            let ln1_out = block.ln1.forward_inference(&x);
            let q = run(b, LinearKind::Q, &block.attn.wq, &ln1_out, ctx, effects);
            let k = run(b, LinearKind::K, &block.attn.wk, &ln1_out, ctx, effects);
            let v = run(b, LinearKind::V, &block.attn.wv, &ln1_out, ctx, effects);
            cache.append(b, k.row(0), v.row(0));
            let (kc, vc) = cache.view(b);

            let context = block.attn.attend_one(q.row(0), kc, vc);
            let context = M::from_vec(1, d, context);
            let attn_out = run(b, LinearKind::Out, &block.attn.wo, &context, ctx, effects);
            let mut x1 = x;
            x1.add_assign(&attn_out);
            let ln2_out = block.ln2.forward_inference(&x1);
            let mut h = run(b, LinearKind::Fc1, &block.fc1, &ln2_out, ctx, effects);
            h.map_assign(|v| v.max(0.0));
            let f = run(b, LinearKind::Fc2, &block.fc2, &h, ctx, effects);
            x = x1;
            x.add_assign(&f);
        }
        cache.advance();
        let x = model.final_ln.forward_inference(&x);
        model.head.forward(&x).into_vec()
    }

    /// Replays the deferred tile effects of one or more keyed decode steps
    /// into the deployment: statistics deltas merge into their tiles and
    /// ABFT flags feed the maintenance work list. Callers invoke this
    /// serially after a parallel round, in (slot, traversal) order, so the
    /// deployment state — and everything exported from it — is
    /// thread-count invariant.
    pub fn absorb_effects(&mut self, effects: &[(LinearId, TileEffect)]) {
        for (id, effect) in effects {
            if let Some(layer) = self.analog.get_mut(id) {
                layer.absorb_tile_effect(effect);
            }
        }
    }

    /// Greedy argmax prediction at the last position.
    ///
    /// # Panics
    ///
    /// Panics if `tokens` is empty.
    pub fn predict_next(&mut self, tokens: &[usize]) -> usize {
        assert!(!tokens.is_empty(), "empty context");
        let logits = self.forward(tokens);
        let last = logits.row(logits.rows() - 1);
        last.iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Aggregated tile statistics over all analog layers.
    pub fn stats(&self) -> ForwardStats {
        let mut total = ForwardStats::default();
        for layer in self.analog.values() {
            total.merge(&layer.stats());
        }
        total
    }

    /// Per-layer statistics, sorted by (block, kind) order.
    pub fn per_layer_stats(&self) -> Vec<(LinearId, ForwardStats)> {
        let mut ids = self.model.linear_ids();
        ids.retain(|id| self.analog.contains_key(id));
        ids.into_iter()
            .map(|id| (id, self.analog[&id].stats()))
            .collect()
    }

    /// Resets all tile statistics.
    pub fn reset_stats(&mut self) {
        for layer in self.analog.values_mut() {
            layer.reset_stats();
        }
    }

    /// Exports the deployment's observability metrics into `m`:
    /// conversion stats merged in (block, kind) layer order then grid
    /// order, ladder transitions in occurrence order, the slot health
    /// census, spares, and deployment-time digital degradations.
    pub fn export_metrics(&self, m: &mut nora_obs::Metrics) {
        let mut total = ForwardStats::default();
        for (_, stats) in self.per_layer_stats() {
            total.merge(&stats);
        }
        total.export_metrics(m);
        for (_, event) in self.fault_events() {
            m.add(event.kind.metric_name(), 1);
        }
        for (_, health) in self.tile_health() {
            nora_cim::export_health(&health, m);
        }
        m.add(
            "cim.health.digital_fallback_slots",
            self.digital_fallback_count() as u64,
        );
        m.add("cim.health.spares_used", u64::from(self.spares_used()));
        m.add("nn.deploy.degraded_layers", self.degraded.len() as u64);
    }

    /// Applies conductance drift at `t_seconds` to every analog layer.
    pub fn apply_drift(&mut self, t_seconds: f64, compensation: DriftCompensation) {
        for layer in self.analog.values_mut() {
            layer.apply_drift(t_seconds, compensation);
        }
    }

    /// Online field-drift step: advances every analog layer to virtual time
    /// `now` (each tile re-reads relative to its own programming epoch, see
    /// [`AnalogLinear::drift_to`]). Iteration order is irrelevant — every
    /// tile owns its RNG stream.
    pub fn drift_to(&mut self, now: f64, compensation: DriftCompensation) {
        for layer in self.analog.values_mut() {
            layer.drift_to(now, compensation);
        }
    }

    /// Switches every analog layer between inline and deferred recovery
    /// (see [`AnalogLinear::set_deferred_recovery`]).
    pub fn set_deferred_recovery(&mut self, deferred: bool) {
        for layer in self.analog.values_mut() {
            layer.set_deferred_recovery(deferred);
        }
    }

    /// Captures per-tile recalibration references on every analog layer
    /// (idempotent per tile).
    pub fn capture_probe_references(&mut self) {
        for layer in self.analog.values_mut() {
            layer.capture_probe_references();
        }
    }

    /// Runs the probe recalibration pass on every analog layer, in (block,
    /// kind) layer order, and returns each layer's outcome (layers with no
    /// probe-able healthy tile are skipped).
    pub fn recalibrate(&mut self) -> Vec<(LinearId, nora_cim::RecalOutcome)> {
        let mut ids = self.model.linear_ids();
        ids.retain(|id| self.analog.contains_key(id));
        ids.into_iter()
            .filter_map(|id| {
                self.analog
                    .get_mut(&id)
                    .and_then(AnalogLinear::recalibrate)
                    .map(|outcome| (id, outcome))
            })
            .collect()
    }

    /// Tile slots currently flagged Suspect across all analog layers, as
    /// (layer id, grid index) pairs in (block, kind) then grid order — the
    /// maintenance scheduler's rotation work list.
    pub fn suspect_tiles(&self) -> Vec<(LinearId, usize)> {
        let mut ids = self.model.linear_ids();
        ids.retain(|id| self.analog.contains_key(id));
        ids.into_iter()
            .flat_map(|id| {
                self.analog[&id]
                    .suspect_tiles()
                    .into_iter()
                    .map(move |idx| (id, idx))
            })
            .collect()
    }

    /// Completes a background rotation of tile `idx` of layer `id` at
    /// virtual time `now` (see [`AnalogLinear::rotate_tile`]). Returns
    /// `true` iff the slot is served by a healthy analog tile afterwards.
    pub fn rotate_tile(&mut self, id: LinearId, idx: usize, now: f64) -> bool {
        self.analog
            .get_mut(&id)
            .is_some_and(|layer| layer.rotate_tile(idx, now))
    }

    /// First-order analog energy/latency estimate summed over all layers
    /// (see [`nora_cim::energy`]).
    pub fn energy(&self, model: &nora_cim::EnergyModel) -> nora_cim::EnergyReport {
        let mut total = nora_cim::EnergyReport::default();
        for layer in self.analog.values() {
            total.merge(&layer.energy(model));
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ModelConfig;
    use nora_tensor::rng::Rng;

    fn tiny_model(seed: u64) -> TransformerLm {
        TransformerLm::new(ModelConfig::tiny_for_tests(), &mut Rng::seed_from(seed))
    }

    #[test]
    fn ideal_deployment_matches_digital_exactly() {
        let model = tiny_model(1);
        let mut analog =
            AnalogTransformerLm::new(&model, TileConfig::ideal(), &SmoothingMap::new(), 2);
        let tokens = [1usize, 4, 9, 2, 2, 7];
        let d = model.forward(&tokens);
        let a = analog.forward(&tokens);
        assert!(a.mse(&d) < 1e-9, "mse {}", a.mse(&d));
    }

    #[test]
    fn ideal_deployment_with_smoothing_still_exact() {
        let model = tiny_model(3);
        let mut smoothing = SmoothingMap::new();
        for id in model.linear_ids() {
            let d_in = model.linear(id).d_in();
            smoothing.insert(id, (0..d_in).map(|i| 0.5 + (i % 3) as f32).collect());
        }
        let mut analog = AnalogTransformerLm::new(&model, TileConfig::ideal(), &smoothing, 4);
        let tokens = [3usize, 1, 4, 1, 5];
        let d = model.forward(&tokens);
        let a = analog.forward(&tokens);
        assert!(a.mse(&d) < 1e-8, "mse {}", a.mse(&d));
    }

    #[test]
    fn noisy_deployment_perturbs_but_tracks() {
        let model = tiny_model(5);
        let cfg = TileConfig::paper_default().with_tile_size(64, 64);
        let mut analog = AnalogTransformerLm::new(&model, cfg, &SmoothingMap::new(), 6);
        let tokens = [2usize, 8, 3, 3, 1];
        let d = model.forward(&tokens);
        let a = analog.forward(&tokens);
        let mse = a.mse(&d);
        assert!(mse > 0.0, "noise should perturb logits");
        let var = nora_tensor::stats::variance(d.as_slice());
        assert!(mse < var * 5.0, "mse {mse} vs logit var {var}");
    }

    #[test]
    fn stats_cover_all_layers() {
        let model = tiny_model(7);
        let mut analog = AnalogTransformerLm::new(
            &model,
            TileConfig::paper_default().with_tile_size(64, 64),
            &SmoothingMap::new(),
            8,
        );
        analog.forward(&[1, 2, 3, 4]);
        let per_layer = analog.per_layer_stats();
        assert_eq!(per_layer.len(), 6); // 1 block × 6 linears
        assert!(per_layer.iter().all(|(_, s)| s.samples > 0));
        let total = analog.stats();
        assert_eq!(
            total.samples,
            per_layer.iter().map(|(_, s)| s.samples).sum::<u64>()
        );
        analog.reset_stats();
        assert_eq!(analog.stats().samples, 0);
    }

    #[test]
    fn layer_filter_maps_only_selected_layers() {
        let model = tiny_model(11);
        let only = LinearId::new(0, LinearKind::Fc1);
        let mut partial = AnalogTransformerLm::with_layer_filter(
            &model,
            TileConfig::ideal(),
            &SmoothingMap::new(),
            12,
            |id| id == only,
        );
        assert_eq!(partial.analog_layer_count(), 1);
        // Ideal tiles + digital fallback ⇒ still exact.
        let tokens = [1usize, 5, 9];
        let d = model.forward(&tokens);
        assert!(partial.forward(&tokens).mse(&d) < 1e-10);
        assert_eq!(partial.per_layer_stats().len(), 1);
        assert_eq!(partial.per_layer_stats()[0].0, only);
    }

    #[test]
    fn empty_filter_is_fully_digital() {
        let model = tiny_model(13);
        let mut none = AnalogTransformerLm::with_layer_filter(
            &model,
            TileConfig::paper_default(),
            &SmoothingMap::new(),
            14,
            |_| false,
        );
        assert_eq!(none.analog_layer_count(), 0);
        let tokens = [3usize, 1, 4];
        // No analog layer: forward must be bit-exact digital.
        assert_eq!(none.forward(&tokens), model.forward(&tokens));
    }

    #[test]
    fn unprogrammable_layers_degrade_to_digital_instead_of_aborting() {
        let model = tiny_model(15);
        let mut cfg = TileConfig::paper_default().with_tile_size(64, 64);
        cfg.fault_plan = Some(nora_cim::FaultPlan {
            seed: 1,
            programming_failure: 1.0, // every attempt fails, no recovery policy
            ..nora_cim::FaultPlan::none()
        });
        let mut analog = AnalogTransformerLm::new(&model, cfg.clone(), &SmoothingMap::new(), 16);
        assert_eq!(analog.analog_layer_count(), 0);
        assert_eq!(analog.degraded_layers().len(), 6);
        assert!(analog
            .degraded_layers()
            .iter()
            .all(|(_, e)| matches!(e, CimError::ProgrammingFailed { .. })));
        // Fully degraded ⇒ bit-exact digital execution.
        let tokens = [2usize, 7, 1];
        assert_eq!(analog.forward(&tokens), model.forward(&tokens));
        // Strict construction surfaces the same failure as an error.
        assert!(matches!(
            AnalogTransformerLm::try_new(&model, cfg, &SmoothingMap::new(), 16),
            Err(CimError::ProgrammingFailed { .. })
        ));
    }

    #[test]
    fn protected_deployment_recovers_dead_tiles_in_field() {
        let model = tiny_model(17);
        let mut cfg = TileConfig::paper_default().with_tile_size(16, 17);
        cfg.fault_plan = Some(nora_cim::FaultPlan {
            seed: 2,
            tile_dropout: 1.0, // every physical tile is dead
            ..nora_cim::FaultPlan::none()
        });
        cfg.fault_tolerance = nora_cim::FaultTolerance::protected();
        let mut analog = AnalogTransformerLm::new(&model, cfg, &SmoothingMap::new(), 18);
        assert_eq!(analog.analog_layer_count(), 6);
        assert!(analog.degraded_layers().is_empty());
        let tokens = [1usize, 3, 5, 2];
        let y = analog.forward(&tokens);
        assert!(y.as_slice().iter().all(|v| v.is_finite()));
        // The silent-tile detector must have condemned every slot to exact
        // digital fallback, so a second forward matches the digital model.
        let events = analog.fault_events();
        assert!(!events.is_empty());
        assert!(events
            .iter()
            .any(|(_, e)| matches!(e.kind, nora_cim::TileEventKind::DigitalFallback)));
        assert!(analog.digital_fallback_count() > 0);
        let d = model.forward(&tokens);
        assert!(analog.forward(&tokens).mse(&d) < 1e-9);
        assert!(analog
            .tile_health()
            .iter()
            .flat_map(|(_, hs)| hs.iter())
            .any(|h| h.state == nora_cim::HealthState::Condemned));
    }

    #[test]
    fn healthy_deployment_records_no_fault_events() {
        let model = tiny_model(19);
        let mut cfg = TileConfig::paper_default().with_tile_size(64, 65);
        cfg.fault_tolerance = nora_cim::FaultTolerance::protected();
        let mut analog = AnalogTransformerLm::new(&model, cfg, &SmoothingMap::new(), 20);
        analog.forward(&[4usize, 2, 6, 1]);
        assert!(analog.degraded_layers().is_empty());
        assert!(analog.fault_events().is_empty());
        assert_eq!(analog.spares_used(), 0);
        assert_eq!(analog.digital_fallback_count(), 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let model = tiny_model(9);
        let cfg = TileConfig::paper_default().with_tile_size(64, 64);
        let tokens = [1usize, 2, 3];
        let mut a = AnalogTransformerLm::new(&model, cfg.clone(), &SmoothingMap::new(), 10);
        let mut b = AnalogTransformerLm::new(&model, cfg, &SmoothingMap::new(), 10);
        assert_eq!(a.forward(&tokens), b.forward(&tokens));
    }
}
