//! Training loop: Adam with global-norm gradient clipping.

use crate::corpus::Corpus;
use crate::model::{LinearId, TransformerLm};
use nora_tensor::Matrix;

/// Hyper-parameters of a training run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    /// Number of optimizer steps.
    pub steps: u64,
    /// Sequences per step (gradients are averaged).
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Global gradient-norm clip (0 disables).
    pub grad_clip: f32,
    /// Linear warmup steps for the learning rate.
    pub warmup: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            steps: 300,
            batch_size: 8,
            lr: 3e-3,
            grad_clip: 1.0,
            warmup: 20,
        }
    }
}

/// Summary of a completed training run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainReport {
    /// Mean loss of the first step.
    pub first_loss: f64,
    /// Mean loss of the final step.
    pub final_loss: f64,
    /// Loss trace (one entry per step).
    pub losses: Vec<f64>,
}

/// Trains `model` on episodes drawn from `corpus`.
///
/// Deterministic given the model/corpus states. Returns the loss trace.
///
/// # Panics
///
/// Panics if `steps` or `batch_size` is zero.
///
/// # Example
///
/// ```
/// use nora_nn::corpus::{Corpus, CorpusConfig};
/// use nora_nn::trainer::{train, TrainConfig};
/// use nora_nn::{ModelConfig, TransformerLm};
/// use nora_tensor::rng::Rng;
///
/// let mut corpus = Corpus::new(CorpusConfig::new(16, 16, 0));
/// let mut model = TransformerLm::new(ModelConfig::tiny_for_tests(), &mut Rng::seed_from(0));
/// let report = train(&mut model, &mut corpus, &TrainConfig { steps: 5, ..TrainConfig::default() });
/// assert_eq!(report.losses.len(), 5);
/// ```
pub fn train(model: &mut TransformerLm, corpus: &mut Corpus, cfg: &TrainConfig) -> TrainReport {
    assert!(cfg.steps > 0, "steps must be positive");
    assert!(cfg.batch_size > 0, "batch_size must be positive");
    let mut losses = Vec::with_capacity(cfg.steps as usize);
    for t in 1..=cfg.steps {
        model.zero_grad();
        let mut step_loss = 0.0f64;
        for _ in 0..cfg.batch_size {
            let ep = corpus.episode();
            step_loss += model.loss_and_backward(&ep.tokens);
        }
        step_loss /= cfg.batch_size as f64;

        // Average gradients over the batch.
        let inv = 1.0 / cfg.batch_size as f32;
        for p in model.params_mut() {
            p.scale_grad(inv);
        }
        // Global-norm clipping.
        if cfg.grad_clip > 0.0 {
            let norm: f64 = model
                .params_mut()
                .iter()
                .map(|p| p.grad_sq_sum())
                .sum::<f64>()
                .sqrt();
            if norm > cfg.grad_clip as f64 {
                let scale = (cfg.grad_clip as f64 / norm) as f32;
                for p in model.params_mut() {
                    p.scale_grad(scale);
                }
            }
        }
        // Linear warmup then constant LR.
        let lr = if t <= cfg.warmup {
            cfg.lr * t as f32 / cfg.warmup.max(1) as f32
        } else {
            cfg.lr
        };
        for p in model.params_mut() {
            p.adam_step(lr, 0.9, 0.999, 1e-8, t);
        }
        losses.push(step_loss);
    }
    TrainReport {
        first_loss: losses[0],
        final_loss: *losses.last().unwrap(),
        losses,
    }
}

/// Scope guard that restores a stashed set of linear weights when it goes
/// out of scope — **including by panic**. Noise-injection trainers
/// ([`train_hwa`], [`crate::ste::train_ste`]) perturb weights for the
/// duration of one batch; wrapping the perturb-and-batch section in this
/// guard guarantees a poisoned episode (e.g. an out-of-vocab token panicking
/// mid-batch) cannot leave perturbed weights behind in the caller's model.
pub struct WeightRestore<'a> {
    model: &'a mut TransformerLm,
    ids: &'a [LinearId],
    clean: Vec<Matrix>,
}

impl<'a> WeightRestore<'a> {
    /// Stashes the current (clean) weights of `ids`, to be restored — in
    /// `ids` order — when the guard drops.
    pub fn stash(model: &'a mut TransformerLm, ids: &'a [LinearId]) -> Self {
        let clean = ids
            .iter()
            .map(|&id| model.linear(id).weight.value.clone())
            .collect();
        Self { model, ids, clean }
    }

    /// The guarded model: perturb weights and run batches through this.
    pub fn model(&mut self) -> &mut TransformerLm {
        self.model
    }
}

impl Drop for WeightRestore<'_> {
    fn drop(&mut self) {
        for (&id, w) in self.ids.iter().zip(self.clean.drain(..)) {
            self.model.linear_mut(id).weight.value = w;
        }
    }
}

/// Configuration of hardware-aware (noise-injection) fine-tuning — the
/// established HWA baseline the paper contrasts NORA against ("most
/// previous works require hardware-aware training, which is non-trivial,
/// if not prohibitive for LLMs").
///
/// Follows Joshi et al. (Nat. Comm. 2020): at every step, the
/// analog-mappable weights are perturbed with Gaussian noise before the
/// forward/backward pass; the gradient is applied to the clean weights. The
/// noise std is `weight_noise × max|w_j|` **per column**, mirroring how the
/// analog tile normalises each column by `γ_j` before programming — i.e.
/// the injected noise matches the conductance-relative device noise. The
/// model learns flat minima that tolerate weight-side non-idealities — but
/// nothing in the procedure addresses the IO side, which is the paper's
/// point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HwaConfig {
    /// Underlying optimizer/loop settings.
    pub base: TrainConfig,
    /// Injected weight-noise std relative to each linear's `max|W|`.
    pub weight_noise: f32,
}

/// Hardware-aware fine-tuning: like [`train`], but with per-step Gaussian
/// perturbation of the six analog-mappable linears of every block.
///
/// # Panics
///
/// Panics if `weight_noise` is negative/non-finite, or on [`train`]'s
/// conditions.
pub fn train_hwa(
    model: &mut TransformerLm,
    corpus: &mut Corpus,
    cfg: &HwaConfig,
    seed: u64,
) -> TrainReport {
    assert!(
        cfg.weight_noise.is_finite() && cfg.weight_noise >= 0.0,
        "weight_noise must be finite and >= 0"
    );
    assert!(cfg.base.steps > 0, "steps must be positive");
    assert!(cfg.base.batch_size > 0, "batch_size must be positive");
    let mut noise_rng = nora_tensor::rng::Rng::seed_from(seed ^ 0x45a);
    let ids = model.linear_ids();
    let mut losses = Vec::with_capacity(cfg.base.steps as usize);
    for t in 1..=cfg.base.steps {
        model.zero_grad();
        let mut step_loss = 0.0f64;
        {
            // Perturb inside a restore guard: the clean weights come back
            // when the scope ends, even if a batch panics mid-step.
            let mut guard = WeightRestore::stash(model, &ids);
            for &id in &ids {
                let lin = guard.model().linear_mut(id);
                // Per-column noise scale (the tile's γ_j normalisation).
                let col_max = lin.weight.value.col_abs_max();
                let cols = lin.weight.value.cols();
                for (i, v) in lin.weight.value.as_mut_slice().iter_mut().enumerate() {
                    let sigma = cfg.weight_noise * col_max[i % cols].max(1e-12);
                    *v += noise_rng.normal(0.0, sigma);
                }
            }
            for _ in 0..cfg.base.batch_size {
                let ep = corpus.episode();
                step_loss += guard.model().loss_and_backward(&ep.tokens);
            }
        }
        step_loss /= cfg.base.batch_size as f64;

        let inv = 1.0 / cfg.base.batch_size as f32;
        for p in model.params_mut() {
            p.scale_grad(inv);
        }
        if cfg.base.grad_clip > 0.0 {
            let norm: f64 = model
                .params_mut()
                .iter()
                .map(|p| p.grad_sq_sum())
                .sum::<f64>()
                .sqrt();
            if norm > cfg.base.grad_clip as f64 {
                let scale = (cfg.base.grad_clip as f64 / norm) as f32;
                for p in model.params_mut() {
                    p.scale_grad(scale);
                }
            }
        }
        let lr = if t <= cfg.base.warmup {
            cfg.base.lr * t as f32 / cfg.base.warmup.max(1) as f32
        } else {
            cfg.base.lr
        };
        for p in model.params_mut() {
            p.adam_step(lr, 0.9, 0.999, 1e-8, t);
        }
        losses.push(step_loss);
    }
    TrainReport {
        first_loss: losses[0],
        final_loss: *losses.last().unwrap(),
        losses,
    }
}

/// Last-token prediction accuracy over held-out episodes — the workspace's
/// "Lambada accuracy". The model sees every token but the last and must
/// predict it.
pub fn eval_accuracy(model: &TransformerLm, episodes: &[crate::corpus::Episode]) -> f64 {
    if episodes.is_empty() {
        return 0.0;
    }
    let correct = episodes
        .iter()
        .filter(|ep| {
            let ctx = &ep.tokens[..ep.tokens.len() - 1];
            model.predict_next(ctx) == ep.key
        })
        .count();
    correct as f64 / episodes.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::CorpusConfig;
    use crate::model::ModelConfig;
    use nora_tensor::rng::Rng;

    #[test]
    fn training_reduces_loss_and_learns_induction() {
        let corpus_cfg = CorpusConfig::new(16, 16, 11);
        let mut corpus = Corpus::new(corpus_cfg);
        let model_cfg = ModelConfig {
            vocab: 16,
            max_seq: 16,
            d_model: 32,
            heads: 2,
            d_ff: 64,
            layers: 2,
        };
        let mut model = TransformerLm::new(model_cfg, &mut Rng::seed_from(12));
        let report = train(
            &mut model,
            &mut corpus,
            &TrainConfig {
                steps: 400,
                batch_size: 8,
                lr: 3e-3,
                grad_clip: 1.0,
                warmup: 20,
            },
        );
        assert!(
            report.final_loss < report.first_loss * 0.7,
            "loss {} → {}",
            report.first_loss,
            report.final_loss
        );
        let eval = corpus.episodes(100);
        let acc = eval_accuracy(&model, &eval);
        assert!(acc > 0.5, "induction accuracy {acc}");
    }

    #[test]
    fn hwa_training_still_learns_and_hardens_against_weight_noise() {
        let corpus_cfg = CorpusConfig::new(16, 16, 13);
        let model_cfg = ModelConfig {
            vocab: 16,
            max_seq: 16,
            d_model: 32,
            heads: 2,
            d_ff: 64,
            layers: 2,
        };
        let base = TrainConfig {
            steps: 600,
            batch_size: 8,
            lr: 3e-3,
            grad_clip: 1.0,
            warmup: 20,
        };
        // Train a standard and an HWA model from the same init/corpus.
        let mut std_model = TransformerLm::new(model_cfg, &mut Rng::seed_from(14));
        let mut std_corpus = Corpus::new(corpus_cfg);
        train(&mut std_model, &mut std_corpus, &base);

        let mut hwa_model = TransformerLm::new(model_cfg, &mut Rng::seed_from(14));
        let mut hwa_corpus = Corpus::new(corpus_cfg);
        let report = train_hwa(
            &mut hwa_model,
            &mut hwa_corpus,
            &HwaConfig {
                base,
                weight_noise: 0.05,
            },
            7,
        );
        assert!(report.final_loss < report.first_loss);

        // HWA trades clean accuracy for a flatter degradation curve: at
        // heavy weight perturbation (well beyond the training noise) it
        // must beat the standard model, averaged over perturbation draws.
        let eval = std_corpus.episodes(100);
        let perturbed_acc = |model: &TransformerLm, rng: &mut Rng, pert: f32| -> f64 {
            let mut acc = 0.0;
            let draws = 6;
            for _ in 0..draws {
                let mut noisy = model.clone();
                for id in noisy.linear_ids() {
                    let lin = noisy.linear_mut(id);
                    let sigma = pert * lin.weight.value.abs_max();
                    for v in lin.weight.value.as_mut_slice() {
                        *v += rng.normal(0.0, sigma);
                    }
                }
                acc += eval_accuracy(&noisy, &eval);
            }
            acc / draws as f64
        };
        let std_acc = perturbed_acc(&std_model, &mut Rng::seed_from(15), 0.25);
        let hwa_acc = perturbed_acc(&hwa_model, &mut Rng::seed_from(15), 0.25);
        assert!(
            hwa_acc > std_acc,
            "hwa {hwa_acc} should beat std {std_acc} at heavy weight noise"
        );
    }

    /// A batch that panics mid-step (here: an out-of-vocab token from a
    /// corpus wider than the model's vocabulary) must not leave the model
    /// with perturbed weights — the [`WeightRestore`] guard restores them
    /// during unwinding.
    #[test]
    fn poisoned_batch_cannot_leave_perturbed_weights_behind() {
        let mut model =
            TransformerLm::new(ModelConfig::tiny_for_tests(), &mut Rng::seed_from(8));
        // Model vocab is 16; a vocab-32 corpus emits tokens the embedding
        // rejects, poisoning the very first batch.
        let mut corpus = Corpus::new(CorpusConfig::new(32, 16, 3));
        let before: Vec<_> = model
            .linear_ids()
            .iter()
            .map(|&id| model.linear(id).weight.value.clone())
            .collect();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            train_hwa(
                &mut model,
                &mut corpus,
                &HwaConfig {
                    base: TrainConfig {
                        steps: 1,
                        ..TrainConfig::default()
                    },
                    weight_noise: 0.5,
                },
                1,
            )
        }));
        assert!(result.is_err(), "out-of-vocab token must panic the batch");
        for (&id, w) in model.linear_ids().iter().zip(&before) {
            assert_eq!(
                model.linear(id).weight.value.as_slice(),
                w.as_slice(),
                "{id:?} left perturbed after a poisoned batch"
            );
        }
    }

    #[test]
    fn eval_accuracy_of_empty_is_zero() {
        let model = TransformerLm::new(ModelConfig::tiny_for_tests(), &mut Rng::seed_from(0));
        assert_eq!(eval_accuracy(&model, &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "steps must be positive")]
    fn zero_steps_panics() {
        let mut corpus = Corpus::new(CorpusConfig::new(16, 16, 0));
        let mut model =
            TransformerLm::new(ModelConfig::tiny_for_tests(), &mut Rng::seed_from(0));
        train(
            &mut model,
            &mut corpus,
            &TrainConfig {
                steps: 0,
                ..TrainConfig::default()
            },
        );
    }
}
