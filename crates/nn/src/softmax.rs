//! Softmax and cross-entropy loss.

use nora_tensor::Matrix;

/// Numerically-stable softmax applied to each row.
pub fn softmax_rows(x: &Matrix) -> Matrix {
    let mut y = x.clone();
    for i in 0..y.rows() {
        let row = y.row_mut(i);
        let max = row.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v));
        let mut sum = 0.0f32;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        if sum > 0.0 {
            for v in row.iter_mut() {
                *v /= sum;
            }
        }
    }
    y
}

/// Mean cross-entropy of `logits` (`n × vocab`) against integer `targets`
/// plus the gradient `d loss / d logits` (already divided by `n`).
///
/// # Panics
///
/// Panics if `targets.len() != logits.rows()` or any target is out of
/// vocabulary range.
pub fn cross_entropy(logits: &Matrix, targets: &[usize]) -> (f64, Matrix) {
    assert_eq!(targets.len(), logits.rows(), "target count mismatch");
    let vocab = logits.cols();
    let n = targets.len();
    let probs = softmax_rows(logits);
    let mut grad = probs.clone();
    let mut loss = 0.0f64;
    for (i, &t) in targets.iter().enumerate() {
        assert!(t < vocab, "target {t} out of vocab {vocab}");
        let p = probs[(i, t)].max(1e-12);
        loss -= (p as f64).ln();
        grad[(i, t)] -= 1.0;
    }
    grad.scale_assign(1.0 / n as f32);
    (loss / n as f64, grad)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nora_tensor::rng::Rng;

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut rng = Rng::seed_from(1);
        let x = Matrix::random_normal(5, 10, 0.0, 3.0, &mut rng);
        let p = softmax_rows(&x);
        for i in 0..5 {
            let s: f32 = p.row(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
            assert!(p.row(i).iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn softmax_is_shift_invariant_and_stable() {
        let x = Matrix::from_rows(&[&[1000.0, 1001.0, 999.0]]);
        let p = softmax_rows(&x);
        assert!(p.as_slice().iter().all(|v| v.is_finite()));
        let y = Matrix::from_rows(&[&[0.0, 1.0, -1.0]]);
        let q = softmax_rows(&y);
        assert!(p.mse(&q) < 1e-10);
    }

    #[test]
    fn cross_entropy_of_perfect_prediction_is_small() {
        let mut logits = Matrix::zeros(1, 4);
        logits[(0, 2)] = 50.0;
        let (loss, _) = cross_entropy(&logits, &[2]);
        assert!(loss < 1e-6);
    }

    #[test]
    fn cross_entropy_uniform_is_log_vocab() {
        let logits = Matrix::zeros(3, 8);
        let (loss, _) = cross_entropy(&logits, &[0, 3, 7]);
        assert!((loss - (8.0f64).ln()).abs() < 1e-6);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let mut rng = Rng::seed_from(2);
        let logits = Matrix::random_normal(2, 5, 0.0, 1.0, &mut rng);
        let targets = [1usize, 4];
        let (_, grad) = cross_entropy(&logits, &targets);
        let eps = 1e-3f32;
        for &(r, c) in &[(0usize, 1usize), (0, 0), (1, 4), (1, 2)] {
            let mut lp = logits.clone();
            lp[(r, c)] += eps;
            let mut lm = logits.clone();
            lm[(r, c)] -= eps;
            let (fp, _) = cross_entropy(&lp, &targets);
            let (fm, _) = cross_entropy(&lm, &targets);
            let num = (fp - fm) / (2.0 * eps as f64);
            let ana = grad[(r, c)] as f64;
            assert!((num - ana).abs() < 1e-4, "grad[{r},{c}] num {num} ana {ana}");
        }
    }

    #[test]
    fn gradient_rows_sum_to_zero() {
        let mut rng = Rng::seed_from(3);
        let logits = Matrix::random_normal(3, 6, 0.0, 2.0, &mut rng);
        let (_, grad) = cross_entropy(&logits, &[0, 5, 2]);
        for i in 0..3 {
            let s: f32 = grad.row(i).iter().sum();
            assert!(s.abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "out of vocab")]
    fn bad_target_panics() {
        cross_entropy(&Matrix::zeros(1, 3), &[3]);
    }
}
