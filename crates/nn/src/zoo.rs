//! Model zoo: LLM-family stand-ins with function-preserving outlier
//! injection.
//!
//! The NORA paper evaluates OPT (1.3b–13b), LLaMA-2/3 and Mistral
//! checkpoints. What NORA actually interacts with is the *statistical shape*
//! of each family's activations at the analog-mapped linears: a fixed set of
//! channels carries outliers tens of times larger than the bulk (activation
//! kurtosis ≈ 113 in the paper's Fig. 4) while weights stay tight
//! (kurtosis ≈ 1.25). This module reproduces that shape on in-repo trained
//! transformers via **outlier injection**: selected channels are scaled up
//! at their producer (LayerNorm gain, FFN hidden unit, or value projection)
//! and compensated exactly at every consumer weight row. Because every
//! compensated path is linear or positively homogeneous (ReLU), the FP32
//! network function is unchanged — the digital baseline accuracy stays
//! exact, while the analog mapping now faces genuine LLM-style outliers.
//!
//! Family severity presets:
//!
//! * [`ModelFamily::OptLike`] — many channels, large factors → extremely
//!   heavy-tailed activations; quantization-sensitive (paper Fig. 3a–b).
//! * [`ModelFamily::LlamaLike`] / [`ModelFamily::MistralLike`] — fewer,
//!   milder outliers → quantization-robust but still additive-noise
//!   sensitive, matching the paper's contrast.

use crate::corpus::{Corpus, CorpusConfig};
use crate::model::{ModelConfig, TransformerLm};
use crate::ste::{train_ste, SteConfig};
use crate::trainer::{train, TrainConfig, TrainReport};
use nora_tensor::rng::Rng;

/// LLM family whose activation statistics a zoo model imitates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelFamily {
    /// OPT-style: severe, widespread activation outliers.
    OptLike,
    /// LLaMA-style: mild outliers.
    LlamaLike,
    /// Mistral-style: moderate outliers.
    MistralLike,
}

impl ModelFamily {
    /// The outlier-injection severity for this family.
    pub fn outlier_spec(self) -> OutlierSpec {
        match self {
            ModelFamily::OptLike => OutlierSpec {
                channel_fraction: 0.06,
                factor_min: 30.0,
                factor_max: 70.0,
            },
            ModelFamily::LlamaLike => OutlierSpec {
                channel_fraction: 0.03,
                factor_min: 6.0,
                factor_max: 12.0,
            },
            ModelFamily::MistralLike => OutlierSpec {
                channel_fraction: 0.04,
                factor_min: 8.0,
                factor_max: 18.0,
            },
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            ModelFamily::OptLike => "opt-like",
            ModelFamily::LlamaLike => "llama-like",
            ModelFamily::MistralLike => "mistral-like",
        }
    }
}

/// Severity of the outlier injection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OutlierSpec {
    /// Fraction of channels per site that become outlier channels.
    pub channel_fraction: f32,
    /// Minimum scale factor applied to an outlier channel.
    pub factor_min: f32,
    /// Maximum scale factor applied to an outlier channel.
    pub factor_max: f32,
}

impl OutlierSpec {
    /// A spec that injects nothing.
    pub fn none() -> Self {
        Self {
            channel_fraction: 0.0,
            factor_min: 1.0,
            factor_max: 1.0,
        }
    }

    fn pick(&self, n: usize, rng: &mut Rng) -> Vec<(usize, f32)> {
        let count = ((n as f32 * self.channel_fraction).round() as usize).min(n);
        rng.sample_indices(n, count)
            .into_iter()
            .map(|c| (c, rng.uniform(self.factor_min, self.factor_max)))
            .collect()
    }
}

/// Injects outlier channels into `model`, exactly preserving its FP32
/// function.
///
/// Four sites per block receive outliers (all feed analog-mapped linears):
///
/// 1. attention input (LN1 gain ↑, q/k/v weight rows ↓),
/// 2. FFN input (LN2 gain ↑, fc1 weight rows ↓),
/// 3. FFN hidden units (fc1 columns+bias ↑, fc2 rows ↓ — exact through
///    ReLU's positive homogeneity),
/// 4. attention context (v-projection columns+bias ↑, out-projection
///    rows ↓ — exact because attention is linear in V).
///
/// # Example
///
/// ```
/// use nora_nn::zoo::{inject_outliers, ModelFamily};
/// use nora_nn::{ModelConfig, TransformerLm};
/// use nora_tensor::rng::Rng;
///
/// let mut model = TransformerLm::new(ModelConfig::tiny_for_tests(), &mut Rng::seed_from(0));
/// let before = model.forward(&[1, 2, 3]);
/// inject_outliers(&mut model, &ModelFamily::OptLike.outlier_spec(), 7);
/// let after = model.forward(&[1, 2, 3]);
/// assert!(before.mse(&after) < 1e-6); // FP32 function preserved
/// ```
pub fn inject_outliers(model: &mut TransformerLm, spec: &OutlierSpec, seed: u64) {
    if spec.channel_fraction <= 0.0 {
        return;
    }
    assert!(
        spec.factor_min >= 1.0 && spec.factor_max >= spec.factor_min,
        "outlier factors must be >= 1 and ordered"
    );
    let mut rng = Rng::seed_from(seed ^ 0x6f75_746c); // "outl"
    let d = model.config().d_model;
    let d_ff = model.config().d_ff;
    for b in 0..model.blocks.len() {
        // Site 1: attention input.
        for (c, f) in spec.pick(d, &mut rng) {
            let block = &mut model.blocks[b];
            block.ln1.gain.value[(0, c)] *= f;
            block.ln1.bias.value[(0, c)] *= f;
            let inv = 1.0 / f;
            block.attn.wq.weight.value.scale_row(c, inv);
            block.attn.wk.weight.value.scale_row(c, inv);
            block.attn.wv.weight.value.scale_row(c, inv);
        }
        // Site 2: FFN input.
        for (c, f) in spec.pick(d, &mut rng) {
            let block = &mut model.blocks[b];
            block.ln2.gain.value[(0, c)] *= f;
            block.ln2.bias.value[(0, c)] *= f;
            block.fc1.weight.value.scale_row(c, 1.0 / f);
        }
        // Site 3: FFN hidden (through ReLU).
        for (h, f) in spec.pick(d_ff, &mut rng) {
            let block = &mut model.blocks[b];
            block.fc1.weight.value.scale_col(h, f);
            block.fc1.bias.value[(0, h)] *= f;
            block.fc2.weight.value.scale_row(h, 1.0 / f);
        }
        // Site 4: attention context (value channels).
        for (c, f) in spec.pick(d, &mut rng) {
            let block = &mut model.blocks[b];
            block.attn.wv.weight.value.scale_col(c, f);
            block.attn.wv.bias.value[(0, c)] *= f;
            block.attn.wo.weight.value.scale_row(c, 1.0 / f);
        }
    }
}

/// A trained, outlier-injected zoo model plus its corpus.
#[derive(Debug, Clone)]
pub struct ZooModel {
    /// Display name, e.g. `"opt-6.7b-sim"`.
    pub name: String,
    /// The family whose statistics it imitates.
    pub family: ModelFamily,
    /// The trained model (outliers already injected).
    pub model: TransformerLm,
    /// The corpus it was trained on (generator state advanced past the
    /// training stream; draw held-out episodes from here).
    pub corpus: Corpus,
    /// Training report.
    pub report: TrainReport,
}

/// Hardware-aware STE fine-tuning stage appended to a zoo build — produces
/// a "trained-robust" checkpoint that has seen the deploy grids and noise
/// laws during training (see [`crate::ste`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RobustSpec {
    /// STE fine-tuning steps (appended after the base training stream).
    pub steps: u64,
    /// Fine-tuning learning rate (typically ~10% of the base rate).
    pub lr: f32,
    /// Multiplier on the sampled programming/read noise σ.
    pub noise_scale: f32,
}

impl RobustSpec {
    /// The default fine-tuning recipe derived from a base training config:
    /// half the steps, a tenth of the learning rate, deploy-exact noise.
    pub fn default_for(base: &TrainConfig) -> Self {
        Self {
            steps: (base.steps / 2).max(1),
            lr: base.lr * 0.1,
            noise_scale: 1.0,
        }
    }
}

/// Build specification for one zoo model.
#[derive(Debug, Clone)]
pub struct ZooSpec {
    /// Display name.
    pub name: String,
    /// Family (controls outlier severity).
    pub family: ModelFamily,
    /// Architecture.
    pub model: ModelConfig,
    /// Corpus parameters.
    pub corpus: CorpusConfig,
    /// Training parameters.
    pub train: TrainConfig,
    /// Optional hardware-aware STE fine-tuning stage, run after outlier
    /// injection on the paper-default tile (continues the same corpus
    /// stream).
    pub robust: Option<RobustSpec>,
    /// Master seed.
    pub seed: u64,
}

impl ZooSpec {
    /// Builds (trains + injects) the model.
    pub fn build(&self) -> ZooModel {
        let mut rng = Rng::seed_from(self.seed);
        let mut corpus = Corpus::new(self.corpus);
        let mut model = TransformerLm::new(self.model, &mut rng);
        let mut report = train(&mut model, &mut corpus, &self.train);
        inject_outliers(&mut model, &self.family.outlier_spec(), self.seed ^ 0xabcd);
        if let Some(robust) = &self.robust {
            // Hardware-aware fine-tuning into the deploy grids/noise, on
            // the outlier-shaped model the analog mapping will actually see.
            let ste_cfg = SteConfig {
                base: TrainConfig {
                    steps: robust.steps,
                    lr: robust.lr,
                    ..self.train
                },
                noise_scale: robust.noise_scale,
                ..SteConfig::default()
            };
            let ste_report = train_ste(&mut model, &mut corpus, &ste_cfg, self.seed ^ 0x57e0);
            report.final_loss = ste_report.final_loss;
            report.losses.extend(ste_report.losses);
        }
        ZooModel {
            name: self.name.clone(),
            family: self.family,
            model,
            corpus,
            report,
        }
    }
}

impl ZooSpec {
    /// Like [`ZooSpec::build`] but caches the trained model under `dir`.
    ///
    /// On a cache hit the corpus generator is fast-forwarded past the
    /// training stream so that held-out episodes drawn afterwards are
    /// identical to the fresh-build case.
    ///
    /// # Panics
    ///
    /// Panics on unrecoverable filesystem errors while writing the cache
    /// (a corrupt or unreadable cache entry is silently rebuilt).
    pub fn build_cached(&self, dir: &std::path::Path) -> ZooModel {
        let c = &self.model;
        // Robust (STE fine-tuned) builds get their own cache entries; the
        // suffix is empty for plain builds so existing cache keys survive.
        let robust_key = match &self.robust {
            Some(r) => format!("-hwa{}lr{}ns{}", r.steps, r.lr, r.noise_scale),
            None => String::new(),
        };
        let key = format!(
            "{}-v{}l{}d{}h{}f{}s{}-st{}b{}lr{}-seed{}{}.nora",
            self.name,
            c.vocab,
            c.layers,
            c.d_model,
            c.heads,
            c.d_ff,
            c.max_seq,
            self.train.steps,
            self.train.batch_size,
            self.train.lr,
            self.seed,
            robust_key
        );
        let path = dir.join(key);
        if let Ok((model, meta)) = crate::serialize::load_from_path(&path) {
            if *model.config() == self.model {
                let mut corpus = Corpus::new(self.corpus);
                // Fast-forward past the training stream (base + any STE
                // fine-tuning stage).
                let robust_steps =
                    self.robust.map_or(0, |r| r.steps) as usize;
                let consumed =
                    (self.train.steps as usize + robust_steps) * self.train.batch_size;
                for _ in 0..consumed {
                    corpus.episode();
                }
                return ZooModel {
                    name: self.name.clone(),
                    family: self.family,
                    model,
                    corpus,
                    report: TrainReport {
                        first_loss: meta.first_loss,
                        final_loss: meta.final_loss,
                        losses: Vec::new(),
                    },
                };
            }
        }
        let built = self.build();
        crate::serialize::save_to_path(
            &built.model,
            crate::serialize::SavedMeta {
                first_loss: built.report.first_loss,
                final_loss: built.report.final_loss,
            },
            &path,
        )
        .expect("writing model cache");
        built
    }
}

fn preset(
    name: &str,
    family: ModelFamily,
    layers: usize,
    d_model: usize,
    seed: u64,
) -> ZooSpec {
    let vocab = 48;
    let seq = 32;
    ZooSpec {
        name: name.to_string(),
        family,
        model: ModelConfig {
            vocab,
            max_seq: seq,
            d_model,
            heads: 4,
            d_ff: 4 * d_model,
            layers,
        },
        corpus: CorpusConfig::new(vocab, seq, seed ^ 0xc0),
        train: TrainConfig {
            steps: 2500,
            batch_size: 8,
            lr: 3e-3,
            grad_clip: 1.0,
            warmup: 50,
        },
        robust: None,
        seed,
    }
}

/// Derives the hardware-aware trained-robust variant of a zoo spec: the
/// same architecture, corpus and seed, with an STE fine-tuning stage
/// appended and `-robust` suffixed to the name. `robust = None` uses
/// [`RobustSpec::default_for`] the spec's base training config.
pub fn robust_variant(spec: &ZooSpec, robust: Option<RobustSpec>) -> ZooSpec {
    let mut out = spec.clone();
    out.name = format!("{}-robust", spec.name);
    out.robust = Some(robust.unwrap_or_else(|| RobustSpec::default_for(&spec.train)));
    out
}

/// The four OPT-like presets standing in for OPT-1.3b/2.7b/6.7b/13b.
///
/// Absolute parameter counts are scaled down ~10⁴×; what grows across the
/// series (depth, width) mirrors the real family's scaling so that
/// size-dependent trends survive.
pub fn opt_presets() -> Vec<ZooSpec> {
    vec![
        preset("opt-1.3b-sim", ModelFamily::OptLike, 2, 48, 101),
        preset("opt-2.7b-sim", ModelFamily::OptLike, 2, 64, 102),
        preset("opt-6.7b-sim", ModelFamily::OptLike, 3, 80, 103),
        preset("opt-13b-sim", ModelFamily::OptLike, 4, 96, 104),
    ]
}

/// LLaMA-2-7B, LLaMA-3-8B and Mistral-7B-v1.0 stand-ins (Table III's
/// models).
pub fn other_presets() -> Vec<ZooSpec> {
    vec![
        preset("llama2-7b-sim", ModelFamily::LlamaLike, 3, 80, 201),
        preset("llama3-8b-sim", ModelFamily::LlamaLike, 3, 88, 202),
        preset("mistral-7b-sim", ModelFamily::MistralLike, 3, 80, 203),
    ]
}

/// A fast-to-train spec for tests and examples.
pub fn tiny_spec(family: ModelFamily, seed: u64) -> ZooSpec {
    ZooSpec {
        name: format!("{}-tiny", family.name()),
        family,
        model: ModelConfig {
            vocab: 16,
            max_seq: 16,
            d_model: 32,
            heads: 2,
            d_ff: 64,
            layers: 2,
        },
        corpus: CorpusConfig::new(16, 16, seed ^ 0xc0),
        train: TrainConfig {
            steps: 600,
            batch_size: 8,
            lr: 3e-3,
            grad_clip: 1.0,
            warmup: 20,
        },
        robust: None,
        seed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{LinearId, LinearKind};
    use nora_tensor::stats;

    #[test]
    fn injection_preserves_function_exactly() {
        let mut rng = Rng::seed_from(1);
        let cfg = ModelConfig::tiny_for_tests();
        let model = TransformerLm::new(cfg, &mut rng);
        let tokens: Vec<usize> = vec![2, 5, 9, 1, 7, 3];
        let before = model.forward(&tokens);
        let mut injected = model.clone();
        inject_outliers(
            &mut injected,
            &ModelFamily::OptLike.outlier_spec(),
            42,
        );
        let after = injected.forward(&tokens);
        // Exact in real arithmetic; tiny f32 rounding differences allowed.
        let rel = before.mse(&after) / stats::variance(before.as_slice()).max(1e-12);
        assert!(rel < 1e-8, "relative mse {rel}");
    }

    #[test]
    fn injection_raises_activation_kurtosis() {
        let mut rng = Rng::seed_from(2);
        let cfg = ModelConfig {
            d_model: 64,
            d_ff: 128,
            ..ModelConfig::tiny_for_tests()
        };
        let model = TransformerLm::new(cfg, &mut rng);
        let tokens: Vec<usize> = (0..16).map(|i| 2 + (i * 3) % 14).collect();

        let act_kurtosis = |m: &TransformerLm| {
            let mut acts: Vec<f32> = Vec::new();
            m.forward_observed(&tokens, &mut |id: LinearId, x| {
                if id.kind == LinearKind::Q && id.block == 0 {
                    acts.extend_from_slice(x.as_slice());
                }
            });
            stats::kurtosis(&acts)
        };
        let base = act_kurtosis(&model);
        let mut injected = model.clone();
        inject_outliers(&mut injected, &ModelFamily::OptLike.outlier_spec(), 7);
        let spiked = act_kurtosis(&injected);
        assert!(
            spiked > base * 5.0 && spiked > 20.0,
            "kurtosis {base} → {spiked}"
        );
    }

    #[test]
    fn opt_like_is_heavier_tailed_than_llama_like() {
        let opt = ModelFamily::OptLike.outlier_spec();
        let llama = ModelFamily::LlamaLike.outlier_spec();
        assert!(opt.channel_fraction > llama.channel_fraction);
        assert!(opt.factor_max > llama.factor_max);
    }

    #[test]
    fn none_spec_is_identity() {
        let mut rng = Rng::seed_from(3);
        let model = TransformerLm::new(ModelConfig::tiny_for_tests(), &mut rng);
        let mut copy = model.clone();
        inject_outliers(&mut copy, &OutlierSpec::none(), 0);
        let tokens = [1usize, 2, 3];
        assert_eq!(model.forward(&tokens), copy.forward(&tokens));
    }

    #[test]
    fn tiny_zoo_model_trains_and_keeps_function_after_injection() {
        let spec = tiny_spec(ModelFamily::MistralLike, 55);
        let zoo = spec.build();
        assert!(zoo.report.final_loss < zoo.report.first_loss);
        // Accuracy on held-out episodes should be decent for the tiny task.
        let mut corpus = zoo.corpus.clone();
        let eval = corpus.episodes(60);
        let acc = crate::trainer::eval_accuracy(&zoo.model, &eval);
        assert!(acc > 0.5, "accuracy {acc}");
    }

    #[test]
    fn build_cached_round_trips_and_keeps_corpus_position() {
        let dir = std::env::temp_dir().join("nora-zoo-cache-test");
        std::fs::remove_dir_all(&dir).ok();
        let spec = tiny_spec(ModelFamily::LlamaLike, 77);
        let mut fresh = spec.build_cached(&dir); // miss: trains + saves
        let mut cached = spec.build_cached(&dir); // hit: loads
        let tokens = [1usize, 2, 3, 4];
        assert_eq!(fresh.model.forward(&tokens), cached.model.forward(&tokens));
        // Corpus fast-forward must leave both generators at the same point.
        assert_eq!(fresh.corpus.episode(), cached.corpus.episode());
        assert_eq!(fresh.report.final_loss, cached.report.final_loss);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// The robust variant trains (STE stage included), still predicts well,
    /// ends with no STE attachments, and round-trips through the cache with
    /// the corpus fast-forwarded past both training stages.
    #[test]
    fn robust_variant_builds_and_caches() {
        let dir = std::env::temp_dir().join("nora-zoo-robust-cache-test");
        std::fs::remove_dir_all(&dir).ok();
        let base = tiny_spec(ModelFamily::OptLike, 91);
        let spec = robust_variant(
            &base,
            Some(RobustSpec {
                steps: 120,
                lr: 3e-4,
                noise_scale: 1.0,
            }),
        );
        assert_eq!(spec.name, "opt-like-tiny-robust");
        let mut fresh = spec.build_cached(&dir);
        assert!(fresh.report.final_loss < fresh.report.first_loss);
        for id in fresh.model.linear_ids() {
            assert!(fresh.model.linear(id).ste.is_none());
        }
        let eval = fresh.corpus.clone().episodes(60);
        let acc = crate::trainer::eval_accuracy(&fresh.model, &eval);
        assert!(acc > 0.4, "robust accuracy {acc}");
        let mut cached = spec.build_cached(&dir);
        let tokens = [1usize, 2, 3, 4];
        assert_eq!(fresh.model.forward(&tokens), cached.model.forward(&tokens));
        assert_eq!(fresh.corpus.episode(), cached.corpus.episode());
        // The robust build must not collide with the base cache entry.
        let plain = base.build_cached(&dir);
        assert_ne!(
            plain.model.forward(&tokens),
            cached.model.forward(&tokens),
            "robust fine-tuning must change the checkpoint"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn params_and_params_mut_agree_in_order() {
        let mut rng = Rng::seed_from(9);
        let mut model = TransformerLm::new(ModelConfig::tiny_for_tests(), &mut rng);
        let shapes: Vec<(usize, usize)> =
            model.params().iter().map(|p| p.value.shape()).collect();
        let shapes_mut: Vec<(usize, usize)> =
            model.params_mut().iter().map(|p| p.value.shape()).collect();
        assert_eq!(shapes, shapes_mut);
    }

    #[test]
    fn presets_are_well_formed() {
        for spec in opt_presets().into_iter().chain(other_presets()) {
            assert!(spec.model.validate().is_ok(), "{}", spec.name);
            assert!(spec.model.max_seq >= spec.corpus.seq_len);
            assert_eq!(spec.model.vocab, spec.corpus.vocab);
        }
    }
}
