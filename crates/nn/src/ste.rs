//! Straight-through hardware-aware (STE) fine-tuning.
//!
//! NORA rescales a *frozen* model around analog non-idealities; this module
//! implements the competing (and composable) recipe: train the model *into*
//! the noise. Every analog-mappable linear's training forward runs its
//! activations through the deploy-path DAC mid-rise grid and its weights
//! through the programming grid, with per-step programming and read noise
//! sampled from the same [`nora_cim`] noise laws the tile simulator uses.
//! Gradients pass straight through the quantizers (Bengio et al.'s
//! straight-through estimator), with clip-aware masking: exact at interior
//! grid points, zeroed where the DAC clipped an input at the rails.
//!
//! Grid sharing is structural, not by convention: the DAC comes from
//! [`TileConfig::input_dac`] and the weight grid from
//! [`TileConfig::weight_quantizer`] — the very constructors
//! [`nora_cim::AnalogTile`] programs and converts with — so the
//! fake-quantized training forward is bit-identical to the deploy grids on
//! the same inputs, with no duplicated constants.
//!
//! # Determinism contract
//!
//! Training is bit-identical at any `NORA_THREADS` setting and under any
//! attached recorder: the per-step weight noise is drawn from counter-keyed
//! streams (`Rng::from_key([seed, STE_STREAM, step, layer])`), a pure
//! function of the draw site rather than of execution order, and every
//! matmul in the forward/backward obeys the workspace's ordered-merge
//! parallel contract.

use crate::corpus::Corpus;
use crate::model::{LinearId, TransformerLm};
use crate::trainer::{TrainConfig, TrainReport, WeightRestore};
use nora_cim::converter::Dac;
use nora_cim::{NoiseManagement, TileConfig};
use nora_tensor::rng::Rng;
use nora_tensor::Matrix;

/// Domain-separation constant for the counter-keyed STE noise streams.
pub const STE_STREAM: u64 = 0x5354_4531; // "STE1"

/// Deploy-grid fake quantization of a linear layer's inputs.
///
/// Carries the tile's input DAC and noise-management law; attached to
/// [`crate::DigitalLinear::ste`] during [`train_ste`] so the training
/// forward sees exactly the conversion the analog deployment applies:
/// per-row `α` from the configured noise management, `x̃ = α · f_dac(x/α)`.
#[derive(Debug, Clone)]
pub struct SteQuant {
    dac: Dac,
    nm: NoiseManagement,
}

impl SteQuant {
    /// Builds the fake quantizer from a tile configuration, sharing the
    /// DAC grid and `α` law with the simulator.
    pub fn from_tile(config: &TileConfig) -> Self {
        Self {
            dac: config.input_dac(),
            nm: config.noise_management,
        }
    }

    /// The shared input DAC.
    pub fn dac(&self) -> &Dac {
        &self.dac
    }

    /// Fake-quantizes a batch of activations through the deploy DAC grid.
    ///
    /// Per row: `α = nm.alpha(row)`, divide, [`Dac::convert_slice`],
    /// multiply back by `α`. Rows with `α ≤ 0` (all-zero under `AbsMax`) or
    /// NaN `α` convert to zero, mirroring the tile's short-circuit.
    pub fn fake_quantize(&self, x: &Matrix) -> Matrix {
        let mut out = x.clone();
        for i in 0..out.rows() {
            let row = out.row_mut(i);
            let alpha = self.nm.alpha(row);
            if alpha.is_nan() || alpha <= 0.0 {
                for v in row.iter_mut() {
                    *v = 0.0;
                }
                continue;
            }
            for v in row.iter_mut() {
                *v /= alpha;
            }
            self.dac.convert_slice(row);
            for v in row.iter_mut() {
                *v *= alpha;
            }
        }
        out
    }

    /// Zeroes the entries of `dx` whose corresponding input the DAC
    /// clipped — the STE masking rule. Interior points are left untouched.
    ///
    /// The clip predicate is evaluated on the same scaled value the
    /// forward converted (`x/α` against the DAC bound, NaN counts as
    /// clipped), so mask and conversion can never disagree on a borderline
    /// ulp. Rows that short-circuited to zero (`α ≤ 0`) pass gradients
    /// straight through.
    pub fn mask_clipped(&self, x: &Matrix, dx: &mut Matrix) {
        assert_eq!(x.shape(), dx.shape(), "mask shape mismatch");
        let bound = self.dac.bound();
        for i in 0..x.rows() {
            let alpha = self.nm.alpha(x.row(i));
            if alpha.is_nan() || alpha <= 0.0 {
                continue;
            }
            for (g, &v) in dx.row_mut(i).iter_mut().zip(x.row(i)) {
                let xh = v / alpha;
                if xh.is_nan() || xh.abs() > bound {
                    *g = 0.0;
                }
            }
        }
    }
}

/// Hyper-parameters of hardware-aware STE fine-tuning.
#[derive(Debug, Clone)]
pub struct SteConfig {
    /// Underlying optimizer/loop settings.
    pub base: TrainConfig,
    /// Tile configuration supplying the DAC grid, the weight-programming
    /// grid, and the programming/read noise laws (default: the paper's
    /// Table II).
    pub tile: TileConfig,
    /// Sample per-step programming noise from
    /// [`nora_cim::NoiseBudget::prog_moments`] (the censored device law).
    pub prog_noise: bool,
    /// Sample per-step short-term read noise
    /// ([`nora_cim::NoiseBudget::read_sigma`], per weight, in normalised
    /// units — the σ the tile aggregates analytically per forward).
    pub read_noise: bool,
    /// Multiplier on the sampled noise σ (1.0 = deploy-exact exposure;
    /// larger values train against exaggerated noise).
    pub noise_scale: f32,
}

impl Default for SteConfig {
    fn default() -> Self {
        Self {
            base: TrainConfig::default(),
            tile: TileConfig::paper_default(),
            prog_noise: true,
            read_noise: true,
            noise_scale: 1.0,
        }
    }
}

/// Replaces each analog-mappable linear's weights, in place, with the
/// hardware view the tile would program this step: columns normalised by
/// `γ_j = max|w_j|`, snapped to the weight-programming grid, perturbed by
/// the sampled programming/read noise, then rescaled by `γ_j`.
fn apply_hardware_weights(
    model: &mut TransformerLm,
    ids: &[LinearId],
    cfg: &SteConfig,
    budgets: &[nora_cim::NoiseBudget],
    seed: u64,
    step: u64,
    xi: &mut Vec<f32>,
) {
    let wq = cfg.tile.weight_quantizer();
    let sample = cfg.prog_noise || cfg.read_noise;
    for (li, &id) in ids.iter().enumerate() {
        let budget = &budgets[li];
        let read_var = if cfg.read_noise {
            f64::from(budget.read_sigma) * f64::from(budget.read_sigma)
        } else {
            0.0
        };
        let lin = model.linear_mut(id);
        let w = &mut lin.weight.value;
        // The tile's mapping: normalise each column by γ_j (all-zero
        // columns stay zero), then quantize onto the programming grid.
        let gamma = w.col_abs_max();
        for (j, &g) in gamma.iter().enumerate() {
            if g > 0.0 {
                w.scale_col(j, 1.0 / g);
            }
        }
        if let Some(q) = &wq {
            q.quantize_slice(w.as_mut_slice());
        }
        if sample {
            // Counter-keyed noise: one stream per (run, step, layer), so
            // the draw is a pure function of its site — bit-identical at
            // any thread count, and immune to observation.
            let n = w.as_slice().len();
            xi.resize(n, 0.0);
            let mut rng = Rng::from_key(&[seed, STE_STREAM, step, li as u64]);
            rng.fill_normal_icdf(xi, 0.0, 1.0);
            let scale = f64::from(cfg.noise_scale);
            for (v, &z) in w.as_mut_slice().iter_mut().zip(xi.iter()) {
                let (mean, prog_var) = if cfg.prog_noise {
                    budget.prog_moments(*v)
                } else {
                    (f64::from(*v), 0.0)
                };
                let sigma = (prog_var + read_var).sqrt() * scale;
                *v = (mean + sigma * f64::from(z)) as f32;
            }
        }
        for (j, &g) in gamma.iter().enumerate() {
            if g > 0.0 {
                w.scale_col(j, g);
            }
        }
    }
}

/// Hardware-aware STE fine-tuning: like [`crate::trainer::train`], but each
/// analog-mappable linear's forward runs activations through the deploy DAC
/// grid (straight-through gradients, rail clipping masked) and weights
/// through the programming grid with per-step sampled programming/read
/// noise. Gradients apply to the clean weights.
///
/// The quantizer attachments and the per-step weight perturbation are both
/// guarded: if a batch panics mid-step, the model is left with its clean
/// weights and no attachments.
///
/// # Panics
///
/// Panics if `noise_scale` is negative/non-finite, or on
/// [`crate::trainer::train`]'s conditions.
pub fn train_ste(
    model: &mut TransformerLm,
    corpus: &mut Corpus,
    cfg: &SteConfig,
    seed: u64,
) -> TrainReport {
    assert!(
        cfg.noise_scale.is_finite() && cfg.noise_scale >= 0.0,
        "noise_scale must be finite and >= 0"
    );
    assert!(cfg.base.steps > 0, "steps must be positive");
    assert!(cfg.base.batch_size > 0, "batch_size must be positive");
    let ids = model.linear_ids();
    for &id in &ids {
        model.linear_mut(id).ste = Some(SteQuant::from_tile(&cfg.tile));
    }
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        train_ste_loop(model, corpus, cfg, seed, &ids)
    }));
    // Detach on both exits: the attachments are training-time only.
    for &id in &ids {
        model.linear_mut(id).ste = None;
    }
    match result {
        Ok(report) => report,
        Err(panic) => std::panic::resume_unwind(panic),
    }
}

fn train_ste_loop(
    model: &mut TransformerLm,
    corpus: &mut Corpus,
    cfg: &SteConfig,
    seed: u64,
    ids: &[LinearId],
) -> TrainReport {
    let budgets: Vec<nora_cim::NoiseBudget> = ids
        .iter()
        .map(|&id| cfg.tile.noise_budget(model.linear(id).d_in()))
        .collect();
    let mut xi: Vec<f32> = Vec::new();
    let mut losses = Vec::with_capacity(cfg.base.steps as usize);
    for t in 1..=cfg.base.steps {
        model.zero_grad();
        let mut step_loss = 0.0f64;
        {
            // Stash clean weights; the guard restores them when the scope
            // ends — including by panic, so a poisoned episode cannot
            // leave hardware-view weights behind.
            let mut guard = WeightRestore::stash(model, ids);
            apply_hardware_weights(guard.model(), ids, cfg, &budgets, seed, t, &mut xi);
            for _ in 0..cfg.base.batch_size {
                let ep = corpus.episode();
                step_loss += guard.model().loss_and_backward(&ep.tokens);
            }
        }
        step_loss /= cfg.base.batch_size as f64;

        // Straight-through update: gradients taken at the hardware view
        // apply to the clean weights. Batch averaging, clipping, warmup and
        // Adam are identical to `train`.
        let inv = 1.0 / cfg.base.batch_size as f32;
        for p in model.params_mut() {
            p.scale_grad(inv);
        }
        if cfg.base.grad_clip > 0.0 {
            let norm: f64 = model
                .params_mut()
                .iter()
                .map(|p| p.grad_sq_sum())
                .sum::<f64>()
                .sqrt();
            if norm > cfg.base.grad_clip as f64 {
                let scale = (cfg.base.grad_clip as f64 / norm) as f32;
                for p in model.params_mut() {
                    p.scale_grad(scale);
                }
            }
        }
        let lr = if t <= cfg.base.warmup {
            cfg.base.lr * t as f32 / cfg.base.warmup.max(1) as f32
        } else {
            cfg.base.lr
        };
        for p in model.params_mut() {
            p.adam_step(lr, 0.9, 0.999, 1e-8, t);
        }
        losses.push(step_loss);
    }
    TrainReport {
        first_loss: losses[0],
        final_loss: *losses.last().unwrap(),
        losses,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::CorpusConfig;
    use crate::model::ModelConfig;
    use crate::trainer::eval_accuracy;
    use nora_cim::Resolution;

    fn tiny_tile() -> TileConfig {
        TileConfig::paper_default().with_tile_size(64, 64)
    }

    #[test]
    fn fake_quantize_is_idempotent_and_preserves_zero_rows() {
        let q = SteQuant::from_tile(&tiny_tile());
        let x = Matrix::from_rows(&[&[0.3, -1.7, 0.0, 0.02], &[0.0, 0.0, 0.0, 0.0]]);
        let once = q.fake_quantize(&x);
        assert_eq!(once.row(1), &[0.0; 4], "zero row short-circuits");
        // α is preserved by the grid (the max element sits at full scale up
        // to the rail snap), so quantizing the result moves nothing far.
        let twice = q.fake_quantize(&once);
        for (a, b) in once.as_slice().iter().zip(twice.as_slice()) {
            assert!((a - b).abs() <= 2.0 * 2.0 / 128.0, "{a} vs {b}");
        }
    }

    #[test]
    fn mask_zeroes_exactly_the_clipped_entries() {
        // `NoiseManagement::None` fixes α = 1: entries with |x| > dac_bound
        // clip.
        let mut cfg = tiny_tile();
        cfg.noise_management = NoiseManagement::None;
        let q = SteQuant::from_tile(&cfg);
        let x = Matrix::from_rows(&[&[0.5, 1.5, -2.0, 1.0], &[f32::NAN, 0.1, -0.9, 0.99]]);
        let mut dx = Matrix::from_vec(2, 4, vec![1.0; 8]);
        q.mask_clipped(&x, &mut dx);
        assert_eq!(dx.row(0), &[1.0, 0.0, 0.0, 1.0], "rails masked, bound kept");
        assert_eq!(dx.row(1), &[0.0, 1.0, 1.0, 1.0], "NaN masked");
    }

    #[test]
    fn ste_training_learns_and_stays_clean_on_exit() {
        let corpus_cfg = CorpusConfig::new(16, 16, 21);
        let mut corpus = Corpus::new(corpus_cfg);
        let mut model = TransformerLm::new(
            ModelConfig {
                vocab: 16,
                max_seq: 16,
                d_model: 32,
                heads: 2,
                d_ff: 64,
                layers: 2,
            },
            &mut Rng::seed_from(22),
        );
        let cfg = SteConfig {
            base: TrainConfig {
                steps: 300,
                ..TrainConfig::default()
            },
            tile: tiny_tile(),
            ..SteConfig::default()
        };
        let report = train_ste(&mut model, &mut corpus, &cfg, 5);
        assert!(
            report.final_loss < report.first_loss * 0.8,
            "loss {} → {}",
            report.first_loss,
            report.final_loss
        );
        // Attachments are gone: the trained model is a plain digital model.
        for id in model.linear_ids() {
            assert!(model.linear(id).ste.is_none(), "{id:?} still attached");
        }
        let eval = corpus.episodes(80);
        assert!(eval_accuracy(&model, &eval) > 0.4);
    }

    #[test]
    fn prog_noise_with_ideal_source_is_pure_fake_quantization() {
        // WeightSource::Ideal has zero programming error, so two runs with
        // prog noise on/off (read noise off) are bit-identical.
        let corpus_cfg = CorpusConfig::new(16, 16, 31);
        let mut tile = tiny_tile();
        tile.weight_source = nora_cim::WeightSource::Ideal;
        tile.weight_quant = Resolution::bits(6);
        let mk = || TransformerLm::new(ModelConfig::tiny_for_tests(), &mut Rng::seed_from(3));
        let run = |prog: bool| {
            let mut model = mk();
            let mut corpus = Corpus::new(corpus_cfg);
            let cfg = SteConfig {
                base: TrainConfig {
                    steps: 3,
                    ..TrainConfig::default()
                },
                tile: tile.clone(),
                prog_noise: prog,
                read_noise: false,
                noise_scale: 1.0,
            };
            train_ste(&mut model, &mut corpus, &cfg, 9);
            model
        };
        let a = run(true);
        let b = run(false);
        for (pa, pb) in a.params().iter().zip(b.params().iter()) {
            assert_eq!(pa.value.as_slice(), pb.value.as_slice());
        }
    }
}
