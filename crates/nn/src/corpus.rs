//! Synthetic training/evaluation corpus.
//!
//! The paper calibrates on the Pile and evaluates with the Lambada
//! last-word-prediction task. Both play narrow roles — a stream of
//! representative text for activation statistics, and a scalar accuracy
//! whose answer requires broad context — so this module synthesises a
//! corpus with the same two properties:
//!
//! * a **Markov backbone**: content tokens follow a sparse first-order
//!   Markov chain (learnable local statistics, like ordinary text), and
//! * **induction episodes**: a `KEY k` pair planted early in the sequence
//!   must be recalled when the closing `QUERY` marker appears — the final
//!   token is unpredictable from local context alone, exactly the Lambada
//!   property ("word prediction requiring a broad discourse context").
//!
//! Token `0` is the `KEY` marker and token `1` the `QUERY` marker; content
//! tokens occupy `2..vocab`.

use nora_tensor::rng::Rng;
use nora_tensor::Matrix;

/// The `KEY` marker token.
pub const KEY_MARK: usize = 0;
/// The `QUERY` marker token.
pub const QUERY_MARK: usize = 1;
/// First content token.
pub const FIRST_CONTENT: usize = 2;

/// Configuration of the synthetic corpus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CorpusConfig {
    /// Vocabulary size (≥ 8; includes the two marker tokens).
    pub vocab: usize,
    /// Episode length in tokens.
    pub seq_len: usize,
    /// Seed of the Markov backbone (fixes the "language").
    pub seed: u64,
}

impl CorpusConfig {
    /// Default corpus matched to the zoo's model sizes.
    pub fn new(vocab: usize, seq_len: usize, seed: u64) -> Self {
        assert!(vocab >= 8, "vocab must be at least 8");
        assert!(seq_len >= 8, "seq_len must be at least 8");
        Self {
            vocab,
            seq_len,
            seed,
        }
    }
}

/// Deterministic generator for the synthetic corpus.
///
/// # Example
///
/// ```
/// use nora_nn::corpus::{Corpus, CorpusConfig};
/// let mut corpus = Corpus::new(CorpusConfig::new(32, 16, 7));
/// let ep = corpus.episode();
/// assert_eq!(ep.tokens.len(), 16);
/// assert_eq!(*ep.tokens.last().unwrap(), ep.key);
/// ```
#[derive(Debug, Clone)]
pub struct Corpus {
    config: CorpusConfig,
    /// Markov transition weights, `(vocab × vocab)` over content tokens.
    transition: Matrix,
    rng: Rng,
}

/// One evaluation episode: a token sequence whose **last token** is the
/// planted key (the Lambada-style answer).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Episode {
    /// Full token sequence (length `seq_len`), ending with the answer.
    pub tokens: Vec<usize>,
    /// The planted key token (equals `tokens.last()`).
    pub key: usize,
}

impl Corpus {
    /// Builds the corpus "language" from the config seed.
    pub fn new(config: CorpusConfig) -> Self {
        let mut lang_rng = Rng::seed_from(config.seed);
        let v = config.vocab;
        // Sparse, peaked transition structure: each content token strongly
        // prefers 3 successors, with a small uniform smoothing floor.
        let mut transition = Matrix::full(v, v, 0.05);
        for t in FIRST_CONTENT..v {
            for _ in 0..3 {
                let succ = FIRST_CONTENT + lang_rng.below(v - FIRST_CONTENT);
                transition[(t, succ)] += 2.0 + lang_rng.next_f32() * 2.0;
            }
        }
        // Marker rows: markers are followed by uniform content.
        let rng = Rng::seed_from(config.seed ^ 0x5eed_0001);
        Self {
            config,
            transition,
            rng,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &CorpusConfig {
        &self.config
    }

    fn next_content(&mut self, current: usize) -> usize {
        let row = self.transition.row(current);
        let idx = self.rng.weighted_index(&row[FIRST_CONTENT..]);
        FIRST_CONTENT + idx
    }

    /// Samples `len` tokens of plain Markov text (the "Pile-like"
    /// calibration stream — no episode structure).
    pub fn text(&mut self, len: usize) -> Vec<usize> {
        let mut out = Vec::with_capacity(len);
        let mut cur = FIRST_CONTENT + self.rng.below(self.config.vocab - FIRST_CONTENT);
        for _ in 0..len {
            out.push(cur);
            cur = self.next_content(cur);
        }
        out
    }

    /// Samples one training/evaluation episode.
    ///
    /// Layout (for `seq_len = L`):
    /// `m₀ … KEY k m … m QUERY k` — Markov filler with `KEY k` planted at a
    /// random position in the first half and `QUERY` as the second-to-last
    /// token; the last token is the key again.
    pub fn episode(&mut self) -> Episode {
        let l = self.config.seq_len;
        let v = self.config.vocab;
        let key = FIRST_CONTENT + self.rng.below(v - FIRST_CONTENT);
        // KEY marker position in the first half (leaving room for the pair).
        let key_pos = 1 + self.rng.below(l / 2 - 1);
        let mut tokens = Vec::with_capacity(l);
        let mut cur = FIRST_CONTENT + self.rng.below(v - FIRST_CONTENT);
        for t in 0..l {
            if t == key_pos {
                tokens.push(KEY_MARK);
            } else if t == key_pos + 1 {
                tokens.push(key);
                cur = key;
            } else if t == l - 2 {
                tokens.push(QUERY_MARK);
            } else if t == l - 1 {
                tokens.push(key);
            } else {
                tokens.push(cur);
                cur = self.next_content(cur);
            }
        }
        Episode { tokens, key }
    }

    /// Samples a batch of episodes.
    pub fn episodes(&mut self, n: usize) -> Vec<Episode> {
        (0..n).map(|_| self.episode()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn episode_structure_is_well_formed() {
        let mut corpus = Corpus::new(CorpusConfig::new(32, 24, 1));
        for _ in 0..50 {
            let ep = corpus.episode();
            assert_eq!(ep.tokens.len(), 24);
            assert_eq!(ep.tokens[22], QUERY_MARK);
            assert_eq!(ep.tokens[23], ep.key);
            let key_pos = ep.tokens.iter().position(|&t| t == KEY_MARK).unwrap();
            assert!(key_pos < 12);
            assert_eq!(ep.tokens[key_pos + 1], ep.key);
            assert!(ep.key >= FIRST_CONTENT && ep.key < 32);
        }
    }

    #[test]
    fn text_contains_only_content_tokens() {
        let mut corpus = Corpus::new(CorpusConfig::new(16, 16, 2));
        let text = corpus.text(500);
        assert_eq!(text.len(), 500);
        assert!(text.iter().all(|&t| (FIRST_CONTENT..16).contains(&t)));
    }

    #[test]
    fn markov_structure_is_learnable() {
        // Successors should be concentrated: the empirical top-1 successor
        // frequency must beat the uniform baseline by a wide margin.
        let mut corpus = Corpus::new(CorpusConfig::new(32, 16, 3));
        let text = corpus.text(20_000);
        let mut counts = vec![vec![0u32; 32]; 32];
        for w in text.windows(2) {
            counts[w[0]][w[1]] += 1;
        }
        let mut top1 = 0u32;
        let mut total = 0u32;
        for row in &counts {
            let s: u32 = row.iter().sum();
            if s > 100 {
                top1 += *row.iter().max().unwrap();
                total += s;
            }
        }
        let frac = top1 as f64 / total as f64;
        assert!(frac > 0.2, "top-1 successor fraction {frac}");
    }

    #[test]
    fn same_seed_same_language_different_stream() {
        let mut a = Corpus::new(CorpusConfig::new(16, 16, 9));
        let mut b = Corpus::new(CorpusConfig::new(16, 16, 9));
        assert_eq!(a.episode(), b.episode());
    }

    #[test]
    fn keys_are_diverse() {
        let mut corpus = Corpus::new(CorpusConfig::new(64, 16, 4));
        let eps = corpus.episodes(200);
        let mut keys: Vec<usize> = eps.iter().map(|e| e.key).collect();
        keys.sort_unstable();
        keys.dedup();
        assert!(keys.len() > 20, "only {} distinct keys", keys.len());
    }

    #[test]
    #[should_panic(expected = "vocab must be")]
    fn tiny_vocab_panics() {
        CorpusConfig::new(4, 16, 0);
    }
}
