//! Token and positional embeddings.

use crate::param::Param;
use nora_tensor::rng::Rng;
use nora_tensor::Matrix;

/// Learned token + positional embedding table.
///
/// `forward(tokens)` returns `(seq × d)` with
/// `row_t = tok_table[tokens[t]] + pos_table[t]`.
#[derive(Debug, Clone)]
pub struct Embedding {
    /// Token table, `(vocab × d)`.
    pub tokens: Param,
    /// Positional table, `(max_seq × d)`.
    pub positions: Param,
    last_tokens: Vec<usize>,
}

impl Embedding {
    /// Creates tables with small normal init.
    pub fn new(vocab: usize, max_seq: usize, d: usize, rng: &mut Rng) -> Self {
        Self {
            tokens: Param::new(Matrix::random_normal(vocab, d, 0.0, 0.02, rng)),
            positions: Param::new(Matrix::random_normal(max_seq, d, 0.0, 0.02, rng)),
            last_tokens: Vec::new(),
        }
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.tokens.value.rows()
    }

    /// Maximum sequence length.
    pub fn max_seq(&self) -> usize {
        self.positions.value.rows()
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.tokens.value.cols()
    }

    /// Embeds a token sequence, caching it for backward.
    ///
    /// # Panics
    ///
    /// Panics if the sequence is longer than `max_seq` or a token is out of
    /// vocabulary.
    pub fn forward(&mut self, tokens: &[usize]) -> Matrix {
        self.last_tokens = tokens.to_vec();
        self.forward_inference(tokens)
    }

    /// Embeds without caching (inference-only).
    ///
    /// # Panics
    ///
    /// Same conditions as [`Embedding::forward`].
    pub fn forward_inference(&self, tokens: &[usize]) -> Matrix {
        assert!(
            tokens.len() <= self.max_seq(),
            "sequence {} exceeds max_seq {}",
            tokens.len(),
            self.max_seq()
        );
        let d = self.dim();
        let mut out = Matrix::zeros(tokens.len(), d);
        for (t, &tok) in tokens.iter().enumerate() {
            assert!(tok < self.vocab(), "token {tok} out of vocab");
            let row = out.row_mut(t);
            let te = self.tokens.value.row(tok);
            let pe = self.positions.value.row(t);
            for k in 0..d {
                row[k] = te[k] + pe[k];
            }
        }
        out
    }

    /// Scatter-adds `dy` into the token/position gradients.
    ///
    /// # Panics
    ///
    /// Panics if no forward cache is present or shapes disagree.
    pub fn backward(&mut self, dy: &Matrix) {
        assert_eq!(
            dy.rows(),
            self.last_tokens.len(),
            "Embedding::backward without matching forward"
        );
        assert!(!self.last_tokens.is_empty(), "no cached forward");
        for (t, &tok) in self.last_tokens.clone().iter().enumerate() {
            let dr = dy.row(t).to_vec();
            for (g, &d) in self.tokens.grad.row_mut(tok).iter_mut().zip(&dr) {
                *g += d;
            }
            for (g, &d) in self.positions.grad.row_mut(t).iter_mut().zip(&dr) {
                *g += d;
            }
        }
    }

    /// Mutable access to both tables (for the optimizer).
    pub fn params_mut(&mut self) -> [&mut Param; 2] {
        [&mut self.tokens, &mut self.positions]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_sums_token_and_position() {
        let mut rng = Rng::seed_from(1);
        let mut emb = Embedding::new(10, 8, 4, &mut rng);
        let y = emb.forward(&[3, 7]);
        for k in 0..4 {
            assert_eq!(
                y[(0, k)],
                emb.tokens.value[(3, k)] + emb.positions.value[(0, k)]
            );
            assert_eq!(
                y[(1, k)],
                emb.tokens.value[(7, k)] + emb.positions.value[(1, k)]
            );
        }
    }

    #[test]
    fn backward_scatter_adds() {
        let mut rng = Rng::seed_from(2);
        let mut emb = Embedding::new(5, 4, 2, &mut rng);
        emb.forward(&[1, 1, 3]);
        let dy = Matrix::from_rows(&[&[1.0, 0.0], &[2.0, 0.0], &[0.0, 5.0]]);
        emb.backward(&dy);
        // token 1 appears twice: grads add
        assert_eq!(emb.tokens.grad[(1, 0)], 3.0);
        assert_eq!(emb.tokens.grad[(3, 1)], 5.0);
        assert_eq!(emb.positions.grad[(0, 0)], 1.0);
        assert_eq!(emb.positions.grad[(2, 1)], 5.0);
    }

    #[test]
    #[should_panic(expected = "out of vocab")]
    fn out_of_vocab_panics() {
        let mut rng = Rng::seed_from(3);
        let mut emb = Embedding::new(5, 4, 2, &mut rng);
        emb.forward(&[5]);
    }

    #[test]
    #[should_panic(expected = "exceeds max_seq")]
    fn too_long_panics() {
        let mut rng = Rng::seed_from(4);
        let mut emb = Embedding::new(5, 2, 2, &mut rng);
        emb.forward(&[0, 1, 2]);
    }
}
