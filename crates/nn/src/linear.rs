//! Digital (FP32) linear layer with manual backprop.

use crate::param::Param;
use nora_tensor::rng::Rng;
use nora_tensor::{Matrix, NmPattern, PackedNmMatrix};

/// A fully-connected layer `y = x · W + b` with weight shape
/// `(d_in × d_out)` — the activation-side orientation used across the
/// workspace (and by the analog tiles, where `x` rows stream into the
/// wordlines).
#[derive(Debug, Clone)]
pub struct DigitalLinear {
    /// Weight parameter, `(d_in × d_out)`.
    pub weight: Param,
    /// Bias parameter, `(1 × d_out)`.
    pub bias: Param,
    /// Packed block-wise N:M replica of `weight`, installed by
    /// [`DigitalLinear::apply_sparsity`]. When present, [`forward`]
    /// dispatches to the sparse kernel — bit-identical to the dense kernel
    /// on the (masked) `weight`, just skipping the pruned rows. The
    /// replica is a post-training deployment artifact: parameter updates
    /// do not refresh it, so re-apply after any weight mutation.
    ///
    /// [`forward`]: DigitalLinear::forward
    pub sparse: Option<PackedNmMatrix>,
    /// Deploy-grid fake quantization of this layer's *inputs*, installed by
    /// [`crate::ste::train_ste`] for hardware-aware training. When present,
    /// [`forward`] runs activations through the analog DAC mid-rise grid
    /// before the product, and [`backward`] passes gradients straight
    /// through the quantizer — exact at interior grid points, zeroed where
    /// the DAC clipped at the rails. A training-time attachment only: it is
    /// transient (never serialized) and takes precedence over `sparse`.
    ///
    /// [`forward`]: DigitalLinear::forward
    /// [`backward`]: DigitalLinear::backward
    pub ste: Option<crate::ste::SteQuant>,
}

impl DigitalLinear {
    /// Creates a layer with scaled-normal init (`std = 1/sqrt(d_in)`).
    pub fn new(d_in: usize, d_out: usize, rng: &mut Rng) -> Self {
        let std = 1.0 / (d_in as f32).sqrt();
        Self {
            weight: Param::new(Matrix::random_normal(d_in, d_out, 0.0, std, rng)),
            bias: Param::new(Matrix::zeros(1, d_out)),
            sparse: None,
            ste: None,
        }
    }

    /// Prunes `weight` in place to the block-wise `pattern` and installs
    /// the packed sparse replica the forward pass will use.
    ///
    /// `row_importance` (length `d_in`, typically the calibrated
    /// per-channel activation scale) biases kept-row selection toward
    /// channels that carry outlier activations. The masked dense weights
    /// are written back to `weight`, so every other consumer — analog
    /// deployment, the analytic evaluator, training checkpoints — sees
    /// exactly the weights the sparse kernel computes with.
    /// [`NmPattern::Dense`] removes any installed replica and leaves the
    /// weights untouched.
    pub fn apply_sparsity(&mut self, pattern: NmPattern, row_importance: Option<&[f32]>) {
        if pattern == NmPattern::Dense {
            self.sparse = None;
            return;
        }
        let packed = PackedNmMatrix::pack(&self.weight.value, pattern, row_importance);
        self.weight.value = packed.to_dense();
        self.sparse = Some(packed);
    }

    /// Input dimension.
    pub fn d_in(&self) -> usize {
        self.weight.value.rows()
    }

    /// Output dimension.
    pub fn d_out(&self) -> usize {
        self.weight.value.cols()
    }

    /// Forward pass: `x` is `(n × d_in)`, result `(n × d_out)`.
    ///
    /// With a sparse replica installed the product runs through the packed
    /// N:M kernel (bit-identical to the dense product on the masked
    /// `weight`, at the pattern's fraction of the multiply–accumulates).
    pub fn forward(&self, x: &Matrix) -> Matrix {
        let mut y = match (&self.ste, &self.sparse) {
            (Some(ste), _) => ste.fake_quantize(x).matmul(&self.weight.value),
            (None, Some(packed)) => packed.matmul(x),
            (None, None) => x.matmul(&self.weight.value),
        };
        let b = self.bias.value.row(0);
        for i in 0..y.rows() {
            for (v, &bv) in y.row_mut(i).iter_mut().zip(b) {
                *v += bv;
            }
        }
        y
    }

    /// Backward pass.
    ///
    /// Accumulates `dW = xᵀ · dy` and `db = Σ rows(dy)` into the parameter
    /// gradients and returns `dx = dy · Wᵀ`.
    ///
    /// With an [`SteQuant`](crate::ste::SteQuant) installed, `dW` is taken
    /// at the fake-quantized input the forward actually used (`dW = x̃ᵀ ·
    /// dy`), and `dx` is the straight-through gradient: identical to the
    /// clean `dy · Wᵀ` at interior grid points, zeroed exactly where the
    /// DAC clipped the corresponding input at the rails.
    ///
    /// # Panics
    ///
    /// Panics if the shapes of `x`/`dy` disagree with the layer.
    pub fn backward(&mut self, x: &Matrix, dy: &Matrix) -> Matrix {
        assert_eq!(x.cols(), self.d_in(), "x width mismatch");
        assert_eq!(dy.cols(), self.d_out(), "dy width mismatch");
        assert_eq!(x.rows(), dy.rows(), "batch mismatch");
        let dw = match &self.ste {
            // The quantizer is deterministic, so recomputing x̃ here is
            // bit-identical to caching it in the forward.
            Some(ste) => ste.fake_quantize(x).transpose().matmul(dy),
            None => x.transpose().matmul(dy),
        };
        self.weight.grad.add_assign(&dw);
        for i in 0..dy.rows() {
            for (g, &d) in self.bias.grad.row_mut(0).iter_mut().zip(dy.row(i)) {
                *g += d;
            }
        }
        let mut dx = dy.matmul(&self.weight.value.transpose());
        if let Some(ste) = &self.ste {
            ste.mask_clipped(x, &mut dx);
        }
        dx
    }

    /// Mutable access to both parameters (for the optimizer).
    pub fn params_mut(&mut self) -> [&mut Param; 2] {
        [&mut self.weight, &mut self.bias]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finite_diff_check(seed: u64) {
        let mut rng = Rng::seed_from(seed);
        let mut lin = DigitalLinear::new(4, 3, &mut rng);
        let x = Matrix::random_normal(2, 4, 0.0, 1.0, &mut rng);
        // Scalar loss: sum of outputs squared / 2 → dy = y.
        let y = lin.forward(&x);
        let dx = lin.backward(&x, &y);

        let loss = |lin: &DigitalLinear, x: &Matrix| -> f64 {
            lin.forward(x)
                .as_slice()
                .iter()
                .map(|&v| (v as f64) * (v as f64) / 2.0)
                .sum()
        };
        let eps = 1e-3f32;

        // Check dW numerically at a few entries.
        for &(r, c) in &[(0usize, 0usize), (1, 2), (3, 1)] {
            let mut plus = lin.clone();
            plus.weight.value[(r, c)] += eps;
            let mut minus = lin.clone();
            minus.weight.value[(r, c)] -= eps;
            let num = (loss(&plus, &x) - loss(&minus, &x)) / (2.0 * eps as f64);
            let ana = lin.weight.grad[(r, c)] as f64;
            assert!(
                (num - ana).abs() < 1e-2 * (1.0 + ana.abs()),
                "dW[{r},{c}] num {num} ana {ana}"
            );
        }
        // Check dx numerically.
        for &(r, c) in &[(0usize, 0usize), (1, 3)] {
            let mut xp = x.clone();
            xp[(r, c)] += eps;
            let mut xm = x.clone();
            xm[(r, c)] -= eps;
            let num = (loss(&lin, &xp) - loss(&lin, &xm)) / (2.0 * eps as f64);
            let ana = dx[(r, c)] as f64;
            assert!(
                (num - ana).abs() < 1e-2 * (1.0 + ana.abs()),
                "dx[{r},{c}] num {num} ana {ana}"
            );
        }
    }

    #[test]
    fn forward_applies_bias() {
        let mut rng = Rng::seed_from(0);
        let mut lin = DigitalLinear::new(2, 2, &mut rng);
        lin.weight.value = Matrix::identity(2);
        lin.bias.value = Matrix::from_vec(1, 2, vec![1.0, -1.0]);
        let y = lin.forward(&Matrix::from_rows(&[&[3.0, 4.0]]));
        assert_eq!(y.row(0), &[4.0, 3.0]);
    }

    #[test]
    fn gradients_match_finite_differences() {
        finite_diff_check(1);
        finite_diff_check(2);
    }

    #[test]
    fn bias_gradient_sums_rows() {
        let mut rng = Rng::seed_from(3);
        let mut lin = DigitalLinear::new(2, 2, &mut rng);
        let x = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let dy = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        lin.backward(&x, &dy);
        assert_eq!(lin.bias.grad.row(0), &[4.0, 6.0]);
    }

    /// The sparse decode contract at the layer level: after
    /// `apply_sparsity`, the packed forward is bit-identical to the dense
    /// forward on the masked weights, and `Dense` uninstalls the replica.
    #[test]
    fn sparse_forward_matches_dense_on_masked_weights() {
        let mut rng = Rng::seed_from(5);
        let mut lin = DigitalLinear::new(64, 48, &mut rng);
        let dense_before = lin.weight.value.clone();
        lin.apply_sparsity(NmPattern::N2M4, None);
        assert!(lin.sparse.is_some());
        assert_ne!(lin.weight.value, dense_before, "weights must be masked");
        let x = Matrix::random_normal(3, 64, 0.0, 1.0, &mut rng);
        let sparse_y = lin.forward(&x);
        let mut dense_path = lin.clone();
        dense_path.sparse = None;
        assert_eq!(sparse_y.as_slice(), dense_path.forward(&x).as_slice());
        // Dense pattern removes the replica without touching weights.
        let masked = lin.weight.value.clone();
        lin.apply_sparsity(NmPattern::Dense, None);
        assert!(lin.sparse.is_none());
        assert_eq!(lin.weight.value, masked);
    }

    #[test]
    fn gradients_accumulate_until_cleared() {
        let mut rng = Rng::seed_from(4);
        let mut lin = DigitalLinear::new(2, 2, &mut rng);
        let x = Matrix::identity(2);
        let dy = Matrix::identity(2);
        lin.backward(&x, &dy);
        let once = lin.weight.grad.clone();
        lin.backward(&x, &dy);
        assert_eq!(lin.weight.grad, once.scale(2.0));
        for p in lin.params_mut() {
            p.zero_grad();
        }
        assert_eq!(lin.weight.grad.as_slice().iter().sum::<f32>(), 0.0);
    }
}
