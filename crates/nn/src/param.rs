//! Trainable parameters with gradient and Adam state.

use nora_tensor::Matrix;

/// A trainable matrix parameter with its gradient accumulator and Adam
/// moment estimates.
///
/// Gradients accumulate across [`Param::grad`] mutations until
/// [`Param::zero_grad`]; [`Param::adam_step`] applies one bias-corrected
/// Adam update.
#[derive(Debug, Clone)]
pub struct Param {
    /// Parameter values.
    pub value: Matrix,
    /// Accumulated gradient (same shape as `value`).
    pub grad: Matrix,
    m: Matrix,
    v: Matrix,
}

impl Param {
    /// Wraps an initial value.
    pub fn new(value: Matrix) -> Self {
        let (r, c) = value.shape();
        Self {
            value,
            grad: Matrix::zeros(r, c),
            m: Matrix::zeros(r, c),
            v: Matrix::zeros(r, c),
        }
    }

    /// Clears the accumulated gradient.
    pub fn zero_grad(&mut self) {
        for g in self.grad.as_mut_slice() {
            *g = 0.0;
        }
    }

    /// Sum of squared gradient entries (for global-norm clipping).
    pub fn grad_sq_sum(&self) -> f64 {
        self.grad
            .as_slice()
            .iter()
            .map(|&g| (g as f64) * (g as f64))
            .sum()
    }

    /// Scales the gradient in place (used by global-norm clipping).
    pub fn scale_grad(&mut self, s: f32) {
        self.grad.scale_assign(s);
    }

    /// One Adam update with bias correction.
    ///
    /// `t` is the 1-based global step count.
    ///
    /// # Panics
    ///
    /// Panics if `t == 0` or `lr <= 0`.
    pub fn adam_step(&mut self, lr: f32, beta1: f32, beta2: f32, eps: f32, t: u64) {
        assert!(t > 0, "adam step count is 1-based");
        assert!(lr > 0.0, "learning rate must be positive");
        let bc1 = 1.0 - beta1.powi(t.min(1_000_000) as i32);
        let bc2 = 1.0 - beta2.powi(t.min(1_000_000) as i32);
        let value = self.value.as_mut_slice();
        let grad = self.grad.as_slice();
        let m = self.m.as_mut_slice();
        let v = self.v.as_mut_slice();
        for i in 0..value.len() {
            let g = grad[i];
            m[i] = beta1 * m[i] + (1.0 - beta1) * g;
            v[i] = beta2 * v[i] + (1.0 - beta2) * g * g;
            let m_hat = m[i] / bc1;
            let v_hat = v[i] / bc2;
            value[i] -= lr * m_hat / (v_hat.sqrt() + eps);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_grad_clears() {
        let mut p = Param::new(Matrix::zeros(2, 2));
        p.grad[(0, 0)] = 5.0;
        p.zero_grad();
        assert_eq!(p.grad.as_slice(), &[0.0; 4]);
    }

    #[test]
    fn adam_descends_a_quadratic() {
        // Minimise f(w) = (w - 3)² by gradient descent with Adam.
        let mut p = Param::new(Matrix::from_vec(1, 1, vec![0.0]));
        for t in 1..=500 {
            let w = p.value[(0, 0)];
            p.zero_grad();
            p.grad[(0, 0)] = 2.0 * (w - 3.0);
            p.adam_step(0.05, 0.9, 0.999, 1e-8, t);
        }
        assert!((p.value[(0, 0)] - 3.0).abs() < 0.05, "w {}", p.value[(0, 0)]);
    }

    #[test]
    fn grad_norm_helpers() {
        let mut p = Param::new(Matrix::zeros(1, 2));
        p.grad[(0, 0)] = 3.0;
        p.grad[(0, 1)] = 4.0;
        assert!((p.grad_sq_sum() - 25.0).abs() < 1e-9);
        p.scale_grad(0.5);
        assert_eq!(p.grad.as_slice(), &[1.5, 2.0]);
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn adam_step_zero_panics() {
        let mut p = Param::new(Matrix::zeros(1, 1));
        p.adam_step(0.1, 0.9, 0.999, 1e-8, 0);
    }
}
