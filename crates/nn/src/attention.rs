//! Causal multi-head self-attention with manual backprop.

use crate::linear::DigitalLinear;
use crate::model::KvView;
use crate::param::Param;
use crate::softmax::softmax_rows;
use nora_tensor::rng::Rng;
use nora_tensor::Matrix;

/// Causal multi-head self-attention over a single sequence.
///
/// The four projections (`q`, `k`, `v`, `out`) are the analog-mappable
/// linears; the score computation, masking, and softmax stay digital, as on
/// the paper's hybrid tiles (Fig. 2: "the self-attention is deployed on
/// digital tiles or digital cores").
#[derive(Debug, Clone)]
pub struct MultiHeadAttention {
    /// Query projection.
    pub wq: DigitalLinear,
    /// Key projection.
    pub wk: DigitalLinear,
    /// Value projection.
    pub wv: DigitalLinear,
    /// Output projection.
    pub wo: DigitalLinear,
    heads: usize,
    cache: Option<Cache>,
}

#[derive(Debug, Clone)]
struct Cache {
    x: Matrix,
    q: Matrix,
    k: Matrix,
    v: Matrix,
    /// Per-head post-softmax attention probabilities.
    probs: Vec<Matrix>,
    /// Concatenated per-head context (input of `wo`).
    context: Matrix,
}

impl MultiHeadAttention {
    /// Creates an attention block with `heads` heads over dimension `d`.
    ///
    /// # Panics
    ///
    /// Panics if `heads` does not divide `d`.
    pub fn new(d: usize, heads: usize, rng: &mut Rng) -> Self {
        assert!(heads > 0 && d.is_multiple_of(heads), "heads must divide d");
        Self {
            wq: DigitalLinear::new(d, d, rng),
            wk: DigitalLinear::new(d, d, rng),
            wv: DigitalLinear::new(d, d, rng),
            wo: DigitalLinear::new(d, d, rng),
            heads,
            cache: None,
        }
    }

    /// Number of heads.
    pub fn heads(&self) -> usize {
        self.heads
    }

    /// Model dimension.
    pub fn dim(&self) -> usize {
        self.wq.d_in()
    }

    fn head_slice(m: &Matrix, h: usize, hd: usize) -> Matrix {
        m.submatrix(0, m.rows(), h * hd, (h + 1) * hd)
    }

    /// Digital attention core shared by training and inference: given the
    /// projected `q`, `k`, `v`, returns per-head probabilities and the
    /// concatenated context.
    fn attend(&self, q: &Matrix, k: &Matrix, v: &Matrix) -> (Vec<Matrix>, Matrix) {
        let seq = q.rows();
        let d = self.dim();
        let hd = d / self.heads;
        let scale = 1.0 / (hd as f32).sqrt();
        let mut probs = Vec::with_capacity(self.heads);
        let mut context = Matrix::zeros(seq, d);
        for h in 0..self.heads {
            let qh = Self::head_slice(q, h, hd);
            let kh = Self::head_slice(k, h, hd);
            let vh = Self::head_slice(v, h, hd);
            let mut scores = qh.matmul(&kh.transpose());
            scores.scale_assign(scale);
            // Causal mask: position i attends to j <= i.
            for i in 0..seq {
                for j in (i + 1)..seq {
                    scores[(i, j)] = f32::NEG_INFINITY;
                }
            }
            let p = softmax_rows(&scores);
            let oh = p.matmul(&vh);
            context.set_submatrix(0, h * hd, &oh);
            probs.push(p);
        }
        (probs, context)
    }

    /// Forward pass over `(seq × d)`, caching intermediates for backward.
    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        let q = self.wq.forward(x);
        let k = self.wk.forward(x);
        let v = self.wv.forward(x);
        let (probs, context) = self.attend(&q, &k, &v);
        let y = self.wo.forward(&context);
        self.cache = Some(Cache {
            x: x.clone(),
            q,
            k,
            v,
            probs,
            context,
        });
        y
    }

    /// Forward without caching; optionally routes the four projections
    /// through substitute linears (the analog deployment hook).
    pub fn forward_inference_with<F>(&self, x: &Matrix, mut project: F) -> Matrix
    where
        F: FnMut(AttnProj, &Matrix) -> Matrix,
    {
        let q = project(AttnProj::Q, x);
        let k = project(AttnProj::K, x);
        let v = project(AttnProj::V, x);
        let (_, context) = self.attend(&q, &k, &v);
        project(AttnProj::Out, &context)
    }

    /// Forward without caching using the digital projections.
    pub fn forward_inference(&self, x: &Matrix) -> Matrix {
        let q = self.wq.forward(x);
        let k = self.wk.forward(x);
        let v = self.wv.forward(x);
        let (_, context) = self.attend(&q, &k, &v);
        self.wo.forward(&context)
    }

    /// Single-query attention over cached keys/values (the KV-cache decode
    /// path): `q` is the projected query of the newest token (length `d`),
    /// `k_cache`/`v_cache` hold the projected keys/values of all tokens so
    /// far **including** the newest (each `t × d`, in logical oldest-first
    /// order). Returns the attention context (length `d`) for the newest
    /// position. Accepts [`KvView`]s so a ring-buffered [`crate::KvCache`]
    /// can expose its window without copying; use [`KvView::full`] to attend
    /// over a plain matrix.
    ///
    /// # Panics
    ///
    /// Panics if the shapes disagree.
    pub fn attend_one(&self, q: &[f32], k_cache: KvView<'_>, v_cache: KvView<'_>) -> Vec<f32> {
        let d = self.dim();
        assert_eq!(q.len(), d, "query width mismatch");
        assert_eq!(k_cache.len(), v_cache.len(), "cache length mismatch");
        assert_eq!(k_cache.cols(), d, "cache width mismatch");
        assert_eq!(v_cache.cols(), d, "cache width mismatch");
        let t = k_cache.len();
        assert!(t > 0, "empty kv cache");
        let hd = d / self.heads;
        let scale = 1.0 / (hd as f32).sqrt();
        let mut context = vec![0.0f32; d];
        for h in 0..self.heads {
            let qh = &q[h * hd..(h + 1) * hd];
            // Scores against every cached key (causality is implicit: the
            // cache only contains past-and-current tokens).
            let mut scores = Vec::with_capacity(t);
            let mut max = f32::NEG_INFINITY;
            for i in 0..t {
                let kh = &k_cache.row(i)[h * hd..(h + 1) * hd];
                let s: f32 = qh.iter().zip(kh).map(|(&a, &b)| a * b).sum::<f32>() * scale;
                max = max.max(s);
                scores.push(s);
            }
            let mut denom = 0.0f32;
            for s in &mut scores {
                *s = (*s - max).exp();
                denom += *s;
            }
            let ctx = &mut context[h * hd..(h + 1) * hd];
            for (i, &p) in scores.iter().enumerate() {
                let vh = &v_cache.row(i)[h * hd..(h + 1) * hd];
                let w = p / denom;
                for (c, &v) in ctx.iter_mut().zip(vh) {
                    *c += w * v;
                }
            }
        }
        context
    }

    /// Backward pass; must follow a caching [`MultiHeadAttention::forward`].
    ///
    /// # Panics
    ///
    /// Panics if no forward cache is present.
    pub fn backward(&mut self, dy: &Matrix) -> Matrix {
        let cache = self
            .cache
            .take()
            .expect("MultiHeadAttention::backward without forward");
        let seq = cache.x.rows();
        let d = self.dim();
        let hd = d / self.heads;
        let scale = 1.0 / (hd as f32).sqrt();

        let d_context = self.wo.backward(&cache.context, dy);

        let mut dq = Matrix::zeros(seq, d);
        let mut dk = Matrix::zeros(seq, d);
        let mut dv = Matrix::zeros(seq, d);
        for h in 0..self.heads {
            let p = &cache.probs[h];
            let qh = Self::head_slice(&cache.q, h, hd);
            let kh = Self::head_slice(&cache.k, h, hd);
            let vh = Self::head_slice(&cache.v, h, hd);
            let doh = Self::head_slice(&d_context, h, hd);

            let dvh = p.transpose().matmul(&doh);
            let dp = doh.matmul(&vh.transpose());
            // Softmax backward per row: dA = P ⊙ (dP − Σ_j dP⊙P).
            let mut da = Matrix::zeros(seq, seq);
            for i in 0..seq {
                let pr = p.row(i);
                let dpr = dp.row(i);
                let dot: f32 = pr.iter().zip(dpr).map(|(&a, &b)| a * b).sum();
                let dar = da.row_mut(i);
                for j in 0..seq {
                    dar[j] = pr[j] * (dpr[j] - dot);
                }
            }
            da.scale_assign(scale);
            let dqh = da.matmul(&kh);
            let dkh = da.transpose().matmul(&qh);
            dq.set_submatrix(0, h * hd, &dqh);
            dk.set_submatrix(0, h * hd, &dkh);
            dv.set_submatrix(0, h * hd, &dvh);
        }

        let dx_q = self.wq.backward(&cache.x, &dq);
        let dx_k = self.wk.backward(&cache.x, &dk);
        let dx_v = self.wv.backward(&cache.x, &dv);
        dx_q.add(&dx_k).add(&dx_v)
    }

    /// Mutable access to all eight parameters (for the optimizer).
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut out = Vec::with_capacity(8);
        out.extend(self.wq.params_mut());
        out.extend(self.wk.params_mut());
        out.extend(self.wv.params_mut());
        out.extend(self.wo.params_mut());
        out
    }
}

/// Identifies one of the four attention projections (used by the analog
/// deployment hook).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttnProj {
    /// Query projection.
    Q,
    /// Key projection.
    K,
    /// Value projection.
    V,
    /// Output projection.
    Out,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quad_loss(y: &Matrix) -> f64 {
        y.as_slice()
            .iter()
            .map(|&v| (v as f64) * (v as f64) / 2.0)
            .sum()
    }

    #[test]
    fn output_shape_matches_input() {
        let mut rng = Rng::seed_from(1);
        let mut attn = MultiHeadAttention::new(16, 4, &mut rng);
        let x = Matrix::random_normal(6, 16, 0.0, 1.0, &mut rng);
        let y = attn.forward(&x);
        assert_eq!(y.shape(), (6, 16));
    }

    #[test]
    fn causality_later_tokens_do_not_affect_earlier_outputs() {
        let mut rng = Rng::seed_from(2);
        let attn = MultiHeadAttention::new(8, 2, &mut rng);
        let x = Matrix::random_normal(5, 8, 0.0, 1.0, &mut rng);
        let y_full = attn.forward_inference(&x);
        // Perturb the last token; outputs at earlier positions must not move.
        let mut x2 = x.clone();
        for v in x2.row_mut(4) {
            *v += 10.0;
        }
        let y_pert = attn.forward_inference(&x2);
        for i in 0..4 {
            for k in 0..8 {
                assert!(
                    (y_full[(i, k)] - y_pert[(i, k)]).abs() < 1e-6,
                    "row {i} changed"
                );
            }
        }
    }

    #[test]
    fn forward_and_inference_agree() {
        let mut rng = Rng::seed_from(3);
        let mut attn = MultiHeadAttention::new(12, 3, &mut rng);
        let x = Matrix::random_normal(4, 12, 0.0, 1.0, &mut rng);
        let a = attn.forward(&x);
        let b = attn.forward_inference(&x);
        assert!(a.mse(&b) < 1e-12);
    }

    #[test]
    fn forward_inference_with_digital_projections_matches() {
        let mut rng = Rng::seed_from(4);
        let attn = MultiHeadAttention::new(8, 2, &mut rng);
        let x = Matrix::random_normal(3, 8, 0.0, 1.0, &mut rng);
        let via_hook = attn.forward_inference_with(&x, |proj, input| match proj {
            AttnProj::Q => attn.wq.forward(input),
            AttnProj::K => attn.wk.forward(input),
            AttnProj::V => attn.wv.forward(input),
            AttnProj::Out => attn.wo.forward(input),
        });
        assert!(via_hook.mse(&attn.forward_inference(&x)) < 1e-12);
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = Rng::seed_from(5);
        let mut attn = MultiHeadAttention::new(6, 2, &mut rng);
        let x = Matrix::random_normal(3, 6, 0.0, 1.0, &mut rng);
        let y = attn.forward(&x);
        let dx = attn.backward(&y);
        let eps = 1e-3f32;

        // Input gradient.
        for &(r, c) in &[(0usize, 0usize), (1, 3), (2, 5)] {
            let mut xp = x.clone();
            xp[(r, c)] += eps;
            let mut xm = x.clone();
            xm[(r, c)] -= eps;
            let num = (quad_loss(&attn.forward_inference(&xp))
                - quad_loss(&attn.forward_inference(&xm)))
                / (2.0 * eps as f64);
            let ana = dx[(r, c)] as f64;
            assert!(
                (num - ana).abs() < 3e-2 * (1.0 + ana.abs()),
                "dx[{r},{c}] num {num} ana {ana}"
            );
        }

        // A weight gradient from each projection.
        let grads = [
            ("wq", attn.wq.weight.grad[(1, 2)] as f64),
            ("wk", attn.wk.weight.grad[(1, 2)] as f64),
            ("wv", attn.wv.weight.grad[(1, 2)] as f64),
            ("wo", attn.wo.weight.grad[(1, 2)] as f64),
        ];
        for (name, ana) in grads {
            let mut plus = attn.clone();
            let mut minus = attn.clone();
            fn pick_by<'a>(
                a: &'a mut MultiHeadAttention,
                name: &str,
            ) -> &'a mut DigitalLinear {
                match name {
                    "wq" => &mut a.wq,
                    "wk" => &mut a.wk,
                    "wv" => &mut a.wv,
                    _ => &mut a.wo,
                }
            }
            pick_by(&mut plus, name).weight.value[(1, 2)] += eps;
            pick_by(&mut minus, name).weight.value[(1, 2)] -= eps;
            let num = (quad_loss(&plus.forward_inference(&x))
                - quad_loss(&minus.forward_inference(&x)))
                / (2.0 * eps as f64);
            assert!(
                (num - ana).abs() < 3e-2 * (1.0 + ana.abs()),
                "{name} num {num} ana {ana}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "heads must divide")]
    fn bad_head_count_panics() {
        MultiHeadAttention::new(10, 3, &mut Rng::seed_from(0));
    }

    #[test]
    fn params_mut_exposes_eight() {
        let mut attn = MultiHeadAttention::new(8, 2, &mut Rng::seed_from(0));
        assert_eq!(attn.params_mut().len(), 8);
    }
}
