//! Layer normalisation with manual backprop.

use crate::param::Param;
use nora_tensor::Matrix;

/// Per-row layer normalisation `y = γ ⊙ (x − µ)/σ + β`.
///
/// The learned gain `γ` is the lever the model-zoo outlier injection uses:
/// scaling `γ_c` by a factor `f` (and compensating in the consumer linears)
/// plants an LLM-style outlier channel at the input of the analog linears
/// without changing the network function.
#[derive(Debug, Clone)]
pub struct LayerNorm {
    /// Gain `γ`, shape `(1 × d)`.
    pub gain: Param,
    /// Bias `β`, shape `(1 × d)`.
    pub bias: Param,
    eps: f32,
    /// Cache of the last forward: normalised input and 1/σ per row.
    cache: Option<(Matrix, Vec<f32>)>,
}

impl LayerNorm {
    /// Creates a layer norm over `d` channels (γ = 1, β = 0).
    pub fn new(d: usize) -> Self {
        Self {
            gain: Param::new(Matrix::full(1, d, 1.0)),
            bias: Param::new(Matrix::zeros(1, d)),
            eps: 1e-5,
            cache: None,
        }
    }

    /// Channel count.
    pub fn dim(&self) -> usize {
        self.gain.value.cols()
    }

    /// Forward pass over `(n × d)`, caching intermediates for backward.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != d`.
    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        assert_eq!(x.cols(), self.dim(), "layernorm width mismatch");
        let d = self.dim();
        let mut x_hat = Matrix::zeros(x.rows(), d);
        let mut inv_std = Vec::with_capacity(x.rows());
        let g = self.gain.value.row(0).to_vec();
        let b = self.bias.value.row(0).to_vec();
        let mut y = Matrix::zeros(x.rows(), d);
        for i in 0..x.rows() {
            let row = x.row(i);
            let mean: f32 = row.iter().sum::<f32>() / d as f32;
            let var: f32 = row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / d as f32;
            let istd = 1.0 / (var + self.eps).sqrt();
            inv_std.push(istd);
            let xh = x_hat.row_mut(i);
            let yr = y.row_mut(i);
            for k in 0..d {
                let h = (row[k] - mean) * istd;
                xh[k] = h;
                yr[k] = g[k] * h + b[k];
            }
        }
        self.cache = Some((x_hat, inv_std));
        y
    }

    /// Forward without caching (inference-only path).
    pub fn forward_inference(&self, x: &Matrix) -> Matrix {
        assert_eq!(x.cols(), self.dim(), "layernorm width mismatch");
        let d = self.dim();
        let g = self.gain.value.row(0);
        let b = self.bias.value.row(0);
        let mut y = Matrix::zeros(x.rows(), d);
        for i in 0..x.rows() {
            let row = x.row(i);
            let mean: f32 = row.iter().sum::<f32>() / d as f32;
            let var: f32 = row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / d as f32;
            let istd = 1.0 / (var + self.eps).sqrt();
            let yr = y.row_mut(i);
            for k in 0..d {
                yr[k] = g[k] * (row[k] - mean) * istd + b[k];
            }
        }
        y
    }

    /// Backward pass; must follow a caching [`LayerNorm::forward`].
    ///
    /// # Panics
    ///
    /// Panics if no forward cache is present.
    #[allow(clippy::needless_range_loop)] // rows of four matrices in lockstep
    pub fn backward(&mut self, dy: &Matrix) -> Matrix {
        let (x_hat, inv_std) = self
            .cache
            .take()
            .expect("LayerNorm::backward without forward");
        let d = self.dim();
        let g = self.gain.value.row(0).to_vec();
        let mut dx = Matrix::zeros(dy.rows(), d);
        for i in 0..dy.rows() {
            let dyr = dy.row(i);
            let xhr = x_hat.row(i);
            // Parameter grads.
            {
                let gg = self.gain.grad.row_mut(0);
                for k in 0..d {
                    gg[k] += dyr[k] * xhr[k];
                }
                let gb = self.bias.grad.row_mut(0);
                for k in 0..d {
                    gb[k] += dyr[k];
                }
            }
            // Input grad: dx = (istd/d) * (d·dŷ − Σdŷ − x̂·Σ(dŷ⊙x̂))
            // with dŷ = γ ⊙ dy.
            let mut sum_dyh = 0.0f32;
            let mut sum_dyh_xh = 0.0f32;
            for k in 0..d {
                let dyh = dyr[k] * g[k];
                sum_dyh += dyh;
                sum_dyh_xh += dyh * xhr[k];
            }
            let istd = inv_std[i];
            let dxr = dx.row_mut(i);
            for k in 0..d {
                let dyh = dyr[k] * g[k];
                dxr[k] = istd / d as f32
                    * (d as f32 * dyh - sum_dyh - xhr[k] * sum_dyh_xh);
            }
        }
        dx
    }

    /// Mutable access to both parameters (for the optimizer).
    pub fn params_mut(&mut self) -> [&mut Param; 2] {
        [&mut self.gain, &mut self.bias]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nora_tensor::rng::Rng;
    use nora_tensor::stats;

    #[test]
    fn output_rows_are_normalised() {
        let mut rng = Rng::seed_from(1);
        let mut ln = LayerNorm::new(64);
        let x = Matrix::random_normal(4, 64, 3.0, 2.0, &mut rng);
        let y = ln.forward(&x);
        for i in 0..4 {
            let m = stats::mean(y.row(i));
            let s = stats::std_dev(y.row(i));
            assert!(m.abs() < 1e-4, "mean {m}");
            assert!((s - 1.0).abs() < 1e-3, "std {s}");
        }
    }

    #[test]
    fn forward_and_inference_agree() {
        let mut rng = Rng::seed_from(2);
        let mut ln = LayerNorm::new(16);
        ln.gain.value = Matrix::random_normal(1, 16, 1.0, 0.2, &mut rng);
        ln.bias.value = Matrix::random_normal(1, 16, 0.0, 0.2, &mut rng);
        let x = Matrix::random_normal(3, 16, 0.0, 1.0, &mut rng);
        let a = ln.forward(&x);
        let b = ln.forward_inference(&x);
        assert!(a.mse(&b) < 1e-12);
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = Rng::seed_from(3);
        let mut ln = LayerNorm::new(6);
        ln.gain.value = Matrix::random_normal(1, 6, 1.0, 0.3, &mut rng);
        let x = Matrix::random_normal(2, 6, 0.5, 1.5, &mut rng);

        let loss = |ln: &LayerNorm, x: &Matrix| -> f64 {
            ln.forward_inference(x)
                .as_slice()
                .iter()
                .map(|&v| (v as f64) * (v as f64) / 2.0)
                .sum()
        };
        let y = ln.forward(&x);
        let dx = ln.backward(&y); // dL/dy = y for the quadratic loss
        let eps = 1e-3f32;

        for &(r, c) in &[(0usize, 0usize), (1, 3), (0, 5)] {
            let mut xp = x.clone();
            xp[(r, c)] += eps;
            let mut xm = x.clone();
            xm[(r, c)] -= eps;
            let num = (loss(&ln, &xp) - loss(&ln, &xm)) / (2.0 * eps as f64);
            let ana = dx[(r, c)] as f64;
            assert!(
                (num - ana).abs() < 2e-2 * (1.0 + ana.abs()),
                "dx[{r},{c}] num {num} ana {ana}"
            );
        }
        // Gain gradient at one coordinate.
        let k = 2;
        let mut lp = ln.clone();
        lp.gain.value[(0, k)] += eps;
        let mut lm = ln.clone();
        lm.gain.value[(0, k)] -= eps;
        let num = (loss(&lp, &x) - loss(&lm, &x)) / (2.0 * eps as f64);
        let ana = ln.gain.grad[(0, k)] as f64;
        assert!(
            (num - ana).abs() < 2e-2 * (1.0 + ana.abs()),
            "dγ[{k}] num {num} ana {ana}"
        );
    }

    #[test]
    #[should_panic(expected = "without forward")]
    fn backward_without_forward_panics() {
        let mut ln = LayerNorm::new(4);
        ln.backward(&Matrix::zeros(1, 4));
    }

    #[test]
    fn scaled_gain_scales_output_channel() {
        let mut ln = LayerNorm::new(8);
        let mut rng = Rng::seed_from(5);
        let x = Matrix::random_normal(2, 8, 0.0, 1.0, &mut rng);
        let base = ln.forward_inference(&x);
        ln.gain.value[(0, 3)] *= 10.0;
        ln.bias.value[(0, 3)] *= 10.0;
        let scaled = ln.forward_inference(&x);
        for i in 0..2 {
            assert!((scaled[(i, 3)] - 10.0 * base[(i, 3)]).abs() < 1e-4);
            assert_eq!(scaled[(i, 0)], base[(i, 0)]);
        }
    }
}
