//! Regenerates Fig. 4: kernel density estimate and kurtosis of the
//! activation vs query-weight distribution of an early layer in the
//! Mistral-like model.
//!
//! Expected shape (paper Fig. 4): activation kurtosis orders of magnitude
//! above weight kurtosis (113.61 vs 1.25 in the paper), with a long
//! activation tail from fixed outlier channels.

use nora_bench::prepare_cached;
use nora_eval::runner::kde_report;
use nora_nn::zoo::other_presets;

fn main() {
    let mistral = &other_presets()[2];
    let prepared = prepare_cached(mistral);
    let report = kde_report(&prepared, None);
    println!("{}", report.table().render());
    println!("normalised KDE (log-scaled bars):");
    println!("{}", report.sparkline(25));
    println!(
        "paper reference: activation kurtosis 113.61 vs weight kurtosis 1.25 \
         (Mistral-7B layer 2); the ratio — activations vastly heavier-tailed \
         than weights — is the reproduced quantity."
    );
}
