//! §VII extension: per-layer analog sensitivity on the OPT-6.7b-like model.
//!
//! `only-this` rows deploy exactly one linear on noisy tiles (the rest
//! digital) — which layer is the bottleneck? `all-but-this` rows keep one
//! layer digital — is rescuing a single layer enough?

use nora_bench::prepare_cached;
use nora_cim::TileConfig;
use nora_eval::runner::{layer_sensitivity, LayerSensitivityRow, LayerStudyMode};
use nora_nn::zoo::opt_presets;

fn main() {
    let prepared = prepare_cached(&opt_presets()[2]);
    let tile = TileConfig::paper_default();
    let mut rows: Vec<LayerSensitivityRow> = Vec::new();
    for mode in [
        LayerStudyMode::OnlyThisAnalog,
        LayerStudyMode::AllButThisAnalog,
    ] {
        rows.extend(layer_sensitivity(&prepared, mode, false, &tile, 0x1a));
    }
    println!("{}", LayerSensitivityRow::table(&rows).render());

    let worst = rows
        .iter()
        .filter(|r| r.mode == LayerStudyMode::OnlyThisAnalog)
        .min_by(|a, b| a.accuracy.total_cmp(&b.accuracy))
        .expect("rows");
    println!(
        "most sensitive single layer: b{}.{} ({}% alone on analog; digital {}%)",
        worst.id.block,
        worst.id.kind.name(),
        nora_eval::report::pct(worst.accuracy),
        nora_eval::report::pct(worst.digital),
    );
}
