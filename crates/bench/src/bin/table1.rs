//! Regenerates Table I: the modelled IO and tile non-idealities.

use nora_cim::NonIdeality;
use nora_eval::report::Table;

fn main() {
    let mut t = Table::new(&["Category", "Noise", "Type"])
        .with_title("Table I — major I/O and tile non-idealities modeled");
    for n in NonIdeality::ALL {
        t.row_owned(vec![
            format!("{} non-idealities", n.category()),
            n.name().to_string(),
            n.kind().to_string(),
        ]);
    }
    println!("{}", t.render());
    println!(
        "paper: 5 IO rows (ADC/DAC quantization, additive output/input noise, \
         S-shape nonlinearity) + 3 tile rows (programming noise, short-term \
         read noise, IR-drop) — all eight are modelled by nora-cim."
    );
}
