//! §VII extension: first-order analog energy and latency per token for
//! naive vs NORA deployments.
//!
//! NORA's accuracy win costs essentially nothing in analog energy: the
//! conversion chain is identical, and the only second-order effect is a
//! handful of extra bound-management retries (NORA's larger bitline
//! currents occasionally brush the ADC bound — the same mechanism that
//! buys its SNR).

use nora_bench::prepare_cached;
use nora_eval::runner::{energy_study, EnergyRow};
use nora_nn::zoo::{opt_presets, other_presets};

fn main() {
    let prepared = vec![
        prepare_cached(&opt_presets()[2]),
        prepare_cached(&other_presets()[2]),
    ];
    let rows = energy_study(&prepared, 0xe6);
    println!("{}", EnergyRow::table(&rows).render());
    println!(
        "constants are published ballparks (see nora_cim::energy docs); \
         the comparison across plans is the meaningful quantity."
    );
}
