//! Regenerates Table III: NORA accuracy on the LLaMA-2/3- and Mistral-like
//! models vs their digital full-precision baselines.
//!
//! Expected shape (paper Table III): ≤ 1.6 pp loss for the LLaMA-like
//! models and ≤ 1 pp for the Mistral-like model.

use nora_bench::prepare_cached;
use nora_eval::report::{pct, Table};
use nora_eval::runner::{overall, OverallConfig};
use nora_nn::zoo::other_presets;

fn main() {
    let prepared: Vec<_> = other_presets().iter().map(prepare_cached).collect();
    let rows = overall(&prepared, &OverallConfig::default());
    // Table III's layout: one row pair (method / digital) per model.
    let mut t = Table::new(&["Model", "Setting", "Lambada-like acc (%)"])
        .with_title("Table III — NORA accuracy for LLaMA- and Mistral-like models");
    for r in &rows {
        t.row_owned(vec![
            r.model.clone(),
            "Our method".to_string(),
            pct(r.nora),
        ]);
        t.row_owned(vec![
            r.model.clone(),
            "Digital Full precision".to_string(),
            pct(r.digital),
        ]);
    }
    println!("{}", t.render());
    for r in &rows {
        println!("{}: NORA loss {:.2} pp (naive would lose {:.1} pp)",
            r.model, r.nora_loss_pp(), r.naive_loss_pp());
    }
}
