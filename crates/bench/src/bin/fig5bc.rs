//! Regenerates Fig. 5b/c: per-non-ideality mitigation at one matched MSE
//! level (1.5–1.6 ·10⁻³) — naive analog vs NORA.
//!
//! Expected shape (paper §V-B): NORA recovers most of the ADC-quantization
//! drop and a large share of the additive-noise drops on the OPT-like
//! model, and still improves the already-robust LLaMA/Mistral-like models.

use nora_bench::prepare_cached;
use nora_eval::runner::{mitigation, MitigationConfig, MitigationRow};
use nora_nn::zoo::{opt_presets, other_presets};

fn main() {
    let opt = &opt_presets()[2]; // opt-6.7b-sim, the paper's headline model
    let others = other_presets();
    let prepared = vec![
        prepare_cached(opt),
        prepare_cached(&others[1]), // llama3-8b-sim
        prepare_cached(&others[2]), // mistral-7b-sim
    ];
    let rows = mitigation(&prepared, &MitigationConfig::default());
    println!("{}", MitigationRow::table(&rows).render());
    println!("recovery = share of the noise-induced drop that NORA wins back.");
}
