//! Regenerates Fig. 5a: the OPT family under digital full precision, naive
//! analog (Table II), and NORA.
//!
//! Expected shape (paper §V-A): naive analog collapses (up to ~40 pp drop
//! for OPT-2.7b); NORA recovers to within ~1 pp of digital for the larger
//! models.

use nora_bench::prepare_cached;
use nora_eval::runner::{overall, OverallConfig, OverallRow};
use nora_nn::zoo::opt_presets;

fn main() {
    let prepared: Vec<_> = opt_presets().iter().map(prepare_cached).collect();
    let rows = overall(&prepared, &OverallConfig::default());
    println!(
        "{}",
        OverallRow::table(&rows, "Fig. 5a — OPT family: digital vs naive analog vs NORA")
            .render()
    );
    for r in &rows {
        println!(
            "{}: naive loses {:.1} pp, NORA loses {:.1} pp{}",
            r.model,
            r.naive_loss_pp(),
            r.nora_loss_pp(),
            if r.nora_loss_pp() < 1.0 {
                "  (< 1 pp, matching the paper's headline)"
            } else {
                ""
            }
        );
    }
}
