//! Analytic fast-evaluator validation: predicted vs Monte-Carlo simulated
//! accuracy on the Fig. 3 per-noise grid (naïve plan, MSE-matched
//! severities) and the paper-default Table II/III points (naïve + NORA).
//!
//! Prints the comparison table and writes the raw grid as
//! `results/analytic_validation.csv` — one row per point with both
//! accuracies and the stated tolerance, so the ≥90%-within-tolerance
//! claim of the analytic model is auditable offline.
//!
//! `NORA_FAST=1` shrinks the MSE grid for smoke runs;
//! `NORA_AV_MSE_POINTS` overrides the grid depth directly.

use nora_bench::{fast_mode, prepare_cached};
use nora_eval::runner::{analytic_validation, AnalyticValidationConfig, AnalyticValidationRow};
use nora_nn::zoo::opt_presets;

fn main() {
    let opt = &opt_presets()[0];
    let prepared = vec![prepare_cached(opt)];

    let mut cfg = AnalyticValidationConfig::default();
    if fast_mode() {
        cfg.mse_points = 2;
    }
    if let Some(p) = std::env::var("NORA_AV_MSE_POINTS")
        .ok()
        .and_then(|v| v.parse().ok())
    {
        cfg.mse_points = p;
    }

    let t0 = std::time::Instant::now();
    let rows = analytic_validation(&prepared, &cfg);
    println!("{}", AnalyticValidationRow::table(&rows).render());
    let frac = AnalyticValidationRow::within_fraction(&rows);
    println!(
        "{} grid points in {:.1?}; {:.1}% within stated tolerance",
        rows.len(),
        t0.elapsed(),
        100.0 * frac,
    );

    let csv_path = std::path::Path::new("results").join("analytic_validation.csv");
    if let Some(dir) = csv_path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    match std::fs::write(&csv_path, AnalyticValidationRow::csv(&rows)) {
        Ok(()) => println!("wrote {}", csv_path.display()),
        Err(e) => eprintln!("failed to write {}: {e}", csv_path.display()),
    }
}
