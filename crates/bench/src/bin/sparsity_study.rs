//! N:M sparsity study: digital accuracy, analytic predicted accuracy,
//! packed-vs-dense decode throughput, and active-row decode energy per
//! block-wise sparsity pattern, plus the outlier-aware `auto` selector row.
//!
//! Prints the summary table and writes the raw sweep as
//! `results/sparsity_study.csv`.
//!
//! Expected shape: 2:4 halves the multiply–accumulates of every linear, so
//! sparse decode throughput clears 1.5× the dense reference while accuracy
//! stays within a point of the digital baseline; 1:4 trades further speed
//! for visible loss, and the `auto` row lands between, pruning the
//! flat-activation layers and keeping outlier-heavy ones dense.
//!
//! Env knobs: `NORA_SPARSITY_PATTERNS` (comma-separated labels from
//! {dense,4:8,2:4,1:4}), `NORA_SPARSITY_BUDGET` (accuracy budget for the
//! `auto` selector row), `NORA_SPARSITY_TOKENS` (timed decode length).
//! `NORA_FAST=1` shrinks the model set and decode loop for smoke runs.

use nora_bench::{fast_mode, prepare_cached};
use nora_eval::runner::{sparsity_study, SparsityStudyConfig, SparsityStudyRow};
use nora_nn::zoo::{opt_presets, other_presets};
use nora_tensor::NmPattern;

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_patterns(name: &str, default: &[NmPattern]) -> Vec<NmPattern> {
    std::env::var(name)
        .ok()
        .map(|v| {
            v.split(',')
                .filter_map(|s| NmPattern::parse(s.trim()))
                .collect()
        })
        .filter(|v: &Vec<NmPattern>| !v.is_empty())
        .unwrap_or_else(|| default.to_vec())
}

fn main() {
    let opt = &opt_presets()[2];
    let mistral = &other_presets()[2];
    let prepared = if fast_mode() {
        vec![prepare_cached(opt)]
    } else {
        vec![prepare_cached(opt), prepare_cached(mistral)]
    };

    let mut cfg = SparsityStudyConfig::default();
    cfg.patterns = env_patterns("NORA_SPARSITY_PATTERNS", &cfg.patterns);
    cfg.auto_budget = env_f64("NORA_SPARSITY_BUDGET", cfg.auto_budget);
    let default_tokens = if fast_mode() { 64 } else { 512 };
    cfg.decode_tokens = env_usize("NORA_SPARSITY_TOKENS", default_tokens);

    let mut rows = Vec::new();
    for p in &prepared {
        rows.extend(sparsity_study(p, &cfg));
    }
    println!("{}", SparsityStudyRow::table(&rows).render());

    for p in &prepared {
        let pick = |pattern: &str| {
            rows.iter()
                .find(|r| r.model == p.zoo.name && r.pattern == pattern)
        };
        if let (Some(dense), Some(sparse)) = (pick("dense"), pick("2:4")) {
            println!(
                "{}: 2:4 decode {:.0} tok/s vs dense {:.0} tok/s ({:.2}x), \
                 accuracy {:.1}% vs digital {:.1}% ({:+.1} pp)",
                p.zoo.name,
                sparse.tokens_per_sec,
                dense.dense_tokens_per_sec,
                sparse.speedup,
                100.0 * sparse.accuracy,
                100.0 * sparse.digital,
                -sparse.loss_pp(),
            );
        }
    }

    let csv_path = std::path::Path::new("results").join("sparsity_study.csv");
    if let Some(dir) = csv_path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    match std::fs::write(&csv_path, SparsityStudyRow::csv(&rows)) {
        Ok(()) => println!("wrote {}", csv_path.display()),
        Err(e) => eprintln!("failed to write {}: {e}", csv_path.display()),
    }
}
