//! λ ablation (paper §VII future work): global migration-strength sweep
//! plus the per-layer λ search, on the OPT-6.7b-like model.

use nora_bench::prepare_cached;
use nora_cim::TileConfig;
use nora_core::{lambda_search, RescalePlan, SmoothingConfig};
use nora_eval::report::{pct, Table};
use nora_eval::tasks::analog_accuracy;
use nora_nn::zoo::opt_presets;

fn main() {
    let prepared = prepare_cached(&opt_presets()[2]);
    let tile = TileConfig::paper_default();

    let mut t = Table::new(&["lambda", "acc%", "loss_pp"])
        .with_title("λ ablation — OPT-6.7b-sim, Table II noise");
    for lambda in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let plan = RescalePlan::nora(
            &prepared.zoo.model,
            &prepared.calibration,
            SmoothingConfig::with_lambda(lambda),
        );
        let mut analog = plan.deploy(&prepared.zoo.model, tile.clone(), 0xab);
        let acc = analog_accuracy(&mut analog, &prepared.episodes);
        t.row_owned(vec![
            format!("{lambda:.2}"),
            pct(acc),
            format!("{:+.1}", 100.0 * (prepared.digital_acc - acc)),
        ]);
    }
    println!("{}", t.render());

    eprintln!("[lambda_ablation] per-layer λ search…");
    let result = lambda_search::per_layer_search(
        &prepared.zoo.model,
        &prepared.calibration,
        &prepared.calib_seqs,
        &tile,
        &[0.0, 0.25, 0.5, 0.75, 1.0],
        0xab,
    );
    let mut analog = result
        .plan
        .deploy(&prepared.zoo.model, tile.clone(), 0xab);
    let acc = analog_accuracy(&mut analog, &prepared.episodes);
    println!(
        "per-layer search: acc {}% (loss {:+.1} pp); chosen λ histogram:",
        nora_eval::report::pct(acc),
        100.0 * (prepared.digital_acc - acc)
    );
    for lambda in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let n = result
            .per_layer
            .values()
            .filter(|&&l| (l - lambda).abs() < 1e-6)
            .count();
        println!("  λ={lambda:.2}: {n} layers");
    }
}
