//! §VII extension: NORA on PCM vs ReRAM tiles.
//!
//! The paper claims the method "can also be extended to other NVM devices
//! such as ReRAM"; this binary verifies it: NORA's gain is device-agnostic
//! because the rescaling lives in the scaling factors, not the device.

use nora_bench::prepare_cached;
use nora_eval::runner::{cross_device, CrossDeviceRow};
use nora_nn::zoo::{opt_presets, other_presets};

fn main() {
    let prepared = vec![
        prepare_cached(&opt_presets()[2]),
        prepare_cached(&other_presets()[2]),
    ];
    let rows = cross_device(&prepared, 0xde);
    println!("{}", CrossDeviceRow::table(&rows).render());
}
