//! Design-space Pareto sweep: tile geometry × converter resolution ×
//! device noise × NORA λ, scored by the analytic fast evaluator plus the
//! first-order energy/latency/area laws — thousands of configurations in
//! seconds, no tile forwards.
//!
//! Prints the Pareto frontier and writes the frontier rows as
//! `results/design_space_pareto.csv`. With `--metrics-out` /
//! `NORA_METRICS_OUT` set, the sweep telemetry (`eval.sweep.points`,
//! `eval.sweep.point_secs`) lands in the metrics sidecar under the
//! `design_space` bench marker.
//!
//! Env knobs (comma-separated lists): `NORA_DS_TILES`, `NORA_DS_DAC_BITS`,
//! `NORA_DS_ADC_BITS`, `NORA_DS_NOISE_SCALES`, `NORA_DS_LAMBDAS`.
//! `NORA_FAST=1` switches to the tiny smoke grid.

use nora_bench::harness::export_metrics;
use nora_bench::{fast_mode, prepare_cached};
use nora_eval::runner::{design_space_recorded, DesignSpaceConfig, DesignSpaceRow};
use nora_nn::zoo::opt_presets;

fn env_list<T: std::str::FromStr + Clone>(name: &str, default: &[T]) -> Vec<T> {
    std::env::var(name)
        .ok()
        .map(|v| {
            v.split(',')
                .filter_map(|s| s.trim().parse().ok())
                .collect()
        })
        .filter(|v: &Vec<T>| !v.is_empty())
        .unwrap_or_else(|| default.to_vec())
}

fn main() {
    let opt = &opt_presets()[0];
    let p = prepare_cached(opt);

    let mut cfg = if fast_mode() {
        DesignSpaceConfig::tiny()
    } else {
        DesignSpaceConfig::default()
    };
    cfg.tile_sizes = env_list("NORA_DS_TILES", &cfg.tile_sizes);
    cfg.dac_bits = env_list("NORA_DS_DAC_BITS", &cfg.dac_bits);
    cfg.adc_bits = env_list("NORA_DS_ADC_BITS", &cfg.adc_bits);
    cfg.noise_scales = env_list("NORA_DS_NOISE_SCALES", &cfg.noise_scales);
    cfg.lambdas = env_list("NORA_DS_LAMBDAS", &cfg.lambdas);

    let mut metrics = nora_obs::Metrics::new();
    let t0 = std::time::Instant::now();
    let rows = design_space_recorded(&p, &cfg, &mut metrics);
    let elapsed = t0.elapsed();

    let frontier: Vec<DesignSpaceRow> = rows.iter().filter(|r| r.pareto).cloned().collect();
    println!("{}", DesignSpaceRow::table(&frontier).render());
    println!(
        "swept {} configurations in {:.1?} ({} on the Pareto frontier)",
        rows.len(),
        elapsed,
        frontier.len(),
    );

    let csv_path = std::path::Path::new("results").join("design_space_pareto.csv");
    if let Some(dir) = csv_path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    match std::fs::write(&csv_path, DesignSpaceRow::csv(&frontier)) {
        Ok(()) => println!("wrote {}", csv_path.display()),
        Err(e) => eprintln!("failed to write {}: {e}", csv_path.display()),
    }

    export_metrics("design_space", &metrics);
}
