//! Regenerates the §VII limitation study: NORA accuracy after PCM
//! conductance drift, with and without global drift compensation.
//!
//! Expected shape (paper §VII): after one hour of drift NORA's advantage
//! shrinks in some models; the simple global compensation recovers much of
//! the loss ("IR-drop and drift could be simply compensated").

use nora_bench::prepare_cached;
use nora_eval::runner::{drift_study, DriftConfig, DriftRow};
use nora_nn::zoo::{opt_presets, other_presets};

fn main() {
    let opt = &opt_presets()[2];
    let mistral = &other_presets()[2];
    let prepared = vec![prepare_cached(opt), prepare_cached(mistral)];
    let rows = drift_study(&prepared, &DriftConfig::default());
    println!("{}", DriftRow::table(&rows).render());

    for p in &prepared {
        let pick = |plan: &str, comp: bool, t: f64| {
            rows.iter()
                .find(|r| {
                    r.model == p.zoo.name
                        && r.plan == plan
                        && r.compensated == comp
                        && (r.t_seconds - t).abs() < 1.0
                })
                .map(|r| 100.0 * r.accuracy)
                .unwrap_or(f64::NAN)
        };
        println!(
            "{}: NORA fresh {:.1}% → 1h uncompensated {:.1}% → 1h compensated {:.1}%",
            p.zoo.name,
            pick("nora", false, 20.0),
            pick("nora", false, 3600.0),
            pick("nora", true, 3600.0),
        );
    }
}
