//! Regenerates the Fig. 1 "Challenge 2" motivation: AIHWKIT-style noise
//! and bound management cannot rescue LLM-like data on analog tiles, while
//! NORA can — the trade-off every `α` faces is unwinnable when outliers
//! stretch the input range.

use nora_bench::prepare_cached;
use nora_eval::runner::{management_ablation, ManagementRow};
use nora_nn::zoo::opt_presets;

fn main() {
    let prepared = vec![prepare_cached(&opt_presets()[2])];
    let rows = management_ablation(&prepared, 0x59);
    println!("{}", ManagementRow::table(&rows).render());
    let best_mgmt = rows
        .iter()
        .filter(|r| !r.with_nora)
        .map(|r| r.accuracy)
        .fold(f64::NEG_INFINITY, f64::max);
    let nora = rows.iter().find(|r| r.with_nora).map(|r| r.accuracy).unwrap_or(0.0);
    println!(
        "best management-only accuracy {:.1}% vs NORA {:.1}% — dynamic α tuning \
         alone cannot fix the outlier distribution.",
        100.0 * best_mgmt,
        100.0 * nora
    );
}
