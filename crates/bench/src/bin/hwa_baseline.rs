//! The paper's "Challenge 1" comparison: hardware-aware (noise-injection)
//! training vs post-training NORA.
//!
//! HWA fine-tuning (Joshi et al., Nat. Comm. 2020: Gaussian weight noise at
//! every training step) hardens the weights — the non-idealities LLMs were
//! already resilient to — but does nothing about the IO side. NORA needs no
//! training at all and fixes the part that actually hurts. Training-step
//! counts are reported to make the paper's cost argument ("non-trivial, if
//! not prohibitive for LLMs") concrete.

use nora_cim::{NonIdeality, TileConfig, WeightSource};
use nora_core::{calibrate, RescalePlan, SmoothingConfig};
use nora_eval::report::{pct, Table};
use nora_eval::tasks::analog_accuracy;
use nora_nn::corpus::Corpus;
use nora_nn::trainer::{train_hwa, HwaConfig};
use nora_nn::zoo::{tiny_spec, ModelFamily};

fn main() {
    // Standard-trained OPT-like model + its NORA plan.
    let spec = tiny_spec(ModelFamily::OptLike, 9090);
    eprintln!("[hwa_baseline] training standard model…");
    let mut zoo = spec.build();
    let calib_seqs: Vec<Vec<usize>> = (0..6).map(|_| zoo.corpus.episode().tokens).collect();
    let episodes = zoo.corpus.episodes(200);
    let calibration = calibrate(&zoo.model, &calib_seqs);
    let nora_plan = RescalePlan::nora(&zoo.model, &calibration, SmoothingConfig::default());

    // HWA fine-tuning continues from the trained weights.
    eprintln!("[hwa_baseline] HWA fine-tuning (+50% training steps)…");
    let mut hwa_model = zoo.model.clone();
    let mut hwa_corpus = Corpus::new(*zoo.corpus.config());
    let extra_steps = spec.train.steps / 2;
    train_hwa(
        &mut hwa_model,
        &mut hwa_corpus,
        &HwaConfig {
            base: nora_nn::trainer::TrainConfig {
                steps: extra_steps,
                lr: spec.train.lr * 0.1,
                ..spec.train
            },
            weight_noise: 0.02,
        },
        17,
    );

    let digital = nora_eval::tasks::digital_accuracy(&zoo.model, &episodes);
    let hwa_digital = nora_eval::tasks::digital_accuracy(&hwa_model, &episodes);

    let mut t = Table::new(&["deployment", "method", "extra train steps", "acc%"])
        .with_title("Challenge 1 — HWA training vs post-training NORA (opt-like model)");
    t.row_owned(vec![
        "digital".into(),
        "standard".into(),
        "0".into(),
        pct(digital),
    ]);
    t.row_owned(vec![
        "digital".into(),
        "hwa-finetuned".into(),
        extra_steps.to_string(),
        pct(hwa_digital),
    ]);

    // Scenario A: weight non-idealities only (3x programming noise) — the
    // regime HWA targets.
    let mut prog_tile = NonIdeality::ProgrammingNoise.configure(3.0);
    prog_tile.weight_source = WeightSource::Pcm(3.0);
    // Scenario B: the full Table II set — IO noise dominates.
    let scenarios = [("prog-noise-3x", prog_tile), ("table2", TileConfig::paper_default())];
    for (name, tile) in scenarios {
        let mut std_naive = RescalePlan::naive().deploy(&zoo.model, tile.clone(), 3);
        t.row_owned(vec![
            name.into(),
            "standard naive".into(),
            "0".into(),
            pct(analog_accuracy(&mut std_naive, &episodes)),
        ]);
        let mut hwa_naive = RescalePlan::naive().deploy(&hwa_model, tile.clone(), 3);
        t.row_owned(vec![
            name.into(),
            "hwa naive".into(),
            extra_steps.to_string(),
            pct(analog_accuracy(&mut hwa_naive, &episodes)),
        ]);
        let mut nora = nora_plan.deploy(&zoo.model, tile, 3);
        t.row_owned(vec![
            name.into(),
            "NORA (no training)".into(),
            "0".into(),
            pct(analog_accuracy(&mut nora, &episodes)),
        ]);
    }
    println!("{}", t.render());
    println!(
        "HWA hardens the weight side at real training cost; it cannot touch \
         the IO quantization/noise that dominates under Table II — NORA can, \
         for the price of one calibration pass."
    );
}
