//! Regenerates Table II: the simulator settings used by every experiment.

use nora_cim::TileConfig;
use nora_eval::report::Table;

fn main() {
    let cfg = TileConfig::paper_default();
    cfg.validate().expect("paper default config is valid");

    // The assertions double as a regression test that `paper_default`
    // continues to match the paper's Table II.
    assert_eq!(cfg.dac.steps(), Some(128), "in_res 7 bit");
    assert_eq!(cfg.adc.steps(), Some(128), "out_res 7 bit");
    assert_eq!(cfg.out_noise, 0.04, "out_noise 0.04");
    assert_eq!(cfg.w_noise, 0.0175, "w_noise 0.0175");
    assert_eq!(cfg.ir_drop, 1.0, "ir_drop 1.0");
    assert_eq!((cfg.tile_rows, cfg.tile_cols), (512, 512), "tile 512x512");

    let mut t = Table::new(&["Setting", "Paper value", "This repo"])
        .with_title("Table II — simulator (AIHWKIT-equivalent) settings");
    t.row(&["in_res (DAC steps)", "7 bit (128)", "128"]);
    t.row(&["out_res (ADC steps)", "7 bit (128)", "128"]);
    t.row(&["out_noise (additive σ)", "0.04", "0.04"]);
    t.row(&["ir_drop (scale)", "1.0", "1.0"]);
    t.row(&["w_noise (short-term)", "0.0175", "0.0175"]);
    t.row(&["tile_size", "512×512", "512×512"]);
    t.row(&["noise management", "default (ABS_MAX)", "AbsMax"]);
    t.row(&["bound management", "default (ITERATIVE)", "Iterative{3}"]);
    t.row(&["programming noise", "default (PCM model)", "Pcm(1.0)"]);
    println!("{}", t.render());
    println!("all assertions passed — TileConfig::paper_default() matches Table II.");
}
