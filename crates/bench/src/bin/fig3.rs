//! Regenerates Fig. 3: accuracy drop per non-ideality at MSE-matched
//! severity levels, for an OPT-like, a LLaMA-like, and a Mistral-like model.
//!
//! Expected shape (paper §III-A): all models collapse under additive
//! output noise; the OPT-like model is far more sensitive to A/D
//! quantization than LLaMA/Mistral-like models; every model is robust to
//! the tile non-idealities (read noise, programming noise, IR-drop,
//! S-shape).

use nora_bench::{fast_mode, prepare_cached};
use nora_eval::runner::{sensitivity, SensitivityConfig, SensitivityPoint};
use nora_nn::zoo::{opt_presets, other_presets};

fn main() {
    let opt = &opt_presets()[1]; // opt-2.7b-sim: the most quantization-fragile
    let others = other_presets();
    let prepared = vec![
        prepare_cached(opt),
        prepare_cached(&others[0]), // llama2-7b-sim
        prepare_cached(&others[2]), // mistral-7b-sim
    ];
    let cfg = SensitivityConfig {
        // The paper's Fig. 3 uses an 8-point MSE grid.
        mse_points: if fast_mode() { 3 } else { 8 },
        ..SensitivityConfig::default()
    };
    eprintln!("[fig3] sweeping {} noises × {} levels…", cfg.noises.len(), cfg.mse_points);
    let points = sensitivity(&prepared, &cfg);
    println!("{}", SensitivityPoint::table(&points).render());

    // Headline comparison: max drop per (noise, model).
    println!("max accuracy drop (pp) at the top severity:");
    for noise in &cfg.noises {
        let mut line = format!("  {:<11}", noise.name());
        for p in &prepared {
            let max_drop = points
                .iter()
                .filter(|pt| pt.noise == *noise && pt.model == p.zoo.name)
                .map(|pt| pt.drop_pp)
                .fold(f64::NEG_INFINITY, f64::max);
            line.push_str(&format!("  {}={:+.1}", p.zoo.name, max_drop));
        }
        println!("{line}");
    }
}
