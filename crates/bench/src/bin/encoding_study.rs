//! Input-encoding ablation: analog multi-level DAC vs bit-serial binary
//! drive (ISAAC-style), under the Table II noise set and under a strong
//! driver S-shape nonlinearity.
//!
//! Bit-serial drivers trade conversion rounds (energy/latency) for
//! robustness: binary levels cancel the S-shape exactly, and the digital
//! shift-add attenuates per-plane additive output noise.

use nora_bench::prepare_cached;
use nora_cim::{InputEncoding, TileConfig};
use nora_core::RescalePlan;
use nora_eval::report::{pct, Table};
use nora_eval::tasks::analog_accuracy;
use nora_nn::zoo::opt_presets;

fn main() {
    let prepared = prepare_cached(&opt_presets()[2]);
    let mut t = Table::new(&["tile config", "encoding", "plan", "acc%"])
        .with_title("Input-encoding ablation — analog DAC vs bit-serial drive");

    let scenarios: Vec<(&str, TileConfig)> = vec![
        ("table2", TileConfig::paper_default()),
        ("table2 + s_shape=2", {
            let mut c = TileConfig::paper_default();
            c.s_shape = 2.0;
            c
        }),
    ];
    for (name, base) in scenarios {
        for (enc_name, enc) in [
            ("analog-7bit", InputEncoding::Analog),
            ("bit-serial-7bit", InputEncoding::BitSerial { bits: 7 }),
        ] {
            for (plan_name, plan) in [
                ("naive", RescalePlan::naive()),
                ("nora", prepared.nora_plan.clone()),
            ] {
                let mut cfg = base.clone();
                cfg.input_encoding = enc;
                let mut analog = plan.deploy(&prepared.zoo.model, cfg, 0xe2c);
                let acc = analog_accuracy(&mut analog, &prepared.episodes);
                t.row_owned(vec![
                    name.to_string(),
                    enc_name.to_string(),
                    plan_name.to_string(),
                    pct(acc),
                ]);
            }
        }
    }
    println!("{}", t.render());
    println!("digital baseline: {}%", pct(prepared.digital_acc));
}
