//! Long-horizon "serving day" study: accuracy and throughput over 10⁶
//! virtual seconds of continuous serving under PCM conductance drift, at
//! several hard-fault rates, with and without online mitigation
//! (α̂ probe recalibration + background spare-tile rotation).
//!
//! Prints the per-segment table and writes the raw curves as
//! `results/drift_serving.csv`. With `--metrics-out`/`NORA_METRICS_OUT`
//! set, the accuracy/throughput-over-time histograms and the engines'
//! `serve.maint.*` counters land in the metrics sidecar.
//!
//! Expected shape: the unmitigated engine decays measurably across the
//! horizon (conductances shrink under `g(t) = g_p (t/t_c)^{-ν}` while the
//! noise floor does not), while the mitigated engine holds ≥95% of its
//! t = 0 accuracy — recalibration restores the global signal scale and
//! rotation replaces tiles whose drift dispersion trips the ABFT ladder.
//!
//! Env knobs: `NORA_DRIFT_HORIZON` (virtual seconds), `NORA_DRIFT_STEP_SECS`
//! (virtual seconds per decode step), `NORA_DRIFT_RATES` (comma-separated
//! stuck-cell rates). `NORA_FAST=1` shrinks the horizon for smoke runs.

use nora_bench::harness::{export_metrics, metrics_out};
use nora_bench::{fast_mode, prepare_cached};
use nora_eval::runner::{drift_serving_study_recorded, DriftServingConfig, DriftServingRow};
use nora_nn::zoo::{opt_presets, other_presets};

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_rates(name: &str, default: &[f64]) -> Vec<f64> {
    std::env::var(name)
        .ok()
        .map(|v| {
            v.split(',')
                .filter_map(|s| s.trim().parse().ok())
                .collect()
        })
        .filter(|v: &Vec<f64>| !v.is_empty())
        .unwrap_or_else(|| default.to_vec())
}

fn main() {
    let opt = &opt_presets()[2];
    let mistral = &other_presets()[2];
    let prepared = if fast_mode() {
        vec![prepare_cached(opt)]
    } else {
        vec![prepare_cached(opt), prepare_cached(mistral)]
    };

    let mut cfg = DriftServingConfig::default();
    let default_horizon = if fast_mode() { 2e5 } else { 1e6 };
    cfg.horizon = env_f64("NORA_DRIFT_HORIZON", default_horizon);
    cfg.secs_per_decode_step = env_f64("NORA_DRIFT_STEP_SECS", cfg.secs_per_decode_step);
    cfg.cell_rates = env_rates("NORA_DRIFT_RATES", &cfg.cell_rates);

    let mut metrics = nora_obs::Metrics::new();
    let rows = drift_serving_study_recorded(&prepared, &cfg, &mut metrics);
    println!("{}", DriftServingRow::table(&rows).render());

    for p in &prepared {
        for &rate in &cfg.cell_rates {
            let arm = |mitigated: bool| {
                let mut points = rows.iter().filter(|r| {
                    r.model == p.zoo.name
                        && r.mitigated == mitigated
                        && (r.cell_rate - rate).abs() < 1e-12
                });
                let first = points.next();
                let last = points.next_back().or(first);
                (
                    first.map(|r| 100.0 * r.accuracy).unwrap_or(f64::NAN),
                    last.map(|r| 100.0 * r.accuracy).unwrap_or(f64::NAN),
                )
            };
            let (t0, un_end) = arm(false);
            let (_, mit_end) = arm(true);
            println!(
                "{} @ {:.1}% faults: t=0 {:.1}% → t={:.0}ks unmitigated {:.1}% / mitigated {:.1}% \
                 (held {:.0}% of t=0)",
                p.zoo.name,
                100.0 * rate,
                t0,
                cfg.horizon / 1e3,
                un_end,
                mit_end,
                100.0 * mit_end / t0,
            );
        }
    }

    let csv_path = std::path::Path::new("results").join("drift_serving.csv");
    if let Some(dir) = csv_path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    match std::fs::write(&csv_path, DriftServingRow::csv(&rows)) {
        Ok(()) => println!("wrote {}", csv_path.display()),
        Err(e) => eprintln!("failed to write {}: {e}", csv_path.display()),
    }

    if metrics_out().is_some() {
        export_metrics("drift_serving", &metrics);
    }
}
