//! §VII extension: multi-cell weight slicing ("over 8-bit weight precision
//! by using multiple memory cells").
//!
//! Sweeps the programming-noise severity with 1/2/3 significance slices per
//! weight on the OPT-like model (naive mapping, so the effect of weight
//! precision is isolated from NORA's IO-side gains).

use nora_bench::prepare_cached;
use nora_cim::{NonIdeality, TileConfig, WeightSource};
use nora_core::RescalePlan;
use nora_eval::report::{pct, Table};
use nora_eval::tasks::analog_accuracy;
use nora_nn::zoo::opt_presets;

fn main() {
    let prepared = prepare_cached(&opt_presets()[2]);
    let mut t = Table::new(&["prog_noise_scale", "slices=1", "slices=2", "slices=3"])
        .with_title("§VII extension — weight slicing vs programming-noise severity (acc %)");
    for severity in [1.0f32, 3.0, 6.0, 10.0] {
        let mut cells = vec![format!("{severity:.0}x")];
        for slices in [1u32, 2, 3] {
            let mut cfg = NonIdeality::ProgrammingNoise.configure(severity);
            cfg.weight_source = WeightSource::Pcm(severity);
            cfg.weight_slices = slices;
            let mut analog = RescalePlan::naive().deploy(&prepared.zoo.model, cfg, 0x57);
            cells.push(pct(analog_accuracy(&mut analog, &prepared.episodes)));
        }
        t.row_owned(cells);
    }
    println!("{}", t.render());
    println!(
        "digital baseline: {}%. Slicing holds accuracy as programming noise \
         grows — the multi-cell precision argument of §VII.",
        nora_eval::report::pct(prepared.digital_acc)
    );
    // Also confirm slicing composes with NORA under the full Table II noise.
    let mut cfg = TileConfig::paper_default();
    cfg.weight_slices = 2;
    let mut nora = prepared
        .nora_plan
        .deploy(&prepared.zoo.model, cfg, 0x57);
    println!(
        "NORA + 2-slice weights under Table II noise: {}%",
        nora_eval::report::pct(analog_accuracy(&mut nora, &prepared.episodes))
    );
}
