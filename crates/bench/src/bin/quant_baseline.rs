//! Related-work baseline: digital weight/activation quantization
//! (SmoothQuant's setting) on the same models — connects this repo to the
//! paper's §VI discussion of LLM.int8()/SmoothQuant.

use nora_bench::prepare_cached;
use nora_eval::runner::{digital_quant_baseline, QuantBaselineRow};
use nora_nn::zoo::{opt_presets, other_presets};

fn main() {
    let prepared = vec![
        prepare_cached(&opt_presets()[2]),
        prepare_cached(&other_presets()[2]),
    ];
    let rows = digital_quant_baseline(&prepared, &[8, 6, 4], 0x4b);
    println!("{}", QuantBaselineRow::table(&rows).render());
    println!(
        "smoothed = the same NORA vectors applied to digital quantization \
         (i.e. SmoothQuant); analog CIM (Table II) adds the noise sources on top."
    );
}
