//! Regenerates Fig. 6c: the per-layer mean rescale factor `α_i γ_j g_max`
//! under naive mapping vs NORA.
//!
//! Expected shape (paper §V-C): NORA shrinks the factor on most layers —
//! the digital outputs are divided by less, i.e. the analog bitline current
//! entering the ADC is larger, raising the SNR against additive output
//! noise.

use nora_bench::prepare_cached;
use nora_cim::TileConfig;
use nora_eval::runner::{rescale_report, RescaleRow};
use nora_nn::zoo::{opt_presets, other_presets};

fn main() {
    let opt = &opt_presets()[2];
    let others = other_presets();
    let mut rows: Vec<RescaleRow> = Vec::new();
    for spec in [opt, &others[1], &others[2]] {
        let prepared = prepare_cached(spec);
        rows.extend(rescale_report(&prepared, TileConfig::paper_default(), 0x6c));
    }
    println!("{}", RescaleRow::table(&rows).render());
    let shrunk = rows.iter().filter(|r| r.ratio() < 1.0).count();
    println!(
        "{}/{} layers have a smaller rescale factor under NORA (ratio < 1).",
        shrunk,
        rows.len()
    );
}
