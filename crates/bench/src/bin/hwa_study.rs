//! Hardware-aware STE training vs NORA rescaling, head-to-head.
//!
//! For each zoo model this builds (or loads from cache) the plain
//! checkpoint and its STE trained-robust counterpart, then scores four arms
//! — base, HWA alone, NORA alone, HWA+NORA composed — on the full Table II
//! noise stack, the Fig. 3 MSE-matched sensitivity grid, and the hard-fault
//! grid. Prints the table plus a table2-point summary per model and writes
//! the raw sweep as `results/hwa_study.csv`.
//!
//! Expected shape: NORA alone recovers most of the base model's loss at the
//! Table II point without any training; HWA alone hardens the weight side
//! but leaves the IO side exposed; the composed arm is at least as good as
//! either ingredient.
//!
//! Env knobs: `NORA_HWA_STEPS`, `NORA_HWA_LR`, `NORA_HWA_NOISE_SCALE`
//! (robust fine-tuning stage), `NORA_HWA_MSE_POINTS`, `NORA_HWA_CELL_RATES`
//! (comma-separated). `NORA_FAST=1` shrinks the model set, the fine-tuning
//! stage and the grids for smoke runs. With `--metrics-out` /
//! `NORA_METRICS_OUT` set, the sweep telemetry lands in the metrics sidecar
//! under the `hwa_study` bench marker.

use nora_bench::harness::export_metrics;
use nora_bench::{calib_count, episode_count, fast_mode, prepare_cached};
use nora_eval::runner::{
    hwa_study_recorded, prepare_built, HwaPair, HwaStudyConfig, HwaStudyRow,
};
use nora_nn::zoo::{opt_presets, other_presets, robust_variant, RobustSpec, ZooSpec};

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_f64_list(name: &str, default: &[f64]) -> Vec<f64> {
    std::env::var(name)
        .ok()
        .map(|v| {
            v.split(',')
                .filter_map(|s| s.trim().parse().ok())
                .collect()
        })
        .filter(|v: &Vec<f64>| !v.is_empty())
        .unwrap_or_else(|| default.to_vec())
}

fn prepare_pair(spec: &ZooSpec, robust: RobustSpec) -> HwaPair {
    let base = prepare_cached(spec);
    let robust_spec = robust_variant(spec, Some(robust));
    eprintln!(
        "[nora-bench] preparing {} (STE {} steps) …",
        robust_spec.name,
        robust.steps
    );
    let t0 = std::time::Instant::now();
    let zoo = robust_spec.build_cached(&nora_bench::cache_dir());
    let prepared = prepare_built(zoo, episode_count(), calib_count());
    eprintln!(
        "[nora-bench] {} ready in {:.1?} (digital acc {:.2}%)",
        robust_spec.name,
        t0.elapsed(),
        100.0 * prepared.digital_acc
    );
    HwaPair {
        base,
        robust: prepared,
    }
}

fn main() {
    let opt = &opt_presets()[2];
    let mistral = &other_presets()[2];
    let specs: Vec<&ZooSpec> = if fast_mode() {
        vec![opt]
    } else {
        vec![opt, mistral]
    };

    let pairs: Vec<HwaPair> = specs
        .iter()
        .map(|spec| {
            let default = RobustSpec::default_for(&spec.train);
            let default_steps = if fast_mode() { 40 } else { default.steps };
            let robust = RobustSpec {
                steps: env_u64("NORA_HWA_STEPS", default_steps),
                lr: env_f64("NORA_HWA_LR", default.lr as f64) as f32,
                noise_scale: env_f64("NORA_HWA_NOISE_SCALE", default.noise_scale as f64) as f32,
            };
            prepare_pair(spec, robust)
        })
        .collect();

    let mut cfg = HwaStudyConfig::default();
    if fast_mode() {
        cfg.noises.truncate(2);
        cfg.mse_points = 2;
        cfg.cell_rates = vec![0.02];
    }
    cfg.mse_points = env_u64("NORA_HWA_MSE_POINTS", cfg.mse_points as u64) as usize;
    cfg.cell_rates = env_f64_list("NORA_HWA_CELL_RATES", &cfg.cell_rates);

    let mut metrics = nora_obs::Metrics::new();
    let t0 = std::time::Instant::now();
    let rows = hwa_study_recorded(&pairs, &cfg, &mut metrics);
    let elapsed = t0.elapsed();

    println!("{}", HwaStudyRow::table(&rows).render());
    println!("scored {} grid points in {:.1?}", rows.len(), elapsed);

    // Table II headline: the composed arm against its ingredients.
    for pair in &pairs {
        let at = |arm: &str| {
            rows.iter()
                .find(|r| r.model == pair.base.zoo.name && r.grid == "table2" && r.arm == arm)
        };
        if let (Some(base), Some(hwa), Some(nora), Some(both)) =
            (at("base"), at("hwa"), at("nora"), at("hwa+nora"))
        {
            println!(
                "{}: table2 accuracy base {:.1}% | hwa {:.1}% | nora {:.1}% | \
                 hwa+nora {:.1}% (digital {:.1}%)",
                pair.base.zoo.name,
                100.0 * base.accuracy,
                100.0 * hwa.accuracy,
                100.0 * nora.accuracy,
                100.0 * both.accuracy,
                100.0 * base.digital,
            );
        }
    }

    let csv_path = std::path::Path::new("results").join("hwa_study.csv");
    if let Some(dir) = csv_path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    match std::fs::write(&csv_path, HwaStudyRow::csv(&rows)) {
        Ok(()) => println!("wrote {}", csv_path.display()),
        Err(e) => eprintln!("failed to write {}: {e}", csv_path.display()),
    }

    export_metrics("hwa_study", &metrics);
}
