//! Regenerates Fig. 6a/b: per-layer input and weight kurtosis before and
//! after NORA.
//!
//! Expected shape (paper §V-C): input kurtosis drops dramatically under
//! NORA while weight kurtosis moves only mildly. (Fidelity note: the paper
//! sees a *slight increase* in weight kurtosis; with function-preserving
//! outlier injection it stays flat or dips — see EXPERIMENTS.md.)

use nora_bench::prepare_cached;
use nora_eval::runner::{kurtosis_report, KurtosisRow};
use nora_nn::zoo::{opt_presets, other_presets};

fn main() {
    let opt = &opt_presets()[2]; // opt-6.7b-sim (paper Fig. 6 uses OPT-6.7B)
    let others = other_presets();
    let mut rows: Vec<KurtosisRow> = Vec::new();
    for spec in [opt, &others[1], &others[2]] {
        let prepared = prepare_cached(spec);
        rows.extend(kurtosis_report(&prepared));
    }
    println!("{}", KurtosisRow::table(&rows).render());
    let mean = |f: fn(&KurtosisRow) -> f64| {
        rows.iter().map(f).sum::<f64>() / rows.len() as f64
    };
    println!(
        "mean input kurtosis {:.1} → {:.1}; mean weight kurtosis {:.2} → {:.2}",
        mean(|r| r.input_naive),
        mean(|r| r.input_nora),
        mean(|r| r.weight_naive),
        mean(|r| r.weight_nora),
    );
}
