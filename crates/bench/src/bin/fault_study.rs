//! Fault-injection robustness study: next-token accuracy vs hard-fault
//! rate (stuck cells + dead lines + stuck ADC channels), comparing naive
//! vs NORA deployments with and without ABFT detection + tile recovery.
//!
//! Prints the summary table and writes the raw sweep as
//! `results/fault_study.csv`.
//!
//! Expected shape: unprotected accuracy collapses as the fault rate grows
//! (NORA smoothing alone cannot fix hard faults); with ABFT + remap/fallback
//! the loss stays within the fault-free noisy baseline's ballpark because
//! every flagged tile is re-programmed, remapped, or executed digitally.

use nora_bench::prepare_cached;
use nora_eval::runner::{fault_study, FaultStudyConfig, FaultStudyRow};
use nora_nn::zoo::{opt_presets, other_presets};

fn main() {
    let opt = &opt_presets()[2];
    let mistral = &other_presets()[2];
    let prepared = vec![prepare_cached(opt), prepare_cached(mistral)];
    let cfg = FaultStudyConfig::default();
    let rows = fault_study(&prepared, &cfg);
    println!("{}", FaultStudyRow::table(&rows).render());

    for p in &prepared {
        let pick = |plan: &str, protected: bool, rate: f64| {
            rows.iter()
                .find(|r| {
                    r.model == p.zoo.name
                        && r.plan == plan
                        && r.protected == protected
                        && (r.cell_rate - rate).abs() < 1e-12
                })
                .map(|r| 100.0 * r.accuracy)
                .unwrap_or(f64::NAN)
        };
        let worst = cfg.cell_rates.last().copied().unwrap_or(0.0);
        println!(
            "{}: NORA fault-free {:.1}% → {:.1}% faults unprotected {:.1}% → protected {:.1}%",
            p.zoo.name,
            pick("nora", false, 0.0),
            100.0 * worst,
            pick("nora", false, worst),
            pick("nora", true, worst),
        );
    }

    let csv_path = std::path::Path::new("results").join("fault_study.csv");
    if let Some(dir) = csv_path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    match std::fs::write(&csv_path, FaultStudyRow::csv(&rows)) {
        Ok(()) => println!("wrote {}", csv_path.display()),
        Err(e) => eprintln!("failed to write {}: {e}", csv_path.display()),
    }
}
