//! Shared plumbing for the experiment-regeneration binaries.
//!
//! Every paper table/figure has a dedicated binary under `src/bin/`:
//!
//! | target | regenerates |
//! |---|---|
//! | `table1` | Table I — non-ideality inventory |
//! | `table2` | Table II — simulator settings |
//! | `fig3` | Fig. 3 — per-non-ideality sensitivity sweep |
//! | `fig4` | Fig. 4 — activation vs weight KDE/kurtosis |
//! | `fig5a` | Fig. 5a — OPT family: digital vs naive vs NORA |
//! | `fig5bc` | Fig. 5b/c — per-noise mitigation at matched MSE |
//! | `table3` | Table III — NORA on LLaMA/Mistral-like models |
//! | `fig6ab` | Fig. 6a/b — per-layer kurtosis before/after NORA |
//! | `fig6c` | Fig. 6c — rescale-factor (output current) shrink |
//! | `drift_study` | §VII — accuracy under PCM drift |
//! | `lambda_ablation` | future-work λ ablation (also `examples/`) |
//!
//! Trained models are cached under `NORA_CACHE_DIR` (default
//! `target/nora-model-cache`), so only the first run of a binary pays the
//! training cost. Set `NORA_FAST=1` to shrink evaluation sizes for smoke
//! runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;

use nora_eval::runner::{prepare_built, PreparedModel};
use nora_nn::zoo::ZooSpec;
use std::path::PathBuf;

/// Directory used for the trained-model cache.
pub fn cache_dir() -> PathBuf {
    std::env::var_os("NORA_CACHE_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target/nora-model-cache"))
}

/// Whether fast (smoke-test) mode is requested via `NORA_FAST=1`.
pub fn fast_mode() -> bool {
    std::env::var("NORA_FAST").map(|v| v == "1").unwrap_or(false)
}

/// Number of held-out evaluation episodes (shrunk in fast mode).
pub fn episode_count() -> usize {
    if fast_mode() {
        60
    } else {
        250
    }
}

/// Number of calibration sequences (shrunk in fast mode).
pub fn calib_count() -> usize {
    if fast_mode() {
        4
    } else {
        16
    }
}

/// Builds (or loads from cache) and prepares one zoo model, logging
/// progress to stderr.
pub fn prepare_cached(spec: &ZooSpec) -> PreparedModel {
    eprintln!("[nora-bench] preparing {} …", spec.name);
    let t0 = std::time::Instant::now();
    let zoo = spec.build_cached(&cache_dir());
    let prepared = prepare_built(zoo, episode_count(), calib_count());
    eprintln!(
        "[nora-bench] {} ready in {:.1?} (digital acc {:.2}%)",
        spec.name,
        t0.elapsed(),
        100.0 * prepared.digital_acc
    );
    prepared
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_dir_defaults_under_target() {
        if std::env::var_os("NORA_CACHE_DIR").is_none() {
            assert!(cache_dir().starts_with("target"));
        }
    }

    #[test]
    fn counts_are_positive() {
        assert!(episode_count() > 0);
        assert!(calib_count() > 0);
    }
}
