//! Minimal self-contained timing harness for the `benches/` targets.
//!
//! The workspace builds offline, so the performance benches cannot depend on
//! an external framework; this module provides the small subset we need:
//! warm-up, adaptive batching until a target measurement window is reached,
//! and a `ns/iter` + throughput report on stdout.
//!
//! Environment knobs:
//!
//! * `NORA_BENCH_FAST=1` — shrink the measurement window (smoke runs / CI).
//! * `NORA_BENCH_MS=<n>` — explicit measurement window in milliseconds.
//! * `NORA_BENCH_JSON=<path>` — append one JSON-lines record per
//!   measurement (`{"name", "ns_per_iter", "iters", "threads", "cores",
//!   "sparsity"}` — the schema is append-only, so older baselines stay
//!   diffable), so runs at different thread counts can be committed and
//!   diffed as baselines. `threads` is the effective `NORA_THREADS` cap;
//!   `cores` is the host's available parallelism, recording how much
//!   headroom the cap actually had on the measuring machine; `sparsity` is
//!   the weight-sparsity label declared via [`set_sparsity`] (`"dense"`
//!   unless a bench opts in).
//! * `--metrics-out <path>` (or `NORA_METRICS_OUT=<path>`) — append the
//!   operational metrics a bench collected (tile conversion stats, engine
//!   latency histograms, …) as a JSON-lines sidecar next to the timing
//!   records; see [`export_metrics`].

use std::io::Write;
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// The weight-sparsity label attached to subsequent JSON bench records.
fn sparsity_slot() -> &'static Mutex<String> {
    static SLOT: OnceLock<Mutex<String>> = OnceLock::new();
    SLOT.get_or_init(|| Mutex::new(String::from("dense")))
}

/// Declares the weight-sparsity pattern (e.g. `"2:4"`) of the benches that
/// follow; every JSON record written by [`bench`] carries it in the
/// append-only `"sparsity"` field. Call with `"dense"` to reset.
pub fn set_sparsity(label: &str) {
    *sparsity_slot().lock().unwrap() = label.to_string();
}

/// Measurement window per benchmark.
fn window() -> Duration {
    if let Ok(ms) = std::env::var("NORA_BENCH_MS") {
        if let Ok(ms) = ms.parse::<u64>() {
            return Duration::from_millis(ms.max(1));
        }
    }
    let fast = std::env::var("NORA_BENCH_FAST").map(|v| v == "1").unwrap_or(false);
    if fast {
        Duration::from_millis(20)
    } else {
        Duration::from_millis(300)
    }
}

/// One timing result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Measurement {
    /// Mean wall-clock nanoseconds per iteration.
    pub ns_per_iter: f64,
    /// Number of iterations measured.
    pub iters: u64,
}

impl Measurement {
    /// Mean iterations per second.
    pub fn per_second(&self) -> f64 {
        if self.ns_per_iter <= 0.0 {
            f64::INFINITY
        } else {
            1e9 / self.ns_per_iter
        }
    }
}

/// Times `f` and prints a `name ... ns/iter` line.
///
/// Returns the measurement so callers can derive throughput lines.
pub fn bench<F: FnMut()>(name: &str, mut f: F) -> Measurement {
    // Warm-up: one untimed call, then estimate the per-iteration cost.
    f();
    let probe_start = Instant::now();
    f();
    let probe = probe_start.elapsed().max(Duration::from_nanos(50));

    let target = window();
    let iters = (target.as_nanos() / probe.as_nanos()).clamp(1, 1_000_000) as u64;
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    let elapsed = start.elapsed();
    let m = Measurement {
        ns_per_iter: elapsed.as_nanos() as f64 / iters as f64,
        iters,
    };
    println!(
        "bench: {name:<44} {:>14.1} ns/iter  ({} iters)",
        m.ns_per_iter, m.iters
    );
    append_json_record(name, &m);
    m
}

/// Appends the measurement as a JSON-lines record to `NORA_BENCH_JSON`, if
/// set. I/O errors are reported on stderr but never fail the bench run.
fn append_json_record(name: &str, m: &Measurement) {
    let Ok(path) = std::env::var("NORA_BENCH_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    // Bench names are ASCII identifiers; escape the JSON specials anyway so
    // a stray quote cannot corrupt the file.
    let escaped: String = name
        .chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c if (c as u32) < 0x20 => vec![' '],
            c => vec![c],
        })
        .collect();
    let record = format!(
        "{{\"name\":\"{escaped}\",\"ns_per_iter\":{:.1},\"iters\":{},\"threads\":{},\"cores\":{},\"sparsity\":\"{}\"}}\n",
        m.ns_per_iter,
        m.iters,
        nora_parallel::max_threads(),
        nora_parallel::available(),
        sparsity_slot().lock().unwrap()
    );
    let result = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| f.write_all(record.as_bytes()));
    if let Err(e) = result {
        eprintln!("bench: failed to append to NORA_BENCH_JSON={path}: {e}");
    }
}

/// Destination for the operational metrics sidecar, if requested.
///
/// Checks the bench binary's argument list for `--metrics-out=<path>` or
/// `--metrics-out <path>` (cargo forwards arguments after `--`), then falls
/// back to the `NORA_METRICS_OUT` environment variable. Returns `None` when
/// neither is present, in which case benches skip metrics export entirely.
pub fn metrics_out() -> Option<String> {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if let Some(path) = arg.strip_prefix("--metrics-out=") {
            if !path.is_empty() {
                return Some(path.to_string());
            }
        } else if arg == "--metrics-out" {
            if let Some(path) = args.next() {
                if !path.is_empty() {
                    return Some(path);
                }
            }
        }
    }
    std::env::var("NORA_METRICS_OUT").ok().filter(|p| !p.is_empty())
}

/// Appends `metrics` to the sidecar named by [`metrics_out`], prefixed by a
/// `{"type":"bench","name":...,"threads":...}` marker line so records from
/// several benches (or thread counts) can share one file. A no-op when no
/// destination is configured; I/O errors are reported on stderr but never
/// fail the bench run.
pub fn export_metrics(bench_name: &str, metrics: &nora_obs::Metrics) {
    let Some(path) = metrics_out() else {
        return;
    };
    let escaped: String = bench_name
        .chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c if (c as u32) < 0x20 => vec![' '],
            c => vec![c],
        })
        .collect();
    let marker = format!(
        "{{\"type\":\"bench\",\"name\":\"{escaped}\",\"threads\":{}}}\n",
        nora_parallel::max_threads()
    );
    let result = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| f.write_all(marker.as_bytes()))
        .and_then(|()| {
            use nora_obs::Recorder;
            let mut rec = nora_obs::JsonLinesRecorder::append_to(std::path::Path::new(&path))?;
            metrics.emit(&mut rec);
            rec.flush()?;
            let (_, err) = rec.into_inner();
            match err {
                Some(e) => Err(e),
                None => Ok(()),
            }
        });
    if let Err(e) = result {
        eprintln!("bench: failed to append metrics to {path}: {e}");
    }
}

/// Like [`bench`] with an element-throughput line (elements per iteration).
pub fn bench_throughput<F: FnMut()>(name: &str, elements: u64, f: F) -> Measurement {
    let m = bench(name, f);
    let elems_per_sec = elements as f64 * m.per_second();
    println!("bench: {name:<44} {:>14.3} Melem/s", elems_per_sec / 1e6);
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_measures_something() {
        std::env::set_var("NORA_BENCH_MS", "5");
        let mut acc = 0u64;
        let m = bench("noop_accumulate", || {
            acc = acc.wrapping_add(std::hint::black_box(1));
        });
        assert!(m.iters >= 1);
        assert!(m.ns_per_iter >= 0.0);
        assert!(acc > 0);
    }

    #[test]
    fn json_records_append_with_thread_count() {
        let path = std::env::temp_dir().join(format!("nora_bench_{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        std::env::set_var("NORA_BENCH_MS", "5");
        std::env::set_var("NORA_BENCH_JSON", &path);
        bench("json_probe_a", || {
            std::hint::black_box(1 + 1);
        });
        bench("json_probe_b", || {
            std::hint::black_box(2 + 2);
        });
        std::env::remove_var("NORA_BENCH_JSON");
        let text = std::fs::read_to_string(&path).expect("json file written");
        let _ = std::fs::remove_file(&path);
        // Other tests in this binary may bench concurrently while the env
        // var is set; assert on our own records only.
        let lines: Vec<&str> = text.lines().filter(|l| l.contains("json_probe")).collect();
        assert_eq!(lines.len(), 2, "{text}");
        assert!(lines[0].contains("\"name\":\"json_probe_a\""));
        assert!(lines[0].contains("\"ns_per_iter\":"));
        assert!(lines[0].contains("\"iters\":"));
        assert!(lines[1].contains("\"threads\":"));
        assert!(lines[1].contains("\"cores\":"));
        // Append-only schema extension: every record carries the sparsity
        // label (tests may race on the global label, so only the field's
        // presence is asserted here).
        assert!(lines[0].contains("\"sparsity\":\""));
        assert!(lines[1].contains("\"sparsity\":\""));
    }

    #[test]
    fn metrics_sidecar_appends_marker_and_records() {
        // The test binary's argv has no --metrics-out flag, so the
        // environment fallback is what this exercises.
        assert!(metrics_out().is_none());
        let path = std::env::temp_dir().join(format!("nora_metrics_{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        std::env::set_var("NORA_METRICS_OUT", &path);
        let mut m = nora_obs::Metrics::new();
        m.add("probe.counter", 3);
        m.observe("probe.rate", nora_obs::edges::RATE, 0.02);
        export_metrics("probe_bench", &m);
        std::env::remove_var("NORA_METRICS_OUT");
        let text = std::fs::read_to_string(&path).expect("sidecar written");
        let _ = std::fs::remove_file(&path);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3, "{text}");
        assert!(lines[0].contains("\"type\":\"bench\""));
        assert!(lines[0].contains("\"name\":\"probe_bench\""));
        assert!(lines[0].contains("\"threads\":"));
        assert!(text.contains("\"name\":\"probe.counter\""));
        assert!(text.contains("\"value\":3"));
        assert!(text.contains("\"type\":\"histogram\""));
        assert!(text.contains("\"name\":\"probe.rate\""));
    }

    #[test]
    fn throughput_is_finite() {
        std::env::set_var("NORA_BENCH_MS", "5");
        let m = bench_throughput("tiny_vec_sum", 128, || {
            let v: f32 = (0..128).map(|i| i as f32).sum();
            std::hint::black_box(v);
        });
        assert!(m.per_second().is_finite());
    }
}
