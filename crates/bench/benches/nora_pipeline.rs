//! End-to-end NORA pipeline costs: calibration, plan construction, and
//! analog deployment of a small transformer.

use nora_bench::harness::bench;
use nora_cim::TileConfig;
use nora_core::{calibrate, RescalePlan, SmoothingConfig};
use nora_nn::zoo::{inject_outliers, ModelFamily};
use nora_nn::{ModelConfig, TransformerLm};
use nora_tensor::rng::Rng;

fn pipeline() {
    let cfg = ModelConfig {
        vocab: 32,
        max_seq: 32,
        d_model: 64,
        heads: 4,
        d_ff: 256,
        layers: 2,
    };
    let mut model = TransformerLm::new(cfg, &mut Rng::seed_from(1));
    inject_outliers(&mut model, &ModelFamily::OptLike.outlier_spec(), 1);
    let seqs: Vec<Vec<usize>> = (0..4)
        .map(|i| (0..32).map(|t| 2 + (t * 7 + i) % 30).collect())
        .collect();

    bench("calibrate_2layer_d64", || {
        std::hint::black_box(calibrate(&model, &seqs));
    });

    let calib = calibrate(&model, &seqs);
    bench("build_rescale_plan", || {
        std::hint::black_box(RescalePlan::nora(&model, &calib, SmoothingConfig::default()));
    });

    let plan = RescalePlan::nora(&model, &calib, SmoothingConfig::default());
    bench("deploy_analog_2layer_d64", || {
        std::hint::black_box(plan.deploy(&model, TileConfig::paper_default(), 2));
    });

    let mut analog = plan.deploy(&model, TileConfig::paper_default(), 2);
    let tokens: Vec<usize> = (0..32).map(|t| 2 + (t * 5) % 30).collect();
    bench("analog_forward_32tokens", || {
        std::hint::black_box(analog.forward(&tokens));
    });
    bench("digital_forward_32tokens", || {
        std::hint::black_box(model.forward(&tokens));
    });
}

fn main() {
    pipeline();
}
