//! Quantizer kernel throughput (the DAC/ADC inner loops).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use nora_tensor::quant::{Quantizer, Rounding};
use nora_tensor::rng::Rng;

fn quantize_slices(c: &mut Criterion) {
    let mut group = c.benchmark_group("quantize_slice");
    let mut rng = Rng::seed_from(1);
    for &n in &[512usize, 4096, 65536] {
        let xs: Vec<f32> = (0..n).map(|_| rng.uniform(-1.5, 1.5)).collect();
        group.throughput(Throughput::Elements(n as u64));
        let q = Quantizer::with_bits(7, 1.0);
        group.bench_with_input(BenchmarkId::new("nearest_7bit", n), &n, |b, _| {
            b.iter(|| {
                let mut ys = xs.clone();
                q.quantize_slice(&mut ys);
                ys
            });
        });
        let qs = Quantizer::with_bits(7, 1.0).with_rounding(Rounding::Stochastic);
        let mut srng = Rng::seed_from(2);
        group.bench_with_input(BenchmarkId::new("stochastic_7bit", n), &n, |b, _| {
            b.iter(|| {
                let mut ys = xs.clone();
                qs.quantize_slice_with(&mut ys, &mut srng);
                ys
            });
        });
    }
    group.finish();
}

criterion_group!(benches, quantize_slices);
criterion_main!(benches);
