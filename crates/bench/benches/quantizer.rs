//! Quantizer kernel throughput (the DAC/ADC inner loops).

use nora_bench::harness::bench_throughput;
use nora_tensor::quant::{Quantizer, Rounding};
use nora_tensor::rng::Rng;

fn quantize_slices() {
    let mut rng = Rng::seed_from(1);
    for &n in &[512usize, 4096, 65536] {
        let xs: Vec<f32> = (0..n).map(|_| rng.uniform(-1.5, 1.5)).collect();
        let q = Quantizer::with_bits(7, 1.0);
        bench_throughput(&format!("quantize_slice/nearest_7bit/{n}"), n as u64, || {
            let mut ys = xs.clone();
            q.quantize_slice(&mut ys);
            std::hint::black_box(ys);
        });
        let qs = Quantizer::with_bits(7, 1.0).with_rounding(Rounding::Stochastic);
        let mut srng = Rng::seed_from(2);
        bench_throughput(
            &format!("quantize_slice/stochastic_7bit/{n}"),
            n as u64,
            || {
                let mut ys = xs.clone();
                qs.quantize_slice_with(&mut ys, &mut srng);
                std::hint::black_box(ys);
            },
        );
    }
}

fn main() {
    quantize_slices();
}
