//! Throughput of a single analog tile's noisy GEMV, across tile sizes and
//! non-ideality configurations.

use nora_bench::harness::{bench, bench_throughput, set_sparsity};
use nora_cim::{AnalogTile, TileConfig};
use nora_tensor::rng::Rng;
use nora_tensor::{Matrix, NmPattern, PackedNmMatrix};

fn tile_forward() {
    for &size in &[64usize, 128, 256] {
        let mut rng = Rng::seed_from(1);
        let w = Matrix::random_normal(size, size, 0.0, 0.2, &mut rng);
        let x = Matrix::random_normal(8, size, 0.0, 1.0, &mut rng);
        let elements = (8 * size * size) as u64;

        let ideal_cfg = {
            let mut c = TileConfig::ideal();
            c.tile_rows = size;
            c.tile_cols = size;
            c
        };
        let mut ideal = AnalogTile::new(w.clone(), None, ideal_cfg, Rng::seed_from(2));
        bench_throughput(&format!("tile_forward/ideal/{size}"), elements, || {
            std::hint::black_box(ideal.forward(&x));
        });

        let paper_cfg = TileConfig::paper_default().with_tile_size(size, size);
        let mut paper = AnalogTile::new(w.clone(), None, paper_cfg, Rng::seed_from(3));
        bench_throughput(
            &format!("tile_forward/paper_noise/{size}"),
            elements,
            || {
                std::hint::black_box(paper.forward(&x));
            },
        );

        let mut serial_cfg = TileConfig::paper_default().with_tile_size(size, size);
        serial_cfg.input_encoding = nora_cim::InputEncoding::BitSerial { bits: 7 };
        let mut serial = AnalogTile::new(w.clone(), None, serial_cfg, Rng::seed_from(4));
        bench_throughput(&format!("tile_forward/bit_serial/{size}"), elements, || {
            std::hint::black_box(serial.forward(&x));
        });
    }
}

/// Read-averaged forward at the paper's 512×512 tile: `read_averaging`
/// repeats every conversion and averages the ADC codes, so this case is
/// dominated by the per-repeat cost the fast path hoists (DAC, S-shape,
/// clean MVM, IR-drop factors are deterministic when `in_noise == 0`).
fn tile_forward_averaged() {
    let size = 512usize;
    let mut rng = Rng::seed_from(7);
    let w = Matrix::random_normal(size, size, 0.0, 0.2, &mut rng);
    let x = Matrix::random_normal(8, size, 0.0, 1.0, &mut rng);
    let elements = (8 * size * size) as u64;
    for &ra in &[1u32, 4, 16] {
        let mut cfg = TileConfig::paper_default().with_tile_size(size, size);
        cfg.read_averaging = ra;
        let mut tile = AnalogTile::new(w.clone(), None, cfg, Rng::seed_from(8));
        bench_throughput(&format!("tile_forward_averaged/{ra}"), elements, || {
            std::hint::black_box(tile.forward(&x));
        });
    }
}

fn tile_programming_variants() {
    let mut rng = Rng::seed_from(5);
    let w = Matrix::random_normal(128, 128, 0.0, 0.2, &mut rng);
    for &slices in &[1u32, 2, 3] {
        let mut cfg = TileConfig::paper_default().with_tile_size(128, 128);
        cfg.weight_slices = slices;
        bench(&format!("tile_programming/pcm_slices/{slices}"), || {
            std::hint::black_box(AnalogTile::new(
                w.clone(),
                None,
                cfg.clone(),
                Rng::seed_from(6),
            ));
        });
    }
}

/// Digital GEMM across shapes straddling the `threads_for_work` gate:
/// small batches (decode-shaped, `m·k·n` below `MIN_PARALLEL_WORK`) must
/// run on the caller thread with zero pool overhead, while large batches
/// fan out. Pins the `Matrix::try_matmul` gating of this PR — a regression
/// back to unconditional fan-out shows up as a collapse of the small-shape
/// ns/iter.
fn digital_matmul() {
    let mut rng = Rng::seed_from(9);
    for &(m, k, n) in &[(1usize, 64usize, 64usize), (4, 256, 256), (32, 512, 512)] {
        let a = Matrix::random_normal(m, k, 0.0, 1.0, &mut rng);
        let b = Matrix::random_normal(k, n, 0.0, 0.2, &mut rng);
        let elements = (m * k * n) as u64;
        bench_throughput(&format!("digital_matmul/{m}x{k}x{n}"), elements, || {
            std::hint::black_box(a.matmul(&b));
        });
    }
}

/// Packed N:M sparse GEMM vs the dense kernel on the same masked weights:
/// identical outputs bit for bit, so the ns/iter gap is pure kernel win
/// (≈2× fewer multiply–accumulates at 2:4).
fn sparse_matmul() {
    let mut rng = Rng::seed_from(10);
    // 8×64×256 and 8×256×64 are the serving model's decode shapes (batch-8
    // FFN up/down projections); 8×512×512 is the register-tile sweet spot.
    for &(m, k, n) in &[(8usize, 64usize, 256usize), (8, 256, 64), (8, 512, 512)] {
        let x = Matrix::random_normal(m, k, 0.0, 1.0, &mut rng);
        let w = Matrix::random_normal(k, n, 0.0, 0.2, &mut rng);
        let elements = (m * k * n) as u64;
        for &pattern in &[NmPattern::N4M8, NmPattern::N2M4, NmPattern::N1M4] {
            let packed = PackedNmMatrix::pack(&w, pattern, None);
            let masked = packed.to_dense();
            set_sparsity(pattern.label());
            bench_throughput(
                &format!("sparse_matmul/{}/{m}x{k}x{n}", pattern.label()),
                elements,
                || {
                    std::hint::black_box(packed.matmul(&x));
                },
            );
            set_sparsity("dense");
            bench_throughput(
                &format!("sparse_matmul/dense_ref_{}/{m}x{k}x{n}", pattern.label()),
                elements,
                || {
                    std::hint::black_box(x.matmul(&masked));
                },
            );
        }
    }
}

fn main() {
    digital_matmul();
    sparse_matmul();
    tile_forward();
    tile_forward_averaged();
    tile_programming_variants();
}
