//! Throughput of tiled analog linear layers (multi-tile partitioning) and
//! the smoothing-vector overhead.

use nora_bench::harness::bench;
use nora_cim::{AnalogLinear, TileConfig};
use nora_tensor::rng::Rng;
use nora_tensor::Matrix;

fn analog_linear() {
    let mut rng = Rng::seed_from(1);
    let d_in = 256;
    let d_out = 256;
    let w = Matrix::random_normal(d_in, d_out, 0.0, 0.1, &mut rng);
    let x = Matrix::random_normal(16, d_in, 0.0, 1.0, &mut rng);
    let s: Vec<f32> = (0..d_in).map(|i| 0.5 + (i % 9) as f32 * 0.3).collect();

    for &tile in &[64usize, 128, 256] {
        let cfg = TileConfig::paper_default().with_tile_size(tile, tile);
        let mut naive = AnalogLinear::new(w.clone(), None, cfg.clone(), 2);
        bench(&format!("analog_linear/naive/{tile}"), || {
            std::hint::black_box(naive.forward(&x));
        });
        let mut smoothed = AnalogLinear::with_smoothing(w.clone(), None, Some(&s), cfg, 2);
        bench(&format!("analog_linear/nora_smoothed/{tile}"), || {
            std::hint::black_box(smoothed.forward(&x));
        });
    }
}

fn layer_programming() {
    let mut rng = Rng::seed_from(3);
    let w = Matrix::random_normal(256, 256, 0.0, 0.1, &mut rng);
    bench("program_analog_linear_256x256", || {
        std::hint::black_box(AnalogLinear::new(
            w.clone(),
            None,
            TileConfig::paper_default(),
            4,
        ));
    });
}

fn main() {
    analog_linear();
    layer_programming();
}
