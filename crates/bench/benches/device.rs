//! PCM device-model throughput: programming, write–verify, drifted reads.

use nora_bench::harness::{bench, bench_throughput};
use nora_device::{program_matrix, read_matrix, PcmModel};
use nora_tensor::rng::Rng;
use nora_tensor::Matrix;

fn pcm_array_ops() {
    let pcm = PcmModel::default();
    let mut rng = Rng::seed_from(1);
    let w = Matrix::random_uniform(128, 128, -1.0, 1.0, &mut rng);
    let elements = (128 * 128) as u64;

    {
        let mut r = Rng::seed_from(2);
        bench_throughput("pcm_array/program_128x128", elements, || {
            std::hint::black_box(program_matrix(&w, &pcm, &mut r));
        });
    }
    let programmed = program_matrix(&w, &pcm, &mut rng);
    {
        let mut r = Rng::seed_from(3);
        bench_throughput("pcm_array/read_128x128_at_1h", elements, || {
            std::hint::black_box(read_matrix(&programmed, &pcm, 3600.0, &mut r));
        });
    }
}

fn write_verify() {
    let pcm = PcmModel::default();
    let mut r = Rng::seed_from(4);
    bench("write_verify_cell_8iters", || {
        std::hint::black_box(pcm.program_with_verify(12.5, 8, &mut r));
    });
}

fn main() {
    pcm_array_ops();
    write_verify();
}
