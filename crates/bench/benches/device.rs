//! PCM device-model throughput: programming, write–verify, drifted reads.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use nora_device::{program_matrix, read_matrix, PcmModel};
use nora_tensor::rng::Rng;
use nora_tensor::Matrix;

fn pcm_array_ops(c: &mut Criterion) {
    let pcm = PcmModel::default();
    let mut rng = Rng::seed_from(1);
    let w = Matrix::random_uniform(128, 128, -1.0, 1.0, &mut rng);

    let mut group = c.benchmark_group("pcm_array");
    group.throughput(Throughput::Elements((128 * 128) as u64));
    group.bench_function("program_128x128", |b| {
        let mut r = Rng::seed_from(2);
        b.iter(|| program_matrix(&w, &pcm, &mut r));
    });
    let programmed = program_matrix(&w, &pcm, &mut rng);
    group.bench_function("read_128x128_at_1h", |b| {
        let mut r = Rng::seed_from(3);
        b.iter(|| read_matrix(&programmed, &pcm, 3600.0, &mut r));
    });
    group.finish();
}

fn write_verify(c: &mut Criterion) {
    let pcm = PcmModel::default();
    c.bench_function("write_verify_cell_8iters", |b| {
        let mut r = Rng::seed_from(4);
        b.iter(|| pcm.program_with_verify(12.5, 8, &mut r));
    });
}

criterion_group!(benches, pcm_array_ops, write_verify);
criterion_main!(benches);
