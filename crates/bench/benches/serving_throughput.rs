//! Batched serving throughput: tokens/sec and per-request latency through
//! the `nora-serve` continuous-batching engine, digital and analog.
//!
//! Each measurement serves the same corpus-derived workload end to end, so
//! `ns/iter` is the wall-clock cost of draining the whole queue and the
//! `Melem/s` line is aggregate generated tokens per second. Batch width 1
//! is the no-batching baseline; widths 4 and 8 show the continuous-batching
//! speedup. Set `NORA_BENCH_JSON` to append records (with the active
//! `NORA_THREADS`) for committed baselines.

use nora_bench::harness::{bench_throughput, export_metrics, metrics_out, set_sparsity};
use nora_cim::TileConfig;
use nora_core::{RescalePlan, SparsityPlan};
use nora_eval::serving::{
    serve_workload, serve_workload_configured, serve_workload_recorded, ServingWorkload,
};
use nora_nn::corpus::{Corpus, CorpusConfig};
use nora_nn::generate::Sampling;
use nora_nn::{ModelConfig, TransformerLm};
use nora_serve::{AnalogBackend, DigitalBackend, EngineConfig, MaintenanceConfig};
use nora_tensor::rng::Rng;

fn main() {
    let cfg = ModelConfig {
        vocab: 32,
        max_seq: 24,
        d_model: 64,
        heads: 4,
        d_ff: 256,
        layers: 2,
    };
    let model = TransformerLm::new(cfg, &mut Rng::seed_from(11));
    let mut corpus = Corpus::new(CorpusConfig::new(cfg.vocab, cfg.max_seq, 12));
    // 12 requests of 4-token prompts, 28 new tokens each: long enough that
    // every sequence slides past `max_seq` and exercises window rebasing.
    let workload = ServingWorkload::from_corpus(&mut corpus, 12, 4, 28, Sampling::Temperature(1.2));
    let tokens: u64 = workload
        .requests
        .iter()
        .map(|r| r.max_new_tokens as u64)
        .sum();

    for batch in [1usize, 4, 8] {
        let name = format!("serve_digital_12req_batch{batch}");
        let mut last = None;
        bench_throughput(&name, tokens, || {
            let (results, summary) = serve_workload(DigitalBackend::new(&model), &workload, batch);
            last = Some((results, summary));
            std::hint::black_box(&last);
        });
        if let Some((results, summary)) = &last {
            let mean_service_us = results
                .iter()
                .map(|r| r.latency.service.as_secs_f64() * 1e6)
                .sum::<f64>()
                / results.len() as f64;
            let mean_wait_us = results
                .iter()
                .map(|r| r.latency.queue_wait.as_secs_f64() * 1e6)
                .sum::<f64>()
                / results.len() as f64;
            println!(
                "bench: {name:<44} {:>14.1} tok/s engine  ({mean_service_us:.0} us service, \
                 {mean_wait_us:.0} us queue wait, {} decode steps)",
                summary.tokens_per_sec, summary.decode_steps
            );
        }
    }

    // 2:4-pruned digital serving: the same workload through the packed
    // sparse decode kernels (bit-identical tokens to serving the masked
    // dense weights — the gap to `serve_digital_12req_batch8` is pure
    // kernel win plus the masking's accuracy-neutral weight change).
    let mut sparse_model = model.clone();
    SparsityPlan::uniform(&sparse_model, nora_tensor::NmPattern::N2M4)
        .apply(&mut sparse_model, None);
    set_sparsity("2:4");
    let name = "serve_digital_sparse24_12req_batch8";
    let mut last = None;
    bench_throughput(name, tokens, || {
        let (results, summary) =
            serve_workload(DigitalBackend::new(&sparse_model), &workload, 8);
        last = Some((results, summary));
        std::hint::black_box(&last);
    });
    if let Some((_, summary)) = &last {
        println!(
            "bench: {name:<44} {:>14.1} tok/s engine  ({} decode steps)",
            summary.tokens_per_sec, summary.decode_steps
        );
    }
    set_sparsity("dense");

    // GEMM-bound serving pair: at d_model=64 only ~60% of a decode step is
    // linear-layer work, which caps any sparse speedup near 1.3× (Amdahl).
    // The d320/d_ff=1152 model is decode-shaped like a real LLM layer —
    // projections dominate and the ~4.4 MB of per-step weights no longer
    // fit in cache — so the dense-vs-2:4 gap here combines the 2× MAC
    // reduction with the packed layout's streaming advantage (block-major
    // `vals` walk sequentially; the dense kernel's column-block walk
    // strides by the row pitch, which costs real bandwidth once weights
    // come from memory). Same workload, and the sparse arm serves the
    // exact masked weights of the dense arm, so tokens are bit-identical.
    let big_cfg = ModelConfig {
        vocab: 32,
        max_seq: 24,
        d_model: 320,
        heads: 4,
        d_ff: 1152,
        layers: 2,
    };
    let big_model = TransformerLm::new(big_cfg, &mut Rng::seed_from(17));
    let mut big_sparse = big_model.clone();
    SparsityPlan::uniform(&big_sparse, nora_tensor::NmPattern::N2M4).apply(&mut big_sparse, None);
    let mut big_dense = big_sparse.clone();
    for id in big_dense.linear_ids() {
        big_dense.linear_mut(id).sparse = None;
    }
    let name = "serve_digital_d320_12req_batch8";
    bench_throughput(name, tokens, || {
        std::hint::black_box(serve_workload(DigitalBackend::new(&big_dense), &workload, 8));
    });
    set_sparsity("2:4");
    let name = "serve_digital_sparse24_d320_12req_batch8";
    bench_throughput(name, tokens, || {
        std::hint::black_box(serve_workload(DigitalBackend::new(&big_sparse), &workload, 8));
    });
    set_sparsity("dense");

    let mut analog = RescalePlan::naive().deploy(&model, TileConfig::paper_default(), 13);
    let name = "serve_analog_12req_batch8";
    let mut last = None;
    bench_throughput(name, tokens, || {
        let (results, summary) = serve_workload(AnalogBackend::new(&mut analog), &workload, 8);
        last = Some((results, summary));
        std::hint::black_box(&last);
    });
    if let Some((_, summary)) = &last {
        println!(
            "bench: {name:<44} {:>14.1} tok/s engine  ({} decode steps)",
            summary.tokens_per_sec, summary.decode_steps
        );
    }

    // Mixed-tenant admission stress: 1000 requests across 4 tenants with
    // cycling priorities, deadline hints, and three generation lengths,
    // scheduled through the weighted-fair admission queue into batch-8
    // continuous batching on the keyed analog deployment. `ns/iter` is the
    // cost of draining the full mixed queue; the tok/s line is aggregate
    // engine throughput under admission contention.
    let mut mixed_corpus = Corpus::new(CorpusConfig::new(cfg.vocab, cfg.max_seq, 14));
    let mixed = ServingWorkload::mixed_from_corpus(
        &mut mixed_corpus,
        1000,
        4,
        &[6, 18, 30],
        4,
        Sampling::Temperature(1.2),
    );
    let mixed_tokens: u64 = mixed
        .requests
        .iter()
        .map(|r| r.max_new_tokens as u64)
        .sum();
    let mixed_config = || {
        EngineConfig::with_max_batch(8)
            .with_tenant_weight(1, 2.0)
            .with_tenant_weight(3, 0.5)
    };
    let name = "serve_analog_mixed_1000req";
    let mut last = None;
    bench_throughput(name, mixed_tokens, || {
        let mut scratch = nora_obs::Metrics::new();
        let (results, summary) = serve_workload_configured(
            AnalogBackend::new(&mut analog),
            &mixed,
            mixed_config(),
            &mut scratch,
        );
        last = Some((results, summary));
        std::hint::black_box(&last);
    });
    if let Some((_, summary)) = &last {
        println!(
            "bench: {name:<44} {:>14.1} tok/s engine  ({} decode steps)",
            summary.tokens_per_sec, summary.decode_steps
        );
    }

    // Batch-of-1 analog decode: the single-token KV-cached step that the
    // serving engine issues per slot, measured bare (no engine scaffolding).
    let mut cache = nora_nn::KvCache::new(&model);
    bench_throughput("analog_decode_step_batch1", 1, || {
        std::hint::black_box(analog.decode_step(3, &mut cache));
    });

    // Maintained (drift-aware) analog serving: same workload, with the
    // virtual clock and maintenance scheduler active — drift re-reads, α̂
    // recalibration and background rotation all run inside the engine's
    // service window, so the gap to `serve_analog_12req_batch8` is the
    // wall-clock price of the mitigation ladder. Separate deployment so
    // the drift-free cases above stay untouched.
    let mut drifted = RescalePlan::naive().deploy(&model, TileConfig::paper_default(), 13);
    let maintenance = MaintenanceConfig::new(500.0, 25_000.0)
        .with_recalibration(100_000.0)
        .with_rotation(5_000.0);
    let name = "serve_analog_drift_12req_batch8";
    let mut last = None;
    bench_throughput(name, tokens, || {
        let mut scratch = nora_obs::Metrics::new();
        let (results, summary) = serve_workload_configured(
            AnalogBackend::new(&mut drifted),
            &workload,
            EngineConfig::with_max_batch(8).with_maintenance(maintenance),
            &mut scratch,
        );
        last = Some((results, summary));
        std::hint::black_box(&last);
    });
    if let Some((_, summary)) = &last {
        println!(
            "bench: {name:<44} {:>14.1} tok/s engine  ({} decode steps)",
            summary.tokens_per_sec, summary.decode_steps
        );
    }

    // Operational metrics sidecar (`--metrics-out` / `NORA_METRICS_OUT`):
    // one extra instrumented pass over the analog workload, exporting the
    // engine's serve.* metrics plus the deployment's cumulative conversion
    // and health stats from the timed iterations above.
    if metrics_out().is_some() {
        let mut metrics = nora_obs::Metrics::new();
        let (_, summary) =
            serve_workload_recorded(AnalogBackend::new(&mut analog), &workload, 8, &mut metrics);
        std::hint::black_box(summary);
        analog.export_metrics(&mut metrics);
        export_metrics("serve_analog_12req_batch8", &metrics);

        // Sparse digital pass: engine serve.* metrics for the 2:4 case.
        let mut metrics = nora_obs::Metrics::new();
        let (_, summary) = serve_workload_recorded(
            DigitalBackend::new(&sparse_model),
            &workload,
            8,
            &mut metrics,
        );
        std::hint::black_box(summary);
        export_metrics("serve_digital_sparse24_12req_batch8", &metrics);

        // Mixed-tenant pass: the exported engine metrics include the
        // per-tenant `serve.tenant.{id}.queue_wait_secs` histograms.
        let mut metrics = nora_obs::Metrics::new();
        let (_, summary) = serve_workload_configured(
            AnalogBackend::new(&mut analog),
            &mixed,
            mixed_config(),
            &mut metrics,
        );
        std::hint::black_box(summary);
        export_metrics("serve_analog_mixed_1000req", &metrics);

        let mut metrics = nora_obs::Metrics::new();
        let (_, summary) = serve_workload_configured(
            AnalogBackend::new(&mut drifted),
            &workload,
            EngineConfig::with_max_batch(8).with_maintenance(maintenance),
            &mut metrics,
        );
        std::hint::black_box(summary);
        drifted.export_metrics(&mut metrics);
        export_metrics("serve_analog_drift_12req_batch8", &metrics);
    }
}
