//! Closed-form per-layer noise/quantization-error propagation.
//!
//! The Monte-Carlo evaluators in [`crate::tasks`] score a deployment by
//! running every episode through the full tile simulator — faithful, but far
//! too slow for design-space sweeps over thousands of configurations. This
//! module predicts the same numbers analytically:
//!
//! * [`layer_error_moments`] computes the first two moments of one
//!   [`AnalogLinear`](nora_cim::AnalogLinear)'s output error without
//!   building a tile: the deterministic part of the forward chain
//!   (smoothing, α-normalisation, DAC mid-rise grid, S-shape, IR droop,
//!   bound-management rescale, ADC) is replicated exactly with the same
//!   `f32` kernels the simulator uses, and every stochastic stage
//!   (programming error from the exact censored device laws via
//!   [`NoiseBudget::prog_moments`], additive input/read/output noise, ADC
//!   dither) contributes a per-element variance in closed form.
//! * [`AnalyticEvaluator`] runs the *digital* model once over a set of
//!   episodes, records per-linear calibration inputs plus the propagation
//!   statistics of every transformer block (LayerNorm renormalisation
//!   gains, attention softmax sensitivities, ReLU pass-through fractions),
//!   and then [`AnalyticEvaluator::predict`]s the analog eval accuracy of
//!   any `(RescalePlan, TileConfig)` pair from the per-layer injected
//!   error moments — no tile forwards at all.
//!
//! # Variance propagation model
//!
//! Each analog linear injects a *channel-resolved* error profile measured
//! by [`layer_error_moments`] on captured clean inputs: a per-output-channel
//! incoherent power `col_power` (bias² + variance) plus a per-channel
//! *signed* coherent shift `col_shift` (systematic offsets — e.g. censored
//! programming bias or S-shape flattening — that survive averaging over
//! rows). The residual-stream state is therefore a triple
//! `(u: per-channel variance, b: per-channel signed shift, a: clean-margin
//! attenuation scalar)` propagated through one block as
//!
//! ```text
//! u_q  = W(W_q, L₁(u)) + û_q            (same for k, v; W = col-wise ΣW²
//!                                        transform, L the LN transfer)
//! ctx  = F_attn·u_v + sat₂(J_soft·(K_k·u_q + K_q·u_k))·msq(V)
//! u₁   = u + W(W_o, ctx) + û_o          (residual add; shifts b follow the
//!                                        signed mean-transform of the same
//!                                        path, scaled by each stage's
//!                                        clean-signal gain)
//! h    = g_relu²·(W(W_f1, L₂(u₁)) + û_f1)
//! u_out= u₁ + W(W_f2, h) + û_f2
//! ```
//!
//! The LayerNorm transfer `L` divides every channel by the *shared*
//! inflated row denominator `v̄ + mean(u)` — signal and error renormalise
//! jointly, so the clean margins attenuate by the matching factor tracked
//! in `a`, and a stream that is pure noise still leaves with the fixed
//! output power `mean(g²)`. `F_attn = mean Σ_j p_ij²`, `J_soft =
//! mean‖∂p/∂s‖²_F`, `K_q/K_k` the mean per-head squared query/key norms,
//! `sat₂(s) = 2s/(2+s)` the softmax saturation cap, `r_attn` the clean
//! context retained under score noise, and `g_relu` the pooled regression
//! slope of noisy-vs-clean ReLU outputs (Gaussian rectification). At the
//! head, clean margins carry `κ = a·√(v̄_f/(a²v̄_f + ē_f))` while the error
//! lands as a per-class logit variance profile `σ²_j` plus a coherent
//! logit shift; accuracy follows by Gaussian quadrature over the
//! vocabulary:
//!
//! ```text
//! P(correct) = ∫ φ(z) · Π_{j≠key} Φ((κ·l_key − κ·l_j + δ + σ_key·z)/σ_j) dz
//! ```
//!
//! which recovers the digital argmax indicator as `σ → 0` and the `1/V`
//! chance floor as `κ → 0`.
//!
//! # Calibrated interface response
//!
//! The diagonal-covariance propagation above tracks error *power*
//! faithfully (validated against the simulator's measured stream errors)
//! but cannot see how the downstream digital network responds to an
//! error's full covariance structure. [`AnalyticEvaluator::new`] therefore
//! calibrates, per residual-stream interface (each block's output and the
//! final-LN input), the digital network's measured response to injected
//! white noise across a ladder of power levels: a pooled margin-regression
//! slope `κ(p)` and per-class residual logit second moments. `predict`
//! scores each interface's *fresh* injected power against these curves and
//! combines them multiplicatively (verified against jointly-injected
//! noise). One systematic gap remains: real analog stream error damages
//! the downstream network several-fold less per unit measured power than
//! fresh white noise (its structure lies closer to the activation
//! manifold). This *manifold discount* is not modelled structurally — it
//! is measured once at construction by simulating a single reference
//! configuration and solving for the scalar `s` that reconciles the
//! white-noise curves with the observed κ, then applied to every
//! prediction. The final prediction takes the more pessimistic of the
//! analytic and calibrated κ, and per class the larger of the calibrated
//! residual and the analytic logit-profile variance.
//!
//! # Exact vs. approximate
//!
//! Exact (bit-identical to the simulator on noise-free configurations):
//! smoothing/α/γ rescaling, DAC and weight-quantizer mid-rise grids,
//! S-shape transfer, IR droop of the deterministic signal, deterministic
//! bound-management retries, ADC saturation/quantization of the
//! deterministic signal. Exact in distribution: programming error
//! (censored normal/lognormal device laws), additive input/read/output
//! noise to first order, read-averaging variance reduction. Approximate or
//! out of scope (see DESIGN.md §9): *noise-triggered* bound-management
//! retries, fault ladders and ABFT correction, S-shape × noise cross terms
//! beyond linearisation, bit-serial per-plane IR interaction, write–verify
//! residuals, multi-slice mappings.

use nora_cim::budget::{normal_cdf, phi};
use nora_cim::converter::{Adc, Dac};
use nora_cim::nonlinearity::{s_shape, s_shape_slice};
use nora_cim::{BoundManagement, NoiseBudget, NoiseManagement, TileConfig};
use nora_core::RescalePlan;
use nora_nn::corpus::Episode;
use nora_nn::{softmax_rows, AttnProj, LinearId, LinearKind, TransformerLm};
use nora_tensor::rng::Rng;
use nora_tensor::Matrix;

/// First two moments of one analog linear's output, plus the error powers
/// against the ideal (digital) product.
#[derive(Debug, Clone)]
pub struct LayerMoments {
    /// Predicted `E[y_analog]` per element (bias excluded — it is added
    /// digitally in both deployments and cancels in the error).
    pub mean: Matrix,
    /// Predicted `Var[y_analog]` per element.
    pub var: Matrix,
    /// Mean squared deterministic error `mean((E[y] − y_ideal)²)`.
    pub bias_power: f64,
    /// Mean stochastic variance `mean(Var[y])`.
    pub var_power: f64,
    /// Per-output-channel mean error power `bias² + variance` — the
    /// channel-resolved injection profile used by the block propagation.
    pub col_power: Vec<f64>,
    /// Per-output-channel *signed* mean error, averaged over calibration
    /// rows, after attributing the signal-gain deficit to
    /// [`LayerMoments::signal_gain`]: `mean(E[y]) − g·mean(y_ideal)`.
    /// This is the systematic component shared by every forward through
    /// the layer (quantization/clipping bias); it propagates coherently
    /// and shifts the logits deterministically, unlike the zero-mean
    /// residual in `col_noise`.
    pub col_mean: Vec<f64>,
    /// Per-output-channel incoherent error power: the variance of the
    /// residual after regressing `E[y]` on `g·y_ideal + bias` across
    /// calibration rows, plus the mean device variance.
    pub col_noise: Vec<f64>,
    /// Pooled signal transmission gain `g = Cov(E[y], y_ideal)/Var(y_ideal)`
    /// across calibration rows (clamped to `[0, 1]`). Converter range
    /// clipping under a noisy input flattens the *row-varying* part of the
    /// output — `E[clip(z+n)]` has slope `≈ P(|z+n| < bound)` in `z` — so
    /// a clipped layer attenuates the clean signal multiplicatively
    /// instead of merely adding error. Booking that deficit as noise
    /// power (the pre-gain model) predicts survivable margins where the
    /// simulator shows total collapse of the clean-logit correlation.
    pub signal_gain: f64,
}

impl LayerMoments {
    /// Predicted per-element MSE against the digital product:
    /// `bias² + variance`.
    pub fn mse(&self) -> f64 {
        self.bias_power + self.var_power
    }
}

/// Analytic model of one tile block of the [`AnalogLinear`] grid: the
/// deterministic construction chain replicated exactly, plus per-element
/// programming-error moments from the exact device laws.
struct BlockModel {
    /// `E[w_eff]` per element (γ-normalised, post weight-quant, post
    /// censored programming law).
    w_det: Matrix,
    /// `w_det²` per element (drives the input-noise variance vecmat).
    w_sq: Matrix,
    /// Programming variance per element.
    prog_var: Matrix,
    /// Per-column sum of `w_det²` (bit-serial input-noise path).
    col_sq_sum: Vec<f32>,
    gamma: Vec<f32>,
    ir_factors: Vec<f32>,
    budget: NoiseBudget,
    dac: Dac,
    adc: Adc,
    s: Vec<f32>,
    max_retries: u32,
    cfg: TileConfig,
}

/// Scratch for one deterministic conversion round.
struct RoundOut {
    /// Deterministic pre-ADC accumulation per column (IR droop applied).
    z: Vec<f32>,
    /// Per-repeat stochastic variance at the ADC input per column
    /// (input + read + output noise; excludes programming error).
    stoch: Vec<f64>,
    /// Programming-error variance contribution per column (frozen across
    /// repeats — the same programmed cells serve every read).
    prog: Vec<f64>,
    /// Deterministic ADC saturation count.
    saturated: usize,
}

impl BlockModel {
    fn new(block: &Matrix, s_slice: &[f32], cfg: &TileConfig) -> Self {
        let rows = block.rows();
        let cols = block.cols();
        let budget = cfg.noise_budget(rows);
        // Construction chain, replicated: smoothing row scale, per-column
        // γ normalisation, weight quantization on the unit grid.
        let mut w_hat = block.clone();
        w_hat.scale_rows(s_slice);
        let gamma = w_hat.col_abs_max();
        for (j, &g) in gamma.iter().enumerate() {
            if g > 0.0 {
                w_hat.scale_col(j, 1.0 / g);
            }
        }
        if let Some(steps) = cfg.weight_quant.steps() {
            nora_tensor::quant::Quantizer::new(steps, 1.0).quantize_slice(w_hat.as_mut_slice());
        }
        // Programming law: per-element mean and variance of the effective
        // weight, from the exact censored single-shot device moments.
        let mut w_det = Matrix::zeros(rows, cols);
        let mut prog_var = Matrix::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                let (m, v) = budget.prog_moments(w_hat[(r, c)]);
                w_det[(r, c)] = m as f32;
                prog_var[(r, c)] = v as f32;
            }
        }
        let mut w_sq = w_det.clone();
        for v in w_sq.as_mut_slice() {
            *v *= *v;
        }
        let mut col_sq_sum = vec![0.0f32; cols];
        for r in 0..rows {
            for (c, acc) in col_sq_sum.iter_mut().enumerate() {
                *acc += w_sq[(r, c)];
            }
        }
        // IR-drop column factors from the mean relative conductance of the
        // *expected* programmed array (exact for ideal weights; the mean
        // over device draws otherwise).
        let col_mean_rel_g: Vec<f32> = (0..cols)
            .map(|c| (0..rows).map(|r| w_det[(r, c)].abs()).sum::<f32>() / rows.max(1) as f32)
            .collect();
        let ir_factors = budget.ir_column_factors(&col_mean_rel_g);
        let max_retries = match cfg.bound_management {
            BoundManagement::None => 0,
            BoundManagement::Iterative { max_rounds } => max_rounds,
        };
        Self {
            w_det,
            w_sq,
            prog_var,
            col_sq_sum,
            gamma,
            ir_factors,
            dac: Dac::new(cfg.dac, cfg.dac_bound),
            adc: Adc::new(cfg.adc, cfg.adc_bound),
            budget,
            s: s_slice.to_vec(),
            max_retries,
            cfg: cfg.clone(),
        }
    }

    /// One deterministic analog conversion round at input scale `alpha`.
    /// `u_s` is the propagated input-noise variance per line (in `x_s`
    /// units): noisy lines are censored at the DAC bound (coherent
    /// compression of out-of-range excursions) and their transmitted
    /// variance rides the `w²` path into the output.
    fn analog_round(&self, x_s: &[f32], u_s: Option<&[f64]>, alpha: f32) -> RoundOut {
        let cols = self.gamma.len();
        let b = &self.budget;
        let mut x_hat: Vec<f32> = x_s.iter().map(|&v| v / alpha).collect();
        let mut prop_pv: Option<Vec<f32>> = None;
        if let Some(u) = u_s {
            let mut pv = vec![0.0f32; x_hat.len()];
            let mut any = false;
            for ((xh, &uv), p) in x_hat.iter_mut().zip(u).zip(pv.iter_mut()) {
                if uv > 0.0 {
                    any = true;
                    let sigma = uv.sqrt() / f64::from(alpha);
                    let (m, v) =
                        censored_moments(f64::from(*xh), sigma, f64::from(b.dac_bound));
                    *xh = m as f32;
                    *p = v as f32;
                }
            }
            if any {
                prop_pv = Some(pv);
            }
        }
        self.dac.convert_slice(&mut x_hat);
        // Input noise is injected after the DAC and passes through the
        // S-shape: linearise with f'(x) = 1 − (k·f(x))² (tanh identity).
        s_shape_slice(&mut x_hat, b.s_shape);
        let mut z = vec![0.0f32; cols];
        self.w_det.vecmat_into(&x_hat, &mut z);
        let mut var_in = vec![0.0f32; cols];
        if b.in_sigma > 0.0 {
            let d_sq: Vec<f32> = x_hat
                .iter()
                .map(|&f| {
                    let d = if b.s_shape > 0.0 { 1.0 - (b.s_shape * f) * (b.s_shape * f) } else { 1.0 };
                    d * d
                })
                .collect();
            self.w_sq.vecmat_into(&d_sq, &mut var_in);
        }
        let mut var_prop = vec![0.0f32; cols];
        if let Some(pv) = &prop_pv {
            let pv_d: Vec<f32> = pv
                .iter()
                .zip(&x_hat)
                .map(|(&v, &f)| {
                    let d = if b.s_shape > 0.0 { 1.0 - (b.s_shape * f) * (b.s_shape * f) } else { 1.0 };
                    v * d * d
                })
                .collect();
            self.w_sq.vecmat_into(&pv_d, &mut var_prop);
        }
        let mut prog = vec![0.0f32; cols];
        let x_hat_sq: Vec<f32> = x_hat.iter().map(|&v| v * v).collect();
        self.prog_var.vecmat_into(&x_hat_sq, &mut prog);
        let sigma_w = if b.read_sigma > 0.0 {
            let l2 = x_hat.iter().map(|&v| f64::from(v) * f64::from(v)).sum::<f64>().sqrt() as f32;
            if l2 > 0.0 {
                b.read_sigma * l2
            } else {
                0.0
            }
        } else {
            0.0
        };
        let u = if b.ir.is_off() {
            0.0
        } else {
            x_hat.iter().map(|v| v.abs()).sum::<f32>() / x_hat.len().max(1) as f32
        };
        let mut stoch = vec![0.0f64; cols];
        let mut prog64 = vec![0.0f64; cols];
        let mut saturated = 0usize;
        for j in 0..cols {
            let m = self.budget.ir.multiplier(self.ir_factors[j], u);
            z[j] *= m;
            let m2 = f64::from(m) * f64::from(m);
            stoch[j] = m2 * (f64::from(var_in[j]) * f64::from(b.in_sigma) * f64::from(b.in_sigma)
                + f64::from(var_prop[j])
                + f64::from(sigma_w) * f64::from(sigma_w))
                + f64::from(b.out_sigma) * f64::from(b.out_sigma);
            prog64[j] = m2 * f64::from(prog[j]);
            if self.adc.convert(z[j]).1 {
                saturated += 1;
            }
        }
        RoundOut { z, stoch, prog: prog64, saturated }
    }

    /// One deterministic bit-serial conversion round at input scale
    /// `alpha`: exact per-plane shift-add of the deterministic signal,
    /// per-plane noise variances accumulated with the shift-add weights.
    fn bit_serial_round(&self, x_s: &[f32], u_s: Option<&[f64]>, alpha: f32, bits: u32) -> RoundOut {
        let cols = self.gamma.len();
        let b = &self.budget;
        let planes = bits - 1;
        let full_scale = ((1u32 << planes) - 1) as f32;
        let bound = b.dac_bound;
        // Propagated input noise: censor each noisy line at the DAC bound,
        // drive the planes from the censored mean, and carry the
        // transmitted variance through `w²` (coherent per-plane split not
        // modelled — the reconstruction weights sum back to the full
        // value, so the aggregate transfer is the same).
        let mut prop_pv: Option<Vec<f32>> = None;
        let mut drive: Vec<f32> = x_s.iter().map(|&v| v / alpha).collect();
        if let Some(u) = u_s {
            let mut pv = vec![0.0f32; drive.len()];
            let mut any = false;
            for ((d, &uv), p) in drive.iter_mut().zip(u).zip(pv.iter_mut()) {
                if uv > 0.0 {
                    any = true;
                    let sigma = uv.sqrt() / f64::from(alpha);
                    let (m, v) = censored_moments(f64::from(*d), sigma, f64::from(bound));
                    *d = m as f32;
                    *p = v as f32;
                }
            }
            if any {
                prop_pv = Some(pv);
            }
        }
        let levels: Vec<i32> = drive
            .iter()
            .map(|&scaled| {
                let c = if scaled.is_nan() { 0.0 } else { scaled.clamp(-bound, bound) };
                (c / bound * full_scale).round() as i32
            })
            .collect();
        let drive_gain = s_shape(1.0, b.s_shape);
        let n_lines = levels.len() as f64;
        let mut z = vec![0.0f32; cols];
        let mut stoch = vec![0.0f64; cols];
        let mut saturated = 0usize;
        let mut plane = vec![0.0f32; levels.len()];
        let mut zk = vec![0.0f32; cols];
        for k in 0..planes {
            let mask = 1i32 << k;
            for (p, &m) in plane.iter_mut().zip(&levels) {
                *p = if m.abs() & mask != 0 { m.signum() as f32 * drive_gain } else { 0.0 };
            }
            self.w_det.vecmat_into(&plane, &mut zk);
            // The simulator measures the read-noise norm on the *noisy*
            // plane; fold the input-noise power into the expectation.
            let plane_l2_sq =
                plane.iter().map(|&v| f64::from(v) * f64::from(v)).sum::<f64>();
            let sigma_w = if b.read_sigma > 0.0 {
                f64::from(b.read_sigma)
                    * (plane_l2_sq + n_lines * f64::from(b.in_sigma) * f64::from(b.in_sigma)).sqrt()
            } else {
                0.0
            };
            let u = if b.ir.is_off() {
                0.0
            } else {
                plane.iter().map(|v| v.abs()).sum::<f32>() / plane.len().max(1) as f32
            };
            let weight = (mask as f32) / full_scale * bound / drive_gain;
            let w2 = f64::from(weight) * f64::from(weight);
            for j in 0..cols {
                let m = b.ir.multiplier(self.ir_factors[j], u);
                let v = zk[j] * m;
                if self.adc.convert(v).1 {
                    saturated += 1;
                }
                let m2 = f64::from(m) * f64::from(m);
                let var_in = f64::from(b.in_sigma).powi(2) * f64::from(self.col_sq_sum[j]);
                // Dithered-ADC error per plane rides the shift-add too.
                let v_adc = if b.adc_step > 0.0 {
                    f64::from(b.adc_step).powi(2) / 12.0
                } else {
                    0.0
                };
                stoch[j] += w2 * (m2 * (var_in + sigma_w * sigma_w)
                    + f64::from(b.out_sigma).powi(2)
                    + v_adc);
                z[j] += weight * v;
            }
        }
        // Programming error is frozen across planes: the plane amplitudes
        // add coherently back to the reconstructed quantized input.
        let x_quant: Vec<f32> =
            levels.iter().map(|&l| l as f32 * bound / full_scale).collect();
        let u_bar = if b.ir.is_off() {
            0.0
        } else {
            x_quant.iter().map(|v| v.abs()).sum::<f32>() / x_quant.len().max(1) as f32
        };
        let xq_sq: Vec<f32> = x_quant.iter().map(|&v| v * v).collect();
        let mut prog_raw = vec![0.0f32; cols];
        self.prog_var.vecmat_into(&xq_sq, &mut prog_raw);
        if let Some(pv) = &prop_pv {
            let mut var_prop = vec![0.0f32; cols];
            self.w_sq.vecmat_into(pv, &mut var_prop);
            for (s, &v) in stoch.iter_mut().zip(&var_prop) {
                *s += f64::from(v);
            }
        }
        let prog = (0..cols)
            .map(|j| {
                let m = b.ir.multiplier(self.ir_factors[j], u_bar);
                f64::from(m) * f64::from(m) * f64::from(prog_raw[j])
            })
            .collect();
        RoundOut { z, stoch, prog, saturated }
    }

    /// Accumulates the output mean and variance of one input row into
    /// `out_mean` / `out_var` (block partial sums — caller owns the grid).
    /// `u_slice` is the propagated input-noise variance per line (model
    /// units, pre-smoothing), `None` for a clean input.
    fn forward_moments(
        &self,
        x_slice: &[f32],
        u_slice: Option<&[f64]>,
        out_mean: &mut [f32],
        out_var: &mut [f64],
    ) {
        let b = &self.budget;
        let mut x_s = vec![0.0f32; x_slice.len()];
        for (k, (&xv, &sv)) in x_slice.iter().zip(&self.s).enumerate() {
            x_s[k] = xv / sv;
        }
        // Input noise in smoothed units rides 1/s² like the signal.
        let u_xs: Option<Vec<f64>> = u_slice.map(|u| {
            u.iter()
                .zip(&self.s)
                .map(|(&uv, &sv)| uv / (f64::from(sv) * f64::from(sv)))
                .collect()
        });
        let mut alpha = self.cfg.noise_management.alpha(&x_s);
        // AbsMax reads the *runtime* row, noise included: once the stream
        // noise rivals the clean activations the runtime α is set by the
        // noise excursions, every multiplicative error term downstream
        // scales with that inflated α, and the fresh injection is amplified
        // by the noise already present — the superlinear joint collapse a
        // clean-α model misses entirely. Expected noisy-row max via the
        // Gaussian max-order statistic `σ·√(2 ln 2d)` per line, combined
        // with the clean value in quadrature.
        if let (Some(u), NoiseManagement::AbsMax) =
            (u_xs.as_deref(), self.cfg.noise_management)
        {
            let d = x_s.len().max(2) as f64;
            let c2 = 2.0 * (2.0 * d).ln();
            let noisy_max = x_s
                .iter()
                .zip(u)
                .map(|(&xv, &uv)| (f64::from(xv) * f64::from(xv) + c2 * uv).sqrt())
                .fold(0.0f64, f64::max);
            alpha = alpha.max(noisy_max as f32);
        }
        if alpha.is_nan() || alpha <= 0.0 {
            return; // all-zero row: the tile outputs exact zeros.
        }
        let mut round = 0u32;
        let out = loop {
            let out = match b.bit_serial_bits {
                Some(bits) => self.bit_serial_round(&x_s, u_xs.as_deref(), alpha, bits),
                None => self.analog_round(&x_s, u_xs.as_deref(), alpha),
            };
            if out.saturated == 0 || round >= self.max_retries {
                break out;
            }
            alpha *= 2.0;
            round += 1;
        };
        let ra = f64::from(b.read_averaging.max(1));
        let bit_serial = b.bit_serial_bits.is_some();
        for j in 0..self.gamma.len() {
            let ag = alpha * self.gamma[j];
            let sigma = out.stoch[j].sqrt();
            // ADC regime: with per-repeat noise below half an LSB the
            // deterministic code is exact and the converter adds no
            // variance; above it the noise dithers across code boundaries,
            // the mean tracks the *censored* analog value (the converter
            // range clips the noise excursions — a coherent compression of
            // large outputs), and the quantization error contributes the
            // uniform Δ²/12.
            let mut var_scale = 1.0f64;
            let (det, v_adc) = if bit_serial {
                // Per-plane conversion already handled inside the round.
                (out.z[j], 0.0)
            } else if b.adc_step > 0.0 && sigma > f64::from(b.adc_step) / 2.0 {
                let s_tot_sq = out.stoch[j] + out.prog[j];
                let (cm, cv) =
                    censored_moments(f64::from(out.z[j]), s_tot_sq.sqrt(), f64::from(b.adc_bound));
                if s_tot_sq > 0.0 {
                    var_scale = (cv / s_tot_sq).min(1.0);
                }
                (cm as f32, f64::from(b.adc_step).powi(2) / 12.0)
            } else {
                (self.adc.convert(out.z[j]).0, 0.0)
            };
            out_mean[j] += ag * det;
            let ag2 = f64::from(ag) * f64::from(ag);
            out_var[j] += ag2 * ((out.stoch[j] * var_scale + v_adc) / ra + out.prog[j] * var_scale);
        }
    }
}

/// Closed-form output moments of one analog linear layer on inputs `x`.
///
/// Replicates the [`AnalogLinear`](nora_cim::AnalogLinear) tile grid
/// (`tile_rows × tile_cols` blocks, digital partial-sum accumulation) and
/// evaluates each block with [`BlockModel`]. `smoothing` is the NORA
/// rescale vector for this layer (length `d_in`), `None` for the naïve
/// deployment. The layer bias is excluded — it is digital in both
/// deployments and cancels in the error.
///
/// ABFT checksum columns are not modelled (the analytic model targets
/// fault-free configurations); the grid geometry still accounts for the
/// reserved column so block boundaries match the simulator.
///
/// `u_in` is the propagated incoherent error variance per input channel
/// (`None` for a clean input): it is censored at the DAC bound, carried
/// through `w²` into the output variance, and folded into the ADC
/// censoring — the range/precision interaction that makes a joint noisy
/// deployment strictly worse than the sum of its per-layer errors.
pub fn layer_error_moments(
    weights: &Matrix,
    smoothing: Option<&[f32]>,
    x: &Matrix,
    cfg: &TileConfig,
    u_in: Option<&[f64]>,
) -> LayerMoments {
    let d_in = weights.rows();
    let d_out = weights.cols();
    let ones;
    let s_full: &[f32] = match smoothing {
        Some(s) => s,
        None => {
            ones = vec![1.0f32; d_in];
            &ones
        }
    };
    assert_eq!(s_full.len(), d_in, "smoothing length mismatch");
    if let Some(u) = u_in {
        assert_eq!(u.len(), d_in, "input-noise profile length mismatch");
    }
    let tr = cfg.tile_rows;
    let tc = cfg.tile_cols - usize::from(cfg.fault_tolerance.abft);
    let mut mean = Matrix::zeros(x.rows(), d_out);
    let mut var = vec![0.0f64; x.rows() * d_out];
    let mut r0 = 0;
    while r0 < d_in {
        let r1 = (r0 + tr).min(d_in);
        let mut c0 = 0;
        while c0 < d_out {
            let c1 = (c0 + tc).min(d_out);
            let block = weights.submatrix(r0, r1, c0, c1);
            let bm = BlockModel::new(&block, &s_full[r0..r1], cfg);
            let mut row_mean = vec![0.0f32; c1 - c0];
            let mut row_var = vec![0.0f64; c1 - c0];
            for i in 0..x.rows() {
                row_mean.iter_mut().for_each(|v| *v = 0.0);
                row_var.iter_mut().for_each(|v| *v = 0.0);
                bm.forward_moments(
                    &x.row(i)[r0..r1],
                    u_in.map(|u| &u[r0..r1]),
                    &mut row_mean,
                    &mut row_var,
                );
                for (j, (&m, &v)) in row_mean.iter().zip(&row_var).enumerate() {
                    mean[(i, c0 + j)] += m;
                    var[i * d_out + c0 + j] += v;
                }
            }
            c0 = c1;
        }
        r0 = r1;
    }
    let ideal = x.matmul(weights);
    let rows_n = x.rows().max(1) as f64;
    let n = (x.rows() * d_out).max(1) as f64;
    let mut col_power = vec![0.0f64; d_out];
    let mut bias_power = 0.0f64;
    // Per-column means of the predicted and ideal outputs, for the pooled
    // signal-gain regression across calibration rows.
    let mut mm = vec![0.0f64; d_out];
    let mut mi = vec![0.0f64; d_out];
    for i in 0..x.rows() {
        for (j, (&m, &y)) in mean.row(i).iter().zip(ideal.row(i)).enumerate() {
            let d = f64::from(m) - f64::from(y);
            bias_power += d * d;
            col_power[j] += (d * d + var[i * d_out + j]) / rows_n;
            mm[j] += f64::from(m) / rows_n;
            mi[j] += f64::from(y) / rows_n;
        }
    }
    let mut cov = 0.0f64;
    let mut sig = 0.0f64;
    for i in 0..x.rows() {
        for (j, (&m, &y)) in mean.row(i).iter().zip(ideal.row(i)).enumerate() {
            cov += (f64::from(m) - mm[j]) * (f64::from(y) - mi[j]);
            sig += (f64::from(y) - mi[j]) * (f64::from(y) - mi[j]);
        }
    }
    // Single calibration row (or a constant column) carries no row-varying
    // signal to regress on; fall back to unit gain there.
    let signal_gain = if sig > 1e-12 {
        (cov / sig).clamp(0.0, 1.0)
    } else {
        1.0
    };
    let mut col_mean = vec![0.0f64; d_out];
    let mut col_noise = vec![0.0f64; d_out];
    for j in 0..d_out {
        col_mean[j] = mm[j] - signal_gain * mi[j];
    }
    for i in 0..x.rows() {
        for (j, (&m, &y)) in mean.row(i).iter().zip(ideal.row(i)).enumerate() {
            let r = f64::from(m) - signal_gain * f64::from(y) - col_mean[j];
            col_noise[j] += (r * r + var[i * d_out + j]) / rows_n;
        }
    }
    bias_power /= n;
    let var_power = var.iter().sum::<f64>() / n;
    let var_mat = Matrix::from_vec(x.rows(), d_out, var.iter().map(|&v| v as f32).collect());
    LayerMoments {
        mean,
        var: var_mat,
        bias_power,
        var_power,
        col_power,
        col_mean,
        col_noise,
        signal_gain,
    }
}

/// Energy/latency/area cost of decoding one token through one analog
/// linear (one input row per tile block).
#[derive(Debug, Clone, Copy, Default)]
pub struct LayerCost {
    /// Total energy, pJ per decoded token.
    pub energy_pj: f64,
    /// Critical-path latency, ns per decoded token (tile blocks convert in
    /// parallel; the slowest block gates the layer).
    pub latency_ns: f64,
    /// Silicon area of the occupied tile slots, µm².
    pub area_um2: f64,
}

impl LayerCost {
    /// Element-wise accumulation of another layer's cost: energies and
    /// areas add; latencies add too (layers execute sequentially).
    pub fn accumulate(&mut self, other: LayerCost) {
        self.energy_pj += other.energy_pj;
        self.latency_ns += other.latency_ns;
        self.area_um2 += other.area_um2;
    }
}

/// Per-decode-token energy/latency/area of one analog linear under `cfg`,
/// from the first-order [`EnergyModel`](nora_cim::EnergyModel) /
/// [`AreaModel`](nora_cim::AreaModel) laws — no tile construction.
///
/// Each tile block is charged one conversion round of a single input row
/// (`read_averaging` physical repeats, times the wordline-plane count
/// under bit-serial input encoding); the array term uses the mean
/// relative conductance of the γ-normalised, quantized weight block (the
/// programming-law mean shift is a second-order correction to energy and
/// is skipped here). Bound-management retries are load-dependent and
/// excluded — the estimate is the retry-free floor, consistent across the
/// whole design grid.
///
/// Pruned (all-zero) weight rows are never streamed: their DACs stay idle
/// in every bit-serial plane and their unprogrammed cells draw no array
/// current, so the DAC term charges only the active rows while the array
/// term keeps charging exactly the programmed conductance mass `Σ|ŵ|` —
/// for dense blocks both reduce to the unpruned estimate, so sparse-aware
/// accounting is a strict refinement, not a recalibration.
pub fn layer_decode_cost(
    weights: &Matrix,
    smoothing: Option<&[f32]>,
    cfg: &TileConfig,
    energy: &nora_cim::EnergyModel,
    area: &nora_cim::AreaModel,
) -> LayerCost {
    let d_in = weights.rows();
    let d_out = weights.cols();
    let ones;
    let s_full: &[f32] = match smoothing {
        Some(s) => s,
        None => {
            ones = vec![1.0f32; d_in];
            &ones
        }
    };
    let tr = cfg.tile_rows;
    let tc = cfg.tile_cols - usize::from(cfg.fault_tolerance.abft);
    // Bit-serial encoding rebuilds the full conversion chain once per
    // wordline plane (`bits − 1` planes, matching the tile forward).
    let planes = match cfg.input_encoding {
        nora_cim::InputEncoding::BitSerial { bits } => u64::from(bits.max(2) - 1),
        _ => 1,
    };
    let stats = nora_cim::ForwardStats {
        samples: 1,
        read_repeats: planes * u64::from(cfg.read_averaging.max(1)),
        ..Default::default()
    };
    let mut cost = LayerCost::default();
    let mut r0 = 0;
    while r0 < d_in {
        let r1 = (r0 + tr).min(d_in);
        let mut c0 = 0;
        while c0 < d_out {
            let c1 = (c0 + tc).min(d_out);
            let mut w_hat = weights.submatrix(r0, r1, c0, c1);
            w_hat.scale_rows(&s_full[r0..r1]);
            let gamma = w_hat.col_abs_max();
            for (j, &g) in gamma.iter().enumerate() {
                if g > 0.0 {
                    w_hat.scale_col(j, 1.0 / g);
                }
            }
            if let Some(steps) = cfg.weight_quant.steps() {
                nora_tensor::quant::Quantizer::new(steps, 1.0)
                    .quantize_slice(w_hat.as_mut_slice());
            }
            let active_rows = (0..w_hat.rows())
                .filter(|&i| w_hat.row(i).iter().any(|&v| v != 0.0))
                .count();
            let abs_sum = w_hat.as_slice().iter().map(|v| v.abs()).sum::<f32>();
            // Charge DACs for active rows only; renormalise the mean
            // conductance over those rows so the array term still sees the
            // full programmed mass Σ|ŵ| (identical to the dense estimate
            // when no row is pruned).
            let mean_rel_g = abs_sum / (active_rows * (c1 - c0)).max(1) as f32;
            let report = energy.estimate(&stats, active_rows, c1 - c0, mean_rel_g);
            cost.energy_pj += report.total_pj();
            cost.latency_ns = cost.latency_ns.max(report.latency_ns);
            cost.area_um2 +=
                area.tile_area_um2(cfg.tile_rows, cfg.tile_cols, cfg.weight_slices);
            c0 = c1;
        }
        r0 = r1;
    }
    cost
}

/// Empirically calibrated white-noise response of the *digital* network
/// downstream of one residual-stream interface (a block input, or the
/// final-LayerNorm input).
///
/// The diagonal-covariance propagation underpredicts the logit damage of
/// stream noise by more than an order of magnitude: a clean transformer
/// block converts white residual noise into *correlated* logit error
/// (softmax re-ranking, ReLU gate flips, LayerNorm common-mode coupling)
/// that the per-channel profile cannot represent. Instead of modelling
/// those cross-channel terms, the evaluator measures them once at
/// construction: white noise of a few log-spaced powers is injected at
/// each interface of the captured *digital* forwards and the pooled
/// clean→noisy logit regression slope (margin attenuation `κ`) plus the
/// per-class residual second moment are recorded. The curves are a
/// property of the trained network alone — independent of the tile
/// configuration and rescale plan — so one calibration serves every
/// config of a design-space sweep.
struct InterfaceResponse {
    /// Injected white-noise powers (absolute per-channel variance at the
    /// interface), ascending.
    levels: Vec<f64>,
    /// Pooled centered regression slope of noisy on clean logits, per
    /// level.
    kappa: Vec<f64>,
    /// Per-class second moment of the residual `L − κ·l`, per level
    /// (`levels × classes`).
    resid: Vec<Vec<f64>>,
}

impl InterfaceResponse {
    /// Margin attenuation at injected power `p` (log-linear interpolation,
    /// linear-in-power below the smallest measured level, clamped at the
    /// largest — the top level pins the decorrelation plateau).
    fn kappa_at(&self, p: f64) -> f64 {
        if p <= 0.0 || self.levels.is_empty() {
            return 1.0;
        }
        let k = &self.kappa;
        if p <= self.levels[0] {
            return 1.0 - (1.0 - k[0]) * (p / self.levels[0]);
        }
        if p >= *self.levels.last().unwrap() {
            return *k.last().unwrap();
        }
        let i = self.levels.partition_point(|&l| l < p).max(1);
        let (l0, l1) = (self.levels[i - 1], self.levels[i]);
        let t = (p.ln() - l0.ln()) / (l1.ln() - l0.ln());
        k[i - 1] + (k[i] - k[i - 1]) * t
    }

    /// Per-class residual logit variance at injected power `p` (same
    /// interpolation scheme as [`InterfaceResponse::kappa_at`]).
    fn resid_at(&self, p: f64, out: &mut [f64]) {
        if p <= 0.0 || self.levels.is_empty() {
            return;
        }
        if p <= self.levels[0] {
            let f = p / self.levels[0];
            for (o, &r) in out.iter_mut().zip(&self.resid[0]) {
                *o += r * f;
            }
            return;
        }
        if p >= *self.levels.last().unwrap() {
            for (o, &r) in out.iter_mut().zip(self.resid.last().unwrap()) {
                *o += r;
            }
            return;
        }
        let i = self.levels.partition_point(|&l| l < p).max(1);
        let (l0, l1) = (self.levels[i - 1], self.levels[i]);
        let t = (p.ln() - l0.ln()) / (l1.ln() - l0.ln());
        for (j, o) in out.iter_mut().enumerate() {
            let (r0, r1) = (self.resid[i - 1][j].max(1e-12), self.resid[i][j].max(1e-12));
            *o += (r0.ln() + (r1.ln() - r0.ln()) * t).exp();
        }
    }
}

/// Episodes used for the white-noise interface calibration (capped — the
/// response curves need pooled class statistics, not the full eval set).
const CAL_EPISODES: usize = 48;

/// Injected noise powers relative to the interface's clean row variance.
/// Log-spaced from the linear small-noise regime up past the
/// decorrelation plateau.
const CAL_REL_LEVELS: [f64; 6] = [0.002, 0.01, 0.05, 0.25, 1.25, 6.25];

/// Runs the digital model from the input of block `from_block` (or from
/// the final LayerNorm when `from_block == blocks`) and returns the
/// final-position logits.
fn digital_tail(model: &TransformerLm, mut x: Matrix, from_block: usize) -> Vec<f32> {
    for block in &model.blocks[from_block..] {
        let ln1_out = block.ln1.forward_inference(&x);
        let attn_out = block.attn.forward_inference(&ln1_out);
        let x1 = x.add(&attn_out);
        let ln2_out = block.ln2.forward_inference(&x1);
        let h = block.fc1.forward(&ln2_out).map(|t| t.max(0.0));
        x = x1.add(&block.fc2.forward(&h));
    }
    let xf = model.final_ln.forward_inference(&x);
    let logits = model.head.forward(&xf);
    logits.row(logits.rows() - 1).to_vec()
}

/// Per-block propagation statistics measured on the digital model.
#[derive(Debug, Clone, Default)]
struct BlockStats {
    /// LayerNorm-1 mean clean row variance `mean_rows[pop_var(x_row)]`.
    ln1_var: f64,
    /// LayerNorm-2 mean clean row variance.
    ln2_var: f64,
    /// Mean `Σ_j p_ij²` over positions × heads.
    f_attn: f64,
    /// Mean softmax Jacobian Frobenius norm² per score row.
    softmax_jac: f64,
    /// Mean per-head `‖q_i‖²/d_head` (multiplies key-side error).
    kappa_q: f64,
    /// Mean per-head `‖k_j‖²/d_head` (multiplies query-side error).
    kappa_k: f64,
    /// Per-channel mean square value-projection entry (the score-noise
    /// path injects context error with this channel profile).
    msq_v: Vec<f64>,
    /// Per-channel fraction of positive FFN pre-activations (ReLU
    /// pass-through).
    p_act: Vec<f64>,
    /// Per-channel mean FFN pre-activation (drives the ReLU rectification
    /// shift under the Gaussian channel model).
    act_mean: Vec<f64>,
    /// Per-channel mean-square FFN pre-activation.
    act_sq: Vec<f64>,
}

/// One analog linear's contribution to a prediction.
#[derive(Debug, Clone)]
pub struct LayerInjection {
    /// Which linear.
    pub id: LinearId,
    /// Injected error power `bias² + variance` (per element, averaged).
    pub power: f64,
    /// Per-element MSE decomposition of the layer.
    pub bias_power: f64,
    /// Stochastic share of the injected power.
    pub var_power: f64,
}

/// The analytic accuracy/MSE prediction for one deployment configuration.
#[derive(Debug, Clone)]
pub struct AnalyticPrediction {
    /// Predicted root-mean-square logit error (mean over classes).
    pub sigma_logit: f64,
    /// Per-class predicted logit error variance. The error is strongly
    /// concentrated on the classes whose head rows read corrupted
    /// channels, so accuracy uses this profile, not the scalar mean.
    pub logit_var: Vec<f64>,
    /// Per-class predicted *signed* systematic logit shift — the coherent
    /// deployment bias shared by every episode.
    pub logit_shift: Vec<f64>,
    /// Predicted eval accuracy over the evaluator's episodes.
    pub accuracy: f64,
    /// Final-residual error variance before the head.
    pub residual_var: f64,
    /// Per-layer injected error powers, forward order.
    pub layers: Vec<LayerInjection>,
}

/// LayerNorm epsilon (mirrors the private constant in `nora-nn`).
const LN_EPS: f32 = 1e-5;

/// Fast analytic accuracy predictor: digital statistics captured once,
/// arbitrary `(plan, tile config)` pairs scored without tile forwards.
pub struct AnalyticEvaluator {
    /// Captured clean inputs per linear (row-capped).
    inputs: Vec<Matrix>,
    block_stats: Vec<BlockStats>,
    final_ln_var: f64,
    /// Final-position logits and planted key per episode.
    logits: Vec<(Vec<f32>, usize)>,
    /// Calibrated white-noise response per residual-stream interface
    /// (index `b` → input of block `b+1`; the last entry is the
    /// final-LayerNorm input).
    interfaces: Vec<InterfaceResponse>,
    /// Manifold discount: real analog stream error (born inside the
    /// analog layers — γ-shaped, attention-mixed, partially
    /// signal-correlated) damages the downstream digital network
    /// several-fold less per unit measured power than the fresh white
    /// noise the response curves were measured with. Self-calibrated in
    /// [`AnalyticEvaluator::new`] against a single simulated reference
    /// config; interface powers are divided by this before curve lookup.
    discount: f64,
}

impl AnalyticEvaluator {
    /// Runs the digital model over `episodes`, capturing per-linear inputs
    /// (at most `max_capture_rows` stacked rows per linear) and the block
    /// propagation statistics.
    pub fn new(model: &TransformerLm, episodes: &[Episode], max_capture_rows: usize) -> Self {
        let blocks = model.blocks.len();
        let mut captures: Vec<Vec<Vec<f32>>> = vec![Vec::new(); blocks * 6];
        let mut stats = vec![BlockStats::default(); blocks];
        let mut final_ln_sum = 0.0f64;
        let mut final_ln_n = 0usize;
        let mut logits_out = Vec::with_capacity(episodes.len());
        let mut counts = vec![0usize; blocks]; // row count per block for means
        let cal_eps = episodes.len().min(CAL_EPISODES);
        // Residual streams entering block b+1 (final-LN input for the last
        // block), per calibration episode — the injection points of the
        // white-noise interface calibration.
        let mut cal_streams: Vec<Vec<Matrix>> = vec![Vec::with_capacity(cal_eps); blocks];

        for (ep_idx, ep) in episodes.iter().enumerate() {
            let ctx = &ep.tokens[..ep.tokens.len() - 1];
            let mut x = model.embedding.forward_inference(ctx);
            for (b, block) in model.blocks.iter().enumerate() {
                let st = &mut stats[b];
                let rows = x.rows();
                // LayerNorm-1 factor on this block's residual input.
                st.ln1_var += ln_mean_var(&x) * rows as f64;
                let ln1_out = block.ln1.forward_inference(&x);
                // Attention statistics from the digital projections.
                let q = block.attn.wq.forward(&ln1_out);
                let k = block.attn.wk.forward(&ln1_out);
                let v = block.attn.wv.forward(&ln1_out);
                accumulate_attn_stats(st, &q, &k, block.attn.heads());
                if st.msq_v.is_empty() {
                    st.msq_v = vec![0.0; v.cols()];
                }
                for r in 0..v.rows() {
                    for (c, &t) in v.row(r).iter().enumerate() {
                        st.msq_v[c] += f64::from(t) * f64::from(t);
                    }
                }
                // The block forward itself uses the model's own kernels so
                // the captured logits are bit-identical to
                // `model.forward`.
                let mut context_rows: Option<Matrix> = None;
                let attn_out = block.attn.forward_inference_with(&ln1_out, |proj, input| {
                    let lin = match proj {
                        AttnProj::Q => &block.attn.wq,
                        AttnProj::K => &block.attn.wk,
                        AttnProj::V => &block.attn.wv,
                        AttnProj::Out => {
                            context_rows = Some(input.clone());
                            &block.attn.wo
                        }
                    };
                    lin.forward(input)
                });
                let context = context_rows.expect("attention hook always projects Out");
                let x1 = x.add(&attn_out);
                st.ln2_var += ln_mean_var(&x1) * rows as f64;
                let ln2_out = block.ln2.forward_inference(&x1);
                let h_pre = block.fc1.forward(&ln2_out);
                if st.p_act.is_empty() {
                    st.p_act = vec![0.0; h_pre.cols()];
                    st.act_mean = vec![0.0; h_pre.cols()];
                    st.act_sq = vec![0.0; h_pre.cols()];
                }
                for r in 0..h_pre.rows() {
                    for (c, &t) in h_pre.row(r).iter().enumerate() {
                        if t > 0.0 {
                            st.p_act[c] += 1.0;
                        }
                        st.act_mean[c] += f64::from(t);
                        st.act_sq[c] += f64::from(t) * f64::from(t);
                    }
                }
                let h = h_pre.map(|v| v.max(0.0));
                capture_rows(&mut captures[b * 6], &ln1_out, max_capture_rows);
                capture_rows(&mut captures[b * 6 + 3], &context, max_capture_rows);
                capture_rows(&mut captures[b * 6 + 4], &ln2_out, max_capture_rows);
                capture_rows(&mut captures[b * 6 + 5], &h, max_capture_rows);
                x = x1.add(&block.fc2.forward(&h));
                if ep_idx < cal_eps {
                    cal_streams[b].push(x.clone());
                }
                counts[b] += rows;
            }
            final_ln_sum += ln_mean_var(&x) * x.rows() as f64;
            final_ln_n += x.rows();
            let xf = model.final_ln.forward_inference(&x);
            let logits = model.head.forward(&xf);
            logits_out.push((logits.row(logits.rows() - 1).to_vec(), ep.key));
        }

        for (b, st) in stats.iter_mut().enumerate() {
            let n = counts[b].max(1) as f64;
            st.ln1_var /= n;
            st.ln2_var /= n;
            st.p_act.iter_mut().for_each(|p| *p /= n);
            st.act_mean.iter_mut().for_each(|m| *m /= n);
            st.act_sq.iter_mut().for_each(|m| *m /= n);
            st.msq_v.iter_mut().for_each(|m| *m /= n);
            // Attention accumulators were normalised per row×head inside
            // `accumulate_attn_stats`; divide by episode count.
            let eps = episodes.len().max(1) as f64;
            st.f_attn /= eps;
            st.softmax_jac /= eps;
            st.kappa_q /= eps;
            st.kappa_k /= eps;
        }

        // Q/K/V share the ln1 capture (one copy each keeps indexing flat).
        let mut inputs = Vec::with_capacity(blocks * 6);
        for b in 0..blocks {
            let ln1 = rows_to_matrix(&captures[b * 6]);
            inputs.push(ln1.clone()); // Q
            inputs.push(ln1.clone()); // K
            inputs.push(ln1); // V
            inputs.push(rows_to_matrix(&captures[b * 6 + 3]));
            inputs.push(rows_to_matrix(&captures[b * 6 + 4]));
            inputs.push(rows_to_matrix(&captures[b * 6 + 5]));
        }

        let final_ln_var = final_ln_sum / final_ln_n.max(1) as f64;

        // White-noise interface calibration: measure the digital network's
        // true stream-noise → logit response once (see
        // [`InterfaceResponse`]). Serial and counter-seeded, so the curves
        // are bit-identical at any thread count.
        let classes = logits_out.first().map_or(0, |(l, _)| l.len());
        let mut interfaces = Vec::with_capacity(blocks);
        for i in 1..=blocks {
            let vbar = if i < blocks {
                stats[i].ln1_var
            } else {
                final_ln_var
            }
            .max(1e-12);
            let mut levels = Vec::with_capacity(CAL_REL_LEVELS.len());
            let mut kappas = Vec::with_capacity(CAL_REL_LEVELS.len());
            let mut resids = Vec::with_capacity(CAL_REL_LEVELS.len());
            for (li, rel) in CAL_REL_LEVELS.iter().enumerate() {
                let power = rel * vbar;
                let sigma = power.sqrt() as f32;
                let mut noisy: Vec<Vec<f32>> = Vec::with_capacity(cal_eps);
                let mut buf = Vec::new();
                for (ep, streams) in cal_streams[i - 1].iter().enumerate() {
                    let mut xn = streams.clone();
                    buf.resize(xn.as_mut_slice().len(), 0.0);
                    let mut rng =
                        Rng::from_key(&[0xCA11_B7A7, i as u64, li as u64, ep as u64]);
                    rng.fill_normal(&mut buf, 0.0, sigma);
                    for (t, n) in xn.as_mut_slice().iter_mut().zip(&buf) {
                        *t += *n;
                    }
                    noisy.push(digital_tail(model, xn, i));
                }
                // Pooled centered regression of noisy on clean logits.
                let n = noisy.len().max(1) as f64;
                let mut clean_mean = vec![0.0f64; classes];
                let mut noisy_mean = vec![0.0f64; classes];
                for (ep, nl) in noisy.iter().enumerate() {
                    for j in 0..classes {
                        clean_mean[j] += f64::from(logits_out[ep].0[j]) / n;
                        noisy_mean[j] += f64::from(nl[j]) / n;
                    }
                }
                let (mut num, mut den) = (0.0f64, 0.0f64);
                for (ep, nl) in noisy.iter().enumerate() {
                    for j in 0..classes {
                        let lc = f64::from(logits_out[ep].0[j]) - clean_mean[j];
                        let ln = f64::from(nl[j]) - noisy_mean[j];
                        num += lc * ln;
                        den += lc * lc;
                    }
                }
                let k = if den > 1e-12 {
                    (num / den).clamp(0.0, 1.0)
                } else {
                    1.0
                };
                // Per-class second moment of the residual about `κ·l` —
                // episode-varying noise plus any noise-induced coherent
                // shift (ReLU rectification of the injected power).
                let mut resid = vec![0.0f64; classes];
                for (ep, nl) in noisy.iter().enumerate() {
                    for (j, r) in resid.iter_mut().enumerate() {
                        let d = f64::from(nl[j]) - k * f64::from(logits_out[ep].0[j]);
                        *r += d * d / n;
                    }
                }
                levels.push(power);
                kappas.push(k);
                resids.push(resid);
            }
            interfaces.push(InterfaceResponse {
                levels,
                kappa: kappas,
                resid: resids,
            });
        }

        let mut ev = Self {
            inputs,
            block_stats: stats,
            final_ln_var,
            logits: logits_out,
            interfaces,
            discount: 1.0,
        };

        // Manifold-discount self-calibration. Fresh white noise injected
        // straight into the residual stream is the most damaging error of a
        // given power: one clean block turns it into correlated,
        // head-aligned logit error (softmax re-ranking, ReLU gate flips).
        // Error born *inside* the analog layers arrives already shaped and
        // partially signal-correlated, and empirically costs ~4-5× less per
        // unit measured stream power — a gap none of the cheap structural
        // surrogates (channel profile, `WᵀW` covariance shaping, row-gain)
        // reproduces. So it is measured, not assumed: simulate one
        // mid-severity reference deployment, regress its logits on the
        // clean captures, and bisect for the power discount that makes the
        // white-curve κ-product match the measured slope.
        let cal_n = episodes.len().min(32);
        if cal_n >= 8 && !ev.interfaces.is_empty() {
            let cfg_ref = nora_cim::NonIdeality::AdditiveOutputNoise.configure(0.021);
            let plan_ref = RescalePlan::naive();
            let classes = ev.logits.first().map_or(0, |(l, _)| l.len());
            // Pooled regression over several deployment seeds: a single
            // 20-episode realization scatters the measured slope by ±0.1.
            let (mut num, mut den) = (0.0f64, 0.0f64);
            for seed in [0x0CA1_1B2A_u64, 0x0CA1_1B2B, 0x0CA1_1B2C] {
                let mut analog = nora_nn::deploy::AnalogTransformerLm::with_layer_filter(
                    model,
                    cfg_ref.clone(),
                    plan_ref.smoothing_map(),
                    seed,
                    |_| true,
                );
                let mut noisy: Vec<Vec<f32>> = Vec::with_capacity(cal_n);
                for ep in &episodes[..cal_n] {
                    let ctx = &ep.tokens[..ep.tokens.len() - 1];
                    let l = analog.forward(ctx);
                    noisy.push(l.row(l.rows() - 1).to_vec());
                }
                let n = cal_n as f64;
                let mut clean_mean = vec![0.0f64; classes];
                let mut noisy_mean = vec![0.0f64; classes];
                for (ep, nl) in noisy.iter().enumerate() {
                    for j in 0..classes {
                        clean_mean[j] += f64::from(ev.logits[ep].0[j]) / n;
                        noisy_mean[j] += f64::from(nl[j]) / n;
                    }
                }
                for (ep, nl) in noisy.iter().enumerate() {
                    for j in 0..classes {
                        let lc = f64::from(ev.logits[ep].0[j]) - clean_mean[j];
                        let ln = f64::from(nl[j]) - noisy_mean[j];
                        num += lc * ln;
                        den += lc * lc;
                    }
                }
            }
            if den > 1e-12 {
                let kappa_ref = (num / den).clamp(0.01, 0.999);
                let (_, deltas) = ev.predict_inner(model, &plan_ref, &cfg_ref);
                let product = |s: f64| -> f64 {
                    ev.interfaces
                        .iter()
                        .zip(&deltas)
                        .map(|(r, &(dk, _))| r.kappa_at(dk / s))
                        .product()
                };
                if product(1.0) < kappa_ref {
                    if product(64.0) <= kappa_ref {
                        ev.discount = 64.0;
                    } else {
                        let (mut lo, mut hi) = (1.0f64, 64.0f64);
                        for _ in 0..48 {
                            let mid = 0.5 * (lo + hi);
                            if product(mid) < kappa_ref {
                                lo = mid;
                            } else {
                                hi = mid;
                            }
                        }
                        ev.discount = 0.5 * (lo + hi);
                    }
                }
            }
        }
        ev
    }

    /// Number of captured episodes.
    pub fn episodes(&self) -> usize {
        self.logits.len()
    }

    /// Digital (noise-free) accuracy over the captured episodes — the
    /// `σ → 0` limit of [`AnalyticEvaluator::predict`].
    pub fn digital_accuracy(&self) -> f64 {
        let hits = self
            .logits
            .iter()
            .filter(|(l, key)| argmax(l) == *key)
            .count();
        hits as f64 / self.logits.len().max(1) as f64
    }

    /// Predicts the analog eval accuracy of deploying `model` with `plan`
    /// on tiles configured as `cfg`, from per-layer analytic error moments
    /// propagated through the captured block statistics.
    pub fn predict(
        &self,
        model: &TransformerLm,
        plan: &RescalePlan,
        cfg: &TileConfig,
    ) -> AnalyticPrediction {
        self.predict_inner(model, plan, cfg).0
    }

    /// [`AnalyticEvaluator::predict`] plus the raw (pre-discount) fresh
    /// error power per stream interface — the curve lookup keys, exposed
    /// for the discount self-calibration.
    fn predict_inner(
        &self,
        model: &TransformerLm,
        plan: &RescalePlan,
        cfg: &TileConfig,
    ) -> (AnalyticPrediction, Vec<(f64, f64)>) {
        let mut layers = Vec::with_capacity(self.inputs.len());
        // Residual-stream error variance, channel-resolved. A scalar
        // variance with mean-square weight gains `ΣW²/d_out` overestimates
        // propagation by orders of magnitude on trained models: LayerNorm
        // gains concentrate noise onto a few channels that the next weight
        // matrix reads weakly (trained co-adaptation). The diagonal
        // per-channel profile composes through each weight exactly (for
        // channel-independent noise) and captures that structure.
        let d_model = model.blocks[0].ln1.gain.value.cols();
        let mut u = vec![0.0f64; d_model];
        // Signed systematic shift of the residual stream, per channel. The
        // deterministic part of each layer's error (quantization/clipping
        // bias, shared by every forward) propagates coherently — through
        // weights with sign cancellation, not in quadrature — and ends as
        // a fixed logit offset that flips argmaxes far more effectively
        // than zero-mean noise of the same power.
        let mut bshift = vec![0.0f64; d_model];
        // Clean-signal attenuation of the residual stream relative to the
        // clean captures: every noisy LayerNorm divides by an error-inflated
        // row std, shrinking the clean component of its output — and hence
        // the downstream logit margins — by `√(v̄/(a²v̄ + ē))`. Accuracy
        // collapse at high noise is driven as much by this margin shrinkage
        // as by the noise itself.
        let mut a = 1.0f64;
        // Fresh error power appearing at each downstream interface
        // (`(coherent+incoherent, incoherent)` per block exit) — the
        // lookup keys into the calibrated white-noise response curves.
        let mut deltas: Vec<(f64, f64)> = Vec::with_capacity(self.block_stats.len());
        // Per-channel stream sensitivity at the head: `g_f,c² · Σ_j W²_cj`.
        // The calibration curves were measured with *white* stream noise;
        // analog injections are γ²-shaped onto outlier channels that the
        // trained final LN and head read weakly, so their damage per unit
        // raw power is several-fold smaller. The alignment ratio of each
        // block's fresh profile against this sensitivity converts raw fresh
        // power into white-equivalent power before the curve lookup.
        let sens: Vec<f64> = model
            .final_ln
            .gain
            .value
            .row(0)
            .iter()
            .enumerate()
            .map(|(c, &g)| {
                let h: f64 = model
                    .head
                    .weight
                    .value
                    .row(c)
                    .iter()
                    .map(|&w| f64::from(w) * f64::from(w))
                    .sum();
                f64::from(g) * f64::from(g) * h
            })
            .collect();
        let sens_mean = mean_profile(&sens).max(1e-12);
        for (b, st) in self.block_stats.iter().enumerate() {
            let block = &model.blocks[b];
            let u_in_block = u.clone();
            let e_u_in = mean_profile(&u);
            let e_b_in = centered_power(&bshift);
            let inj = |kind: LinearKind,
                       this: &Self,
                       u_in: Option<&[f64]>|
             -> (LayerInjection, Vec<f64>, Vec<f64>, f64) {
                let id = LinearId::new(b, kind);
                let idx = b * 6 + kind_index(kind);
                let lm = layer_error_moments(
                    &model.linear(id).weight.value,
                    plan.smoothing_for(id),
                    &this.inputs[idx],
                    cfg,
                    u_in,
                );
                // Split the injection three ways: signal gain (clean
                // attenuation through range clipping), signed column bias
                // (coherent shift), incoherent residual power. With `u_in`
                // set the incoherent part already contains the input noise
                // carried through `w²` (censored at the DAC and ADC
                // bounds), so the caller uses it as the full output-noise
                // profile — no separate white transform.
                (
                    LayerInjection {
                        id,
                        power: lm.mse(),
                        bias_power: lm.bias_power,
                        var_power: lm.var_power,
                    },
                    lm.col_noise,
                    lm.col_mean,
                    lm.signal_gain,
                )
            };

            let e1 = mean_profile(&u) + centered_power(&bshift);
            let d1 = a * a * st.ln1_var + e1 + f64::from(LN_EPS);
            let g1 = block.ln1.gain.value.row(0);
            let u1 = ln_transfer_profile(&u, d1, g1);
            let b1 = ln_transfer_mean(&bshift, d1, g1);
            // Clean-signal attenuation through this (noisy) LayerNorm,
            // relative to the clean captures: the LN divides by the
            // inflated row std, shrinking the surviving clean margins by
            // the same factor the noise transfer saturates with.
            let a_attn = a * (st.ln1_var / d1).sqrt();
            let (jq, u_q, _mq, _gq) = inj(LinearKind::Q, self, Some(&u1));
            let (jk, u_k, _mk, _gk) = inj(LinearKind::K, self, Some(&u1));
            let (jv, u_v, mv, gv) = inj(LinearKind::V, self, Some(&u1));
            // A per-channel shift of V rides the row-stochastic attention
            // weights through unchanged (`Σ_j P_ij (v_j + b) = ctx_i + b`);
            // constant K-shifts cancel in softmax, Q-shift score effects
            // are second order next to the V/FFN paths and are dropped.
            let b_v = add_signed(scale_profile(mean_transform(&b1, &block.attn.wv.weight.value), gv), &mv);
            // Linearised softmax perturbation, saturated at the worst-case
            // total probability movement `Σ(Δp)² ≤ 2`; it re-injects the
            // value profile into the context.
            let score_noise =
                st.softmax_jac * (st.kappa_k * mean_profile(&u_q) + st.kappa_q * mean_profile(&u_k));
            let p_noise = 2.0 * score_noise / (2.0 + score_noise);
            // Clean-context retention under score noise, the complement of
            // the saturated probability movement: scrambled attention does
            // not merely add noise — it re-mixes V rows with the *wrong*
            // weights, replacing the episode-varying clean context. At
            // `score_noise ≫ 1` the context is a random V mixture and the
            // clean attention signal is gone even before V/Out inject a
            // single electron of device noise.
            let r_attn = 2.0 / (2.0 + score_noise);
            let ctx: Vec<f64> = u_v
                .iter()
                .zip(&st.msq_v)
                .map(|(&vv, &msq)| st.f_attn * vv + p_noise * msq)
                .collect();
            let (jo, attn, mo, go) = inj(LinearKind::Out, self, Some(&ctx));
            let attn_b = add_signed(scale_profile(mean_transform(&b_v, &block.attn.wo.weight.value), go), &mo);
            let u_x1 = add_profiles(u.clone(), &attn);
            let b_x1 = add_signed(bshift.clone(), &attn_b);
            // Residual + attenuated attention branch: power-weighted clean
            // attenuation (clean branch powers approximated as additive,
            // `v̄2 ≈ v̄1 + attn power`). The branch's clean signal is
            // further flattened by the V/Out range-clipping gains — the
            // attention mixing between them is linear in V, so the two
            // layer gains compose multiplicatively.
            let a_branch = a_attn * gv * go * r_attn;
            let a_x1 = ((a * a * st.ln1_var
                + a_branch * a_branch * (st.ln2_var - st.ln1_var).max(0.0))
                / st.ln2_var.max(1e-12))
            .sqrt()
            .min(1.0);
            let e2 = mean_profile(&u_x1) + centered_power(&b_x1);
            let d2 = a_x1 * a_x1 * st.ln2_var + e2 + f64::from(LN_EPS);
            let g2 = block.ln2.gain.value.row(0);
            let u2 = ln_transfer_profile(&u_x1, d2, g2);
            let b2 = ln_transfer_mean(&b_x1, d2, g2);
            let a_ffn = a_x1 * (st.ln2_var / d2).sqrt();
            let (jf1, u_pre, mf1, gf1) = inj(LinearKind::Fc1, self, Some(&u2));
            let b_pre = add_signed(scale_profile(mean_transform(&b2, &block.fc1.weight.value), gf1), &mf1);
            // ReLU gates the incoherent power by the activation probability,
            // but the coherent shift needs the full Gaussian rectification
            // law: zero-mean pre-activation noise rectifies into a positive
            // coherent shift (`E[relu(x+n)] > E[relu(x)]`), a variance→mean
            // conversion that dominates the systematic logit offset at high
            // injected FFN noise.
            let b_h: Vec<f64> = (0..b_pre.len())
                .map(|c| relu_mean_shift(st.act_mean[c], st.act_sq[c], b_pre[c], u_pre[c]))
                .collect();
            let u_h: Vec<f64> = u_pre
                .iter()
                .zip(&st.p_act)
                .map(|(&v, &p)| v * p)
                .collect();
            // Clean-signal transmission of the ReLU under pre-activation
            // noise: the channel output seen downstream is the smoothed
            // gate `m(x,σ) = E[relu(x+n)] = x·Φ(x/σ) + σ·φ(x/σ)`, whose
            // row-varying component is flatter than `relu(x)` — at
            // `σ ≫ s` the slope collapses toward `½·Cov(x,relu)/Var(relu)`
            // and part of the clean FFN signal is averaged away. Pooled
            // regression slope `ΣCov(m, relu)/ΣVar(relu)` over the clean
            // Gaussian channel models, the exact analogue of the per-layer
            // signal gain.
            let mut relu_cov = 0.0f64;
            let mut relu_var = 0.0f64;
            for (c, &u_c) in u_pre.iter().enumerate() {
                let mu = st.act_mean[c];
                let s2 = (st.act_sq[c] - mu * mu).max(1e-12);
                let s = s2.sqrt();
                let sigma = u_c.max(0.0).sqrt();
                if sigma < 1e-9 * s.max(1e-12) {
                    // Noise-free channel: the gate is the identity on the
                    // clean activation, slope 1 on its own variance.
                    let pa = normal_cdf(mu / s);
                    let ey = mu * pa + s * phi(mu / s);
                    let ey2 = (mu * mu + s2) * pa + mu * s * phi(mu / s);
                    let v = (ey2 - ey * ey).max(0.0);
                    relu_cov += v;
                    relu_var += v;
                    continue;
                }
                // Trapezoid over the clean pre-activation x ~ N(μ, s²).
                const PTS: usize = 33;
                let (mut w_sum, mut e_c, mut e_n, mut e_cc, mut e_cn) =
                    (0.0f64, 0.0f64, 0.0f64, 0.0f64, 0.0f64);
                for t in 0..PTS {
                    let z = -4.0 + 8.0 * t as f64 / (PTS - 1) as f64;
                    let wt = phi(z) * if t == 0 || t == PTS - 1 { 0.5 } else { 1.0 };
                    let x = mu + s * z;
                    let yc = x.max(0.0);
                    let yn = x * normal_cdf(x / sigma) + sigma * phi(x / sigma);
                    w_sum += wt;
                    e_c += wt * yc;
                    e_n += wt * yn;
                    e_cc += wt * yc * yc;
                    e_cn += wt * yc * yn;
                }
                e_c /= w_sum;
                e_n /= w_sum;
                e_cc /= w_sum;
                e_cn /= w_sum;
                relu_cov += e_cn - e_c * e_n;
                relu_var += (e_cc - e_c * e_c).max(0.0);
            }
            let g_relu = if relu_var > 1e-12 {
                (relu_cov / relu_var).clamp(0.0, 1.0)
            } else {
                1.0
            };
            let (jf2, f2_noise, mf2, gf2) = inj(LinearKind::Fc2, self, Some(&u_h));
            u = add_profiles(f2_noise, &u_x1);
            bshift = add_signed(
                add_signed(scale_profile(mean_transform(&b_h, &block.fc2.weight.value), gf2), &mf2),
                &b_x1,
            );
            // Residual + attenuated FFN branch, weighted by the clean power
            // each contributes to the next block's (or final) LN input.
            // Like the attention branch, the FFN clean signal is flattened
            // by both layers' range-clipping gains (ReLU passes the clean
            // component through where it is active).
            let f_branch = a_ffn * gf1 * g_relu * gf2;
            let v_next = self
                .block_stats
                .get(b + 1)
                .map(|s| s.ln1_var)
                .unwrap_or(self.final_ln_var);
            a = ((a_x1 * a_x1 * st.ln2_var + f_branch * f_branch * (v_next - st.ln2_var).max(0.0))
                / v_next.max(1e-12))
            .sqrt()
            .min(1.0);

            let du = (mean_profile(&u) - e_u_in).max(0.0);
            let db = (centered_power(&bshift) - e_b_in).max(0.0);
            let fresh: Vec<f64> = u
                .iter()
                .zip(&u_in_block)
                .map(|(&o, &i)| (o - i).max(0.0))
                .collect();
            let fresh_sum = fresh.iter().sum::<f64>();
            let rho = if fresh_sum > 1e-18 {
                fresh
                    .iter()
                    .zip(&sens)
                    .map(|(&f, &s)| f * s)
                    .sum::<f64>()
                    / fresh_sum
                    / sens_mean
            } else {
                1.0
            };
            deltas.push(((du + db) * rho, du * rho));

            layers.extend([jq, jk, jv, jo, jf1, jf2]);
        }
        // Final LayerNorm: signal and error are renormalised by the same
        // inflated row std `√(a²v̄_f + ē_f)`. Relative to the captured
        // clean logits, the surviving clean margins carry the net factor
        // `κ = a·√(v̄_f/(a²v̄_f + ē_f))` while the error lands with the
        // actual normalisation — a stream that is mostly error decays to
        // the chance floor through κ → 0, not through unbounded noise.
        let gf = model.final_ln.gain.value.row(0);
        let e_f = mean_profile(&u) + centered_power(&bshift);
        let d_f = a * a * self.final_ln_var + e_f + f64::from(LN_EPS);
        let kappa = a * (self.final_ln_var / d_f).sqrt();
        let u_f: Vec<f64> = u
            .iter()
            .zip(gf)
            .map(|(&v, &g)| f64::from(g) * f64::from(g) * v / d_f)
            .collect();
        let b_mean = mean_profile(&bshift);
        let b_f: Vec<f64> = bshift
            .iter()
            .zip(gf)
            .map(|(&v, &g)| f64::from(g) * (v - b_mean) / d_f.sqrt())
            .collect();
        let logit_profile = white_transform(&u_f, &model.head.weight.value);
        let logit_shift = mean_transform(&b_f, &model.head.weight.value);
        let var = e_f;
        // Calibrated stream-noise response: each interface's fresh error
        // power is scored against the measured white-noise curves of the
        // digital network downstream of that interface. The per-channel
        // analytic profile keeps the cross-plan structure (it knows which
        // channels the noise actually lands on) but misses cross-channel
        // covariance, so the calibrated response sets the floor: per class
        // the larger of the two variances wins, and the margin attenuation
        // is the more pessimistic of the analytic `κ` and the measured
        // product.
        let mut kappa_cal = 1.0f64;
        let mut sigma2 = vec![0.0f64; logit_profile.len()];
        for (resp, &(dk, ds)) in self.interfaces.iter().zip(&deltas) {
            kappa_cal *= resp.kappa_at(dk / self.discount);
            resp.resid_at(ds / self.discount, &mut sigma2);
        }
        let kappa = kappa.min(kappa_cal);
        for (s, &p) in sigma2.iter_mut().zip(&logit_profile) {
            *s = s.max(p);
        }
        let sigmas: Vec<f64> = sigma2.iter().map(|v| v.max(0.0).sqrt()).collect();
        let acc = self
            .logits
            .iter()
            .map(|(l, key)| {
                let shifted: Vec<f64> = l
                    .iter()
                    .zip(&logit_shift)
                    .map(|(&c, &d)| kappa * f64::from(c) + d)
                    .collect();
                correct_probability(&shifted, *key, &sigmas)
            })
            .sum::<f64>()
            / self.logits.len().max(1) as f64;
        // Reported per-class logit error power: coherent shift² plus
        // incoherent variance — comparable to an empirical per-class MSE.
        let logit_var: Vec<f64> = sigma2
            .iter()
            .zip(&logit_shift)
            .map(|(&v, &s)| v + s * s)
            .collect();
        let sigma = mean_profile(&logit_var).max(0.0).sqrt();
        (
            AnalyticPrediction {
                sigma_logit: sigma,
                logit_var,
                logit_shift,
                accuracy: acc,
                residual_var: var,
                layers,
            },
            deltas,
        )
    }
}

fn kind_index(kind: LinearKind) -> usize {
    match kind {
        LinearKind::Q => 0,
        LinearKind::K => 1,
        LinearKind::V => 2,
        LinearKind::Out => 3,
        LinearKind::Fc1 => 4,
        LinearKind::Fc2 => 5,
    }
}

fn argmax(l: &[f32]) -> usize {
    let mut best = 0;
    for (i, &v) in l.iter().enumerate() {
        if v > l[best] {
            best = i;
        }
    }
    best
}

fn argmax_f64(l: &[f64]) -> usize {
    let mut best = 0;
    for (i, &v) in l.iter().enumerate() {
        if v > l[best] {
            best = i;
        }
    }
    best
}

/// `P(argmax(l + diag(σ)·ξ) = key)` for independent per-class Gaussian
/// logit noise, by quadrature over the key logit's noise realisation:
/// `∫ φ(z) Π_{j≠key} Φ((l_key − l_j + σ_key·z)/σ_j) dz`.
///
/// Per-class sigmas matter: analog logit error is concentrated on the
/// classes whose head rows read corrupted channels, and a few large σ_j
/// flip the argmax far more often than the same power spread iid would.
/// Classes with σ_j ≈ 0 contribute a hard step on the shifted margin.
fn correct_probability(logits: &[f64], key: usize, sigmas: &[f64]) -> f64 {
    if sigmas.iter().all(|&s| s < 1e-9) {
        return if argmax_f64(logits) == key { 1.0 } else { 0.0 };
    }
    let lk = logits[key];
    let sk = sigmas.get(key).copied().unwrap_or(0.0);
    let n = 161;
    let (lo, hi) = (-8.0f64, 8.0f64);
    let step = (hi - lo) / (n - 1) as f64;
    let mut acc = 0.0f64;
    for i in 0..n {
        let z = lo + step * i as f64;
        let mut p = phi(z);
        for (j, &l) in logits.iter().enumerate() {
            if j == key {
                continue;
            }
            let margin = lk - l + sk * z;
            let sj = sigmas.get(j).copied().unwrap_or(0.0);
            if sj < 1e-12 {
                if margin <= 0.0 {
                    p = 0.0;
                }
            } else if margin < 8.0 * sj {
                // Φ(m/σ) ≈ 1 beyond 8σ — skipping the erf there keeps the
                // design-space sweep's dominant inner loop cheap on the
                // (typical) near-clean configurations.
                p *= normal_cdf(margin / sj);
            }
            if p == 0.0 {
                break;
            }
        }
        let w = if i == 0 || i == n - 1 { 0.5 } else { 1.0 };
        acc += w * p;
    }
    acc * step
}

/// `mean_rows[ pop_var(x_row) ]` — the arithmetic-mean clean row variance
/// seen by a LayerNorm on input rows `x`. The arithmetic mean is the right
/// pooling because injected error power scales with row signal power
/// (α-normalisation ties the error magnitude to the row maximum), so the
/// noise *fraction* is roughly uniform across rows and degenerate
/// small-variance rows must not dominate as they would in a harmonic mean.
fn ln_mean_var(x: &Matrix) -> f64 {
    let d = x.cols();
    let mut acc = 0.0f64;
    for r in 0..x.rows() {
        let row = x.row(r);
        let mean = row.iter().map(|&v| f64::from(v)).sum::<f64>() / d as f64;
        let var = row
            .iter()
            .map(|&v| {
                let c = f64::from(v) - mean;
                c * c
            })
            .sum::<f64>()
            / d as f64;
        acc += var;
    }
    acc / x.rows().max(1) as f64
}


/// Saturating channel-resolved LayerNorm noise transfer
/// `u'_c = g_c²·u_c/denom` with `denom = a²·v̄ + ē + ε` computed at the
/// call site (`a` the clean-signal attenuation, `v̄` the mean clean row
/// variance, `ē` the mean total error power — incoherent noise plus the
/// centered power of the coherent shift, both of which inflate the noisy
/// row std LayerNorm actually divides by). The total output noise can
/// never exceed the LN's fixed output power `mean(g²)`; the matching
/// clean-margin shrinkage `a' = a·√(v̄/denom)` is tracked by the caller.
fn ln_transfer_profile(u: &[f64], denom: f64, gain: &[f32]) -> Vec<f64> {
    u.iter()
        .zip(gain)
        .map(|(&v, &g)| f64::from(g) * f64::from(g) * v / denom)
        .collect()
}

/// LayerNorm transfer of a coherent per-channel mean shift: the row-mean
/// subtraction removes the shift's average, each channel is scaled by its
/// gain, and the row normalisation divides by the same inflated std the
/// variance transfer saturates with:
/// `b'_c = g_c·(b_c − b̄)/√denom`.
fn ln_transfer_mean(b: &[f64], denom: f64, gain: &[f32]) -> Vec<f64> {
    let b_mean = mean_profile(b);
    let denom = denom.sqrt();
    b.iter()
        .zip(gain)
        .map(|(&v, &g)| f64::from(g) * (v - b_mean) / denom)
        .collect()
}

/// Signed linear transform of a coherent mean shift: `b'_j = Σ_c b_c·W_cj`
/// — exact, with the sign cancellation a power-domain transform misses.
fn mean_transform(b: &[f64], w: &Matrix) -> Vec<f64> {
    let mut out = vec![0.0f64; w.cols()];
    for (c, &bc) in b.iter().enumerate() {
        if bc == 0.0 {
            continue;
        }
        for (o, &wv) in out.iter_mut().zip(w.row(c)) {
            *o += bc * f64::from(wv);
        }
    }
    out
}

fn add_signed(mut a: Vec<f64>, b: &[f64]) -> Vec<f64> {
    for (x, &y) in a.iter_mut().zip(b) {
        *x += y;
    }
    a
}

/// Scales a signed profile by a layer's signal-transmission gain — the
/// coherent input shift rides the same flattened transfer as the clean
/// row-varying signal.
fn scale_profile(mut a: Vec<f64>, g: f64) -> Vec<f64> {
    for x in a.iter_mut() {
        *x *= g;
    }
    a
}

/// Mean and variance of `clip(Z, −bound, bound)` for `Z ~ N(μ, σ²)` —
/// the censored-Gaussian moments of a converter with symmetric range.
/// Clipping compresses out-of-range excursions coherently (the mean moves
/// toward the bound) and strictly reduces the transmitted variance.
fn censored_moments(mu: f64, sigma: f64, bound: f64) -> (f64, f64) {
    if sigma <= 0.0 {
        return (mu.clamp(-bound, bound), 0.0);
    }
    let a = (-bound - mu) / sigma;
    let b = (bound - mu) / sigma;
    let (pa, pb) = (normal_cdf(a), normal_cdf(b));
    let (fa, fb) = (phi(a), phi(b));
    let mid = pb - pa;
    let mean = -bound * pa + bound * (1.0 - pb) + mu * mid - sigma * (fb - fa);
    let e2_mid = mu * mu * mid
        + 2.0 * mu * sigma * (fa - fb)
        + sigma * sigma * (mid - (b * fb - a * fa));
    let e2 = bound * bound * (pa + 1.0 - pb) + e2_mid;
    (mean, (e2 - mean * mean).max(0.0))
}

/// Coherent ReLU output shift under the Gaussian channel model. With the
/// clean pre-activation `x ~ N(μ, s²)` (per-channel calibration moments)
/// and an added error of coherent shift `δ` plus incoherent variance `σ²`,
/// the noisy output mean is `E[relu(y)]` for `y ~ N(μ+δ, s²+σ²)`, so with
/// `m(μ, t) = μ·Φ(μ/t) + t·φ(μ/t)` the shift is `m(μ+δ, t) − m(μ, s)`.
/// For `σ → 0` and small `δ` this reduces to the `Φ(μ/s)·δ ≈ p_act·δ`
/// pass-through; at large σ the rectified noise itself becomes a positive
/// coherent shift.
fn relu_mean_shift(mean: f64, sq: f64, delta: f64, noise_var: f64) -> f64 {
    let s = (sq - mean * mean).max(1e-12).sqrt();
    let t = (s * s + noise_var.max(0.0)).sqrt();
    let m = |mu: f64, sd: f64| mu * normal_cdf(mu / sd) + sd * phi(mu / sd);
    m(mean + delta, t) - m(mean, s)
}

/// Mean squared deviation of a shift vector from its own mean — the row
/// variance a constant-across-rows per-channel shift adds to a LayerNorm
/// input.
fn centered_power(b: &[f64]) -> f64 {
    let m = mean_profile(b);
    b.iter().map(|&v| (v - m) * (v - m)).sum::<f64>() / b.len().max(1) as f64
}

/// Channel-resolved white-noise gain of a digital weight matrix:
/// `u'_j = Σ_c u_c·W_cj²` — exact for channel-independent input noise, and
/// the step that preserves the gain/weight co-adaptation a scalar
/// mean-square gain destroys.
fn white_transform(u: &[f64], w: &Matrix) -> Vec<f64> {
    let mut out = vec![0.0f64; w.cols()];
    for (c, &uc) in u.iter().enumerate() {
        if uc == 0.0 {
            continue;
        }
        for (o, &wv) in out.iter_mut().zip(w.row(c)) {
            *o += uc * f64::from(wv) * f64::from(wv);
        }
    }
    out
}

fn add_profiles(mut a: Vec<f64>, b: &[f64]) -> Vec<f64> {
    for (x, &y) in a.iter_mut().zip(b) {
        *x += y;
    }
    a
}

fn mean_profile(u: &[f64]) -> f64 {
    u.iter().sum::<f64>() / u.len().max(1) as f64
}

fn capture_rows(store: &mut Vec<Vec<f32>>, m: &Matrix, cap: usize) {
    for r in 0..m.rows() {
        if store.len() >= cap {
            return;
        }
        store.push(m.row(r).to_vec());
    }
}

fn rows_to_matrix(rows: &[Vec<f32>]) -> Matrix {
    let refs: Vec<&[f32]> = rows.iter().map(|r| r.as_slice()).collect();
    Matrix::from_rows(&refs)
}

/// Accumulates softmax/query/key/value statistics of one episode's
/// attention (replicates the causal `attend` math for measurement only —
/// the forward itself runs through the model's own kernels).
fn accumulate_attn_stats(st: &mut BlockStats, q: &Matrix, k: &Matrix, heads: usize) {
    let t = q.rows();
    let d = q.cols();
    let hd = d / heads;
    let scale = 1.0 / (hd as f32).sqrt();
    let (mut f_attn, mut jac, mut kq, mut kk) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    let mut rows_n = 0usize;
    for h in 0..heads {
        let qh = q.submatrix(0, t, h * hd, (h + 1) * hd);
        let kh = k.submatrix(0, t, h * hd, (h + 1) * hd);
        let mut scores = qh.matmul(&kh.transpose());
        scores.scale_assign(scale);
        for i in 0..t {
            for j in (i + 1)..t {
                scores[(i, j)] = f32::NEG_INFINITY;
            }
        }
        let p = softmax_rows(&scores);
        for i in 0..t {
            let row = p.row(i);
            let s2: f64 = row.iter().map(|&x| f64::from(x) * f64::from(x)).sum();
            let s3: f64 = row.iter().map(|&x| f64::from(x).powi(3)).sum();
            f_attn += s2;
            jac += s2 - 2.0 * s3 + s2 * s2;
            kq += qh.row(i).iter().map(|&x| f64::from(x) * f64::from(x)).sum::<f64>()
                / hd as f64;
            kk += kh.row(i).iter().map(|&x| f64::from(x) * f64::from(x)).sum::<f64>()
                / hd as f64;
            rows_n += 1;
        }
    }
    let n = rows_n.max(1) as f64;
    st.f_attn += f_attn / n;
    st.softmax_jac += jac / n;
    st.kappa_q += kq / n;
    st.kappa_k += kk / n;
}

#[cfg(test)]
mod tests {
    use super::*;
    use nora_cim::AnalogLinear;
    use nora_nn::ModelConfig;
    use nora_tensor::rng::Rng;

    fn tiny_model(seed: u64) -> TransformerLm {
        let mut rng = Rng::seed_from(seed);
        TransformerLm::new(ModelConfig::tiny_for_tests(), &mut rng)
    }

    fn episodes(model: &TransformerLm, n: usize, seed: u64) -> Vec<Episode> {
        let vocab = model.config().vocab;
        let mut rng = Rng::seed_from(seed);
        (0..n)
            .map(|_| {
                let tokens: Vec<usize> =
                    (0..8).map(|_| (rng.next_u64() as usize) % vocab).collect();
                let key = *tokens.last().unwrap();
                Episode { tokens, key }
            })
            .collect()
    }

    /// The instrumented capture forward must reproduce the model's own
    /// logits bit-for-bit — it runs through the same kernels.
    #[test]
    fn instrumented_forward_matches_model_forward() {
        let model = tiny_model(3);
        let eps = episodes(&model, 4, 9);
        let ev = AnalyticEvaluator::new(&model, &eps, 64);
        for (ep, (logits, key)) in eps.iter().zip(&ev.logits) {
            let ctx = &ep.tokens[..ep.tokens.len() - 1];
            let reference = model.forward(ctx);
            let last = reference.row(reference.rows() - 1);
            assert_eq!(*key, ep.key);
            assert_eq!(logits.as_slice(), last, "captured logits diverge");
        }
    }

    /// Pure-quantization configurations are fully deterministic: the
    /// analytic mean must equal the simulated output exactly and the
    /// variance must vanish.
    #[test]
    fn pure_quantization_moments_are_exact() {
        let mut rng = Rng::seed_from(0x51);
        let w = Matrix::random_normal(40, 24, 0.0, 0.2, &mut rng);
        let x = Matrix::random_normal(6, 40, 0.0, 1.0, &mut rng);
        let mut cfg = TileConfig::digital_quant(6);
        cfg = cfg.with_tile_size(16, 16); // force a multi-block grid
        let lm = layer_error_moments(&w, None, &x, &cfg, None);
        let mut sim = AnalogLinear::new(w.clone(), None, cfg, 0xfeed);
        let y = sim.forward(&x);
        assert!(lm.var_power == 0.0, "deterministic config has no variance");
        let max_dev = lm
            .mean
            .as_slice()
            .iter()
            .zip(y.as_slice())
            .map(|(&a, &b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(max_dev < 1e-5, "analytic mean deviates from simulator: {max_dev}");
        assert!(lm.mse() > 0.0, "quantization must cost something");
    }

    /// Smoothing must be honoured: a non-trivial vector changes the
    /// moments, and dividing it out keeps the ideal product fixed.
    #[test]
    fn smoothing_vector_changes_the_grid() {
        let mut rng = Rng::seed_from(0x52);
        let w = Matrix::random_normal(32, 16, 0.0, 0.2, &mut rng);
        let x = Matrix::random_normal(4, 32, 0.0, 1.0, &mut rng);
        let cfg = TileConfig::digital_quant(5);
        let s: Vec<f32> = (0..32).map(|i| 0.5 + 0.1 * i as f32).collect();
        let plain = layer_error_moments(&w, None, &x, &cfg, None);
        let smoothed = layer_error_moments(&w, Some(&s), &x, &cfg, None);
        assert!(
            (plain.mse() - smoothed.mse()).abs() > 0.0,
            "smoothing should move the quantization error"
        );
    }

    /// The ideal configuration predicts exactly the digital accuracy, and
    /// infinite noise collapses to the 1/vocab chance floor.
    #[test]
    fn prediction_limits_are_correct() {
        let model = tiny_model(7);
        let eps = episodes(&model, 6, 11);
        let ev = AnalyticEvaluator::new(&model, &eps, 64);
        let plan = RescalePlan::naive();
        let pred = ev.predict(&model, &plan, &TileConfig::ideal());
        assert!(pred.sigma_logit < 1e-6, "ideal tiles inject no error");
        assert!(
            (pred.accuracy - ev.digital_accuracy()).abs() < 1e-6,
            "ideal prediction {} vs digital {}",
            pred.accuracy,
            ev.digital_accuracy()
        );

        // Chance floor via the quadrature directly.
        let logits = vec![0.3f64, -0.2, 0.9, 0.1];
        let huge = vec![1e6f64; 4];
        let p = correct_probability(&logits, 1, &huge);
        assert!((p - 0.25).abs() < 0.01, "σ→∞ must give 1/vocab, got {p}");
        // And the noise-free limit is the argmax indicator.
        let zero = vec![0.0f64; 4];
        assert_eq!(correct_probability(&logits, 2, &zero), 1.0);
        assert_eq!(correct_probability(&logits, 1, &zero), 0.0);
        // Noise concentrated on a single losing class still flips the
        // argmax about half the time once its σ dwarfs the margin.
        let lopsided = vec![0.0f64, 1e6, 0.0, 0.0];
        let p1 = correct_probability(&logits, 2, &lopsided);
        assert!(
            (p1 - 0.5).abs() < 0.01,
            "one huge σ on a loser must cost half the wins, got {p1}"
        );
    }

    /// Noisier tiles must predict lower accuracy / larger logit σ
    /// (monotonicity sanity of the propagation chain).
    #[test]
    fn noise_monotonically_degrades_the_prediction() {
        let model = tiny_model(5);
        let eps = episodes(&model, 5, 13);
        let ev = AnalyticEvaluator::new(&model, &eps, 48);
        let plan = RescalePlan::naive();
        let mut quiet = TileConfig::ideal();
        quiet.out_noise = 0.01;
        let mut loud = quiet.clone();
        loud.out_noise = 0.2;
        let pq = ev.predict(&model, &plan, &quiet);
        let pl = ev.predict(&model, &plan, &loud);
        assert!(pq.sigma_logit < pl.sigma_logit);
        // An untrained model sits near the chance floor, so accuracy is
        // not monotone in σ — but both predictions must be probabilities
        // and every layer must inject a strictly positive power.
        assert!((0.0..=1.0).contains(&pq.accuracy) && (0.0..=1.0).contains(&pl.accuracy));
        assert!(pl.layers.iter().all(|l| l.power > 0.0));
    }

    /// Sparse-aware costing: pruned (all-zero) rows stop paying the DAC
    /// term, dense inputs keep the exact unpruned estimate, and bit-serial
    /// planes multiply the conversion rounds.
    #[test]
    fn pruned_rows_cost_less_than_dense() {
        let mut rng = Rng::seed_from(11);
        let dense = Matrix::random_normal(64, 48, 0.0, 1.0, &mut rng);
        let mut pruned = dense.clone();
        for i in (0..pruned.rows()).step_by(2) {
            for v in pruned.row_mut(i) {
                *v = 0.0;
            }
        }
        let cfg = TileConfig::paper_default().with_tile_size(32, 32);
        let energy = nora_cim::EnergyModel::default();
        let area = nora_cim::AreaModel::default();
        let dense_cost = layer_decode_cost(&dense, None, &cfg, &energy, &area);
        let pruned_cost = layer_decode_cost(&pruned, None, &cfg, &energy, &area);
        assert!(
            pruned_cost.energy_pj < dense_cost.energy_pj,
            "pruned {} !< dense {}",
            pruned_cost.energy_pj,
            dense_cost.energy_pj
        );
        // Tile occupancy and the conversion-round critical path are
        // unchanged — only per-round charges shrink.
        assert_eq!(pruned_cost.area_um2, dense_cost.area_um2);
        assert_eq!(pruned_cost.latency_ns, dense_cost.latency_ns);

        // Bit-serial input encoding charges one full chain per wordline
        // plane (bits − 1 planes).
        let mut bs = cfg.clone();
        bs.input_encoding = nora_cim::InputEncoding::BitSerial { bits: 8 };
        let bs_cost = layer_decode_cost(&dense, None, &bs, &energy, &area);
        assert!(bs_cost.energy_pj > dense_cost.energy_pj);
        let ratio = bs_cost.latency_ns / dense_cost.latency_ns;
        assert!((ratio - 7.0).abs() < 1e-9, "plane latency ratio {ratio}");
    }
}
