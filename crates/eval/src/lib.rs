//! Evaluation harness for the NORA paper's experiments.
//!
//! This crate turns the substrates (`nora-tensor` … `nora-core`) into the
//! paper's evaluation section:
//!
//! * [`analytic`] — closed-form per-layer noise/quantization-error
//!   propagation: predicts analog eval accuracy and per-layer MSE without
//!   tile forwards (the fast evaluator behind the `design_space` sweeps).
//! * [`noise_level`] — reproduces Fig. 3's x-axis normalisation: binary-search
//!   the severity of each non-ideality until it causes a target MSE on a
//!   reference GEMV feature map.
//! * [`tasks`] — Lambada-style last-token accuracy for digital and analog
//!   deployments.
//! * [`runner`] — one driver per table/figure: sensitivity sweeps (Fig. 3),
//!   overall accuracy (Fig. 5a, Table III), per-noise mitigation (Fig. 5b/c),
//!   distribution diagnostics (Fig. 4, Fig. 6a/b), rescale factors (Fig. 6c),
//!   and the drift study (§VII).
//! * [`report`] — plain-text table rendering shared by the `nora-bench`
//!   binaries and `EXPERIMENTS.md`.
//! * [`serving`] — batched multi-request serving workloads over
//!   [`nora_serve::GenerationEngine`]: consistency against solo decoding
//!   and aggregate throughput accounting.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analytic;
pub mod noise_level;
pub mod report;
pub mod runner;
pub mod serving;
pub mod sweep;
pub mod tasks;
