//! Batched multi-request serving workloads.
//!
//! The serving engine's correctness story is *consistency*: continuous
//! batching, slot reuse, and sliding-window eviction must not change any
//! request's tokens relative to decoding it alone. This module builds
//! corpus-derived workloads, serves them through a
//! [`nora_serve::GenerationEngine`], and scores exactly that property,
//! alongside the aggregate throughput numbers the `serving_throughput`
//! bench reports.

use nora_nn::corpus::Corpus;
use nora_nn::deploy::AnalogTransformerLm;
use nora_nn::generate::{generate_digital_cached, Sampling};
use nora_nn::TransformerLm;
use nora_serve::{
    AnalogBackend, AnalogKeying, Backend, DigitalBackend, EngineConfig, GenRequest, GenResult,
    GenerationEngine,
};
use nora_tensor::rng::Rng;

/// A reproducible batch of generation requests.
#[derive(Debug, Clone)]
pub struct ServingWorkload {
    /// The requests, in submission order.
    pub requests: Vec<GenRequest>,
}

impl ServingWorkload {
    /// Derives `n` requests from corpus episodes: each takes the first
    /// `prompt_len` episode tokens as its prompt and asks for `new_tokens`
    /// continuation tokens; request `i` samples with seed `i`.
    ///
    /// # Panics
    ///
    /// Panics if `prompt_len` is zero or exceeds the corpus episode length.
    pub fn from_corpus(
        corpus: &mut Corpus,
        n: usize,
        prompt_len: usize,
        new_tokens: usize,
        sampling: Sampling,
    ) -> Self {
        assert!(prompt_len >= 1, "prompt_len must be at least 1");
        let requests = (0..n)
            .map(|i| {
                let tokens = corpus.episode().tokens;
                assert!(prompt_len <= tokens.len(), "prompt_len beyond episode");
                GenRequest::new(tokens[..prompt_len].to_vec(), new_tokens)
                    .with_sampling(sampling)
                    .with_seed(i as u64)
            })
            .collect();
        Self { requests }
    }

    /// Derives `n` requests mixing tenants, priorities, deadlines, and
    /// generation lengths — the admission-frontend stress shape used by the
    /// `serve_analog_mixed_*` benches. Request `i` belongs to tenant
    /// `i % tenants`, asks for `lengths[i % lengths.len()]` tokens at
    /// priority `i % 3`, carries a deadline hint on every fifth request,
    /// and samples with seed `i`. Fully deterministic: the same corpus
    /// state and arguments always build the same workload.
    ///
    /// # Panics
    ///
    /// Panics if `prompt_len` or `tenants` is zero, `lengths` is empty, or
    /// `prompt_len` exceeds the corpus episode length.
    pub fn mixed_from_corpus(
        corpus: &mut Corpus,
        n: usize,
        prompt_len: usize,
        lengths: &[usize],
        tenants: u32,
        sampling: Sampling,
    ) -> Self {
        assert!(prompt_len >= 1, "prompt_len must be at least 1");
        assert!(tenants >= 1, "tenants must be at least 1");
        assert!(!lengths.is_empty(), "lengths must be non-empty");
        let requests = (0..n)
            .map(|i| {
                let tokens = corpus.episode().tokens;
                assert!(prompt_len <= tokens.len(), "prompt_len beyond episode");
                let mut request = GenRequest::new(
                    tokens[..prompt_len].to_vec(),
                    lengths[i % lengths.len()],
                )
                .with_sampling(sampling)
                .with_seed(i as u64)
                .with_tenant(i as u32 % tenants)
                .with_priority((i % 3) as u8);
                if i % 5 == 0 {
                    request = request.with_deadline(i as u64);
                }
                request
            })
            .collect();
        Self { requests }
    }
}

/// Outcome of serving one workload.
#[derive(Debug, Clone, Copy)]
pub struct ServingSummary {
    /// Completed requests.
    pub requests: u64,
    /// Tokens generated across all requests.
    pub generated_tokens: u64,
    /// Model decode steps spent (prefill + decode + window rebase).
    pub decode_steps: u64,
    /// Requests whose engine output differed from its solo reference run
    /// (0 for a correct engine).
    pub mismatches: usize,
    /// Aggregate generated tokens per second of engine busy time.
    pub tokens_per_sec: f64,
}

/// Serves `workload` through a fresh engine over `backend` and returns the
/// per-request results in submission order.
pub fn serve_workload<B: Backend>(
    backend: B,
    workload: &ServingWorkload,
    max_batch: usize,
) -> (Vec<GenResult>, ServingSummary) {
    let mut scratch = nora_obs::Metrics::new();
    serve_workload_recorded(backend, workload, max_batch, &mut scratch)
}

/// Like [`serve_workload`], additionally merging the engine's operational
/// metrics (`serve.*` counters and latency histograms) into `metrics` after
/// the run. The generated tokens are bit-identical to [`serve_workload`]:
/// the engine accumulates the same metrics either way, this entry point
/// merely hands them to the caller instead of dropping them.
pub fn serve_workload_recorded<B: Backend>(
    backend: B,
    workload: &ServingWorkload,
    max_batch: usize,
    metrics: &mut nora_obs::Metrics,
) -> (Vec<GenResult>, ServingSummary) {
    serve_workload_configured(
        backend,
        workload,
        EngineConfig::with_max_batch(max_batch),
        metrics,
    )
}

/// Like [`serve_workload_recorded`], but with a caller-supplied
/// [`EngineConfig`] — the entry point for maintained (drift-aware) serving
/// runs, which need [`nora_serve::MaintenanceConfig`] attached.
pub fn serve_workload_configured<B: Backend>(
    backend: B,
    workload: &ServingWorkload,
    config: EngineConfig,
    metrics: &mut nora_obs::Metrics,
) -> (Vec<GenResult>, ServingSummary) {
    let mut engine = GenerationEngine::new(backend, config);
    for request in &workload.requests {
        engine.submit(request.clone());
    }
    let results = engine.run_to_completion();
    let report = engine.report();
    let summary = ServingSummary {
        requests: report.requests,
        generated_tokens: report.generated_tokens,
        decode_steps: report.decode_steps,
        mismatches: 0,
        tokens_per_sec: report.tokens_per_sec(),
    };
    metrics.merge(engine.metrics());
    (results, summary)
}

/// Serves `workload` on the FP32 digital model and verifies every request
/// against its solo [`generate_digital_cached`] run (same sampling, same
/// seed). A correct engine reports `mismatches == 0` at any batch width and
/// any `NORA_THREADS`.
pub fn digital_serving_consistency(
    model: &TransformerLm,
    workload: &ServingWorkload,
    max_batch: usize,
) -> ServingSummary {
    let (results, mut summary) = serve_workload(DigitalBackend::new(model), workload, max_batch);
    summary.mismatches = results
        .iter()
        .zip(&workload.requests)
        .filter(|(result, request)| {
            let solo = generate_digital_cached(
                model,
                &request.prompt,
                request.max_new_tokens,
                request.sampling,
                &mut Rng::seed_from(request.seed),
            );
            result.tokens != solo
        })
        .count();
    summary
}

/// Serves `workload` on the analog deployment with counter-keyed noise
/// streams and verifies every request against its own solo run (batch of
/// one) on the same deployment. Under the keyed contract each request's
/// noise is a pure function of its own identity, so batching must not
/// change a single bit — `mismatches == 0` at any batch width and any
/// `NORA_THREADS`.
pub fn analog_serving_consistency(
    analog: &mut AnalogTransformerLm,
    workload: &ServingWorkload,
    max_batch: usize,
) -> ServingSummary {
    let (batched, mut summary) = serve_workload(
        AnalogBackend::with_keying(analog, AnalogKeying::Keyed),
        workload,
        max_batch,
    );
    summary.mismatches = batched
        .iter()
        .zip(&workload.requests)
        .filter(|(result, request)| {
            let solo_workload = ServingWorkload {
                requests: vec![(*request).clone()],
            };
            let (solo, _) = serve_workload(
                AnalogBackend::with_keying(analog, AnalogKeying::Keyed),
                &solo_workload,
                1,
            );
            result.tokens != solo[0].tokens
        })
        .count();
    summary
}

#[cfg(test)]
mod tests {
    use super::*;
    use nora_nn::corpus::CorpusConfig;
    use nora_nn::ModelConfig;

    #[test]
    fn corpus_workload_serves_consistently() {
        let model = TransformerLm::new(ModelConfig::tiny_for_tests(), &mut Rng::seed_from(2));
        let mut corpus = Corpus::new(CorpusConfig::new(16, 16, 5));
        let workload = ServingWorkload::from_corpus(
            &mut corpus,
            9,
            4,
            20, // slides past max_seq 16
            Sampling::Temperature(1.2),
        );
        let summary = digital_serving_consistency(&model, &workload, 4);
        assert_eq!(summary.requests, 9);
        assert_eq!(summary.generated_tokens, 9 * 20);
        assert_eq!(summary.mismatches, 0);
        assert!(summary.decode_steps >= summary.generated_tokens);
    }
}
