//! §VII limitation study: NORA under PCM conductance drift.
//!
//! The paper's limitations section reports that after one hour of drift the
//! method "becomes less significant in some models" and that simple
//! compensation exists. This driver reproduces that: it deploys under the
//! Table II configuration, lets the conductances drift for a range of
//! times, and measures accuracy with and without global drift compensation.

use crate::report::{pct, Table};
use crate::runner::PreparedModel;
use crate::tasks::analog_accuracy;
use nora_cim::{DriftCompensation, TileConfig};
use nora_core::RescalePlan;

/// Configuration of the drift study.
#[derive(Debug, Clone)]
pub struct DriftConfig {
    /// Drift times in seconds (default: fresh read, 1 min, 10 min, 1 h).
    pub times: Vec<f64>,
    /// Tile configuration (default: Table II).
    pub tile: TileConfig,
    /// Deployment seed.
    pub seed: u64,
}

impl Default for DriftConfig {
    fn default() -> Self {
        Self {
            times: vec![20.0, 60.0, 600.0, 3600.0],
            tile: TileConfig::paper_default(),
            seed: 0xd41f,
        }
    }
}

/// One (model, time, plan, compensation) measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftRow {
    /// Model name.
    pub model: String,
    /// Seconds since programming.
    pub t_seconds: f64,
    /// `"naive"` or `"nora"`.
    pub plan: &'static str,
    /// Whether global drift compensation was applied.
    pub compensated: bool,
    /// Accuracy after drift.
    pub accuracy: f64,
    /// Digital baseline.
    pub digital: f64,
}

impl DriftRow {
    /// Renders rows as the drift-study table.
    pub fn table(rows: &[DriftRow]) -> Table {
        let mut t = Table::new(&["model", "t_sec", "plan", "comp", "acc%", "loss_pp"])
            .with_title("§VII — accuracy under PCM conductance drift");
        for r in rows {
            t.row_owned(vec![
                r.model.clone(),
                format!("{:.0}", r.t_seconds),
                r.plan.to_string(),
                if r.compensated { "yes" } else { "no" }.to_string(),
                pct(r.accuracy),
                format!("{:+.1}", 100.0 * (r.digital - r.accuracy)),
            ]);
        }
        t
    }
}

/// Runs the drift study on every prepared model.
///
/// The expensive part of a grid point is *programming* the deployment, and
/// programming does not depend on the drift time or compensation mode — so
/// each (model, plan) pair is deployed **once** as a checkpoint of
/// programmed conductances, and every (compensation, time) point restores
/// the checkpoint (a clone: tiles retain their device-accurate programmed
/// state) and re-reads at its drift time. This is the same
/// checkpoint/restore mechanism the online serving path uses, and it is
/// bit-identical to redeploying per point from the same seed: deployment is
/// a pure function of (model, plan, tile config, seed), and drift re-reads
/// fork off the tile's own RNG.
///
/// The grid still runs through [`crate::sweep::parallel_sweep`] with the
/// legacy nesting order preserved in the task list — rows are bit-identical
/// to a serial run.
pub fn drift_study(prepared: &[PreparedModel], cfg: &DriftConfig) -> Vec<DriftRow> {
    let mut checkpoints = Vec::new();
    for p in prepared {
        for (plan_name, plan) in [
            ("naive", RescalePlan::naive()),
            ("nora", p.nora_plan.clone()),
        ] {
            let analog = plan.deploy(&p.zoo.model, cfg.tile.clone(), cfg.seed ^ 0x33);
            checkpoints.push((p, plan_name, analog));
        }
    }
    let mut tasks = Vec::new();
    for (p, plan_name, checkpoint) in &checkpoints {
        for &comp in &[false, true] {
            for &t in &cfg.times {
                tasks.push((*p, *plan_name, checkpoint, comp, t));
            }
        }
    }
    crate::sweep::parallel_sweep(&tasks, |(p, plan_name, checkpoint, comp, t)| {
        let compensation = if *comp {
            DriftCompensation::GlobalScale
        } else {
            DriftCompensation::None
        };
        let mut analog = (*checkpoint).clone();
        analog.apply_drift(*t, compensation);
        let accuracy = analog_accuracy(&mut analog, &p.episodes);
        DriftRow {
            model: p.zoo.name.clone(),
            t_seconds: *t,
            plan: plan_name,
            compensated: *comp,
            accuracy,
            digital: p.digital_acc,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::prepare;
    use nora_nn::zoo::{tiny_spec, ModelFamily};

    #[test]
    fn drift_study_produces_full_grid() {
        let prepared = vec![prepare(&tiny_spec(ModelFamily::OptLike, 111), 50, 4)];
        let cfg = DriftConfig {
            times: vec![20.0, 3600.0],
            tile: TileConfig::paper_default().with_tile_size(64, 64),
            seed: 3,
        };
        let rows = drift_study(&prepared, &cfg);
        // 1 model × 2 plans × 2 comp × 2 times
        assert_eq!(rows.len(), 8);
        assert!(rows.iter().all(|r| (0.0..=1.0).contains(&r.accuracy)));
        assert!(DriftRow::table(&rows).render().contains("3600"));
    }

    #[test]
    fn checkpointed_grid_matches_fresh_deployments() {
        // The checkpoint/restore mechanism must be invisible in the rows:
        // cloning one programmed deployment per (model, plan) and drifting
        // the clone equals redeploying from the same seed at every point.
        let prepared = vec![prepare(&tiny_spec(ModelFamily::OptLike, 112), 40, 4)];
        let cfg = DriftConfig {
            times: vec![20.0, 600.0],
            tile: TileConfig::paper_default().with_tile_size(64, 64),
            seed: 5,
        };
        let rows = drift_study(&prepared, &cfg);
        for row in &rows {
            let p = &prepared[0];
            let plan = if row.plan == "nora" {
                p.nora_plan.clone()
            } else {
                RescalePlan::naive()
            };
            let mut fresh = plan.deploy(&p.zoo.model, cfg.tile.clone(), cfg.seed ^ 0x33);
            fresh.apply_drift(
                row.t_seconds,
                if row.compensated {
                    DriftCompensation::GlobalScale
                } else {
                    DriftCompensation::None
                },
            );
            let accuracy = analog_accuracy(&mut fresh, &p.episodes);
            assert_eq!(accuracy, row.accuracy, "{row:?}");
        }
    }
}
