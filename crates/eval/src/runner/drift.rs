//! §VII limitation study: NORA under PCM conductance drift.
//!
//! The paper's limitations section reports that after one hour of drift the
//! method "becomes less significant in some models" and that simple
//! compensation exists. This driver reproduces that: it deploys under the
//! Table II configuration, lets the conductances drift for a range of
//! times, and measures accuracy with and without global drift compensation.

use crate::report::{pct, Table};
use crate::runner::PreparedModel;
use crate::tasks::analog_accuracy;
use nora_cim::{DriftCompensation, TileConfig};
use nora_core::RescalePlan;

/// Configuration of the drift study.
#[derive(Debug, Clone)]
pub struct DriftConfig {
    /// Drift times in seconds (default: fresh read, 1 min, 10 min, 1 h).
    pub times: Vec<f64>,
    /// Tile configuration (default: Table II).
    pub tile: TileConfig,
    /// Deployment seed.
    pub seed: u64,
}

impl Default for DriftConfig {
    fn default() -> Self {
        Self {
            times: vec![20.0, 60.0, 600.0, 3600.0],
            tile: TileConfig::paper_default(),
            seed: 0xd41f,
        }
    }
}

/// One (model, time, plan, compensation) measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftRow {
    /// Model name.
    pub model: String,
    /// Seconds since programming.
    pub t_seconds: f64,
    /// `"naive"` or `"nora"`.
    pub plan: &'static str,
    /// Whether global drift compensation was applied.
    pub compensated: bool,
    /// Accuracy after drift.
    pub accuracy: f64,
    /// Digital baseline.
    pub digital: f64,
}

impl DriftRow {
    /// Renders rows as the drift-study table.
    pub fn table(rows: &[DriftRow]) -> Table {
        let mut t = Table::new(&["model", "t_sec", "plan", "comp", "acc%", "loss_pp"])
            .with_title("§VII — accuracy under PCM conductance drift");
        for r in rows {
            t.row_owned(vec![
                r.model.clone(),
                format!("{:.0}", r.t_seconds),
                r.plan.to_string(),
                if r.compensated { "yes" } else { "no" }.to_string(),
                pct(r.accuracy),
                format!("{:+.1}", 100.0 * (r.digital - r.accuracy)),
            ]);
        }
        t
    }
}

/// Runs the drift study on every prepared model.
///
/// Each (model, plan, compensation, time) point deploys its own layer from
/// an explicit seed, so the grid runs through
/// [`crate::sweep::parallel_sweep`] with the legacy nesting order preserved
/// in the task list — rows are bit-identical to a serial run.
pub fn drift_study(prepared: &[PreparedModel], cfg: &DriftConfig) -> Vec<DriftRow> {
    let mut tasks = Vec::new();
    for p in prepared {
        for (plan_name, plan) in [
            ("naive", RescalePlan::naive()),
            ("nora", p.nora_plan.clone()),
        ] {
            for &comp in &[false, true] {
                for &t in &cfg.times {
                    tasks.push((p, plan_name, plan.clone(), comp, t));
                }
            }
        }
    }
    crate::sweep::parallel_sweep(&tasks, |(p, plan_name, plan, comp, t)| {
        let compensation = if *comp {
            DriftCompensation::GlobalScale
        } else {
            DriftCompensation::None
        };
        let mut analog = plan.deploy(&p.zoo.model, cfg.tile.clone(), cfg.seed ^ 0x33);
        analog.apply_drift(*t, compensation);
        let accuracy = analog_accuracy(&mut analog, &p.episodes);
        DriftRow {
            model: p.zoo.name.clone(),
            t_seconds: *t,
            plan: plan_name,
            compensated: *comp,
            accuracy,
            digital: p.digital_acc,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::prepare;
    use nora_nn::zoo::{tiny_spec, ModelFamily};

    #[test]
    fn drift_study_produces_full_grid() {
        let prepared = vec![prepare(&tiny_spec(ModelFamily::OptLike, 111), 50, 4)];
        let cfg = DriftConfig {
            times: vec![20.0, 3600.0],
            tile: TileConfig::paper_default().with_tile_size(64, 64),
            seed: 3,
        };
        let rows = drift_study(&prepared, &cfg);
        // 1 model × 2 plans × 2 comp × 2 times
        assert_eq!(rows.len(), 8);
        assert!(rows.iter().all(|r| (0.0..=1.0).contains(&r.accuracy)));
        assert!(DriftRow::table(&rows).render().contains("3600"));
    }
}
