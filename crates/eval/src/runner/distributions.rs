//! Fig. 4 and Fig. 6: distribution and output-current diagnostics.

use crate::report::Table;
use crate::runner::PreparedModel;
use nora_cim::TileConfig;
use nora_core::{diagnostics, RescalePlan};
use nora_nn::{LinearId, LinearKind};
use nora_tensor::stats;

/// Fig. 4: KDE + kurtosis of one layer's activation vs query-weight
/// distribution (both normalised to unit absolute maximum, as in the
/// paper's plot).
#[derive(Debug, Clone, PartialEq)]
pub struct KdeReport {
    /// Model name.
    pub model: String,
    /// The probed layer.
    pub layer: LinearId,
    /// KDE grid (shared by both densities).
    pub grid: Vec<f32>,
    /// Density of the normalised activations.
    pub act_density: Vec<f64>,
    /// Density of the normalised query weights.
    pub weight_density: Vec<f64>,
    /// Kurtosis of the activations.
    pub act_kurtosis: f64,
    /// Kurtosis of the query weights.
    pub weight_kurtosis: f64,
}

impl KdeReport {
    /// Renders the headline numbers (the paper quotes the two kurtoses).
    pub fn table(&self) -> Table {
        let mut t = Table::new(&["model", "layer", "act_kurtosis", "weight_kurtosis"])
            .with_title("Fig. 4 — activation vs weight distribution (KDE kurtosis)");
        t.row_owned(vec![
            self.model.clone(),
            format!("block{} {}", self.layer.block, self.layer.kind.name()),
            format!("{:.2}", self.act_kurtosis),
            format!("{:.2}", self.weight_kurtosis),
        ]);
        t
    }

    /// A coarse text rendering of both densities (log-scaled bars), one row
    /// per grid point — enough to see the long tail in a terminal.
    pub fn sparkline(&self, rows: usize) -> String {
        let stride = (self.grid.len() / rows.max(1)).max(1);
        let mut out = String::new();
        let bar = |d: f64| {
            let n = ((1.0 + d).ln() * 8.0).round().clamp(0.0, 40.0) as usize;
            "#".repeat(n)
        };
        for i in (0..self.grid.len()).step_by(stride) {
            out.push_str(&format!(
                "{:>7.3} | act {:<40} | w {:<40}\n",
                self.grid[i],
                bar(self.act_density[i]),
                bar(self.weight_density[i]),
            ));
        }
        out
    }
}

/// Builds the Fig. 4 report for one model: activations entering `layer`
/// (default: block-1 query, mirroring "layer 2 … query weight" in the
/// paper) against that layer's weights.
pub fn kde_report(p: &PreparedModel, layer: Option<LinearId>) -> KdeReport {
    let layer = layer.unwrap_or_else(|| {
        let block = 1.min(p.zoo.model.blocks.len() - 1);
        LinearId::new(block, LinearKind::Q)
    });
    let mut acts: Vec<f32> = Vec::new();
    for seq in &p.calib_seqs {
        p.zoo.model.forward_observed(seq, &mut |id, x| {
            if id == layer {
                acts.extend_from_slice(x.as_slice());
            }
        });
    }
    let weights = p.zoo.model.linear(layer).weight.value.as_slice().to_vec();
    // Normalise both to unit abs-max, as in the paper's figure.
    let norm = |xs: &[f32]| -> Vec<f32> {
        let m = xs.iter().fold(0.0f32, |a, &v| a.max(v.abs())).max(1e-12);
        xs.iter().map(|&v| v / m).collect()
    };
    let acts_n = norm(&acts);
    let weights_n = norm(&weights);
    let (grid, act_density) = stats::kde(&acts_n, -1.0, 1.0, 201, None);
    let (_, weight_density) = stats::kde(&weights_n, -1.0, 1.0, 201, None);
    KdeReport {
        model: p.zoo.name.clone(),
        layer,
        grid,
        act_density,
        weight_density,
        act_kurtosis: stats::kurtosis(&acts_n),
        weight_kurtosis: stats::kurtosis(&weights_n),
    }
}

/// Fig. 6a/b: per-layer input & weight kurtosis, naive vs NORA.
#[derive(Debug, Clone, PartialEq)]
pub struct KurtosisRow {
    /// Model name.
    pub model: String,
    /// The layer.
    pub id: LinearId,
    /// Input kurtosis, naive mapping.
    pub input_naive: f64,
    /// Input kurtosis under NORA.
    pub input_nora: f64,
    /// Weight kurtosis, naive mapping.
    pub weight_naive: f64,
    /// Weight kurtosis under NORA.
    pub weight_nora: f64,
}

impl KurtosisRow {
    /// Renders rows as the Fig. 6a/b table.
    pub fn table(rows: &[KurtosisRow]) -> Table {
        let mut t = Table::new(&[
            "model", "layer", "in_naive", "in_nora", "w_naive", "w_nora",
        ])
        .with_title("Fig. 6a/b — per-layer input/weight kurtosis, naive vs NORA");
        for r in rows {
            t.row_owned(vec![
                r.model.clone(),
                format!("b{}.{}", r.id.block, r.id.kind.name()),
                format!("{:.1}", r.input_naive),
                format!("{:.1}", r.input_nora),
                format!("{:.2}", r.weight_naive),
                format!("{:.2}", r.weight_nora),
            ]);
        }
        t
    }
}

/// Computes Fig. 6a/b rows for one model.
pub fn kurtosis_report(p: &PreparedModel) -> Vec<KurtosisRow> {
    let naive = diagnostics::layer_distributions(
        &p.zoo.model,
        &p.calib_seqs,
        &RescalePlan::naive(),
    );
    let nora = diagnostics::layer_distributions(&p.zoo.model, &p.calib_seqs, &p.nora_plan);
    naive
        .iter()
        .zip(&nora)
        .map(|(a, b)| {
            debug_assert_eq!(a.id, b.id);
            KurtosisRow {
                model: p.zoo.name.clone(),
                id: a.id,
                input_naive: a.input_kurtosis,
                input_nora: b.input_kurtosis,
                weight_naive: a.weight_kurtosis,
                weight_nora: b.weight_kurtosis,
            }
        })
        .collect()
}

/// Fig. 6c: per-layer mean rescale factor `α_i γ_j g_max`, naive vs NORA.
#[derive(Debug, Clone, PartialEq)]
pub struct RescaleRow {
    /// Model name.
    pub model: String,
    /// The layer.
    pub id: LinearId,
    /// Mean rescale factor under the naive mapping.
    pub naive: f64,
    /// Mean rescale factor under NORA.
    pub nora: f64,
}

impl RescaleRow {
    /// Ratio `nora / naive` (< 1 means more output current, higher SNR).
    pub fn ratio(&self) -> f64 {
        if self.naive == 0.0 {
            1.0
        } else {
            self.nora / self.naive
        }
    }

    /// Renders rows as the Fig. 6c table.
    pub fn table(rows: &[RescaleRow]) -> Table {
        let mut t = Table::new(&["model", "layer", "naive", "nora", "ratio"])
            .with_title("Fig. 6c — mean rescale factor α·γ·g_max (smaller ⇒ more output current)");
        for r in rows {
            t.row_owned(vec![
                r.model.clone(),
                format!("b{}.{}", r.id.block, r.id.kind.name()),
                format!("{:.3}", r.naive),
                format!("{:.3}", r.nora),
                format!("{:.2}", r.ratio()),
            ]);
        }
        t
    }
}

/// Computes Fig. 6c rows for one model under `tile`.
pub fn rescale_report(p: &PreparedModel, tile: TileConfig, seed: u64) -> Vec<RescaleRow> {
    let naive = diagnostics::rescale_factors(
        &p.zoo.model,
        &p.calib_seqs,
        &RescalePlan::naive(),
        tile.clone(),
        seed,
    );
    let nora =
        diagnostics::rescale_factors(&p.zoo.model, &p.calib_seqs, &p.nora_plan, tile, seed);
    naive
        .iter()
        .zip(&nora)
        .map(|((id_a, a), (id_b, b))| {
            debug_assert_eq!(id_a, id_b);
            RescaleRow {
                model: p.zoo.name.clone(),
                id: *id_a,
                naive: *a,
                nora: *b,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::prepare;
    use nora_nn::zoo::{tiny_spec, ModelFamily};

    fn prepared() -> PreparedModel {
        prepare(&tiny_spec(ModelFamily::OptLike, 123), 30, 5)
    }

    #[test]
    fn kde_report_shows_heavy_tailed_activations() {
        let p = prepared();
        let report = kde_report(&p, None);
        assert!(
            report.act_kurtosis > report.weight_kurtosis * 3.0,
            "act {} weight {}",
            report.act_kurtosis,
            report.weight_kurtosis
        );
        assert_eq!(report.grid.len(), 201);
        assert!(!report.sparkline(20).is_empty());
        assert!(report.table().render().contains("q"));
    }

    #[test]
    fn kurtosis_report_shows_burden_transfer() {
        let p = prepared();
        let rows = kurtosis_report(&p);
        assert_eq!(rows.len(), p.zoo.model.linear_ids().len());
        let mean_in_naive: f64 =
            rows.iter().map(|r| r.input_naive).sum::<f64>() / rows.len() as f64;
        let mean_in_nora: f64 =
            rows.iter().map(|r| r.input_nora).sum::<f64>() / rows.len() as f64;
        assert!(
            mean_in_nora < mean_in_naive,
            "{mean_in_naive} → {mean_in_nora}"
        );
        assert!(!KurtosisRow::table(&rows).is_empty());
    }

    #[test]
    fn rescale_report_shows_shrink() {
        let p = prepared();
        let tile = TileConfig::paper_default().with_tile_size(64, 64);
        let rows = rescale_report(&p, tile, 4);
        let mean_ratio: f64 =
            rows.iter().map(|r| r.ratio()).sum::<f64>() / rows.len() as f64;
        assert!(mean_ratio < 1.0, "mean ratio {mean_ratio}");
        assert!(!RescaleRow::table(&rows).is_empty());
    }

    #[test]
    fn reports_cover_every_layer_and_are_deterministic() {
        let p = prepared();
        let layers = p.zoo.model.linear_ids().len();
        let tile = TileConfig::paper_default().with_tile_size(64, 64);
        let rescale = rescale_report(&p, tile.clone(), 4);
        assert_eq!(rescale.len(), layers, "one rescale row per linear layer");
        assert_eq!(rescale, rescale_report(&p, tile, 4), "rescale rows drift");

        let kde = kde_report(&p, None);
        assert_eq!(kde, kde_report(&p, None), "KDE report drifts across runs");
        assert!(kde.grid.windows(2).all(|w| w[0] < w[1]), "grid not sorted");
        let densities = kde.act_density.iter().chain(&kde.weight_density);
        assert!(densities.clone().all(|&d| d.is_finite() && d >= 0.0));
        // Both KDEs integrate to ≈ 1 over the grid.
        let dx = f64::from(kde.grid[1] - kde.grid[0]);
        let mass: f64 = kde.act_density.iter().sum::<f64>() * dx;
        assert!((mass - 1.0).abs() < 0.1, "act density mass {mass}");
    }
}
