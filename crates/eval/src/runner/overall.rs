//! Fig. 5a / Table III: overall accuracy under the full Table II
//! configuration — digital vs naive analog vs NORA.

use crate::report::{pct, Table};
use crate::runner::PreparedModel;
use crate::tasks::analog_accuracy;
use nora_cim::TileConfig;
use nora_core::RescalePlan;

/// Configuration of the overall-accuracy experiment.
#[derive(Debug, Clone)]
pub struct OverallConfig {
    /// The tile configuration (default: the paper's Table II).
    pub tile: TileConfig,
    /// Deployment seed.
    pub seed: u64,
}

impl Default for OverallConfig {
    fn default() -> Self {
        Self {
            tile: TileConfig::paper_default(),
            seed: 0xa11,
        }
    }
}

/// Per-model result row.
#[derive(Debug, Clone, PartialEq)]
pub struct OverallRow {
    /// Model name.
    pub model: String,
    /// FP32 digital accuracy.
    pub digital: f64,
    /// Naive analog accuracy (no rescaling).
    pub naive: f64,
    /// NORA accuracy.
    pub nora: f64,
}

impl OverallRow {
    /// Accuracy loss of NORA vs digital, percentage points.
    pub fn nora_loss_pp(&self) -> f64 {
        100.0 * (self.digital - self.nora)
    }

    /// Accuracy loss of the naive deployment vs digital, percentage points.
    pub fn naive_loss_pp(&self) -> f64 {
        100.0 * (self.digital - self.naive)
    }

    /// Renders rows as the Fig. 5a / Table III table.
    pub fn table(rows: &[OverallRow], title: &str) -> Table {
        let mut t = Table::new(&[
            "model",
            "digital%",
            "naive%",
            "nora%",
            "naive_loss_pp",
            "nora_loss_pp",
        ])
        .with_title(title);
        for r in rows {
            t.row_owned(vec![
                r.model.clone(),
                pct(r.digital),
                pct(r.naive),
                pct(r.nora),
                format!("{:+.1}", r.naive_loss_pp()),
                format!("{:+.1}", r.nora_loss_pp()),
            ]);
        }
        t
    }
}

/// Evaluates every prepared model under digital / naive analog / NORA.
pub fn overall(prepared: &[PreparedModel], cfg: &OverallConfig) -> Vec<OverallRow> {
    prepared
        .iter()
        .map(|p| {
            let mut naive =
                RescalePlan::naive().deploy(&p.zoo.model, cfg.tile.clone(), cfg.seed);
            let naive_acc = analog_accuracy(&mut naive, &p.episodes);
            let mut nora = p
                .nora_plan
                .deploy(&p.zoo.model, cfg.tile.clone(), cfg.seed);
            let nora_acc = analog_accuracy(&mut nora, &p.episodes);
            OverallRow {
                model: p.zoo.name.clone(),
                digital: p.digital_acc,
                naive: naive_acc,
                nora: nora_acc,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::prepare;
    use nora_nn::zoo::{tiny_spec, ModelFamily};

    #[test]
    fn nora_beats_naive_on_outlier_model() {
        let prepared = vec![prepare(&tiny_spec(ModelFamily::OptLike, 88), 80, 6)];
        let cfg = OverallConfig {
            tile: TileConfig::paper_default().with_tile_size(64, 64),
            seed: 5,
        };
        let rows = overall(&prepared, &cfg);
        assert_eq!(rows.len(), 1);
        let r = &rows[0];
        assert!(
            r.nora >= r.naive,
            "nora {} should be >= naive {}",
            r.nora,
            r.naive
        );
        assert!(r.digital > 0.5);
        let table = OverallRow::table(&rows, "t").render();
        assert!(table.contains("opt-like-tiny"));
    }
}
