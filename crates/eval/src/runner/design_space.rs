//! Design-space exploration: accuracy-vs-energy-vs-latency Pareto sweeps
//! over tile geometry × converter resolution × device noise × NORA λ,
//! scored entirely by the analytic fast evaluator
//! ([`crate::analytic`]) plus the first-order energy/latency/area laws —
//! no tile forwards, so thousands of configurations sweep in seconds.

use crate::analytic::{layer_decode_cost, AnalyticEvaluator, LayerCost};
use crate::report::{pct, Table};
use crate::runner::PreparedModel;
use nora_cim::{AreaModel, EnergyModel, Resolution, TileConfig, WeightSource};
use nora_core::{RescalePlan, SmoothingConfig};
use nora_obs::Metrics;

/// The sweep grid. The default spans 4 × 5 × 5 × 3 × 5 = 1500
/// configurations.
#[derive(Debug, Clone)]
pub struct DesignSpaceConfig {
    /// Square tile sizes (rows = cols) to sweep.
    pub tile_sizes: Vec<usize>,
    /// DAC resolutions, bits.
    pub dac_bits: Vec<u32>,
    /// ADC resolutions, bits.
    pub adc_bits: Vec<u32>,
    /// Device-noise scale applied to the paper-default output noise, read
    /// noise, and PCM programming-noise scale.
    pub noise_scales: Vec<f32>,
    /// NORA migration strengths λ (one rescale plan per value).
    pub lambdas: Vec<f32>,
    /// Rows of clean activations captured per linear for the analytic
    /// moments.
    pub capture_rows: usize,
}

impl Default for DesignSpaceConfig {
    fn default() -> Self {
        Self {
            tile_sizes: vec![16, 32, 64, 128],
            dac_bits: vec![4, 5, 6, 7, 8],
            adc_bits: vec![5, 6, 7, 8, 9],
            noise_scales: vec![0.5, 1.0, 2.0],
            lambdas: vec![0.0, 0.25, 0.5, 0.75, 1.0],
            capture_rows: 8,
        }
    }
}

impl DesignSpaceConfig {
    /// Tiny grid for smoke tests and `NORA_FAST` runs (2 × 2 × 2 × 1 × 2 =
    /// 16 configurations).
    pub fn tiny() -> Self {
        Self {
            tile_sizes: vec![16, 64],
            dac_bits: vec![5, 7],
            adc_bits: vec![6, 8],
            noise_scales: vec![1.0],
            lambdas: vec![0.0, 0.5],
            capture_rows: 6,
        }
    }

    /// Number of grid points.
    pub fn points(&self) -> usize {
        self.tile_sizes.len()
            * self.dac_bits.len()
            * self.adc_bits.len()
            * self.noise_scales.len()
            * self.lambdas.len()
    }
}

/// One scored configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignSpaceRow {
    /// Model name.
    pub model: String,
    /// Square tile size.
    pub tile: usize,
    /// DAC bits.
    pub dac_bits: u32,
    /// ADC bits.
    pub adc_bits: u32,
    /// Device-noise scale.
    pub noise_scale: f32,
    /// NORA λ.
    pub lambda: f32,
    /// Predicted eval accuracy (analytic).
    pub accuracy: f64,
    /// Predicted logit-error σ.
    pub sigma_logit: f64,
    /// Decode energy, nJ per token.
    pub energy_nj: f64,
    /// Decode latency, µs per token.
    pub latency_us: f64,
    /// Analog array area, mm².
    pub area_mm2: f64,
    /// On the 3-objective (max accuracy, min energy, min latency) Pareto
    /// frontier of its sweep.
    pub pareto: bool,
}

impl DesignSpaceRow {
    /// `a` dominates `b` when it is no worse on all three objectives and
    /// strictly better on at least one.
    fn dominates(a: &DesignSpaceRow, b: &DesignSpaceRow) -> bool {
        let no_worse =
            a.accuracy >= b.accuracy && a.energy_nj <= b.energy_nj && a.latency_us <= b.latency_us;
        let better =
            a.accuracy > b.accuracy || a.energy_nj < b.energy_nj || a.latency_us < b.latency_us;
        no_worse && better
    }

    /// Marks the accuracy/energy/latency Pareto frontier in place.
    pub fn mark_pareto(rows: &mut [DesignSpaceRow]) {
        for i in 0..rows.len() {
            rows[i].pareto =
                !(0..rows.len()).any(|j| j != i && Self::dominates(&rows[j], &rows[i]));
        }
    }

    /// Renders rows as a report table.
    pub fn table(rows: &[DesignSpaceRow]) -> Table {
        let mut t = Table::new(&[
            "tile", "dac", "adc", "noise", "lambda", "acc%", "nJ/tok", "us/tok", "pareto",
        ])
        .with_title("Design space — analytic accuracy vs energy vs latency");
        for r in rows {
            t.row_owned(vec![
                r.tile.to_string(),
                r.dac_bits.to_string(),
                r.adc_bits.to_string(),
                format!("{:.2}", r.noise_scale),
                format!("{:.2}", r.lambda),
                pct(r.accuracy),
                format!("{:.2}", r.energy_nj),
                format!("{:.3}", r.latency_us),
                if r.pareto { "*" } else { "" }.to_string(),
            ]);
        }
        t
    }

    /// Renders rows as a CSV document (header + one line per row).
    pub fn csv(rows: &[DesignSpaceRow]) -> String {
        let mut out = String::from(
            "model,tile,dac_bits,adc_bits,noise_scale,lambda,accuracy,\
             sigma_logit,energy_nj,latency_us,area_mm2,pareto\n",
        );
        for r in rows {
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},{},{},{},{}\n",
                r.model,
                r.tile,
                r.dac_bits,
                r.adc_bits,
                r.noise_scale,
                r.lambda,
                r.accuracy,
                r.sigma_logit,
                r.energy_nj,
                r.latency_us,
                r.area_mm2,
                r.pareto,
            ));
        }
        out
    }
}

/// The tile configuration of one grid point: paper defaults with the swept
/// geometry, converter resolutions, and device-noise scale applied.
fn point_config(tile: usize, dac_bits: u32, adc_bits: u32, noise_scale: f32) -> TileConfig {
    let base = TileConfig::paper_default();
    let mut cfg = base.clone().with_tile_size(tile, tile);
    cfg.dac = Resolution::bits(dac_bits);
    cfg.adc = Resolution::bits(adc_bits);
    cfg.out_noise = base.out_noise * noise_scale;
    cfg.w_noise = base.w_noise * noise_scale;
    cfg.weight_source = match base.weight_source {
        WeightSource::Pcm(s) => WeightSource::Pcm(s * noise_scale),
        other => other,
    };
    cfg
}

/// Runs the sweep. One NORA rescale plan is calibrated per λ (shared
/// across the geometry/resolution/noise axes); every grid point is then
/// scored analytically through [`crate::sweep::parallel_sweep`].
pub fn design_space(p: &PreparedModel, cfg: &DesignSpaceConfig) -> Vec<DesignSpaceRow> {
    design_space_inner(p, cfg, None)
}

/// Like [`design_space`], additionally recording sweep telemetry
/// (`eval.sweep.points` / `eval.sweep.point_secs`) into `metrics`.
pub fn design_space_recorded(
    p: &PreparedModel,
    cfg: &DesignSpaceConfig,
    metrics: &mut Metrics,
) -> Vec<DesignSpaceRow> {
    design_space_inner(p, cfg, Some(metrics))
}

fn design_space_inner(
    p: &PreparedModel,
    cfg: &DesignSpaceConfig,
    metrics: Option<&mut Metrics>,
) -> Vec<DesignSpaceRow> {
    let evaluator = AnalyticEvaluator::new(&p.zoo.model, &p.episodes, cfg.capture_rows);
    let plans: Vec<(f32, RescalePlan)> = cfg
        .lambdas
        .iter()
        .map(|&l| {
            (
                l,
                RescalePlan::nora(
                    &p.zoo.model,
                    &p.calibration,
                    SmoothingConfig::with_lambda(l),
                ),
            )
        })
        .collect();
    let area = AreaModel::default();

    let mut tasks = Vec::with_capacity(cfg.points());
    for &tile in &cfg.tile_sizes {
        for &dac in &cfg.dac_bits {
            for &adc in &cfg.adc_bits {
                for &noise in &cfg.noise_scales {
                    for (lambda, plan) in &plans {
                        tasks.push((tile, dac, adc, noise, *lambda, plan));
                    }
                }
            }
        }
    }

    let score = |&(tile, dac, adc, noise, lambda, plan): &(
        usize,
        u32,
        u32,
        f32,
        f32,
        &RescalePlan,
    )| {
        let tc = point_config(tile, dac, adc, noise);
        // The ADC energy FOM charges per step: score with the swept
        // resolution, not the model's 7-bit default.
        let energy = EnergyModel {
            adc_steps: tc.adc.steps().unwrap_or(128),
            ..EnergyModel::default()
        };
        let prediction = evaluator.predict(&p.zoo.model, plan, &tc);
        let mut cost = LayerCost::default();
        for id in p.zoo.model.linear_ids() {
            cost.accumulate(layer_decode_cost(
                &p.zoo.model.linear(id).weight.value,
                plan.smoothing_for(id),
                &tc,
                &energy,
                &area,
            ));
        }
        DesignSpaceRow {
            model: p.zoo.name.clone(),
            tile,
            dac_bits: dac,
            adc_bits: adc,
            noise_scale: noise,
            lambda,
            accuracy: prediction.accuracy,
            sigma_logit: prediction.sigma_logit,
            energy_nj: cost.energy_pj / 1e3,
            latency_us: cost.latency_ns / 1e3,
            area_mm2: cost.area_um2 / 1e6,
            pareto: false,
        }
    };
    let mut rows = match metrics {
        Some(m) => crate::sweep::parallel_sweep_recorded(&tasks, m, score),
        None => crate::sweep::parallel_sweep(&tasks, score),
    };
    DesignSpaceRow::mark_pareto(&mut rows);
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::prepare;
    use nora_nn::zoo::{tiny_spec, ModelFamily};

    #[test]
    fn tiny_sweep_scores_every_point_and_marks_a_frontier() {
        let p = prepare(&tiny_spec(ModelFamily::OptLike, 95), 30, 4);
        let cfg = DesignSpaceConfig::tiny();
        let mut metrics = Metrics::new();
        let rows = design_space_recorded(&p, &cfg, &mut metrics);
        assert_eq!(rows.len(), cfg.points());
        assert!(rows.iter().all(|r| (0.0..=1.0).contains(&r.accuracy)));
        assert!(rows.iter().all(|r| r.energy_nj > 0.0 && r.latency_us > 0.0));
        // The frontier is non-empty and actually non-dominated.
        let frontier: Vec<_> = rows.iter().filter(|r| r.pareto).collect();
        assert!(!frontier.is_empty());
        for f in &frontier {
            assert!(
                !rows.iter().any(|r| DesignSpaceRow::dominates(r, f)),
                "dominated row marked pareto"
            );
        }
        // Higher ADC resolution costs more converter energy, all else equal.
        let pick = |adc: u32| {
            rows.iter()
                .find(|r| {
                    r.tile == 16 && r.dac_bits == 5 && r.adc_bits == adc && r.lambda == 0.0
                })
                .unwrap()
                .energy_nj
        };
        assert!(pick(8) > pick(6));
    }

    #[test]
    fn sweep_telemetry_counts_the_grid() {
        let p = prepare(&tiny_spec(ModelFamily::OptLike, 96), 20, 4);
        let cfg = DesignSpaceConfig {
            tile_sizes: vec![32],
            dac_bits: vec![7],
            adc_bits: vec![7, 8],
            noise_scales: vec![1.0],
            lambdas: vec![0.5],
            capture_rows: 4,
        };
        let mut metrics = Metrics::new();
        let rows = design_space_recorded(&p, &cfg, &mut metrics);
        assert_eq!(rows.len(), 2);
        assert_eq!(metrics.counter("eval.sweep.points"), 2);
    }

    #[test]
    fn csv_schema_matches_committed_results_file() {
        let header = DesignSpaceRow::csv(&[]);
        let header = header.trim_end();
        let committed = std::fs::read_to_string(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../results/design_space_pareto.csv"
        ))
        .expect("committed results/design_space_pareto.csv");
        let first = committed.lines().next().expect("non-empty results file");
        assert_eq!(
            first, header,
            "results/design_space_pareto.csv header drifted from DesignSpaceRow::csv"
        );
    }
}
