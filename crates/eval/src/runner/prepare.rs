//! Shared experiment setup: train, calibrate, and baseline a zoo model.

use nora_core::{calibrate, Calibration, RescalePlan, SmoothingConfig};
use nora_nn::corpus::Episode;
use nora_nn::zoo::{ZooModel, ZooSpec};

/// A zoo model plus everything an experiment needs around it: held-out
/// evaluation episodes, a calibration set and its [`Calibration`], the
/// digital-baseline accuracy, and the default NORA plan.
#[derive(Debug, Clone)]
pub struct PreparedModel {
    /// The trained, outlier-injected model.
    pub zoo: ZooModel,
    /// Held-out evaluation episodes (never seen in training/calibration).
    pub episodes: Vec<Episode>,
    /// Calibration sequences (the "Pile-like" stream).
    pub calib_seqs: Vec<Vec<usize>>,
    /// Per-channel activation maxima from the calibration pass.
    pub calibration: Calibration,
    /// FP32 digital accuracy on `episodes`.
    pub digital_acc: f64,
    /// The λ = 0.5 NORA plan.
    pub nora_plan: RescalePlan,
}

/// Builds a [`PreparedModel`]: trains per the spec, draws `calib_count`
/// calibration sequences and `episode_count` held-out episodes, calibrates,
/// and computes the digital baseline and the default NORA plan.
pub fn prepare(spec: &ZooSpec, episode_count: usize, calib_count: usize) -> PreparedModel {
    prepare_built(spec.build(), episode_count, calib_count)
}

/// Like [`prepare`] for a model that is already built (e.g. loaded from the
/// model cache by the `nora-bench` binaries).
pub fn prepare_built(zoo: ZooModel, episode_count: usize, calib_count: usize) -> PreparedModel {
    let mut corpus = zoo.corpus.clone();
    let calib_seqs: Vec<Vec<usize>> = (0..calib_count)
        .map(|_| corpus.episode().tokens)
        .collect();
    let episodes = corpus.episodes(episode_count);
    let calibration = calibrate(&zoo.model, &calib_seqs);
    let digital_acc = crate::tasks::digital_accuracy(&zoo.model, &episodes);
    let nora_plan = RescalePlan::nora(&zoo.model, &calibration, SmoothingConfig::default());
    PreparedModel {
        zoo,
        episodes,
        calib_seqs,
        calibration,
        digital_acc,
        nora_plan,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nora_nn::zoo::{tiny_spec, ModelFamily};

    #[test]
    fn prepare_produces_consistent_bundle() {
        let prepared = prepare(&tiny_spec(ModelFamily::MistralLike, 31), 40, 6);
        assert_eq!(prepared.episodes.len(), 40);
        assert_eq!(prepared.calib_seqs.len(), 6);
        assert!(prepared.digital_acc > 0.5, "digital {}", prepared.digital_acc);
        assert!(!prepared.nora_plan.is_naive());
        assert_eq!(
            prepared.calibration.ids().count(),
            prepared.zoo.model.linear_ids().len()
        );
    }
}
