//! Experiment drivers, one per paper table/figure.

mod analytic;
mod design_space;
mod distributions;
mod drift;
mod drift_serving;
mod extensions;
mod faults;
mod hwa;
mod layers;
mod management;
mod mitigation;
mod overall;
mod prepare;
mod sensitivity;
mod sparsity;

pub use extensions::{
    cross_device, digital_quant_baseline, energy_study, CrossDeviceRow, EnergyRow,
    QuantBaselineRow,
};
pub use layers::{layer_sensitivity, LayerSensitivityRow, LayerStudyMode};
pub use management::{management_ablation, ManagementRow};

pub use analytic::{analytic_validation, AnalyticValidationConfig, AnalyticValidationRow};
pub use design_space::{
    design_space, design_space_recorded, DesignSpaceConfig, DesignSpaceRow,
};
pub use distributions::{
    kde_report, kurtosis_report, rescale_report, KdeReport, KurtosisRow, RescaleRow,
};
pub use drift::{drift_study, DriftConfig, DriftRow};
pub use drift_serving::{
    drift_serving_study, drift_serving_study_recorded, DriftServingConfig, DriftServingRow,
};
pub use faults::{fault_study, FaultStudyConfig, FaultStudyRow};
pub use hwa::{hwa_study, hwa_study_recorded, HwaPair, HwaStudyConfig, HwaStudyRow};
pub use mitigation::{mitigation, MitigationConfig, MitigationRow};
pub use overall::{overall, OverallConfig, OverallRow};
pub use prepare::{prepare, prepare_built, PreparedModel};
pub use sensitivity::{sensitivity, SensitivityConfig, SensitivityPoint};
pub use sparsity::{sparsity_study, SparsityStudyConfig, SparsityStudyRow};
