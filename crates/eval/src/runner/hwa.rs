//! Hardware-aware training vs NORA, head-to-head.
//!
//! The paper's position is that hardware-aware (HWA) retraining — the
//! established recipe for analog robustness — is "non-trivial, if not
//! prohibitive for LLMs", and that NORA recovers most of the accuracy with
//! no training at all. This study puts the two on the same axes. For every
//! zoo model it scores four arms:
//!
//! * `base` — the plain checkpoint, naively deployed;
//! * `hwa` — the STE trained-robust checkpoint
//!   ([`nora_nn::ste::train_ste`]), naively deployed;
//! * `nora` — the plain checkpoint under its NORA rescale plan;
//! * `hwa+nora` — the trained-robust checkpoint under its own
//!   (recalibrated) NORA plan — the two techniques composed.
//!
//! Each arm is measured on three grids: the full Table II noise stack (the
//! paper's deployment point), the Fig. 3 MSE-matched single-noise
//! sensitivity grid, and the hard-fault grid. All arms of a pair share the
//! *base* model's held-out episodes, so accuracies are directly comparable
//! across arms.

use crate::noise_level::{paper_mse_grid, severity_for_mse, RefWorkload};
use crate::report::{pct, Table};
use crate::runner::PreparedModel;
use crate::tasks::{analog_accuracy, digital_accuracy};
use nora_cim::{FaultPlan, FaultTolerance, NonIdeality, TileConfig};
use nora_core::RescalePlan;
use nora_obs::Metrics;

/// A base checkpoint and its hardware-aware trained-robust counterpart,
/// each fully prepared (calibrated, baselined, NORA-planned).
#[derive(Debug, Clone)]
pub struct HwaPair {
    /// The plain zoo checkpoint.
    pub base: PreparedModel,
    /// The same spec rebuilt with an STE fine-tuning stage
    /// ([`nora_nn::zoo::robust_variant`]); its `nora_plan` is recalibrated
    /// on the fine-tuned weights.
    pub robust: PreparedModel,
}

/// Configuration of the HWA-vs-NORA study.
#[derive(Debug, Clone)]
pub struct HwaStudyConfig {
    /// Deployment tile for the `table2` and `fault` grids (default: the
    /// paper's Table II stack).
    pub tile: TileConfig,
    /// Non-idealities for the sensitivity grid (default: the IO and
    /// weight-side noises the two techniques split on).
    pub noises: Vec<NonIdeality>,
    /// MSE-matched severity points per noise.
    pub mse_points: usize,
    /// Stuck-cell rates for the fault grid (line faults ride along at
    /// `line_rate_ratio` of each).
    pub cell_rates: Vec<f64>,
    /// Dead-line / stuck-ADC rate as a fraction of the cell rate.
    pub line_rate_ratio: f64,
    /// Deployment seed.
    pub seed: u64,
}

impl Default for HwaStudyConfig {
    fn default() -> Self {
        Self {
            tile: TileConfig::paper_default(),
            noises: vec![
                NonIdeality::DacQuantization,
                NonIdeality::AdditiveOutputNoise,
                NonIdeality::ShortTermReadNoise,
                NonIdeality::ProgrammingNoise,
            ],
            mse_points: 4,
            cell_rates: vec![0.005, 0.02],
            line_rate_ratio: 0.1,
            seed: 0x48a7,
        }
    }
}

/// One (model, arm, grid point) measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct HwaStudyRow {
    /// Base model name (all four arms report under it).
    pub model: String,
    /// `"base"`, `"hwa"`, `"nora"` or `"hwa+nora"`.
    pub arm: String,
    /// `"table2"`, `"sensitivity"` or `"fault"`.
    pub grid: String,
    /// Active non-ideality on the sensitivity grid (`"all"` elsewhere).
    pub noise: String,
    /// Severity realising the matched MSE (0 off the sensitivity grid).
    pub severity: f32,
    /// Matched reference MSE (0 off the sensitivity grid).
    pub mse: f64,
    /// Stuck-cell rate (0 off the fault grid).
    pub cell_rate: f64,
    /// FP32 digital accuracy of this arm's checkpoint on the shared
    /// episodes.
    pub digital: f64,
    /// Analog accuracy at this grid point.
    pub accuracy: f64,
}

impl HwaStudyRow {
    /// Accuracy loss vs this arm's digital baseline, percentage points.
    pub fn loss_pp(&self) -> f64 {
        100.0 * (self.digital - self.accuracy)
    }

    /// Renders rows as the study table.
    pub fn table(rows: &[HwaStudyRow]) -> Table {
        let mut t = Table::new(&[
            "model", "arm", "grid", "noise", "severity", "cell_rate", "digital%", "accuracy%",
            "loss_pp",
        ])
        .with_title("HWA training vs NORA — four arms on noise, sensitivity and fault grids");
        for r in rows {
            t.row_owned(vec![
                r.model.clone(),
                r.arm.clone(),
                r.grid.clone(),
                r.noise.clone(),
                format!("{:.4}", r.severity),
                format!("{:.3}", r.cell_rate),
                pct(r.digital),
                pct(r.accuracy),
                format!("{:+.1}", r.loss_pp()),
            ]);
        }
        t
    }

    /// Renders rows as a CSV document (header + one line per row).
    pub fn csv(rows: &[HwaStudyRow]) -> String {
        let mut out =
            String::from("model,arm,grid,noise,severity,mse,cell_rate,digital,accuracy\n");
        for r in rows {
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},{}\n",
                r.model,
                r.arm,
                r.grid,
                r.noise,
                r.severity,
                r.mse,
                r.cell_rate,
                r.digital,
                r.accuracy,
            ));
        }
        out
    }
}

/// The four arms: which checkpoint runs, and under which plan.
const ARMS: [&str; 4] = ["base", "hwa", "nora", "hwa+nora"];

fn arm_parts<'a>(pair: &'a HwaPair, arm: &str) -> (&'a PreparedModel, RescalePlan) {
    match arm {
        "base" => (&pair.base, RescalePlan::naive()),
        "hwa" => (&pair.robust, RescalePlan::naive()),
        "nora" => (&pair.base, pair.base.nora_plan.clone()),
        "hwa+nora" => (&pair.robust, pair.robust.nora_plan.clone()),
        other => unreachable!("unknown arm {other}"),
    }
}

struct HwaTask<'a> {
    grid: &'static str,
    noise: Option<NonIdeality>,
    severity: f32,
    mse: f64,
    cell_rate: f64,
    fault_seed: u64,
    pair: &'a HwaPair,
    arm: &'static str,
    digital: f64,
}

/// Runs the four-arm study over every pair on all three grids.
///
/// Points are independent, so they run through
/// [`crate::sweep::parallel_sweep`]; the task list is materialised in a
/// fixed grid → (noise → mse | rate) → pair → arm nesting order, keeping
/// the returned rows bit-identical at any thread count.
pub fn hwa_study(pairs: &[HwaPair], cfg: &HwaStudyConfig) -> Vec<HwaStudyRow> {
    hwa_study_inner(pairs, cfg, None)
}

/// Like [`hwa_study`], additionally recording sweep telemetry
/// (`eval.sweep.points` / `eval.sweep.point_secs`) into `metrics`.
pub fn hwa_study_recorded(
    pairs: &[HwaPair],
    cfg: &HwaStudyConfig,
    metrics: &mut Metrics,
) -> Vec<HwaStudyRow> {
    hwa_study_inner(pairs, cfg, Some(metrics))
}

fn hwa_study_inner(
    pairs: &[HwaPair],
    cfg: &HwaStudyConfig,
    metrics: Option<&mut Metrics>,
) -> Vec<HwaStudyRow> {
    // Digital baselines on the *shared* (base) episodes, one per arm
    // checkpoint: `digital_acc` covers the base model; score the robust
    // model on the same episodes here.
    let robust_digital: Vec<f64> = pairs
        .iter()
        .map(|pair| digital_accuracy(&pair.robust.zoo.model, &pair.base.episodes))
        .collect();
    let digital_for = |pi: usize, arm: &str| -> f64 {
        match arm {
            "base" | "nora" => pairs[pi].base.digital_acc,
            _ => robust_digital[pi],
        }
    };

    let mut tasks: Vec<HwaTask> = Vec::new();
    // Grid 1: the full Table II noise stack.
    for (pi, pair) in pairs.iter().enumerate() {
        for arm in ARMS {
            tasks.push(HwaTask {
                grid: "table2",
                noise: None,
                severity: 0.0,
                mse: 0.0,
                cell_rate: 0.0,
                fault_seed: 0,
                pair,
                arm,
                digital: digital_for(pi, arm),
            });
        }
    }
    // Grid 2: MSE-matched single-noise sensitivity (Fig. 3 axes).
    let workload = RefWorkload::default_reference(cfg.seed);
    let grid = paper_mse_grid(cfg.mse_points);
    for &noise in &cfg.noises {
        let severities: Vec<f32> = grid
            .iter()
            .map(|&mse| severity_for_mse(noise, mse, &workload))
            .collect();
        for (&mse, &severity) in grid.iter().zip(&severities) {
            for (pi, pair) in pairs.iter().enumerate() {
                for arm in ARMS {
                    tasks.push(HwaTask {
                        grid: "sensitivity",
                        noise: Some(noise),
                        severity,
                        mse,
                        cell_rate: 0.0,
                        fault_seed: 0,
                        pair,
                        arm,
                        digital: digital_for(pi, arm),
                    });
                }
            }
        }
    }
    // Grid 3: hard faults (shared defect draw per rate, no ABFT).
    for (i, &cell_rate) in cfg.cell_rates.iter().enumerate() {
        let fault_seed = cfg.seed ^ ((i as u64 + 1) << 32);
        for (pi, pair) in pairs.iter().enumerate() {
            for arm in ARMS {
                tasks.push(HwaTask {
                    grid: "fault",
                    noise: None,
                    severity: 0.0,
                    mse: 0.0,
                    cell_rate,
                    fault_seed,
                    pair,
                    arm,
                    digital: digital_for(pi, arm),
                });
            }
        }
    }

    let score = |t: &HwaTask| {
        let tile = match t.grid {
            "sensitivity" => t.noise.expect("sensitivity task").configure(t.severity),
            "fault" => cfg
                .tile
                .clone()
                .with_fault_plan(FaultPlan::uniform(
                    t.cell_rate,
                    t.cell_rate * cfg.line_rate_ratio,
                    t.fault_seed,
                ))
                .with_fault_tolerance(FaultTolerance::off()),
            _ => cfg.tile.clone(),
        };
        let (model, plan) = arm_parts(t.pair, t.arm);
        let mut analog = plan.deploy(&model.zoo.model, tile, cfg.seed ^ 0x33);
        let accuracy = analog_accuracy(&mut analog, &t.pair.base.episodes);
        HwaStudyRow {
            model: t.pair.base.zoo.name.clone(),
            arm: t.arm.to_string(),
            grid: t.grid.to_string(),
            noise: t.noise.map_or("all", NonIdeality::name).to_string(),
            severity: t.severity,
            mse: t.mse,
            cell_rate: t.cell_rate,
            digital: t.digital,
            accuracy,
        }
    };
    match metrics {
        Some(m) => crate::sweep::parallel_sweep_recorded(&tasks, m, score),
        None => crate::sweep::parallel_sweep(&tasks, score),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{prepare, prepare_built};
    use nora_nn::zoo::{robust_variant, tiny_spec, ModelFamily, RobustSpec};

    #[test]
    fn study_covers_all_arms_and_grids() {
        let spec = tiny_spec(ModelFamily::OptLike, 77);
        let robust_spec = robust_variant(
            &spec,
            Some(RobustSpec {
                steps: 80,
                lr: 3e-4,
                noise_scale: 1.0,
            }),
        );
        let pairs = vec![HwaPair {
            base: prepare(&spec, 40, 6),
            robust: prepare_built(robust_spec.build(), 40, 6),
        }];
        let cfg = HwaStudyConfig {
            tile: TileConfig::paper_default().with_tile_size(64, 64),
            noises: vec![NonIdeality::AdditiveOutputNoise],
            mse_points: 2,
            cell_rates: vec![0.02],
            line_rate_ratio: 0.1,
            seed: 5,
        };
        let rows = hwa_study(&pairs, &cfg);
        // table2: 4 arms; sensitivity: 1×2×4; fault: 1×4.
        assert_eq!(rows.len(), 4 + 8 + 4);
        for arm in ARMS {
            assert!(rows.iter().any(|r| r.arm == arm), "missing arm {arm}");
        }
        for grid in ["table2", "sensitivity", "fault"] {
            assert!(rows.iter().any(|r| r.grid == grid), "missing grid {grid}");
        }
        assert!(rows
            .iter()
            .all(|r| r.accuracy.is_finite() && (0.0..=1.0).contains(&r.accuracy)));
        // All rows of one model share the base model name; digital
        // baselines are per-arm but constant within an arm.
        for arm in ARMS {
            let digs: Vec<f64> = rows
                .iter()
                .filter(|r| r.arm == arm)
                .map(|r| r.digital)
                .collect();
            assert!(digs.windows(2).all(|w| w[0] == w[1]), "{arm} digital drifted");
        }
        let table = HwaStudyRow::table(&rows).render();
        assert!(table.contains("hwa+nora"));
        let csv = HwaStudyRow::csv(&rows);
        assert_eq!(csv.lines().count(), rows.len() + 1);
        assert!(csv.starts_with("model,arm,grid"));
    }

    /// Golden-schema check: the committed `results/hwa_study.csv` was
    /// written with the current CSV schema. A column rename or reorder must
    /// fail here until the results file is regenerated alongside it.
    #[test]
    fn csv_schema_matches_committed_results_file() {
        let header = HwaStudyRow::csv(&[]);
        let header = header.trim_end();
        let committed = std::fs::read_to_string(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../results/hwa_study.csv"
        ))
        .expect("committed results/hwa_study.csv");
        let first = committed.lines().next().expect("non-empty results file");
        assert_eq!(
            first, header,
            "results/hwa_study.csv header drifted from HwaStudyRow::csv"
        );
    }
}
