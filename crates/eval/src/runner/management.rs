//! "Challenge 2" motivation study (paper Fig. 1 and §II-A): the dynamic
//! noise-management and bound-management techniques that rescue
//! conventional DNNs on analog CIM become ineffective on LLMs, because with
//! heavy-tailed activations *every* choice of the linear factor `α` either
//! clips the outliers or starves the bulk of resolution — while NORA fixes
//! the distribution itself.

use crate::report::{pct, Table};
use crate::runner::PreparedModel;
use crate::tasks::analog_accuracy;
use nora_cim::{BoundManagement, NoiseManagement, TileConfig};
use nora_core::RescalePlan;

/// One (model, policy) measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct ManagementRow {
    /// Model name.
    pub model: String,
    /// Human-readable policy description.
    pub policy: String,
    /// Whether the NORA smoothing was also installed.
    pub with_nora: bool,
    /// Accuracy under Table II noise with this policy.
    pub accuracy: f64,
    /// Digital baseline.
    pub digital: f64,
}

impl ManagementRow {
    /// Renders rows as a table.
    pub fn table(rows: &[ManagementRow]) -> Table {
        let mut t = Table::new(&["model", "policy", "nora", "acc%", "loss_pp"]).with_title(
            "Fig. 1 'Challenge 2' — noise/bound management vs NORA on LLM-like data",
        );
        for r in rows {
            t.row_owned(vec![
                r.model.clone(),
                r.policy.clone(),
                if r.with_nora { "yes" } else { "no" }.to_string(),
                pct(r.accuracy),
                format!("{:+.1}", 100.0 * (r.digital - r.accuracy)),
            ]);
        }
        t
    }
}

/// The policy grid: every noise-management flavour with and without
/// iterative bound management.
fn policies() -> Vec<(String, NoiseManagement, BoundManagement)> {
    let nms = [
        ("nm=abs_max", NoiseManagement::AbsMax),
        ("nm=avg_abs_max(3)", NoiseManagement::AvgAbsMax(3.0)),
        ("nm=avg_abs_max(10)", NoiseManagement::AvgAbsMax(10.0)),
        ("nm=percentile(99)", NoiseManagement::Percentile(99.0)),
        ("nm=percentile(95)", NoiseManagement::Percentile(95.0)),
    ];
    let bms = [
        ("bm=none", BoundManagement::None),
        ("bm=iter", BoundManagement::Iterative { max_rounds: 6 }),
    ];
    let mut out = Vec::new();
    for (nn, nm) in nms {
        for (bn, bm) in bms {
            out.push((format!("{nn},{bn}"), nm, bm));
        }
    }
    out
}

/// Runs the management ablation: every dynamic-range policy, naive, plus
/// the best policy combined with NORA.
pub fn management_ablation(prepared: &[PreparedModel], seed: u64) -> Vec<ManagementRow> {
    let mut rows = Vec::new();
    for p in prepared {
        for (name, nm, bm) in policies() {
            let mut tile = TileConfig::paper_default();
            tile.noise_management = nm;
            tile.bound_management = bm;
            let mut naive = RescalePlan::naive().deploy(&p.zoo.model, tile.clone(), seed);
            rows.push(ManagementRow {
                model: p.zoo.name.clone(),
                policy: name.clone(),
                with_nora: false,
                accuracy: analog_accuracy(&mut naive, &p.episodes),
                digital: p.digital_acc,
            });
        }
        // NORA with the paper-default policy, for contrast.
        let mut nora = p
            .nora_plan
            .deploy(&p.zoo.model, TileConfig::paper_default(), seed);
        rows.push(ManagementRow {
            model: p.zoo.name.clone(),
            policy: "nm=abs_max,bm=iter (default)".to_string(),
            with_nora: true,
            accuracy: analog_accuracy(&mut nora, &p.episodes),
            digital: p.digital_acc,
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::prepare;
    use nora_nn::zoo::{tiny_spec, ModelFamily};

    #[test]
    fn no_management_policy_matches_nora_on_outlier_model() {
        let prepared = vec![prepare(&tiny_spec(ModelFamily::OptLike, 555), 60, 5)];
        let rows = management_ablation(&prepared, 5);
        // 10 policies + 1 NORA row.
        assert_eq!(rows.len(), 11);
        let best_mgmt = rows
            .iter()
            .filter(|r| !r.with_nora)
            .map(|r| r.accuracy)
            .fold(f64::NEG_INFINITY, f64::max);
        let nora = rows.iter().find(|r| r.with_nora).unwrap().accuracy;
        assert!(
            nora >= best_mgmt,
            "nora {nora} should be at least the best management policy {best_mgmt}"
        );
        assert!(ManagementRow::table(&rows).render().contains("avg_abs_max"));
    }
}
