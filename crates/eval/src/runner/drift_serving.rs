//! Long-horizon "serving day" study: accuracy and throughput over virtual
//! time under PCM conductance drift, with and without online mitigation.
//!
//! Each arm serves a stream of workload segments through a maintained
//! [`nora_serve::GenerationEngine`] over one analog deployment while the
//! engine's virtual clock advances drift between decode rounds. The
//! *mitigated* arm runs the full ladder — periodic α̂ probe recalibration
//! plus background spare-tile rotation of drift-flagged tiles — while the
//! *unmitigated* arm drifts under the identical schedule with both
//! mitigations disabled. Between segments the engine is dropped (it
//! mutably borrows the deployment for the accuracy probe) and its
//! [`MaintenanceState`] carries the clock and in-flight rotations into the
//! next segment, so the horizon reads as one long serve.
//!
//! Both arms share one programmed checkpoint per (model, fault rate): the
//! deployment is programmed once and each arm restores a clone, so the
//! comparison sees identical hardware — same defects, same programming
//! errors, same per-cell drift dispersion streams.

use crate::report::{pct, Table};
use crate::runner::PreparedModel;
use crate::serving::ServingWorkload;
use crate::tasks::analog_accuracy;
use nora_cim::{FaultPlan, FaultTolerance, TileConfig, TileEventKind};
use nora_nn::deploy::AnalogTransformerLm;
use nora_nn::generate::Sampling;
use nora_obs::{edges, Metrics};
use nora_serve::{AnalogBackend, EngineConfig, GenerationEngine, MaintenanceConfig};

/// Configuration of the long-horizon drift-serving study.
#[derive(Debug, Clone)]
pub struct DriftServingConfig {
    /// Base tile configuration (default: the paper's Table II).
    pub tile: TileConfig,
    /// Fault-tolerance policy for every arm (default:
    /// [`FaultTolerance::protected`] with extra spare tiles, sized for a
    /// full day of rotations).
    pub fault_tolerance: FaultTolerance,
    /// Stuck-cell rates to sweep (fraction of cells).
    pub cell_rates: Vec<f64>,
    /// Dead-line / stuck-ADC rate as a fraction of the cell rate.
    pub line_rate_ratio: f64,
    /// Virtual horizon in seconds (default 10⁶ s ≈ 11.6 days of decode).
    pub horizon: f64,
    /// Virtual seconds each model decode step advances the clock by.
    pub secs_per_decode_step: f64,
    /// Interval between drift re-reads (virtual seconds).
    pub drift_interval: f64,
    /// Interval between α̂ recalibration passes in the mitigated arm.
    pub recalibration_interval: f64,
    /// Virtual latency of one background spare-tile rotation.
    pub rotation_latency: f64,
    /// Requests per workload segment.
    pub requests_per_segment: usize,
    /// Prompt length of each request.
    pub prompt_len: usize,
    /// Continuation tokens per request.
    pub new_tokens: usize,
    /// Engine batch width.
    pub max_batch: usize,
    /// Deployment seed (also salts the per-rate fault-plan seed).
    pub seed: u64,
}

impl Default for DriftServingConfig {
    fn default() -> Self {
        let mut fault_tolerance = FaultTolerance::protected();
        // A long horizon consumes spares on drift-flagged rotations, not
        // just on programming-time defects — provision accordingly.
        fault_tolerance.spare_tiles = 4;
        Self {
            tile: TileConfig::paper_default(),
            fault_tolerance,
            cell_rates: vec![0.0, 0.01],
            line_rate_ratio: 0.1,
            horizon: 1e6,
            secs_per_decode_step: 500.0,
            drift_interval: 25_000.0,
            recalibration_interval: 100_000.0,
            rotation_latency: 5_000.0,
            requests_per_segment: 6,
            prompt_len: 3,
            new_tokens: 24,
            max_batch: 6,
            seed: 0xd5e7,
        }
    }
}

/// One point on an arm's accuracy-over-time curve. Counters are cumulative
/// from the start of the arm, so the final row of an arm summarizes its
/// whole horizon.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftServingRow {
    /// Model name.
    pub model: String,
    /// Stuck-cell rate of this arm.
    pub cell_rate: f64,
    /// Whether online mitigation (recalibration + rotation) was active.
    pub mitigated: bool,
    /// Virtual seconds served when this row was measured.
    pub t_virtual: f64,
    /// Next-token accuracy of the deployment at `t_virtual`.
    pub accuracy: f64,
    /// FP32 digital baseline accuracy.
    pub digital: f64,
    /// Wall-clock generated tokens per second of the segment ending here
    /// (0 for the t = 0 row). Telemetry only — run-to-run variable.
    pub tokens_per_sec: f64,
    /// ABFT flags raised so far.
    pub flags: u64,
    /// α̂ recalibration passes run so far.
    pub recalibrations: u64,
    /// Background tile rotations completed so far.
    pub rotations: u64,
    /// Decode rounds served degraded (suspect tiles in the batch or
    /// rotations in flight) so far.
    pub degraded_rounds: u64,
    /// Spare tiles consumed so far.
    pub spares_used: u32,
    /// Tile slots currently on exact digital fallback.
    pub fallbacks: usize,
}

impl DriftServingRow {
    /// Renders rows as the drift-serving table.
    pub fn table(rows: &[DriftServingRow]) -> Table {
        let mut t = Table::new(&[
            "model", "cell_rate", "mitigated", "t_ksec", "acc%", "loss_pp", "tok/s", "recal",
            "rot", "spares", "fallbacks",
        ])
        .with_title("Drift serving — accuracy over a long horizon, ±online mitigation");
        for r in rows {
            t.row_owned(vec![
                r.model.clone(),
                format!("{:.3}", r.cell_rate),
                if r.mitigated { "yes" } else { "no" }.to_string(),
                format!("{:.0}", r.t_virtual / 1e3),
                pct(r.accuracy),
                format!("{:+.1}", 100.0 * (r.digital - r.accuracy)),
                format!("{:.0}", r.tokens_per_sec),
                r.recalibrations.to_string(),
                r.rotations.to_string(),
                r.spares_used.to_string(),
                r.fallbacks.to_string(),
            ]);
        }
        t
    }

    /// Renders rows as a CSV document (header + one line per row).
    pub fn csv(rows: &[DriftServingRow]) -> String {
        let mut out = String::from(
            "model,cell_rate,mitigated,t_virtual,accuracy,digital,tokens_per_sec,\
             flags,recalibrations,rotations,degraded_rounds,spares_used,fallbacks\n",
        );
        for r in rows {
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},{},{},{},{},{}\n",
                r.model,
                r.cell_rate,
                r.mitigated,
                r.t_virtual,
                r.accuracy,
                r.digital,
                r.tokens_per_sec,
                r.flags,
                r.recalibrations,
                r.rotations,
                r.degraded_rounds,
                r.spares_used,
                r.fallbacks,
            ));
        }
        out
    }
}

fn flag_count(analog: &AnalogTransformerLm) -> u64 {
    analog
        .fault_events()
        .iter()
        .filter(|(_, e)| matches!(e.kind, TileEventKind::Flagged { .. }))
        .count() as u64
}

/// Serves one arm to the horizon, probing accuracy after every segment.
fn run_arm(
    p: &PreparedModel,
    cell_rate: f64,
    checkpoint: &AnalogTransformerLm,
    mitigated: bool,
    cfg: &DriftServingConfig,
) -> (Vec<DriftServingRow>, Metrics) {
    let mut metrics = Metrics::new();
    let mut analog = checkpoint.clone();
    // Both arms clone the held-out corpus at the same generator state, so
    // they serve byte-identical workload segments.
    let mut corpus = p.zoo.corpus.clone();
    let maintenance = {
        let base = MaintenanceConfig::new(cfg.secs_per_decode_step, cfg.drift_interval);
        if mitigated {
            base.with_recalibration(cfg.recalibration_interval)
                .with_rotation(cfg.rotation_latency)
        } else {
            base
        }
    };
    // t = 0 probe. Deferred recovery is not yet armed, so programming-time
    // defects burn in through the inline ladder here — identically in both
    // arms, mirroring a post-deployment acceptance test.
    let t0 = analog_accuracy(&mut analog, &p.episodes);
    let mut rows = vec![DriftServingRow {
        model: p.zoo.name.clone(),
        cell_rate,
        mitigated,
        t_virtual: 0.0,
        accuracy: t0,
        digital: p.digital_acc,
        tokens_per_sec: 0.0,
        flags: flag_count(&analog),
        recalibrations: 0,
        rotations: 0,
        degraded_rounds: 0,
        spares_used: analog.spares_used(),
        fallbacks: analog.digital_fallback_count(),
    }];
    let mut state = None;
    let (mut recal_total, mut rot_total, mut degraded_total) = (0u64, 0u64, 0u64);
    // Hard cap against a degenerate clock mapping; the horizon check below
    // is the intended exit.
    for _ in 0..4096 {
        let workload = ServingWorkload::from_corpus(
            &mut corpus,
            cfg.requests_per_segment,
            cfg.prompt_len,
            cfg.new_tokens,
            Sampling::Temperature(1.2),
        );
        let mut engine = GenerationEngine::new(
            AnalogBackend::new(&mut analog),
            EngineConfig::with_max_batch(cfg.max_batch).with_maintenance(maintenance),
        );
        if let Some(s) = state.take() {
            engine.resume_maintenance(s);
        }
        for request in &workload.requests {
            engine.submit(request.clone());
        }
        engine.run_to_completion();
        let now = engine.virtual_now();
        let tokens_per_sec = engine.report().tokens_per_sec();
        recal_total += engine.metrics().counter("serve.maint.recalibrations");
        rot_total += engine.metrics().counter("serve.maint.rotations");
        degraded_total += engine.metrics().counter("serve.maint.degraded_rounds");
        metrics.merge(engine.metrics());
        state = engine.take_maintenance_state();
        drop(engine);
        let accuracy = analog_accuracy(&mut analog, &p.episodes);
        metrics.observe("eval.drift_serving.accuracy", edges::RATE, accuracy);
        metrics.observe(
            "eval.drift_serving.tokens_per_sec",
            edges::THROUGHPUT,
            tokens_per_sec,
        );
        rows.push(DriftServingRow {
            model: p.zoo.name.clone(),
            cell_rate,
            mitigated,
            t_virtual: now,
            accuracy,
            digital: p.digital_acc,
            tokens_per_sec,
            flags: flag_count(&analog),
            recalibrations: recal_total,
            rotations: rot_total,
            degraded_rounds: degraded_total,
            spares_used: analog.spares_used(),
            fallbacks: analog.digital_fallback_count(),
        });
        if now >= cfg.horizon {
            break;
        }
    }
    (rows, metrics)
}

/// Runs the long-horizon serving study on every prepared model.
///
/// See [`drift_serving_study_recorded`]; this entry point drops the
/// metrics.
pub fn drift_serving_study(
    prepared: &[PreparedModel],
    cfg: &DriftServingConfig,
) -> Vec<DriftServingRow> {
    let mut scratch = Metrics::new();
    drift_serving_study_recorded(prepared, cfg, &mut scratch)
}

/// Runs the long-horizon serving study, merging per-arm accuracy and
/// throughput histograms plus the engines' `serve.maint.*` counters into
/// `metrics`. Rows are identical to [`drift_serving_study`] — recording is
/// observation-transparent.
///
/// Each (model, cell rate) pair is programmed **once**; both arms restore
/// the checkpoint, so mitigated vs unmitigated is an apples-to-apples
/// comparison on identical hardware. Arms run through
/// [`crate::sweep::parallel_sweep`] and rows come back in task order
/// (model → rate → unmitigated, mitigated) at any thread count.
pub fn drift_serving_study_recorded(
    prepared: &[PreparedModel],
    cfg: &DriftServingConfig,
    metrics: &mut Metrics,
) -> Vec<DriftServingRow> {
    let mut checkpoints = Vec::new();
    for p in prepared {
        for (i, &cell_rate) in cfg.cell_rates.iter().enumerate() {
            let fault_seed = cfg.seed ^ ((i as u64 + 1) << 32);
            let tile = cfg
                .tile
                .clone()
                .with_fault_plan(FaultPlan::uniform(
                    cell_rate,
                    cell_rate * cfg.line_rate_ratio,
                    fault_seed,
                ))
                .with_fault_tolerance(cfg.fault_tolerance.clone());
            let analog = p.nora_plan.deploy(&p.zoo.model, tile, cfg.seed ^ 0x44);
            checkpoints.push((p, cell_rate, analog));
        }
    }
    let mut tasks = Vec::new();
    for (p, cell_rate, checkpoint) in &checkpoints {
        for mitigated in [false, true] {
            tasks.push((*p, *cell_rate, checkpoint, mitigated));
        }
    }
    let results = crate::sweep::parallel_sweep(&tasks, |(p, cell_rate, checkpoint, mitigated)| {
        run_arm(p, *cell_rate, checkpoint, *mitigated, cfg)
    });
    let mut rows = Vec::new();
    for (arm_rows, arm_metrics) in results {
        rows.extend(arm_rows);
        metrics.merge(&arm_metrics);
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::prepare;
    use nora_nn::zoo::{tiny_spec, ModelFamily};

    fn small_cfg() -> DriftServingConfig {
        DriftServingConfig {
            tile: TileConfig::paper_default().with_tile_size(64, 64),
            cell_rates: vec![0.0],
            horizon: 200_000.0,
            secs_per_decode_step: 500.0,
            drift_interval: 10_000.0,
            recalibration_interval: 50_000.0,
            rotation_latency: 2_000.0,
            requests_per_segment: 4,
            new_tokens: 16,
            max_batch: 4,
            seed: 9,
            ..DriftServingConfig::default()
        }
    }

    #[test]
    fn study_produces_monotone_curves_for_both_arms() {
        let prepared = vec![prepare(&tiny_spec(ModelFamily::OptLike, 113), 40, 4)];
        let cfg = small_cfg();
        let mut metrics = Metrics::new();
        let rows = drift_serving_study_recorded(&prepared, &cfg, &mut metrics);
        for mitigated in [false, true] {
            let arm: Vec<_> = rows.iter().filter(|r| r.mitigated == mitigated).collect();
            assert!(arm.len() >= 2, "arm needs a t=0 row and at least one segment");
            assert_eq!(arm[0].t_virtual, 0.0);
            assert!(arm.windows(2).all(|w| w[0].t_virtual < w[1].t_virtual));
            assert!(arm.last().unwrap().t_virtual >= cfg.horizon);
            assert!(arm.iter().all(|r| (0.0..=1.0).contains(&r.accuracy)));
        }
        // Only the mitigated arm recalibrates.
        let last = |m: bool| rows.iter().rfind(|r| r.mitigated == m).unwrap();
        assert!(last(true).recalibrations > 0);
        assert_eq!(last(false).recalibrations, 0);
        assert_eq!(last(false).rotations, 0);
        // The recorder saw one accuracy observation per post-segment probe.
        let hist = metrics
            .histograms()
            .find(|(name, _)| *name == "eval.drift_serving.accuracy")
            .expect("accuracy histogram")
            .1;
        let probes = rows.iter().filter(|r| r.t_virtual > 0.0).count() as u64;
        assert_eq!(hist.count(), probes);
        // Observation transparency: the recorder must not change the rows.
        let unrecorded = drift_serving_study(&prepared, &cfg);
        assert_eq!(unrecorded.len(), rows.len());
        for (a, b) in unrecorded.iter().zip(&rows) {
            // Wall-clock throughput is run-to-run variable; everything
            // deterministic must match exactly.
            assert_eq!(a.accuracy, b.accuracy, "{a:?} vs {b:?}");
            assert_eq!(a.t_virtual, b.t_virtual);
            assert_eq!(
                (a.flags, a.recalibrations, a.rotations, a.degraded_rounds),
                (b.flags, b.recalibrations, b.rotations, b.degraded_rounds)
            );
        }
        assert!(DriftServingRow::table(&rows).render().contains("mitigated"));
    }

    /// Satellite regression: the α̂ probe must exclude quarantined tiles.
    /// At 2% stuck cells the deferred-mode ladder flags tiles Suspect; a
    /// recalibration pass right after must report them excluded and still
    /// produce a sane global estimate from the healthy tiles.
    #[test]
    fn recalibration_excludes_quarantined_tiles_under_faults() {
        let p = prepare(&tiny_spec(ModelFamily::OptLike, 114), 30, 4);
        let tile = TileConfig::paper_default()
            .with_tile_size(64, 64)
            .with_fault_plan(FaultPlan::uniform(0.02, 0.002, 0xfee1))
            .with_fault_tolerance(FaultTolerance::protected());
        let mut analog = p.nora_plan.deploy(&p.zoo.model, tile, 11);
        analog.set_deferred_recovery(true);
        analog.capture_probe_references();
        // Drive traffic so the ABFT ladder quarantines the faulty tiles.
        let _ = analog_accuracy(&mut analog, &p.episodes);
        assert!(
            !analog.suspect_tiles().is_empty(),
            "2% stuck cells should leave suspect tiles in deferred mode"
        );
        let outcomes = analog.recalibrate();
        assert!(!outcomes.is_empty(), "no layer produced an estimate");
        let excluded: usize = outcomes.iter().map(|(_, o)| o.excluded).sum();
        assert!(excluded > 0, "quarantined tiles were not excluded");
        for (id, o) in &outcomes {
            assert!(o.probed > 0, "{id:?} estimated from zero tiles");
            assert!(
                (0.5..=2.0).contains(&o.alpha),
                "{id:?} alpha {} skewed despite quarantine exclusion",
                o.alpha
            );
        }
    }

    /// Golden-schema check: the committed `results/drift_serving.csv` was
    /// written with the current CSV schema. A column rename or reorder must
    /// fail here until the results file is regenerated alongside it.
    #[test]
    fn csv_schema_matches_committed_results_file() {
        let header = DriftServingRow::csv(&[]);
        let header = header.trim_end();
        let committed = std::fs::read_to_string(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../results/drift_serving.csv"
        ))
        .expect("committed results/drift_serving.csv");
        let first = committed.lines().next().expect("non-empty results file");
        assert_eq!(
            first, header,
            "results/drift_serving.csv header drifted from DriftServingRow::csv"
        );
    }
}
