//! N:M sparsity study: accuracy vs pattern vs decode throughput vs energy.
//!
//! Each row prunes the prepared model to one block-wise N:M pattern
//! (uniform across layers, plus one `auto` row from the outlier-aware
//! selector validated by the analytic evaluator), then measures:
//!
//! * exact digital next-token accuracy on the held-out episodes,
//! * the analytic evaluator's predicted accuracy on the study tile config
//!   (the score the selector optimises; the evaluator is rebuilt on each
//!   pruned candidate so its captured logits carry the pruning damage),
//! * KV-cached greedy decode throughput through the packed sparse kernels
//!   and through the dense reference on the *same masked weights* — the
//!   speedup column is sparse/dense on identical numerics (the two paths
//!   are bit-identical, so the ratio is pure kernel win),
//! * first-order decode energy from [`layer_decode_cost`], which charges
//!   only active (non-pruned) rows.

use std::time::Instant;

use crate::analytic::{layer_decode_cost, AnalyticEvaluator, LayerCost};
use crate::report::{pct, Table};
use crate::runner::PreparedModel;
use crate::tasks::digital_accuracy;
use nora_cim::{AreaModel, EnergyModel, TileConfig};
use nora_core::{select_sparsity, SparsityConfig, SparsityPlan};
use nora_nn::{KvCache, TransformerLm};
use nora_tensor::NmPattern;

/// Configuration of the sparsity sweep.
#[derive(Debug, Clone)]
pub struct SparsityStudyConfig {
    /// Uniform patterns to sweep (one row each).
    pub patterns: Vec<NmPattern>,
    /// Accuracy budget handed to the `auto` selector row (absolute drop in
    /// analytic predicted accuracy).
    pub auto_budget: f64,
    /// Tokens per timed greedy decode loop.
    pub decode_tokens: usize,
    /// Tile configuration used for the analytic prediction and the energy
    /// column.
    pub tile: TileConfig,
}

impl Default for SparsityStudyConfig {
    fn default() -> Self {
        Self {
            patterns: vec![
                NmPattern::Dense,
                NmPattern::N4M8,
                NmPattern::N2M4,
                NmPattern::N1M4,
            ],
            auto_budget: 0.01,
            decode_tokens: 512,
            tile: TileConfig::paper_default(),
        }
    }
}

/// One (model, pattern) measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct SparsityStudyRow {
    /// Model name.
    pub model: String,
    /// Pattern label (`dense`, `4:8`, `2:4`, `1:4`, or `auto`).
    pub pattern: String,
    /// Kept-weight fraction of the plan across all linears.
    pub density: f64,
    /// FP32 dense digital baseline accuracy.
    pub digital: f64,
    /// Digital next-token accuracy of the pruned model.
    pub accuracy: f64,
    /// Analytic predicted accuracy of the pruned model on the study tile.
    pub predicted: f64,
    /// Greedy decode throughput through the packed sparse kernels, tok/s.
    pub tokens_per_sec: f64,
    /// Same decode on the dense reference kernel (identical masked
    /// weights), tok/s.
    pub dense_tokens_per_sec: f64,
    /// `tokens_per_sec / dense_tokens_per_sec`.
    pub speedup: f64,
    /// First-order decode energy (active rows only), nJ per token.
    pub energy_nj: f64,
}

impl SparsityStudyRow {
    /// Accuracy loss vs the dense digital baseline, percentage points.
    pub fn loss_pp(&self) -> f64 {
        100.0 * (self.digital - self.accuracy)
    }

    /// Renders rows as the sparsity-study table.
    pub fn table(rows: &[SparsityStudyRow]) -> Table {
        let mut t = Table::new(&[
            "model", "pattern", "density", "digital%", "accuracy%", "loss_pp", "pred%",
            "tok/s", "dense_tok/s", "speedup", "nJ/tok",
        ])
        .with_title("Sparsity study — accuracy vs N:M pattern vs decode throughput");
        for r in rows {
            t.row_owned(vec![
                r.model.clone(),
                r.pattern.clone(),
                format!("{:.3}", r.density),
                pct(r.digital),
                pct(r.accuracy),
                format!("{:+.1}", r.loss_pp()),
                pct(r.predicted),
                format!("{:.0}", r.tokens_per_sec),
                format!("{:.0}", r.dense_tokens_per_sec),
                format!("{:.2}x", r.speedup),
                format!("{:.2}", r.energy_nj),
            ]);
        }
        t
    }

    /// Renders rows as a CSV document (header + one line per row).
    pub fn csv(rows: &[SparsityStudyRow]) -> String {
        let mut out = String::from(
            "model,pattern,density,digital,accuracy,predicted,tokens_per_sec,\
             dense_tokens_per_sec,speedup,energy_nj\n",
        );
        for r in rows {
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},{},{}\n",
                r.model,
                r.pattern,
                r.density,
                r.digital,
                r.accuracy,
                r.predicted,
                r.tokens_per_sec,
                r.dense_tokens_per_sec,
                r.speedup,
                r.energy_nj,
            ));
        }
        out
    }
}

/// Greedy KV-cached decode throughput, tokens per wall-clock second.
fn decode_tokens_per_sec(model: &TransformerLm, tokens: usize) -> f64 {
    let vocab = model.config().vocab;
    let mut cache = KvCache::new(model);
    let mut tok = 1 % vocab;
    let start = Instant::now();
    for _ in 0..tokens.max(1) {
        let logits = model.decode_step(tok, &mut cache);
        tok = logits
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0);
    }
    std::hint::black_box(tok);
    tokens.max(1) as f64 / start.elapsed().as_secs_f64().max(1e-9)
}

fn measure(
    p: &PreparedModel,
    cfg: &SparsityStudyConfig,
    label: &str,
    plan: &SparsityPlan,
) -> SparsityStudyRow {
    let mut pruned = p.zoo.model.clone();
    plan.apply(&mut pruned, Some(&p.calibration));
    let accuracy = digital_accuracy(&pruned, &p.episodes);
    // The evaluator is rebuilt on the pruned model so its captured clean
    // logits carry the pruning damage — an evaluator built on the dense
    // model would predict near-baseline accuracy for any plan.
    let predicted = AnalyticEvaluator::new(&pruned, &p.episodes, 8)
        .predict(&pruned, &p.nora_plan, &cfg.tile)
        .accuracy;
    // Dense reference: strip the packed replicas, keep the masked weights —
    // the dense kernel then computes the exact same numbers.
    let mut dense_ref = pruned.clone();
    for id in dense_ref.linear_ids() {
        dense_ref.linear_mut(id).sparse = None;
    }
    // Best-of-3 alternating passes: peak throughput on each path, robust to
    // frequency scaling and cache warmup drift between the two timings.
    let mut tokens_per_sec = 0.0f64;
    let mut dense_tokens_per_sec = 0.0f64;
    for _ in 0..3 {
        tokens_per_sec = tokens_per_sec.max(decode_tokens_per_sec(&pruned, cfg.decode_tokens));
        dense_tokens_per_sec =
            dense_tokens_per_sec.max(decode_tokens_per_sec(&dense_ref, cfg.decode_tokens));
    }

    let energy = EnergyModel {
        adc_steps: cfg.tile.adc.steps().unwrap_or(128),
        ..EnergyModel::default()
    };
    let area = AreaModel::default();
    let mut cost = LayerCost::default();
    for id in pruned.linear_ids() {
        cost.accumulate(layer_decode_cost(
            &pruned.linear(id).weight.value,
            p.nora_plan.smoothing_for(id),
            &cfg.tile,
            &energy,
            &area,
        ));
    }

    SparsityStudyRow {
        model: p.zoo.name.clone(),
        pattern: label.to_string(),
        density: plan.density(&p.zoo.model),
        digital: p.digital_acc,
        accuracy,
        predicted,
        tokens_per_sec,
        dense_tokens_per_sec,
        speedup: tokens_per_sec / dense_tokens_per_sec.max(1e-9),
        energy_nj: cost.energy_pj / 1e3,
    }
}

/// Runs the sparsity sweep for one prepared model: one row per uniform
/// pattern in `cfg.patterns` plus the outlier-aware `auto` row, whose plan
/// comes from [`select_sparsity`] scored by the analytic evaluator on
/// `cfg.tile` (exactly the "validate before committing a plan" contract).
///
/// Rows measure sequentially — the throughput columns are wall-clock
/// timings and must not contend with each other for cores.
pub fn sparsity_study(
    p: &PreparedModel,
    cfg: &SparsityStudyConfig,
) -> Vec<SparsityStudyRow> {
    let mut plans: Vec<(String, SparsityPlan)> = cfg
        .patterns
        .iter()
        .map(|&pat| {
            (
                pat.label().to_string(),
                SparsityPlan::uniform(&p.zoo.model, pat),
            )
        })
        .collect();
    let sel_cfg = SparsityConfig {
        max_accuracy_drop: cfg.auto_budget,
        ..SparsityConfig::default()
    };
    // Validation rebuilds the analytic evaluator on every pruned candidate:
    // the captured clean logits then reflect the candidate's own functional
    // damage, so the selector sees real accuracy loss rather than the dense
    // model's near-perfect score with noise folded in.
    let auto = select_sparsity(&p.zoo.model, &p.calibration, &sel_cfg, |m| {
        AnalyticEvaluator::new(m, &p.episodes, 8)
            .predict(m, &p.nora_plan, &cfg.tile)
            .accuracy
    });
    plans.push(("auto".to_string(), auto));

    plans
        .iter()
        .map(|(label, plan)| measure(p, cfg, label, plan))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::prepare;
    use nora_nn::zoo::{tiny_spec, ModelFamily};

    #[test]
    fn study_rows_cover_patterns_and_stay_bit_identical_to_dense() {
        let p = prepare(&tiny_spec(ModelFamily::OptLike, 88), 30, 4);
        let cfg = SparsityStudyConfig {
            patterns: vec![NmPattern::Dense, NmPattern::N2M4],
            auto_budget: 0.02,
            decode_tokens: 8,
            ..SparsityStudyConfig::default()
        };
        let rows = sparsity_study(&p, &cfg);
        assert_eq!(rows.len(), 3); // dense, 2:4, auto
        assert_eq!(rows[0].pattern, "dense");
        assert_eq!(rows[1].pattern, "2:4");
        assert_eq!(rows[2].pattern, "auto");
        assert!((rows[0].density - 1.0).abs() < 1e-12);
        assert!((rows[1].density - 0.5).abs() < 1e-9);
        for r in &rows {
            assert!((0.0..=1.0).contains(&r.accuracy), "{r:?}");
            assert!((0.0..=1.0).contains(&r.predicted), "{r:?}");
            assert!(r.tokens_per_sec > 0.0 && r.dense_tokens_per_sec > 0.0);
            assert!(r.energy_nj > 0.0);
        }
        // Pruning shrinks the active-row energy charge.
        assert!(rows[1].energy_nj < rows[0].energy_nj);
        // The auto plan respects its own validation budget.
        assert!(rows[2].predicted >= rows[0].predicted - cfg.auto_budget - 1e-9);

        // Packed decode must be bit-identical to the dense reference on the
        // masked weights (the speedup column compares identical numerics).
        let plan = SparsityPlan::uniform(&p.zoo.model, NmPattern::N2M4);
        let mut pruned = p.zoo.model.clone();
        plan.apply(&mut pruned, Some(&p.calibration));
        let mut dense_ref = pruned.clone();
        for id in dense_ref.linear_ids() {
            dense_ref.linear_mut(id).sparse = None;
        }
        let mut c1 = KvCache::new(&pruned);
        let mut c2 = KvCache::new(&dense_ref);
        let mut tok = 1usize;
        for _ in 0..6 {
            let a = pruned.decode_step(tok, &mut c1);
            let b = dense_ref.decode_step(tok, &mut c2);
            assert_eq!(a, b, "sparse decode diverged from dense reference");
            tok = a
                .iter()
                .enumerate()
                .max_by(|x, y| x.1.total_cmp(y.1))
                .map(|(i, _)| i)
                .unwrap();
        }

        let table = SparsityStudyRow::table(&rows).render();
        assert!(table.contains("speedup"));
        let csv = SparsityStudyRow::csv(&rows);
        assert_eq!(csv.lines().count(), 4);
        assert!(csv.starts_with("model,pattern,density"));
    }

    /// Golden-schema check: the committed `results/sparsity_study.csv` was
    /// written with the current CSV schema. A column rename or reorder must
    /// fail here until the results file is regenerated alongside it.
    #[test]
    fn csv_schema_matches_committed_results_file() {
        let header = SparsityStudyRow::csv(&[]);
        let header = header.trim_end();
        let committed = std::fs::read_to_string(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../results/sparsity_study.csv"
        ))
        .expect("committed results/sparsity_study.csv");
        let first = committed.lines().next().expect("non-empty results file");
        assert_eq!(
            first, header,
            "results/sparsity_study.csv header drifted from SparsityStudyRow::csv"
        );
    }
}
