//! Per-layer analog sensitivity (paper §VII future work: "per-layer
//! evaluation").
//!
//! Deploys exactly one linear at a time onto noisy analog tiles (everything
//! else digital) and measures the accuracy drop: which layers can tolerate
//! the analog non-idealities, and which are the bottleneck? The complement
//! — everything analog *except* one layer — measures how much rescuing a
//! single layer buys.

use crate::report::{pct, Table};
use crate::runner::PreparedModel;
use crate::tasks::analog_accuracy;
use nora_cim::TileConfig;
use nora_core::RescalePlan;
use nora_nn::deploy::AnalogTransformerLm;
use nora_nn::LinearId;

/// Direction of the per-layer study.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LayerStudyMode {
    /// Only the probed layer is analog.
    OnlyThisAnalog,
    /// Every layer except the probed one is analog.
    AllButThisAnalog,
}

/// One per-layer measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerSensitivityRow {
    /// Model name.
    pub model: String,
    /// The probed layer.
    pub id: LinearId,
    /// Study direction.
    pub mode: LayerStudyMode,
    /// Whether NORA smoothing was installed on the analog layers.
    pub with_nora: bool,
    /// Accuracy.
    pub accuracy: f64,
    /// Digital baseline.
    pub digital: f64,
}

impl LayerSensitivityRow {
    /// Renders rows as a table.
    pub fn table(rows: &[LayerSensitivityRow]) -> Table {
        let mut t = Table::new(&["model", "layer", "mode", "nora", "acc%", "drop_pp"])
            .with_title("§VII extension — per-layer analog sensitivity (Table II noise)");
        for r in rows {
            t.row_owned(vec![
                r.model.clone(),
                format!("b{}.{}", r.id.block, r.id.kind.name()),
                match r.mode {
                    LayerStudyMode::OnlyThisAnalog => "only-this",
                    LayerStudyMode::AllButThisAnalog => "all-but-this",
                }
                .to_string(),
                if r.with_nora { "yes" } else { "no" }.to_string(),
                pct(r.accuracy),
                format!("{:+.1}", 100.0 * (r.digital - r.accuracy)),
            ]);
        }
        t
    }
}

/// Runs the per-layer study on one prepared model.
pub fn layer_sensitivity(
    p: &PreparedModel,
    mode: LayerStudyMode,
    with_nora: bool,
    tile: &TileConfig,
    seed: u64,
) -> Vec<LayerSensitivityRow> {
    let plan = if with_nora {
        p.nora_plan.clone()
    } else {
        RescalePlan::naive()
    };
    p.zoo
        .model
        .linear_ids()
        .into_iter()
        .map(|probe| {
            let mut analog = AnalogTransformerLm::with_layer_filter(
                &p.zoo.model,
                tile.clone(),
                plan.smoothing_map(),
                seed,
                |id| match mode {
                    LayerStudyMode::OnlyThisAnalog => id == probe,
                    LayerStudyMode::AllButThisAnalog => id != probe,
                },
            );
            LayerSensitivityRow {
                model: p.zoo.name.clone(),
                id: probe,
                mode,
                with_nora,
                accuracy: analog_accuracy(&mut analog, &p.episodes),
                digital: p.digital_acc,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::prepare;
    use nora_nn::zoo::{tiny_spec, ModelFamily};

    #[test]
    fn single_analog_layer_hurts_less_than_full_deployment() {
        let p = prepare(&tiny_spec(ModelFamily::OptLike, 777), 60, 5);
        let tile = TileConfig::paper_default();
        let rows = layer_sensitivity(&p, LayerStudyMode::OnlyThisAnalog, false, &tile, 7);
        assert_eq!(rows.len(), p.zoo.model.linear_ids().len());
        // Full naive deployment for comparison.
        let mut full = RescalePlan::naive().deploy(&p.zoo.model, tile, 7);
        let full_acc = analog_accuracy(&mut full, &p.episodes);
        let best_single = rows
            .iter()
            .map(|r| r.accuracy)
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(
            best_single >= full_acc,
            "one analog layer {best_single} should never be worse than all {full_acc}"
        );
        assert!(LayerSensitivityRow::table(&rows).render().contains("only-this"));
    }
}
