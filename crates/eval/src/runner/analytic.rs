//! Analytic-model validation: predicted vs Monte-Carlo accuracy on the
//! Fig. 3 (per-noise, MSE-matched) and Table II/III (full paper stack)
//! grids.
//!
//! Every sweep point deploys the model through the full tile simulator
//! (the ground truth) *and* scores the same `(plan, tile)` pair with
//! [`crate::analytic::AnalyticEvaluator`]; the committed
//! `results/analytic_validation.csv` records both numbers per point plus
//! the stated tolerance, so the accuracy claim of the fast evaluator is
//! auditable row by row.

use crate::analytic::AnalyticEvaluator;
use crate::noise_level::{paper_mse_grid, severity_for_mse, RefWorkload};
use crate::report::{pct, sci, Table};
use crate::runner::PreparedModel;
use crate::tasks::analog_accuracy;
use nora_cim::{NonIdeality, TileConfig};
use nora_core::RescalePlan;

/// Configuration of the validation sweep.
#[derive(Debug, Clone)]
pub struct AnalyticValidationConfig {
    /// Non-idealities for the Fig. 3 leg (default: all eight).
    pub noises: Vec<NonIdeality>,
    /// MSE-matched severity points per noise.
    pub mse_points: usize,
    /// Deployment seed (the simulator leg mirrors the sensitivity
    /// runner's `seed ^ 0x11` derivation).
    pub seed: u64,
    /// Rows of clean activations captured per linear for the analytic
    /// moments.
    pub capture_rows: usize,
}

impl Default for AnalyticValidationConfig {
    fn default() -> Self {
        Self {
            noises: NonIdeality::ALL.to_vec(),
            mse_points: 8,
            seed: 0x5e5e,
            capture_rows: 16,
        }
    }
}

/// One predicted-vs-simulated comparison point.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalyticValidationRow {
    /// Model name.
    pub model: String,
    /// Sweep setting: a non-ideality name (Fig. 3 leg) or
    /// `"paper_default"` (Table II/III leg).
    pub setting: String,
    /// Rescale plan: `"naive"` or `"nora"`.
    pub plan: String,
    /// Matched reference MSE (0 for the paper-default leg).
    pub target_mse: f64,
    /// Severity realising that MSE (0 for the paper-default leg).
    pub severity: f32,
    /// Analytic accuracy prediction.
    pub predicted: f64,
    /// Monte-Carlo simulated accuracy (ground truth).
    pub simulated: f64,
    /// FP32 digital baseline.
    pub digital: f64,
    /// Predicted logit-error σ.
    pub sigma_logit: f64,
    /// Stated tolerance for this point: ±10 pp plus two binomial standard
    /// errors of the simulated estimate.
    pub tolerance: f64,
}

impl AnalyticValidationRow {
    /// Whether the prediction lands within the stated tolerance.
    pub fn within(&self) -> bool {
        (self.predicted - self.simulated).abs() <= self.tolerance
    }

    /// Fraction of rows within their stated tolerance.
    pub fn within_fraction(rows: &[AnalyticValidationRow]) -> f64 {
        if rows.is_empty() {
            return 1.0;
        }
        rows.iter().filter(|r| r.within()).count() as f64 / rows.len() as f64
    }

    /// Renders rows as a report table.
    pub fn table(rows: &[AnalyticValidationRow]) -> Table {
        let mut t = Table::new(&[
            "setting", "plan", "ref_mse", "severity", "pred%", "sim%", "tol_pp", "ok",
        ])
        .with_title("Analytic noise propagation — predicted vs simulated accuracy");
        for r in rows {
            t.row_owned(vec![
                r.setting.clone(),
                r.plan.clone(),
                sci(r.target_mse),
                format!("{:.4}", r.severity),
                pct(r.predicted),
                pct(r.simulated),
                format!("{:.1}", 100.0 * r.tolerance),
                if r.within() { "yes" } else { "NO" }.to_string(),
            ]);
        }
        t
    }

    /// Renders rows as a CSV document (header + one line per row).
    pub fn csv(rows: &[AnalyticValidationRow]) -> String {
        let mut out = String::from(
            "model,setting,plan,target_mse,severity,predicted,simulated,\
             digital,sigma_logit,tolerance,within\n",
        );
        for r in rows {
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},{},{},{}\n",
                r.model,
                r.setting,
                r.plan,
                r.target_mse,
                r.severity,
                r.predicted,
                r.simulated,
                r.digital,
                r.sigma_logit,
                r.tolerance,
                r.within(),
            ));
        }
        out
    }
}

/// The stated tolerance of one comparison: ±10 percentage points of
/// modelling error plus two binomial standard errors of the Monte-Carlo
/// estimate over `episodes` episodes.
fn stated_tolerance(simulated: f64, episodes: usize) -> f64 {
    let p = simulated.clamp(0.0, 1.0);
    0.10 + 2.0 * (p * (1.0 - p) / episodes.max(1) as f64).sqrt()
}

/// Runs the validation sweep: the Fig. 3 per-noise grid under the naïve
/// plan plus the paper-default Table II/III points under both plans, each
/// scored analytically and by full simulation.
pub fn analytic_validation(
    prepared: &[PreparedModel],
    cfg: &AnalyticValidationConfig,
) -> Vec<AnalyticValidationRow> {
    let workload = RefWorkload::default_reference(cfg.seed);
    let grid = paper_mse_grid(cfg.mse_points);
    let evaluators: Vec<AnalyticEvaluator> = prepared
        .iter()
        .map(|p| AnalyticEvaluator::new(&p.zoo.model, &p.episodes, cfg.capture_rows))
        .collect();

    enum Leg {
        Fig3 { noise: NonIdeality, target_mse: f64, severity: f32 },
        Paper { nora: bool },
    }
    let mut tasks = Vec::new();
    for &noise in &cfg.noises {
        let severities: Vec<f32> = grid
            .iter()
            .map(|&mse| severity_for_mse(noise, mse, &workload))
            .collect();
        for (p, ev) in prepared.iter().zip(&evaluators) {
            for (&target_mse, &severity) in grid.iter().zip(&severities) {
                tasks.push((p, ev, Leg::Fig3 { noise, target_mse, severity }));
            }
        }
    }
    for (p, ev) in prepared.iter().zip(&evaluators) {
        tasks.push((p, ev, Leg::Paper { nora: false }));
        tasks.push((p, ev, Leg::Paper { nora: true }));
    }

    crate::sweep::parallel_sweep(&tasks, |(p, ev, leg)| {
        let (setting, plan_name, target_mse, severity, tile, plan, seed) = match leg {
            Leg::Fig3 { noise, target_mse, severity } => (
                noise.name().to_string(),
                "naive",
                *target_mse,
                *severity,
                noise.configure(*severity),
                RescalePlan::naive(),
                cfg.seed ^ 0x11,
            ),
            Leg::Paper { nora } => (
                "paper_default".to_string(),
                if *nora { "nora" } else { "naive" },
                0.0,
                0.0,
                TileConfig::paper_default(),
                if *nora { p.nora_plan.clone() } else { RescalePlan::naive() },
                cfg.seed,
            ),
        };
        let prediction = ev.predict(&p.zoo.model, &plan, &tile);
        let mut analog = plan.deploy(&p.zoo.model, tile, seed);
        let simulated = analog_accuracy(&mut analog, &p.episodes);
        AnalyticValidationRow {
            model: p.zoo.name.clone(),
            setting,
            plan: plan_name.to_string(),
            target_mse,
            severity,
            predicted: prediction.accuracy,
            simulated,
            digital: p.digital_acc,
            sigma_logit: prediction.sigma_logit,
            tolerance: stated_tolerance(simulated, p.episodes.len()),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::prepare;
    use nora_nn::zoo::{tiny_spec, ModelFamily};

    #[test]
    fn sweep_covers_grid_and_paper_points() {
        let prepared = vec![prepare(&tiny_spec(ModelFamily::OptLike, 91), 40, 4)];
        let cfg = AnalyticValidationConfig {
            noises: vec![NonIdeality::AdditiveOutputNoise, NonIdeality::DacQuantization],
            mse_points: 2,
            seed: 3,
            capture_rows: 12,
        };
        let rows = analytic_validation(&prepared, &cfg);
        // 2 noises × 2 MSE points + naive/nora paper points.
        assert_eq!(rows.len(), 6);
        assert!(rows.iter().all(|r| (0.0..=1.0).contains(&r.predicted)));
        assert!(rows.iter().all(|r| (0.0..=1.0).contains(&r.simulated)));
        assert!(rows.iter().any(|r| r.setting == "paper_default" && r.plan == "nora"));
        let table = AnalyticValidationRow::table(&rows).render();
        assert!(table.contains("paper_default"));
        // The tiny sweep should already agree on most points.
        assert!(
            AnalyticValidationRow::within_fraction(&rows) >= 0.5,
            "tiny sweep disagrees badly:\n{}",
            AnalyticValidationRow::csv(&rows)
        );
    }

    #[test]
    fn csv_schema_matches_committed_results_file() {
        let header = AnalyticValidationRow::csv(&[]);
        let header = header.trim_end();
        let committed = std::fs::read_to_string(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../results/analytic_validation.csv"
        ))
        .expect("committed results/analytic_validation.csv");
        let first = committed.lines().next().expect("non-empty results file");
        assert_eq!(
            first, header,
            "results/analytic_validation.csv header drifted from AnalyticValidationRow::csv"
        );
    }
}
