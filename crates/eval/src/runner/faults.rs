//! Fault-injection study: accuracy vs hard-fault rate, with and without
//! NORA smoothing and with and without ABFT detection + tile recovery.
//!
//! Each sweep point imprints a seeded [`FaultPlan`] (stuck cells plus dead
//! lines and stuck ADC channels) on every physical tile of the deployment
//! and measures next-token accuracy four ways: {naive, NORA} × {unprotected,
//! protected}. Protected runs use [`FaultTolerance::protected`] — ABFT
//! checksum columns, bounded re-programming, spare-tile remap, and exact
//! digital fallback — and the rows carry the recovery telemetry (flags,
//! spares, fallbacks) so the cost of protection is visible next to the
//! accuracy it buys.

use crate::report::{pct, Table};
use crate::runner::PreparedModel;
use crate::tasks::analog_accuracy;
use nora_cim::{FaultPlan, FaultTolerance, TileConfig, TileEventKind};
use nora_core::RescalePlan;
use nora_nn::deploy::AnalogTransformerLm;

/// Configuration of the fault-injection sweep.
#[derive(Debug, Clone)]
pub struct FaultStudyConfig {
    /// Base tile configuration (default: the paper's Table II).
    pub tile: TileConfig,
    /// Stuck-cell rates to sweep (fraction of cells, split evenly between
    /// stuck-at-Gmin and stuck-at-Gmax).
    pub cell_rates: Vec<f64>,
    /// Dead row / dead column / stuck-ADC rate as a fraction of the cell
    /// rate at each sweep point (line faults are rarer than cell faults).
    pub line_rate_ratio: f64,
    /// Deployment seed (also salts the per-point fault-plan seed).
    pub seed: u64,
}

impl Default for FaultStudyConfig {
    fn default() -> Self {
        Self {
            tile: TileConfig::paper_default(),
            cell_rates: vec![0.0, 0.002, 0.005, 0.01, 0.02],
            line_rate_ratio: 0.1,
            seed: 0xfa17,
        }
    }
}

/// One (model, fault rate, plan, protection) measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultStudyRow {
    /// Model name.
    pub model: String,
    /// Stuck-cell rate of this sweep point.
    pub cell_rate: f64,
    /// Dead-line / stuck-ADC rate of this sweep point.
    pub line_rate: f64,
    /// Rescale plan: `"naive"` or `"nora"`.
    pub plan: String,
    /// Whether ABFT + recovery was active.
    pub protected: bool,
    /// FP32 digital baseline accuracy.
    pub digital: f64,
    /// Analog next-token accuracy at this point.
    pub accuracy: f64,
    /// ABFT / silent-detector flags raised across all layers.
    pub flags: u64,
    /// Spare tiles consumed by remapping.
    pub spares_used: u32,
    /// Tile slots that ended on exact digital fallback.
    pub fallbacks: usize,
    /// Layers that could not be programmed at all and run digitally.
    pub degraded_layers: usize,
}

impl FaultStudyRow {
    /// Accuracy loss vs the digital baseline, percentage points.
    pub fn loss_pp(&self) -> f64 {
        100.0 * (self.digital - self.accuracy)
    }

    /// Renders rows as the fault-study table.
    pub fn table(rows: &[FaultStudyRow]) -> Table {
        let mut t = Table::new(&[
            "model", "cell_rate", "plan", "abft", "digital%", "accuracy%", "loss_pp", "flags",
            "spares", "fallbacks",
        ])
        .with_title("Fault study — accuracy vs hard-fault rate, ±NORA, ±ABFT+recovery");
        for r in rows {
            t.row_owned(vec![
                r.model.clone(),
                format!("{:.3}", r.cell_rate),
                r.plan.clone(),
                if r.protected { "on" } else { "off" }.to_string(),
                pct(r.digital),
                pct(r.accuracy),
                format!("{:+.1}", r.loss_pp()),
                r.flags.to_string(),
                r.spares_used.to_string(),
                r.fallbacks.to_string(),
            ]);
        }
        t
    }

    /// Renders rows as a CSV document (header + one line per row).
    pub fn csv(rows: &[FaultStudyRow]) -> String {
        let mut out = String::from(
            "model,cell_rate,line_rate,plan,protected,digital,accuracy,\
             flags,spares_used,fallbacks,degraded_layers\n",
        );
        for r in rows {
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},{},{},{}\n",
                r.model,
                r.cell_rate,
                r.line_rate,
                r.plan,
                r.protected,
                r.digital,
                r.accuracy,
                r.flags,
                r.spares_used,
                r.fallbacks,
                r.degraded_layers,
            ));
        }
        out
    }
}

fn measure(
    analog: &mut AnalogTransformerLm,
    p: &PreparedModel,
    plan_name: &str,
    cell_rate: f64,
    line_rate: f64,
    protected: bool,
) -> FaultStudyRow {
    let accuracy = analog_accuracy(analog, &p.episodes);
    let flags = analog
        .fault_events()
        .iter()
        .filter(|(_, e)| matches!(e.kind, TileEventKind::Flagged { .. }))
        .count() as u64;
    FaultStudyRow {
        model: p.zoo.name.clone(),
        cell_rate,
        line_rate,
        plan: plan_name.to_string(),
        protected,
        digital: p.digital_acc,
        accuracy,
        flags,
        spares_used: analog.spares_used(),
        fallbacks: analog.digital_fallback_count(),
        degraded_layers: analog.degraded_layers().len(),
    }
}

/// Runs the fault sweep for every prepared model.
///
/// Sweep points deploy and measure independently, so they execute through
/// [`crate::sweep::parallel_sweep`]; the task list keeps the legacy rate →
/// model → plan → protection nesting order, so the rows come back in the
/// same order (and bit-identical) regardless of the thread count.
pub fn fault_study(prepared: &[PreparedModel], cfg: &FaultStudyConfig) -> Vec<FaultStudyRow> {
    let mut tasks = Vec::new();
    for (i, &cell_rate) in cfg.cell_rates.iter().enumerate() {
        let line_rate = cell_rate * cfg.line_rate_ratio;
        // One defect draw per sweep point, shared by all four deployments so
        // the ±NORA / ±ABFT comparison sees identical hardware.
        let fault_seed = cfg.seed ^ ((i as u64 + 1) << 32);
        for p in prepared {
            for (plan_name, plan) in
                [("naive", RescalePlan::naive()), ("nora", p.nora_plan.clone())]
            {
                for protected in [false, true] {
                    tasks.push((cell_rate, line_rate, fault_seed, p, plan_name, plan.clone(), protected));
                }
            }
        }
    }
    crate::sweep::parallel_sweep(
        &tasks,
        |(cell_rate, line_rate, fault_seed, p, plan_name, plan, protected)| {
            let policy = if *protected {
                FaultTolerance::protected()
            } else {
                FaultTolerance::off()
            };
            let tile = cfg
                .tile
                .clone()
                .with_fault_plan(FaultPlan::uniform(*cell_rate, *line_rate, *fault_seed))
                .with_fault_tolerance(policy);
            let mut analog = plan.deploy(&p.zoo.model, tile, cfg.seed ^ 0x22);
            measure(&mut analog, p, plan_name, *cell_rate, *line_rate, *protected)
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::prepare;
    use nora_nn::zoo::{tiny_spec, ModelFamily};

    #[test]
    fn sweep_covers_all_cells_and_reports_recovery() {
        let prepared = vec![prepare(&tiny_spec(ModelFamily::OptLike, 77), 40, 6)];
        let cfg = FaultStudyConfig {
            tile: TileConfig::paper_default().with_tile_size(64, 65),
            cell_rates: vec![0.0, 0.02],
            line_rate_ratio: 0.1,
            seed: 21,
        };
        let rows = fault_study(&prepared, &cfg);
        // 2 rates × 1 model × 2 plans × 2 protection settings.
        assert_eq!(rows.len(), 8);
        assert!(rows
            .iter()
            .all(|r| r.accuracy.is_finite() && (0.0..=1.0).contains(&r.accuracy)));
        // Fault-free points never trip detection or consume spares.
        for r in rows.iter().filter(|r| r.cell_rate == 0.0) {
            assert_eq!((r.flags, r.spares_used, r.fallbacks), (0, 0, 0), "{r:?}");
        }
        // At 2% stuck cells the protected runs must notice and recover.
        let faulty_protected: Vec<_> = rows
            .iter()
            .filter(|r| r.cell_rate > 0.0 && r.protected)
            .collect();
        assert!(faulty_protected.iter().all(|r| r.flags > 0), "no flags");
        assert!(
            faulty_protected
                .iter()
                .all(|r| r.spares_used > 0 || r.fallbacks > 0),
            "no recovery actions"
        );
        // Recovery should not hurt: protected ≥ unprotected at the same
        // point (tiny-model accuracy is noisy, so allow a small slack).
        for fp in &faulty_protected {
            let un = rows
                .iter()
                .find(|r| {
                    r.cell_rate == fp.cell_rate && r.plan == fp.plan && !r.protected
                })
                .unwrap();
            assert!(
                fp.accuracy + 0.05 >= un.accuracy,
                "protected {} vs unprotected {} ({})",
                fp.accuracy,
                un.accuracy,
                fp.plan
            );
        }
        let table = FaultStudyRow::table(&rows).render();
        assert!(table.contains("abft"));
        let csv = FaultStudyRow::csv(&rows);
        assert_eq!(csv.lines().count(), 9);
        assert!(csv.starts_with("model,cell_rate"));
    }

    /// Golden-schema check: the committed `results/fault_study.csv` was
    /// written with the current CSV schema. A column rename or reorder must
    /// fail here until the results file is regenerated alongside it.
    #[test]
    fn csv_schema_matches_committed_results_file() {
        let header = FaultStudyRow::csv(&[]);
        let header = header.trim_end();
        let committed = std::fs::read_to_string(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../results/fault_study.csv"
        ))
        .expect("committed results/fault_study.csv");
        let first = committed.lines().next().expect("non-empty results file");
        assert_eq!(
            first, header,
            "results/fault_study.csv header drifted from FaultStudyRow::csv"
        );
    }
}
