//! Fig. 5b/c: per-noise mitigation at one matched MSE level.
//!
//! Each non-ideality is scaled — alone, all others ideal — to the paper's
//! matched level (MSE 0.0015–0.0016 on the reference feature map), then the
//! naive and NORA deployments are compared. The paper reports the fraction
//! of the noise-induced accuracy drop that NORA recovers.

use crate::noise_level::{severity_for_mse, RefWorkload, MITIGATION_MSE};
use crate::report::{pct, Table};
use crate::runner::PreparedModel;
use crate::tasks::{analog_accuracy, recovery_fraction};
use nora_cim::NonIdeality;
use nora_core::RescalePlan;

/// Configuration of the mitigation experiment.
#[derive(Debug, Clone)]
pub struct MitigationConfig {
    /// Non-idealities to test (default: the four IO noises of Fig. 5b/c
    /// plus the tile noises for completeness).
    pub noises: Vec<NonIdeality>,
    /// Matched reference MSE (default: the paper's 1.5–1.6 ·10⁻³ band).
    pub target_mse: f64,
    /// Deployment seed.
    pub seed: u64,
}

impl Default for MitigationConfig {
    fn default() -> Self {
        Self {
            noises: NonIdeality::ALL.to_vec(),
            target_mse: MITIGATION_MSE,
            seed: 0x517,
        }
    }
}

/// One (model, noise) mitigation measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct MitigationRow {
    /// Model name.
    pub model: String,
    /// The active non-ideality.
    pub noise: NonIdeality,
    /// Severity realising the matched MSE.
    pub severity: f32,
    /// Digital baseline accuracy.
    pub digital: f64,
    /// Naive analog accuracy.
    pub naive: f64,
    /// NORA accuracy.
    pub nora: f64,
}

impl MitigationRow {
    /// Fraction of the noise-induced drop recovered by NORA.
    pub fn recovery(&self) -> f64 {
        recovery_fraction(self.digital, self.naive, self.nora)
    }

    /// Renders rows as the Fig. 5b/c table.
    pub fn table(rows: &[MitigationRow]) -> Table {
        let mut t = Table::new(&[
            "model", "noise", "digital%", "naive%", "nora%", "recovered%",
        ])
        .with_title(format!(
            "Fig. 5b/c — per-noise mitigation at matched MSE ≈ {MITIGATION_MSE:.2e}"
        )
        .as_str());
        for r in rows {
            t.row_owned(vec![
                r.model.clone(),
                r.noise.name().to_string(),
                pct(r.digital),
                pct(r.naive),
                pct(r.nora),
                format!("{:.0}", 100.0 * r.recovery()),
            ]);
        }
        t
    }
}

/// Runs the mitigation experiment for every prepared model × noise.
pub fn mitigation(prepared: &[PreparedModel], cfg: &MitigationConfig) -> Vec<MitigationRow> {
    let workload = RefWorkload::default_reference(cfg.seed);
    let mut rows = Vec::new();
    for &noise in &cfg.noises {
        let severity = severity_for_mse(noise, cfg.target_mse, &workload);
        for p in prepared {
            let tile = noise.configure(severity);
            let mut naive =
                RescalePlan::naive().deploy(&p.zoo.model, tile.clone(), cfg.seed ^ 0x22);
            let naive_acc = analog_accuracy(&mut naive, &p.episodes);
            let mut nora = p.nora_plan.deploy(&p.zoo.model, tile, cfg.seed ^ 0x22);
            let nora_acc = analog_accuracy(&mut nora, &p.episodes);
            rows.push(MitigationRow {
                model: p.zoo.name.clone(),
                noise,
                severity,
                digital: p.digital_acc,
                naive: naive_acc,
                nora: nora_acc,
            });
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::prepare;
    use nora_nn::zoo::{tiny_spec, ModelFamily};

    #[test]
    fn nora_recovers_io_noise_damage() {
        let prepared = vec![prepare(&tiny_spec(ModelFamily::OptLike, 99), 80, 6)];
        let cfg = MitigationConfig {
            noises: vec![NonIdeality::AdditiveOutputNoise],
            target_mse: MITIGATION_MSE,
            seed: 9,
        };
        let rows = mitigation(&prepared, &cfg);
        assert_eq!(rows.len(), 1);
        let r = &rows[0];
        assert!(
            r.nora >= r.naive,
            "nora {} should be >= naive {} under output noise",
            r.nora,
            r.naive
        );
        assert!(MitigationRow::table(&rows).render().contains("out_noise"));
    }

    #[test]
    fn rows_cover_every_model_noise_pair() {
        let prepared = vec![prepare(&tiny_spec(ModelFamily::OptLike, 101), 40, 4)];
        let cfg = MitigationConfig {
            noises: vec![
                NonIdeality::AdditiveOutputNoise,
                NonIdeality::ShortTermReadNoise,
            ],
            target_mse: MITIGATION_MSE,
            seed: 10,
        };
        let rows = mitigation(&prepared, &cfg);
        assert_eq!(rows.len(), cfg.noises.len() * prepared.len());
        for (row, &noise) in rows.iter().zip(&cfg.noises) {
            assert_eq!(row.noise, noise, "rows must keep the config's noise order");
            assert!(row.severity > 0.0);
            assert!(row.recovery().is_finite());
        }
    }

    #[test]
    fn accuracy_degrades_monotonically_with_matched_mse() {
        // The accuracy-vs-noise curve must trend downward: raising the
        // matched reference MSE by an order of magnitude cannot *improve*
        // naive analog accuracy (small slack absorbs seed noise).
        let prepared = vec![prepare(&tiny_spec(ModelFamily::OptLike, 102), 60, 4)];
        let at_mse = |mse: f64| {
            let cfg = MitigationConfig {
                noises: vec![NonIdeality::AdditiveOutputNoise],
                target_mse: mse,
                seed: 11,
            };
            mitigation(&prepared, &cfg)[0].naive
        };
        let low = at_mse(MITIGATION_MSE);
        let high = at_mse(MITIGATION_MSE * 10.0);
        assert!(
            high <= low + 0.05,
            "accuracy rose with noise: {low} @1x vs {high} @10x MSE"
        );
    }
}
