//! Fig. 3: sensitivity of LLMs to each non-ideality at matched MSE levels.

use crate::noise_level::{paper_mse_grid, severity_for_mse, RefWorkload};
use crate::report::{pct, sci, Table};
use crate::runner::PreparedModel;
use crate::tasks::{accuracy_drop_pp, analog_accuracy};
use nora_cim::NonIdeality;
use nora_core::RescalePlan;

/// Configuration of the sensitivity sweep.
#[derive(Debug, Clone)]
pub struct SensitivityConfig {
    /// Non-idealities to sweep (default: all eight, Fig. 3a–h).
    pub noises: Vec<NonIdeality>,
    /// Number of MSE-matched severity points per noise.
    pub mse_points: usize,
    /// Deployment seed.
    pub seed: u64,
}

impl Default for SensitivityConfig {
    fn default() -> Self {
        Self {
            noises: NonIdeality::ALL.to_vec(),
            mse_points: 8,
            seed: 0x5e5e,
        }
    }
}

/// One measured point of the sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SensitivityPoint {
    /// Model name.
    pub model: String,
    /// The active non-ideality (all others ideal).
    pub noise: NonIdeality,
    /// The matched reference MSE.
    pub target_mse: f64,
    /// The severity level realising that MSE.
    pub severity: f32,
    /// Analog accuracy at this point.
    pub accuracy: f64,
    /// Accuracy drop vs the digital baseline, percentage points.
    pub drop_pp: f64,
}

/// Runs the Fig. 3 sweep: for every model × noise × MSE level, deploy
/// naively with *only* that noise active and measure the accuracy drop.
///
/// The grid points are independent (each deploys from its own seed), so
/// they run through [`crate::sweep::parallel_sweep`]; the task list is
/// materialised in the legacy noise → model → MSE nesting order, keeping
/// the returned rows bit-identical to a serial run.
pub fn sensitivity(
    prepared: &[PreparedModel],
    cfg: &SensitivityConfig,
) -> Vec<SensitivityPoint> {
    let workload = RefWorkload::default_reference(cfg.seed);
    let grid = paper_mse_grid(cfg.mse_points);
    // Severity calibration is model-independent: do it once per (noise, mse).
    let mut tasks = Vec::new();
    for &noise in &cfg.noises {
        let severities: Vec<f32> = grid
            .iter()
            .map(|&mse| severity_for_mse(noise, mse, &workload))
            .collect();
        for p in prepared {
            for (&target_mse, &severity) in grid.iter().zip(&severities) {
                tasks.push((noise, p, target_mse, severity));
            }
        }
    }
    crate::sweep::parallel_sweep(&tasks, |&(noise, p, target_mse, severity)| {
        let tile = noise.configure(severity);
        let mut analog = RescalePlan::naive().deploy(&p.zoo.model, tile, cfg.seed ^ 0x11);
        let accuracy = analog_accuracy(&mut analog, &p.episodes);
        SensitivityPoint {
            model: p.zoo.name.clone(),
            noise,
            target_mse,
            severity,
            accuracy,
            drop_pp: accuracy_drop_pp(p.digital_acc, accuracy),
        }
    })
}

impl SensitivityPoint {
    /// Renders a batch of points as the Fig. 3 table.
    pub fn table(points: &[SensitivityPoint]) -> Table {
        let mut t = Table::new(&["noise", "model", "ref_mse", "severity", "acc%", "drop_pp"])
            .with_title("Fig. 3 — accuracy drop per non-ideality at MSE-matched severity");
        for p in points {
            t.row_owned(vec![
                p.noise.name().to_string(),
                p.model.clone(),
                sci(p.target_mse),
                format!("{:.4}", p.severity),
                pct(p.accuracy),
                format!("{:+.1}", p.drop_pp),
            ]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::prepare;
    use nora_nn::zoo::{tiny_spec, ModelFamily};

    #[test]
    fn sweep_produces_grid_and_io_noises_dominate() {
        let prepared = vec![prepare(&tiny_spec(ModelFamily::OptLike, 77), 60, 4)];
        let cfg = SensitivityConfig {
            noises: vec![
                NonIdeality::AdditiveOutputNoise,
                NonIdeality::ShortTermReadNoise,
            ],
            mse_points: 3,
            seed: 1,
        };
        let points = sensitivity(&prepared, &cfg);
        assert_eq!(points.len(), 6);
        // At the top severity, output noise should hurt at least as much as
        // read noise (the paper's key observation).
        let drop = |n: NonIdeality| {
            points
                .iter()
                .filter(|p| p.noise == n)
                .map(|p| p.drop_pp)
                .fold(f64::NEG_INFINITY, f64::max)
        };
        assert!(
            drop(NonIdeality::AdditiveOutputNoise)
                >= drop(NonIdeality::ShortTermReadNoise) - 1e-9,
            "out {} read {}",
            drop(NonIdeality::AdditiveOutputNoise),
            drop(NonIdeality::ShortTermReadNoise)
        );
        let table = SensitivityPoint::table(&points).render();
        assert!(table.contains("out_noise"));
    }
}
