//! Extension experiments beyond the paper's evaluation section, covering
//! its §VII future-work items: the ReRAM cross-device claim and the
//! energy/latency estimate.

use crate::report::{pct, Table};
use crate::runner::PreparedModel;
use crate::tasks::analog_accuracy;
use nora_cim::{EnergyModel, TileConfig, WeightSource};
use nora_core::RescalePlan;

/// One (model, device) cross-device measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct CrossDeviceRow {
    /// Model name.
    pub model: String,
    /// Device name (`"pcm"` or `"reram"`).
    pub device: &'static str,
    /// Digital baseline accuracy.
    pub digital: f64,
    /// Naive analog accuracy.
    pub naive: f64,
    /// NORA accuracy.
    pub nora: f64,
}

impl CrossDeviceRow {
    /// Renders rows as a table.
    pub fn table(rows: &[CrossDeviceRow]) -> Table {
        let mut t = Table::new(&["model", "device", "digital%", "naive%", "nora%"])
            .with_title("§VII extension — NORA across NVM device types (Table II noise)");
        for r in rows {
            t.row_owned(vec![
                r.model.clone(),
                r.device.to_string(),
                pct(r.digital),
                pct(r.naive),
                pct(r.nora),
            ]);
        }
        t
    }
}

/// Evaluates every prepared model on PCM and ReRAM tiles (everything else
/// per Table II) under naive and NORA deployment — the paper's "this method
/// can also be extended to other NVM devices such as ReRAM".
pub fn cross_device(prepared: &[PreparedModel], seed: u64) -> Vec<CrossDeviceRow> {
    let devices = [
        ("pcm", WeightSource::Pcm(1.0)),
        ("reram", WeightSource::Reram(0.05)),
    ];
    let mut rows = Vec::new();
    for p in prepared {
        for (name, source) in devices {
            let mut tile = TileConfig::paper_default();
            tile.weight_source = source;
            let mut naive = RescalePlan::naive().deploy(&p.zoo.model, tile.clone(), seed);
            let naive_acc = analog_accuracy(&mut naive, &p.episodes);
            let mut nora = p.nora_plan.deploy(&p.zoo.model, tile, seed);
            let nora_acc = analog_accuracy(&mut nora, &p.episodes);
            rows.push(CrossDeviceRow {
                model: p.zoo.name.clone(),
                device: name,
                digital: p.digital_acc,
                naive: naive_acc,
                nora: nora_acc,
            });
        }
    }
    rows
}

/// One (model, plan) energy measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyRow {
    /// Model name.
    pub model: String,
    /// `"naive"` or `"nora"`.
    pub plan: &'static str,
    /// Accuracy achieved alongside the energy.
    pub accuracy: f64,
    /// Total analog energy per processed token, picojoules.
    pub pj_per_token: f64,
    /// Analog latency per processed token, nanoseconds.
    pub ns_per_token: f64,
    /// Bound-management retries per thousand MVMs.
    pub retries_per_kmvm: f64,
}

impl EnergyRow {
    /// Renders rows as a table.
    pub fn table(rows: &[EnergyRow]) -> Table {
        let mut t = Table::new(&[
            "model",
            "plan",
            "acc%",
            "pJ/token",
            "ns/token",
            "BM retries/kMVM",
        ])
        .with_title("§VII extension — first-order analog energy & latency per token");
        for r in rows {
            t.row_owned(vec![
                r.model.clone(),
                r.plan.to_string(),
                pct(r.accuracy),
                format!("{:.0}", r.pj_per_token),
                format!("{:.0}", r.ns_per_token),
                format!("{:.1}", r.retries_per_kmvm),
            ]);
        }
        t
    }
}

/// Measures analog energy/latency per token for naive vs NORA deployments
/// under Table II noise.
pub fn energy_study(prepared: &[PreparedModel], seed: u64) -> Vec<EnergyRow> {
    let energy_model = EnergyModel::default();
    let mut rows = Vec::new();
    for p in prepared {
        let tokens_total: usize = p
            .episodes
            .iter()
            .map(|e| e.tokens.len() - 1)
            .sum();
        for (plan_name, plan) in [
            ("naive", RescalePlan::naive()),
            ("nora", p.nora_plan.clone()),
        ] {
            let mut analog = plan.deploy(&p.zoo.model, TileConfig::paper_default(), seed);
            let accuracy = analog_accuracy(&mut analog, &p.episodes);
            let report = analog.energy(&energy_model);
            let stats = analog.stats();
            rows.push(EnergyRow {
                model: p.zoo.name.clone(),
                plan: plan_name,
                accuracy,
                pj_per_token: report.total_pj() / tokens_total.max(1) as f64,
                ns_per_token: report.latency_ns / tokens_total.max(1) as f64,
                retries_per_kmvm: 1000.0 * stats.bound_mgmt_retries as f64
                    / stats.samples.max(1) as f64,
            });
        }
    }
    rows
}

/// One (model, scheme) digital-quantization baseline measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantBaselineRow {
    /// Model name.
    pub model: String,
    /// Scheme description, e.g. `"digital W8A8"`.
    pub scheme: String,
    /// Whether the SmoothQuant/NORA smoothing was installed.
    pub smoothed: bool,
    /// Accuracy.
    pub accuracy: f64,
    /// Digital FP baseline.
    pub digital: f64,
}

impl QuantBaselineRow {
    /// Renders rows as a table.
    pub fn table(rows: &[QuantBaselineRow]) -> Table {
        let mut t = Table::new(&["model", "scheme", "smoothed", "acc%", "loss_pp"])
            .with_title("Related-work baseline — digital weight/activation quantization");
        for r in rows {
            t.row_owned(vec![
                r.model.clone(),
                r.scheme.clone(),
                if r.smoothed { "yes" } else { "no" }.to_string(),
                pct(r.accuracy),
                format!("{:+.1}", 100.0 * (r.digital - r.accuracy)),
            ]);
        }
        t
    }
}

/// Digital quantized-execution baselines (the related-work context:
/// SmoothQuant on GPUs): WxAx with and without the smoothing vector, at the
/// given bit widths.
pub fn digital_quant_baseline(
    prepared: &[PreparedModel],
    bits: &[u32],
    seed: u64,
) -> Vec<QuantBaselineRow> {
    let mut rows = Vec::new();
    for p in prepared {
        for &b in bits {
            let tile = TileConfig::digital_quant(b);
            for (smoothed, plan) in [
                (false, RescalePlan::naive()),
                (true, p.nora_plan.clone()),
            ] {
                let mut deploy = plan.deploy(&p.zoo.model, tile.clone(), seed);
                rows.push(QuantBaselineRow {
                    model: p.zoo.name.clone(),
                    scheme: format!("digital W{b}A{b}"),
                    smoothed,
                    accuracy: analog_accuracy(&mut deploy, &p.episodes),
                    digital: p.digital_acc,
                });
            }
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::prepare;
    use nora_nn::zoo::{tiny_spec, ModelFamily};

    #[test]
    fn cross_device_nora_wins_on_both_devices() {
        let prepared = vec![prepare(&tiny_spec(ModelFamily::OptLike, 321), 60, 5)];
        let rows = cross_device(&prepared, 3);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(
                r.nora >= r.naive,
                "{}: nora {} < naive {}",
                r.device,
                r.nora,
                r.naive
            );
        }
        assert!(CrossDeviceRow::table(&rows).render().contains("reram"));
    }

    #[test]
    fn smoothing_rescues_low_bit_digital_quantization() {
        // SmoothQuant's original result, reproduced on our substrate: plain
        // W8A8 on an outlier model is fine, low-bit breaks, smoothing helps.
        let prepared = vec![prepare(&tiny_spec(ModelFamily::OptLike, 323), 60, 5)];
        let rows = digital_quant_baseline(&prepared, &[8, 4], 6);
        assert_eq!(rows.len(), 4);
        let find = |bits: u32, smoothed: bool| {
            rows.iter()
                .find(|r| r.scheme.contains(&format!("W{bits}")) && r.smoothed == smoothed)
                .unwrap()
                .accuracy
        };
        assert!(
            find(4, true) >= find(4, false),
            "smoothed W4A4 {} should beat plain {}",
            find(4, true),
            find(4, false)
        );
        assert!(QuantBaselineRow::table(&rows).render().contains("W8A8"));
    }

    #[test]
    fn energy_study_produces_positive_costs() {
        let prepared = vec![prepare(&tiny_spec(ModelFamily::OptLike, 322), 40, 4)];
        let rows = energy_study(&prepared, 4);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.pj_per_token > 0.0);
            assert!(r.ns_per_token > 0.0);
        }
        assert!(!EnergyRow::table(&rows).is_empty());
    }

    #[test]
    fn extension_rows_are_deterministic() {
        // Every extension driver deploys from explicit seeds, so repeated
        // runs over the same prepared model must yield identical rows —
        // the property that keeps the committed `results/` files stable.
        let prepared = vec![prepare(&tiny_spec(ModelFamily::OptLike, 324), 30, 4)];
        assert_eq!(cross_device(&prepared, 5), cross_device(&prepared, 5));
        assert_eq!(energy_study(&prepared, 5), energy_study(&prepared, 5));
        assert_eq!(
            digital_quant_baseline(&prepared, &[8], 5),
            digital_quant_baseline(&prepared, &[8], 5)
        );
    }
}
