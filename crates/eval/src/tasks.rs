//! Lambada-style last-token accuracy for digital and analog models.

use nora_nn::corpus::Episode;
use nora_nn::deploy::AnalogTransformerLm;
use nora_nn::TransformerLm;

/// Accuracy of the FP32 digital model on held-out episodes (the paper's
/// "Digital Full precision" baseline).
pub fn digital_accuracy(model: &TransformerLm, episodes: &[Episode]) -> f64 {
    nora_nn::trainer::eval_accuracy(model, episodes)
}

/// Accuracy of an analog deployment on held-out episodes.
///
/// Stochastic (the tiles are noisy) but deterministic given the
/// deployment's seed and the episode order.
pub fn analog_accuracy(analog: &mut AnalogTransformerLm, episodes: &[Episode]) -> f64 {
    if episodes.is_empty() {
        return 0.0;
    }
    let correct = episodes
        .iter()
        .filter(|ep| {
            let ctx = &ep.tokens[..ep.tokens.len() - 1];
            analog.predict_next(ctx) == ep.key
        })
        .count();
    correct as f64 / episodes.len() as f64
}

/// Next-token perplexity of the FP32 digital model over a set of token
/// sequences (`exp` of the mean cross-entropy over all predicted
/// positions).
///
/// # Panics
///
/// Panics if `sequences` is empty or any sequence has fewer than 2 tokens.
pub fn digital_perplexity(model: &TransformerLm, sequences: &[Vec<usize>]) -> f64 {
    assert!(!sequences.is_empty(), "perplexity needs sequences");
    let mut total_nll = 0.0f64;
    let mut total_positions = 0usize;
    for seq in sequences {
        assert!(seq.len() >= 2, "sequence too short for perplexity");
        let logits = model.forward(seq);
        let pred = logits.submatrix(0, seq.len() - 1, 0, logits.cols());
        let (mean_nll, _) = nora_nn::cross_entropy(&pred, &seq[1..]);
        total_nll += mean_nll * (seq.len() - 1) as f64;
        total_positions += seq.len() - 1;
    }
    (total_nll / total_positions as f64).exp()
}

/// Accuracy drop in percentage points (paper Fig. 3/5 y-axis):
/// `100 · (baseline − measured)`.
pub fn accuracy_drop_pp(baseline: f64, measured: f64) -> f64 {
    100.0 * (baseline - measured)
}

/// Fraction of a noise-induced accuracy drop that a mitigation recovers
/// (paper §V-B: "our method can recover nearly 75% accuracy drop caused by
/// ADC quantization").
///
/// Returns 0 when there was no drop to recover.
pub fn recovery_fraction(baseline: f64, naive: f64, mitigated: f64) -> f64 {
    let drop = baseline - naive;
    if drop <= 0.0 {
        return 0.0;
    }
    ((mitigated - naive) / drop).clamp(-1.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nora_cim::TileConfig;
    use nora_nn::corpus::{Corpus, CorpusConfig};
    use nora_nn::deploy::SmoothingMap;
    use nora_nn::ModelConfig;
    use nora_tensor::rng::Rng;

    #[test]
    fn accuracy_drop_and_recovery_arithmetic() {
        assert!((accuracy_drop_pp(0.9, 0.6) - 30.0).abs() < 1e-9);
        assert!((recovery_fraction(0.9, 0.5, 0.8) - 0.75).abs() < 1e-12);
        assert_eq!(recovery_fraction(0.9, 0.9, 0.95), 0.0);
        assert_eq!(recovery_fraction(0.9, 0.5, 0.1), -1.0); // clamped
    }

    #[test]
    fn analog_accuracy_matches_digital_on_ideal_tiles() {
        let model = TransformerLm::new(
            ModelConfig::tiny_for_tests(),
            &mut Rng::seed_from(1),
        );
        let mut corpus = Corpus::new(CorpusConfig::new(16, 16, 2));
        let eps = corpus.episodes(30);
        let d = digital_accuracy(&model, &eps);
        let mut analog =
            AnalogTransformerLm::new(&model, TileConfig::ideal(), &SmoothingMap::new(), 3);
        let a = analog_accuracy(&mut analog, &eps);
        assert!((d - a).abs() < 1e-12);
    }

    #[test]
    fn perplexity_bounded_by_vocab_and_improves_with_training() {
        use nora_nn::corpus::{Corpus, CorpusConfig};
        use nora_nn::trainer::{train, TrainConfig};
        let mut corpus = Corpus::new(CorpusConfig::new(16, 16, 9));
        let mut model = TransformerLm::new(
            ModelConfig::tiny_for_tests(),
            &mut Rng::seed_from(4),
        );
        let seqs: Vec<Vec<usize>> = (0..6).map(|_| corpus.episode().tokens).collect();
        let before = digital_perplexity(&model, &seqs);
        // An untrained model is near-uniform: ppl ≈ vocab.
        assert!(before > 8.0 && before < 32.0, "before {before}");
        train(
            &mut model,
            &mut corpus,
            &TrainConfig {
                steps: 120,
                batch_size: 8,
                lr: 3e-3,
                grad_clip: 1.0,
                warmup: 10,
            },
        );
        let after = digital_perplexity(&model, &seqs);
        assert!(after < before / 1.5, "{before} → {after}");
    }

    #[test]
    fn empty_episode_set_gives_zero() {
        let model = TransformerLm::new(
            ModelConfig::tiny_for_tests(),
            &mut Rng::seed_from(1),
        );
        let mut analog =
            AnalogTransformerLm::new(&model, TileConfig::ideal(), &SmoothingMap::new(), 3);
        assert_eq!(analog_accuracy(&mut analog, &[]), 0.0);
    }
}
