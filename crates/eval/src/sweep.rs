//! Parallel sweep executor for experiment drivers.
//!
//! Every paper study is a grid of independent `(config, seed)` points: each
//! point deploys its own analog model from an explicit seed and measures it
//! on shared read-only episodes. [`parallel_sweep`] runs those points across
//! worker threads and returns the results **in task order**, so a driver
//! that materialises its task list in the legacy nesting order produces a
//! row vector bit-identical to the old serial loops — at any thread count.

/// Maps `f` over `points` in parallel, returning results in input order.
///
/// `NORA_THREADS=1` (or [`nora_parallel::with_threads`]`(1, ..)`) reduces
/// this to a plain serial iteration. Each point is evaluated exactly once by
/// exactly one thread; `f` must not rely on shared mutable state.
pub fn parallel_sweep<T: Sync, R: Send>(points: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R> {
    nora_parallel::map_indexed(points.len(), |i| f(&points[i]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_keep_task_order_at_any_thread_count() {
        let tasks: Vec<u64> = (0..37).collect();
        let serial = nora_parallel::with_threads(1, || parallel_sweep(&tasks, |&t| t * t + 1));
        for threads in [2, 4, 8] {
            let par =
                nora_parallel::with_threads(threads, || parallel_sweep(&tasks, |&t| t * t + 1));
            assert_eq!(par, serial, "threads={threads}");
        }
    }
}
