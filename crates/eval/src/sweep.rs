//! Parallel sweep executor for experiment drivers.
//!
//! Every paper study is a grid of independent `(config, seed)` points: each
//! point deploys its own analog model from an explicit seed and measures it
//! on shared read-only episodes. [`parallel_sweep`] runs those points across
//! worker threads and returns the results **in task order**, so a driver
//! that materialises its task list in the legacy nesting order produces a
//! row vector bit-identical to the old serial loops — at any thread count.

use nora_obs::{edges, Metrics, Stopwatch};

/// Maps `f` over `points` in parallel, returning results in input order.
///
/// `NORA_THREADS=1` (or [`nora_parallel::with_threads`]`(1, ..)`) reduces
/// this to a plain serial iteration. Each point is evaluated exactly once by
/// exactly one thread; `f` must not rely on shared mutable state.
pub fn parallel_sweep<T: Sync, R: Send>(points: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R> {
    nora_parallel::map_indexed(points.len(), |i| f(&points[i]))
}

/// Like [`parallel_sweep`], additionally timing every sweep point and
/// merging the spans into `metrics` **in task order** (never wall-clock
/// completion order, which would differ across thread counts).
///
/// Records `eval.sweep.points` (a deterministic counter) and
/// `eval.sweep.point_secs` (a latency histogram whose *count* is
/// deterministic; the timings themselves are telemetry). The results are
/// bit-identical to [`parallel_sweep`]: each worker's extra work is one
/// [`Stopwatch`] read, with no RNG involvement.
pub fn parallel_sweep_recorded<T: Sync, R: Send>(
    points: &[T],
    metrics: &mut Metrics,
    f: impl Fn(&T) -> R + Sync,
) -> Vec<R> {
    let timed: Vec<(R, f64)> = nora_parallel::map_indexed(points.len(), |i| {
        let span = Stopwatch::start();
        let result = f(&points[i]);
        (result, span.elapsed_secs())
    });
    let mut results = Vec::with_capacity(timed.len());
    for (result, secs) in timed {
        metrics.add("eval.sweep.points", 1);
        metrics.observe("eval.sweep.point_secs", edges::LATENCY_SECS, secs);
        results.push(result);
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_keep_task_order_at_any_thread_count() {
        let tasks: Vec<u64> = (0..37).collect();
        let serial = nora_parallel::with_threads(1, || parallel_sweep(&tasks, |&t| t * t + 1));
        for threads in [2, 4, 8] {
            let par =
                nora_parallel::with_threads(threads, || parallel_sweep(&tasks, |&t| t * t + 1));
            assert_eq!(par, serial, "threads={threads}");
        }
    }

    #[test]
    fn recorded_sweep_matches_plain_sweep_and_counts_points() {
        let tasks: Vec<u64> = (0..23).collect();
        let plain = parallel_sweep(&tasks, |&t| t * 3);
        for threads in [1, 4] {
            let mut metrics = Metrics::new();
            let recorded = nora_parallel::with_threads(threads, || {
                parallel_sweep_recorded(&tasks, &mut metrics, |&t| t * 3)
            });
            assert_eq!(recorded, plain, "threads={threads}");
            assert_eq!(metrics.counter("eval.sweep.points"), 23);
            assert_eq!(
                metrics.histogram("eval.sweep.point_secs").unwrap().count(),
                23
            );
        }
    }
}
