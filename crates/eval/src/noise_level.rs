//! MSE-matched non-ideality severity calibration.
//!
//! The paper's Fig. 3 compares non-idealities of completely different
//! physical natures (quantizer step widths, Gaussian σ, wire resistance, …)
//! by normalising each to the **mean squared error it causes on an ideal
//! feature map**: "Each noise scale on the x-axis starts with a level
//! causing 0.0001∼0.0002 MSE and ends with causing 0.0027∼0.0028 MSE
//! compared with ideal situation on a 4096×4096 feature map."
//!
//! [`severity_for_mse`] inverts that mapping by bisection on a reference
//! GEMV workload (unit-variance Gaussian activations and
//! variance-normalised weights, so MSE values are directly comparable to
//! the paper's). The paper's tile is 4096×4096; we default to a smaller
//! reference (256×256, 64 samples) that preserves the per-element error
//! statistics at a fraction of the cost.

use nora_cim::{AnalogTile, NonIdeality};
use nora_tensor::rng::Rng;
use nora_tensor::Matrix;

/// Reference GEMV workload for severity calibration.
#[derive(Debug, Clone)]
pub struct RefWorkload {
    x: Matrix,
    w: Matrix,
    ideal: Matrix,
    seed: u64,
}

impl RefWorkload {
    /// Builds a reference workload: `batch` unit-variance Gaussian input
    /// rows against a `k × m` weight matrix with `N(0, 1/√k)` entries
    /// (unit-variance outputs).
    pub fn new(batch: usize, k: usize, m: usize, seed: u64) -> Self {
        let mut rng = Rng::seed_from(seed);
        let x = Matrix::random_normal(batch, k, 0.0, 1.0, &mut rng);
        let w = Matrix::random_normal(k, m, 0.0, 1.0 / (k as f32).sqrt(), &mut rng);
        let ideal = x.matmul(&w);
        Self { x, w, ideal, seed }
    }

    /// The default calibration workload (64 × 256 inputs on a 256×256
    /// weight block).
    pub fn default_reference(seed: u64) -> Self {
        Self::new(64, 256, 256, seed)
    }

    /// Measures the MSE a single non-ideality causes at `level` on this
    /// workload.
    pub fn mse_at(&self, noise: NonIdeality, level: f32) -> f64 {
        let mut cfg = noise.configure(level);
        cfg.tile_rows = self.x.cols();
        cfg.tile_cols = self.w.cols();
        let mut tile = AnalogTile::new(
            self.w.clone(),
            None,
            cfg,
            Rng::seed_from(self.seed ^ 0xfeed),
        );
        tile.forward(&self.x).mse(&self.ideal)
    }
}

/// The eight-point MSE grid of the paper's Fig. 3 x-axis
/// (1.5·10⁻⁴ … 2.75·10⁻³).
pub fn paper_mse_grid(points: usize) -> Vec<f64> {
    assert!(points >= 2, "grid needs at least two points");
    let lo = 1.5e-4;
    let hi = 2.75e-3;
    (0..points)
        .map(|i| lo + (hi - lo) * i as f64 / (points - 1) as f64)
        .collect()
}

/// The single matched level used by the paper's Fig. 5b/c
/// ("the noise could cause a mean square error between 0.0015 and 0.0016").
pub const MITIGATION_MSE: f64 = 1.55e-3;

/// Finds the severity level at which `noise` causes `target_mse` on the
/// workload, by bisection.
///
/// The MSE is monotone (stochastically) in the severity for every
/// [`NonIdeality`], so bisection converges; residual Monte-Carlo noise in
/// the estimate leaves a few percent of slack, which is far below the
/// factor-steps of the Fig. 3 grid.
///
/// # Panics
///
/// Panics if `target_mse` is not strictly positive, or unreachable within
/// the bracket (pathological configurations only).
///
/// # Example
///
/// ```
/// use nora_cim::NonIdeality;
/// use nora_eval::noise_level::{severity_for_mse, RefWorkload};
///
/// let workload = RefWorkload::new(8, 32, 32, 1);
/// let sigma = severity_for_mse(NonIdeality::AdditiveOutputNoise, 1e-3, &workload);
/// let achieved = workload.mse_at(NonIdeality::AdditiveOutputNoise, sigma);
/// assert!((achieved / 1e-3 - 1.0).abs() < 0.5);
/// ```
pub fn severity_for_mse(noise: NonIdeality, target_mse: f64, workload: &RefWorkload) -> f32 {
    assert!(target_mse > 0.0, "target MSE must be positive");
    // Bracket: find an upper bound whose MSE exceeds the target.
    let mut lo = 0.0f32;
    let mut hi = 1e-4f32;
    let mut hi_mse = workload.mse_at(noise, hi);
    let mut guard = 0;
    while hi_mse < target_mse {
        hi *= 2.0;
        hi_mse = workload.mse_at(noise, hi);
        guard += 1;
        assert!(guard < 40, "target MSE {target_mse} unreachable for {noise}");
    }
    // Bisection.
    for _ in 0..40 {
        let mid = 0.5 * (lo + hi);
        if workload.mse_at(noise, mid) < target_mse {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_workload() -> RefWorkload {
        RefWorkload::new(16, 64, 64, 3)
    }

    #[test]
    fn grid_is_increasing_and_spans_paper_range() {
        let g = paper_mse_grid(8);
        assert_eq!(g.len(), 8);
        assert!(g.windows(2).all(|w| w[1] > w[0]));
        assert!(g[0] >= 1e-4 && g[0] <= 2e-4);
        assert!(g[7] >= 2.7e-3 && g[7] <= 2.8e-3);
    }

    #[test]
    fn mse_grows_with_severity_for_every_noise() {
        let w = small_workload();
        for noise in NonIdeality::ALL {
            let low = w.mse_at(noise, 0.02);
            let high = w.mse_at(noise, 0.4);
            assert!(
                high > low,
                "{noise}: mse({:.2e}) !< mse({:.2e})",
                low,
                high
            );
        }
    }

    #[test]
    fn calibrated_severity_hits_target_mse() {
        let w = small_workload();
        for noise in [
            NonIdeality::AdditiveOutputNoise,
            NonIdeality::AdcQuantization,
            NonIdeality::ShortTermReadNoise,
        ] {
            let target = 1e-3;
            let level = severity_for_mse(noise, target, &w);
            let achieved = w.mse_at(noise, level);
            assert!(
                (achieved / target - 1.0).abs() < 0.3,
                "{noise}: target {target} achieved {achieved} at level {level}"
            );
        }
    }

    #[test]
    fn different_noises_need_different_levels() {
        let w = small_workload();
        let out = severity_for_mse(NonIdeality::AdditiveOutputNoise, 1e-3, &w);
        let read = severity_for_mse(NonIdeality::ShortTermReadNoise, 1e-3, &w);
        assert!(out > 0.0 && read > 0.0);
        assert_ne!(out, read);
    }

    #[test]
    fn ideal_workload_mse_is_zero_at_zero_severity() {
        let w = small_workload();
        let mse = w.mse_at(NonIdeality::AdditiveOutputNoise, 0.0);
        assert!(mse < 1e-10, "mse {mse}");
    }

    #[test]
    #[should_panic(expected = "target MSE must be positive")]
    fn zero_target_panics() {
        severity_for_mse(
            NonIdeality::AdditiveOutputNoise,
            0.0,
            &small_workload(),
        );
    }
}
