//! Plain-text table rendering for experiment reports.

/// A simple aligned-column text table.
///
/// # Example
///
/// ```
/// use nora_eval::report::Table;
/// let mut t = Table::new(&["model", "acc"]);
/// t.row(&["opt-6.7b-sim", "87.2"]);
/// let s = t.render();
/// assert!(s.contains("opt-6.7b-sim"));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
    title: Option<String>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Self {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            title: None,
        }
    }

    /// Sets a title line printed above the table.
    pub fn with_title(mut self, title: &str) -> Self {
        self.title = Some(title.to_string());
        self
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header.
    pub fn row(&mut self, cells: &[&str]) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "column count mismatch");
        self.rows.push(cells.iter().map(|s| s.to_string()).collect());
        self
    }

    /// Appends a row of already-owned cells.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header.
    pub fn row_owned(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "column count mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        if let Some(t) = &self.title {
            out.push_str(t);
            out.push('\n');
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for c in 0..cols {
                if c > 0 {
                    line.push_str("  ");
                }
                let cell = &cells[c];
                line.push_str(cell);
                line.push_str(&" ".repeat(widths[c] - cell.len()));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Formats a probability as a percentage with two decimals, e.g. `"87.99"`.
pub fn pct(p: f64) -> String {
    format!("{:.2}", 100.0 * p)
}

/// Formats a float in compact scientific notation, e.g. `"1.55e-3"`.
pub fn sci(v: f64) -> String {
    format!("{v:.2e}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new(&["a", "bb"]).with_title("T");
        t.row(&["xxxx", "1"]);
        t.row(&["y", "22"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "T");
        assert!(lines[1].starts_with("a"));
        // all data lines align the second column
        let col = lines[3].find('1').unwrap();
        assert_eq!(lines[4].find("22").unwrap(), col);
    }

    #[test]
    fn pct_and_sci_formats() {
        assert_eq!(pct(0.8799), "87.99");
        assert_eq!(sci(0.00155), "1.55e-3");
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn wrong_row_width_panics() {
        Table::new(&["a"]).row(&["1", "2"]);
    }

    #[test]
    fn len_and_is_empty() {
        let mut t = Table::new(&["a"]);
        assert!(t.is_empty());
        t.row(&["1"]);
        assert_eq!(t.len(), 1);
    }
}
