//! Deterministic parallel execution for the NORA workspace.
//!
//! The workspace is hermetic (no external crates), so this module provides
//! the small parallel toolkit the simulator needs: a persistent worker pool
//! built on `std::thread`, plus ordered map/for-each helpers that distribute
//! independent work items across workers.
//!
//! # Determinism contract
//!
//! Every helper in this crate guarantees **bit-identical results at any
//! thread count**, provided the per-item closures are themselves independent
//! (no shared mutable state beyond what the helper hands out):
//!
//! * Results are merged **in item-index order**, never in completion order.
//! * Each item is executed exactly once, by exactly one thread.
//! * `NORA_THREADS=1` (or a single-CPU machine) collapses to a plain serial
//!   loop over the items in index order — the exact legacy code path.
//!
//! Floating-point reduction order is therefore the *caller's* job: a caller
//! that folds results must fold the returned index-ordered `Vec`, not
//! accumulate inside the parallel closures.
//!
//! # Thread-count resolution
//!
//! [`max_threads`] resolves, in priority order: a [`with_threads`] override
//! on the current thread (used by tests and sweep drivers), the
//! `NORA_THREADS` environment variable, then
//! [`std::thread::available_parallelism`]. Inside a parallel section the
//! count is pinned to 1 so nested calls run serially instead of deadlocking
//! or oversubscribing the pool.
//!
//! # Example
//!
//! ```
//! let squares = nora_parallel::map_indexed(8, |i| i * i);
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//! // Same result regardless of the thread count:
//! let serial = nora_parallel::with_threads(1, || nora_parallel::map_indexed(8, |i| i * i));
//! assert_eq!(serial, squares);
//! ```

mod iter;
mod pool;

pub use iter::{for_each_chunk_mut, for_each_index, map_indexed, map_slice_mut, map_vec};
pub use pool::run_on;

use std::cell::Cell;
use std::sync::OnceLock;

thread_local! {
    /// Per-thread override installed by [`with_threads`].
    static OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Number of logical CPUs visible to the process (at least 1).
///
/// Cached after the first query: `available_parallelism` consults cgroup
/// quota files on Linux, which costs microseconds per call — enough to
/// dominate a small GEMV when every `matmul`/`map_slice_mut` re-resolves
/// the thread count on its hot path.
pub fn available() -> usize {
    static AVAILABLE: OnceLock<usize> = OnceLock::new();
    *AVAILABLE.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// `NORA_THREADS`/[`available`] resolution, cached for the process lifetime.
/// The environment variable is a launch-time knob (tests use the race-free
/// [`with_threads`] override instead of mutating it), so reading it once is
/// sound — and keeps the per-call cost of [`max_threads`] to two
/// thread-local reads.
fn default_threads() -> usize {
    static DEFAULT: OnceLock<usize> = OnceLock::new();
    *DEFAULT.get_or_init(|| match std::env::var("NORA_THREADS") {
        Ok(v) => v
            .trim()
            .parse::<usize>()
            .ok()
            .filter(|&n| n > 0)
            .unwrap_or_else(available),
        Err(_) => available(),
    })
}

/// The thread count parallel helpers will use on this thread.
///
/// Resolution order: 1 inside an active parallel section (nested work runs
/// serially), then a [`with_threads`] override, then the `NORA_THREADS`
/// environment variable, then [`available`]. A zero or unparsable
/// `NORA_THREADS` falls back to [`available`].
pub fn max_threads() -> usize {
    if pool::in_parallel_section() {
        return 1;
    }
    if let Some(n) = OVERRIDE.with(Cell::get) {
        return n.max(1);
    }
    default_threads()
}

/// Total per-call work (in rough flop units) below which fanning out across
/// the pool costs more than it saves.
///
/// Bench-backed: at `NORA_THREADS=4` the latch handshake plus cross-core
/// cache traffic added ~35% to `tile_forward_averaged/16` (3.60ms → 4.97ms
/// in BENCH_pr6.json) whose per-dispatch work sits well under this line,
/// while the serving-round fan-outs (hundreds of thousands of flops per
/// slot) amortize it easily. The same cutoff already governs
/// `Matrix::try_matmul`'s row-chunk dispatch.
pub const MIN_PARALLEL_WORK: u64 = 1 << 20;

/// Picks the participant count for a fan-out of `items` tasks costing
/// roughly `work_per_item` flops each: 1 (serial, the exact legacy loop)
/// when the total work is below [`MIN_PARALLEL_WORK`], otherwise
/// [`max_threads`] capped at the item count.
///
/// Call sites gate their dispatch with this so tiny fan-outs — a 1×64
/// decode row over a 2-tile grid — skip the pool handshake entirely;
/// results are bit-identical either way under the determinism contract.
pub fn threads_for_work(items: usize, work_per_item: u64) -> usize {
    if (items as u64).saturating_mul(work_per_item) < MIN_PARALLEL_WORK {
        1
    } else {
        max_threads().min(items.max(1))
    }
}

/// Runs `f` with the thread count pinned to `n` on the current thread.
///
/// This is the race-free alternative to mutating `NORA_THREADS` from inside
/// a test: the override is thread-local, so concurrently running tests do
/// not observe each other's setting. Nested calls stack (the innermost
/// override wins); the previous value is restored even if `f` panics.
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(OVERRIDE.with(|c| c.replace(Some(n.max(1)))));
    f()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn available_is_positive() {
        assert!(available() >= 1);
    }

    #[test]
    fn with_threads_overrides_and_restores() {
        let outer = max_threads();
        let inner = with_threads(3, max_threads);
        assert_eq!(inner, 3);
        assert_eq!(max_threads(), outer);
        // Zero is clamped to 1.
        assert_eq!(with_threads(0, max_threads), 1);
        // Nested overrides stack.
        let nested = with_threads(5, || with_threads(2, max_threads));
        assert_eq!(nested, 2);
    }

    #[test]
    fn threads_for_work_gates_on_total_work() {
        with_threads(8, || {
            // Tiny fan-out: a 16-tile grid of 64×64 decode rows (≈65k flops
            // total) must run serial.
            assert_eq!(threads_for_work(16, 64 * 64), 1);
            // Heavy fan-out amortizes the pool handshake.
            assert_eq!(threads_for_work(8, 1 << 20), 8);
            // Participants never exceed the item count.
            assert_eq!(threads_for_work(2, 1 << 20), 2);
            // Zero items degrade gracefully.
            assert_eq!(threads_for_work(0, u64::MAX), 1);
        });
    }

    #[test]
    fn override_survives_panic() {
        let before = max_threads();
        let r = std::panic::catch_unwind(|| with_threads(7, || panic!("boom")));
        assert!(r.is_err());
        assert_eq!(max_threads(), before);
    }
}
