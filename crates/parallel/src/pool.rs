//! Persistent worker pool with scoped job submission.
//!
//! Workers are spawned lazily on first use, parked on a shared queue, and
//! reused for the lifetime of the process — so a hot loop (e.g. one analog
//! layer forward per token) pays a latch handshake per call, not a thread
//! spawn. Borrow-scoped closures are supported the same way scoped thread
//! pools do it: the submitting call erases the closure's lifetime and then
//! blocks until every helper has finished, so the borrow can never dangle.

use std::any::Any;
use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Shared job queue the workers park on.
struct Queue {
    jobs: Mutex<VecDeque<Job>>,
    ready: Condvar,
}

struct Pool {
    queue: Arc<Queue>,
    /// Workers spawned so far (grows to the largest requested count).
    spawned: Mutex<usize>,
}

static POOL: OnceLock<Pool> = OnceLock::new();

thread_local! {
    /// Set while this thread is executing inside a parallel section —
    /// permanently on pool workers, temporarily on a caller participating in
    /// its own `run_on`. Nested helpers observe it and run serially.
    static IN_SECTION: Cell<bool> = const { Cell::new(false) };
}

pub(crate) fn in_parallel_section() -> bool {
    IN_SECTION.with(Cell::get)
}

fn pool() -> &'static Pool {
    POOL.get_or_init(|| Pool {
        queue: Arc::new(Queue {
            jobs: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
        }),
        spawned: Mutex::new(0),
    })
}

fn ensure_workers(wanted: usize) {
    let p = pool();
    let mut count = p.spawned.lock().expect("pool lock");
    while *count < wanted {
        let queue = Arc::clone(&p.queue);
        std::thread::Builder::new()
            .name(format!("nora-par-{count}"))
            .spawn(move || worker_loop(&queue))
            .expect("failed to spawn pool worker");
        *count += 1;
    }
}

fn worker_loop(queue: &Queue) {
    IN_SECTION.with(|c| c.set(true));
    loop {
        let job = {
            let mut jobs = queue.jobs.lock().expect("pool lock");
            loop {
                if let Some(job) = jobs.pop_front() {
                    break job;
                }
                jobs = queue.ready.wait(jobs).expect("pool lock");
            }
        };
        job();
    }
}

/// Completion latch: counts helper jobs down and carries the first panic.
struct Latch {
    remaining: Mutex<usize>,
    done: Condvar,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

impl Latch {
    fn new(count: usize) -> Self {
        Self {
            remaining: Mutex::new(count),
            done: Condvar::new(),
            panic: Mutex::new(None),
        }
    }

    fn count_down(&self) {
        let mut left = self.remaining.lock().expect("latch lock");
        *left -= 1;
        if *left == 0 {
            self.done.notify_all();
        }
    }

    fn wait(&self) {
        let mut left = self.remaining.lock().expect("latch lock");
        while *left > 0 {
            left = self.done.wait(left).expect("latch lock");
        }
    }

    fn record_panic(&self, payload: Box<dyn Any + Send>) {
        let mut slot = self.panic.lock().expect("latch lock");
        slot.get_or_insert(payload);
    }

    fn take_panic(&self) -> Option<Box<dyn Any + Send>> {
        self.panic.lock().expect("latch lock").take()
    }
}

/// Executes `body` concurrently on `threads` participants (the calling
/// thread plus `threads − 1` pool workers) and returns once **all** of them
/// have finished. Panics in any participant are re-raised on the caller
/// after the section has fully drained.
///
/// `body` is typically a worker function that claims item indices from a
/// shared atomic counter — see [`crate::for_each_index`]. Inside the
/// section, [`crate::max_threads`] reports 1, so nested parallel calls
/// degrade to serial loops instead of deadlocking the pool.
pub fn run_on(threads: usize, body: &(dyn Fn() + Sync)) {
    let helpers = threads.saturating_sub(1);
    if helpers == 0 || in_parallel_section() {
        body();
        return;
    }
    ensure_workers(helpers);
    let latch = Arc::new(Latch::new(helpers));
    // SAFETY: the only references smuggled past the borrow checker are
    // `body` and `latch` captures inside the queued jobs. `run_on` does not
    // return (and cannot unwind) before `latch.wait()` observes every job's
    // `count_down`, which each job performs only after its last use of
    // `body`. The borrow therefore strictly outlives all uses.
    let body_static: &'static (dyn Fn() + Sync) = unsafe { std::mem::transmute(body) };
    {
        let p = pool();
        let mut jobs = p.queue.jobs.lock().expect("pool lock");
        for _ in 0..helpers {
            let latch = Arc::clone(&latch);
            jobs.push_back(Box::new(move || {
                if let Err(payload) = panic::catch_unwind(AssertUnwindSafe(body_static)) {
                    latch.record_panic(payload);
                }
                latch.count_down();
            }));
        }
        drop(jobs);
        p.queue.ready.notify_all();
    }
    // The caller participates too, with nested parallelism suppressed.
    IN_SECTION.with(|c| c.set(true));
    let caller = panic::catch_unwind(AssertUnwindSafe(body));
    IN_SECTION.with(|c| c.set(false));
    latch.wait();
    if let Err(payload) = caller {
        panic::resume_unwind(payload);
    }
    if let Some(payload) = latch.take_panic() {
        panic::resume_unwind(payload);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn all_participants_run() {
        let hits = AtomicUsize::new(0);
        run_on(4, &|| {
            hits.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn single_thread_runs_inline() {
        let hits = AtomicUsize::new(0);
        run_on(1, &|| {
            hits.fetch_add(1, Ordering::SeqCst);
            assert!(!in_parallel_section(), "inline call is not a section");
        });
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn nested_sections_degrade_to_serial() {
        let outer = AtomicUsize::new(0);
        let inner = AtomicUsize::new(0);
        run_on(3, &|| {
            outer.fetch_add(1, Ordering::SeqCst);
            assert!(in_parallel_section());
            // A nested call must run inline exactly once per participant.
            run_on(3, &|| {
                inner.fetch_add(1, Ordering::SeqCst);
            });
        });
        assert_eq!(outer.load(Ordering::SeqCst), 3);
        assert_eq!(inner.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn worker_panic_propagates_after_drain() {
        let result = panic::catch_unwind(|| {
            run_on(4, &|| panic!("worker exploded"));
        });
        assert!(result.is_err());
        // Pool must remain usable after a panicked section.
        let hits = AtomicUsize::new(0);
        run_on(4, &|| {
            hits.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 4);
    }
}
