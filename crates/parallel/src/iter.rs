//! Ordered parallel iteration helpers.
//!
//! All helpers distribute item indices through a shared atomic counter
//! (cheap dynamic load balancing — expensive items don't stall a static
//! partition) and write results into **index-addressed slots**, so the
//! returned order is always the input order regardless of which worker
//! finished first.

use crate::pool::run_on;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Raw pointer wrapper that may cross threads. Safety rests on the caller
/// guaranteeing disjoint index access (each index claimed exactly once via
/// the atomic counter).
struct SendPtr<T>(*mut T);

unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// Accessor (rather than field access) so closures capture the whole
    /// `SendPtr` — a bare `base.0` capture would grab the un-`Sync` raw
    /// pointer itself.
    fn get(&self) -> *mut T {
        self.0
    }
}

/// Picks the participant count for `n` items on the current thread.
fn threads_for(n: usize) -> usize {
    crate::max_threads().min(n)
}

/// Calls `f(i)` for every `i in 0..n`, distributing indices across threads.
///
/// With one thread (or one item) this is exactly `for i in 0..n { f(i) }`.
pub fn for_each_index(n: usize, f: impl Fn(usize) + Sync) {
    let threads = threads_for(n);
    if threads <= 1 {
        for i in 0..n {
            f(i);
        }
        return;
    }
    let next = AtomicUsize::new(0);
    run_on(threads, &|| loop {
        let i = next.fetch_add(1, Ordering::Relaxed);
        if i >= n {
            break;
        }
        f(i);
    });
}

/// Maps `f` over `0..n`, returning results in index order.
pub fn map_indexed<R: Send>(n: usize, f: impl Fn(usize) -> R + Sync) -> Vec<R> {
    let threads = threads_for(n);
    if threads <= 1 {
        return (0..n).map(f).collect();
    }
    let mut slots: Vec<MaybeUninit<R>> = Vec::with_capacity(n);
    // SAFETY: `MaybeUninit` needs no initialisation; length == capacity.
    unsafe { slots.set_len(n) };
    let base = SendPtr(slots.as_mut_ptr());
    let next = AtomicUsize::new(0);
    run_on(threads, &|| loop {
        let i = next.fetch_add(1, Ordering::Relaxed);
        if i >= n {
            break;
        }
        let value = f(i);
        // SAFETY: index `i` was claimed by exactly this thread, so the slot
        // write is unaliased; `run_on` returns only after all writes.
        unsafe { (*base.get().add(i)).write(value) };
    });
    // SAFETY: every slot in 0..n was written exactly once (the counter hands
    // each index to one worker and `run_on` waited for all of them);
    // `Vec<MaybeUninit<R>>` and `Vec<R>` share the same layout.
    unsafe {
        let ptr = slots.as_mut_ptr().cast::<R>();
        let cap = slots.capacity();
        std::mem::forget(slots);
        Vec::from_raw_parts(ptr, n, cap)
    }
}

/// Maps `f(index, &mut item)` over a mutable slice, returning results in
/// index order. Each item is visited by exactly one thread.
pub fn map_slice_mut<T: Send, R: Send>(
    items: &mut [T],
    f: impl Fn(usize, &mut T) -> R + Sync,
) -> Vec<R> {
    let n = items.len();
    let threads = threads_for(n);
    if threads <= 1 {
        return items
            .iter_mut()
            .enumerate()
            .map(|(i, item)| f(i, item))
            .collect();
    }
    let base = SendPtr(items.as_mut_ptr());
    map_indexed(n, |i| {
        // SAFETY: `map_indexed` hands index `i` to exactly one thread, so
        // the `&mut` borrows are disjoint; the slice outlives the call.
        let item = unsafe { &mut *base.get().add(i) };
        f(i, item)
    })
}

/// Maps `f` over an owned `Vec`, consuming the items, results in index
/// order.
pub fn map_vec<T: Send, R: Send>(items: Vec<T>, f: impl Fn(T) -> R + Sync) -> Vec<R> {
    let mut slots: Vec<Option<T>> = items.into_iter().map(Some).collect();
    map_slice_mut(&mut slots, |_, slot| {
        f(slot.take().expect("each slot is taken exactly once"))
    })
}

/// Splits `data` into consecutive chunks of `chunk_len` (the last may be
/// shorter) and calls `f(chunk_index, chunk)` for each, in parallel.
///
/// # Panics
///
/// Panics if `chunk_len == 0`.
pub fn for_each_chunk_mut<T: Send>(
    data: &mut [T],
    chunk_len: usize,
    f: impl Fn(usize, &mut [T]) + Sync,
) {
    assert!(chunk_len > 0, "chunk_len must be positive");
    let total = data.len();
    let n_chunks = total.div_ceil(chunk_len);
    let threads = threads_for(n_chunks);
    if threads <= 1 {
        for (i, chunk) in data.chunks_mut(chunk_len).enumerate() {
            f(i, chunk);
        }
        return;
    }
    let base = SendPtr(data.as_mut_ptr());
    for_each_index(n_chunks, |i| {
        let start = i * chunk_len;
        let len = chunk_len.min(total - start);
        // SAFETY: chunk `i` covers `start..start + len`, disjoint from every
        // other chunk; each chunk index is claimed by exactly one thread.
        let chunk = unsafe { std::slice::from_raw_parts_mut(base.get().add(start), len) };
        f(i, chunk);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::with_threads;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn map_indexed_preserves_order() {
        for threads in [1, 2, 4, 8] {
            let out = with_threads(threads, || map_indexed(100, |i| i * 3));
            assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn for_each_index_covers_every_index_once() {
        let counts: Vec<AtomicUsize> = (0..64).map(|_| AtomicUsize::new(0)).collect();
        with_threads(4, || {
            for_each_index(64, |i| {
                counts[i].fetch_add(1, Ordering::SeqCst);
            });
        });
        assert!(counts.iter().all(|c| c.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn map_slice_mut_mutates_and_returns_in_order() {
        let mut items: Vec<u64> = (0..50).collect();
        let doubled = with_threads(4, || {
            map_slice_mut(&mut items, |i, v| {
                *v += 1;
                (i as u64) * 2
            })
        });
        assert_eq!(items, (1..=50).collect::<Vec<u64>>());
        assert_eq!(doubled, (0..50).map(|i| i * 2).collect::<Vec<u64>>());
    }

    #[test]
    fn map_vec_consumes_in_order() {
        let items: Vec<String> = (0..20).map(|i| format!("s{i}")).collect();
        let out = with_threads(3, || map_vec(items, |s| s + "!"));
        assert_eq!(out[7], "s7!");
        assert_eq!(out.len(), 20);
    }

    #[test]
    fn chunks_partition_exactly() {
        let mut data = vec![0u32; 103];
        with_threads(4, || {
            for_each_chunk_mut(&mut data, 10, |ci, chunk| {
                for v in chunk {
                    *v += 1 + ci as u32;
                }
            });
        });
        // Every element touched exactly once, with its chunk's value.
        for (i, &v) in data.iter().enumerate() {
            assert_eq!(v, 1 + (i / 10) as u32, "element {i}");
        }
    }

    #[test]
    fn empty_inputs_are_noops() {
        assert!(map_indexed(0, |i| i).is_empty());
        let mut empty: Vec<u8> = Vec::new();
        for_each_chunk_mut(&mut empty, 4, |_, _| panic!("must not be called"));
    }

    #[test]
    fn map_panic_propagates() {
        let r = std::panic::catch_unwind(|| {
            with_threads(4, || {
                map_indexed(16, |i| {
                    if i == 7 {
                        panic!("item 7 failed");
                    }
                    i
                })
            })
        });
        assert!(r.is_err());
    }
}
