//! S-shape device nonlinearity.
//!
//! Real DAC output drivers and cell I–V characteristics compress large
//! excursions, bending the ideally linear input transfer into an "S" shape.
//! We model the transfer as an odd, saturating, slope-normalised tanh:
//!
//! ```text
//! f(x) = tanh(k·x) / k,   k > 0
//! ```
//!
//! `f` has unit slope at the origin (small signals are untouched) and
//! progressively compresses towards `±1/k`. `k = 0` degenerates to the
//! identity. The sensitivity study (paper Fig. 3g) sweeps `k` until the
//! induced MSE matches the other non-idealities.

/// S-shape transfer with curvature `k` applied to one value.
///
/// `k <= 0` returns `x` unchanged.
pub fn s_shape(x: f32, k: f32) -> f32 {
    if k <= 0.0 {
        return x;
    }
    (k * x).tanh() / k
}

/// Applies the S-shape transfer to a slice in place.
pub fn s_shape_slice(xs: &mut [f32], k: f32) {
    if k <= 0.0 {
        return;
    }
    for v in xs {
        *v = (k * *v).tanh() / k;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_curvature_is_identity() {
        assert_eq!(s_shape(0.7, 0.0), 0.7);
        assert_eq!(s_shape(-0.3, -1.0), -0.3);
    }

    #[test]
    fn odd_symmetry() {
        for i in 0..20 {
            let x = i as f32 / 10.0;
            assert!((s_shape(x, 2.0) + s_shape(-x, 2.0)).abs() < 1e-7);
        }
    }

    #[test]
    fn unit_slope_at_origin() {
        let eps = 1e-4f32;
        let slope = (s_shape(eps, 3.0) - s_shape(-eps, 3.0)) / (2.0 * eps);
        assert!((slope - 1.0).abs() < 1e-3, "slope {slope}");
    }

    #[test]
    fn compresses_large_values() {
        let k = 2.0;
        assert!(s_shape(10.0, k) < 10.0);
        assert!(s_shape(10.0, k) <= 1.0 / k + 1e-6);
    }

    #[test]
    fn monotone_increasing() {
        let k = 1.5;
        let mut prev = f32::NEG_INFINITY;
        for i in -50..=50 {
            let y = s_shape(i as f32 / 10.0, k);
            assert!(y > prev);
            prev = y;
        }
    }

    #[test]
    fn stronger_curvature_larger_distortion() {
        let x = 0.8f32;
        let weak = (s_shape(x, 0.5) - x).abs();
        let strong = (s_shape(x, 3.0) - x).abs();
        assert!(strong > weak);
    }

    #[test]
    fn slice_matches_scalar() {
        let mut xs = [0.1f32, -0.9, 2.0];
        s_shape_slice(&mut xs, 1.2);
        for (v, orig) in xs.iter().zip([0.1f32, -0.9, 2.0]) {
            assert_eq!(*v, s_shape(orig, 1.2));
        }
    }
}
