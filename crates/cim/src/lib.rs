//! Analog compute-in-memory (CIM) tile simulator.
//!
//! This crate is the workspace's stand-in for the IBM analog in-memory
//! hardware acceleration kit (AIHWKIT) that the NORA paper uses for its
//! evaluation. It simulates GEMV execution on NVM crossbar tiles with the
//! full non-ideality inventory of the paper's Table I:
//!
//! | Category | Non-ideality | Module |
//! |---|---|---|
//! | IO | ADC quantization noise | [`converter`] |
//! | IO | DAC quantization noise | [`converter`] |
//! | IO | Additive output noise | `tile` (config `out_noise`) |
//! | IO | Additive input noise | `tile` (config `in_noise`) |
//! | IO | S-shape nonlinearity | [`nonlinearity`] |
//! | Tile | Programming noise | via [`nora_device`] |
//! | Tile | Short-term read noise | `tile` (config `w_noise`) |
//! | Tile | IR-drop | [`ir_drop`] |
//!
//! The tile implements the paper's Eq. (3)–(5) (and, with a smoothing vector
//! installed, the NORA-rescaled Eq. (6)–(8)):
//!
//! ```text
//! y_ij = α_i γ_j f_adc( Σ_k (w̃_kj · x̃_ik) + σ_out ξ )
//! w̃_kj = f_map(w_kj s_k / γ_j) + σ_w ξ     γ_j = max|w_j ⊙ s| / g_max
//! x̃_ik = f_dac(x_ik / (α_i s_k)) + σ_in ξ  α_i = max|x_i ⊘ s|
//! ```
//!
//! [`AnalogLinear`] partitions arbitrarily large weight matrices into a grid
//! of [`AnalogTile`]s (512×512 by default, per Table II), each with its own
//! converters and noise streams, and accumulates partial sums digitally —
//! mirroring the hybrid analog/digital mapping of the paper's Fig. 2.
//!
//! # Example
//!
//! ```
//! use nora_cim::{AnalogLinear, TileConfig};
//! use nora_tensor::{Matrix, rng::Rng};
//!
//! let mut rng = Rng::seed_from(0);
//! let w = Matrix::random_normal(64, 32, 0.0, 0.1, &mut rng);
//! let mut layer = AnalogLinear::new(w.clone(), None, TileConfig::paper_default(), 7);
//! let x = Matrix::random_normal(4, 64, 0.0, 1.0, &mut rng);
//! let y = layer.forward(&x);
//! let y_ref = x.matmul(&w);
//! assert!(y.mse(&y_ref) < 0.05); // noisy, but in the right ballpark
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod budget;
pub mod converter;
pub mod energy;
pub mod ir_drop;
pub mod management;
pub mod noise;
pub mod nonlinearity;

mod config;
mod error;
mod health;
mod linear;
mod tile;

pub use budget::NoiseBudget;
pub use config::{InputEncoding, Resolution, TileConfig, WeightSource};
pub use energy::{AreaModel, EnergyModel, EnergyReport};
pub use error::CimError;
pub use health::{
    export_events, export_health, AbftReport, FaultTolerance, HealthState, TileEvent,
    TileEventKind, TileHealth, TileSite,
};
pub use linear::{AnalogLinear, KeyedCtx, RecalOutcome, TileEffect};
// Re-exported so downstream crates can build a [`TileConfig`] fault plan
// without depending on `nora-device` directly.
pub use nora_device::{CellFault, FaultPlan, TileFaultMap};
pub use management::{BoundManagement, NoiseManagement};
pub use noise::NonIdeality;
pub use tile::{AnalogTile, DriftCompensation, ForwardStats, TileCtx};
