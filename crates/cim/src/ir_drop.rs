//! IR-drop along crossbar bitlines.
//!
//! The read current of every cell in a column flows through the same metal
//! bitline; finite wire resistance makes the voltage seen by cells far from
//! the sense amplifier sag, reducing their effective contribution. The net
//! effect, to first order, is a multiplicative droop on each column's
//! accumulated output that grows with
//!
//! * the total conductance programmed on the column (more current),
//! * the input activity level (more current), and
//! * the square of the array height (longer wire × more current).
//!
//! We use the first-order closed-form used by array-level simulators:
//!
//! ```text
//! z'_ij = z_ij · (1 − droop_ij)
//! droop_ij = scale · κ · ḡ_j · ū_i · (rows / rows_ref)²
//! ```
//!
//! where `ḡ_j` is the column's mean relative conductance, `ū_i` the mean
//! absolute normalised input of the sample, and `κ` calibrates the nominal
//! (scale = 1) droop to the sub-percent level measured on 512-row PCM
//! arrays — consistent with the paper's finding that transformers are
//! robust to IR-drop at nominal scale (Fig. 3e).

/// First-order IR-drop model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IrDropModel {
    /// User-facing scale (Table II `ir_drop`, 1.0 nominal, 0 disables).
    pub scale: f32,
    /// Nominal droop coefficient at full conductance/activity on a
    /// reference-height array.
    pub kappa: f32,
    /// Reference array height for which `kappa` is calibrated.
    pub rows_ref: usize,
}

impl IrDropModel {
    /// Creates a model with the nominal κ calibration.
    pub fn new(scale: f32) -> Self {
        Self {
            scale,
            kappa: 0.03,
            rows_ref: 512,
        }
    }

    /// Whether the model is a no-op.
    pub fn is_off(&self) -> bool {
        self.scale <= 0.0
    }

    /// Per-column droop factors (excluding the input-activity term).
    ///
    /// `col_mean_rel_conductance[j]` is the column's mean conductance
    /// relative to `g_max`, in `[0, 1]` for single-cell encodings (the
    /// differential pair contributes `|w|`, so the mean of `|ŵ_j|` is the
    /// right input).
    pub fn column_factors(&self, col_mean_rel_conductance: &[f32], rows: usize) -> Vec<f32> {
        let height = (rows as f32 / self.rows_ref as f32).powi(2);
        col_mean_rel_conductance
            .iter()
            .map(|&g| (self.scale * self.kappa * g.max(0.0) * height).min(0.9))
            .collect()
    }

    /// Applies the droop to one output row in place.
    ///
    /// `mean_abs_input` is `ū_i`, the mean absolute normalised DAC input of
    /// the sample.
    ///
    /// # Panics
    ///
    /// Panics if `z.len() != column_factors.len()`.
    pub fn apply(&self, z: &mut [f32], column_factors: &[f32], mean_abs_input: f32) {
        assert_eq!(
            z.len(),
            column_factors.len(),
            "ir-drop factor length mismatch"
        );
        if self.is_off() {
            return;
        }
        let u = mean_abs_input.clamp(0.0, 1.0);
        for (v, &f) in z.iter_mut().zip(column_factors) {
            *v *= Self::droop_multiplier(f, u);
        }
    }

    /// The multiplicative droop [`apply`](IrDropModel::apply) would use for
    /// one column at activity `mean_abs_input` — exposed so a fused
    /// conversion epilogue can apply the droop per element instead of in a
    /// dedicated sweep. Returns 1 when the model is off.
    #[inline]
    pub fn multiplier(&self, column_factor: f32, mean_abs_input: f32) -> f32 {
        if self.is_off() {
            return 1.0;
        }
        Self::droop_multiplier(column_factor, mean_abs_input.clamp(0.0, 1.0))
    }

    /// Shared per-element droop expression of `apply`/`multiplier`
    /// (`u` pre-clamped to `[0, 1]`).
    #[inline]
    fn droop_multiplier(column_factor: f32, u: f32) -> f32 {
        1.0 - (column_factor * u).min(0.9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_scale_is_noop() {
        let m = IrDropModel::new(0.0);
        assert!(m.is_off());
        let f = m.column_factors(&[0.5, 1.0], 512);
        let mut z = [1.0f32, 2.0];
        m.apply(&mut z, &f, 0.5);
        assert_eq!(z, [1.0, 2.0]);
    }

    #[test]
    fn nominal_droop_is_sub_percent_scale() {
        let m = IrDropModel::new(1.0);
        let f = m.column_factors(&[0.25], 512);
        // typical column: ≤ 1% droop before activity scaling
        assert!(f[0] < 0.01, "factor {}", f[0]);
        assert!(f[0] > 0.0);
    }

    #[test]
    fn droop_grows_with_conductance_and_height() {
        let m = IrDropModel::new(1.0);
        let low = m.column_factors(&[0.1], 512)[0];
        let high = m.column_factors(&[0.9], 512)[0];
        assert!(high > low);
        let short = m.column_factors(&[0.5], 128)[0];
        let tall = m.column_factors(&[0.5], 1024)[0];
        assert!(tall > short);
        assert!((tall / short - 64.0).abs() < 1e-3); // (1024/128)² = 64
    }

    #[test]
    fn apply_reduces_magnitude_only() {
        let m = IrDropModel::new(10.0);
        let f = m.column_factors(&[1.0, 1.0], 512);
        let mut z = [4.0f32, -4.0];
        m.apply(&mut z, &f, 1.0);
        assert!(z[0] > 0.0 && z[0] < 4.0);
        assert!(z[1] < 0.0 && z[1] > -4.0);
        assert_eq!(z[0], -z[1]);
    }

    #[test]
    fn droop_is_capped() {
        let m = IrDropModel::new(1e6);
        let f = m.column_factors(&[1.0], 512);
        assert!(f[0] <= 0.9);
        let mut z = [1.0f32];
        m.apply(&mut z, &f, 1.0);
        assert!(z[0] >= 0.1 - 1e-6);
    }

    #[test]
    fn activity_scales_droop() {
        let m = IrDropModel::new(5.0);
        let f = m.column_factors(&[0.8], 512);
        let mut quiet = [1.0f32];
        let mut busy = [1.0f32];
        m.apply(&mut quiet, &f, 0.1);
        m.apply(&mut busy, &f, 1.0);
        assert!(busy[0] < quiet[0]);
    }
}
