//! Input-range ("noise") and saturation ("bound") management policies.
//!
//! Before a vector is streamed into the DACs it is divided by a linear
//! factor `α` (paper §II-A). Choosing `α` trades input clipping against
//! quantization resolution and SNR:
//!
//! * **Noise management** picks the initial `α` per input vector.
//! * **Bound management** reacts to ADC saturation by enlarging `α` and
//!   re-running the conversion.
//!
//! These are the dynamic techniques of Gokmen et al. and AIHWKIT that the
//! paper shows become *less effective* on LLMs: with extreme activation
//! outliers, every choice of `α` either clips the outliers or starves the
//! bulk of the distribution of resolution. NORA attacks the distribution
//! itself instead.

/// Policy for the initial per-vector input scaling factor `α`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NoiseManagement {
    /// No dynamic scaling: `α = 1` (inputs are assumed pre-scaled).
    None,
    /// `α = max|x|` — guarantees no input clipping (AIHWKIT `ABS_MAX`,
    /// the paper's setting).
    AbsMax,
    /// `α = c · mean|x|` — better resolution for heavy-tailed inputs at the
    /// cost of clipping the tail (AIHWKIT `AVG_ABS_MAX`-style). The factor
    /// `c` multiplies the mean absolute value.
    AvgAbsMax(f32),
    /// `α` = the `p`-th percentile of `|x|` (`p ∈ (0, 100]`) — clips exactly
    /// the top `100−p`% of inputs (AIHWKIT `ABS_MAX_NP_SUM`-style
    /// percentile management).
    Percentile(f32),
    /// Fixed constant `α`.
    Constant(f32),
}

impl NoiseManagement {
    /// Computes `α` for one input vector (already divided by the smoothing
    /// vector when NORA is active).
    ///
    /// Returns 0 when the vector is all-zero under `AbsMax`/`AvgAbsMax`
    /// (callers short-circuit to a zero output row).
    pub fn alpha(&self, x: &[f32]) -> f32 {
        match *self {
            NoiseManagement::None => 1.0,
            NoiseManagement::AbsMax => x.iter().fold(0.0f32, |m, &v| m.max(v.abs())),
            NoiseManagement::AvgAbsMax(c) => {
                if x.is_empty() {
                    return 0.0;
                }
                let mean_abs: f32 =
                    x.iter().map(|v| v.abs()).sum::<f32>() / x.len() as f32;
                c * mean_abs
            }
            NoiseManagement::Percentile(p) => {
                assert!(
                    p > 0.0 && p <= 100.0,
                    "percentile must be in (0, 100], got {p}"
                );
                if x.is_empty() {
                    return 0.0;
                }
                let abs: Vec<f32> = x.iter().map(|v| v.abs()).collect();
                nora_tensor::stats::percentile(&abs, p as f64)
            }
            NoiseManagement::Constant(a) => a,
        }
    }
}

/// Policy for recovering from ADC saturation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundManagement {
    /// Accept saturated outputs as-is.
    None,
    /// On saturation, double `α` and redo the conversion, up to `max_rounds`
    /// extra attempts (AIHWKIT `ITERATIVE`).
    Iterative {
        /// Maximum number of α-doubling retries.
        max_rounds: u32,
    },
}

impl BoundManagement {
    /// Maximum retries allowed by the policy.
    pub fn max_rounds(&self) -> u32 {
        match *self {
            BoundManagement::None => 0,
            BoundManagement::Iterative { max_rounds } => max_rounds,
        }
    }
}

/// Canonical counter name of extra conversion rounds forced by bound
/// management (the α-doubling retries of the `Iterative` policy).
pub const RETRIES_METRIC: &str = "cim.bound_mgmt.retries";

/// Publishes a bound-management retry count into `m` under
/// [`RETRIES_METRIC`].
///
/// The count comes from the deterministic per-tile
/// [`crate::ForwardStats::bound_mgmt_retries`] counters, so exports merged
/// in grid order agree at any `NORA_THREADS` level.
pub fn export_bound_management(retries: u64, m: &mut nora_obs::Metrics) {
    m.add(RETRIES_METRIC, retries);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abs_max_is_the_max() {
        let nm = NoiseManagement::AbsMax;
        assert_eq!(nm.alpha(&[0.5, -2.0, 1.0]), 2.0);
        assert_eq!(nm.alpha(&[0.0, 0.0]), 0.0);
    }

    #[test]
    fn avg_abs_max_scales_mean() {
        let nm = NoiseManagement::AvgAbsMax(3.0);
        assert!((nm.alpha(&[1.0, -1.0, 4.0]) - 6.0).abs() < 1e-6);
        assert_eq!(nm.alpha(&[]), 0.0);
    }

    #[test]
    fn percentile_clips_exactly_the_tail() {
        let nm = NoiseManagement::Percentile(99.0);
        let mut x: Vec<f32> = (0..99).map(|i| (i + 1) as f32 / 100.0).collect();
        x.push(50.0); // one outlier
        let alpha = nm.alpha(&x);
        // 99th percentile of |x| sits between the bulk max and the outlier.
        assert!((0.99..50.0).contains(&alpha), "alpha {alpha}");
        assert_eq!(nm.alpha(&[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "percentile must be in")]
    fn bad_percentile_panics() {
        NoiseManagement::Percentile(0.0).alpha(&[1.0]);
    }

    #[test]
    fn none_and_constant() {
        assert_eq!(NoiseManagement::None.alpha(&[9.0]), 1.0);
        assert_eq!(NoiseManagement::Constant(2.5).alpha(&[9.0]), 2.5);
    }

    #[test]
    fn avg_abs_max_clips_outliers_abs_max_does_not() {
        // The motivating trade-off: for outlier-heavy inputs AvgAbsMax gives
        // a much smaller α (better bulk resolution, clipped outlier).
        let x: Vec<f32> = {
            let mut v = vec![0.01f32; 999];
            v.push(100.0);
            v
        };
        let a_absmax = NoiseManagement::AbsMax.alpha(&x);
        let a_avg = NoiseManagement::AvgAbsMax(3.0).alpha(&x);
        assert_eq!(a_absmax, 100.0);
        assert!(a_avg < 1.0, "avg α {a_avg}");
    }

    #[test]
    fn bound_rounds() {
        assert_eq!(BoundManagement::None.max_rounds(), 0);
        assert_eq!(
            BoundManagement::Iterative { max_rounds: 3 }.max_rounds(),
            3
        );
    }
}
