//! Queryable per-stage noise and quantizer budget of a [`TileConfig`].
//!
//! The forward path in [`crate::tile`] derives the per-stage constants it
//! needs (converter step sizes, noise σ, IR-drop coefficients, programming
//! error statistics) inline during tile construction. Analytic consumers —
//! the closed-form error-propagation model in `nora-eval` and the
//! `design_space` Pareto sweeps — need the same numbers *without* building a
//! tile, so this module factors every stage parameter into one queryable
//! struct. [`TileConfig::noise_budget`] is the single source of truth: the
//! tile's own ADC LSB is taken from it, so the numbers the analytic model
//! sees are bit-identical to what the simulator uses.

use crate::config::{InputEncoding, Resolution, TileConfig, WeightSource};
use crate::ir_drop::IrDropModel;
use nora_device::PcmModel;

/// Standard normal pdf.
pub fn phi(x: f64) -> f64 {
    (-0.5 * x * x).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Standard normal CDF via the Abramowitz–Stegun 7.1.26 `erf` rational
/// approximation (|ε| < 1.5e-7 — far below programming-noise scales).
pub fn normal_cdf(x: f64) -> f64 {
    let z = x / std::f64::consts::SQRT_2;
    let sign = if z < 0.0 { -1.0 } else { 1.0 };
    let z = z.abs();
    let t = 1.0 / (1.0 + 0.3275911 * z);
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    let erf = sign * (1.0 - poly * (-z * z).exp());
    0.5 * (1.0 + erf)
}

/// Mean and variance of `clamp(N(t, σ), 0, hi)` (a doubly censored normal —
/// the exact law of one single-shot PCM programming draw).
fn censored_normal_moments(t: f64, sigma: f64, hi: f64) -> (f64, f64) {
    if sigma <= 0.0 {
        let x = t.clamp(0.0, hi);
        return (x, 0.0);
    }
    let a = (0.0 - t) / sigma;
    let b = (hi - t) / sigma;
    let (pa, pb) = (normal_cdf(a), normal_cdf(b));
    let (fa, fb) = (phi(a), phi(b));
    let in_mass = pb - pa;
    // E[Z·1{a<Z<b}] and E[Z²·1{a<Z<b}] for Z ~ N(0,1).
    let ez = fa - fb;
    let ez2 = in_mass + a * fa - b * fb;
    let mean = hi * (1.0 - pb) + t * in_mass + sigma * ez;
    let m2 = hi * hi * (1.0 - pb)
        + t * t * in_mass
        + 2.0 * t * sigma * ez
        + sigma * sigma * ez2;
    (mean, (m2 - mean * mean).max(0.0))
}

/// Mean and variance of `min(t·exp(N(0, σ)), hi)` for `t > 0` (the exact
/// law of one ReRAM programming draw; the low clamp at 0 never binds).
fn censored_lognormal_moments(t: f64, sigma: f64, hi: f64) -> (f64, f64) {
    if sigma <= 0.0 || t <= 0.0 {
        let x = t.min(hi);
        return (x, 0.0);
    }
    let c = (hi / t).ln() / sigma;
    let tail = 1.0 - normal_cdf(c);
    let mean = t * (0.5 * sigma * sigma).exp() * normal_cdf(c - sigma) + hi * tail;
    let m2 = t * t * (2.0 * sigma * sigma).exp() * normal_cdf(c - 2.0 * sigma) + hi * hi * tail;
    (mean, (m2 - mean * mean).max(0.0))
}

/// Per-stage error parameters of a tile configuration, in the units the
/// forward path uses.
///
/// Built by [`TileConfig::noise_budget`]. Converter steps follow the
/// mid-rise grid law (`Δ = 2·bound / steps`, zero when the stage is ideal
/// or unbounded — exactly the ADC-LSB rule the tile itself uses for its
/// ABFT noise floor). Programming-error statistics come from the exact
/// censored single-shot laws of the configured device model, queryable per
/// normalised weight via [`NoiseBudget::prog_moments`].
#[derive(Debug, Clone)]
pub struct NoiseBudget {
    /// DAC quantization step on the normalised (post-`α`) input grid; 0
    /// when the DAC is ideal.
    pub dac_step: f32,
    /// DAC full-scale bound.
    pub dac_bound: f32,
    /// ADC quantization step in accumulation units; 0 when the ADC is
    /// ideal or unbounded.
    pub adc_step: f32,
    /// ADC full-scale bound.
    pub adc_bound: f32,
    /// Weight-quantizer step on the γ-normalised weight grid (`bound` 1);
    /// 0 when weight quantization is off.
    pub weight_step: f32,
    /// Additive input-noise σ (applied after the DAC, before the S-shape).
    pub in_sigma: f32,
    /// Additive output-noise σ (applied after IR droop, before the ADC).
    pub out_sigma: f32,
    /// Short-term read-noise σ per unit drive norm: output `j` picks up
    /// `N(0, read_sigma · ‖x̂‖₂)` before the IR droop.
    pub read_sigma: f32,
    /// S-shape driver nonlinearity coefficient (0 = linear).
    pub s_shape: f32,
    /// The IR-drop model (scale, κ, reference rows) for this config.
    pub ir: IrDropModel,
    /// Physical rows the budget was evaluated for (drives the IR-drop
    /// quadratic).
    pub rows: usize,
    /// Read-averaging repeats per conversion round.
    pub read_averaging: u32,
    /// Magnitude bit-planes streamed per input when bit-serial encoding is
    /// configured; `None` for analog multi-level drive.
    pub bit_serial_bits: Option<u32>,
    /// Weight bit-slices per cell pair.
    pub weight_slices: u32,
    /// Radix between adjacent weight slices.
    pub slice_radix: f32,
    /// Write–verify iterations per cell (1 = single-shot).
    pub write_verify_iters: u32,
    /// Full-scale conductance, µS.
    pub g_max: f32,
    /// The weight programming source.
    pub source: WeightSource,
    /// Whether exact-zero weights are left unprogrammed (pruned N:M
    /// cells): [`NoiseBudget::prog_moments`] then reports `(0, 0)` for
    /// them instead of the zero-target censored draw.
    pub prune_zero_cells: bool,
}

/// Mid-rise converter step: `2·bound / steps`, or 0 for ideal/unbounded
/// stages. Shared by the tile (ADC LSB) and the analytic model, so both see
/// the identical f32 value.
fn converter_step(res: Resolution, bound: f32) -> f32 {
    match res.steps() {
        Some(n) if bound.is_finite() => 2.0 * bound / n as f32,
        _ => 0.0,
    }
}

impl NoiseBudget {
    /// Per-column IR-drop droop fractions for the given column mean
    /// relative conductances (delegates to [`IrDropModel::column_factors`]
    /// at the budget's row count).
    pub fn ir_column_factors(&self, col_mean_rel_g: &[f32]) -> Vec<f32> {
        self.ir.column_factors(col_mean_rel_g, self.rows)
    }

    /// Exact mean and variance of the *effective* normalised weight after
    /// programming a target `w_hat ∈ [-1, 1]`, read back at the reference
    /// time (drift factor 1, stochastic read noise excluded — the same
    /// deterministic read the tile uses for its reference weights).
    ///
    /// Differential-pair encoding programs the active cell at
    /// `|w|·g_max` and the complementary cell at 0; both draws are pushed
    /// through the device's exact censored single-shot law, so rail-level
    /// clamping (e.g. the γ-normalised column maxima at `|ŵ| = 1`) and the
    /// half-normal zero-cell floor of PCM appear as genuine mean shifts.
    ///
    /// Approximations, documented: write–verify (`write_verify_iters > 1`)
    /// is modelled as a residual uniform within the verify tolerance
    /// (`0.1·σ_prog(target)`, floored at 1e-3 µS) — unbiased, variance
    /// `tol²/3` per cell; bit-sliced mappings (`weight_slices > 1`) keep
    /// the single-slice mean and divide σ by `radix^(slices-1)`.
    pub fn prog_moments(&self, w_hat: f32) -> (f64, f64) {
        let w = if w_hat.is_nan() { 0.0 } else { w_hat.clamp(-1.0, 1.0) };
        // Pruned cells are never programmed: exactly zero, exactly certain.
        if self.prune_zero_cells && w == 0.0 && self.weight_slices <= 1 {
            return (0.0, 0.0);
        }
        let g_max = self.g_max as f64;
        let (mean, var) = match self.source {
            WeightSource::Ideal => return (f64::from(w), 0.0),
            WeightSource::Pcm(scale) => {
                let pcm = PcmModel {
                    g_max: self.g_max,
                    prog_noise_scale: scale,
                    ..PcmModel::default()
                };
                let t_active = (f64::from(w.abs()) * g_max).min(g_max);
                let sig_a = f64::from(pcm.prog_sigma(t_active as f32));
                let sig_0 = f64::from(pcm.prog_sigma(0.0));
                if self.write_verify_iters > 1 {
                    let tol = |s: f64| (0.1 * s).max(1e-3);
                    let v = (tol(sig_a).powi(2) + tol(sig_0).powi(2)) / 3.0;
                    (f64::from(w.abs()) * g_max, v)
                } else {
                    let (m_a, v_a) = censored_normal_moments(t_active, sig_a, g_max);
                    let (m_0, v_0) = censored_normal_moments(0.0, sig_0, g_max);
                    (m_a - m_0, v_a + v_0)
                }
            }
            WeightSource::Reram(sigma_ln) => {
                let t_active = (f64::from(w.abs()) * g_max).min(g_max);
                censored_lognormal_moments(t_active, f64::from(sigma_ln), g_max)
            }
        };
        let slice_gain = if self.weight_slices > 1 {
            f64::from(self.slice_radix).powi(self.weight_slices as i32 - 1)
        } else {
            1.0
        };
        let signed_mean = if w < 0.0 { -mean } else { mean };
        if self.weight_slices > 1 {
            (f64::from(w), var / (g_max * g_max * slice_gain * slice_gain))
        } else {
            (signed_mean / g_max, var / (g_max * g_max))
        }
    }

    /// Programming-error σ (relative, normalised-weight units) at `w_hat`.
    pub fn prog_sigma_rel(&self, w_hat: f32) -> f64 {
        self.prog_moments(w_hat).1.sqrt()
    }
}

impl TileConfig {
    /// The per-stage noise/quantizer budget of this configuration for a
    /// tile block with `rows` driven input lines.
    ///
    /// This is the queryable form of the constants the forward path bakes
    /// into a constructed tile; the tile's own ADC LSB is taken from
    /// `noise_budget(rows).adc_step`, so the two can never drift apart.
    pub fn noise_budget(&self, rows: usize) -> NoiseBudget {
        NoiseBudget {
            dac_step: converter_step(self.dac, self.dac_bound),
            dac_bound: self.dac_bound,
            adc_step: converter_step(self.adc, self.adc_bound),
            adc_bound: self.adc_bound,
            weight_step: converter_step(self.weight_quant, 1.0),
            in_sigma: self.in_noise,
            out_sigma: self.out_noise,
            read_sigma: self.w_noise,
            s_shape: self.s_shape,
            ir: IrDropModel::new(self.ir_drop),
            rows,
            read_averaging: self.read_averaging.max(1),
            bit_serial_bits: match self.input_encoding {
                InputEncoding::Analog => None,
                InputEncoding::BitSerial { bits } => Some(bits),
            },
            weight_slices: self.weight_slices,
            slice_radix: self.slice_radix,
            write_verify_iters: self.write_verify_iters,
            g_max: self.g_max,
            source: self.weight_source,
            prune_zero_cells: self.prune_zero_cells,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nora_device::{NvmModel, ReramModel};
    use nora_tensor::rng::Rng;

    #[test]
    fn adc_step_matches_the_tile_lsb_law() {
        // Finite bound + stepped ADC: the historical inline expression.
        let cfg = TileConfig::paper_default();
        let b = cfg.noise_budget(512);
        let n = cfg.adc.steps().unwrap();
        assert_eq!(b.adc_step, 2.0 * cfg.adc_bound / n as f32);

        // Ideal ADC and unbounded ADC both collapse to 0.
        let mut ideal = TileConfig::ideal();
        assert_eq!(ideal.noise_budget(512).adc_step, 0.0);
        ideal.adc = Resolution::bits(7); // stepped but unbounded
        assert_eq!(ideal.adc_bound, f32::INFINITY);
        assert_eq!(ideal.noise_budget(512).adc_step, 0.0);
    }

    #[test]
    fn dac_and_weight_steps_follow_the_mid_rise_grid() {
        let mut cfg = TileConfig::paper_default();
        cfg.weight_quant = Resolution::bits(4);
        let b = cfg.noise_budget(256);
        assert_eq!(b.dac_step, 2.0 * cfg.dac_bound / 128.0);
        assert_eq!(b.weight_step, 2.0 / 16.0);
        assert_eq!(b.rows, 256);
    }

    #[test]
    fn ideal_source_has_zero_programming_error() {
        let b = TileConfig::ideal().noise_budget(64);
        for w in [-1.0f32, -0.3, 0.0, 0.7, 1.0] {
            let (m, v) = b.prog_moments(w);
            assert_eq!(m, f64::from(w));
            assert_eq!(v, 0.0);
        }
    }

    /// The censored-normal law must reproduce Monte-Carlo moments of the
    /// actual PCM differential-pair programming path.
    #[test]
    fn pcm_prog_moments_match_monte_carlo() {
        let cfg = TileConfig::paper_default(); // Pcm(1.0)
        let b = cfg.noise_budget(512);
        let pcm = PcmModel::default();
        let mut rng = Rng::seed_from(0xbeef);
        for &w in &[0.05f32, 0.4, 0.9, 1.0, -0.6] {
            let (pred_m, pred_v) = b.prog_moments(w);
            let n = 20_000;
            let mut sum = 0.0f64;
            let mut sum2 = 0.0f64;
            for _ in 0..n {
                let pair = nora_device::ConductancePair::encode(w, pcm.g_max);
                let gp = pcm.program(pair.g_plus, &mut rng).g_prog;
                let gm = pcm.program(pair.g_minus, &mut rng).g_prog;
                let eff = f64::from((gp - gm) / pcm.g_max);
                sum += eff;
                sum2 += eff * eff;
            }
            let mc_m = sum / n as f64;
            let mc_v = sum2 / n as f64 - mc_m * mc_m;
            let sd = pred_v.sqrt();
            assert!(
                (mc_m - pred_m).abs() < 4.0 * sd / (n as f64).sqrt() + 1e-6,
                "w={w}: mean mc {mc_m} vs pred {pred_m}"
            );
            assert!(
                (mc_v - pred_v).abs() < 4.0 * (2.0 / n as f64).sqrt() * pred_v + 1e-9,
                "w={w}: var mc {mc_v} vs pred {pred_v}"
            );
        }
    }

    #[test]
    fn reram_prog_moments_match_monte_carlo() {
        let mut cfg = TileConfig::paper_default();
        cfg.weight_source = WeightSource::Reram(0.08);
        let b = cfg.noise_budget(512);
        let reram = ReramModel {
            g_max: cfg.g_max,
            sigma_ln: 0.08,
            read_sigma_rel: 0.0,
        };
        let mut rng = Rng::seed_from(0xcafe);
        for &w in &[0.1f32, 0.5, 1.0] {
            let (pred_m, pred_v) = b.prog_moments(w);
            let n = 20_000;
            let mut sum = 0.0f64;
            let mut sum2 = 0.0f64;
            for _ in 0..n {
                let g = reram.program(w * reram.g_max, &mut rng).g_prog;
                let eff = f64::from(g / reram.g_max);
                sum += eff;
                sum2 += eff * eff;
            }
            let mc_m = sum / n as f64;
            let mc_v = sum2 / n as f64 - mc_m * mc_m;
            assert!(
                (mc_m - pred_m).abs() < 4.0 * pred_v.sqrt() / (n as f64).sqrt() + 1e-6,
                "w={w}: mean mc {mc_m} vs pred {pred_m}"
            );
            assert!(
                (mc_v - pred_v).abs() < 4.0 * (2.0 / n as f64).sqrt() * pred_v + 1e-9,
                "w={w}: var mc {mc_v} vs pred {pred_v}"
            );
            // Zero weights stay exactly zero on ReRAM.
            let (m0, v0) = b.prog_moments(0.0);
            assert_eq!((m0, v0), (0.0, 0.0));
        }
    }

    /// Pruned-cell budgets: zero weights carry no programming error at
    /// all, while the legacy budget keeps the half-normal PCM floor — and
    /// nonzero weights are untouched by the flag.
    #[test]
    fn pruned_budget_zeroes_the_zero_cell_floor() {
        let cfg = TileConfig::paper_default(); // Pcm(1.0)
        let legacy = cfg.noise_budget(256);
        let pruned = cfg.clone().with_pruned_zeros(true).noise_budget(256);
        let (m0, v0) = legacy.prog_moments(0.0);
        assert!(v0 > 0.0, "legacy zero cell must keep the censored floor");
        assert!(m0.abs() < 1e-12, "differential pair centers the mean");
        assert_eq!(pruned.prog_moments(0.0), (0.0, 0.0));
        for w in [0.3f32, -0.7, 1.0] {
            assert_eq!(pruned.prog_moments(w), legacy.prog_moments(w));
        }
    }

    #[test]
    fn ir_factors_delegate_to_the_model() {
        let cfg = TileConfig::paper_default();
        let b = cfg.noise_budget(256);
        let g = [0.1f32, 0.4];
        assert_eq!(
            b.ir_column_factors(&g),
            IrDropModel::new(cfg.ir_drop).column_factors(&g, 256)
        );
    }
}
