//! First-order energy and latency estimation for analog CIM execution.
//!
//! The paper's §VII lists "the evaluation of power, area, and latency" as
//! future work; this module implements the standard first-order estimate
//! used by array-level CIM studies (ISAAC, NeuroSim, and the AIHWKIT
//! papers): per-MVM costs decompose into DAC conversions (one per active
//! row), the analog array read (cell read energy proportional to programmed
//! conductance and integration time), ADC conversions (one per column,
//! dominated by the Walden figure-of-merit × 2^bits), and digital
//! accumulation of tile partial sums.
//!
//! The default constants are representative published ballparks (documented
//! per field); they parameterise *relative* comparisons — e.g. how much
//! energy bound-management retries cost a naive deployment vs NORA — rather
//! than absolute silicon numbers.

use crate::tile::ForwardStats;

/// First-order per-operation energy/latency constants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Energy per DAC conversion, picojoules (7-bit current-steering DACs
    /// land near 0.1–0.5 pJ).
    pub dac_pj: f64,
    /// ADC Walden figure-of-merit, picojoules per conversion *step*
    /// (50 fJ/step ⇒ 0.05; energy per conversion = `fom × steps`).
    pub adc_fom_pj_per_step: f64,
    /// ADC resolution steps (Table II: 128).
    pub adc_steps: u32,
    /// Read energy of one cell at full conductance over one integration
    /// window, picojoules (`V² · g_max · t_int` ≈ 0.2² × 25 µS × 40 ns
    /// ≈ 0.04 pJ).
    pub cell_read_pj: f64,
    /// Energy per digital partial-sum accumulation, picojoules.
    pub digital_acc_pj: f64,
    /// DAC settling + array integration time per conversion round, ns.
    pub integration_ns: f64,
    /// ADC conversion time per sample, ns (shared-ADC column multiplexing
    /// is folded into `adc_share`).
    pub adc_ns: f64,
    /// Columns sharing one ADC (time-multiplexing factor).
    pub adc_share: u32,
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self {
            dac_pj: 0.2,
            adc_fom_pj_per_step: 0.05,
            adc_steps: 128,
            cell_read_pj: 0.04,
            digital_acc_pj: 0.05,
            integration_ns: 40.0,
            adc_ns: 10.0,
            adc_share: 8,
        }
    }
}

/// Energy/latency breakdown of a batch of tile executions.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyReport {
    /// DAC conversion energy, pJ.
    pub dac_pj: f64,
    /// Analog array read energy, pJ.
    pub array_pj: f64,
    /// ADC conversion energy, pJ.
    pub adc_pj: f64,
    /// Digital accumulation energy, pJ.
    pub digital_pj: f64,
    /// Total conversion rounds executed (including bound-management
    /// retries).
    pub rounds: u64,
    /// Total latency of the (sequential) execution, ns.
    pub latency_ns: f64,
}

impl EnergyReport {
    /// Total energy, pJ.
    pub fn total_pj(&self) -> f64 {
        self.dac_pj + self.array_pj + self.adc_pj + self.digital_pj
    }

    /// Accumulates another report.
    pub fn merge(&mut self, other: &EnergyReport) {
        self.dac_pj += other.dac_pj;
        self.array_pj += other.array_pj;
        self.adc_pj += other.adc_pj;
        self.digital_pj += other.digital_pj;
        self.rounds += other.rounds;
        self.latency_ns += other.latency_ns;
    }
}

impl EnergyModel {
    /// Estimates the energy/latency of the executions recorded in `stats`
    /// on a tile of `rows × cols` whose mean relative programmed
    /// conductance is `mean_rel_g` (mean of `|ŵ|`, in `[0, 1]`).
    ///
    /// Every bound-management retry repeats the full DAC→array→ADC chain,
    /// so outlier-ridden naive deployments pay for their saturation — and
    /// every read-averaging repeat is a full physical conversion too, so
    /// the `1/√n` noise suppression is charged at `n×` analog energy.
    /// `ForwardStats::read_repeats` already records exactly that product
    /// (`read_averaging` per round, retries included); stats populated
    /// without repeat accounting fall back to one pass per round.
    ///
    /// # Example
    ///
    /// ```
    /// use nora_cim::{EnergyModel, ForwardStats};
    /// let stats = ForwardStats { samples: 100, ..ForwardStats::default() };
    /// let report = EnergyModel::default().estimate(&stats, 512, 512, 0.3);
    /// assert!(report.adc_pj > report.dac_pj); // converters dominate
    /// ```
    pub fn estimate(&self, stats: &ForwardStats, rows: usize, cols: usize, mean_rel_g: f32) -> EnergyReport {
        // One "round" = one complete conversion of one input vector; each
        // round executes `read_averaging` physical passes, all recorded in
        // `read_repeats`.
        let rounds = stats.samples + stats.bound_mgmt_retries;
        let physical = if stats.read_repeats > 0 {
            stats.read_repeats
        } else {
            rounds
        };
        let r = physical as f64;
        let dac_pj = r * rows as f64 * self.dac_pj;
        let array_pj = r * (rows * cols) as f64 * self.cell_read_pj * mean_rel_g.max(0.0) as f64;
        let adc_pj =
            r * cols as f64 * self.adc_fom_pj_per_step * self.adc_steps as f64;
        let digital_pj = stats.samples as f64 * cols as f64 * self.digital_acc_pj;
        let adc_rounds_ns = (cols as f64 / self.adc_share as f64).ceil() * self.adc_ns;
        let latency_ns = r * (self.integration_ns + adc_rounds_ns);
        EnergyReport {
            dac_pj,
            array_pj,
            adc_pj,
            digital_pj,
            rounds,
            latency_ns,
        }
    }
}

/// First-order silicon-area constants for a CIM macro.
///
/// Complements [`EnergyModel`] for the paper's §VII "power, area, and
/// latency" future work. Defaults are representative published ballparks:
/// NVM cell pitch of a 1T1R bitcell at a 40 nm-class node, SAR-ADC and
/// DAC macros from ISAAC-style floorplans.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaModel {
    /// Area of one NVM cell pair (differential bitcell), µm².
    pub cell_pair_um2: f64,
    /// Area of one ADC macro, µm².
    pub adc_um2: f64,
    /// Area of one DAC/driver, µm².
    pub dac_um2: f64,
    /// Columns sharing one ADC.
    pub adc_share: u32,
}

impl Default for AreaModel {
    fn default() -> Self {
        Self {
            cell_pair_um2: 0.3,
            adc_um2: 1500.0,
            dac_um2: 50.0,
            adc_share: 8,
        }
    }
}

impl AreaModel {
    /// Estimated macro area (µm²) of a `rows × cols` tile storing
    /// `slices` significance slices per weight.
    ///
    /// # Panics
    ///
    /// Panics if `slices == 0`.
    pub fn tile_area_um2(&self, rows: usize, cols: usize, slices: u32) -> f64 {
        assert!(slices >= 1, "need at least one slice");
        let cells = (rows * cols) as f64 * slices as f64 * self.cell_pair_um2;
        let adcs = (cols as f64 / self.adc_share as f64).ceil() * self.adc_um2;
        let dacs = rows as f64 * self.dac_um2;
        cells + adcs + dacs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(samples: u64, retries: u64) -> ForwardStats {
        ForwardStats {
            samples,
            bound_mgmt_retries: retries,
            ..ForwardStats::default()
        }
    }

    #[test]
    fn adc_dominates_at_paper_resolution() {
        // With a 7-bit ADC and the default constants, ADC energy should be
        // the largest component for a 512-row tile — the motivation for
        // low-resolution converters in the first place.
        let m = EnergyModel::default();
        let r = m.estimate(&stats(100, 0), 512, 512, 0.3);
        assert!(r.adc_pj > r.dac_pj);
        assert!(r.adc_pj > r.array_pj);
        assert!(r.total_pj() > 0.0);
    }

    #[test]
    fn retries_cost_analog_energy_but_not_digital() {
        let m = EnergyModel::default();
        let clean = m.estimate(&stats(100, 0), 128, 128, 0.3);
        let retried = m.estimate(&stats(100, 50), 128, 128, 0.3);
        assert!(retried.adc_pj > clean.adc_pj);
        assert!(retried.latency_ns > clean.latency_ns);
        assert_eq!(retried.digital_pj, clean.digital_pj);
        assert_eq!(retried.rounds, 150);
    }

    #[test]
    fn read_averaging_repeats_are_charged_per_physical_pass() {
        // Regression: `read_repeats` (read_averaging × rounds) used to be
        // ignored — an n-repeat averaged read was billed like a single
        // pass. Each repeat is a full DAC→array→ADC conversion.
        let m = EnergyModel::default();
        let single = m.estimate(
            &ForwardStats {
                samples: 100,
                read_repeats: 100,
                ..ForwardStats::default()
            },
            128,
            128,
            0.3,
        );
        let averaged = m.estimate(
            &ForwardStats {
                samples: 100,
                read_repeats: 400, // read_averaging = 4
                ..ForwardStats::default()
            },
            128,
            128,
            0.3,
        );
        assert!((averaged.dac_pj - 4.0 * single.dac_pj).abs() < 1e-9);
        assert!((averaged.adc_pj - 4.0 * single.adc_pj).abs() < 1e-9);
        assert!((averaged.array_pj - 4.0 * single.array_pj).abs() < 1e-9);
        assert!(averaged.latency_ns > single.latency_ns);
        // Digital accumulation happens once per sample, not per repeat.
        assert_eq!(averaged.digital_pj, single.digital_pj);
        assert_eq!(averaged.rounds, single.rounds);
    }

    #[test]
    fn retried_forward_charges_more_than_clean_forward() {
        // End-to-end regression on a real tile: force ADC saturation so
        // bound management retries, and check the retry conversions are
        // billed (matching the retry counter nora-obs exports).
        use crate::{AnalogTile, BoundManagement, TileConfig};
        use nora_tensor::{rng::Rng, Matrix};

        let n = 16;
        let mut w = Matrix::zeros(n, n);
        for k in 0..n {
            w[(k, k)] = 1.0;
        }
        let x = Matrix::from_vec(1, n, vec![1.0; n]);

        let clean_cfg = TileConfig::ideal();
        let mut clean_tile = AnalogTile::new(w.clone(), None, clean_cfg, Rng::seed_from(7));
        clean_tile.forward(&x);
        assert_eq!(clean_tile.stats().bound_mgmt_retries, 0);

        // A tight ADC bound saturates the first round and forces retries.
        let mut retry_cfg = TileConfig::ideal();
        retry_cfg.adc = crate::Resolution::bits(7);
        retry_cfg.adc_bound = 0.05;
        retry_cfg.bound_management = BoundManagement::Iterative { max_rounds: 3 };
        let mut retry_tile = AnalogTile::new(w, None, retry_cfg, Rng::seed_from(7));
        retry_tile.forward(&x);
        let retries = retry_tile.stats().bound_mgmt_retries;
        assert!(retries > 0, "tight bound must trigger bound management");

        let m = EnergyModel::default();
        let clean = clean_tile.energy(&m);
        let retried = retry_tile.energy(&m);
        assert!(retried.dac_pj > clean.dac_pj);
        assert!(retried.adc_pj > clean.adc_pj);
        assert!(retried.latency_ns > clean.latency_ns);
        assert_eq!(retried.digital_pj, clean.digital_pj);
        assert_eq!(retried.rounds, clean.rounds + retries);
    }

    /// Unprogrammed (pruned N:M) cells carry no conductance at all, while
    /// legacy zero-target programming leaves the censored half-normal
    /// residue on every zero cell — so opting into pruning must shrink
    /// both the tile's mean relative conductance and its array energy.
    #[test]
    fn pruned_cells_shrink_array_energy() {
        use crate::{AnalogTile, TileConfig};
        use nora_tensor::{rng::Rng, Matrix};

        let n = 32;
        let mut w = Matrix::random_uniform(n, n, -1.0, 1.0, &mut Rng::seed_from(30));
        for k in (0..n).step_by(2) {
            w.row_mut(k).fill(0.0);
        }
        let cfg = TileConfig::paper_default().with_tile_size(n, n);
        let mut legacy = AnalogTile::new(w.clone(), None, cfg.clone(), Rng::seed_from(31));
        let mut pruned = AnalogTile::new(w, None, cfg.with_pruned_zeros(true), Rng::seed_from(31));
        let x = Matrix::from_vec(1, n, vec![0.5; n]);
        legacy.forward(&x);
        pruned.forward(&x);
        assert!(
            pruned.mean_rel_conductance() < legacy.mean_rel_conductance(),
            "pruned {} vs legacy {}",
            pruned.mean_rel_conductance(),
            legacy.mean_rel_conductance()
        );
        let m = EnergyModel::default();
        assert!(pruned.energy(&m).array_pj < legacy.energy(&m).array_pj);
    }

    #[test]
    fn energy_scales_with_array_size_and_conductance() {
        let m = EnergyModel::default();
        let small = m.estimate(&stats(10, 0), 64, 64, 0.3);
        let big = m.estimate(&stats(10, 0), 256, 256, 0.3);
        assert!(big.total_pj() > small.total_pj());
        let dense = m.estimate(&stats(10, 0), 64, 64, 0.9);
        assert!(dense.array_pj > small.array_pj);
    }

    #[test]
    fn area_scales_with_cells_and_slices() {
        let a = AreaModel::default();
        let single = a.tile_area_um2(512, 512, 1);
        let double = a.tile_area_um2(512, 512, 2);
        assert!(double > single);
        // Cell array dominates a 512×512 macro; slicing doubles only the
        // cell part, so the total grows by less than 2×.
        assert!(double < 2.0 * single);
        let small = a.tile_area_um2(64, 64, 1);
        assert!(small < single / 10.0);
    }

    #[test]
    #[should_panic(expected = "at least one slice")]
    fn zero_slices_panics() {
        AreaModel::default().tile_area_um2(8, 8, 0);
    }

    #[test]
    fn merge_adds_components() {
        let m = EnergyModel::default();
        let a = m.estimate(&stats(10, 0), 64, 64, 0.5);
        let mut acc = a;
        acc.merge(&a);
        assert!((acc.total_pj() - 2.0 * a.total_pj()).abs() < 1e-9);
        assert_eq!(acc.rounds, 20);
    }
}
