//! A single analog crossbar tile.

use crate::config::TileConfig;
use crate::converter::{Adc, Dac};
use crate::error::CimError;
use crate::health::{AbftReport, TileSite};
use crate::ir_drop::IrDropModel;
use crate::management::BoundManagement;
use nora_device::{
    program_matrix_sliced, program_matrix_verified, read_matrix, read_matrix_mean, read_sliced,
    ProgrammedMatrix, SlicedMatrix, TileFaultMap,
};
use nora_tensor::rng::Rng;
use nora_tensor::Matrix;

/// Time (seconds after programming) at which a tile's reference weights are
/// established — the PCM drift model's calibration point `t_c`.
const REFERENCE_READ_TIME: f64 = 20.0;

/// How to correct for conductance drift when re-reading a tile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriftCompensation {
    /// Use the drifted conductances as-is.
    None,
    /// Rescale the whole tile by a single factor estimated from the ratio of
    /// summed absolute conductance before and after drift — the simple
    /// global compensation the paper refers to ("drift could be simply
    /// compensated").
    GlobalScale,
}

/// Accumulated observability counters of tile forwards.
///
/// The experiment harness uses these for the input-clipping, ADC-saturation
/// and output-current analyses (Fig. 6c plots `mean_rescale`, the average
/// `α_i · γ_j · g_max` factor — smaller means more bitline current and
/// better SNR).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ForwardStats {
    /// Number of sample vectors processed.
    pub samples: u64,
    /// DAC inputs that clipped at the rails (final bound-management round).
    pub clipped_inputs: u64,
    /// Total DAC inputs presented.
    pub total_inputs: u64,
    /// ADC outputs that saturated (final round).
    pub saturated_outputs: u64,
    /// Total ADC outputs produced.
    pub total_outputs: u64,
    /// Extra conversion rounds forced by bound management.
    pub bound_mgmt_retries: u64,
    /// Physical conversion repeats executed: `read_averaging` per
    /// conversion round, summed over rounds (bound-management retries
    /// included) — the operational cost knob behind the `1/√n` noise
    /// suppression.
    pub read_repeats: u64,
    /// Sum over all outputs of the rescale factor `α_i · γ_j`.
    pub rescale_sum: f64,
    /// Number of rescale factors accumulated.
    pub rescale_count: u64,
}

impl ForwardStats {
    /// Fraction of DAC inputs that clipped.
    pub fn input_clip_rate(&self) -> f64 {
        if self.total_inputs == 0 {
            0.0
        } else {
            self.clipped_inputs as f64 / self.total_inputs as f64
        }
    }

    /// Fraction of ADC outputs that saturated.
    pub fn adc_saturation_rate(&self) -> f64 {
        if self.total_outputs == 0 {
            0.0
        } else {
            self.saturated_outputs as f64 / self.total_outputs as f64
        }
    }

    /// Mean output rescale factor `α_i · γ_j` (the paper's
    /// `α_i γ_j · g_max` in normalised units).
    pub fn mean_rescale(&self) -> f64 {
        if self.rescale_count == 0 {
            0.0
        } else {
            self.rescale_sum / self.rescale_count as f64
        }
    }

    /// Merges another stats block into this one.
    pub fn merge(&mut self, other: &ForwardStats) {
        self.samples += other.samples;
        self.clipped_inputs += other.clipped_inputs;
        self.total_inputs += other.total_inputs;
        self.saturated_outputs += other.saturated_outputs;
        self.total_outputs += other.total_outputs;
        self.bound_mgmt_retries += other.bound_mgmt_retries;
        self.read_repeats += other.read_repeats;
        self.rescale_sum += other.rescale_sum;
        self.rescale_count += other.rescale_count;
    }

    /// Exports these counters into `m` under the canonical `cim.*` metric
    /// names (see [`crate::converter::metrics`] and [`crate::management`]).
    ///
    /// Every exported value derives from the deterministic counters above,
    /// so registries built from stats merged in grid order compare equal at
    /// any `NORA_THREADS` level.
    pub fn export_metrics(&self, m: &mut nora_obs::Metrics) {
        use crate::converter::metrics as names;
        m.add("cim.forward.samples", self.samples);
        m.add(names::DAC_CLIPPED, self.clipped_inputs);
        m.add(names::DAC_TOTAL, self.total_inputs);
        m.add(names::ADC_SATURATED, self.saturated_outputs);
        m.add(names::ADC_TOTAL, self.total_outputs);
        m.add(names::READ_REPEATS, self.read_repeats);
        m.observe(names::DAC_CLIP_RATE, nora_obs::edges::RATE, self.input_clip_rate());
        m.observe(
            names::ADC_SATURATION_RATE,
            nora_obs::edges::RATE,
            self.adc_saturation_rate(),
        );
        crate::management::export_bound_management(self.bound_mgmt_retries, m);
    }
}

/// Device-accurate programmed weight state (single pair per weight, or
/// multi-cell significance slices).
#[derive(Debug, Clone)]
enum ProgrammedWeights {
    Plain(ProgrammedMatrix),
    Sliced(SlicedMatrix),
}

/// ABFT checksum state of a tile.
///
/// The tile's last column stores the row-sums of the data columns, so in
/// rescaled output units `Σ_j y_j = y_checksum` holds exactly for a healthy
/// ideal tile. `static_corr` captures the per-row mismatch
/// `d_k = Σ_j γ_j ŵ_kj − γ_c ŵ_kc` of the *clean* post-programming weights
/// (quantization + programming error), measured by a deployment-time
/// calibration read; subtracting `x_s · d` from the residual leaves only
/// stochastic noise — and any hard fault that develops in the field.
#[derive(Debug, Clone)]
struct AbftState {
    static_corr: Vec<f32>,
    /// `Σ γ_j² + γ_c²` — the residual's noise-gain factor.
    gamma_sq: f32,
    /// Clean checksum-column weights in rescaled units (`γ_c ŵ_kc`), used
    /// by the silent-tile detector to predict the checksum output a live
    /// tile would produce for a given input.
    check_w: Vec<f32>,
}

impl AbftState {
    fn calibrate(w_eff: &Matrix, gamma: &[f32], data_cols: usize) -> Self {
        let rows = w_eff.rows();
        let mut static_corr = vec![0.0f32; rows];
        let mut check_w = vec![0.0f32; rows];
        for (k, (d, c)) in static_corr.iter_mut().zip(check_w.iter_mut()).enumerate() {
            let row = w_eff.row(k);
            let mut acc = 0.0f64;
            for j in 0..data_cols {
                acc += (gamma[j] * row[j]) as f64;
            }
            let checksum = (gamma[data_cols] * row[data_cols]) as f64;
            acc -= checksum;
            *d = acc as f32;
            *c = checksum as f32;
        }
        let gamma_sq = gamma.iter().map(|&g| g * g).sum();
        Self {
            static_corr,
            gamma_sq,
            check_w,
        }
    }
}

/// One analog crossbar tile holding a (≤ `tile_rows` × ≤ `tile_cols`) weight
/// block and executing noisy GEMV batches against it.
///
/// The tile owns its converters, noise streams, and per-column scaling
/// factors `γ_j`; an optional per-row smoothing vector `s` implements the
/// NORA rescaling of Eq. (6)–(8).
///
/// # Example
///
/// ```
/// use nora_cim::{AnalogTile, TileConfig};
/// use nora_tensor::{Matrix, rng::Rng};
///
/// let w = Matrix::from_rows(&[&[0.5, -0.25], &[0.1, 0.8]]);
/// let mut tile = AnalogTile::new(w, None, TileConfig::ideal(), Rng::seed_from(1));
/// let x = Matrix::from_rows(&[&[1.0, 2.0]]);
/// let y = tile.forward(&x);
/// assert!((y[(0, 0)] - 0.7).abs() < 1e-4); // exact GEMV when ideal
/// ```
#[derive(Debug, Clone)]
pub struct AnalogTile {
    config: TileConfig,
    dac: Dac,
    adc: Adc,
    ir: IrDropModel,
    /// Per-column normalised scale `γ_j = max_k |w_kj · s_k|` (data columns
    /// first; with ABFT on, the checksum column's `γ_c` is last).
    gamma: Vec<f32>,
    /// Per-row smoothing factors (all 1 when NORA is off).
    s: Vec<f32>,
    /// Effective normalised weights in `[-1, 1]` including programming
    /// error (and drift after [`AnalogTile::apply_drift`]), plus any
    /// imprinted hard faults.
    w_eff: Matrix,
    /// Device-accurate programmed state, kept for drift re-reads.
    programmed: Option<ProgrammedWeights>,
    /// Reference Σ|ŵ| right after programming (for drift compensation).
    prog_abs_sum: f64,
    /// Per-column IR-drop factors (cached; depend only on weights).
    ir_factors: Vec<f32>,
    /// Data (output) columns; `w_eff` has one more when ABFT is on.
    data_cols: usize,
    /// ABFT checksum calibration, when enabled.
    abft: Option<AbftState>,
    /// Hard defects of the physical array this tile occupies.
    fault_map: Option<TileFaultMap>,
    /// Physical placement (drives the defect draw).
    site: TileSite,
    /// Virtual time (seconds) at which the conductances were programmed;
    /// [`AnalogTile::drift_to`] reads at `now − programmed_at`. Zero for
    /// deployment-time programming.
    programmed_at: f64,
    /// Cumulative output correction installed by probe recalibration
    /// ([`AnalogTile::apply_recal_scale`]); reapplied after every drift
    /// re-read so online compensation survives [`AnalogTile::drift_to`].
    recal_scale: f32,
    /// Reference probe magnitude captured by
    /// [`AnalogTile::capture_probe_reference`], if any.
    probe_ref: Option<f64>,
    /// ADC step size in normalised accumulation units (0 when ideal).
    adc_lsb: f32,
    rng: Rng,
    stats: ForwardStats,
    /// Reusable temporaries for the conversion hot loop (no behavioral
    /// effect — every buffer is cleared or fully overwritten before use).
    scratch: Scratch,
    /// Test-only switch routing conversions through the naive, unfused
    /// per-stage reference implementation. The equivalence tests flip it on
    /// a cloned tile to prove the fast path bit-identical.
    #[cfg(test)]
    reference_path: bool,
}

/// Scratch arena for [`AnalogTile::forward_checked`] and the conversion
/// chain: one allocation per buffer for the lifetime of the tile instead of
/// one per sample (or per read-averaging repeat / bit plane).
#[derive(Debug, Clone, Default)]
struct Scratch {
    /// Smoothed input `x / s` (length `rows`).
    x_s: Vec<f32>,
    /// DAC output in the analog path (length `rows`).
    x_hat: Vec<f32>,
    /// Averaged/combined conversion output (length `w_eff.cols()`).
    z: Vec<f32>,
    /// Single-repeat output during read averaging.
    z_rep: Vec<f32>,
    /// Hoisted DAC output under read averaging (length `rows`).
    x_dac: Vec<f32>,
    /// Hoisted clean MVM result under read averaging (length
    /// `w_eff.cols()`).
    z_clean: Vec<f32>,
    /// Buffered short-term read-noise draws for the fused epilogue.
    wn: Vec<f32>,
    /// Buffered output-noise draws for the fused epilogue.
    on: Vec<f32>,
    /// One ±1/0 wordline plane in bit-serial mode (length `rows`).
    plane: Vec<f32>,
    /// Per-plane MAC output in bit-serial mode.
    zk: Vec<f32>,
    /// Quantized signed input levels in bit-serial mode.
    levels: Vec<i32>,
}

/// Silent-tile detector accumulators over a forward batch, in rescaled
/// output units: the checksum output a clean tile would have produced, the
/// checksum output actually observed, and the noise allowance.
#[derive(Debug, Default)]
struct SilentAcc {
    pred: f64,
    actual: f64,
    noise: f64,
}

/// The noise generator of one conversion chain, bundling the draw source
/// with the Gaussian sampler it uses:
///
/// * legacy streams (`icdf == false`) draw through the bit-pinned
///   Box–Muller [`Rng::fill_normal`] sequence that all pre-existing
///   results reproduce;
/// * counter-keyed streams (`icdf == true`) are *new* sequences derived per
///   `(deployment, tile, request, position)` key, free to use the ~4×
///   cheaper inverse-CDF sampler.
struct NoiseStream<'a> {
    rng: &'a mut Rng,
    icdf: bool,
}

impl NoiseStream<'_> {
    fn fill_normal(&mut self, buf: &mut [f32], mean: f32, std: f32) {
        if self.icdf {
            self.rng.fill_normal_icdf(buf, mean, std);
        } else {
            self.rng.fill_normal(buf, mean, std);
        }
    }

    /// Scalar draw for the unfused reference chain — same value, same
    /// stream position, as a one-element [`NoiseStream::fill_normal`].
    #[cfg(test)]
    fn normal(&mut self, mean: f32, std: f32) -> f32 {
        if self.icdf {
            mean + std * self.rng.standard_normal_icdf()
        } else {
            self.rng.normal(mean, std)
        }
    }
}

/// Reusable scratch arena for the **stateless keyed** forward path
/// ([`AnalogTile::forward_row_keyed`]): the tile is shared immutably across
/// callers, so each concurrent caller owns one of these instead of the
/// tile's built-in scratch. Buffers grow to the largest tile they serve and
/// are reused across tiles and decode steps.
#[derive(Debug, Clone, Default)]
pub struct TileCtx {
    scratch: Scratch,
}

impl AnalogTile {
    /// Programs `weights` (shape `rows × cols`, arbitrary real values) onto
    /// a tile, optionally with a NORA smoothing vector `s` of length `rows`.
    ///
    /// # Panics
    ///
    /// Panics on any [`AnalogTile::try_new`] error.
    pub fn new(weights: Matrix, s: Option<&[f32]>, config: TileConfig, rng: Rng) -> Self {
        Self::try_new(weights, s, config, rng).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible variant of [`AnalogTile::new`] at the default physical site
    /// (physical tile 0, programming attempt 0).
    ///
    /// # Errors
    ///
    /// See [`AnalogTile::try_new_at`].
    pub fn try_new(
        weights: Matrix,
        s: Option<&[f32]>,
        config: TileConfig,
        rng: Rng,
    ) -> Result<Self, CimError> {
        Self::try_new_at(weights, s, config, rng, TileSite::default())
    }

    /// Programs `weights` onto the physical tile identified by `site`.
    ///
    /// The site determines which hard defects (if any) the tile inherits
    /// from the config's [`nora_device::FaultPlan`]: defect maps are drawn
    /// per `site.physical_id`, so re-programming the same array reproduces
    /// its stuck cells while a spare array draws an independent set. Hard
    /// faults are imprinted *after* the ABFT calibration read — they model
    /// in-field failures that develop after deployment-time calibration.
    ///
    /// # Errors
    ///
    /// * [`CimError::InvalidConfig`] — the config fails validation.
    /// * [`CimError::OversizedBlock`] — the block (plus the checksum column
    ///   when ABFT is on) does not fit the physical tile.
    /// * [`CimError::SmoothingLength`] / [`CimError::SmoothingNotPositive`]
    ///   — a malformed smoothing vector.
    /// * [`CimError::ProgrammingFailed`] — the fault plan made this
    ///   programming attempt fail; the caller may retry with a bumped
    ///   `site.programming_attempt` or fall back.
    pub fn try_new_at(
        weights: Matrix,
        s: Option<&[f32]>,
        config: TileConfig,
        mut rng: Rng,
        site: TileSite,
    ) -> Result<Self, CimError> {
        config.validate().map_err(CimError::InvalidConfig)?;
        let abft_cols = usize::from(config.fault_tolerance.abft);
        if weights.rows() > config.tile_rows || weights.cols() + abft_cols > config.tile_cols {
            return Err(CimError::OversizedBlock {
                rows: weights.rows(),
                cols: weights.cols() + abft_cols,
                tile_rows: config.tile_rows,
                tile_cols: config.tile_cols,
            });
        }
        let rows = weights.rows();
        let data_cols = weights.cols();
        let s: Vec<f32> = match s {
            Some(s) => {
                if s.len() != rows {
                    return Err(CimError::SmoothingLength {
                        expected: rows,
                        got: s.len(),
                    });
                }
                if !s.iter().all(|&v| v.is_finite() && v > 0.0) {
                    return Err(CimError::SmoothingNotPositive);
                }
                s.to_vec()
            }
            None => vec![1.0; rows],
        };

        // Append the ABFT checksum column (row-sums of the data columns)
        // before any scaling: downstream it is treated exactly like a data
        // column, which is what makes the checksum identity hold in output
        // units independent of γ.
        let mut w_scaled = if abft_cols == 1 {
            let mut w2 = Matrix::zeros(rows, data_cols + 1);
            for k in 0..rows {
                let src = weights.row(k);
                let dst = w2.row_mut(k);
                dst[..data_cols].copy_from_slice(src);
                dst[data_cols] = src.iter().sum();
            }
            w2
        } else {
            weights
        };
        // Scale rows by s, then normalise each column by γ_j.
        w_scaled.scale_rows(&s);
        let gamma = w_scaled.col_abs_max();
        let mut w_hat = w_scaled;
        for (j, &g) in gamma.iter().enumerate() {
            if g > 0.0 {
                w_hat.scale_col(j, 1.0 / g);
            }
            // all-zero column stays zero
        }

        // Digital weight quantization (if configured) snaps the normalised
        // mapping to discrete levels before any device effects.
        if let Some(q) = config.weight_quantizer() {
            q.quantize_slice(w_hat.as_mut_slice());
        }

        // Pass through the device model if requested.
        let (w_eff, programmed) = match config.device_model() {
            None => (w_hat, None),
            Some(device) => {
                let mut dev_rng = rng.fork(0x9d0e);
                // Effective weights are taken at the reference read time,
                // without the stochastic read-noise part (short-term read
                // noise is injected separately per forward).
                if config.weight_slices > 1 {
                    let prog = program_matrix_sliced(
                        &w_hat,
                        device.as_ref(),
                        config.weight_slices,
                        config.slice_radix,
                        &mut dev_rng,
                    );
                    let eff =
                        nora_device::read_sliced_mean(&prog, device.as_ref(), REFERENCE_READ_TIME);
                    (eff, Some(ProgrammedWeights::Sliced(prog)))
                } else {
                    // Pruned N:M cells (exact-zero normalised weights) stay
                    // genuinely unprogrammed when the config opts in: no
                    // device draw, zero conductance at every read time.
                    let prog = if config.prune_zero_cells {
                        nora_device::program_matrix_pruned(
                            &w_hat,
                            device.as_ref(),
                            config.write_verify_iters,
                            &mut dev_rng,
                        )
                    } else {
                        program_matrix_verified(
                            &w_hat,
                            device.as_ref(),
                            config.write_verify_iters,
                            &mut dev_rng,
                        )
                    };
                    let eff = read_matrix_mean(&prog, device.as_ref(), REFERENCE_READ_TIME);
                    (eff, Some(ProgrammedWeights::Plain(prog)))
                }
            }
        };

        // ABFT static-mismatch calibration from the *clean* post-programming
        // weights (deployment-time calibration read).
        let abft = (abft_cols == 1).then(|| AbftState::calibrate(&w_eff, &gamma, data_cols));

        // Imprint the physical array's hard defects. These are drawn over
        // the full physical tile dimensions and persist across
        // re-programming of the same `site.physical_id`.
        let mut w_eff = w_eff;
        let fault_map = match &config.fault_plan {
            Some(plan) if !plan.is_trivial() => {
                let map = plan.instantiate(site.physical_id, config.tile_rows, config.tile_cols);
                if map.programming_attempt_fails(site.programming_attempt) {
                    return Err(CimError::ProgrammingFailed {
                        physical_id: site.physical_id,
                        attempt: site.programming_attempt,
                    });
                }
                map.apply_to_weights(&mut w_eff);
                Some(map)
            }
            _ => None,
        };

        let prog_abs_sum = w_eff.as_slice().iter().map(|&v| v.abs() as f64).sum();
        let ir = IrDropModel::new(config.ir_drop);
        let col_mean_rel_g: Vec<f32> = (0..w_eff.cols())
            .map(|j| {
                let col = w_eff.col(j);
                col.iter().map(|v| v.abs()).sum::<f32>() / col.len().max(1) as f32
            })
            .collect();
        let ir_factors = ir.column_factors(&col_mean_rel_g, rows);

        let dac = config.input_dac();
        let adc = Adc::new(config.adc, config.adc_bound);
        // Single source of truth for the stage constants: the queryable
        // budget — analytic consumers read the identical f32 values.
        let adc_lsb = config.noise_budget(rows).adc_step;
        Ok(Self {
            dac,
            adc,
            ir,
            gamma,
            s,
            w_eff,
            programmed,
            prog_abs_sum,
            ir_factors,
            data_cols,
            abft,
            fault_map,
            site,
            programmed_at: 0.0,
            recal_scale: 1.0,
            probe_ref: None,
            adc_lsb,
            rng,
            stats: ForwardStats::default(),
            scratch: Scratch::default(),
            #[cfg(test)]
            reference_path: false,
            config,
        })
    }

    /// Number of input channels (rows) of the programmed block.
    pub fn rows(&self) -> usize {
        self.w_eff.rows()
    }

    /// Number of output channels (data columns) of the programmed block.
    /// With ABFT on, the physical tile holds one extra checksum column that
    /// is not part of the output.
    pub fn cols(&self) -> usize {
        self.data_cols
    }

    /// Per-column scale factors `γ_j` (data columns first; the checksum
    /// column's `γ_c`, if any, is last).
    pub fn gamma(&self) -> &[f32] {
        &self.gamma
    }

    /// Physical placement of this tile.
    pub fn site(&self) -> TileSite {
        self.site
    }

    /// The hard-defect map of the physical array, if a fault plan is active.
    pub fn fault_map(&self) -> Option<&TileFaultMap> {
        self.fault_map.as_ref()
    }

    /// Effective normalised weights currently on the tile.
    pub fn effective_weights(&self) -> &Matrix {
        &self.w_eff
    }

    /// Accumulated forward statistics.
    pub fn stats(&self) -> &ForwardStats {
        &self.stats
    }

    /// Resets the forward statistics.
    pub fn reset_stats(&mut self) {
        self.stats = ForwardStats::default();
    }

    /// Exports the tile's accumulated conversion stats into `m` under the
    /// canonical `cim.*` names. Read-only and RNG-free: attaching
    /// observation never perturbs the tile's outputs.
    pub fn export_metrics(&self, m: &mut nora_obs::Metrics) {
        self.stats.export_metrics(m);
    }

    /// Executes a noisy GEMV batch: `x` is `batch × rows`, the result is
    /// `batch × cols`, approximating `x · W` under the configured
    /// non-idealities.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != self.rows()`.
    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        self.forward_checked(x).0
    }

    /// Built-in self-test: runs a deterministic, sign-diverse probe batch
    /// through the tile and returns the ABFT verdict. Unlike checking a
    /// workload batch, the probe always carries strong signal on every
    /// input line, so a dead or heavily faulted tile cannot pass
    /// vacuously (e.g. when the triggering activations were near zero).
    /// The forward statistics are restored afterwards, so the probe does
    /// not pollute [`AnalogTile::stats`]. Returns a disabled report when
    /// the policy has ABFT off.
    pub fn self_test(&mut self) -> AbftReport {
        if self.abft.is_none() {
            return AbftReport::default();
        }
        let x = self.probe_batch();
        let saved = self.stats;
        // A one-off diagnostic can afford heavy read averaging: it divides
        // the stochastic part of the residual budget (and so the detection
        // threshold) by 4×, while the *systematic* residual of stuck cells
        // and dead lines is untouched — faults far too small to trip the
        // runtime 6σ check stand out clearly under the probe.
        let runtime_ra = self.config.read_averaging;
        self.config.read_averaging = runtime_ra.max(16);
        let (_, report) = self.forward_checked(&x);
        self.config.read_averaging = runtime_ra;
        self.stats = saved;
        report
    }

    /// The deterministic, sign-diverse probe batch shared by
    /// [`AnalogTile::self_test`] and [`AnalogTile::probe_magnitude`]: every
    /// input line carries strong signal on every row, so the response
    /// cannot be vacuously small.
    fn probe_batch(&self) -> Matrix {
        const PROBE_ROWS: usize = 16;
        let d = self.rows();
        let mut x = Matrix::zeros(PROBE_ROWS, d);
        for r in 0..PROBE_ROWS {
            let row = x.row_mut(r);
            for (k, v) in row.iter_mut().enumerate() {
                *v = match (k + 3 * r) % 4 {
                    0 => 1.0,
                    1 => -1.0,
                    2 => 0.5,
                    _ => -0.25,
                };
            }
        }
        x
    }

    /// Measured response magnitude `Σ|y|` of the deterministic probe batch
    /// over the data columns, through the full noisy conversion path at
    /// escalated read averaging. The ratio of two such measurements on the
    /// same tile tracks the global conductance decay between them (the
    /// systematic conversion offsets — quantization, IR-drop — cancel),
    /// which is what the online α̂ recalibration needs. Advances the tile's
    /// noise streams like any forward; the accumulated statistics are
    /// restored afterwards.
    pub fn probe_magnitude(&mut self) -> f64 {
        let x = self.probe_batch();
        let saved = self.stats;
        let runtime_ra = self.config.read_averaging;
        self.config.read_averaging = runtime_ra.max(16);
        let (y, _) = self.forward_checked(&x);
        self.config.read_averaging = runtime_ra;
        self.stats = saved;
        y.as_slice().iter().map(|&v| v.abs() as f64).sum()
    }

    /// Captures the current probe magnitude as the recalibration reference
    /// (idempotent: a reference already captured is kept, so the baseline
    /// stays anchored at programming time).
    pub fn capture_probe_reference(&mut self) {
        if self.probe_ref.is_none() {
            self.probe_ref = Some(self.probe_magnitude());
        }
    }

    /// The captured recalibration reference, if any.
    pub fn probe_reference(&self) -> Option<f64> {
        self.probe_ref
    }

    /// Virtual time (seconds) at which this tile's conductances were
    /// programmed. Zero for deployment-time programming; updated when a
    /// rotation re-programs the slot mid-serve.
    pub fn programmed_at(&self) -> f64 {
        self.programmed_at
    }

    /// Marks the conductances as programmed at virtual time `now`, so
    /// subsequent [`AnalogTile::drift_to`] calls read at `now − programmed_at`.
    pub fn set_programmed_at(&mut self, now: f64) {
        self.programmed_at = now;
    }

    /// Installs a multiplicative output correction `α̂` estimated by the
    /// probe recalibration pass: the effective weights are rescaled in
    /// place and the cumulative factor is remembered so drift re-reads
    /// ([`AnalogTile::drift_to`]) keep the correction. Non-finite or
    /// non-positive factors are ignored.
    pub fn apply_recal_scale(&mut self, alpha: f32) {
        if !alpha.is_finite() || alpha <= 0.0 {
            return;
        }
        self.recal_scale *= alpha;
        self.w_eff.scale_assign(alpha);
    }

    /// Like [`AnalogTile::forward`], additionally running the ABFT checksum
    /// (and silent-tile) check when the config enables it and returning the
    /// verdict. With fault tolerance off the report is all-zeros/disabled
    /// and the execution path is identical to `forward`.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != self.rows()`.
    pub fn forward_checked(&mut self, x: &Matrix) -> (Matrix, AbftReport) {
        assert_eq!(
            x.cols(),
            self.rows(),
            "input width {} vs tile rows {}",
            x.cols(),
            self.rows()
        );
        let batch = x.rows();
        let mut y = Matrix::zeros(batch, self.cols());
        let mut report = AbftReport {
            enabled: self.abft.is_some(),
            ..AbftReport::default()
        };
        let mut silent = SilentAcc::default();
        // Detach the execution state (noise stream, scratch arena, stats)
        // so the conversion chain below is the same `&self` core the keyed
        // path uses; re-attaching afterwards makes this wrapper
        // bit-identical to the historical `&mut self` chain by
        // construction.
        let mut rng = std::mem::take(&mut self.rng);
        let mut sc = std::mem::take(&mut self.scratch);
        let mut stats = self.stats;
        {
            let mut ns = NoiseStream {
                rng: &mut rng,
                icdf: false,
            };
            for i in 0..batch {
                self.forward_row_ex(
                    &mut ns,
                    &mut sc,
                    &mut stats,
                    x.row(i),
                    y.row_mut(i),
                    &mut report,
                    &mut silent,
                );
            }
        }
        self.rng = rng;
        self.scratch = sc;
        self.stats = stats;
        self.finish_report(&mut report, &silent);
        (y, report)
    }

    /// Single-sample forward into a caller-provided buffer: `x` is one
    /// input row of length `rows`, `out` is cleared and resized to `cols`.
    /// Bit-identical to [`AnalogTile::forward_checked`] on the equivalent
    /// `1 × rows` batch — this is the decode fast path that lets callers
    /// skip the per-step input/output `Matrix` allocations.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.rows()`.
    pub fn forward_row_checked(&mut self, x: &[f32], out: &mut Vec<f32>) -> AbftReport {
        assert_eq!(
            x.len(),
            self.rows(),
            "input width {} vs tile rows {}",
            x.len(),
            self.rows()
        );
        out.clear();
        out.resize(self.cols(), 0.0);
        let mut report = AbftReport {
            enabled: self.abft.is_some(),
            ..AbftReport::default()
        };
        let mut silent = SilentAcc::default();
        let mut rng = std::mem::take(&mut self.rng);
        let mut sc = std::mem::take(&mut self.scratch);
        let mut stats = self.stats;
        {
            let mut ns = NoiseStream {
                rng: &mut rng,
                icdf: false,
            };
            self.forward_row_ex(&mut ns, &mut sc, &mut stats, x, out, &mut report, &mut silent);
        }
        self.rng = rng;
        self.scratch = sc;
        self.stats = stats;
        self.finish_report(&mut report, &silent);
        report
    }

    /// Stateless single-sample forward for **counter-keyed** noise streams:
    /// the batched-serving fast path that shares the tile immutably across
    /// slot workers.
    ///
    /// The noise sequence for this row is a pure function of `key` —
    /// callers compose it from `(deployment layer seed, tile grid
    /// coordinates, request noise seed, decode position)` — so the output
    /// is independent of admission order, batch composition and thread
    /// count. Draws use the inverse-CDF Gaussian sampler (one `u64` per
    /// sample) rather than legacy Box–Muller: keyed streams are a new,
    /// documented bit-contract, distinct from the sequential streams that
    /// [`AnalogTile::forward_checked`] preserves for compat mode.
    ///
    /// Nothing on the tile is touched: accumulated statistics come back as
    /// a delta for the caller to [`AnalogTile::absorb_stats`] in a
    /// deterministic (slot, grid) order, alongside the ABFT verdict.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.rows()`.
    pub fn forward_row_keyed(
        &self,
        x: &[f32],
        out: &mut Vec<f32>,
        key: &[u64],
        ctx: &mut TileCtx,
    ) -> (ForwardStats, AbftReport) {
        assert_eq!(
            x.len(),
            self.rows(),
            "input width {} vs tile rows {}",
            x.len(),
            self.rows()
        );
        out.clear();
        out.resize(self.cols(), 0.0);
        let mut report = AbftReport {
            enabled: self.abft.is_some(),
            ..AbftReport::default()
        };
        let mut silent = SilentAcc::default();
        let mut stats = ForwardStats::default();
        let mut rng = Rng::from_key(key);
        let mut ns = NoiseStream {
            rng: &mut rng,
            icdf: true,
        };
        self.forward_row_ex(
            &mut ns,
            &mut ctx.scratch,
            &mut stats,
            x,
            out,
            &mut report,
            &mut silent,
        );
        self.finish_report(&mut report, &silent);
        (stats, report)
    }

    /// Folds a [`ForwardStats`] delta produced by the keyed forward path
    /// into the tile's accumulated statistics. Callers absorb deltas in a
    /// fixed (slot, grid) order after a parallel round, so the merged
    /// counters are bit-identical at any thread count.
    pub fn absorb_stats(&mut self, delta: &ForwardStats) {
        self.stats.merge(delta);
    }

    /// Runs one input row through the full conversion + bound-management
    /// chain, writing the rescaled outputs into `out` (length `cols`,
    /// pre-zeroed — an all-zero input leaves it untouched).
    ///
    /// This is the shared `&self` core: the noise stream, scratch arena and
    /// statistics accumulator travel as explicit parameters so the
    /// sequential wrappers (tile-owned state, legacy draw order) and the
    /// keyed path (per-caller state, derived streams) run the identical
    /// arithmetic.
    #[allow(clippy::too_many_arguments)]
    fn forward_row_ex(
        &self,
        ns: &mut NoiseStream<'_>,
        sc: &mut Scratch,
        stats: &mut ForwardStats,
        xrow: &[f32],
        out: &mut [f32],
        report: &mut AbftReport,
        silent: &mut SilentAcc,
    ) {
        let cols = self.cols();
        let total_cols = self.w_eff.cols();
        let max_retries = match self.config.bound_management {
            BoundManagement::None => 0,
            BoundManagement::Iterative { max_rounds } => max_rounds,
        };
        let mut x_s = std::mem::take(&mut sc.x_s);
        x_s.clear();
        x_s.resize(self.rows(), 0.0);
        let mut z = std::mem::take(&mut sc.z);
        // Divide by the smoothing vector (Eq. 7: x / (α' s)).
        for (k, (&xv, &sv)) in xrow.iter().zip(&self.s).enumerate() {
            x_s[k] = xv / sv;
        }
        let mut alpha = self.config.noise_management.alpha(&x_s);
        stats.samples += 1;
        if alpha.is_nan() || alpha <= 0.0 {
            // All-zero input (or degenerate policy): output row stays zero.
            sc.x_s = x_s;
            sc.z = z;
            return;
        }

        let mut round = 0u32;
        loop {
            let (clipped, saturated) = self.convert_once_ex(ns, sc, &x_s, alpha, &mut z);
            stats.read_repeats += u64::from(self.config.read_averaging.max(1));
            let final_round = saturated == 0 || round >= max_retries;
            if final_round {
                stats.clipped_inputs += clipped as u64;
                stats.total_inputs += self.rows() as u64;
                stats.saturated_outputs += saturated as u64;
                stats.total_outputs += total_cols as u64;
                // Rescale back: y_ij = α_i γ_j ẑ_ij (Eq. 3 / Eq. 8).
                for j in 0..cols {
                    out[j] = z[j] * alpha * self.gamma[j];
                    stats.rescale_sum += (alpha * self.gamma[j]) as f64;
                }
                stats.rescale_count += cols as u64;
                if let Some(ab) = &self.abft {
                    let gamma_c = self.gamma[cols];
                    let pred: f64 = x_s
                        .iter()
                        .zip(&ab.check_w)
                        .map(|(&xv, &cv)| (xv as f64) * (cv as f64))
                        .sum();
                    // Noise floor of one averaged checksum code:
                    // quantisation contributes ±lsb/2 and the additive
                    // output noise is divided by the read averaging.
                    let ra = self.config.read_averaging.max(1) as f32;
                    let floor = (self.adc_lsb / 2.0)
                        .max(self.config.out_noise / ra.sqrt())
                        .max(1e-9);
                    // `pred` is already in rescaled output units: the α
                    // of the input normalisation cancels against the α
                    // of the output rescale.
                    silent.pred += pred.abs();
                    silent.actual += f64::from((z[cols] * alpha * gamma_c).abs());
                    silent.noise += f64::from(alpha * gamma_c * floor);
                    // A sample with rail-level ADC codes is unverifiable:
                    // clipping breaks the checksum identity without any
                    // hardware fault (bound management has already used
                    // its retries by this point), so checking it would
                    // condemn healthy tiles on saturating workloads.
                    if saturated == 0 {
                        self.abft_check_row(&x_s, alpha, &z, out, report);
                    }
                }
                break;
            }
            // Bound management: widen the input range and redo.
            alpha *= 2.0;
            round += 1;
            stats.bound_mgmt_retries += 1;
        }
        sc.x_s = x_s;
        sc.z = z;
    }

    /// Finalizes the silent-tile verdict over the batch's accumulators.
    fn finish_report(&self, report: &mut AbftReport, silent: &SilentAcc) {
        if self.abft.is_some() {
            let policy = &self.config.fault_tolerance;
            // Silent-tile detector: a fully dead tile has a *consistent*
            // checksum of zero, invisible to the residual test. Compare the
            // checksum output a clean tile would have produced for this
            // batch against what was observed: "dead" means the prediction
            // is well above the ADC/noise floor while the observation stays
            // near it. (Comparing energies rather than raw codes keeps
            // tiles with legitimately tiny outputs — e.g. naive deployments
            // whose γ is dominated by outlier channels — unflagged.)
            report.silent = silent.pred > 4.0 * silent.noise && silent.actual < 0.25 * silent.pred;
            let frac_flag = report.violations as f64
                > f64::from(policy.flag_fraction) * report.rows_checked as f64;
            report.suspicious = report.silent || (report.violations >= 1 && frac_flag);
        }
    }

    /// The per-sample ABFT residual test (see [`AbftState`]).
    fn abft_check_row(
        &self,
        x_s: &[f32],
        alpha: f32,
        z: &[f32],
        out: &[f32],
        report: &mut AbftReport,
    ) {
        let ab = self.abft.as_ref().expect("caller checked");
        let cfg = &self.config;
        let policy = &cfg.fault_tolerance;
        let dc = self.data_cols;
        let y_c = z[dc] * alpha * self.gamma[dc];
        let mut sum_y = 0.0f64;
        let mut sum_abs = y_c.abs() as f64;
        for &v in out.iter().take(dc) {
            sum_y += v as f64;
            sum_abs += v.abs() as f64;
        }
        let static_corr: f64 = x_s
            .iter()
            .zip(&ab.static_corr)
            .map(|(&xv, &dv)| (xv as f64) * (dv as f64))
            .sum();
        let residual = sum_y - y_c as f64 - static_corr;

        // Stochastic noise budget of the residual: per column, additive
        // output noise and ADC quantization scale by α·γ_j while short-term
        // read noise scales by γ_j·σ_w·‖x_s‖₂ (the α cancels); columns are
        // independent, so the variances sum with gain Γ² = Σγ². Read
        // averaging divides the stochastic part by n.
        let xs_l2 = x_s
            .iter()
            .map(|&v| (v as f64) * (v as f64))
            .sum::<f64>()
            .sqrt();
        let a = alpha as f64;
        let out_var = (cfg.out_noise as f64).powi(2) + (self.adc_lsb as f64).powi(2) / 12.0;
        let w_var = (cfg.w_noise as f64).powi(2) * xs_l2 * xs_l2;
        let ra = f64::from(cfg.read_averaging.max(1));
        let sigma_r = (f64::from(ab.gamma_sq) * (a * a * out_var + w_var) / ra).sqrt();
        let tau = f64::from(policy.abft_threshold) * sigma_r
            + f64::from(policy.abft_rel_tol) * sum_abs
            + 1e-6;

        report.rows_checked += 1;
        let ratio = (residual.abs() / tau) as f32;
        report.worst_ratio = report.worst_ratio.max(ratio);
        if residual.abs() > tau {
            report.violations += 1;
        }
    }

    /// One DAC→MAC→ADC pass at a fixed `α`, averaged over `read_averaging`
    /// repeats. Writes the normalised outputs into `z` (cleared first) and
    /// returns the clip/saturation counts.
    ///
    /// Under read averaging the saturation count is the **per-repeat
    /// maximum**: a repeat that saturates means the physical read-out hit
    /// the rails, and bound management must widen the range even when the
    /// other repeats stayed in range. (Integer-averaging the counts would
    /// round 15 saturated reads out of 16 down to zero and silently skip
    /// the retry.)
    fn convert_once_ex(
        &self,
        ns: &mut NoiseStream<'_>,
        sc: &mut Scratch,
        x_s: &[f32],
        alpha: f32,
        z: &mut Vec<f32>,
    ) -> (usize, usize) {
        #[cfg(test)]
        if self.reference_path {
            return self.convert_once_reference(ns, sc, x_s, alpha, z);
        }
        let repeats = self.config.read_averaging.max(1) as usize;
        let analog = matches!(
            self.config.input_encoding,
            crate::config::InputEncoding::Analog
        );
        let (clipped, saturated) = if repeats == 1 {
            self.convert_single_ex(ns, sc, x_s, alpha, z)
        } else if analog {
            self.convert_analog_averaged_ex(ns, sc, x_s, alpha, z, repeats)
        } else {
            // Bit-serial planes rebuild the full wordline sweep per repeat;
            // only the ADC-code accumulation is shared with the analog path.
            let (clipped, mut saturated) = self.convert_single_ex(ns, sc, x_s, alpha, z);
            let mut zr = std::mem::take(&mut sc.z_rep);
            for _ in 1..repeats {
                let (_, sat) = self.convert_single_ex(ns, sc, x_s, alpha, &mut zr);
                for (a, &b) in z.iter_mut().zip(&zr) {
                    *a += b;
                }
                saturated = saturated.max(sat);
            }
            sc.z_rep = zr;
            let inv = 1.0 / repeats as f32;
            for v in z.iter_mut() {
                *v *= inv;
            }
            (clipped, saturated)
        };
        // A stuck ADC channel reports its latched code regardless of the
        // bitline current (and of averaging — every repeat reads the same
        // code).
        if let Some(map) = &self.fault_map {
            map.apply_adc_stuck(z, self.config.adc_bound);
        }
        (clipped, saturated)
    }

    /// A single unaveraged conversion round, written into `z`.
    fn convert_single_ex(
        &self,
        ns: &mut NoiseStream<'_>,
        sc: &mut Scratch,
        x_s: &[f32],
        alpha: f32,
        z: &mut Vec<f32>,
    ) -> (usize, usize) {
        match self.config.input_encoding {
            crate::config::InputEncoding::Analog => self.convert_analog_ex(ns, sc, x_s, alpha, z),
            crate::config::InputEncoding::BitSerial { bits } => {
                self.convert_bit_serial_ex(ns, sc, x_s, alpha, bits, z)
            }
        }
    }

    /// Adds `N(0, σ)` to every element of `xs`.
    ///
    /// The samples are drawn with the stream's batched fill into the `buf`
    /// scratch vector and then added — the same values, in the same draw
    /// order, as a per-element `*v += ns.normal(0.0, sigma)` loop.
    fn add_noise_ex(ns: &mut NoiseStream<'_>, buf: &mut Vec<f32>, xs: &mut [f32], sigma: f32) {
        buf.clear();
        buf.resize(xs.len(), 0.0);
        ns.fill_normal(buf, 0.0, sigma);
        for (v, &n) in xs.iter_mut().zip(buf.iter()) {
            *v += n;
        }
    }

    /// σ of the aggregated short-term read noise for drive vector `x_hat`:
    /// each cell's conductance jitters per read cycle, so output `j` picks
    /// up `Σ_k ξ_kj · x̂_k`, a Gaussian with std `σ_w · ‖x̂‖₂`. Sampling
    /// that aggregate directly is statistically exact and `O(cols)` instead
    /// of `O(rows × cols)`. Returns 0 when the stage is inactive.
    fn read_noise_sigma(&self, x_hat: &[f32]) -> f32 {
        if self.config.w_noise <= 0.0 {
            return 0.0;
        }
        let x_l2 = x_hat
            .iter()
            .map(|&v| (v as f64) * (v as f64))
            .sum::<f64>()
            .sqrt() as f32;
        if x_l2 > 0.0 {
            self.config.w_noise * x_l2
        } else {
            0.0
        }
    }

    /// Mean `|x̂|` of the driven wordlines — the IR-drop model's congestion
    /// proxy. Returns 0 when IR drop is off (the value is unused then).
    fn mean_drive(&self, x_hat: &[f32]) -> f32 {
        if self.ir.is_off() {
            return 0.0;
        }
        x_hat.iter().map(|v| v.abs()).sum::<f32>() / x_hat.len().max(1) as f32
    }

    /// The stochastic back half of one conversion round, fused into a
    /// single pass over `z`: read-noise add, IR-drop droop, output-noise
    /// add, ADC saturate+quantize. Returns the saturation count.
    ///
    /// The noise is drawn into scratch buffers *before* the arithmetic
    /// pass — all read-noise draws first, then all output-noise draws —
    /// which preserves the exact RNG draw order of the unfused per-stage
    /// sweeps. Each element then sees the identical operation chain
    /// (`+ wn[j]`, `× droop_j`, `+ on[j]`, ADC) the sweeps would apply, so
    /// fusing changes nothing bitwise while touching `z` once instead of
    /// four times.
    fn fused_epilogue_ex(
        &self,
        ns: &mut NoiseStream<'_>,
        sc: &mut Scratch,
        z: &mut [f32],
        sigma_w: f32,
        u: f32,
    ) -> usize {
        let n = z.len();
        let has_w = sigma_w > 0.0;
        let has_o = self.config.out_noise > 0.0;
        let has_ir = !self.ir.is_off();
        let Scratch { wn, on, .. } = sc;
        if has_w {
            wn.clear();
            wn.resize(n, 0.0);
            ns.fill_normal(wn, 0.0, sigma_w);
        }
        if has_o {
            on.clear();
            on.resize(n, 0.0);
            ns.fill_normal(on, 0.0, self.config.out_noise);
        }
        let mut saturated = 0usize;
        for (j, v) in z.iter_mut().enumerate() {
            let mut r = *v;
            if has_w {
                r += wn[j];
            }
            if has_ir {
                r *= self.ir.multiplier(self.ir_factors[j], u);
            }
            if has_o {
                r += on[j];
            }
            let (code, sat) = self.adc.convert(r);
            saturated += sat as usize;
            *v = code;
        }
        saturated
    }

    /// Multi-level analog input drive: one DAC conversion per input.
    fn convert_analog_ex(
        &self,
        ns: &mut NoiseStream<'_>,
        sc: &mut Scratch,
        x_s: &[f32],
        alpha: f32,
        z: &mut Vec<f32>,
    ) -> (usize, usize) {
        // DAC stage.
        let mut x_hat = std::mem::take(&mut sc.x_hat);
        x_hat.clear();
        x_hat.extend(x_s.iter().map(|&v| v / alpha));
        let clipped = self.dac.convert_slice(&mut x_hat);
        // Additive input noise (mixed-signal components after the DAC).
        if self.config.in_noise > 0.0 {
            let sigma = self.config.in_noise;
            Self::add_noise_ex(ns, &mut sc.wn, &mut x_hat, sigma);
        }
        // S-shape transfer of the input drivers.
        crate::nonlinearity::s_shape_slice(&mut x_hat, self.config.s_shape);

        // Analog MAC over the effective weights (dense kernel: activations
        // after DAC + noise + S-shape are almost never exact zeros).
        self.w_eff.vecmat_into(&x_hat, z);

        let sigma_w = self.read_noise_sigma(&x_hat);
        let u = self.mean_drive(&x_hat);
        sc.x_hat = x_hat;
        let saturated = self.fused_epilogue_ex(ns, sc, z, sigma_w, u);
        (clipped, saturated)
    }

    /// Read-averaged analog conversion with the deterministic stages
    /// hoisted out of the repeat loop.
    ///
    /// The DAC sees the same `x_s/α` every repeat and consumes no RNG
    /// draws, so its output (and clip count) is computed once. With no
    /// additive input noise the S-shaped drive vector — and therefore the
    /// clean MVM `ŵ·x̂`, the read-noise σ and the IR-drop congestion — are
    /// also repeat-invariant, collapsing each repeat to "clean z + fresh
    /// noise + IR droop + ADC". None of the hoisted stages draws from the
    /// RNG, and the per-repeat draw order (read noise, then output noise)
    /// matches the unhoisted chain, so the noise stream is untouched and
    /// the averaged codes are bit-identical to running the full chain
    /// `repeats` times.
    fn convert_analog_averaged_ex(
        &self,
        ns: &mut NoiseStream<'_>,
        sc: &mut Scratch,
        x_s: &[f32],
        alpha: f32,
        z: &mut Vec<f32>,
        repeats: usize,
    ) -> (usize, usize) {
        let mut x_dac = std::mem::take(&mut sc.x_dac);
        x_dac.clear();
        x_dac.extend(x_s.iter().map(|&v| v / alpha));
        let clipped = self.dac.convert_slice(&mut x_dac);

        let mut zr = std::mem::take(&mut sc.z_rep);
        let mut saturated = 0usize;
        if self.config.in_noise > 0.0 {
            // Partial hoist: input noise makes the driven vector (and so
            // the MVM) stochastic, so each repeat rebuilds it from the
            // cached DAC output and runs a full MVM.
            let sigma_in = self.config.in_noise;
            for rep in 0..repeats {
                let mut x_hat = std::mem::take(&mut sc.x_hat);
                x_hat.clear();
                x_hat.extend_from_slice(&x_dac);
                Self::add_noise_ex(ns, &mut sc.wn, &mut x_hat, sigma_in);
                crate::nonlinearity::s_shape_slice(&mut x_hat, self.config.s_shape);
                self.w_eff.vecmat_into(&x_hat, &mut zr);
                let sigma_w = self.read_noise_sigma(&x_hat);
                let u = self.mean_drive(&x_hat);
                sc.x_hat = x_hat;
                let sat = self.fused_epilogue_ex(ns, sc, &mut zr, sigma_w, u);
                saturated = saturated.max(sat);
                Self::accumulate_repeat(z, &zr, rep);
            }
        } else {
            // Full hoist: S-shape, clean MVM, read-noise σ and mean drive
            // once; `read_averaging = n` costs one GEMV instead of `n`.
            crate::nonlinearity::s_shape_slice(&mut x_dac, self.config.s_shape);
            let mut z_clean = std::mem::take(&mut sc.z_clean);
            self.w_eff.vecmat_into(&x_dac, &mut z_clean);
            let sigma_w = self.read_noise_sigma(&x_dac);
            let u = self.mean_drive(&x_dac);
            for rep in 0..repeats {
                zr.clear();
                zr.extend_from_slice(&z_clean);
                let sat = self.fused_epilogue_ex(ns, sc, &mut zr, sigma_w, u);
                saturated = saturated.max(sat);
                Self::accumulate_repeat(z, &zr, rep);
            }
            sc.z_clean = z_clean;
        }
        sc.z_rep = zr;
        sc.x_dac = x_dac;
        let inv = 1.0 / repeats as f32;
        for v in z.iter_mut() {
            *v *= inv;
        }
        (clipped, saturated)
    }

    /// Adds repeat `rep`'s codes into the running sum `z`, in repeat order
    /// — the same `z = c₀; z += c₁; …` chain as the unhoisted loop.
    fn accumulate_repeat(z: &mut Vec<f32>, zr: &[f32], rep: usize) {
        if rep == 0 {
            z.clear();
            z.extend_from_slice(zr);
        } else {
            for (a, &b) in z.iter_mut().zip(zr) {
                *a += b;
            }
        }
    }

    /// Bit-serial input drive (ISAAC-style): the scaled input is quantized
    /// to `bits` signed levels and streamed as `bits − 1` binary ±1/0
    /// wordline planes; each plane runs the full analog chain (read noise,
    /// IR-drop, output noise, ADC) and the planes are combined by a digital
    /// shift-add. Binary drivers see the S-shape nonlinearity only as a
    /// single calibrated gain, so it cancels exactly.
    fn convert_bit_serial_ex(
        &self,
        ns: &mut NoiseStream<'_>,
        sc: &mut Scratch,
        x_s: &[f32],
        alpha: f32,
        bits: u32,
        z: &mut Vec<f32>,
    ) -> (usize, usize) {
        let planes = bits - 1;
        let full_scale = ((1u32 << planes) - 1) as f32;
        // Quantize the scaled input to signed integers in [-full_scale,
        // full_scale]; values beyond the DAC bound clip, as in the analog
        // path.
        let bound = self.config.dac_bound;
        let mut clipped = 0usize;
        let mut levels = std::mem::take(&mut sc.levels);
        levels.clear();
        levels.extend(x_s.iter().map(|&v| {
            let scaled = v / alpha;
            if scaled.abs() > bound {
                clipped += 1;
            }
            let c = if scaled.is_nan() {
                0.0
            } else {
                scaled.clamp(-bound, bound)
            };
            (c / bound * full_scale).round() as i32
        }));

        // The calibrated gain of a binary driver under the S-shape transfer.
        let drive_gain = crate::nonlinearity::s_shape(1.0, self.config.s_shape);

        let cols = self.cols();
        z.clear();
        z.resize(cols, 0.0);
        let mut saturated = 0usize;
        let mut plane = std::mem::take(&mut sc.plane);
        plane.clear();
        plane.resize(levels.len(), 0.0);
        let mut zk = std::mem::take(&mut sc.zk);
        for k in 0..planes {
            let mask = 1i32 << k;
            for (p, &m) in plane.iter_mut().zip(&levels) {
                *p = if m.abs() & mask != 0 {
                    m.signum() as f32 * drive_gain
                } else {
                    0.0
                };
            }
            // Additive input noise perturbs every driven wordline phase
            // (batched draw — same per-line sequence as the scalar loop).
            if self.config.in_noise > 0.0 {
                let sigma = self.config.in_noise;
                Self::add_noise_ex(ns, &mut sc.wn, &mut plane, sigma);
            }
            // Wordline planes are genuinely sparse (≈half the lines idle per
            // bit position when in_noise is zero), so the sparse-aware
            // kernel wins here — unlike the dense analog path.
            self.w_eff.vecmat_sparse_into(&plane, &mut zk);
            // Per-plane read noise / IR droop / output noise / ADC, fused
            // exactly as in the analog path (the plane is the drive vector).
            let sigma_w = self.read_noise_sigma(&plane);
            let u = self.mean_drive(&plane);
            saturated += self.fused_epilogue_ex(ns, sc, &mut zk, sigma_w, u);
            // Digital shift-add, undoing the calibrated binary drive gain.
            let weight = (mask as f32) / full_scale * bound / drive_gain;
            for (acc, &v) in z.iter_mut().zip(&zk) {
                *acc += v * weight;
            }
        }
        sc.levels = levels;
        sc.plane = plane;
        sc.zk = zk;
        (clipped, saturated)
    }

    /// Mean relative programmed conductance `mean(|ŵ|)` — drives array
    /// read energy and IR-drop.
    pub fn mean_rel_conductance(&self) -> f32 {
        if self.w_eff.is_empty() {
            return 0.0;
        }
        self.w_eff.as_slice().iter().map(|v| v.abs()).sum::<f32>() / self.w_eff.len() as f32
    }

    /// First-order energy/latency estimate of all executions recorded in
    /// this tile's statistics (see [`crate::energy`]).
    pub fn energy(&self, model: &crate::energy::EnergyModel) -> crate::energy::EnergyReport {
        model.estimate(
            &self.stats,
            self.rows(),
            self.w_eff.cols(), // the checksum column, if any, costs energy too
            self.mean_rel_conductance(),
        )
    }

    /// Re-reads the tile's conductances `t_seconds` after programming,
    /// replacing the effective weights with their drifted values (PCM
    /// weight source only; a no-op for ideal weights).
    ///
    /// With [`DriftCompensation::GlobalScale`] the drifted weights are
    /// rescaled by one global factor so that the summed absolute weight
    /// matches its value at programming time.
    pub fn apply_drift(&mut self, t_seconds: f64, compensation: DriftCompensation) {
        // The offline study's drift re-read models a fresh deployment-time
        // calibration pass, so the ABFT static correction is re-measured.
        self.drift_read(t_seconds, compensation, true);
    }

    /// Online field-drift step: re-reads the conductances at virtual time
    /// `now`, i.e. `now − programmed_at` seconds after this tile was last
    /// programmed. Unlike [`AnalogTile::apply_drift`] the ABFT calibration
    /// is **not** refreshed — in the field nobody re-runs the deployment
    /// calibration, so the drift residual accrues against the stale
    /// correction and eventually trips the checksum ladder, which is
    /// exactly the trigger the maintenance scheduler listens for. Any
    /// installed recalibration scale is reapplied after the re-read.
    pub fn drift_to(&mut self, now: f64, compensation: DriftCompensation) {
        // Never read before the reference read time: effective weights are
        // defined at `REFERENCE_READ_TIME` and the drift factor clamps there
        // anyway, so a rotation followed by a drift step in the same round
        // re-reads the freshly programmed state.
        let elapsed = (now - self.programmed_at).max(REFERENCE_READ_TIME);
        self.drift_read(elapsed, compensation, false);
    }

    fn drift_read(&mut self, t_seconds: f64, compensation: DriftCompensation, recalibrate: bool) {
        let Some(prog) = &self.programmed else {
            return;
        };
        let device = self
            .config
            .device_model()
            .expect("programmed tile implies a device model");
        let mut dev_rng = self.rng.fork(0xd21f);
        self.w_eff = match prog {
            ProgrammedWeights::Plain(p) => read_matrix(p, device.as_ref(), t_seconds, &mut dev_rng),
            ProgrammedWeights::Sliced(s) => {
                read_sliced(s, device.as_ref(), t_seconds, &mut dev_rng)
            }
        };
        // When requested, the re-read models a fresh calibration pass: the
        // ABFT static correction is re-measured from the drifted (still
        // healthy) conductances before the array's hard defects are
        // re-imprinted — stuck cells do not drift away.
        if recalibrate {
            if let Some(ab) = &mut self.abft {
                *ab = AbftState::calibrate(&self.w_eff, &self.gamma, self.data_cols);
            }
        }
        if let Some(map) = &self.fault_map {
            map.apply_to_weights(&mut self.w_eff);
        }
        if compensation == DriftCompensation::GlobalScale {
            let now: f64 = self.w_eff.as_slice().iter().map(|&v| v.abs() as f64).sum();
            if now > 0.0 && self.prog_abs_sum > 0.0 {
                self.w_eff.scale_assign((self.prog_abs_sum / now) as f32);
            }
        }
        if self.recal_scale != 1.0 {
            self.w_eff.scale_assign(self.recal_scale);
        }
    }
}

/// Naive reference conversion path, used by the equivalence tests to prove
/// the hoisted/fused fast path bit-identical: one full per-stage chain per
/// read-averaging repeat, scalar per-element noise draws, no hoisting, no
/// fusing. This is the shipping implementation from before the fast path,
/// with the same per-repeat-maximum saturation accounting.
#[cfg(test)]
impl AnalogTile {
    /// Routes all subsequent conversions through the reference path.
    fn use_reference_path(&mut self) {
        self.reference_path = true;
    }

    fn convert_once_reference(
        &self,
        ns: &mut NoiseStream<'_>,
        sc: &mut Scratch,
        x_s: &[f32],
        alpha: f32,
        z: &mut Vec<f32>,
    ) -> (usize, usize) {
        let repeats = self.config.read_averaging.max(1);
        let (clipped, mut saturated) = self.convert_single_reference(ns, sc, x_s, alpha, z);
        if repeats > 1 {
            let mut zr = std::mem::take(&mut sc.z_rep);
            for _ in 1..repeats {
                let (_, sat) = self.convert_single_reference(ns, sc, x_s, alpha, &mut zr);
                for (a, &b) in z.iter_mut().zip(&zr) {
                    *a += b;
                }
                saturated = saturated.max(sat);
            }
            sc.z_rep = zr;
            let inv = 1.0 / repeats as f32;
            for v in z.iter_mut() {
                *v *= inv;
            }
        }
        if let Some(map) = &self.fault_map {
            map.apply_adc_stuck(z, self.config.adc_bound);
        }
        (clipped, saturated)
    }

    fn convert_single_reference(
        &self,
        ns: &mut NoiseStream<'_>,
        sc: &mut Scratch,
        x_s: &[f32],
        alpha: f32,
        z: &mut Vec<f32>,
    ) -> (usize, usize) {
        match self.config.input_encoding {
            crate::config::InputEncoding::Analog => {
                self.convert_analog_reference(ns, sc, x_s, alpha, z)
            }
            crate::config::InputEncoding::BitSerial { bits } => {
                self.convert_bit_serial_reference(ns, sc, x_s, alpha, bits, z)
            }
        }
    }

    fn convert_analog_reference(
        &self,
        ns: &mut NoiseStream<'_>,
        sc: &mut Scratch,
        x_s: &[f32],
        alpha: f32,
        z: &mut Vec<f32>,
    ) -> (usize, usize) {
        let mut x_hat = std::mem::take(&mut sc.x_hat);
        x_hat.clear();
        x_hat.extend(x_s.iter().map(|&v| v / alpha));
        let clipped = self.dac.convert_slice(&mut x_hat);
        if self.config.in_noise > 0.0 {
            let sigma = self.config.in_noise;
            for v in &mut x_hat {
                *v += ns.normal(0.0, sigma);
            }
        }
        crate::nonlinearity::s_shape_slice(&mut x_hat, self.config.s_shape);
        self.w_eff.vecmat_into(&x_hat, z);
        if self.config.w_noise > 0.0 {
            let x_l2 = x_hat
                .iter()
                .map(|&v| (v as f64) * (v as f64))
                .sum::<f64>()
                .sqrt() as f32;
            if x_l2 > 0.0 {
                let sigma = self.config.w_noise * x_l2;
                for v in z.iter_mut() {
                    *v += ns.normal(0.0, sigma);
                }
            }
        }
        if !self.ir.is_off() {
            let u: f32 = x_hat.iter().map(|v| v.abs()).sum::<f32>() / x_hat.len().max(1) as f32;
            self.ir.apply(z, &self.ir_factors, u);
        }
        if self.config.out_noise > 0.0 {
            let sigma = self.config.out_noise;
            for v in z.iter_mut() {
                *v += ns.normal(0.0, sigma);
            }
        }
        let saturated = self.adc.convert_slice(z);
        sc.x_hat = x_hat;
        (clipped, saturated)
    }

    fn convert_bit_serial_reference(
        &self,
        ns: &mut NoiseStream<'_>,
        sc: &mut Scratch,
        x_s: &[f32],
        alpha: f32,
        bits: u32,
        z: &mut Vec<f32>,
    ) -> (usize, usize) {
        let planes = bits - 1;
        let full_scale = ((1u32 << planes) - 1) as f32;
        let bound = self.config.dac_bound;
        let mut clipped = 0usize;
        let mut levels = std::mem::take(&mut sc.levels);
        levels.clear();
        levels.extend(x_s.iter().map(|&v| {
            let scaled = v / alpha;
            if scaled.abs() > bound {
                clipped += 1;
            }
            let c = if scaled.is_nan() {
                0.0
            } else {
                scaled.clamp(-bound, bound)
            };
            (c / bound * full_scale).round() as i32
        }));
        let drive_gain = crate::nonlinearity::s_shape(1.0, self.config.s_shape);
        let cols = self.cols();
        z.clear();
        z.resize(cols, 0.0);
        let mut saturated = 0usize;
        let mut plane = std::mem::take(&mut sc.plane);
        plane.clear();
        plane.resize(levels.len(), 0.0);
        let mut zk = std::mem::take(&mut sc.zk);
        for k in 0..planes {
            let mask = 1i32 << k;
            for (p, &m) in plane.iter_mut().zip(&levels) {
                *p = if m.abs() & mask != 0 {
                    m.signum() as f32 * drive_gain
                } else {
                    0.0
                };
                if self.config.in_noise > 0.0 {
                    *p += ns.normal(0.0, self.config.in_noise);
                }
            }
            self.w_eff.vecmat_sparse_into(&plane, &mut zk);
            if self.config.w_noise > 0.0 {
                let l2 = plane
                    .iter()
                    .map(|&v| (v as f64) * (v as f64))
                    .sum::<f64>()
                    .sqrt() as f32;
                if l2 > 0.0 {
                    let sigma = self.config.w_noise * l2;
                    for v in &mut zk {
                        *v += ns.normal(0.0, sigma);
                    }
                }
            }
            if !self.ir.is_off() {
                let u: f32 = plane.iter().map(|v| v.abs()).sum::<f32>() / plane.len().max(1) as f32;
                self.ir.apply(&mut zk, &self.ir_factors, u);
            }
            if self.config.out_noise > 0.0 {
                for v in &mut zk {
                    *v += ns.normal(0.0, self.config.out_noise);
                }
            }
            saturated += self.adc.convert_slice(&mut zk);
            let weight = (mask as f32) / full_scale * bound / drive_gain;
            for (acc, &v) in z.iter_mut().zip(&zk) {
                *acc += v * weight;
            }
        }
        sc.levels = levels;
        sc.plane = plane;
        sc.zk = zk;
        (clipped, saturated)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Resolution, WeightSource};
    use crate::management::NoiseManagement;
    use nora_tensor::stats;

    fn random_setup(seed: u64, rows: usize, cols: usize) -> (Matrix, Matrix) {
        let mut rng = Rng::seed_from(seed);
        let w = Matrix::random_normal(rows, cols, 0.0, 0.3, &mut rng);
        let x = Matrix::random_normal(8, rows, 0.0, 1.0, &mut rng);
        (w, x)
    }

    #[test]
    fn ideal_tile_computes_exact_gemv() {
        let (w, x) = random_setup(1, 32, 16);
        let mut tile = AnalogTile::new(w.clone(), None, TileConfig::ideal(), Rng::seed_from(2));
        let y = tile.forward(&x);
        let y_ref = x.matmul(&w);
        assert!(y.mse(&y_ref) < 1e-10, "mse {}", y.mse(&y_ref));
    }

    #[test]
    fn ideal_tile_with_smoothing_is_still_exact() {
        // NORA rescaling is mathematically exact absent non-idealities.
        let (w, x) = random_setup(3, 32, 16);
        let s: Vec<f32> = (0..32).map(|i| 0.25 + (i % 7) as f32 * 0.5).collect();
        let mut tile = AnalogTile::new(w.clone(), Some(&s), TileConfig::ideal(), Rng::seed_from(4));
        let y = tile.forward(&x);
        let y_ref = x.matmul(&w);
        assert!(y.mse(&y_ref) < 1e-9, "mse {}", y.mse(&y_ref));
    }

    #[test]
    fn paper_default_tile_is_noisy_but_close() {
        let (w, x) = random_setup(5, 64, 32);
        let mut cfg = TileConfig::paper_default();
        cfg.tile_rows = 64;
        cfg.tile_cols = 32;
        let mut tile = AnalogTile::new(w.clone(), None, cfg, Rng::seed_from(6));
        let y = tile.forward(&x);
        let y_ref = x.matmul(&w);
        let rel = y.mse(&y_ref) / stats::variance(y_ref.as_slice());
        assert!(rel > 1e-6, "should not be exact, rel {rel}");
        assert!(rel < 0.2, "should be within 20% relative MSE, rel {rel}");
    }

    #[test]
    fn zero_input_row_gives_zero_output() {
        let (w, _) = random_setup(7, 16, 8);
        let mut tile = AnalogTile::new(w, None, TileConfig::paper_default(), Rng::seed_from(8));
        let x = Matrix::zeros(2, 16);
        let y = tile.forward(&x);
        assert!(y.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn gamma_is_column_abs_max_of_scaled_weights() {
        let w = Matrix::from_rows(&[&[1.0, -4.0], &[-2.0, 3.0]]);
        let s = [2.0f32, 1.0];
        let tile = AnalogTile::new(w, Some(&s), TileConfig::ideal(), Rng::seed_from(0));
        // col 0: |1*2| vs |-2*1| → 2 ; col 1: |-4*2| vs |3*1| → 8
        assert_eq!(tile.gamma(), &[2.0, 8.0]);
    }

    #[test]
    fn effective_weights_are_normalised() {
        let (w, _) = random_setup(9, 20, 10);
        let tile = AnalogTile::new(w, None, TileConfig::ideal(), Rng::seed_from(1));
        assert!(tile.effective_weights().abs_max() <= 1.0 + 1e-6);
    }

    #[test]
    fn all_zero_column_stays_zero() {
        let mut w = Matrix::zeros(4, 3);
        w[(0, 0)] = 1.0;
        w[(2, 2)] = -1.0;
        let mut tile = AnalogTile::new(w, None, TileConfig::ideal(), Rng::seed_from(2));
        let x = Matrix::from_rows(&[&[1.0, 1.0, 1.0, 1.0]]);
        let y = tile.forward(&x);
        assert_eq!(y[(0, 1)], 0.0);
    }

    #[test]
    fn quantization_error_shrinks_with_resolution() {
        let (w, x) = random_setup(11, 48, 24);
        let y_ref = x.matmul(&w);
        let mse_at_bits = |bits: u32| {
            let mut cfg = TileConfig::ideal();
            cfg.dac = Resolution::bits(bits);
            cfg.adc = Resolution::bits(bits);
            cfg.adc_bound = 12.0;
            let mut tile = AnalogTile::new(w.clone(), None, cfg, Rng::seed_from(12));
            tile.forward(&x).mse(&y_ref)
        };
        let coarse = mse_at_bits(4);
        let fine = mse_at_bits(9);
        assert!(
            fine < coarse / 10.0,
            "fine {fine} should be well below coarse {coarse}"
        );
    }

    #[test]
    fn output_noise_scales_mse() {
        let (w, x) = random_setup(13, 48, 24);
        let y_ref = x.matmul(&w);
        let mse_at = |sigma: f32| {
            let mut cfg = TileConfig::ideal();
            cfg.out_noise = sigma;
            let mut tile = AnalogTile::new(w.clone(), None, cfg, Rng::seed_from(14));
            tile.forward(&x).mse(&y_ref)
        };
        let low = mse_at(0.01);
        let high = mse_at(0.1);
        // MSE should scale roughly with σ² (×100)
        let ratio = high / low;
        assert!((30.0..300.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn read_noise_aggregate_matches_statistics() {
        // Per-output read-noise std should be σ_w · ‖x̂‖₂ · α · γ.
        let rows = 64;
        let w = Matrix::full(rows, 1, 0.5);
        let mut cfg = TileConfig::ideal();
        cfg.w_noise = 0.02;
        cfg.noise_management = NoiseManagement::AbsMax;
        let mut tile = AnalogTile::new(w.clone(), None, cfg, Rng::seed_from(15));
        let x = Matrix::full(1, rows, 1.0);
        let y_ref = x.matmul(&w)[(0, 0)];
        let n = 4000;
        let mut sum2 = 0.0f64;
        for _ in 0..n {
            let y = tile.forward(&x)[(0, 0)];
            sum2 += ((y - y_ref) as f64).powi(2);
        }
        let measured = (sum2 / n as f64).sqrt();
        // x̂ = 1 (α=1 per AbsMax? α = max|x| = 1). ‖x̂‖₂ = 8. γ = 0.5.
        let expect = 0.02 * (rows as f32).sqrt() * 1.0 * 0.5;
        assert!(
            (measured / expect as f64 - 1.0).abs() < 0.1,
            "measured {measured} expect {expect}"
        );
    }

    #[test]
    fn bound_management_recovers_saturation() {
        // Force heavy ADC saturation with a tiny bound; iterative BM should
        // recover most of the accuracy.
        let (w, x) = random_setup(17, 64, 16);
        let y_ref = x.matmul(&w);
        let run = |bm: BoundManagement| {
            let mut cfg = TileConfig::ideal();
            cfg.adc = Resolution::bits(9);
            cfg.adc_bound = 1.0; // far too small: outputs saturate
            cfg.bound_management = bm;
            let mut tile = AnalogTile::new(w.clone(), None, cfg, Rng::seed_from(18));
            let y = tile.forward(&x);
            (y.mse(&y_ref), tile.stats().bound_mgmt_retries)
        };
        let (mse_none, retries_none) = run(BoundManagement::None);
        let (mse_bm, retries_bm) = run(BoundManagement::Iterative { max_rounds: 6 });
        assert_eq!(retries_none, 0);
        assert!(retries_bm > 0);
        assert!(
            mse_bm < mse_none / 5.0,
            "bm {mse_bm} should beat none {mse_none}"
        );
    }

    #[test]
    fn exact_full_scale_output_triggers_no_bound_management_retry() {
        // Regression for the ADC `>=` saturation boundary: a noiseless 1×1
        // tile with w = 1 and AbsMax noise management drives x̂ = 1, so the
        // pre-ADC read-out is exactly the ADC bound. Full scale is in
        // range — the iterative bound-management loop must accept it on
        // round 0 instead of burning α-doubling retries.
        let mut cfg = TileConfig::ideal();
        cfg.adc_bound = 1.0;
        cfg.bound_management = BoundManagement::Iterative { max_rounds: 4 };
        let w = Matrix::from_vec(1, 1, vec![1.0]);
        let mut tile = AnalogTile::new(w, None, cfg, Rng::seed_from(21));
        let x = Matrix::from_vec(2, 1, vec![0.75, -0.5]);
        let y = tile.forward(&x);
        // Ideal converters: the tile computes the exact product.
        assert_eq!(y[(0, 0)], 0.75);
        assert_eq!(y[(1, 0)], -0.5);
        assert_eq!(tile.stats().bound_mgmt_retries, 0);
        assert_eq!(tile.stats().saturated_outputs, 0);
    }

    #[test]
    fn stats_accumulate_and_reset() {
        let (w, x) = random_setup(19, 16, 8);
        let mut tile = AnalogTile::new(w, None, TileConfig::paper_default(), Rng::seed_from(20));
        tile.forward(&x);
        assert_eq!(tile.stats().samples, 8);
        assert!(tile.stats().mean_rescale() > 0.0);
        tile.reset_stats();
        assert_eq!(tile.stats(), &ForwardStats::default());
    }

    #[test]
    fn pcm_weights_add_programming_error() {
        let (w, x) = random_setup(21, 32, 16);
        let y_ref = x.matmul(&w);
        let mut cfg = TileConfig::ideal();
        cfg.weight_source = WeightSource::Pcm(1.0);
        let mut tile = AnalogTile::new(w.clone(), None, cfg, Rng::seed_from(22));
        let y = tile.forward(&x);
        let mse = y.mse(&y_ref);
        assert!(mse > 1e-8, "programming noise should perturb output");
        assert!(mse < 0.5, "but not catastrophically: {mse}");
    }

    #[test]
    fn drift_degrades_then_compensation_recovers() {
        let (w, x) = random_setup(23, 48, 24);
        let y_ref = x.matmul(&w);
        let mut cfg = TileConfig::ideal();
        cfg.weight_source = WeightSource::Pcm(0.2);
        let make = || AnalogTile::new(w.clone(), None, cfg.clone(), Rng::seed_from(24));

        let mut fresh = make();
        let mse_fresh = fresh.forward(&x).mse(&y_ref);

        let mut drifted = make();
        drifted.apply_drift(86_400.0, DriftCompensation::None);
        let mse_drift = drifted.forward(&x).mse(&y_ref);

        let mut comp = make();
        comp.apply_drift(86_400.0, DriftCompensation::GlobalScale);
        let mse_comp = comp.forward(&x).mse(&y_ref);

        assert!(
            mse_drift > mse_fresh * 2.0,
            "drift should hurt: fresh {mse_fresh} drifted {mse_drift}"
        );
        assert!(
            mse_comp < mse_drift,
            "compensation should help: comp {mse_comp} drifted {mse_drift}"
        );
    }

    #[test]
    fn weight_quantization_snaps_levels_and_coarser_hurts_more() {
        let (w, x) = random_setup(41, 32, 16);
        let y_ref = x.matmul(&w);
        let mse_at_bits = |bits: u32| {
            let mut cfg = TileConfig::ideal();
            cfg.weight_quant = Resolution::bits(bits);
            let mut tile = AnalogTile::new(w.clone(), None, cfg, Rng::seed_from(42));
            tile.forward(&x).mse(&y_ref)
        };
        let coarse = mse_at_bits(3);
        let fine = mse_at_bits(8);
        assert!(fine < coarse / 10.0, "fine {fine} coarse {coarse}");

        // Levels are actually discrete: with b bits, at most 2^b + 1 values.
        let mut cfg = TileConfig::ideal();
        cfg.weight_quant = Resolution::bits(3);
        let tile = AnalogTile::new(w.clone(), None, cfg, Rng::seed_from(43));
        let mut distinct: Vec<i64> = tile
            .effective_weights()
            .as_slice()
            .iter()
            .map(|&v| (v * 1e6).round() as i64)
            .collect();
        distinct.sort_unstable();
        distinct.dedup();
        assert!(distinct.len() <= 9, "{} distinct levels", distinct.len());
    }

    #[test]
    fn bit_serial_matches_analog_quantization_accuracy() {
        use crate::config::InputEncoding;
        let (w, x) = random_setup(61, 48, 24);
        let y_ref = x.matmul(&w);
        // 7-bit analog DAC vs 7-bit bit-serial: same information per input,
        // so the quantization error should be comparable.
        let mut analog_cfg = TileConfig::ideal();
        analog_cfg.dac = Resolution::bits(7);
        let mut analog = AnalogTile::new(w.clone(), None, analog_cfg, Rng::seed_from(62));
        let mse_analog = analog.forward(&x).mse(&y_ref);

        let mut serial_cfg = TileConfig::ideal();
        serial_cfg.input_encoding = InputEncoding::BitSerial { bits: 7 };
        let mut serial = AnalogTile::new(w.clone(), None, serial_cfg, Rng::seed_from(62));
        let mse_serial = serial.forward(&x).mse(&y_ref);
        assert!(mse_serial > 0.0, "quantized, not exact");
        assert!(
            (mse_serial / mse_analog).log10().abs() < 1.0,
            "analog {mse_analog} vs bit-serial {mse_serial}"
        );
    }

    #[test]
    fn bit_serial_is_immune_to_s_shape_nonlinearity() {
        use crate::config::InputEncoding;
        let (w, x) = random_setup(63, 48, 24);
        let y_ref = x.matmul(&w);
        let curvature = 2.0; // strong driver compression
        let mut analog_cfg = TileConfig::ideal();
        analog_cfg.dac = Resolution::bits(8);
        analog_cfg.s_shape = curvature;
        let mut analog = AnalogTile::new(w.clone(), None, analog_cfg, Rng::seed_from(64));
        let mse_analog = analog.forward(&x).mse(&y_ref);

        let mut serial_cfg = TileConfig::ideal();
        serial_cfg.input_encoding = InputEncoding::BitSerial { bits: 8 };
        serial_cfg.s_shape = curvature;
        let mut serial = AnalogTile::new(w.clone(), None, serial_cfg, Rng::seed_from(64));
        let mse_serial = serial.forward(&x).mse(&y_ref);
        assert!(
            mse_serial < mse_analog / 20.0,
            "binary drive should cancel the S-shape: analog {mse_analog} vs serial {mse_serial}"
        );
    }

    #[test]
    fn bit_serial_attenuates_output_noise_via_shift_add() {
        use crate::config::InputEncoding;
        // Each plane picks up its own σ_out, but the digital shift-add
        // scales plane k's noise by 2^k / full_scale, so the combined noise
        // std is √(Σ 4^k) / full_scale ≈ 0.58 of a single conversion.
        let (w, x) = random_setup(65, 48, 24);
        let y_ref = x.matmul(&w);
        let mut analog_cfg = TileConfig::ideal();
        analog_cfg.out_noise = 0.05;
        let mut analog = AnalogTile::new(w.clone(), None, analog_cfg, Rng::seed_from(66));
        let mse_analog = analog.forward(&x).mse(&y_ref);

        let mut serial_cfg = TileConfig::ideal();
        serial_cfg.out_noise = 0.05;
        serial_cfg.input_encoding = InputEncoding::BitSerial { bits: 8 };
        let mut serial = AnalogTile::new(w.clone(), None, serial_cfg, Rng::seed_from(66));
        let mse_serial = serial.forward(&x).mse(&y_ref);
        // Expect roughly 0.58² ≈ 1/3 of the analog noise MSE (plus the
        // bit-serial quantization floor).
        assert!(
            mse_serial < mse_analog && mse_serial > mse_analog / 10.0,
            "analog {mse_analog} vs serial {mse_serial}"
        );
    }

    #[test]
    fn write_verify_tightens_programmed_weights() {
        let (w, x) = random_setup(81, 48, 24);
        let y_ref = x.matmul(&w);
        let mse_with_iters = |iters: u32| {
            let mut cfg = TileConfig::ideal();
            cfg.weight_source = WeightSource::Pcm(1.0);
            cfg.write_verify_iters = iters;
            let mut tile = AnalogTile::new(w.clone(), None, cfg, Rng::seed_from(82));
            tile.forward(&x).mse(&y_ref)
        };
        let single_shot = mse_with_iters(1);
        let verified = mse_with_iters(8);
        assert!(
            verified < single_shot / 2.0,
            "single-shot {single_shot} vs verified {verified}"
        );
    }

    #[test]
    fn read_averaging_suppresses_stochastic_noise_by_sqrt_n() {
        let (w, x) = random_setup(71, 48, 24);
        let y_ref = x.matmul(&w);
        let mse_with_reads = |n: u32| {
            let mut cfg = TileConfig::ideal();
            cfg.out_noise = 0.05;
            cfg.w_noise = 0.02;
            cfg.read_averaging = n;
            let mut tile = AnalogTile::new(w.clone(), None, cfg, Rng::seed_from(72));
            tile.forward(&x).mse(&y_ref)
        };
        let single = mse_with_reads(1);
        let averaged = mse_with_reads(8);
        // Variance should drop ≈ 8×; allow Monte-Carlo slack.
        let ratio = single / averaged;
        assert!((4.0..16.0).contains(&ratio), "ratio {ratio}");
    }

    /// The tentpole equivalence property: the hoisted/fused conversion fast
    /// path must be **bit-identical** to the naive reference (one full
    /// per-stage chain per read-averaging repeat, scalar noise draws) for
    /// every read-averaging depth, with and without input noise, hard
    /// faults, and bit-serial encoding. The reference tile is a clone, so
    /// both start from the same RNG state and programmed weights; any
    /// divergence in RNG draw order or arithmetic shows up as a bit
    /// mismatch.
    #[test]
    fn averaged_fast_path_matches_naive_reference() {
        use crate::config::InputEncoding;
        let (w, x) = random_setup(201, 48, 24);
        for encoding in [InputEncoding::Analog, InputEncoding::BitSerial { bits: 7 }] {
            for ra in [1u32, 4, 16] {
                for in_noise in [0.0f32, 0.02] {
                    for faults in [false, true] {
                        let mut cfg = TileConfig::paper_default().with_tile_size(48, 24);
                        cfg.input_encoding = encoding;
                        cfg.read_averaging = ra;
                        cfg.in_noise = in_noise;
                        if faults {
                            cfg.fault_plan = Some(FaultPlan {
                                seed: 3,
                                stuck_low: 0.01,
                                stuck_high: 0.01,
                                adc_stuck: 0.05,
                                ..FaultPlan::none()
                            });
                        }
                        let ctx = format!(
                            "encoding {encoding:?} ra {ra} in_noise {in_noise} faults {faults}"
                        );
                        let mut fast = AnalogTile::new(w.clone(), None, cfg, Rng::seed_from(202));
                        let mut naive = fast.clone();
                        naive.use_reference_path();
                        let y_fast = fast.forward(&x);
                        let y_ref = naive.forward(&x);
                        for (i, (a, b)) in
                            y_fast.as_slice().iter().zip(y_ref.as_slice()).enumerate()
                        {
                            assert_eq!(
                                a.to_bits(),
                                b.to_bits(),
                                "{ctx}: output {i} diverged: fast {a} vs reference {b}"
                            );
                        }
                        assert_eq!(fast.stats(), naive.stats(), "{ctx}: stats diverged");
                    }
                }
            }
        }
    }

    /// The equivalence sweep again, but with ABFT enabled: the checksum
    /// column rides through the fused epilogue and the per-row residual
    /// check, so fast and reference paths must agree on outputs, stats,
    /// and the report.
    #[test]
    fn abft_fast_path_matches_reference() {
        use crate::health::FaultTolerance;
        // Analog encoding only: ABFT + bit-serial is unsupported (the
        // checksum column is not carried through the plane sweep).
        let (w, x) = random_setup(211, 48, 24);
        for ra in [1u32, 4, 16] {
            for in_noise in [0.0f32, 0.02] {
                let mut cfg = TileConfig::paper_default().with_tile_size(48, 25);
                cfg.read_averaging = ra;
                cfg.in_noise = in_noise;
                cfg.fault_tolerance = FaultTolerance::protected();
                let ctx = format!("ra {ra} in_noise {in_noise}");
                let mut fast = AnalogTile::new(w.clone(), None, cfg, Rng::seed_from(202));
                let mut naive = fast.clone();
                naive.use_reference_path();
                let y_fast = fast.forward(&x);
                let y_ref = naive.forward(&x);
                for (i, (a, b)) in y_fast.as_slice().iter().zip(y_ref.as_slice()).enumerate() {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "{ctx}: output {i} diverged: fast {a} vs ref {b}"
                    );
                }
                assert_eq!(fast.stats(), naive.stats(), "{ctx}: stats diverged");
            }
        }
    }

    /// ABFT equivalence under heavy saturation: outlier-scaled weights and
    /// inputs rail the ADC (checksum column included), so bound management
    /// retries on most samples and the saturated-sample skip of the
    /// residual check is exercised on both paths.
    #[test]
    fn saturating_abft_fast_path_matches_reference() {
        use crate::health::FaultTolerance;
        // Outlier-heavy weights + inputs: the checksum column and several
        // outputs saturate, driving bound-management retries every sample.
        let mut rng = Rng::seed_from(91);
        let rows = 64;
        let cols = 32;
        let mut wv = vec![0.0f32; rows * cols];
        rng.fill_normal(&mut wv, 0.0, 1.0);
        for (i, v) in wv.iter_mut().enumerate() {
            if i % 37 == 0 {
                *v *= 40.0;
            }
        }
        let w = Matrix::from_vec(rows, cols, wv);
        let mut xv = vec![0.0f32; 16 * rows];
        rng.fill_normal(&mut xv, 0.0, 1.0);
        for (i, v) in xv.iter_mut().enumerate() {
            if i % 23 == 0 {
                *v *= 60.0;
            }
        }
        let x = Matrix::from_vec(16, rows, xv);
        let mut cfg = TileConfig::paper_default().with_tile_size(rows, cols + 1);
        cfg.fault_tolerance = FaultTolerance::protected();
        let mut fast = AnalogTile::new(w.clone(), None, cfg, Rng::seed_from(92));
        let mut naive_t = fast.clone();
        naive_t.use_reference_path();
        let (yf, rf) = fast.forward_checked(&x);
        let (yr, rr) = naive_t.forward_checked(&x);
        for (i, (a, b)) in yf.as_slice().iter().zip(yr.as_slice()).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "output {i}: fast {a} vs ref {b}");
        }
        assert_eq!(fast.stats(), naive_t.stats(), "stats diverged");
        assert_eq!(
            (rf.violations, rf.rows_checked, rf.suspicious),
            (rr.violations, rr.rows_checked, rr.suspicious)
        );
    }

    /// Regression for the read-averaging saturation bug: the per-conversion
    /// saturation count used to be integer-averaged over the repeats
    /// (`saturated /= repeats`), so e.g. 4 saturated repeats out of 8
    /// reported 0 and bound management never retried. The count is now the
    /// per-repeat maximum. This tile's clean read-out sits exactly at the
    /// ADC rail, so with σ_out = 0.5 roughly half the repeats saturate —
    /// under the old accounting the α-doubling retry was silently skipped.
    #[test]
    fn read_averaging_saturation_triggers_bound_management() {
        let mut cfg = TileConfig::ideal();
        cfg.out_noise = 0.5;
        cfg.adc = Resolution::bits(9);
        cfg.adc_bound = 1.0;
        cfg.read_averaging = 8;
        cfg.bound_management = BoundManagement::Iterative { max_rounds: 3 };
        cfg.noise_management = NoiseManagement::AbsMax;
        let w = Matrix::from_vec(1, 1, vec![0.5]);
        let mut tile = AnalogTile::new(w, None, cfg, Rng::seed_from(303));
        // α = |x| = 0.9 under AbsMax, so x̂ = 1 and the clean read-out is
        // exactly the ADC bound; every saturation event is noise-driven.
        let x = Matrix::from_vec(1, 1, vec![0.9]);
        tile.forward(&x);
        assert!(
            tile.stats().bound_mgmt_retries >= 1,
            "noise-driven per-repeat saturation must trigger a retry: {:?}",
            tile.stats()
        );
    }

    #[test]
    fn read_averaging_does_not_help_quantization() {
        let (w, x) = random_setup(73, 48, 24);
        let y_ref = x.matmul(&w);
        let mse_with_reads = |n: u32| {
            let mut cfg = TileConfig::ideal();
            cfg.dac = Resolution::bits(5);
            cfg.read_averaging = n;
            let mut tile = AnalogTile::new(w.clone(), None, cfg, Rng::seed_from(74));
            tile.forward(&x).mse(&y_ref)
        };
        let single = mse_with_reads(1);
        let averaged = mse_with_reads(8);
        // Deterministic quantization error: averaging identical rounds is
        // a no-op.
        assert!(
            (averaged / single - 1.0).abs() < 1e-6,
            "{single} vs {averaged}"
        );
    }

    #[test]
    fn weight_slicing_cuts_programming_error_on_tile() {
        let (w, x) = random_setup(51, 48, 24);
        let y_ref = x.matmul(&w);
        let mse_with_slices = |slices: u32| {
            let mut cfg = TileConfig::ideal();
            cfg.weight_source = WeightSource::Pcm(1.0);
            cfg.weight_slices = slices;
            let mut tile = AnalogTile::new(w.clone(), None, cfg, Rng::seed_from(52));
            tile.forward(&x).mse(&y_ref)
        };
        let single = mse_with_slices(1);
        let sliced = mse_with_slices(2);
        assert!(
            sliced < single / 5.0,
            "1 slice {single} vs 2 slices {sliced}"
        );
    }

    #[test]
    fn sliced_tile_supports_drift() {
        let (w, x) = random_setup(53, 32, 16);
        let y_ref = x.matmul(&w);
        let mut cfg = TileConfig::ideal();
        cfg.weight_source = WeightSource::Pcm(1.0);
        cfg.weight_slices = 2;
        let mut tile = AnalogTile::new(w, None, cfg, Rng::seed_from(54));
        let fresh = tile.forward(&x).mse(&y_ref);
        tile.apply_drift(86_400.0, DriftCompensation::None);
        let drifted = tile.forward(&x).mse(&y_ref);
        assert!(
            drifted > fresh,
            "drift should still degrade: {fresh} vs {drifted}"
        );
    }

    #[test]
    fn digital_quant_config_has_no_analog_noise() {
        let cfg = TileConfig::digital_quant(8);
        assert_eq!(cfg.out_noise, 0.0);
        assert_eq!(cfg.w_noise, 0.0);
        assert_eq!(cfg.weight_source, WeightSource::Ideal);
        assert_eq!(cfg.weight_quant.steps(), Some(256));
        assert_eq!(cfg.dac.steps(), Some(256));
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn reram_weights_program_with_lognormal_error_and_do_not_drift() {
        let (w, x) = random_setup(31, 32, 16);
        let y_ref = x.matmul(&w);
        let mut cfg = TileConfig::ideal();
        cfg.weight_source = WeightSource::Reram(0.05);
        let mut tile = AnalogTile::new(w.clone(), None, cfg, Rng::seed_from(32));
        let mse_fresh = tile.forward(&x).mse(&y_ref);
        assert!(mse_fresh > 1e-9, "programming error expected");
        // ReRAM has no inference-scale drift: a year changes nothing
        // deterministic (read noise off in the tile's device model).
        tile.apply_drift(3.15e7, DriftCompensation::None);
        let mse_year = tile.forward(&x).mse(&y_ref);
        assert!(
            (mse_year / mse_fresh).log10().abs() < 1.0,
            "fresh {mse_fresh} vs year {mse_year}"
        );
    }

    #[test]
    fn drift_is_noop_for_ideal_weights() {
        let (w, x) = random_setup(25, 16, 8);
        let mut tile = AnalogTile::new(w.clone(), None, TileConfig::ideal(), Rng::seed_from(26));
        tile.apply_drift(1e6, DriftCompensation::None);
        let y = tile.forward(&x);
        assert!(y.mse(&x.matmul(&w)) < 1e-10);
    }

    // ---- fault injection + ABFT -------------------------------------

    use crate::health::FaultTolerance;
    use nora_device::FaultPlan;

    /// A realistically noisy small-tile config with ABFT enabled.
    fn protected_cfg(rows: usize, cols: usize) -> TileConfig {
        let mut cfg = TileConfig::paper_default();
        cfg.tile_rows = rows;
        cfg.tile_cols = cols;
        cfg.fault_tolerance = FaultTolerance::protected();
        cfg
    }

    #[test]
    fn abft_ideal_tile_stays_exact_and_clean() {
        let (w, x) = random_setup(101, 32, 16);
        let mut cfg = TileConfig::ideal().with_tile_size(32, 17);
        cfg.fault_tolerance = FaultTolerance::protected();
        let mut tile = AnalogTile::new(w.clone(), None, cfg, Rng::seed_from(102));
        assert_eq!(tile.cols(), 16, "checksum column hidden from output");
        let (y, report) = tile.forward_checked(&x);
        assert!(y.mse(&x.matmul(&w)) < 1e-9, "outputs unaffected by ABFT");
        assert!(report.enabled);
        assert_eq!(report.rows_checked, 8);
        assert_eq!(report.violations, 0);
        assert!(!report.suspicious);
    }

    #[test]
    fn abft_healthy_noisy_tile_is_not_flagged() {
        // No false positives across many batches under the full paper noise
        // inventory (programming noise, read noise, output noise, ADC, IR).
        let (w, x) = random_setup(103, 64, 32);
        let mut tile = AnalogTile::new(w, None, protected_cfg(64, 33), Rng::seed_from(104));
        for _ in 0..20 {
            let (_, report) = tile.forward_checked(&x);
            assert!(
                !report.suspicious,
                "false positive: {report:?} (worst ratio {})",
                report.worst_ratio
            );
        }
    }

    #[test]
    fn abft_flags_stuck_cells() {
        let (w, x) = random_setup(105, 64, 32);
        let mut cfg = protected_cfg(64, 33);
        cfg.fault_plan = Some(FaultPlan {
            seed: 1,
            stuck_low: 0.02,
            stuck_high: 0.02,
            ..FaultPlan::none()
        });
        let mut tile = AnalogTile::new(w, None, cfg, Rng::seed_from(106));
        assert!(tile.fault_map().unwrap().stuck_cell_count() > 0);
        let (y, report) = tile.forward_checked(&x);
        assert!(y.as_slice().iter().all(|v| v.is_finite()));
        assert!(report.suspicious, "stuck cells must be flagged: {report:?}");
    }

    #[test]
    fn abft_flags_dead_column() {
        let (w, x) = random_setup(107, 64, 32);
        let mut cfg = protected_cfg(64, 33);
        cfg.fault_plan = Some(FaultPlan {
            seed: 4, // draws at least one dead column in the block extent
            dead_col: 0.1,
            ..FaultPlan::none()
        });
        let mut tile = AnalogTile::new(w, None, cfg, Rng::seed_from(108));
        let dead = tile.fault_map().unwrap().dead_cols().to_vec();
        assert!(
            dead.iter().any(|&c| c < 32),
            "seed must kill a data column, got {dead:?}"
        );
        let (_, report) = tile.forward_checked(&x);
        assert!(report.suspicious, "dead column must be flagged: {report:?}");
    }

    #[test]
    fn abft_flags_stuck_adc_channel() {
        let (w, x) = random_setup(109, 64, 32);
        let mut cfg = protected_cfg(64, 33);
        cfg.fault_plan = Some(FaultPlan {
            seed: 2,
            adc_stuck: 0.1,
            ..FaultPlan::none()
        });
        let mut tile = AnalogTile::new(w, None, cfg, Rng::seed_from(110));
        let stuck = tile.fault_map().unwrap().adc_stuck().to_vec();
        assert!(
            stuck.iter().any(|&(c, _)| c < 33),
            "seed must stick a converter channel, got {stuck:?}"
        );
        let (_, report) = tile.forward_checked(&x);
        assert!(report.suspicious, "stuck ADC must be flagged: {report:?}");
    }

    #[test]
    fn silent_detector_catches_tile_dropout() {
        let (w, x) = random_setup(111, 64, 32);
        let mut cfg = protected_cfg(64, 33);
        cfg.fault_plan = Some(FaultPlan {
            seed: 3,
            tile_dropout: 1.0,
            ..FaultPlan::none()
        });
        let mut tile = AnalogTile::new(w, None, cfg, Rng::seed_from(112));
        assert!(tile.fault_map().unwrap().is_dropped());
        let (y, report) = tile.forward_checked(&x);
        assert!(y.as_slice().iter().all(|v| v.is_finite()));
        assert!(report.silent, "dropout must trip the silent detector");
        assert!(report.suspicious);
    }

    #[test]
    fn unprotected_faulty_tile_returns_finite_garbage() {
        // Without ABFT the tile silently computes with its defects: outputs
        // must stay finite (no panic) even under heavy fault rates.
        let (w, x) = random_setup(113, 64, 32);
        let mut cfg = TileConfig::paper_default().with_tile_size(64, 32);
        cfg.fault_plan = Some(FaultPlan::uniform(0.05, 0.05, 9));
        let mut tile = AnalogTile::new(w.clone(), None, cfg, Rng::seed_from(114));
        let y = tile.forward(&x);
        assert!(y.as_slice().iter().all(|v| v.is_finite()));
        let y_ref = x.matmul(&w);
        assert!(y.mse(&y_ref) > 0.0);
    }

    #[test]
    fn abft_survives_drift_recalibration() {
        // apply_drift re-reads conductances; the ABFT calibration must be
        // refreshed or healthy drifted tiles would flag as faulty.
        let (w, x) = random_setup(115, 64, 32);
        let mut cfg = protected_cfg(64, 33);
        cfg.weight_source = WeightSource::Pcm(1.0);
        let mut tile = AnalogTile::new(w, None, cfg, Rng::seed_from(116));
        tile.apply_drift(86_400.0, DriftCompensation::GlobalScale);
        let (_, report) = tile.forward_checked(&x);
        assert!(
            !report.suspicious,
            "healthy drifted tile flagged: {report:?}"
        );
    }

    #[test]
    fn programming_failure_is_reported_not_panicked() {
        let (w, _) = random_setup(117, 16, 8);
        let mut cfg = TileConfig::paper_default().with_tile_size(16, 8);
        cfg.fault_plan = Some(FaultPlan {
            seed: 5,
            programming_failure: 1.0,
            ..FaultPlan::none()
        });
        let err = AnalogTile::try_new_at(
            w,
            None,
            cfg,
            Rng::seed_from(118),
            crate::health::TileSite {
                physical_id: 7,
                programming_attempt: 2,
            },
        )
        .unwrap_err();
        assert_eq!(
            err,
            crate::error::CimError::ProgrammingFailed {
                physical_id: 7,
                attempt: 2
            }
        );
    }

    #[test]
    fn fault_maps_differ_across_physical_tiles() {
        let (w, x) = random_setup(119, 32, 16);
        let mut cfg = TileConfig::ideal().with_tile_size(32, 16);
        cfg.fault_plan = Some(FaultPlan::uniform(0.05, 0.0, 11));
        let site = |id| crate::health::TileSite {
            physical_id: id,
            programming_attempt: 0,
        };
        let mut a =
            AnalogTile::try_new_at(w.clone(), None, cfg.clone(), Rng::seed_from(120), site(0))
                .unwrap();
        let mut b =
            AnalogTile::try_new_at(w.clone(), None, cfg.clone(), Rng::seed_from(120), site(1))
                .unwrap();
        let mut a2 = AnalogTile::try_new_at(w, None, cfg, Rng::seed_from(120), site(0)).unwrap();
        let ya = a.forward(&x);
        assert_eq!(ya, a2.forward(&x), "same physical id → same defects");
        assert_ne!(
            ya,
            b.forward(&x),
            "different physical id → different defects"
        );
    }

    #[test]
    #[should_panic(expected = "exceeds tile size")]
    fn oversized_block_panics() {
        let w = Matrix::zeros(600, 10);
        AnalogTile::new(w, None, TileConfig::paper_default(), Rng::seed_from(0));
    }

    #[test]
    #[should_panic(expected = "smoothing vector length")]
    fn wrong_smoothing_length_panics() {
        let w = Matrix::zeros(4, 4);
        AnalogTile::new(w, Some(&[1.0, 2.0]), TileConfig::ideal(), Rng::seed_from(0));
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn non_positive_smoothing_panics() {
        let w = Matrix::zeros(2, 2);
        AnalogTile::new(w, Some(&[1.0, 0.0]), TileConfig::ideal(), Rng::seed_from(0));
    }
}
