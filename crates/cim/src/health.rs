//! Fault-tolerance policy, tile health tracking, and degradation events.
//!
//! Detection is ABFT-style: each tile carries one extra *checksum column*
//! whose weights are the row-sums of the data columns, so in rescaled output
//! units `Σ_j y_ij = y_i,checksum` holds up to noise. A hard fault (stuck
//! cell, dead line, stuck ADC code) breaks the identity and the digital side
//! flags the tile without knowing the correct answer. Recovery escalates:
//! re-program the same physical tile (write–verify and read-averaging
//! doubled per attempt), then remap the weight block to a spare physical
//! tile (fresh defect draw), then fall back to exact digital execution of
//! that block.

/// Knobs of the detection + recovery policy. [`FaultTolerance::off`] (the
/// default) disables everything and leaves the legacy execution path
/// bit-identical.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultTolerance {
    /// Append an ABFT checksum column per tile and verify every forward.
    pub abft: bool,
    /// Detection threshold in units of the predicted residual noise std.
    pub abft_threshold: f32,
    /// Additional tolerance as a fraction of the summed output magnitude
    /// (absorbs IR-drop droop, S-shape mismatch, and DAC quantization,
    /// which are not in the stochastic noise budget).
    pub abft_rel_tol: f32,
    /// Fraction of a batch's live samples that must violate the checksum
    /// before the tile is flagged (single-sample glitches are ignored).
    pub flag_fraction: f32,
    /// Re-programming attempts on the *same* physical tile per incident.
    pub max_reprogram_retries: u32,
    /// Spare physical tiles available per layer for remapping.
    pub spare_tiles: u32,
    /// After retries and spares are exhausted, execute the block exactly in
    /// digital instead of returning corrupted partial sums.
    pub digital_fallback: bool,
}

impl FaultTolerance {
    /// Everything disabled — the legacy, bit-identical execution path.
    pub fn off() -> Self {
        Self {
            abft: false,
            abft_threshold: 0.0,
            abft_rel_tol: 0.0,
            flag_fraction: 0.0,
            max_reprogram_retries: 0,
            spare_tiles: 0,
            digital_fallback: false,
        }
    }

    /// The default protected configuration: ABFT detection at 6σ plus 1%
    /// relative tolerance, 2 re-programming retries, 2 spare tiles per
    /// layer, digital fallback on. (Under the paper's Table II noise the 6σ
    /// term alone leaves ≈2× headroom over healthy residuals; the relative
    /// term absorbs IR-drop droop on large-magnitude batches.)
    pub fn protected() -> Self {
        Self {
            abft: true,
            abft_threshold: 6.0,
            abft_rel_tol: 0.01,
            // At 6σ a single violating sample is already conclusive
            // (healthy residuals sit near 3σ of the budget); raise this to
            // demand a batch fraction instead.
            flag_fraction: 0.0,
            max_reprogram_retries: 2,
            spare_tiles: 2,
            digital_fallback: true,
        }
    }

    /// Whether runtime detection (and therefore recovery) is active.
    pub fn is_active(&self) -> bool {
        self.abft
    }

    /// Validates the policy's numeric fields.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.abft {
            if !self.abft_threshold.is_finite() || self.abft_threshold <= 0.0 {
                return Err("abft_threshold must be finite and positive".into());
            }
            if !self.abft_rel_tol.is_finite() || self.abft_rel_tol < 0.0 {
                return Err("abft_rel_tol must be finite and >= 0".into());
            }
            if !(0.0..=1.0).contains(&self.flag_fraction) || self.flag_fraction.is_nan() {
                return Err("flag_fraction must be in [0, 1]".into());
            }
        }
        Ok(())
    }
}

impl Default for FaultTolerance {
    fn default() -> Self {
        Self::off()
    }
}

/// Physical placement of a tile: which physical array it occupies and which
/// programming attempt this is.
///
/// Hard faults are a property of the *physical* tile — the same
/// `physical_id` always draws the same defect map from a
/// [`nora_device::FaultPlan`], so re-programming cannot cure stuck cells but
/// remapping to a spare (a new `physical_id`) can.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TileSite {
    /// Identity of the physical crossbar array.
    pub physical_id: u64,
    /// 0-based programming attempt on that array.
    pub programming_attempt: u32,
}

/// Lifecycle state of one tile slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HealthState {
    /// No checksum violations observed.
    #[default]
    Healthy,
    /// Flagged at least once; currently serving after recovery.
    Suspect,
    /// Retries and spares exhausted; serving via digital fallback or known
    /// to emit corrupted partial sums.
    Condemned,
}

/// Per-slot health tracker driving the bounded retry/remap policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TileHealth {
    /// Current lifecycle state.
    pub state: HealthState,
    /// Checksum-violation incidents observed.
    pub flags: u32,
    /// Total programming attempts consumed (monotone across incidents, so a
    /// deterministically failing attempt number is never retried verbatim).
    pub programming_attempts: u32,
    /// Remaps to spare tiles performed.
    pub remaps: u32,
}

/// What happened to a tile slot, in occurrence order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TileEventKind {
    /// The ABFT check (or silent-tile detector) flagged the slot.
    Flagged {
        /// Live samples violating the checksum in the flagged batch.
        violations: u64,
        /// Live samples checked in that batch.
        rows: u64,
        /// The silent-tile detector (not the checksum) fired.
        silent: bool,
    },
    /// A programming attempt failed outright.
    ProgrammingFailed {
        /// Attempt number (0-based, monotone per slot).
        attempt: u32,
    },
    /// Re-programming the same physical tile brought it back clean.
    Reprogrammed {
        /// Attempt number that succeeded.
        attempt: u32,
    },
    /// The weight block was remapped to a spare physical tile.
    Remapped {
        /// Physical id of the spare now serving the block.
        spare_id: u64,
    },
    /// The block is now executed exactly in digital.
    DigitalFallback,
    /// Recovery was not permitted/possible; corrupted output was passed on.
    Unrecovered,
}

/// A recorded degradation event on one tile slot of a layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TileEvent {
    /// Index of the tile slot in the layer's grid (row-major).
    pub grid_index: usize,
    /// Physical tile involved at the time of the event.
    pub physical_id: u64,
    /// What happened.
    pub kind: TileEventKind,
}

/// Result of the ABFT check over one forward batch of a tile.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AbftReport {
    /// Whether a checksum column was present and checked.
    pub enabled: bool,
    /// Samples with non-zero input actually checked.
    pub rows_checked: u64,
    /// Samples whose checksum residual exceeded the threshold.
    pub violations: u64,
    /// Largest `|residual| / threshold` ratio observed (≤ 1 when clean).
    pub worst_ratio: f32,
    /// The silent-tile detector fired: the tile should produce output but
    /// every raw ADC code stayed at the noise floor (an all-dead tile has a
    /// *consistent* checksum of zero, which the residual test cannot see).
    pub silent: bool,
    /// Verdict under the layer's [`FaultTolerance`] policy.
    pub suspicious: bool,
}

impl TileEventKind {
    /// Canonical `cim.health.*` counter name of this ladder transition.
    pub fn metric_name(&self) -> &'static str {
        match self {
            TileEventKind::Flagged { .. } => "cim.health.flagged",
            TileEventKind::ProgrammingFailed { .. } => "cim.health.programming_failed",
            TileEventKind::Reprogrammed { .. } => "cim.health.reprogrammed",
            TileEventKind::Remapped { .. } => "cim.health.remapped",
            TileEventKind::DigitalFallback => "cim.health.digital_fallback",
            TileEventKind::Unrecovered => "cim.health.unrecovered",
        }
    }
}

/// Counts the fault-recovery ladder transitions of `events` into `m`, one
/// counter per [`TileEventKind`] (names from
/// [`TileEventKind::metric_name`]).
///
/// `events` is already in deterministic occurrence order — recovery runs
/// serially in grid order after each parallel fan-out — so the exported
/// counters are identical at any `NORA_THREADS` level.
pub fn export_events(events: &[TileEvent], m: &mut nora_obs::Metrics) {
    for event in events {
        m.add(event.kind.metric_name(), 1);
    }
}

/// Exports the lifecycle state census of `health` (one entry per tile
/// slot, in grid order) into `m` as `cim.health.slots_*` counters.
pub fn export_health(health: &[TileHealth], m: &mut nora_obs::Metrics) {
    for h in health {
        let name = match h.state {
            HealthState::Healthy => "cim.health.slots_healthy",
            HealthState::Suspect => "cim.health.slots_suspect",
            HealthState::Condemned => "cim.health.slots_condemned",
        };
        m.add(name, 1);
    }
}

impl TileHealth {
    /// Records a checksum flag and moves a healthy slot to suspect.
    pub fn record_flag(&mut self) {
        self.flags += 1;
        if self.state == HealthState::Healthy {
            self.state = HealthState::Suspect;
        }
    }

    /// Consumes the next monotone programming-attempt number.
    pub fn next_attempt(&mut self) -> u32 {
        let n = self.programming_attempts;
        self.programming_attempts += 1;
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_policy_is_default_and_inactive() {
        assert_eq!(FaultTolerance::default(), FaultTolerance::off());
        assert!(!FaultTolerance::off().is_active());
        assert!(FaultTolerance::protected().is_active());
        assert!(FaultTolerance::off().validate().is_ok());
        assert!(FaultTolerance::protected().validate().is_ok());
    }

    #[test]
    fn validate_rejects_bad_policy() {
        let mut p = FaultTolerance::protected();
        p.abft_threshold = 0.0;
        assert!(p.validate().is_err());
        let mut p2 = FaultTolerance::protected();
        p2.flag_fraction = 1.5;
        assert!(p2.validate().is_err());
        // Inactive policies skip the numeric checks entirely.
        let mut p3 = FaultTolerance::off();
        p3.flag_fraction = 9.0;
        assert!(p3.validate().is_ok());
    }

    #[test]
    fn health_flags_and_attempts_progress() {
        let mut h = TileHealth::default();
        assert_eq!(h.state, HealthState::Healthy);
        h.record_flag();
        assert_eq!(h.state, HealthState::Suspect);
        assert_eq!(h.flags, 1);
        assert_eq!(h.next_attempt(), 0);
        assert_eq!(h.next_attempt(), 1);
        assert_eq!(h.programming_attempts, 2);
    }
}
