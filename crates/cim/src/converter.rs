//! DAC and ADC models.
//!
//! Both converters are symmetric uniform quantizers from
//! [`nora_tensor::quant`]; the ADC additionally *saturates* (hard-clips) at
//! its full-scale bound and reports how often it did, which feeds the
//! iterative bound-management policy.

use crate::config::Resolution;
use nora_tensor::quant::Quantizer;

/// Canonical observability metric names of the conversion stages.
///
/// [`crate::ForwardStats::export_metrics`] publishes the per-tile counters
/// under these names; the rate metrics are fixed-edge histograms over
/// [`nora_obs::edges::RATE`]. Keeping the names here, next to the
/// converters that produce the raw counts, makes them part of the
/// conversion-stage API: exporters, dashboards and tests reference these
/// constants instead of retyping strings.
pub mod metrics {
    /// DAC inputs that clipped at the rails (NaN inputs count as clipped).
    pub const DAC_CLIPPED: &str = "cim.dac.clipped_inputs";
    /// Total DAC inputs presented.
    pub const DAC_TOTAL: &str = "cim.dac.total_inputs";
    /// Per-export DAC clip fraction (histogram).
    pub const DAC_CLIP_RATE: &str = "cim.dac.clip_rate";
    /// ADC outputs that saturated (strict overflow beyond full scale).
    pub const ADC_SATURATED: &str = "cim.adc.saturated_outputs";
    /// Total ADC outputs produced.
    pub const ADC_TOTAL: &str = "cim.adc.total_outputs";
    /// Per-export ADC saturation fraction (histogram).
    pub const ADC_SATURATION_RATE: &str = "cim.adc.saturation_rate";
    /// Physical conversion repeats executed (read averaging × rounds).
    pub const READ_REPEATS: &str = "cim.read.repeats";
}

/// Digital-to-analog converter at the tile input.
///
/// Values are expected pre-scaled into `[-bound, bound]`; anything outside
/// clips (that clipping is the "input outlier" loss the paper discusses).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Dac {
    quantizer: Option<Quantizer>,
    bound: f32,
}

impl Dac {
    /// Creates a DAC with the given resolution over `[-bound, bound]`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is not strictly positive and finite.
    pub fn new(resolution: Resolution, bound: f32) -> Self {
        assert!(
            bound.is_finite() && bound > 0.0,
            "DAC bound must be positive and finite"
        );
        Self {
            quantizer: resolution.steps().map(|n| Quantizer::new(n, bound)),
            bound,
        }
    }

    /// Full-scale bound.
    pub fn bound(&self) -> f32 {
        self.bound
    }

    /// Converts one value (clip + quantize).
    pub fn convert(&self, x: f32) -> f32 {
        let clipped = if x.is_nan() {
            0.0
        } else {
            x.clamp(-self.bound, self.bound)
        };
        match &self.quantizer {
            Some(q) => q.quantize(clipped),
            None => clipped,
        }
    }

    /// Converts a slice in place, returning the number of clipped entries.
    ///
    /// NaN inputs count as clipped: they convert to 0 (so they cannot
    /// poison the analog accumulation), but a poisoned input vector must
    /// not report a clean conversion.
    pub fn convert_slice(&self, xs: &mut [f32]) -> usize {
        let mut clipped = 0;
        for v in xs {
            if v.is_nan() || v.abs() > self.bound {
                clipped += 1;
            }
            *v = self.convert(*v);
        }
        clipped
    }
}

/// Analog-to-digital converter at the tile output.
///
/// Saturates at `±bound` and counts saturation events so bound management
/// can react.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Adc {
    quantizer: Option<Quantizer>,
    bound: f32,
}

impl Adc {
    /// Creates an ADC with the given resolution over `[-bound, bound]`.
    ///
    /// An infinite `bound` is allowed only with [`Resolution::Ideal`]
    /// (a pass-through converter).
    ///
    /// # Panics
    ///
    /// Panics if `bound <= 0`, or if `bound` is non-finite with a finite
    /// resolution.
    pub fn new(resolution: Resolution, bound: f32) -> Self {
        assert!(bound > 0.0, "ADC bound must be positive");
        let quantizer = match resolution.steps() {
            Some(n) => {
                assert!(
                    bound.is_finite(),
                    "finite ADC resolution requires a finite bound"
                );
                Some(Quantizer::new(n, bound))
            }
            None => None,
        };
        Self { quantizer, bound }
    }

    /// Full-scale bound.
    pub fn bound(&self) -> f32 {
        self.bound
    }

    /// Converts one reading (saturate + quantize), returning the output
    /// code and whether the reading strictly overflowed the bound.
    ///
    /// NaN readings convert to code 0 without counting as saturated, the
    /// same accounting as [`convert_slice`](Adc::convert_slice) — which is
    /// implemented on top of this helper, as is the fused conversion
    /// epilogue in the tile fast path.
    #[inline]
    pub fn convert(&self, v: f32) -> (f32, bool) {
        let saturated = v.abs() > self.bound;
        let clipped = if v.is_nan() {
            0.0
        } else {
            v.clamp(-self.bound, self.bound)
        };
        let code = match &self.quantizer {
            Some(q) => q.quantize(clipped),
            None => clipped,
        };
        (code, saturated)
    }

    /// Converts a slice in place, returning the number of saturated entries.
    ///
    /// Only strict overflow (`|v| > bound`) counts: a reading exactly at
    /// full scale is in range, and counting it would spuriously trigger
    /// iterative bound-management α-doubling retries.
    pub fn convert_slice(&self, xs: &mut [f32]) -> usize {
        let mut saturated = 0;
        for v in xs.iter_mut() {
            let (code, sat) = self.convert(*v);
            saturated += sat as usize;
            *v = code;
        }
        saturated
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_dac_is_identity_in_range() {
        let dac = Dac::new(Resolution::Ideal, 1.0);
        assert_eq!(dac.convert(0.123), 0.123);
        assert_eq!(dac.convert(5.0), 1.0);
        assert_eq!(dac.convert(f32::NAN), 0.0);
    }

    #[test]
    fn quantizing_dac_snaps_to_levels() {
        let dac = Dac::new(Resolution::bits(3), 1.0);
        let y = dac.convert(0.3);
        assert!((y - 0.3).abs() <= 2.0 / 8.0 / 2.0 + 1e-6);
        // idempotent
        assert_eq!(dac.convert(y), y);
    }

    #[test]
    fn dac_counts_clipping() {
        // 7-bit mid-rise: clipped values land on ±(bound − step/2), the
        // extreme representable level, not on the rail.
        let dac = Dac::new(Resolution::bits(7), 1.0);
        let extreme = 1.0 - (2.0 / 128.0) / 2.0;
        let mut xs = [0.5f32, 2.0, -3.0, 0.9];
        let clipped = dac.convert_slice(&mut xs);
        assert_eq!(clipped, 2);
        assert_eq!(xs[1], extreme);
        assert_eq!(xs[2], -extreme);
    }

    #[test]
    fn dac_counts_nan_as_clipped() {
        // Regression: NaN inputs convert to 0 but must not report a clean
        // conversion — a poisoned vector is a clipping event.
        let dac = Dac::new(Resolution::bits(7), 1.0);
        let mut xs = [0.5f32, f32::NAN, -0.25, f32::NAN];
        let clipped = dac.convert_slice(&mut xs);
        assert_eq!(clipped, 2);
        assert_eq!(xs[1], 0.0);
        assert_eq!(xs[3], 0.0);
        // Ideal (non-quantizing) DACs account NaN the same way.
        let ideal = Dac::new(Resolution::Ideal, 1.0);
        let mut ys = [f32::NAN, 0.3];
        assert_eq!(ideal.convert_slice(&mut ys), 1);
        assert_eq!(ys[0], 0.0);
    }

    #[test]
    fn adc_counts_saturation() {
        // Exactly-full-scale (12.0) is in range: only strict overflow
        // saturates. Regression for the `>=` boundary.
        let adc = Adc::new(Resolution::bits(7), 12.0);
        let mut xs = [3.0f32, 12.0, -20.0, 11.9];
        let sat = adc.convert_slice(&mut xs);
        assert_eq!(sat, 1);
        assert!(xs.iter().all(|v| v.abs() <= 12.0));
    }

    #[test]
    fn ideal_adc_with_infinite_bound_passes_through() {
        let adc = Adc::new(Resolution::Ideal, f32::INFINITY);
        let mut xs = [1e20f32, -1e20];
        let sat = adc.convert_slice(&mut xs);
        assert_eq!(sat, 0);
        assert_eq!(xs, [1e20, -1e20]);
    }

    #[test]
    #[should_panic(expected = "finite ADC resolution requires")]
    fn finite_adc_with_infinite_bound_panics() {
        Adc::new(Resolution::bits(7), f32::INFINITY);
    }

    #[test]
    fn adc_quantization_error_bounded() {
        let adc = Adc::new(Resolution::bits(7), 12.0);
        let step = 2.0 * 12.0 / 128.0;
        for i in -100..=100 {
            let x = i as f32 * 0.1;
            let mut xs = [x];
            adc.convert_slice(&mut xs);
            assert!((xs[0] - x).abs() <= step / 2.0 + 1e-5);
        }
    }
}
