//! Tiled analog linear layer.

use crate::config::TileConfig;
use crate::tile::{AnalogTile, DriftCompensation, ForwardStats};
use nora_tensor::rng::Rng;
use nora_tensor::Matrix;

/// A linear layer (`y = x · W + b`) executed on a grid of analog tiles.
///
/// Weight matrices larger than one tile are partitioned: rows (input
/// channels) split across tile rows, columns (output channels) across tile
/// columns. Each tile converts its partial sum through its own ADC — as on
/// real hardware — and the partial sums are accumulated **digitally**, as is
/// the bias. This mirrors the hybrid mapping of the paper's Fig. 2, where
/// only the GEMV itself is analog.
///
/// An optional per-input-channel smoothing vector `s` (length `d_in`)
/// implements the NORA rescaling; each tile receives its row-slice of `s`.
///
/// # Example
///
/// ```
/// use nora_cim::{AnalogLinear, TileConfig};
/// use nora_tensor::{Matrix, rng::Rng};
///
/// let mut rng = Rng::seed_from(9);
/// let w = Matrix::random_normal(100, 40, 0.0, 0.2, &mut rng);
/// let cfg = TileConfig::ideal().with_tile_size(32, 32); // forces a 4x2 grid
/// let mut layer = AnalogLinear::new(w.clone(), None, cfg, 1);
/// let x = Matrix::random_normal(3, 100, 0.0, 1.0, &mut rng);
/// assert!(layer.forward(&x).mse(&x.matmul(&w)) < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct AnalogLinear {
    d_in: usize,
    d_out: usize,
    bias: Option<Vec<f32>>,
    /// `(row_offset, col_offset, tile)` in row-major grid order.
    tiles: Vec<(usize, usize, AnalogTile)>,
    smoothing: Option<Vec<f32>>,
}

impl AnalogLinear {
    /// Maps `weights` (`d_in × d_out`) onto analog tiles.
    ///
    /// `seed` derives the per-tile noise streams, so two layers built with
    /// the same arguments behave identically.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty, `bias` has the wrong length, or the
    /// config is invalid.
    pub fn new(weights: Matrix, bias: Option<Vec<f32>>, config: TileConfig, seed: u64) -> Self {
        Self::with_smoothing(weights, bias, None, config, seed)
    }

    /// Like [`AnalogLinear::new`] with a NORA smoothing vector of length
    /// `d_in` applied to the mapping (Eq. 6–8).
    ///
    /// # Panics
    ///
    /// Panics on the same conditions as `new`, or if `smoothing` has the
    /// wrong length or non-positive entries.
    pub fn with_smoothing(
        weights: Matrix,
        bias: Option<Vec<f32>>,
        smoothing: Option<&[f32]>,
        config: TileConfig,
        seed: u64,
    ) -> Self {
        assert!(!weights.is_empty(), "empty weight matrix");
        let (d_in, d_out) = weights.shape();
        if let Some(b) = &bias {
            assert_eq!(b.len(), d_out, "bias length mismatch");
        }
        if let Some(s) = smoothing {
            assert_eq!(s.len(), d_in, "smoothing vector length mismatch");
        }
        let mut root_rng = Rng::seed_from(seed ^ 0x6e6f_7261); // "nora"
        let mut tiles = Vec::new();
        let tr = config.tile_rows;
        let tc = config.tile_cols;
        let mut r0 = 0;
        while r0 < d_in {
            let r1 = (r0 + tr).min(d_in);
            let mut c0 = 0;
            while c0 < d_out {
                let c1 = (c0 + tc).min(d_out);
                let block = weights.submatrix(r0, r1, c0, c1);
                let s_slice = smoothing.map(|s| &s[r0..r1]);
                let tile_rng = root_rng.fork((r0 as u64) << 32 | c0 as u64);
                tiles.push((r0, c0, AnalogTile::new(block, s_slice, config.clone(), tile_rng)));
                c0 = c1;
            }
            r0 = r1;
        }
        Self {
            d_in,
            d_out,
            bias,
            tiles,
            smoothing: smoothing.map(|s| s.to_vec()),
        }
    }

    /// Input dimension.
    pub fn d_in(&self) -> usize {
        self.d_in
    }

    /// Output dimension.
    pub fn d_out(&self) -> usize {
        self.d_out
    }

    /// Number of tiles in the grid.
    pub fn tile_count(&self) -> usize {
        self.tiles.len()
    }

    /// The smoothing vector installed at construction, if any.
    pub fn smoothing(&self) -> Option<&[f32]> {
        self.smoothing.as_deref()
    }

    /// Executes the layer on a batch: `x` is `batch × d_in`, result is
    /// `batch × d_out`.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != d_in`.
    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        assert_eq!(x.cols(), self.d_in, "input width mismatch");
        let batch = x.rows();
        let mut y = Matrix::zeros(batch, self.d_out);
        for (r0, c0, tile) in &mut self.tiles {
            let x_slice = x.submatrix(0, batch, *r0, *r0 + tile.rows());
            let part = tile.forward(&x_slice);
            // Digital accumulation of tile partial sums.
            for i in 0..batch {
                let dst = &mut y.row_mut(i)[*c0..*c0 + part.cols()];
                for (d, &p) in dst.iter_mut().zip(part.row(i)) {
                    *d += p;
                }
            }
        }
        if let Some(b) = &self.bias {
            for i in 0..batch {
                for (v, &bv) in y.row_mut(i).iter_mut().zip(b) {
                    *v += bv;
                }
            }
        }
        y
    }

    /// Aggregated forward statistics across all tiles.
    pub fn stats(&self) -> ForwardStats {
        let mut total = ForwardStats::default();
        for (_, _, tile) in &self.tiles {
            total.merge(tile.stats());
        }
        total
    }

    /// Resets the statistics of every tile.
    pub fn reset_stats(&mut self) {
        for (_, _, tile) in &mut self.tiles {
            tile.reset_stats();
        }
    }

    /// Applies conductance drift at `t_seconds` to every tile.
    pub fn apply_drift(&mut self, t_seconds: f64, compensation: DriftCompensation) {
        for (_, _, tile) in &mut self.tiles {
            tile.apply_drift(t_seconds, compensation);
        }
    }

    /// First-order energy/latency estimate summed over all tiles (see
    /// [`crate::energy`]).
    pub fn energy(&self, model: &crate::energy::EnergyModel) -> crate::energy::EnergyReport {
        let mut total = crate::energy::EnergyReport::default();
        for (_, _, tile) in &self.tiles {
            total.merge(&tile.energy(model));
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nora_tensor::stats;

    #[test]
    fn single_tile_when_weights_fit() {
        let w = Matrix::zeros(100, 50);
        let layer = AnalogLinear::new(w, None, TileConfig::ideal(), 0);
        assert_eq!(layer.tile_count(), 1);
    }

    #[test]
    fn grid_partitioning_counts() {
        let w = Matrix::zeros(100, 50);
        let cfg = TileConfig::ideal().with_tile_size(32, 20);
        let layer = AnalogLinear::new(w, None, cfg, 0);
        // rows: ceil(100/32)=4, cols: ceil(50/20)=3
        assert_eq!(layer.tile_count(), 12);
        assert_eq!(layer.d_in(), 100);
        assert_eq!(layer.d_out(), 50);
    }

    #[test]
    fn tiled_ideal_forward_matches_matmul() {
        let mut rng = Rng::seed_from(1);
        let w = Matrix::random_normal(70, 45, 0.0, 0.5, &mut rng);
        let x = Matrix::random_normal(6, 70, 0.0, 1.0, &mut rng);
        let cfg = TileConfig::ideal().with_tile_size(16, 16);
        let mut layer = AnalogLinear::new(w.clone(), None, cfg, 2);
        let y = layer.forward(&x);
        assert!(y.mse(&x.matmul(&w)) < 1e-9);
    }

    #[test]
    fn bias_is_added_digitally() {
        let w = Matrix::identity(3);
        let bias = vec![1.0f32, -2.0, 0.5];
        let mut layer = AnalogLinear::new(w, Some(bias), TileConfig::ideal(), 3);
        let x = Matrix::from_rows(&[&[1.0, 1.0, 1.0]]);
        let y = layer.forward(&x);
        assert_eq!(y.row(0), &[2.0, -1.0, 1.5]);
    }

    #[test]
    fn smoothing_vector_is_exact_when_ideal() {
        let mut rng = Rng::seed_from(4);
        let w = Matrix::random_normal(40, 30, 0.0, 0.3, &mut rng);
        let x = Matrix::random_normal(5, 40, 0.0, 1.0, &mut rng);
        let s: Vec<f32> = (0..40).map(|i| 0.1 + (i as f32 % 5.0)).collect();
        let cfg = TileConfig::ideal().with_tile_size(16, 16);
        let mut layer = AnalogLinear::with_smoothing(w.clone(), None, Some(&s), cfg, 5);
        let y = layer.forward(&x);
        assert!(y.mse(&x.matmul(&w)) < 1e-8);
        assert_eq!(layer.smoothing().unwrap().len(), 40);
    }

    #[test]
    fn noisy_tiled_layer_stays_reasonable() {
        let mut rng = Rng::seed_from(6);
        let w = Matrix::random_normal(96, 64, 0.0, 0.2, &mut rng);
        let x = Matrix::random_normal(8, 96, 0.0, 1.0, &mut rng);
        let cfg = TileConfig::paper_default().with_tile_size(48, 32);
        let mut layer = AnalogLinear::new(w.clone(), None, cfg, 7);
        let y = layer.forward(&x);
        let rel = y.mse(&x.matmul(&w)) / stats::variance(x.matmul(&w).as_slice());
        assert!(rel < 0.25, "relative mse {rel}");
    }

    #[test]
    fn stats_aggregate_across_tiles() {
        let mut rng = Rng::seed_from(8);
        let w = Matrix::random_normal(64, 64, 0.0, 0.2, &mut rng);
        let x = Matrix::random_normal(4, 64, 0.0, 1.0, &mut rng);
        let cfg = TileConfig::paper_default().with_tile_size(32, 32);
        let mut layer = AnalogLinear::new(w, None, cfg, 9);
        layer.forward(&x);
        let st = layer.stats();
        // 4 tiles × 4 samples each
        assert_eq!(st.samples, 16);
        assert!(st.mean_rescale() > 0.0);
        layer.reset_stats();
        assert_eq!(layer.stats().samples, 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut rng = Rng::seed_from(10);
        let w = Matrix::random_normal(32, 32, 0.0, 0.2, &mut rng);
        let x = Matrix::random_normal(4, 32, 0.0, 1.0, &mut rng);
        let cfg = TileConfig::paper_default().with_tile_size(16, 16);
        let mut a = AnalogLinear::new(w.clone(), None, cfg.clone(), 11);
        let mut b = AnalogLinear::new(w, None, cfg, 11);
        assert_eq!(a.forward(&x), b.forward(&x));
    }

    #[test]
    fn energy_report_scales_with_work() {
        let mut rng = Rng::seed_from(12);
        let w = Matrix::random_normal(64, 64, 0.0, 0.2, &mut rng);
        let x = Matrix::random_normal(4, 64, 0.0, 1.0, &mut rng);
        let cfg = TileConfig::paper_default().with_tile_size(32, 32);
        let mut layer = AnalogLinear::new(w, None, cfg, 13);
        let model = crate::energy::EnergyModel::default();
        let before = layer.energy(&model);
        assert_eq!(before.rounds, 0);
        layer.forward(&x);
        let once = layer.energy(&model);
        layer.forward(&x);
        let twice = layer.energy(&model);
        assert!(once.total_pj() > 0.0);
        assert!(twice.total_pj() >= once.total_pj() * 1.9);
        assert!(twice.latency_ns > once.latency_ns);
    }

    #[test]
    #[should_panic(expected = "bias length")]
    fn wrong_bias_length_panics() {
        AnalogLinear::new(Matrix::zeros(4, 4), Some(vec![0.0; 3]), TileConfig::ideal(), 0);
    }

    #[test]
    #[should_panic(expected = "input width")]
    fn wrong_input_width_panics() {
        let mut layer = AnalogLinear::new(Matrix::zeros(4, 4), None, TileConfig::ideal(), 0);
        layer.forward(&Matrix::zeros(1, 5));
    }
}
